// Command netprobe demonstrates the network model and the paper's
// two-message α/β probing under each background-traffic model: it
// samples the true load and the probe's estimates over time.
//
// Usage:
//
//	netprobe -model bursty -duration 120
package main

import (
	"flag"
	"fmt"
	"os"

	"samrdlb/internal/netsim"
)

func main() {
	var (
		model    = flag.String("model", "bursty", "constant | sinusoid | bursty | walk")
		duration = flag.Float64("duration", 120, "seconds of virtual time to sample")
		step     = flag.Float64("step", 10, "sampling interval")
		seed     = flag.Int64("seed", 7, "traffic seed")
		forecast = flag.Bool("forecast", false, "show the NWS-style forecast next to the raw probe")
	)
	flag.Parse()

	var traffic netsim.TrafficModel
	switch *model {
	case "constant":
		traffic = netsim.ConstantTraffic{Level: 0.4}
	case "sinusoid":
		traffic = netsim.SinusoidTraffic{Mean: 0.4, Amp: 0.3, Period: 60}
	case "bursty":
		traffic = &netsim.BurstyTraffic{QuietLoad: 0.1, BusyLoad: 0.7, MeanQuiet: 25, MeanBusy: 12, Seed: *seed}
	case "walk":
		traffic = &netsim.RandomWalkTraffic{Start: 0.3, Step: 0.08, Interval: 5, Seed: *seed}
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		os.Exit(2)
	}

	link := netsim.MrenWAN(traffic)
	fmt.Printf("link %s: alpha %.1f ms, nominal bandwidth %.1f Mb/s, traffic %s\n\n",
		link.Name, link.Alpha*1e3, 8/link.Beta/1e6, *model)
	lf := netsim.NewLinkForecast()
	if *forecast {
		fmt.Printf("%8s  %6s  %14s  %16s  %12s\n", "t(s)", "load", "beta-hat(us/KB)", "forecast(us/KB)", "best")
	} else {
		fmt.Printf("%8s  %6s  %12s  %14s  %12s\n", "t(s)", "load", "alpha-hat(ms)", "beta-hat(us/KB)", "1MB xfer(s)")
	}
	for t := 0.0; t <= *duration; t += *step {
		aHat, bHat, _ := link.Probe(t)
		if *forecast {
			lf.Record(aHat, bHat)
			_, fb, _ := lf.Forecast()
			fmt.Printf("%8.1f  %6.2f  %14.2f  %16.2f  %12s\n",
				t, link.LoadAt(t), bHat*1e6*1024, fb*1e6*1024, lf.Beta.Best())
			continue
		}
		fmt.Printf("%8.1f  %6.2f  %12.2f  %14.2f  %12.3f\n",
			t, link.LoadAt(t), aHat*1e3, bHat*1e6*1024, link.TransferTime(t, 1<<20))
	}
}
