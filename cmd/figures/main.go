// Command figures regenerates every table and figure of the paper's
// evaluation section (Figures 3, 7, 8) plus the γ ablation, printing
// the measured series next to the paper's reported bands.
//
// Usage:
//
//	figures                 # the full report
//	figures -fig 7          # one figure
//	figures -steps 20       # longer runs
package main

import (
	"flag"
	"fmt"
	"os"

	"samrdlb/internal/exp"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "all | 3 | 7 | 8 | gamma | ablations")
		format = flag.String("format", "text", "text | md (markdown report)")
		steps  = flag.Int("steps", 10, "level-0 steps per run")
		seed   = flag.Int64("seed", 42, "workload and traffic seed")
	)
	flag.Parse()

	o := exp.Options{Steps: *steps, Seed: *seed}
	if *format == "md" {
		fmt.Print(exp.MarkdownReport(o))
		return
	}
	switch *fig {
	case "all":
		fmt.Print(exp.Report(o))
	case "3":
		fmt.Print(exp.Fig3Report(o))
	case "7":
		fmt.Print(exp.Fig7Report("AMR64", o))
		fmt.Println()
		fmt.Print(exp.Fig7Report("ShockPool3D", o))
	case "8":
		fmt.Print(exp.Fig8Report("AMR64", o))
		fmt.Println()
		fmt.Print(exp.Fig8Report("ShockPool3D", o))
	case "gamma":
		fmt.Print(exp.GammaReport(o))
	case "ablations":
		fmt.Print(exp.AblationReport(o))
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
