// Command hierarchy renders the structural figures of the paper: the
// SAMR grid hierarchy (Figure 1), the integrated execution order
// (Figure 2), the balancing points (Figure 5), and a global
// redistribution example (Figure 6), all from real runs.
//
// Usage:
//
//	hierarchy            # Figure 1: grid hierarchy dump
//	hierarchy -order     # Figures 2 & 5: execution order + balance points
//	hierarchy -redist    # Figure 6: global redistribution example
package main

import (
	"flag"
	"fmt"
	"os"

	"samrdlb/internal/engine"
	"samrdlb/internal/machine"
	"samrdlb/internal/trace"
	"samrdlb/internal/workload"
)

func main() {
	var (
		order    = flag.Bool("order", false, "print the integration order (Figs. 2, 5)")
		redist   = flag.Bool("redist", false, "print a global redistribution example (Fig. 6)")
		jsonPath = flag.String("json", "", "also write the event trace as JSON to this file")
	)
	flag.Parse()

	switch {
	case *order:
		printOrder(*jsonPath)
	case *redist:
		printRedist(*jsonPath)
	default:
		printHierarchy()
	}
}

// printHierarchy reproduces Figure 1: a four-level hierarchy from the
// static-blob driver, one line per grid.
func printHierarchy() {
	sys := machine.Origin2000("ANL", 4)
	r := engine.New(sys, workload.NewStaticBlob(16, 2), engine.Options{
		Steps: 1, MaxLevel: 3,
	})
	r.Run()
	h := r.Hierarchy()
	fmt.Println("Figure 1 — SAMR grid hierarchy (levels 0..3, blob refinement):")
	for l := 0; l <= h.MaxLevel; l++ {
		grids := h.Grids(l)
		fmt.Printf("level %d: %d grids, %d cells\n", l, len(grids), h.TotalCells(l))
		for _, g := range grids {
			fmt.Printf("  grid %3d  box %-28v owner p%-2d parent %d\n", g.ID, g.Box, g.Owner, g.Parent)
		}
	}
	if err := h.CheckProperNesting(); err != nil {
		fmt.Println("NESTING VIOLATION:", err)
	} else {
		fmt.Println("proper nesting: OK")
	}
}

// printOrder reproduces Figures 2 and 5: the recursive integration
// order for 4 levels at refinement factor 2, with the DLB points.
func printOrder(jsonPath string) {
	sys := machine.WanPair(2, nil)
	tr := trace.New()
	r := engine.New(sys, workload.NewStaticBlob(16, 2), engine.Options{
		Steps: 1, MaxLevel: 3, Trace: tr,
	})
	r.Run()
	fmt.Println("Figure 2 — integrated execution order (refinement factor 2, one level-0 step):")
	fmt.Print(tr.OrderDiagram(3))
	fmt.Println("\nFigure 5 — balancing points (local after finer-level steps, global after level-0):")
	fmt.Print(tr.String())
	writeJSON(tr, jsonPath)
}

func writeJSON(tr *trace.Recorder, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if err := tr.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("trace JSON written to %s\n", path)
}

// printRedist reproduces Figure 6: the shock plane loads one group;
// the scheme shifts the group boundary.
func printRedist(jsonPath string) {
	sys := machine.WanPair(2, nil)
	tr := trace.New()
	r := engine.New(sys, workload.NewShockPool3D(32, 2), engine.Options{
		Steps: 10, MaxLevel: 2, Trace: tr,
	})
	res := r.Run()
	fmt.Println("Figure 6 — global redistribution events (ShockPool3D on 2+2 WAN):")
	for _, e := range tr.OfKind(trace.GlobalCheck) {
		fmt.Printf("  t=%.3f %s\n", e.VTime, e.Note)
	}
	for _, e := range tr.OfKind(trace.Redistribution) {
		fmt.Printf("  t=%.3f REDISTRIBUTED %s\n", e.VTime, e.Note)
	}
	fmt.Printf("total: %d evaluations, %d redistributions\n", res.GlobalEvals, res.GlobalRedists)
	writeJSON(tr, jsonPath)
}
