package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"samrdlb/internal/engine"
	"samrdlb/internal/fault"
	"samrdlb/internal/machine"
	"samrdlb/internal/mpx"
	"samrdlb/internal/supervise"
	"samrdlb/internal/workload"
)

// workerCkptDir derives the per-worker durable store: each worker owns
// its own generation store under the shared -ckpt-dir, so a restarted
// worker resumes from the generations its own previous incarnation
// wrote.
func workerCkptDir(base string, shard int) string {
	if base == "" {
		return ""
	}
	return filepath.Join(base, fmt.Sprintf("worker-%d", shard))
}

// runWorkerMode is the hidden worker-process entry point (-worker-shard):
// host one processor group's shard of the engine behind a wire endpoint,
// under the supervisor listening at -worker-control. All run flags must
// equal the supervisor's (they do: the supervisor re-execs its own argv),
// so every worker replicates the identical deterministic control plane.
func runWorkerMode(sys *machine.System, driver workload.Driver, opt engine.Options,
	shard int, control string, detached, resume bool, wireTimeout time.Duration) int {
	if shard < 0 || shard >= sys.NumGroups() {
		fmt.Fprintf(os.Stderr, "worker: shard %d out of range for %d groups\n", shard, sys.NumGroups())
		return 2
	}
	err := supervise.RunWorker(supervise.WorkerConfig{
		Shard:       shard,
		NumShards:   sys.NumGroups(),
		ControlAddr: control,
		ShardOf:     sys.GroupOf,
		WireTimeout: wireTimeout,
		Detached:    detached,
		Build: func(ep *mpx.TCPEndpoint) (func(func(int)) (string, string, error), error) {
			opt.UseMPX = true
			opt.Transport = engine.TransportWorker
			opt.Worker = &engine.WorkerWire{Shard: shard, Endpoint: ep, Detached: detached || ep == nil}
			opt.WireTimeout = wireTimeout
			opt.CheckpointDir = workerCkptDir(opt.CheckpointDir, shard)
			var report func(int)
			opt.AfterStep = func(step int, _ *engine.Runner) {
				if report != nil {
					report(step)
				}
			}
			var r *engine.Runner
			if resume && opt.CheckpointDir != "" {
				var err error
				r, _, err = engine.Resume(sys, driver, opt)
				if err != nil {
					// The previous incarnation died before its first durable
					// write (or the store is damaged): determinism makes a
					// fresh replay byte-identical.
					fmt.Fprintf(os.Stderr, "worker %d: no usable checkpoint (%v); replaying fresh\n", shard, err)
					r = engine.New(sys, driver, opt)
				}
			} else {
				r = engine.New(sys, driver, opt)
			}
			return func(reportStep func(int)) (string, string, error) {
				report = reportStep
				res := r.Run()
				var out strings.Builder
				fmt.Fprintf(&out, "%s\n", res)
				if s := res.CheckpointSummary(); s != "" {
					fmt.Fprintln(&out, s)
				}
				if s := res.TransportSummary(); s != "" {
					fmt.Fprintln(&out, s)
				}
				return res.String(), out.String(), nil
			}, nil
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 1
	}
	return 0
}

// runSupervisor executes a supervised multi-process run: re-exec this
// binary once per processor group with the identical run flags plus the
// hidden worker flags, fire any scripted worker-kill events from the
// fault schedule, restart crashed workers from their checkpoints, and
// report the agreed result.
func runSupervisor(sys *machine.System, sched *fault.Schedule,
	wireTimeout time.Duration, maxRestarts int) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "supervise: %v\n", err)
		return 2
	}
	var kills []fault.KillPoint
	if sched != nil {
		kills = sched.WorkerKills()
	}
	replay := fmt.Sprintf("%s %s", exe, strings.Join(os.Args[1:], " "))
	fmt.Fprintf(os.Stderr, "supervise: %d worker(s), %d scripted kill(s); replay: %s\n",
		sys.NumGroups(), len(kills), replay)
	mem := machine.NewMembership(sys, 2, 4, 1)
	baseArgs := os.Args[1:]
	rep, err := supervise.Run(supervise.Config{
		NumShards:   sys.NumGroups(),
		WireTimeout: wireTimeout,
		MaxRestarts: maxRestarts,
		Kills:       kills,
		Membership:  mem,
		ProcsOf:     sys.ProcsInGroup,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "supervise: "+format+"\n", args...)
		},
		Spawn: func(shard int, controlAddr string, detached, resume bool) *exec.Cmd {
			// The worker branch is evaluated before -supervise, so the
			// inherited -supervise flag in baseArgs is inert.
			args := append(append([]string{}, baseArgs...),
				"-worker-shard", strconv.Itoa(shard), "-worker-control", controlAddr)
			if detached {
				args = append(args, "-worker-detached")
			}
			if resume {
				args = append(args, "-worker-resume")
			}
			cmd := exec.Command(exe, args...)
			cmd.Stderr = os.Stderr
			cmd.Stdout = os.Stderr // workers report via the control channel
			return cmd
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "supervise: %v\nsupervise: repro: %s\n", err, replay)
		return 1
	}
	fmt.Printf("supervised run: %d worker(s) completed\n\n%s", rep.Completed, rep.Output)
	fmt.Printf("\nRecovery report:\n")
	fmt.Printf("worker restarts: %d (crashes %d, scripted kills %d, heartbeat misses %d, permanent failures %d)\n",
		rep.Restarts, rep.Crashes, rep.ScriptedKills, rep.HeartbeatMisses, rep.PermanentFailures)
	fmt.Printf("membership: %d suspected, %d presumed dead, %d rejoins, %d catch-ups\n",
		mem.SuspectTransitions, mem.SuspectedToDead, mem.Rejoins, mem.RejoinCatchups)
	return 0
}
