// Command samrsim runs one SAMR experiment: a dataset on a system
// with a DLB scheme, printing the execution-time breakdown.
//
// Usage:
//
//	samrsim -dataset ShockPool3D -system wan -policy distributed -n 4 -steps 10
//
// -policy selects the balancer from the policy registry (distributed,
// parallel, sfc, hilbert-sfc, diffusion, diffusion-sos, knapsack, or
// an alias such as "paper"); -scheme is the legacy spelling.
// -tournament instead runs the seeded policy ablation — every
// registered policy on identical scenario envelopes — printing a
// markdown comparison report, with -bench-out writing the
// deterministic per-policy metrics JSON:
//
//	samrsim -tournament -tournament-scenarios 20 -bench-out BENCH_policy.json
//
// With -ckpt-dir the engine writes a durable checkpoint generation
// every -ckpt-interval level-0 steps; an interrupted run (crash, kill,
// or -stop-after) restarts with -resume and produces the same result
// as an uninterrupted one.
//
// With -invariants the paper-invariant oracle (internal/invariant)
// audits every regrid, balancing, checkpoint and restore phase; any
// violation is printed and the run exits non-zero. -scenario replays
// a property-harness scenario string — the format printed by a
// failing soak or fuzz run — end to end under the oracle:
//
//	samrsim -invariants -scenario 'seed=42 dataset=ShockPool3D n=8 ... bug=colocation'
//
// With -data, -transport selects how rank messages travel: "loopback"
// runs every simulated processor as an mpx rank in one in-process
// world, "tcp" additionally shards the world by processor group behind
// real localhost sockets (CRC32-framed wire messages). Both produce
// results identical to the shared-memory default; the netsim link
// model stays the timing authority.
//
// A multi-process lockstep campaign replicates the deterministic run
// across machines and cross-checks a per-step digest over TCP:
//
//	samrsim -peers host0:7000,host1:7000 -shard 0 -listen :7000 ...
//	samrsim -peers host0:7000,host1:7000 -shard 1 -listen :7000 ...
//
// Every process must be started with identical run flags; any
// divergence in the per-step digests exits non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"samrdlb/internal/ckpt"
	"samrdlb/internal/dlb"
	"samrdlb/internal/engine"
	"samrdlb/internal/exp"
	"samrdlb/internal/fault"
	"samrdlb/internal/invariant"
	"samrdlb/internal/machine"
	"samrdlb/internal/metrics"
	"samrdlb/internal/netsim"
	"samrdlb/internal/scenario"
	"samrdlb/internal/solver"
	"samrdlb/internal/trace"
	"samrdlb/internal/vclock"
	"samrdlb/internal/workload"
)

func main() {
	var (
		dataset   = flag.String("dataset", "ShockPool3D", "ShockPool3D | AMR64 | SedovBlast | blob | uniform")
		system    = flag.String("system", "wan", "wan | lan | origin (single machine)")
		scheme    = flag.String("scheme", "distributed", "balancer policy (legacy spelling of -policy)")
		policy    = flag.String("policy", "", "balancer policy: distributed | parallel | sfc | hilbert-sfc | diffusion | diffusion-sos | knapsack (or an alias; overrides -scheme)")
		tourney   = flag.Bool("tournament", false, "run the policy ablation tournament instead of a single run: every registered policy on the same seeded scenario envelopes, printing a markdown comparison report")
		tourneyN  = flag.Int("tournament-scenarios", 20, "tournament: number of generated scenario envelopes per policy")
		tourneySd = flag.Int64("tournament-seed", 40000, "tournament: first scenario-generator seed")
		benchOut  = flag.String("bench-out", "", "tournament: write the deterministic per-policy metrics JSON (BENCH_policy.json) to this file")
		n         = flag.Int("n", 4, "processors per group (origin: total)")
		steps     = flag.Int("steps", 10, "level-0 time steps")
		maxLevel  = flag.Int("maxlevel", 2, "deepest refinement level")
		domainN   = flag.Int("domain", 32, "level-0 domain cells per side")
		seed      = flag.Int64("seed", 42, "workload and traffic seed")
		gamma     = flag.Float64("gamma", 0, "gain/cost threshold (0 = default 2.0)")
		withData  = flag.Bool("data", false, "carry and advance real field data")
		traceOut  = flag.Bool("trace", false, "print the event trace")
		series    = flag.Bool("series", false, "print per-step time series")
		saveTo    = flag.String("save", "", "write a hierarchy checkpoint to this file after the run")
		faultsIn  = flag.String("faults", "", "fault script file (see internal/fault): enables fault injection")
		faultSd   = flag.Int64("faultseed", 0, "fault schedule seed (0 = use -seed)")
		ckptIval  = flag.Int("ckpt-interval", 0, "level-0 steps between recovery checkpoints (0 = default 4)")
		ckptDir   = flag.String("ckpt-dir", "", "durable checkpoint store directory: write an on-disk generation every checkpoint interval")
		ckptKeep  = flag.Int("ckpt-keep", 0, "on-disk generations to retain (0 = default 3)")
		resume    = flag.Bool("resume", false, "resume from the newest usable generation in -ckpt-dir instead of starting fresh")
		stopAftr  = flag.Int("stop-after", -1, "exit with status 3 after this level-0 step completes (simulated crash, for resume testing)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file after the run")
		ledCheck  = flag.Bool("ledgercheck", false, "verify the incremental load ledger against a full recomputation after every hierarchy mutation (slow; debug oracle)")
		datCheck  = flag.Bool("datacheck", false, "verify every planned ghost fill and restriction against the scan-based baseline, bit for bit (slow; debug oracle)")
		plnCheck  = flag.Bool("plancheck", false, "verify every served exchange plan against the O(n²) scan planners, bit for bit (slow; debug oracle)")
		invCheck  = flag.Bool("invariants", false, "audit every phase with the paper-invariant oracle; violations exit non-zero")
		scenSpec  = flag.String("scenario", "", "replay a property-harness scenario string under the invariant oracle (overrides the other run flags)")
		quorum    = flag.Int("quorum", 0, "per-group minimum of admitted processors before the group degrades to local-only balancing (0 = default 1)")
		recReport = flag.Bool("recovery-report", false, "print the retry/backoff/suspicion and rejoin counters after the run")
		transport = flag.String("transport", "", "rank-message transport with -data: loopback (in-process mpx world) | tcp (one shard per group over localhost sockets); empty = shared-memory data path")
		listenFl  = flag.String("listen", "", "lockstep: listen address for this shard (default: the -peers entry for -shard)")
		peersFl   = flag.String("peers", "", "lockstep: comma-separated shard addresses in shard order; replicates the run and cross-checks per-step digests")
		shardFl   = flag.Int("shard", -1, "lockstep: this process's index into -peers")
		superv    = flag.Bool("supervise", false, "run one worker OS process per processor group under this supervising parent (requires -data); crashed workers restart from their latest durable generation in -ckpt-dir")
		wireTO    = flag.Duration("wire-timeout", 5*time.Second, "read/write deadline and heartbeat pacing on every wire connection (tcp/worker transports and lockstep; 0 disables)")
		maxRst    = flag.Int("max-restarts", 3, "supervise: restarts allowed per worker before the run fails")
		wrkShard  = flag.Int("worker-shard", -1, "internal: run as the supervised worker hosting this processor group")
		wrkCtrl   = flag.String("worker-control", "", "internal: supervisor control-channel address")
		wrkDet    = flag.Bool("worker-detached", false, "internal: run the worker without a wire (post-crash restart)")
		wrkRes    = flag.Bool("worker-resume", false, "internal: resume the worker from its checkpoint store")
	)
	flag.Parse()

	if *policy != "" {
		*scheme = *policy
	}

	if *tourney {
		os.Exit(runTournament(*tourneyN, *tourneySd, *benchOut))
	}
	if *scenSpec != "" {
		os.Exit(runScenario(*scenSpec, *plnCheck))
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	var driver workload.Driver
	switch *dataset {
	case "ShockPool3D":
		driver = workload.NewShockPool3D(*domainN, 2)
	case "AMR64":
		driver = workload.NewAMR64(*domainN, 2, *seed)
	case "SedovBlast":
		driver = workload.NewSedovBlast(*domainN, 2)
	case "blob":
		driver = workload.NewStaticBlob(*domainN, 2)
	case "uniform":
		driver = &workload.Uniform{N0: *domainN, Ref: 2}
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	traffic := &netsim.BurstyTraffic{QuietLoad: 0.1, BusyLoad: 0.6, MeanQuiet: 30, MeanBusy: 15, Seed: *seed}
	var sys *machine.System
	switch *system {
	case "wan":
		sys = machine.WanPair(*n, traffic)
	case "lan":
		sys = machine.LanPair(*n, traffic)
	case "origin":
		sys = machine.Origin2000("ANL", *n)
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}

	bal, err := dlb.NewPolicy(*scheme)
	if err != nil {
		fmt.Fprintf(os.Stderr, "policy: %v\n", err)
		os.Exit(2)
	}

	var sched *fault.Schedule
	if *faultsIn != "" {
		f, err := os.Open(*faultsIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faults: %v\n", err)
			os.Exit(2)
		}
		events, err := fault.ParseScript(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "faults: %v\n", err)
			os.Exit(2)
		}
		fseed := *faultSd
		if fseed == 0 {
			fseed = *seed
		}
		sched, err = fault.NewSchedule(fseed, events...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faults: %v\n", err)
			os.Exit(2)
		}
		if err := sched.Validate(sys.NumProcs(), sys.NumGroups()); err != nil {
			fmt.Fprintf(os.Stderr, "faults: %v\n", err)
			os.Exit(2)
		}
	}

	tr := trace.New()
	hist := metrics.NewHistory()
	opt := engine.Options{
		Steps:              *steps,
		Balancer:           bal,
		Gamma:              *gamma,
		MaxLevel:           *maxLevel,
		WithData:           *withData,
		Pool:               solver.NewPool(0),
		Trace:              tr,
		History:            hist,
		Faults:             sched,
		GroupQuorum:        *quorum,
		CheckpointInterval: *ckptIval,
		CheckpointDir:      *ckptDir,
		CheckpointKeep:     *ckptKeep,
		LedgerCheck:        *ledCheck,
		DataCheck:          *datCheck,
		PlanCheck:          *plnCheck,
	}
	opt.WireTimeout = *wireTO
	switch *transport {
	case "":
	case engine.TransportLoopback, engine.TransportTCP:
		if !*withData {
			fmt.Fprintln(os.Stderr, "transport: -transport requires -data (rank messages carry field data)")
			os.Exit(2)
		}
		opt.UseMPX = true
		opt.Transport = *transport
	default:
		fmt.Fprintf(os.Stderr, "unknown transport %q\n", *transport)
		os.Exit(2)
	}

	// The hidden worker branch comes before -supervise: a worker is
	// spawned with the supervisor's full argv (including -supervise)
	// plus the worker flags, and must never recurse into supervising.
	if *wrkShard >= 0 {
		if !*withData {
			fmt.Fprintln(os.Stderr, "worker: supervised workers require -data")
			os.Exit(2)
		}
		os.Exit(runWorkerMode(sys, driver, opt, *wrkShard, *wrkCtrl, *wrkDet, *wrkRes, *wireTO))
	}
	if *superv {
		switch {
		case !*withData:
			fmt.Fprintln(os.Stderr, "supervise: -supervise requires -data (worker shards carry field data)")
			os.Exit(2)
		case *peersFl != "":
			fmt.Fprintln(os.Stderr, "supervise: -supervise and lockstep -peers are mutually exclusive")
			os.Exit(2)
		case *datCheck:
			fmt.Fprintln(os.Stderr, "supervise: -datacheck is data-dependent and forbidden on worker shards")
			os.Exit(2)
		}
		os.Exit(runSupervisor(sys, sched, *wireTO, *maxRst))
	}
	var checker *invariant.Checker
	if *invCheck {
		// Rule scoping follows the policy's registered traits:
		// structural rules always on, paper-specific rules only where
		// the policy promises them.
		checker = invariant.NewForPolicy(*scheme)
		opt.Invariants = checker.Check
	}
	var lock *lockstep
	if *peersFl != "" {
		var err error
		lock, err = startLockstep(*peersFl, *shardFl, *listenFl, *wireTO)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "lockstep: shard %d connected to %d peer(s)\n", *shardFl, lock.n-1)
		opt.AfterStep = func(step int, r *engine.Runner) {
			if err := lock.check(step, r); err != nil {
				fmt.Fprintf(os.Stderr, "%v\n", err)
				os.Exit(1)
			}
		}
	}
	if *stopAftr >= 0 {
		// The durable generation for this boundary (if due) is written
		// before AfterStep fires, so exiting here models a crash whose
		// latest checkpoint is already safely on disk.
		stop := *stopAftr
		prev := opt.AfterStep
		opt.AfterStep = func(step int, r *engine.Runner) {
			if prev != nil {
				prev(step, r)
			}
			if step >= stop {
				fmt.Fprintf(os.Stderr, "interrupted after step %d (simulated crash)\n", step)
				os.Exit(3)
			}
		}
	}
	var runner *engine.Runner
	if *resume {
		if *ckptDir == "" {
			fmt.Fprintln(os.Stderr, "resume: -ckpt-dir is required")
			os.Exit(2)
		}
		var report *ckpt.RestoreReport
		var err error
		runner, report, err = engine.Resume(sys, driver, opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "resume: %v\n", err)
			os.Exit(1)
		}
		for _, sk := range report.Skipped {
			fmt.Fprintf(os.Stderr, "resume: skipped generation %d (%s): %s\n", sk.Gen, sk.File, sk.Reason)
		}
		fmt.Fprintf(os.Stderr, "resume: restored generation %d (step %d, t=%.4f)\n",
			report.Gen, report.Step, report.SimTime)
	} else {
		runner = engine.New(sys, driver, opt)
	}
	res := runner.Run()

	if lock != nil {
		fmt.Fprintf(os.Stderr, "lockstep: %d step(s) verified across %d shards\n", lock.steps, lock.n)
		lock.close()
	}

	if checker != nil {
		if err := checker.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "invariants: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "invariants: every checked phase held")
	}

	fmt.Printf("%s\n\n", res)
	tbl := metrics.NewTable("Breakdown (seconds)", "phase", "time", "share%")
	for p := 0; p < vclock.NumPhases; p++ {
		tbl.AddRow(vclock.Phase(p).String(), res.Breakdown[p], 100*res.Breakdown[p]/res.Total)
	}
	fmt.Print(tbl.String())
	fmt.Printf("\nglobal gain/cost evaluations: %d, redistributions: %d, local migrations: %d\n",
		res.GlobalEvals, res.GlobalRedists, res.LocalMigrations)
	fmt.Print(runner.Hierarchy().Summarize())
	fmt.Printf("peak cells (all levels): %d, utilisation: %.2f\n", res.MaxCells, res.Utilisation)
	fmt.Printf("load ledger: %d incremental events, %d full rebuilds\n", res.LedgerEvents, res.LedgerRebuilds)
	if s := res.CheckpointSummary(); s != "" {
		fmt.Println(s)
	}
	if s := res.TransportSummary(); s != "" {
		fmt.Println(s)
	}
	if res.Faulty() {
		fmt.Printf("\nFault injection summary:\n%s", res.FaultSummary())
	}
	if *recReport {
		if s := res.RecoveryReport(); s != "" {
			fmt.Printf("\nRecovery report:\n%s", s)
		} else {
			fmt.Println("\nRecovery report: no retries, suspicion or rejoins")
		}
	}

	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
			os.Exit(1)
		}
		if err := runner.Hierarchy().Save(f); err != nil {
			fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\ncheckpoint written to %s\n", *saveTo)
	}

	if *series {
		fmt.Println("\nPer-step series:")
		fmt.Print(hist.String())
	}
	if *traceOut {
		fmt.Println("\nEvent trace:")
		fmt.Print(tr.String())
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(2)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(2)
		}
		f.Close()
	}
}

// runTournament runs the policy ablation tournament: every registered
// balancer policy on the same n seeded scenario envelopes (starting at
// seed0), printing the markdown comparison report and optionally
// writing the deterministic per-policy metrics JSON. Returns the
// process exit code: 0 when every run held its scoped invariants, 1
// when any policy recorded failures, 2 on setup errors.
func runTournament(n int, seed0 int64, benchOut string) int {
	tour, err := exp.RunTournament(exp.TournamentOptions{Scenarios: n, Seed0: seed0})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tournament: %v\n", err)
		return 2
	}
	fmt.Print(tour.Markdown())
	if benchOut != "" {
		data, jerr := tour.BenchJSON()
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "tournament: %v\n", jerr)
			return 2
		}
		if werr := os.WriteFile(benchOut, data, 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "tournament: %v\n", werr)
			return 2
		}
		fmt.Fprintf(os.Stderr, "tournament: wrote %s\n", benchOut)
	}
	for _, s := range tour.Scores {
		if s.Failures > 0 {
			fmt.Fprintf(os.Stderr, "tournament: policy %s recorded %d failing envelope(s)\n", s.Policy, s.Failures)
			return 1
		}
	}
	return 0
}

// runScenario replays a property-harness scenario string (the replay
// format printed by failing soak/fuzz runs) under the invariant
// oracle. Returns the process exit code: 0 when every invariant held,
// 1 on violations or execution failure, 2 on a malformed spec.
func runScenario(spec string, planCheck bool) int {
	sc, err := scenario.Parse(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
		return 2
	}
	sc.Normalize()
	if planCheck {
		sc.PlanCheck = true
	}
	fmt.Printf("scenario: %s\n", sc.Encode())
	out := sc.Execute()
	if out.Result != nil {
		fmt.Printf("%s\n", out.Result)
	}
	if out.Failed() {
		fmt.Fprintf(os.Stderr, "scenario failed: %s\n", out.Summary())
		return 1
	}
	fmt.Println("scenario ok: all paper invariants held")
	return 0
}
