package main

import (
	"fmt"
	"strings"
	"time"

	"samrdlb/internal/engine"
	"samrdlb/internal/mpx"
)

// lockstep is the multi-process campaign driver: every process runs
// the full deterministic engine on identical flags, and after each
// level-0 step the processes exchange a digest of their state over a
// TCP shard world (one rank per process). Since the simulation is a
// pure function of its flags, matching digests mean the replicas are
// byte-for-byte in step; a mismatch means the configurations differ
// and the campaign must stop rather than publish divergent results.
type lockstep struct {
	n, self int
	ep      *mpx.TCPEndpoint
	world   *mpx.World
	steps   int
}

// dialBudget bounds how long startLockstep waits for each peer to
// come up — process start order across machines is arbitrary, but a
// peer that never appears must fail the campaign, not hang it.
const dialBudget = 60 * time.Second

// startLockstep binds this process's shard endpoint and connects the
// full mesh (lower index dials higher, with exponential backoff while
// peers come up). wireTimeout arms read/write deadlines and heartbeats
// on every connection, so a replica that dies mid-campaign surfaces as
// a transport error instead of a hung digest exchange.
func startLockstep(peerList string, self int, listen string, wireTimeout time.Duration) (*lockstep, error) {
	peers := strings.Split(peerList, ",")
	n := len(peers)
	if n < 2 {
		return nil, fmt.Errorf("lockstep: -peers needs at least two addresses, got %q", peerList)
	}
	if self < 0 || self >= n {
		return nil, fmt.Errorf("lockstep: -shard %d out of range for %d peers", self, n)
	}
	shardOf := func(rank int) int { return rank }
	addr := listen
	if addr == "" {
		addr = peers[self]
	}
	ep, err := mpx.ListenTCP(self, addr, shardOf)
	if err != nil {
		return nil, err
	}
	ep.SetWireTimeout(wireTimeout)
	for p := self + 1; p < n; p++ {
		if err := ep.DialRetry(p, strings.TrimSpace(peers[p]), dialBudget); err != nil {
			ep.Close()
			return nil, fmt.Errorf("lockstep: %w", err)
		}
	}
	w := mpx.NewShardWorld(n, shardOf, self, ep)
	ep.Bind(w)
	return &lockstep{n: n, self: self, ep: ep, world: w}, nil
}

// check exchanges this step's digest with every peer and compares.
// All sends post before any receive, so the exchange cannot deadlock
// even when replicas run at different wall-clock speeds (mailboxes
// buffer the faster process's frames).
func (l *lockstep) check(step int, r *engine.Runner) error {
	local := r.StepDigest(step)
	var mismatch error
	l.world.Run(func(rank *mpx.Rank) {
		for p := 0; p < l.n; p++ {
			if p != l.self {
				rank.Send(p, step, local)
			}
		}
		for p := 0; p < l.n; p++ {
			if p == l.self {
				continue
			}
			remote := rank.Recv(p, step)
			if !equalDigest(local, remote) {
				mismatch = fmt.Errorf("lockstep: shard %d diverged at step %d: local %v, remote %v",
					p, step, local, remote)
				return
			}
		}
	})
	l.steps++
	return mismatch
}

func (l *lockstep) close() { l.ep.Close() }

func equalDigest(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
