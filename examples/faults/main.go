// Fault injection and graceful degradation: a WAN outage cuts the two
// groups apart for several level-0 steps (the run falls back to
// local-only balancing), lossy probes force the retry/backoff and
// forecast-fallback path afterwards, and a processor failure triggers
// a checkpoint restore over the survivors. The scenario is fully
// deterministic: the demo runs it twice and checks the metrics are
// byte-identical.
package main

import (
	"fmt"
	"os"
	"strings"

	"samrdlb/internal/engine"
	"samrdlb/internal/fault"
	"samrdlb/internal/machine"
	"samrdlb/internal/trace"
	"samrdlb/internal/workload"
)

const steps = 8

func newRunner(sched *fault.Schedule, tr *trace.Recorder, after func(int, *engine.Runner)) *engine.Runner {
	return engine.New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), engine.Options{
		Steps: steps, MaxLevel: 1,
		Faults:    sched,
		Trace:     tr,
		AfterStep: after,
	})
}

func main() {
	// Calibration pass: an empty schedule has identical timing (the
	// same periodic checkpoints, no events), so its level-0 boundary
	// clocks tell us where to place the fault windows.
	empty, err := fault.NewSchedule(7)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var bt []float64
	newRunner(empty, nil, func(step int, r *engine.Runner) {
		bt = append(bt, r.Clock().Now())
	}).Run()

	events := []fault.Event{
		// A WAN outage spanning (at least) level-0 steps 2 and 3.
		{Kind: fault.LinkOutage, A: 0, B: 1, Start: (bt[0] + bt[1]) / 2, End: (bt[3] + bt[4]) / 2},
		// The link comes back flaky for the rest of the run: most probe
		// messages are dropped, forcing retries and forecast fallbacks.
		{Kind: fault.ProbeLoss, A: 0, B: 1, Start: (bt[3] + bt[4]) / 2, End: 10 * bt[steps-1], Prob: 0.7},
		// One processor of group 1 dies late in the run.
		{Kind: fault.ProcFailure, Proc: 5, Start: (bt[5] + bt[6]) / 2},
	}
	fmt.Println("fault script:")
	fmt.Print(fault.FormatScript(events))

	run := func() (string, *trace.Recorder) {
		sched, err := fault.NewSchedule(7, events...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr := trace.New()
		res := newRunner(sched, tr, nil).Run()
		return res.String() + "\n" + res.FaultSummary(), tr
	}

	out1, tr := run()
	out2, _ := run()

	fmt.Printf("\n%s", out1)
	fmt.Printf("\nquarantine/recovery trace:\n")
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.Quarantine, trace.Recovery, trace.Fault, trace.ProbeRetry:
			fmt.Printf("  t=%7.3f  %-12s %s\n", e.VTime, e.Kind, e.Note)
		}
	}

	if out1 != out2 {
		fmt.Fprintln(os.Stderr, "ERROR: two identical fault runs diverged")
		os.Exit(1)
	}
	fmt.Println("\nreplayed the scenario: metrics byte-identical across runs ✓")

	if !strings.Contains(out1, "processor failures:       1") {
		fmt.Fprintln(os.Stderr, "ERROR: expected exactly one processor failure in the summary")
		os.Exit(1)
	}
}
