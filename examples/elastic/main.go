// Elastic membership: every group loses one processor to a bounded
// outage and regains it mid-run. The engine detects the failure
// (checkpoint restore over the survivors), marks the processor
// rejoining when its window closes, re-admits it at the next global
// boundary, and arms a forced catch-up evaluation so load flows back
// onto it. The demo prints the membership trace and the recovery
// report, verifies both rejoined processors own work at the final
// step, and replays the whole scenario to check byte-identical
// determinism.
//
// A comparable rejoin-heavy scenario (from the generator's rejoin
// profile) replays under the oracle from the CLI:
//
//	samrsim -scenario "$(go run ./examples/elastic -print-scenario)"
package main

import (
	"flag"
	"fmt"
	"os"

	"samrdlb/internal/engine"
	"samrdlb/internal/fault"
	"samrdlb/internal/machine"
	"samrdlb/internal/scenario"
	"samrdlb/internal/trace"
	"samrdlb/internal/workload"
)

const steps = 8

func newRunner(sched *fault.Schedule, tr *trace.Recorder, after func(int, *engine.Runner)) *engine.Runner {
	return engine.New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), engine.Options{
		Steps: steps, MaxLevel: 1,
		Faults:    sched,
		Trace:     tr,
		AfterStep: after,
	})
}

func main() {
	printScen := flag.Bool("print-scenario", false, "print a replayable rejoin-heavy scenario string and exit")
	flag.Parse()
	if *printScen {
		// A generator seed whose rejoin profile re-admits processors
		// twice; `samrsim -scenario` replays it under the oracle.
		sc := scenario.GenerateRejoin(9)
		fmt.Println(sc.Encode())
		return
	}

	// Calibration pass: an empty schedule has identical timing, so its
	// level-0 boundary clocks tell us where to place the outages.
	empty, err := fault.NewSchedule(7)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var bt []float64
	newRunner(empty, nil, func(step int, r *engine.Runner) {
		bt = append(bt, r.Clock().Now())
	}).Run()

	events := []fault.Event{
		// Group 0 loses proc 1 across boundaries 1-2; it rejoins at the
		// window's end and is re-admitted at the next global boundary.
		{Kind: fault.ProcFailure, Proc: 1, Start: (bt[0] + bt[1]) / 2, End: (bt[2] + bt[3]) / 2},
		// Group 1 loses proc 5 across boundaries 2-3.
		{Kind: fault.ProcFailure, Proc: 5, Start: (bt[1] + bt[2]) / 2, End: (bt[3] + bt[4]) / 2},
	}
	fmt.Println("fault script (bounded outages — End is the rejoin time):")
	fmt.Print(fault.FormatScript(events))

	run := func() (*engine.Runner, string, *trace.Recorder) {
		sched, err := fault.NewSchedule(7, events...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr := trace.New()
		r := newRunner(sched, tr, nil)
		res := r.Run()
		return r, res.String() + "\n" + res.FaultSummary() + res.RecoveryReport(), tr
	}

	r, out1, tr := run()
	_, out2, _ := run()

	fmt.Printf("\n%s", out1)
	fmt.Printf("\nmembership trace:\n")
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.Membership, trace.Quarantine, trace.Recovery, trace.Fault:
			fmt.Printf("  t=%7.3f  %-12s %s\n", e.VTime, e.Kind, e.Note)
		}
	}

	m := r.Membership()
	for _, p := range []int{1, 5} {
		if m.State(p) != machine.StateAlive {
			fmt.Fprintf(os.Stderr, "ERROR: proc %d did not end the run alive (%v)\n", p, m.State(p))
			os.Exit(1)
		}
		owned := 0.0
		for l := 0; l <= r.Hierarchy().MaxLevel; l++ {
			owned += r.Ledger().ProcCells(l, p)
		}
		if owned <= 0 {
			fmt.Fprintf(os.Stderr, "ERROR: rejoined proc %d owns no work at the final step\n", p)
			os.Exit(1)
		}
		fmt.Printf("\nproc %d re-admitted at step %d, owns %.0f cells at the final step ✓", p, m.ReadmitStep(p), owned)
	}

	if out1 != out2 {
		fmt.Fprintln(os.Stderr, "\nERROR: two identical elastic runs diverged")
		os.Exit(1)
	}
	fmt.Println("\n\nreplayed the scenario: metrics byte-identical across runs ✓")
}
