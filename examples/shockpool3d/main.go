// ShockPool3D on the WAN system under different network conditions:
// the distributed DLB adapts its redistribution decisions to the
// observed traffic (Section 4.2's probe feeding Eq. 1), so the number
// of global redistributions falls as the WAN gets busier while the
// scheme keeps beating the parallel DLB.
package main

import (
	"fmt"

	"samrdlb/internal/dlb"
	"samrdlb/internal/engine"
	"samrdlb/internal/machine"
	"samrdlb/internal/metrics"
	"samrdlb/internal/netsim"
	"samrdlb/internal/workload"
)

func main() {
	conditions := []struct {
		name    string
		traffic netsim.TrafficModel
	}{
		{"dedicated (no traffic)", netsim.ConstantTraffic{Level: 0}},
		{"lightly shared (20%)", netsim.ConstantTraffic{Level: 0.2}},
		{"bursty (10%/60%)", &netsim.BurstyTraffic{QuietLoad: 0.1, BusyLoad: 0.6, MeanQuiet: 30, MeanBusy: 15, Seed: 7}},
		{"congested (85%)", netsim.ConstantTraffic{Level: 0.85}},
	}

	tbl := metrics.NewTable(
		"ShockPool3D, 4+4 over MREN OC-3, 12 level-0 steps",
		"network", "parallel(s)", "distributed(s)", "improv%", "redists", "evals")

	for _, c := range conditions {
		run := func(b dlb.Balancer) *metrics.Result {
			sys := machine.WanPair(4, c.traffic)
			return engine.New(sys, workload.NewShockPool3D(32, 2), engine.Options{
				Steps: 12, Balancer: b, MaxLevel: 2,
			}).Run()
		}
		par := run(dlb.ParallelDLB{})
		dist := run(dlb.DistributedDLB{})
		tbl.AddRow(c.name, par.Total, dist.Total,
			metrics.Improvement(par.Total, dist.Total),
			dist.GlobalRedists, dist.GlobalEvals)
	}
	fmt.Print(tbl.String())
	fmt.Println("\nnote how redistributions become rarer as the shared WAN gets busier:")
	fmt.Println("the probe raises the measured cost (Eq. 1) and the gain test (Gain > γ·Cost) vetoes the move.")
}
