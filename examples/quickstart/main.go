// Quickstart: run the paper's headline comparison in a few lines —
// ShockPool3D on a 4+4 WAN-connected distributed system, parallel DLB
// versus distributed DLB.
package main

import (
	"fmt"

	"samrdlb/internal/dlb"
	"samrdlb/internal/engine"
	"samrdlb/internal/machine"
	"samrdlb/internal/metrics"
	"samrdlb/internal/netsim"
	"samrdlb/internal/workload"
)

func main() {
	// A shared WAN whose background traffic alternates between quiet
	// and busy periods, like MREN between ANL and NCSA.
	traffic := &netsim.BurstyTraffic{
		QuietLoad: 0.1, BusyLoad: 0.6,
		MeanQuiet: 30, MeanBusy: 15, Seed: 42,
	}

	run := func(b dlb.Balancer) *metrics.Result {
		sys := machine.WanPair(4, traffic) // 4 procs at ANL + 4 at NCSA
		driver := workload.NewShockPool3D(32, 2)
		return engine.New(sys, driver, engine.Options{
			Steps:    10,
			Balancer: b,
			MaxLevel: 2,
		}).Run()
	}

	par := run(dlb.ParallelDLB{})
	dist := run(dlb.DistributedDLB{})

	fmt.Println("parallel DLB:   ", par)
	fmt.Println("distributed DLB:", dist)
	fmt.Printf("\nexecution time improvement: %.1f%% (paper reports 2.6%%–44.2%% for ShockPool3D)\n",
		metrics.Improvement(par.Total, dist.Total))
}
