// AMR64 — the galaxy-cluster-formation workload — on the LAN-connected
// pair of machines, carrying real field data: the hyperbolic tracer is
// advected, the Poisson potential relaxed, and the particles
// integrated for real while the distributed execution is modelled.
package main

import (
	"fmt"

	"samrdlb/internal/dlb"
	"samrdlb/internal/engine"
	"samrdlb/internal/machine"
	"samrdlb/internal/metrics"
	"samrdlb/internal/netsim"
	"samrdlb/internal/solver"
	"samrdlb/internal/vclock"
	"samrdlb/internal/workload"
)

func main() {
	traffic := &netsim.BurstyTraffic{QuietLoad: 0.05, BusyLoad: 0.4, MeanQuiet: 20, MeanBusy: 10, Seed: 11}

	run := func(b dlb.Balancer) (*metrics.Result, *engine.Runner) {
		sys := machine.LanPair(4, traffic)
		driver := workload.NewAMR64(32, 2, 11)
		r := engine.New(sys, driver, engine.Options{
			Steps:    8,
			Balancer: b,
			MaxLevel: 2,
			WithData: true,              // real numerics
			Pool:     solver.NewPool(0), // across all host cores
		})
		return r.Run(), r
	}

	par, _ := run(dlb.ParallelDLB{})
	dist, runner := run(dlb.DistributedDLB{})

	tbl := metrics.NewTable("AMR64 on 4+4 LAN (real field data)", "metric", "parallel", "distributed")
	tbl.AddRow("total (s)", par.Total, dist.Total)
	tbl.AddRow("compute (s)", par.Compute(), dist.Compute())
	tbl.AddRow("remote comm (s)", par.RemoteComm(), dist.RemoteComm())
	tbl.AddRow("DLB overhead (s)", par.Breakdown[vclock.DLBOverhead], dist.Breakdown[vclock.DLBOverhead])
	tbl.AddRow("peak cells", par.MaxCells, dist.MaxCells)
	fmt.Print(tbl.String())
	fmt.Printf("\nimprovement: %.1f%% (paper reports 9.0%%–45.9%% for AMR64)\n",
		metrics.Improvement(par.Total, dist.Total))

	// Show the real solution state after the run.
	h := runner.Hierarchy()
	var mass, cells float64
	for _, g := range h.Grids(0) {
		mass += g.Patch.Sum(solver.FieldRho)
		cells += float64(g.NumCells())
	}
	fmt.Printf("\nfinal level-0 state: %d grids, mean density %.4f, hierarchy levels in use: %d\n",
		len(h.Grids(0)), mass/cells, h.NumLevels())
}
