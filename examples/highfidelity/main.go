// High-fidelity mode: real field data, data-driven (gradient)
// regridding instead of a geometric schedule, and conservative flux
// correction at coarse–fine boundaries — the full Berger–Colella
// treatment running under the distributed DLB.
package main

import (
	"fmt"

	"samrdlb/internal/engine"
	"samrdlb/internal/machine"
	"samrdlb/internal/metrics"
	"samrdlb/internal/netsim"
	"samrdlb/internal/solver"
	"samrdlb/internal/workload"
)

func main() {
	traffic := &netsim.BurstyTraffic{QuietLoad: 0.1, BusyLoad: 0.5, MeanQuiet: 25, MeanBusy: 10, Seed: 17}

	run := func(reflux bool) (*metrics.Result, *engine.Runner, float64, float64) {
		sys := machine.WanPair(2, traffic)
		r := engine.New(sys, workload.NewShockPool3D(32, 2), engine.Options{
			Steps:             8,
			MaxLevel:          2,
			WithData:          true,
			Reflux:            reflux,
			GradientField:     solver.FieldQ,
			GradientThreshold: 0.25,
			Pool:              solver.NewPool(0),
		})
		var before float64
		for _, g := range r.Hierarchy().Grids(0) {
			before += g.Patch.Sum(solver.FieldQ)
		}
		res := r.Run()
		var after float64
		for _, g := range r.Hierarchy().Grids(0) {
			after += g.Patch.Sum(solver.FieldQ)
		}
		return res, r, before, after
	}

	res, runner, before, after := run(true)
	_, _, b0, a0 := run(false)

	fmt.Println("ShockPool3D, 2+2 WAN, gradient-driven regridding, flux-corrected:")
	fmt.Println(" ", res)
	h := runner.Hierarchy()
	for l := 0; l <= h.MaxLevel; l++ {
		fmt.Printf("  level %d: %d grids, %d cells\n", l, len(h.Grids(l)), h.TotalCells(l))
	}
	fmt.Printf("\nlevel-0 mass drift with refluxing:    %+.6f (%.4f -> %.4f)\n", after-before, before, after)
	fmt.Printf("level-0 mass drift without refluxing: %+.6f (%.4f -> %.4f)\n", a0-b0, b0, a0)
	fmt.Println("\n(the clamp boundary exchanges mass as the shock exits; refluxing removes")
	fmt.Println(" the coarse-fine interface error component)")
}
