// Heterogeneous processors — the capability the paper's scheme claims
// but could not evaluate ("the compute nodes used in the experiments
// ... have the same performance"): a fast 4-processor machine joined
// to a half-speed 4-processor machine over a WAN. The distributed DLB
// assigns workload proportionally to the relative performance weights
// (Section 4.4's W × n·p / Σ n·p partitioning), while the parallel
// DLB's even split overloads the slow machine.
package main

import (
	"fmt"

	"samrdlb/internal/dlb"
	"samrdlb/internal/engine"
	"samrdlb/internal/machine"
	"samrdlb/internal/metrics"
	"samrdlb/internal/netsim"
	"samrdlb/internal/workload"
)

func main() {
	traffic := &netsim.BurstyTraffic{QuietLoad: 0.1, BusyLoad: 0.5, MeanQuiet: 25, MeanBusy: 10, Seed: 3}

	run := func(b dlb.Balancer) (*metrics.Result, map[int]int64) {
		sys := machine.Heterogeneous(4, 4, 0.5, traffic) // group 1 at half speed
		r := engine.New(sys, workload.NewShockPool3D(32, 2), engine.Options{
			Steps: 10, Balancer: b, MaxLevel: 2,
		})
		res := r.Run()
		cells := map[int]int64{}
		for _, g := range r.Hierarchy().Grids(0) {
			cells[sys.GroupOf(g.Owner)] += g.NumCells()
		}
		return res, cells
	}

	par, parCells := run(dlb.ParallelDLB{})
	dist, distCells := run(dlb.DistributedDLB{})

	fmt.Println("system: 4 fast procs (perf 1.0) + 4 slow procs (perf 0.5) over a shared WAN")
	fmt.Printf("ideal level-0 split: %.0f%% fast / %.0f%% slow (proportional to n·p)\n\n",
		100*4.0/6.0, 100*2.0/6.0)

	tbl := metrics.NewTable("final level-0 distribution and timing",
		"scheme", "fast-group cells", "slow-group cells", "total (s)")
	tbl.AddRow("parallel-dlb", parCells[0], parCells[1], par.Total)
	tbl.AddRow("distributed-dlb", distCells[0], distCells[1], dist.Total)
	fmt.Print(tbl.String())

	fmt.Printf("\nimprovement from weight-proportional balancing: %.1f%%\n",
		metrics.Improvement(par.Total, dist.Total))
}
