// Checkpoint/restart: long SAMR campaigns rarely finish in one
// sitting. The engine's durable store (internal/ckpt) writes a
// CRC32-framed generation every checkpoint interval; a run killed at
// any point resumes from the newest usable generation and produces a
// result identical to an uninterrupted run — even when the newest
// generation on disk has been corrupted.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"samrdlb/internal/engine"
	"samrdlb/internal/machine"
	"samrdlb/internal/workload"
)

func opts(dir string, steps int) engine.Options {
	return engine.Options{
		Steps: steps, MaxLevel: 2, WithData: true,
		CheckpointInterval: 2, CheckpointDir: dir,
	}
}

func main() {
	base, err := os.MkdirTemp("", "samrdlb-ckpt-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(base)

	// The uninterrupted reference: eight steps, a durable generation
	// every second step.
	full := engine.New(machine.WanPair(2, nil), workload.NewShockPool3D(16, 2),
		opts(filepath.Join(base, "full"), 8)).Run()
	fmt.Printf("uninterrupted: %s\n", full)

	// The "crashed" campaign: the same run killed after four steps.
	dir := filepath.Join(base, "crashed")
	engine.New(machine.WanPair(2, nil), workload.NewShockPool3D(16, 2), opts(dir, 4)).Run()
	gens, _ := filepath.Glob(filepath.Join(dir, "gen-*.ckpt"))
	fmt.Printf("interrupted after 4 steps; %d generations on disk\n", len(gens))

	// Resume and finish: the result string must match byte for byte.
	r, report, err := engine.Resume(machine.WanPair(2, nil), workload.NewShockPool3D(16, 2),
		opts(dir, 8))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	resumed := r.Run()
	fmt.Printf("resumed from generation %d (step %d): %s\n", report.Gen, report.Step, resumed)
	if resumed.String() != full.String() {
		fmt.Println("MISMATCH: resumed run diverged from the uninterrupted run")
		os.Exit(1)
	}
	fmt.Println("resume verified: results identical")

	// Corrupt the newest generation (a flipped byte, as a failing disk
	// would leave it) and resume: the store's CRC framing detects it
	// and falls back to the previous generation. A fresh "crashed"
	// campaign keeps this demo independent of the resume above, which
	// wrote further generations into its directory.
	dir2 := filepath.Join(base, "corrupt")
	engine.New(machine.WanPair(2, nil), workload.NewShockPool3D(16, 2), opts(dir2, 4)).Run()
	gens, _ = filepath.Glob(filepath.Join(dir2, "gen-*.ckpt"))
	sort.Strings(gens)
	newest := gens[len(gens)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	r2, report2, err := engine.Resume(machine.WanPair(2, nil), workload.NewShockPool3D(16, 2),
		opts(dir2, 8))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, sk := range report2.Skipped {
		fmt.Printf("skipped generation %d: %s\n", sk.Gen, sk.Reason)
	}
	res2 := r2.Run()
	fmt.Printf("resumed past the corruption from generation %d (step %d)\n", report2.Gen, report2.Step)
	if res2.String() != full.String() {
		fmt.Println("MISMATCH after corruption fallback")
		os.Exit(1)
	}
	fmt.Println("corruption tolerated: older generation restored, results still identical")
}
