// Checkpoint/restart: long SAMR campaigns rarely finish in one
// sitting. Run half the steps, save the full hierarchy (structure,
// ownership, field data) to a file, load it back and continue.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"samrdlb/internal/amr"
	"samrdlb/internal/engine"
	"samrdlb/internal/machine"
	"samrdlb/internal/workload"
)

func main() {
	path := filepath.Join(os.TempDir(), "samrdlb-checkpoint.bin")
	defer os.Remove(path)

	// Phase 1: run five steps with real data and checkpoint.
	first := engine.New(machine.WanPair(2, nil), workload.NewShockPool3D(16, 2), engine.Options{
		Steps: 5, MaxLevel: 2, WithData: true,
	})
	res1 := first.Run()
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := first.Hierarchy().Save(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
	st, _ := os.Stat(path)
	fmt.Printf("phase 1: %d steps, virtual time %.3fs; checkpoint %s (%d KiB)\n",
		res1.Steps, res1.Total, path, st.Size()/1024)

	// Phase 2: load and continue where phase 1 stopped.
	in, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	h, err := amr.Load(in)
	in.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	second := engine.New(machine.WanPair(2, nil), workload.NewShockPool3D(16, 2), engine.Options{
		Steps: 5, MaxLevel: 2, WithData: true,
		Resume: h, ResumeTime: first.Time(),
	})
	res2 := second.Run()
	fmt.Printf("phase 2: resumed at t=%.4f, ran %d more steps, virtual time %.3fs\n",
		first.Time(), res2.Steps, res2.Total)

	h2 := second.Hierarchy()
	for l := 0; l <= h2.MaxLevel; l++ {
		fmt.Printf("  level %d: %d grids, %d cells\n", l, len(h2.Grids(l)), h2.TotalCells(l))
	}
	if err := h2.CheckProperNesting(); err != nil {
		fmt.Println("NESTING VIOLATION:", err)
		os.Exit(1)
	}
	fmt.Println("restart verified: hierarchy consistent, shock tracked across the restart")
}
