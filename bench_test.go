package samrdlb

import (
	"bytes"
	"fmt"
	"testing"

	"samrdlb/internal/amr"
	"samrdlb/internal/cluster"
	"samrdlb/internal/dlb"
	"samrdlb/internal/engine"
	"samrdlb/internal/exp"
	"samrdlb/internal/geom"
	"samrdlb/internal/grid"
	"samrdlb/internal/load"
	"samrdlb/internal/machine"
	"samrdlb/internal/mpx"
	"samrdlb/internal/netsim"
	"samrdlb/internal/solver"
	"samrdlb/internal/workload"
)

// benchOpts keeps figure benchmarks bounded: two configurations and a
// short horizon per iteration. The full paper sweep is cmd/figures.
func benchOpts() exp.Options {
	return exp.Options{Steps: 6, Configs: []int{2, 4}, Seed: 42}
}

// BenchmarkFig1Hierarchy regenerates Figure 1: building the four-level
// grid hierarchy from flagged cells (regrid of the blob driver).
func BenchmarkFig1Hierarchy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := machine.Origin2000("ANL", 4)
		r := engine.New(sys, workload.NewStaticBlob(16, 2), engine.Options{Steps: 1, MaxLevel: 3})
		res := r.Run()
		if r.Hierarchy().NumLevels() < 3 {
			b.Fatal("hierarchy too shallow")
		}
		_ = res
	}
}

// BenchmarkFig2ExecutionOrder regenerates Figure 2: one level-0 step
// through four subcycled levels.
func BenchmarkFig2ExecutionOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := machine.WanPair(2, nil)
		r := engine.New(sys, workload.NewStaticBlob(16, 2), engine.Options{Steps: 1, MaxLevel: 3})
		r.Run()
	}
}

// BenchmarkFig3ParallelVsDistributed regenerates Figure 3: the
// parallel-machine vs distributed-system comparison under the parallel
// DLB.
func BenchmarkFig3ParallelVsDistributed(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		rows := exp.Fig3(o)
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig6Redistribution regenerates Figure 6's event: a global
// imbalance check ending in a boundary-shifting redistribution.
func BenchmarkFig6Redistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := machine.WanPair(2, nil)
		h := amr.New(geom.UnitCube(16), 2, 1, 1, false, "q")
		for x := 0; x < 16; x += 2 {
			owner := 0
			if x >= 12 {
				owner = 2
			}
			h.AddGrid(0, geom.BoxFromShape(geom.Index{x, 0, 0}, geom.Index{2, 16, 16}), owner, amr.NoGrid)
		}
		rec := newRecorder(sys, h)
		ctx := &dlb.Context{Sys: sys, H: h, Load: rec}
		b.StartTimer()
		d := (dlb.DistributedDLB{}).GlobalBalance(ctx)
		if !d.Invoked {
			b.Fatal("redistribution did not happen")
		}
	}
}

// BenchmarkFig7ExecutionTimeAMR64 regenerates Figure 7's AMR64 series
// (LAN system, both schemes).
func BenchmarkFig7ExecutionTimeAMR64(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		rows := exp.Fig7("AMR64", o)
		for _, r := range rows {
			if r.Distributed <= 0 {
				b.Fatal("bad run")
			}
		}
	}
}

// BenchmarkFig7ExecutionTimeShockPool3D regenerates Figure 7's
// ShockPool3D series (WAN system, both schemes).
func BenchmarkFig7ExecutionTimeShockPool3D(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		rows := exp.Fig7("ShockPool3D", o)
		for _, r := range rows {
			if r.Distributed <= 0 {
				b.Fatal("bad run")
			}
		}
	}
}

// BenchmarkFig8Efficiency regenerates Figure 8: the efficiency series
// including the sequential E(1) baseline.
func BenchmarkFig8Efficiency(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		rows := exp.Fig8("ShockPool3D", o)
		for _, r := range rows {
			if r.DistEfficiency <= 0 {
				b.Fatal("bad efficiency")
			}
		}
	}
}

// BenchmarkGammaSweep runs the γ-sensitivity ablation.
func BenchmarkGammaSweep(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		rows := exp.GammaSweep([]float64{0.5, 2, 8}, o)
		if len(rows) != 3 {
			b.Fatal("bad sweep")
		}
	}
}

// BenchmarkProbe measures the two-message α/β estimation (Section
// 4.2's cost model input).
func BenchmarkProbe(b *testing.B) {
	link := netsim.MrenWAN(&netsim.BurstyTraffic{QuietLoad: 0.1, BusyLoad: 0.6, Seed: 1})
	for i := 0; i < b.N; i++ {
		_, _, _ = link.Probe(float64(i) * 0.1)
	}
}

// --- micro-benchmarks for the design choices DESIGN.md calls out ---

// BenchmarkAdvectionKernel measures the upwind hyperbolic step on a
// 32³ patch (the unit of real compute work).
func BenchmarkAdvectionKernel(b *testing.B) {
	p := grid.NewPatch(geom.UnitCube(32), 0, 1, solver.FieldQ)
	k := solver.Advection3D{Vel: [3]float64{1, 0.5, 0.25}}
	dt := solver.MaxStableDt(k.MaxSpeed(), 1.0/32, 0.4)
	b.SetBytes(32 * 32 * 32 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.PeriodicFill(p, solver.FieldQ)
		k.Step(p, dt, 1.0/32)
	}
}

// BenchmarkGaussSeidel measures the elliptic relaxation on a 32³
// patch.
func BenchmarkGaussSeidel(b *testing.B) {
	p := grid.NewPatch(geom.UnitCube(32), 0, 1, solver.FieldPhi, solver.FieldRho)
	gs := solver.GaussSeidel{Sweeps: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gs.Step(p, 0, 1.0/32)
	}
}

// BenchmarkBergerRigoutsos measures clustering a shock-plane flag
// pattern on a 64³ level.
func BenchmarkBergerRigoutsos(b *testing.B) {
	f := cluster.NewFlagField(geom.UnitCube(64))
	s := workload.NewShockPool3D(64, 2)
	s.Flag(0, 0.5, f)
	p := cluster.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		boxes := cluster.Cluster(f, p)
		if len(boxes) == 0 {
			b.Fatal("no boxes")
		}
	}
}

// BenchmarkGhostPlan measures exchange-plan construction for a
// 64-grid level (the per-step communication planning cost).
func BenchmarkGhostPlan(b *testing.B) {
	h := amr.New(geom.UnitCube(32), 2, 1, 1, false, "q")
	boxes := geom.BoxList{h.Domain}.SplitEvenly(64)
	for i, bx := range boxes {
		h.AddGrid(0, bx, i%8, amr.NoGrid)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan := h.GhostPlan(0, false)
		if len(plan) == 0 {
			b.Fatal("no messages")
		}
	}
}

// BenchmarkLocalBalance measures one local balancing pass over an
// imbalanced 64-grid level.
func BenchmarkLocalBalance(b *testing.B) {
	sys := machine.WanPair(4, nil)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := amr.New(geom.UnitCube(32), 2, 1, 1, false, "q")
		boxes := geom.BoxList{h.Domain}.SplitEvenly(64)
		for _, bx := range boxes {
			h.AddGrid(0, bx, 0, amr.NoGrid) // everything on proc 0
		}
		ctx := &dlb.Context{Sys: sys, H: h, Load: newRecorder(sys, h)}
		b.StartTimer()
		migs := (dlb.ParallelDLB{}).LocalBalance(ctx, 0)
		if len(migs) == 0 {
			b.Fatal("no migrations")
		}
	}
}

// BenchmarkFullStepWithData measures one fully real (data-carrying)
// level-0 step on 8 simulated processors using all host cores.
func BenchmarkFullStepWithData(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := machine.WanPair(4, nil)
		r := engine.New(sys, workload.NewShockPool3D(32, 2), engine.Options{
			Steps: 1, MaxLevel: 2, WithData: true, Pool: solver.NewPool(0),
		})
		r.Run()
	}
}

// newRecorder seeds a load recorder with the hierarchy's current
// level-0 distribution, as the engine does after a step.
func newRecorder(sys *machine.System, h *amr.Hierarchy) *load.Recorder {
	rec := load.NewRecorder(sys.NumProcs(), h.MaxLevel)
	w := make([]float64, sys.NumProcs())
	for _, g := range h.Grids(0) {
		w[g.Owner] += float64(g.NumCells())
	}
	for p, v := range w {
		rec.RecordLevelWork(p, 0, v)
	}
	rec.SetIntervalTime(100)
	return rec
}

// BenchmarkMultigridSolve measures a full V-cycle solve to 1e-8 on a
// 32³ Poisson problem.
func BenchmarkMultigridSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := grid.NewPatch(geom.UnitCube(32), 0, 1, solver.FieldPhi, solver.FieldRho)
		p.FillFunc(solver.FieldRho, func(i geom.Index) float64 {
			if i == (geom.Index{16, 16, 16}) {
				return 1
			}
			return 0
		})
		b.StartTimer()
		mg := solver.Multigrid{}
		if _, res := mg.Solve(p, 1.0/32, 1e-8, 60); res > 1e-8 {
			b.Fatal("did not converge")
		}
	}
}

// BenchmarkGaussSeidelEquivalentWork is the ablation partner of
// BenchmarkMultigridSolve: the same problem attacked with plain
// relaxation (it will not converge; the point is the cost per sweep).
func BenchmarkGaussSeidelEquivalentWork(b *testing.B) {
	p := grid.NewPatch(geom.UnitCube(32), 0, 1, solver.FieldPhi, solver.FieldRho)
	p.FillFunc(solver.FieldRho, func(i geom.Index) float64 {
		if i == (geom.Index{16, 16, 16}) {
			return 1
		}
		return 0
	})
	gs := solver.GaussSeidel{Sweeps: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gs.Step(p, 0, 1.0/32)
	}
}

// BenchmarkBurgersKernel measures the Godunov Burgers step on a 32³
// patch.
func BenchmarkBurgersKernel(b *testing.B) {
	p := grid.NewPatch(geom.UnitCube(32), 0, 1, solver.FieldQ)
	p.FillFunc(solver.FieldQ, func(i geom.Index) float64 { return float64(i[0]%5) * 0.2 })
	k := solver.Burgers3D{}
	dt := solver.MaxStableDt(k.MaxSpeed(1), 1.0/32, 0.4)
	b.SetBytes(32 * 32 * 32 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		solver.PeriodicFill(p, solver.FieldQ)
		k.Step(p, dt, 1.0/32)
	}
}

// BenchmarkMPXGhostExchange measures one full message-passing ghost
// exchange over 4 ranks against the shared-memory equivalent.
func BenchmarkMPXGhostExchange(b *testing.B) {
	h := amr.New(geom.UnitCube(32), 2, 0, 1, true, "q")
	boxes := geom.BoxList{h.Domain}.SplitEvenly(16)
	boxes.SortByLo()
	for i, bx := range boxes {
		h.AddGrid(0, bx, i%4, amr.NoGrid)
	}
	w := mpx.NewWorld(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(r *mpx.Rank) {
			h.FillGhostsMPX(r, 0)
		})
	}
}

// BenchmarkSharedMemoryGhostExchange is BenchmarkMPXGhostExchange's
// in-process baseline.
func BenchmarkSharedMemoryGhostExchange(b *testing.B) {
	h := amr.New(geom.UnitCube(32), 2, 0, 1, true, "q")
	boxes := geom.BoxList{h.Domain}.SplitEvenly(16)
	boxes.SortByLo()
	for i, bx := range boxes {
		h.AddGrid(0, bx, i%4, amr.NoGrid)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.FillGhostsData(0)
	}
}

// BenchmarkRefluxedStep measures a full data-carrying level-0 step
// with conservative flux correction enabled.
func BenchmarkRefluxedStep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := machine.Origin2000("ANL", 2)
		r := engine.New(sys, workload.NewStaticBlob(16, 2), engine.Options{
			Steps: 1, MaxLevel: 1, WithData: true, Reflux: true,
		})
		r.Run()
	}
}

// --- checkpoint serialisation: fresh buffer vs reused scratch ---
//
// The engine checkpoints the hierarchy every CheckpointInterval
// level-0 steps (in memory for fault recovery, on disk for the durable
// store). This pair shows what reusing one scratch buffer across
// checkpoints saves over allocating a fresh bytes.Buffer each time.

// benchCkptHierarchy builds the 256-grid level the checkpoint
// benchmarks serialise.
func benchCkptHierarchy() *amr.Hierarchy {
	h := amr.New(geom.UnitCube(32), 2, 1, 1, false, "q")
	boxes := geom.BoxList{h.Domain}.SplitEvenly(256)
	for i, bx := range boxes {
		h.AddGrid(0, bx, i%8, amr.NoGrid)
	}
	return h
}

// BenchmarkCheckpointFresh serialises through a new bytes.Buffer per
// checkpoint — the engine's pre-reuse behaviour.
func BenchmarkCheckpointFresh(b *testing.B) {
	h := benchCkptHierarchy()
	var blob []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := h.Save(&buf); err != nil {
			b.Fatal(err)
		}
		blob = buf.Bytes()
	}
	_ = blob
}

// BenchmarkCheckpointReuse is the engine's current path: one scratch
// buffer reset per checkpoint, the blob copied into a reused slice.
func BenchmarkCheckpointReuse(b *testing.B) {
	h := benchCkptHierarchy()
	var buf bytes.Buffer
	var blob []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := h.Save(&buf); err != nil {
			b.Fatal(err)
		}
		blob = append(blob[:0], buf.Bytes()...)
	}
	_ = blob
}

// BenchmarkForecastRecord measures the NWS predictor-family update.
func BenchmarkForecastRecord(b *testing.B) {
	s := netsim.NewSeries(64)
	for i := 0; i < b.N; i++ {
		s.Record(float64(i % 17))
	}
}

// --- DLB decision-path benchmarks: incremental ledger vs recompute ---
//
// Each pair measures one decision-path operation at ~4k level-0 grids
// on a 128-processor WAN pair, once through the incrementally
// maintained load ledger and once through the original walk-the-
// hierarchy recompute (the -ledgercheck oracle path). The grid count
// matches a large SAMR run where per-decision O(grids) bookkeeping
// starts to rival the useful work.

// bench4k builds a balanced 4096-grid level 0 over 128 processors.
func bench4k() (*machine.System, *amr.Hierarchy) {
	sys := machine.WanPair(64, nil) // 64+64 procs, 2 groups
	h := amr.New(geom.UnitCube(64), 2, 1, 1, false, "q")
	boxes := geom.BoxList{h.Domain}.SplitEvenly(4096)
	for i, bx := range boxes {
		h.AddGrid(0, bx, i%sys.NumProcs(), amr.NoGrid)
	}
	return sys, h
}

// BenchmarkDecisionGainLedger measures the engine's per-decision Gain
// path with the ledger: an O(procs) snapshot of per-processor level
// work feeds the recorder's incrementally bound Eq. 2 aggregates.
func BenchmarkDecisionGainLedger(b *testing.B) {
	sys, h := bench4k()
	led := load.NewLedger(sys, h, nil)
	h.SetListener(led)
	rec := load.NewRecorder(sys.NumProcs(), h.MaxLevel)
	rec.BindGroups(sys)
	rec.SetIntervalTime(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < sys.NumProcs(); p++ {
			rec.RecordLevelWork(p, 0, led.ProcCells(0, p))
		}
		if g := rec.Gain(sys); g < 0 {
			b.Fatal("negative gain")
		}
	}
}

// BenchmarkDecisionGainRecompute is the pre-ledger baseline: the
// snapshot walks every grid and the unbound recorder recomputes the
// group sums over all processors.
func BenchmarkDecisionGainRecompute(b *testing.B) {
	sys, h := bench4k()
	rec := load.NewRecorder(sys.NumProcs(), h.MaxLevel)
	rec.SetIntervalTime(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The pre-ledger decision path allocated its snapshot buffer per
		// decision (see the levelWork fallback); charge the same here.
		w := make([]float64, sys.NumProcs())
		for _, g := range h.Grids(0) {
			w[g.Owner] += float64(g.NumCells())
		}
		for p, v := range w {
			rec.RecordLevelWork(p, 0, v)
		}
		if g := rec.Gain(sys); g < 0 {
			b.Fatal("negative gain")
		}
	}
}

// BenchmarkDecisionGroupWorksLedger measures the Eq. 2/3 group-work
// table through the incrementally bound recorder.
func BenchmarkDecisionGroupWorksLedger(b *testing.B) {
	sys, h := bench4k()
	rec := newRecorder(sys, h)
	rec.BindGroups(sys)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		works := rec.GroupWorks(sys)
		if len(works) != sys.NumGroups() {
			b.Fatal("bad group works")
		}
	}
}

// BenchmarkDecisionGroupWorksRecompute evaluates the same table
// through the recompute oracle (summing every processor per query).
func BenchmarkDecisionGroupWorksRecompute(b *testing.B) {
	sys, h := bench4k()
	rec := newRecorder(sys, h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for g := 0; g < sys.NumGroups(); g++ {
			if rec.GroupWorkRecompute(sys, g) < 0 {
				b.Fatal("negative work")
			}
		}
	}
}

// BenchmarkDecisionBalanceOverLedger measures the local phase's setup
// cost on an already balanced 4k-grid level with the ledger supplying
// the load maps and owned-grid lists.
func BenchmarkDecisionBalanceOverLedger(b *testing.B) {
	sys, h := bench4k()
	led := load.NewLedger(sys, h, nil)
	h.SetListener(led)
	ctx := &dlb.Context{Sys: sys, H: h, Load: newRecorder(sys, h), Ledger: led}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if migs := (dlb.ParallelDLB{}).LocalBalance(ctx, 0); len(migs) != 0 {
			b.Fatal("balanced level must not migrate")
		}
	}
}

// BenchmarkDecisionBalanceOverRecompute is the same pass building its
// load maps by walking all 4k grids.
func BenchmarkDecisionBalanceOverRecompute(b *testing.B) {
	sys, h := bench4k()
	ctx := &dlb.Context{Sys: sys, H: h, Load: newRecorder(sys, h)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if migs := (dlb.ParallelDLB{}).LocalBalance(ctx, 0); len(migs) != 0 {
			b.Fatal("balanced level must not migrate")
		}
	}
}

// BenchmarkDecisionGlobalCheckLedger measures the full distributed
// global-phase decision (trigger check through gain/cost, no
// redistribution on a balanced system) with ledger-backed aggregates.
func BenchmarkDecisionGlobalCheckLedger(b *testing.B) {
	sys, h := bench4k()
	led := load.NewLedger(sys, h, nil)
	h.SetListener(led)
	rec := newRecorder(sys, h)
	rec.BindGroups(sys)
	ctx := &dlb.Context{Sys: sys, H: h, Load: rec, Ledger: led}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := (dlb.DistributedDLB{}).GlobalBalance(ctx); d.Invoked {
			b.Fatal("balanced system must not redistribute")
		}
	}
}

// BenchmarkDecisionGlobalCheckRecompute is the same decision with
// every aggregate recomputed from the hierarchy.
func BenchmarkDecisionGlobalCheckRecompute(b *testing.B) {
	sys, h := bench4k()
	ctx := &dlb.Context{Sys: sys, H: h, Load: newRecorder(sys, h)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := (dlb.DistributedDLB{}).GlobalBalance(ctx); d.Invoked {
			b.Fatal("balanced system must not redistribute")
		}
	}
}

// --- fast data path: cached ghost-exchange plans vs the O(grids²) scan ---
//
// Each pair measures one step-path operation once through the cached
// data-motion plan (steady state: the plan is built before the timer
// starts and reused, exactly as in a run between regrids) and once
// through the original scan that rediscovered every overlap per step.

// benchFillHierarchy builds a data-carrying level 0 of 512 grids
// (64³ domain split 8×8×8) with a worker pool attached.
func benchFillHierarchy(pool *solver.Pool) *amr.Hierarchy {
	h := amr.New(geom.UnitCube(64), 2, 0, 1, true, "q")
	if pool != nil {
		h.SetPool(pool)
	}
	boxes := geom.BoxList{h.Domain}.SplitEvenly(512)
	boxes.SortByLo()
	for i, bx := range boxes {
		g := h.AddGrid(0, bx, i%8, amr.NoGrid)
		g.Patch.FillFunc("q", func(c geom.Index) float64 { return float64(c[0] + 64*c[1]) })
	}
	return h
}

// BenchmarkGhostFillPlanned measures the per-step ghost fill through
// the cached plan, pool-parallel over destination grids.
func BenchmarkGhostFillPlanned(b *testing.B) {
	h := benchFillHierarchy(solver.NewPool(0))
	h.FillGhostsData(0) // build the plan outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.FillGhostsData(0)
	}
}

// BenchmarkGhostFillScan is the pre-plan baseline: every step
// re-derives sibling overlaps by scanning all grid pairs.
func BenchmarkGhostFillScan(b *testing.B) {
	h := benchFillHierarchy(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.FillGhostsScan(0)
	}
}

// benchRestrictHierarchy builds a two-level hierarchy: 64 coarse
// grids, 512 fine grids tiling the whole refined domain.
func benchRestrictHierarchy() *amr.Hierarchy {
	h := amr.New(geom.UnitCube(64), 2, 1, 1, true, "q")
	coarse := geom.BoxList{h.Domain}.SplitEvenly(64)
	coarse.SortByLo()
	for i, bx := range coarse {
		g := h.AddGrid(0, bx, i%8, amr.NoGrid)
		g.Patch.FillFunc("q", func(c geom.Index) float64 { return float64(c[2]) })
	}
	fine := geom.BoxList{h.Domain.Refine(2)}.SplitEvenly(512)
	fine.SortByLo()
	for i, bx := range fine {
		var parent *amr.Grid
		cb := bx.Coarsen(2)
		for _, p := range h.Grids(0) {
			if p.Box.ContainsBox(cb) {
				parent = p
				break
			}
		}
		g := h.AddGrid(1, bx, i%8, parent.ID)
		g.Patch.FillFunc("q", func(c geom.Index) float64 { return float64(c[0] - c[1]) })
	}
	return h
}

// BenchmarkRestrictPlanned measures fine→coarse restriction through
// the cached grouped-by-parent plan.
func BenchmarkRestrictPlanned(b *testing.B) {
	h := benchRestrictHierarchy()
	h.SetPool(solver.NewPool(0))
	h.RestrictData(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.RestrictData(1)
	}
}

// BenchmarkRestrictScan is the per-grid walk baseline.
func BenchmarkRestrictScan(b *testing.B) {
	h := benchRestrictHierarchy()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.RestrictDataScan(1)
	}
}

// --- kernel step: pooled scratch vs per-step allocation ---

// BenchmarkKernelStepAdvection measures the rewritten upwind step
// (explicit row loops, sync.Pool scratch) on a 32³ patch.
func BenchmarkKernelStepAdvection(b *testing.B) {
	p := grid.NewPatch(geom.UnitCube(32), 0, 1, solver.FieldQ)
	p.FillFunc(solver.FieldQ, func(i geom.Index) float64 { return float64(i[0]) })
	k := solver.Advection3D{Vel: [3]float64{1, 0.5, 0.25}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step(p, 0.01, 1.0/32)
	}
}

// BenchmarkKernelStepAdvectionReference is the original per-cell
// closure implementation allocating its out-buffer every step.
func BenchmarkKernelStepAdvectionReference(b *testing.B) {
	p := grid.NewPatch(geom.UnitCube(32), 0, 1, solver.FieldQ)
	p.FillFunc(solver.FieldQ, func(i geom.Index) float64 { return float64(i[0]) })
	k := solver.Advection3D{Vel: [3]float64{1, 0.5, 0.25}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.StepReference(p, 0.01, 1.0/32)
	}
}

// BenchmarkKernelStepBurgers measures the rewritten Godunov step with
// pooled flux planes and scratch.
func BenchmarkKernelStepBurgers(b *testing.B) {
	p := grid.NewPatch(geom.UnitCube(32), 0, 1, solver.FieldQ)
	p.FillFunc(solver.FieldQ, func(i geom.Index) float64 { return float64(i[0]%5) * 0.2 })
	k := solver.Burgers3D{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step(p, 0.01, 1.0/32)
	}
}

// BenchmarkKernelStepBurgersReference allocates fresh flux planes and
// out-buffer every step, as the original did.
func BenchmarkKernelStepBurgersReference(b *testing.B) {
	p := grid.NewPatch(geom.UnitCube(32), 0, 1, solver.FieldQ)
	p.FillFunc(solver.FieldQ, func(i geom.Index) float64 { return float64(i[0]%5) * 0.2 })
	k := solver.Burgers3D{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.StepReference(p, 0.01, 1.0/32)
	}
}

// --- regrid: pool-parallel vs sequential child initialisation ---

// benchRegrid runs one RegridAll of the shock driver on a fresh
// data-carrying hierarchy per iteration.
func benchRegrid(b *testing.B, pool *solver.Pool) {
	s := workload.NewShockPool3D(32, 2)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := amr.New(geom.UnitCube(32), 2, 2, 1, true, "q")
		if pool != nil {
			h.SetPool(pool)
		}
		g := h.AddGrid(0, h.Domain, 0, amr.NoGrid)
		g.Patch.FillFunc("q", func(c geom.Index) float64 { return float64(c[0] + c[1] + c[2]) })
		b.StartTimer()
		n := h.RegridAll(0, func(level int, f *cluster.FlagField) {
			s.Flag(level, 0.3, f)
		}, amr.DefaultRegridParams(), nil)
		if n == 0 {
			b.Fatal("regrid created nothing")
		}
	}
}

// BenchmarkRegridParallel initialises new children over all cores.
func BenchmarkRegridParallel(b *testing.B) { benchRegrid(b, solver.NewPool(0)) }

// BenchmarkRegridSequential is the one-goroutine baseline.
func BenchmarkRegridSequential(b *testing.B) { benchRegrid(b, nil) }

// planBenchHierarchy tiles the 64^3 domain into n level-0 grids for
// the structural plan-path benchmarks.
func planBenchHierarchy(n int) *amr.Hierarchy {
	h := amr.New(geom.UnitCube(64), 2, 0, 1, false, "q")
	for i, bx := range (geom.BoxList{h.Domain}).SplitEvenly(n) {
		h.AddGrid(0, bx, i%8, amr.NoGrid)
	}
	return h
}

// benchGhostPlanSizes are the level populations of the indexed-vs-scan
// plan pair (the paper-scale regime where the O(n²) scan dominated
// regrid cost).
var benchGhostPlanSizes = []int{4096, 16384}

// BenchmarkGhostPlanIndexed measures from-scratch ghost-plan
// construction through the spatial index at 4096 and 16384 grids.
func BenchmarkGhostPlanIndexed(b *testing.B) {
	for _, n := range benchGhostPlanSizes {
		b.Run(fmt.Sprintf("grids%d", n), func(b *testing.B) {
			h := planBenchHierarchy(n)
			h.GhostPlan(0, false) // warm the index and the scratch pool
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if plan := h.GhostPlan(0, false); len(plan) == 0 {
					b.Fatal("no messages")
				}
			}
		})
	}
}

// BenchmarkGhostPlanScan is the retained O(n²) baseline of the pair.
func BenchmarkGhostPlanScan(b *testing.B) {
	for _, n := range benchGhostPlanSizes {
		b.Run(fmt.Sprintf("grids%d", n), func(b *testing.B) {
			h := planBenchHierarchy(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if plan := h.GhostPlanScan(0, false); len(plan) == 0 {
					b.Fatal("no messages")
				}
			}
		})
	}
}

// BenchmarkRegridReplanIndexed measures the replan cost after one
// localized structural mutation (a migration-style remove/re-add):
// the dirty tracking re-plans only the destinations near the change
// and the cached entry patches in place.
func BenchmarkRegridReplanIndexed(b *testing.B) {
	for _, n := range benchGhostPlanSizes[:1] {
		b.Run(fmt.Sprintf("grids%d", n), func(b *testing.B) {
			h := planBenchHierarchy(n)
			h.GhostPlanCached(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := h.Grids(0)[i%n]
				box, owner := g.Box, g.Owner
				h.RemoveGrid(g.ID)
				h.AddGrid(0, box, owner, amr.NoGrid)
				if plan := h.GhostPlanCached(0); len(plan) == 0 {
					b.Fatal("no messages")
				}
			}
		})
	}
}

// BenchmarkRegridReplanScan replans the same mutation with the O(n²)
// scan — the cost every structural change used to pay under global
// generation invalidation.
func BenchmarkRegridReplanScan(b *testing.B) {
	for _, n := range benchGhostPlanSizes[:1] {
		b.Run(fmt.Sprintf("grids%d", n), func(b *testing.B) {
			h := planBenchHierarchy(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g := h.Grids(0)[i%n]
				box, owner := g.Box, g.Owner
				h.RemoveGrid(g.ID)
				h.AddGrid(0, box, owner, amr.NoGrid)
				if plan := h.GhostPlanScan(0, false); len(plan) == 0 {
					b.Fatal("no messages")
				}
			}
		})
	}
}
