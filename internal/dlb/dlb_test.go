package dlb

import (
	"math"
	"testing"

	"samrdlb/internal/amr"
	"samrdlb/internal/geom"
	"samrdlb/internal/load"
	"samrdlb/internal/machine"
	"samrdlb/internal/netsim"
)

// slabHierarchy builds a level-0 decomposition of an n^3 domain into
// x-slabs with the given widths and owners.
func slabHierarchy(n int, widths, owners []int) *amr.Hierarchy {
	h := amr.New(geom.UnitCube(n), 2, 1, 1, false, "q")
	x := 0
	for i, w := range widths {
		h.AddGrid(0, geom.BoxFromShape(geom.Index{x, 0, 0}, geom.Index{w, n, n}), owners[i], amr.NoGrid)
		x += w
	}
	return h
}

func ctxFor(sys *machine.System, h *amr.Hierarchy) *Context {
	rec := load.NewRecorder(sys.NumProcs(), h.MaxLevel)
	return &Context{Sys: sys, H: h, Load: rec}
}

// recordCellLoads snapshots each processor's level-0 cells into the
// recorder, as the engine does after a step.
func recordCellLoads(ctx *Context) {
	w := levelWork(ctx, 0)
	for p, v := range w {
		ctx.Load.RecordLevelWork(p, 0, v)
	}
}

func procCells(ctx *Context, level int) map[int]float64 {
	out := map[int]float64{}
	for _, g := range ctx.H.Grids(level) {
		out[g.Owner] += float64(g.NumCells())
	}
	return out
}

func groupCells(ctx *Context, level, group int) float64 {
	var sum float64
	for _, g := range ctx.H.Grids(level) {
		if ctx.Sys.GroupOf(g.Owner) == group {
			sum += float64(g.NumCells())
		}
	}
	return sum
}

func TestParallelLocalBalanceEvensAllProcs(t *testing.T) {
	sys := machine.WanPair(2, nil)
	// 8 equal slabs, all initially on proc 0.
	h := slabHierarchy(8, []int{1, 1, 1, 1, 1, 1, 1, 1}, []int{0, 0, 0, 0, 0, 0, 0, 0})
	ctx := ctxFor(sys, h)
	migs := ParallelDLB{}.LocalBalance(ctx, 0)
	if len(migs) == 0 {
		t.Fatal("expected migrations")
	}
	pc := procCells(ctx, 0)
	for p := 0; p < 4; p++ {
		if pc[p] != 128 {
			t.Errorf("proc %d has %v cells, want 128", p, pc[p])
		}
	}
	// Parallel DLB happily crosses groups.
	crossed := false
	for _, m := range migs {
		if !sys.SameGroup(m.From, m.To) {
			crossed = true
		}
	}
	if !crossed {
		t.Error("parallel DLB should migrate across groups")
	}
}

func TestDistributedLocalBalanceStaysInGroup(t *testing.T) {
	sys := machine.WanPair(2, nil)
	// Group 0 overloaded on proc 0; group 1 balanced-ish on proc 2.
	h := slabHierarchy(8, []int{1, 1, 1, 1, 2, 2}, []int{0, 0, 0, 0, 2, 2})
	ctx := ctxFor(sys, h)
	migs := DistributedDLB{}.LocalBalance(ctx, 0)
	for _, m := range migs {
		if !sys.SameGroup(m.From, m.To) {
			t.Fatalf("distributed local balance crossed groups: %+v", m)
		}
	}
	pc := procCells(ctx, 0)
	// Within group 0: procs 0,1 should split the 4 slabs evenly.
	if pc[0] != pc[1] {
		t.Errorf("group 0 not balanced: %v vs %v", pc[0], pc[1])
	}
	// Within group 1: procs 2,3 should split their two slabs.
	if pc[2] != pc[3] {
		t.Errorf("group 1 not balanced: %v vs %v", pc[2], pc[3])
	}
}

func TestBalanceRespectsPerfWeights(t *testing.T) {
	// A 2:1 performance system: the fast proc should get ~2x the work.
	sys := machine.Heterogeneous(1, 1, 0.5, nil)
	h := slabHierarchy(6, []int{1, 1, 1, 1, 1, 1}, []int{0, 0, 0, 0, 0, 0})
	ctx := ctxFor(sys, h)
	balanceOver(ctx, 0, []int{0, 1})
	pc := procCells(ctx, 0)
	// Total 216 cells; targets 144 (perf 1) and 72 (perf 0.5). Grid
	// granularity is 36 cells, so expect exactly 144/72.
	if pc[0] != 144 || pc[1] != 72 {
		t.Errorf("perf-weighted balance got %v / %v, want 144 / 72", pc[0], pc[1])
	}
}

func TestPlaceChildDistributedKeepsParentGroup(t *testing.T) {
	sys := machine.WanPair(2, nil)
	h := slabHierarchy(8, []int{4, 4}, []int{1, 2})
	ctx := ctxFor(sys, h)
	parent := ctx.H.Grids(0)[1] // owned by proc 2 (group 1)
	owner := DistributedDLB{}.PlaceChild(ctx, geom.UnitCube(2), parent)
	if sys.GroupOf(owner) != 1 {
		t.Errorf("child placed in group %d, want parent's group 1", sys.GroupOf(owner))
	}
}

func TestPlaceChildParallelPicksGloballyLeastLoaded(t *testing.T) {
	sys := machine.WanPair(2, nil)
	h := amr.New(geom.UnitCube(8), 2, 1, 1, false, "q")
	p := h.AddGrid(0, geom.UnitCube(8), 0, amr.NoGrid)
	// Existing level-1 load on procs 0..2; proc 3 idle.
	h.AddGrid(1, geom.BoxFromShape(geom.Index{0, 0, 0}, geom.Index{4, 4, 4}), 0, p.ID)
	h.AddGrid(1, geom.BoxFromShape(geom.Index{4, 0, 0}, geom.Index{4, 4, 4}), 1, p.ID)
	h.AddGrid(1, geom.BoxFromShape(geom.Index{8, 0, 0}, geom.Index{4, 4, 4}), 2, p.ID)
	ctx := ctxFor(sys, h)
	owner := ParallelDLB{}.PlaceChild(ctx, geom.UnitCube(2), p)
	if owner != 3 {
		t.Errorf("parallel placement = %d, want idle proc 3", owner)
	}
}

func TestGlobalBalanceNoImbalanceNoAction(t *testing.T) {
	sys := machine.WanPair(2, nil)
	h := slabHierarchy(8, []int{4, 4}, []int{0, 2})
	ctx := ctxFor(sys, h)
	recordCellLoads(ctx)
	ctx.Load.SetIntervalTime(100)
	d := DistributedDLB{}.GlobalBalance(ctx)
	if d.Evaluated || d.Invoked {
		t.Errorf("balanced system triggered global phase: %+v", d)
	}
}

func TestGlobalBalanceMovesPaperAmount(t *testing.T) {
	sys := machine.WanPair(2, nil)
	// Donor group 0: slabs of 2 planes each, x in [0,6) = 384 cells on
	// procs 0/1; receiver group 1: x in [6,8) = 128 cells on proc 2.
	h := slabHierarchy(8, []int{2, 2, 2, 2}, []int{0, 1, 0, 2})
	ctx := ctxFor(sys, h)
	recordCellLoads(ctx)
	ctx.Load.SetIntervalTime(100)
	d := DistributedDLB{}.GlobalBalance(ctx)
	if !d.Evaluated || !d.Invoked {
		t.Fatalf("expected redistribution: %+v", d)
	}
	// frac = (384-128)/(2*384) = 1/3 of donor's 384 cells = 128 cells:
	// exactly the slab nearest the receiver.
	var moved int64
	for _, m := range d.Migrations {
		if sys.GroupOf(m.From) != 0 || sys.GroupOf(m.To) != 1 {
			t.Errorf("migration in wrong direction: %+v", m)
		}
		moved += ctx.H.Grid(m.Grid).NumCells()
	}
	if moved != 128 {
		t.Errorf("moved %d cells, want 128 per Fig. 6 formula", moved)
	}
	// Groups now hold 256/256.
	if groupCells(ctx, 0, 0) != 256 || groupCells(ctx, 0, 1) != 256 {
		t.Errorf("post-redistribution cells: %v / %v", groupCells(ctx, 0, 0), groupCells(ctx, 0, 1))
	}
	if d.ProbeTime <= 0 {
		t.Error("probe must consume time")
	}
	if d.Gain <= 0 || d.Cost <= 0 {
		t.Error("gain and cost must be reported")
	}
}

func TestGlobalBalanceMovesNearestGrids(t *testing.T) {
	sys := machine.WanPair(2, nil)
	h := slabHierarchy(8, []int{2, 2, 2, 2}, []int{0, 1, 0, 2})
	ctx := ctxFor(sys, h)
	recordCellLoads(ctx)
	ctx.Load.SetIntervalTime(100)
	d := DistributedDLB{}.GlobalBalance(ctx)
	if len(d.Migrations) != 1 {
		t.Fatalf("expected a single slab to move, got %v", d.Migrations)
	}
	g := ctx.H.Grid(d.Migrations[0].Grid)
	// The donor slab nearest the receiver (x in [4,6)) must be the one
	// that moved — the paper's boundary shift.
	if g.Box.Lo[0] != 4 {
		t.Errorf("moved slab at x=%d, want the boundary slab at x=4", g.Box.Lo[0])
	}
}

func TestGlobalBalanceSplitsGrids(t *testing.T) {
	sys := machine.WanPair(2, nil)
	// Donor owns one big 6-plane slab (384 cells); receiver has 128.
	h := slabHierarchy(8, []int{6, 2}, []int{0, 2})
	ctx := ctxFor(sys, h)
	recordCellLoads(ctx)
	ctx.Load.SetIntervalTime(100)
	nBefore := h.TotalCells(0)
	d := DistributedDLB{}.GlobalBalance(ctx)
	if !d.Invoked {
		t.Fatalf("expected redistribution: %+v", d)
	}
	if h.TotalCells(0) != nBefore {
		t.Error("splitting lost cells")
	}
	if err := h.CheckProperNesting(); err != nil {
		t.Errorf("split broke hierarchy: %v", err)
	}
	// ~128 cells (2 planes) should have moved to group 1.
	if got := groupCells(ctx, 0, 1); math.Abs(got-256) > 64 {
		t.Errorf("receiver now has %v cells, want ~256", got)
	}
	// The moved piece must be the high-x side (facing the receiver).
	for _, m := range d.Migrations {
		g := ctx.H.Grid(m.Grid)
		if g.Box.Hi[0] != 5 {
			t.Errorf("moved piece %v should abut the receiver boundary", g.Box)
		}
	}
}

func TestGlobalBalanceGammaGate(t *testing.T) {
	sys := machine.WanPair(2, nil)
	h := slabHierarchy(8, []int{2, 2, 2, 2}, []int{0, 1, 0, 2})
	ctx := ctxFor(sys, h)
	ctx.Gamma = 1e12
	recordCellLoads(ctx)
	ctx.Load.SetIntervalTime(100)
	d := DistributedDLB{}.GlobalBalance(ctx)
	if !d.Evaluated {
		t.Error("imbalance should trigger evaluation")
	}
	if d.Invoked {
		t.Error("huge gamma must veto redistribution")
	}
}

func TestGlobalBalanceAdaptsToTraffic(t *testing.T) {
	// The same imbalance is worth fixing on a quiet WAN but not on a
	// congested one: the scheme "adaptively chooses an appropriate
	// action based on the current observation of the traffic".
	build := func(traffic netsim.TrafficModel) GlobalDecision {
		sys := machine.WanPair(2, traffic)
		h := slabHierarchy(32, []int{8, 8, 8, 8}, []int{0, 1, 0, 2})
		ctx := ctxFor(sys, h)
		recordCellLoads(ctx)
		ctx.Load.SetIntervalTime(0.2)
		return DistributedDLB{}.GlobalBalance(ctx)
	}
	quiet := build(netsim.ConstantTraffic{Level: 0})
	busy := build(netsim.ConstantTraffic{Level: 0.9})
	if !quiet.Evaluated || !busy.Evaluated {
		t.Fatal("both runs should evaluate")
	}
	if !quiet.Invoked {
		t.Errorf("quiet network should redistribute (gain %v cost %v)", quiet.Gain, quiet.Cost)
	}
	if busy.Invoked {
		t.Errorf("congested network should defer (gain %v cost %v)", busy.Gain, busy.Cost)
	}
	if busy.Cost <= quiet.Cost {
		t.Error("congestion must raise the measured cost")
	}
}

func TestGlobalBalanceDeltaRaisesCost(t *testing.T) {
	sys := machine.WanPair(2, nil)
	h := slabHierarchy(8, []int{2, 2, 2, 2}, []int{0, 1, 0, 2})
	ctx := ctxFor(sys, h)
	recordCellLoads(ctx)
	ctx.Load.SetIntervalTime(100)
	ctx.Load.SetDelta(1e9) // enormous recorded repartition overhead
	d := DistributedDLB{}.GlobalBalance(ctx)
	if d.Invoked {
		t.Error("huge delta must veto redistribution")
	}
	if d.Cost < 1e9 {
		t.Errorf("cost must include delta: %v", d.Cost)
	}
}

func TestGlobalBalanceSingleGroupDegenerates(t *testing.T) {
	sys := machine.Origin2000("ANL", 4)
	h := slabHierarchy(8, []int{2, 2, 2, 2}, []int{0, 0, 0, 0})
	ctx := ctxFor(sys, h)
	recordCellLoads(ctx)
	d := DistributedDLB{}.GlobalBalance(ctx)
	if !d.Invoked {
		t.Error("single group should fall back to plain balancing")
	}
	pc := procCells(ctx, 0)
	for p := 0; p < 4; p++ {
		if pc[p] != 128 {
			t.Errorf("proc %d has %v cells", p, pc[p])
		}
	}
}

func TestParallelGlobalBalanceReportsMigrations(t *testing.T) {
	sys := machine.WanPair(2, nil)
	h := slabHierarchy(8, []int{2, 2, 2, 2}, []int{0, 0, 0, 0})
	ctx := ctxFor(sys, h)
	d := ParallelDLB{}.GlobalBalance(ctx)
	if !d.Invoked || len(d.Migrations) == 0 || d.MovedBytes == 0 {
		t.Errorf("parallel global balance should move grids: %+v", d)
	}
	if d.Evaluated {
		t.Error("parallel scheme never evaluates gain/cost")
	}
}

func TestImbalanceHelper(t *testing.T) {
	if Imbalance(nil) != 0 || Imbalance([]float64{0, 0}) != 0 {
		t.Error("degenerate imbalance wrong")
	}
	if got := Imbalance([]float64{100, 50}); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("Imbalance = %v", got)
	}
}

func TestBalanceOverNoGridsOrOneProc(t *testing.T) {
	sys := machine.WanPair(2, nil)
	h := amr.New(geom.UnitCube(8), 2, 1, 1, false, "q")
	ctx := ctxFor(sys, h)
	if migs := balanceOver(ctx, 0, []int{0, 1}); migs != nil {
		t.Error("no grids should yield no migrations")
	}
	h.AddGrid(0, geom.UnitCube(8), 0, amr.NoGrid)
	if migs := balanceOver(ctx, 0, []int{0}); migs != nil {
		t.Error("single proc should yield no migrations")
	}
}

func TestNames(t *testing.T) {
	if (ParallelDLB{}).Name() != "parallel-dlb" || (DistributedDLB{}).Name() != "distributed-dlb" {
		t.Error("scheme names wrong")
	}
}

func TestForecastSmoothsSpikyProbes(t *testing.T) {
	// The network is quiet except for a spike exactly when the probe
	// fires. The raw probe vetoes the redistribution; a forecaster
	// trained on the quiet history recognises the spike as an outlier
	// and lets the redistribution proceed.
	spike := netsim.TraceTraffic{
		Times: []float64{0, 99, 101},
		Loads: []float64{0.0, 0.93, 0.0},
	}
	mkCtx := func() *Context {
		sys := machine.WanPair(2, spike)
		h := slabHierarchy(32, []int{8, 8, 8, 8}, []int{0, 1, 0, 2})
		ctx := ctxFor(sys, h)
		recordCellLoads(ctx)
		// T chosen so gain sits between γ·cost(quiet) and γ·cost(spike).
		ctx.Load.SetIntervalTime(0.2)
		ctx.Now = func() float64 { return 100 } // probe during the spike
		return ctx
	}

	raw := mkCtx()
	dRaw := DistributedDLB{}.GlobalBalance(raw)
	if !dRaw.Evaluated || dRaw.Invoked {
		t.Fatalf("raw probe during spike should veto: %+v", dRaw)
	}

	fc := mkCtx()
	fc.Forecast = netsim.NewForecastSet()
	link, err := fc.Sys.Net.Between(0, 1)
	if err != nil {
		t.Fatalf("Between: %v", err)
	}
	// Train the forecaster with quiet-period probes.
	for ts := 0.0; ts < 90; ts += 10 {
		a, b, _ := link.Probe(ts)
		fc.Forecast.For(link).Record(a, b)
	}
	dFc := DistributedDLB{}.GlobalBalance(fc)
	if !dFc.Invoked {
		t.Errorf("forecast should override the spike: gain %v cost %v", dFc.Gain, dFc.Cost)
	}
	if dFc.Cost >= dRaw.Cost {
		t.Errorf("forecast cost %v should be below raw spike cost %v", dFc.Cost, dRaw.Cost)
	}
}

func TestGlobalBalanceThreeGroups(t *testing.T) {
	// Multi-site: the most overloaded site donates to the least
	// loaded; the middle site is untouched.
	sys := machine.MultiSite([]int{1, 1, 1}, nil)
	h := amr.New(geom.UnitCube(12), 2, 1, 1, false, "q")
	// Site 0: 8 planes; site 1: 3; site 2: 1.
	h.AddGrid(0, geom.BoxFromShape(geom.Index{0, 0, 0}, geom.Index{4, 12, 12}), 0, amr.NoGrid)
	h.AddGrid(0, geom.BoxFromShape(geom.Index{4, 0, 0}, geom.Index{4, 12, 12}), 0, amr.NoGrid)
	h.AddGrid(0, geom.BoxFromShape(geom.Index{8, 0, 0}, geom.Index{3, 12, 12}), 1, amr.NoGrid)
	h.AddGrid(0, geom.BoxFromShape(geom.Index{11, 0, 0}, geom.Index{1, 12, 12}), 2, amr.NoGrid)
	ctx := ctxFor(sys, h)
	recordCellLoads(ctx)
	ctx.Load.SetIntervalTime(100)
	d := DistributedDLB{}.GlobalBalance(ctx)
	if !d.Invoked {
		t.Fatalf("expected redistribution: %+v", d)
	}
	for _, m := range d.Migrations {
		if sys.GroupOf(m.From) != 0 || sys.GroupOf(m.To) != 2 {
			t.Errorf("migration should go site0 -> site2: %+v", m)
		}
	}
}
