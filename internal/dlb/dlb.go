// Package dlb implements the paper's two dynamic load balancers:
//
//   - ParallelDLB — the baseline scheme from Lan et al. (ICPP 2001),
//     designed for homogeneous parallel machines: after each time step
//     at every level, the level's grids are evenly redistributed over
//     *all* processors, ignoring group structure and network
//     heterogeneity.
//
//   - DistributedDLB — the paper's contribution: balancing is split
//     into a local phase (within each group, after every finer-level
//     step) and a global phase (between groups, evaluated only after
//     each level-0 step and invoked only when the heuristic gain
//     exceeds γ times the measured redistribution cost). Children are
//     always placed in their parent's group, eliminating remote
//     parent–child communication.
//
// Both balancers operate on the amr.Hierarchy's ownership fields and
// report the migrations they perform; the engine charges virtual time
// for the implied data motion.
package dlb

import (
	"math"
	"sort"

	"samrdlb/internal/amr"
	"samrdlb/internal/geom"
	"samrdlb/internal/load"
	"samrdlb/internal/machine"
	"samrdlb/internal/netsim"
)

// Context is the state a balancer works against.
type Context struct {
	Sys  *machine.System
	H    *amr.Hierarchy
	Load *load.Recorder
	// Ledger, when non-nil, supplies the incrementally maintained
	// aggregates (per-processor level loads, subtree works, owned-grid
	// lists) so the decision path reads O(1)/O(procs) state. When nil
	// every helper falls back to recomputing by walking the hierarchy
	// — the original behaviour, kept as the -ledgercheck oracle.
	Ledger *load.Ledger
	// Now returns the current virtual time, needed to probe links
	// whose background traffic varies.
	Now func() float64
	// Gamma is the γ threshold of Section 4.4 (default 2.0): global
	// redistribution runs only when Gain > γ·Cost.
	Gamma float64
	// ImbalanceEps is the trigger for the "imbalance exists?" test: the
	// gain/cost evaluation runs when the groups' normalised load ratio
	// exceeds 1+ImbalanceEps (default 0.05).
	ImbalanceEps float64
	// Forecast, when non-nil, smooths probe measurements NWS-style
	// before they enter the cost model — the integration the paper
	// lists as future work ("connect this proposed DLB scheme with
	// tools such as the NWS service"). Raw probes are still taken and
	// recorded; the forecast replaces them in Eq. 1. It is also the
	// fallback the global phase uses when every probe attempt fails.
	Forecast *netsim.ForecastSet
	// Quarantined, when non-nil, reports that a group is unreachable
	// at time t; the global phase must then skip it as donor and
	// receiver (fault-driven degraded mode).
	Quarantined func(group int, t float64) bool
	// Admitted, when non-nil, reports whether a processor is admitted
	// to own work under elastic membership: dead and rejoining procs
	// are excluded from placement and balancing targets until the
	// engine re-admits them. Nil admits every alive processor.
	Admitted func(p int) bool
	// Retry bounds the probe retry/backoff loop (zero value = netsim
	// defaults).
	Retry netsim.RetryPolicy
	// ForceEval makes the next global evaluation run even below the
	// imbalance trigger — the catch-up redistribution considered when
	// a quarantine window closes. The engine sets and clears it.
	ForceEval bool
}

// DefaultGamma is the paper's default γ.
const DefaultGamma = 2.0

// DefaultImbalanceEps is the default imbalance trigger.
const DefaultImbalanceEps = 0.05

func (c *Context) gamma() float64 {
	if c.Gamma <= 0 {
		return DefaultGamma
	}
	return c.Gamma
}

func (c *Context) imbalanceEps() float64 {
	if c.ImbalanceEps <= 0 {
		return DefaultImbalanceEps
	}
	return c.ImbalanceEps
}

func (c *Context) now() float64 {
	if c.Now == nil {
		return 0
	}
	return c.Now()
}

// Migration records one grid changing owner.
type Migration struct {
	Grid     amr.GridID
	From, To int
	Bytes    int64
}

// GlobalDecision reports what the global phase did after a level-0
// step.
type GlobalDecision struct {
	// Evaluated is true when imbalance triggered the gain/cost check.
	Evaluated bool
	// Gain and Cost are the heuristic estimates (Eqs. 1–4); valid when
	// Evaluated.
	Gain, Cost float64
	// Gamma and Delta snapshot the remaining inputs of the Eq. 1 gate
	// exactly as the balancer compared them: the γ threshold in effect
	// and the measured δ overhead folded into Cost. GainCostValid marks
	// the decisions where the gate actually ran — it stays false on the
	// one-group, degraded and parallel paths, where Invoked does not
	// follow from Gain > γ·Cost. Oracles must test the gate only when
	// GainCostValid; post-hoc recomputation from the recorder would see
	// a different (already reset, or resumed-stale) interval.
	Gamma, Delta  float64
	GainCostValid bool
	// ProbeTime is the wall time consumed measuring α and β.
	ProbeTime float64
	// Invoked is true when redistribution was actually performed.
	Invoked bool
	// Migrations lists the level-0 grids moved between groups.
	Migrations []Migration
	// MovedBytes is the total migrated volume.
	MovedBytes int64

	// Fault-tolerance outcome of the global phase.
	//
	// ProbeAttempts is the number of probe attempts made (0 when no
	// probe ran); RetryTime the wall time lost to failed attempts and
	// backoff (the engine charges it into δ). ProbeFailed is true when
	// every attempt failed; UsedForecast when the cost model then ran
	// on the NWS forecast instead of a live measurement. Quarantined
	// lists the groups excluded as donor/receiver; Degraded is true
	// when fewer than two groups were reachable and the step fell back
	// to local-only balancing.
	ProbeAttempts int
	RetryTime     float64
	ProbeFailed   bool
	UsedForecast  bool
	Quarantined   []int
	Degraded      bool
	// ProbedA and ProbedB are the two groups whose link the global
	// phase probed (donor and receiver); valid when ProbeAttempts > 0.
	// The engine feeds probe outcomes into membership suspicion.
	ProbedA, ProbedB int
}

// Balancer is a dynamic load-balancing scheme driven by the SAMR
// integration loop at the points of the paper's Figure 5.
type Balancer interface {
	// Name identifies the scheme in reports.
	Name() string
	// PlaceChild chooses the owner for a newly created child grid.
	PlaceChild(ctx *Context, childBox geom.Box, parent *amr.Grid) int
	// LocalBalance rebalances level l after one of its time steps and
	// returns the migrations performed.
	LocalBalance(ctx *Context, level int) []Migration
	// GlobalBalance runs after each level-0 time step.
	GlobalBalance(ctx *Context) GlobalDecision
}

// levelWork returns each processor's cell count at the given level:
// an O(procs) ledger read when one is attached, else a full walk of
// the level's grids.
func levelWork(ctx *Context, level int) []float64 {
	if ctx.Ledger != nil {
		return ctx.Ledger.LevelWork(level)
	}
	w := make([]float64, ctx.Sys.NumProcs())
	for _, g := range ctx.H.Grids(level) {
		w[g.Owner] += float64(g.NumCells())
	}
	return w
}

// balanceOver evenly redistributes level-l grids over the processors
// in procs, proportionally to their performance weights. Grids move
// from the most-overloaded processor to the most-underloaded until no
// move improves the imbalance. Returns the migrations.
func balanceOver(ctx *Context, level int, procs []int) []Migration {
	grids := ctx.H.Grids(level)
	if len(grids) == 0 || len(procs) < 2 {
		return nil
	}
	// Load maps: an O(procs) ledger read when one is attached, else a
	// full walk of the level's grids (the recompute oracle path).
	loadOf := make(map[int]float64, len(procs))
	byOwner := make(map[int][]*amr.Grid)
	var perfSum, total float64
	for _, p := range procs {
		perfSum += ctx.Sys.Perf(p)
	}
	if ctx.Ledger != nil {
		for _, p := range procs {
			loadOf[p] = ctx.Ledger.ProcCells(level, p)
			total += loadOf[p]
			// Copy: migrations mutate both these working lists and,
			// through ownership events, the ledger's own lists.
			byOwner[p] = append([]*amr.Grid(nil), ctx.Ledger.Owned(level, p)...)
		}
	} else {
		inSet := make(map[int]bool, len(procs))
		for _, p := range procs {
			inSet[p] = true
		}
		for _, g := range grids {
			if !inSet[g.Owner] {
				continue
			}
			loadOf[g.Owner] += float64(g.NumCells())
			total += float64(g.NumCells())
			byOwner[g.Owner] = append(byOwner[g.Owner], g)
		}
	}
	if total == 0 {
		return nil
	}
	var out []Migration
	for iter := 0; iter < 16*len(grids); iter++ {
		src, dst := extremeProcs(ctx, procs, loadOf)
		if src == dst {
			break
		}
		// Target loads proportional to perf; how much src should shed.
		srcTarget := total * ctx.Sys.Perf(src) / perfSum
		dstTarget := total * ctx.Sys.Perf(dst) / perfSum
		surplus := loadOf[src] - srcTarget
		deficit := dstTarget - loadOf[dst]
		budget := math.Min(surplus, deficit)
		if budget <= 0 {
			break
		}
		// Move the largest grid not exceeding the budget, or the
		// smallest grid if every grid exceeds it but moving it still
		// reduces the max-min spread.
		g := pickGrid(byOwner[src], budget)
		if g == nil {
			break
		}
		cells := float64(g.NumCells())
		if cells > budget {
			// Moving would overshoot; only do it if it still improves.
			// The spread test must use the same perf-normalised loads
			// donor/receiver selection uses: on heterogeneous
			// processors a raw-cell comparison stops the loop early or
			// accepts moves that worsen the normalised imbalance
			// (e.g. shipping a large grid to a slow processor).
			srcPerf, dstPerf := ctx.Sys.Perf(src), ctx.Sys.Perf(dst)
			newSpread := math.Abs((loadOf[dst]+cells)/dstPerf - (loadOf[src]-cells)/srcPerf)
			oldSpread := loadOf[src]/srcPerf - loadOf[dst]/dstPerf
			if newSpread >= oldSpread {
				break
			}
		}
		migrate(ctx, g, dst, &out, byOwner, loadOf)
	}
	return out
}

// extremeProcs returns the most overloaded and most underloaded
// processors (by perf-normalised load) of the set.
func extremeProcs(ctx *Context, procs []int, loadOf map[int]float64) (src, dst int) {
	src, dst = procs[0], procs[0]
	maxN, minN := math.Inf(-1), math.Inf(1)
	for _, p := range procs {
		n := loadOf[p] / ctx.Sys.Perf(p)
		if n > maxN {
			maxN, src = n, p
		}
		if n < minN {
			minN, dst = n, p
		}
	}
	return src, dst
}

// pickGrid returns the largest grid with at most `budget` cells, or
// the overall smallest grid when none fits. Ties break on the lowest
// grid ID — never on slice position, which shifts as migrations
// append to and delete from the per-owner lists — so migration
// sequences are insensitive to grid traversal order.
func pickGrid(grids []*amr.Grid, budget float64) *amr.Grid {
	var best, smallest *amr.Grid
	for _, g := range grids {
		c := float64(g.NumCells())
		if smallest == nil || c < float64(smallest.NumCells()) ||
			(c == float64(smallest.NumCells()) && g.ID < smallest.ID) {
			smallest = g
		}
		if c <= budget && (best == nil || c > float64(best.NumCells()) ||
			(c == float64(best.NumCells()) && g.ID < best.ID)) {
			best = g
		}
	}
	if best != nil {
		return best
	}
	return smallest
}

func migrate(ctx *Context, g *amr.Grid, to int, out *[]Migration, byOwner map[int][]*amr.Grid, loadOf map[int]float64) {
	from := g.Owner
	cells := float64(g.NumCells())
	// Remove from source list.
	lst := byOwner[from]
	for i, x := range lst {
		if x.ID == g.ID {
			byOwner[from] = append(lst[:i], lst[i+1:]...)
			break
		}
	}
	ctx.H.SetOwner(g, to)
	byOwner[to] = append(byOwner[to], g)
	loadOf[from] -= cells
	loadOf[to] += cells
	*out = append(*out, Migration{
		Grid: g.ID, From: from, To: to,
		Bytes: g.Bytes(len(ctx.H.Fields)),
	})
}

// leastLoadedProc returns the processor of the set with the smallest
// perf-normalised cell count at the given level.
func leastLoadedProc(ctx *Context, procs []int, level int) int {
	w := levelWork(ctx, level)
	best, bestN := procs[0], math.Inf(1)
	for _, p := range procs {
		n := w[p] / ctx.Sys.Perf(p)
		if n < bestN {
			best, bestN = p, n
		}
	}
	return best
}

// Imbalance returns (max-min)/max over the given loads (0 when all
// zero): a scale-free measure used in tests and reports.
func Imbalance(works []float64) float64 {
	if len(works) == 0 {
		return 0
	}
	maxW, minW := works[0], works[0]
	for _, w := range works[1:] {
		maxW = math.Max(maxW, w)
		minW = math.Min(minW, w)
	}
	if maxW <= 0 {
		return 0
	}
	return (maxW - minW) / maxW
}

// sortedCopy returns procs sorted ascending (stable iteration order
// for deterministic balancing).
func sortedCopy(procs []int) []int {
	out := append([]int(nil), procs...)
	sort.Ints(out)
	return out
}
