package dlb

import (
	"sort"

	"samrdlb/internal/amr"
	"samrdlb/internal/geom"
)

// CurveKind selects the space-filling curve an SFCDLB orders grids
// by. The zero value is the Morton curve, preserving the behaviour of
// the original SFC scheme.
type CurveKind int

const (
	// CurveMorton orders grids by the Z-order key of their centroid.
	CurveMorton CurveKind = iota
	// CurveHilbert orders grids by the Hilbert key of their centroid:
	// consecutive curve positions are face neighbours, so contiguous
	// runs are spatially tighter than Morton runs.
	CurveHilbert
)

// SFCDLB is a locality-preserving variant of the distributed scheme:
// its local phase partitions each group's grids along a space-filling
// curve into contiguous, performance-weighted runs, instead of
// greedily migrating grids between load extremes. Contiguous curve
// runs are spatially compact, so neighbouring grids tend to share a
// processor and the sibling exchange stays local — the partitioning
// style later AMR frameworks adopted. Placement and the global phase
// are inherited from DistributedDLB, so the comparison against the
// paper's scheme isolates the local-phase policy. Curve selects the
// ordering (Morton by default, Hilbert for tighter runs).
type SFCDLB struct {
	Curve CurveKind
}

// Name implements Balancer.
func (s SFCDLB) Name() string {
	if s.Curve == CurveHilbert {
		return "hilbert-sfc-dlb"
	}
	return "sfc-dlb"
}

// PlaceChild implements Balancer (same policy as the distributed
// scheme: children stay in the parent's group).
func (s SFCDLB) PlaceChild(ctx *Context, childBox geom.Box, parent *amr.Grid) int {
	return DistributedDLB{}.PlaceChild(ctx, childBox, parent)
}

// GlobalBalance implements Balancer via the paper's global phase.
func (s SFCDLB) GlobalBalance(ctx *Context) GlobalDecision {
	return DistributedDLB{}.GlobalBalance(ctx)
}

// LocalBalance implements Balancer: within each group, grids at the
// level are sorted by the curve key of their centroid and dealt out
// as contiguous runs sized proportionally to processor performance.
// Runs are dealt over groupProcs — the alive, admitted processors —
// so a curve share is never assigned to a failed processor (the same
// set the paper's balanceOver partitions over).
func (s SFCDLB) LocalBalance(ctx *Context, level int) []Migration {
	var out []Migration
	for g := 0; g < ctx.Sys.NumGroups(); g++ {
		out = append(out, sfcPartition(ctx, level, groupProcs(ctx, g), s.keyOf)...)
	}
	return out
}

// keyOf returns the curve key of a box's centroid (doubled to stay
// integral).
func (s SFCDLB) keyOf(b geom.Box) uint64 {
	if s.Curve == CurveHilbert {
		return b.Lo.Add(b.Hi).HilbertKey()
	}
	return mortonOf(b)
}

// mortonOf returns the Morton key of a box's centroid (doubled to
// stay integral).
func mortonOf(b geom.Box) uint64 {
	return b.Lo.Add(b.Hi).MortonKey()
}

// sfcPartition assigns the procs' grids at the level along the curve.
func sfcPartition(ctx *Context, level int, procs []int, keyOf func(geom.Box) uint64) []Migration {
	if len(procs) < 2 {
		return nil
	}
	inSet := make(map[int]bool, len(procs))
	for _, p := range procs {
		inSet[p] = true
	}
	var grids []*amr.Grid
	var total float64
	for _, g := range ctx.H.Grids(level) {
		if inSet[g.Owner] {
			grids = append(grids, g)
			total += float64(g.NumCells())
		}
	}
	if len(grids) == 0 {
		return nil
	}
	sort.Slice(grids, func(i, j int) bool {
		ki := keyOf(grids[i].Box)
		kj := keyOf(grids[j].Box)
		if ki != kj {
			return ki < kj
		}
		return grids[i].ID < grids[j].ID
	})
	var perfSum float64
	for _, p := range procs {
		perfSum += ctx.Sys.Perf(p)
	}
	var out []Migration
	var assigned, cumPerf float64
	pi := 0
	numFields := len(ctx.H.Fields)
	for _, g := range grids {
		// Advance to the next processor once this one holds its
		// perf-proportional share of the curve.
		for pi < len(procs)-1 {
			cumPerf = 0
			for k := 0; k <= pi; k++ {
				cumPerf += ctx.Sys.Perf(procs[k])
			}
			if assigned < total*cumPerf/perfSum {
				break
			}
			pi++
		}
		target := procs[pi]
		if g.Owner != target {
			out = append(out, Migration{Grid: g.ID, From: g.Owner, To: target, Bytes: g.Bytes(numFields)})
			ctx.H.SetOwner(g, target)
		}
		assigned += float64(g.NumCells())
	}
	return out
}
