package dlb

import (
	"fmt"
	"sort"
)

// Traits declares which of the oracle-checked structural promises a
// policy makes. The invariant checker scopes its paper-specific rules
// with these, so the same differential harness can audit every policy
// without false positives:
//
//   - Colocation: children live in their parent's group, local-phase
//     migrations stay within a group, and only level-0 grids cross
//     groups (Sections 4.2–4.3). Structural rules — proper nesting,
//     owner ranges, ledger exactness, owners-alive — are always
//     checked and have no trait.
//   - GainGate: the global phase redistributes on a multi-group
//     healthy system only after running the Gain > γ·Cost gate of
//     Eq. 1 and records the compared values (GainCostValid).
//     Diffusion deliberately has no such gate.
//   - BalanceTolerance: after a local pass, each balanced set's
//     perf-normalised loads lie within one grid quantum of the
//     proportional target. SFC contiguity and knapsack's movement cap
//     both trade this away by design.
type Traits struct {
	Colocation       bool
	GainGate         bool
	BalanceTolerance bool
}

type policyEntry struct {
	canonical string
	traits    Traits
	factory   func() Balancer
}

var policyRegistry = map[string]policyEntry{}

// RegisterPolicy adds a balancer factory to the registry under a
// canonical name plus optional aliases. Policies are factories, not
// values: some (diffusion's second-order flow memory) carry per-run
// state, so every run must get a fresh instance. Re-registering a
// name panics — the registry is wired at init time.
func RegisterPolicy(name string, traits Traits, factory func() Balancer, aliases ...string) {
	for _, n := range append([]string{name}, aliases...) {
		if _, dup := policyRegistry[n]; dup {
			panic("dlb: duplicate policy name " + n)
		}
		policyRegistry[n] = policyEntry{canonical: name, traits: traits, factory: factory}
	}
}

// NewPolicy builds a fresh balancer for the named policy (canonical
// name or alias).
func NewPolicy(name string) (Balancer, error) {
	e, ok := policyRegistry[name]
	if !ok {
		return nil, fmt.Errorf("dlb: unknown policy %q (have %v)", name, PolicyNames())
	}
	return e.factory(), nil
}

// PolicyNames returns the canonical registered policy names, sorted.
func PolicyNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range policyRegistry {
		if !seen[e.canonical] {
			seen[e.canonical] = true
			out = append(out, e.canonical)
		}
	}
	sort.Strings(out)
	return out
}

// PolicyTraits returns the named policy's invariant traits; ok is
// false for unknown names.
func PolicyTraits(name string) (Traits, bool) {
	e, ok := policyRegistry[name]
	return e.traits, ok
}

// CanonicalPolicy resolves a name or alias to the canonical policy
// name; ok is false for unknown names.
func CanonicalPolicy(name string) (string, bool) {
	e, ok := policyRegistry[name]
	return e.canonical, ok
}

func init() {
	// The paper's scheme: the full local/global split with the Eq. 1
	// gate. "paper" aliases it for the ablation vocabulary.
	RegisterPolicy("distributed", Traits{Colocation: true, GainGate: true, BalanceTolerance: true},
		func() Balancer { return DistributedDLB{} }, "paper")
	// The ICPP 2001 baseline: group-oblivious even redistribution. It
	// deliberately scatters children, so no co-location; it never runs
	// a gate.
	RegisterPolicy("parallel", Traits{BalanceTolerance: true},
		func() Balancer { return ParallelDLB{} })
	// SFC local phases inherit the paper's placement and global gate
	// but trade the one-quantum tolerance for curve contiguity.
	RegisterPolicy("sfc", Traits{Colocation: true, GainGate: true},
		func() Balancer { return SFCDLB{} })
	RegisterPolicy("hilbert-sfc", Traits{Colocation: true, GainGate: true},
		func() Balancer { return SFCDLB{Curve: CurveHilbert} })
	// Diffusion balances groups with ungated nearest-neighbour flows:
	// no Gain/Cost record ever exists (that absence is exactly what the
	// trait scoping covers). First-order is stateless; second-order
	// carries flow memory across steps.
	RegisterPolicy("diffusion", Traits{Colocation: true, BalanceTolerance: true},
		func() Balancer { return &DiffusionDLB{} })
	RegisterPolicy("diffusion-sos", Traits{Colocation: true, BalanceTolerance: true},
		func() Balancer { return &DiffusionDLB{Order: 2} })
	// Knapsack/LPT packs each group from scratch under a movement-cost
	// cap; when the cap binds, the one-quantum tolerance is forfeit.
	RegisterPolicy("knapsack", Traits{Colocation: true, GainGate: true},
		func() Balancer { return KnapsackDLB{} })
}
