package dlb

import (
	"testing"

	"samrdlb/internal/amr"
	"samrdlb/internal/geom"
	"samrdlb/internal/load"
	"samrdlb/internal/machine"
)

// ledgerCtx attaches an installed ledger to a context, as the engine
// does.
func ledgerCtx(sys *machine.System, h *amr.Hierarchy) *Context {
	ctx := ctxFor(sys, h)
	ctx.Ledger = load.NewLedger(sys, h, nil)
	h.SetListener(ctx.Ledger)
	return ctx
}

func TestBalanceOverHeterogeneousOvershoot(t *testing.T) {
	// Regression for the overshoot check: proc 0 runs at perf 1, proc 1
	// at perf 0.5. Proc 1 holds a 30-cell and a 10-cell grid. After the
	// 10-cell grid moves, the 30-cell grid exceeds the remaining budget
	// — but moving it still shrinks the perf-normalised spread (50 →
	// 40). The old raw-cell spread test compared 40 against 20 and
	// stopped, stranding the big grid on the slow processor at a
	// normalised imbalance of 6:1.
	sys := machine.Heterogeneous(1, 1, 0.5, nil)
	h := amr.New(geom.UnitCube(8), 2, 1, 1, false, "q")
	h.AddGrid(0, geom.BoxFromShape(geom.Index{0, 0, 0}, geom.Index{5, 3, 2}), 1, amr.NoGrid) // 30 cells
	h.AddGrid(0, geom.BoxFromShape(geom.Index{0, 3, 0}, geom.Index{5, 2, 1}), 1, amr.NoGrid) // 10 cells
	ctx := ctxFor(sys, h)
	balanceOver(ctx, 0, []int{0, 1})
	pc := procCells(ctx, 0)
	// The fast processor must end with the 30-cell grid; the only
	// normalised-spread-minimising assignment at this granularity is
	// 30/10 (norm 30 vs 20), never 10/30 (norm 10 vs 60).
	if pc[0] != 30 || pc[1] != 10 {
		t.Errorf("heterogeneous balance left %v/%v cells, want 30/10 on the fast proc", pc[0], pc[1])
	}
}

func TestBalanceOverHomogeneousOvershootStillBreaks(t *testing.T) {
	// On equal-perf processors the fixed check reduces to the original:
	// a move that cannot improve the raw spread must not happen.
	sys := machine.WanPair(1, nil) // 2 procs, perf 1 each
	h := amr.New(geom.UnitCube(8), 2, 1, 1, false, "q")
	h.AddGrid(0, geom.BoxFromShape(geom.Index{0, 0, 0}, geom.Index{4, 8, 8}), 0, amr.NoGrid) // 256
	h.AddGrid(0, geom.BoxFromShape(geom.Index{4, 0, 0}, geom.Index{4, 8, 8}), 0, amr.NoGrid) // 256
	ctx := ctxFor(sys, h)
	migs := balanceOver(ctx, 0, []int{0, 1})
	if len(migs) != 1 {
		t.Fatalf("expected exactly one migration, got %d", len(migs))
	}
	pc := procCells(ctx, 0)
	if pc[0] != 256 || pc[1] != 256 {
		t.Errorf("homogeneous balance got %v/%v, want 256/256", pc[0], pc[1])
	}
}

func TestPickGridTieBreaksByID(t *testing.T) {
	mk := func(ids ...amr.GridID) []*amr.Grid {
		box := geom.BoxFromShape(geom.Index{0, 0, 0}, geom.Index{2, 2, 2})
		out := make([]*amr.Grid, len(ids))
		for i, id := range ids {
			out[i] = &amr.Grid{ID: id, Box: box} // 8 cells each
		}
		return out
	}
	// Equal sizes under budget: lowest ID wins, whatever the order.
	for _, perm := range [][]amr.GridID{{3, 1, 2}, {2, 3, 1}, {1, 2, 3}} {
		if g := pickGrid(mk(perm...), 100); g.ID != 1 {
			t.Errorf("order %v: best pick = %d, want 1", perm, g.ID)
		}
		// Equal sizes over budget: the "smallest" fallback must use the
		// same tie-break.
		if g := pickGrid(mk(perm...), 1); g.ID != 1 {
			t.Errorf("order %v: smallest pick = %d, want 1", perm, g.ID)
		}
	}
}

func TestBalanceOverDeterministicAcrossListOrders(t *testing.T) {
	// The ledger's owned lists are event-ordered; the recompute path
	// walks Grids(level) in ID order. With equal-size grids everywhere
	// (maximal tie pressure) both traversal orders must yield the same
	// final box→owner assignment — the ID tie-break makes migration
	// sequences insensitive to list order.
	build := func() *amr.Hierarchy {
		h := amr.New(geom.UnitCube(8), 2, 1, 1, false, "q")
		for x := 0; x < 8; x++ {
			h.AddGrid(0, geom.BoxFromShape(geom.Index{x, 0, 0}, geom.Index{1, 8, 8}), 0, amr.NoGrid)
		}
		return h
	}
	assign := func(ctx *Context) map[geom.Box]int {
		balanceOver(ctx, 0, []int{0, 1, 2, 3})
		out := map[geom.Box]int{}
		for _, g := range ctx.H.Grids(0) {
			out[g.Box] = g.Owner
		}
		return out
	}
	sys := machine.WanPair(2, nil)
	plain := assign(ctxFor(sys, build()))
	ledgered := assign(ledgerCtx(sys, build()))
	if len(plain) != len(ledgered) {
		t.Fatalf("assignment sizes differ: %d vs %d", len(plain), len(ledgered))
	}
	for box, owner := range plain {
		if ledgered[box] != owner {
			t.Errorf("box %v: plain owner %d, ledger owner %d", box, owner, ledgered[box])
		}
	}
}

func TestLocalBalanceLedgerMatchesRecompute(t *testing.T) {
	// Full local-phase parity: identical hierarchies balanced with and
	// without a ledger must produce identical migrations, and the
	// ledger must stay exact through them.
	build := func() *amr.Hierarchy {
		return slabHierarchy(8, []int{1, 1, 1, 1, 2, 2}, []int{0, 0, 0, 0, 2, 2})
	}
	sys := machine.WanPair(2, nil)
	plainCtx := ctxFor(sys, build())
	ledCtx := ledgerCtx(sys, build())
	plain := DistributedDLB{}.LocalBalance(plainCtx, 0)
	led := DistributedDLB{}.LocalBalance(ledCtx, 0)
	if len(plain) != len(led) {
		t.Fatalf("migration counts differ: %d vs %d", len(plain), len(led))
	}
	for i := range plain {
		if plain[i] != led[i] {
			t.Errorf("migration %d differs: %+v vs %+v", i, plain[i], led[i])
		}
	}
	if err := ledCtx.Ledger.Verify(); err != nil {
		t.Errorf("ledger diverged after local balance: %v", err)
	}
}

func TestGlobalBalanceLedgerMatchesRecompute(t *testing.T) {
	build := func() *amr.Hierarchy {
		return slabHierarchy(8, []int{2, 2, 2, 2}, []int{0, 1, 0, 2})
	}
	sys := machine.WanPair(2, nil)
	run := func(ctx *Context) GlobalDecision {
		recordCellLoads(ctx)
		ctx.Load.SetIntervalTime(100)
		return DistributedDLB{}.GlobalBalance(ctx)
	}
	plain := run(ctxFor(sys, build()))
	ledCtx := ledgerCtx(sys, build())
	led := run(ledCtx)
	if plain.Evaluated != led.Evaluated || plain.Invoked != led.Invoked {
		t.Fatalf("decisions differ: %+v vs %+v", plain, led)
	}
	if plain.Gain != led.Gain || plain.Cost != led.Cost {
		t.Errorf("gain/cost differ: (%v,%v) vs (%v,%v)", plain.Gain, plain.Cost, led.Gain, led.Cost)
	}
	if len(plain.Migrations) != len(led.Migrations) {
		t.Fatalf("migration counts differ: %d vs %d", len(plain.Migrations), len(led.Migrations))
	}
	for i := range plain.Migrations {
		if plain.Migrations[i] != led.Migrations[i] {
			t.Errorf("migration %d differs: %+v vs %+v", i, plain.Migrations[i], led.Migrations[i])
		}
	}
	if err := ledCtx.Ledger.Verify(); err != nil {
		t.Errorf("ledger diverged after global balance: %v", err)
	}
}

func TestGlobalBalanceSingleGroupChargedAsRedistribution(t *testing.T) {
	// One group: the level-0 rebalancing is still the scheme's global
	// phase. Evaluated must mirror Invoked so the engine books the
	// moves under Redistribution and measures δ; Gain/Cost stay zero
	// because no estimate was needed.
	sys := machine.Origin2000("ANL", 4)
	h := slabHierarchy(8, []int{2, 2, 2, 2}, []int{0, 0, 0, 0})
	ctx := ctxFor(sys, h)
	recordCellLoads(ctx)
	d := DistributedDLB{}.GlobalBalance(ctx)
	if !d.Invoked {
		t.Fatal("imbalanced single group must redistribute")
	}
	if !d.Evaluated {
		t.Error("single-group redistribution must count as evaluated (engine charges δ)")
	}
	if d.Gain != 0 || d.Cost != 0 {
		t.Errorf("single group has no gain/cost estimate: %v / %v", d.Gain, d.Cost)
	}
	// A balanced single group must neither evaluate nor invoke.
	h2 := slabHierarchy(8, []int{2, 2, 2, 2}, []int{0, 1, 2, 3})
	ctx2 := ctxFor(sys, h2)
	recordCellLoads(ctx2)
	d2 := DistributedDLB{}.GlobalBalance(ctx2)
	if d2.Evaluated || d2.Invoked {
		t.Errorf("balanced single group acted: %+v", d2)
	}
}

func TestImbalanceEdgeCases(t *testing.T) {
	if got := Imbalance([]float64{7}); got != 0 {
		t.Errorf("single element: %v", got)
	}
	if got := Imbalance([]float64{4, 4, 4}); got != 0 {
		t.Errorf("all equal: %v", got)
	}
	if got := Imbalance([]float64{0, 10}); got != 1 {
		t.Errorf("idle processor should read as full imbalance: %v", got)
	}
	for _, in := range [][]float64{nil, {0}, {1}, {3, 1, 2}, {0, 0, 5}} {
		if got := Imbalance(in); got < 0 || got > 1 {
			t.Errorf("Imbalance(%v) = %v escapes [0,1]", in, got)
		}
	}
}
