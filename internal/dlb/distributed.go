package dlb

import (
	"math"
	"sort"

	"samrdlb/internal/amr"
	"samrdlb/internal/geom"
	"samrdlb/internal/load"
)

// DistributedDLB is the paper's scheme for distributed systems. Its
// behaviour, following Section 4:
//
//   - Local phase: after each time step at a finer level, each group
//     evenly redistributes that level's grids among its own
//     processors only. Children stay in their parent's group, so
//     parent–child communication never crosses the WAN.
//
//   - Global phase: after each time step at level 0, the groups'
//     iteration-weighted workloads (Eqs. 2–3) are compared. If the
//     normalised imbalance exceeds the trigger, the scheme probes the
//     inter-group link with two messages (recovering α and β),
//     estimates the redistribution cost (Eq. 1) and the computational
//     gain (Eq. 4), and redistributes level-0 grids from the
//     overloaded to the underloaded group only when Gain > γ·Cost.
//     The amount moved is the paper's boundary shift:
//     (W_A − W_B) / (2·W_A) of A's level-0 cells, taken from the
//     grids nearest the receiving group's region, splitting a grid
//     when a whole one would overshoot.
type DistributedDLB struct{}

// Name implements Balancer.
func (DistributedDLB) Name() string { return "distributed-dlb" }

// PlaceChild implements Balancer: children go to the least-loaded
// surviving processor of the parent's group, keeping parent–child
// communication local.
func (DistributedDLB) PlaceChild(ctx *Context, childBox geom.Box, parent *amr.Grid) int {
	group := ctx.Sys.GroupOf(parent.Owner)
	return leastLoadedProc(ctx, groupProcs(ctx, group), parent.Level+1)
}

// LocalBalance implements Balancer: per-group even redistribution
// over the group's surviving processors. "An overloaded processor can
// migrate its workload to an underloaded processor of the same group
// only."
func (DistributedDLB) LocalBalance(ctx *Context, level int) []Migration {
	var out []Migration
	for g := 0; g < ctx.Sys.NumGroups(); g++ {
		out = append(out, balanceOver(ctx, level, groupProcs(ctx, g))...)
	}
	return out
}

// GlobalBalance implements Balancer (the flowchart of Fig. 4, left
// column), extended with the fault-driven degraded modes: quarantined
// groups are skipped as donor and receiver, probes retry with
// exponential backoff and fall back to the NWS forecast, and when
// fewer than two groups are reachable the step degrades to local-only
// balancing until the outage lifts.
func (DistributedDLB) GlobalBalance(ctx *Context) GlobalDecision {
	var d GlobalDecision
	sys := ctx.Sys
	if sys.NumGroups() < 2 {
		// Degenerate distributed system: there is no inter-group link
		// to probe, but the level-0 redistribution is still the
		// scheme's global phase, not local traffic. Marking it
		// evaluated makes the engine charge the moves to the
		// Redistribution phase and record δ, so the cost side of
		// Eq. 1 keeps its history on one-group systems (previously the
		// moves were mis-charged as LocalComm and δ silently stayed
		// zero). Gain/Cost remain zero: no estimate was needed.
		d.Migrations = balanceOver(ctx, 0, allProcs(ctx))
		for _, m := range d.Migrations {
			d.MovedBytes += m.Bytes
		}
		d.Invoked = len(d.Migrations) > 0
		d.Evaluated = d.Invoked
		return d
	}

	healthy := healthyGroups(ctx, &d)
	if len(healthy) < 2 {
		degradeToLocal(ctx, &d)
		return d
	}

	// "imbalance exist?" — judged over the reachable groups only; a
	// catch-up evaluation right after a quarantine forces the check.
	works := ctx.Load.GroupWorks(sys)
	donor, recv := -1, -1
	maxN, minN := math.Inf(-1), math.Inf(1)
	for _, g := range healthy {
		n := works[g] / sys.GroupPerf(g)
		if n > maxN {
			maxN, donor = n, g
		}
		if n < minN {
			minN, recv = n, g
		}
	}
	if !ctx.ForceEval {
		ratio := math.Inf(1) // minN == 0 with work elsewhere: unbounded imbalance
		switch {
		case maxN <= 0:
			ratio = 1 // nothing reachable holds work: perfectly (vacuously) balanced
		case minN > 0:
			ratio = maxN / minN
		}
		if ratio <= 1+ctx.imbalanceEps() {
			return d
		}
	}
	d.Evaluated = true

	// Degenerate loads: no reachable work, or one group holding
	// everything with nowhere distinct to send it.
	if donor == recv || maxN <= 0 {
		return d
	}

	// The boundary-shift amount (Fig. 6): a fraction
	// (W_A − W_B) / (2·W_A) of the donor's workload, using
	// perf-normalised works so the formula extends to heterogeneous
	// groups (it reduces to the paper's for equal performance). The
	// workload of a level-0 grid includes its whole subtree with
	// Eq. 3's iteration weighting — a level-0 grid whose region holds
	// deep refinement carries far more work than its own cells.
	frac := (maxN - minN) / (2 * maxN)
	donorWork := groupSubtreeWork(ctx, donor)
	moveWork := frac * donorWork
	if moveWork < 1 {
		return d
	}
	// The transferred bytes are the level-0 share of the moved work
	// (only level-0 grids migrate; finer grids are rebuilt from them).
	donorCells := groupLevel0Cells(ctx, donor)
	moveBytes := int64(frac*float64(donorCells)) * int64(len(ctx.H.Fields)) * 8
	if moveBytes < 8 {
		moveBytes = 8
	}

	// Probe the link between the two groups: two messages yield α̂, β̂
	// under the network's *current* background traffic. Probes can
	// time out under fault injection; the bounded retry loop backs
	// off exponentially and its wasted wall time is charged to the δ
	// overhead term by the engine.
	link, lerr := sys.Net.Between(donor, recv)
	if lerr != nil {
		// No route between the two groups at all: treat the pair as
		// unreachable for this step.
		d.ProbeFailed = true
		return d
	}
	alphaHat, betaHat, probeT, retryT, attempts, perr := link.ProbeWithRetry(ctx.now(), ctx.Retry)
	d.ProbedA, d.ProbedB = donor, recv
	d.ProbeTime = probeT
	d.RetryTime = retryT
	d.ProbeAttempts = attempts
	if perr != nil {
		d.ProbeFailed = true
		// Every attempt failed: fall back to the last NWS forecast of
		// this link. With no history either, there is no cost
		// estimate to trust — skip redistribution until the network
		// answers again.
		if ctx.Forecast != nil {
			if a, b, ok := ctx.Forecast.For(link).Forecast(); ok {
				alphaHat, betaHat = a, b
				d.UsedForecast = true
			}
		}
		if !d.UsedForecast {
			return d
		}
	} else if ctx.Forecast != nil {
		// With NWS-style forecasting enabled, the probe feeds the
		// measurement history and the smoothed prediction replaces
		// the instantaneous values in the cost model.
		lf := ctx.Forecast.For(link)
		lf.Record(alphaHat, betaHat)
		if a, b, ok := lf.Forecast(); ok {
			alphaHat, betaHat = a, b
		}
	}

	d.Gain = ctx.Load.Gain(sys)
	d.Delta = ctx.Load.Delta()
	d.Cost = load.Cost(alphaHat, betaHat, float64(moveBytes), d.Delta)
	d.Gamma = ctx.gamma()
	d.GainCostValid = true
	if d.Gain <= d.Gamma*d.Cost {
		return d
	}

	// Perform the redistribution: move level-0 grids nearest the
	// receiving group's region, splitting the last grid to match.
	d.Invoked = true
	d.Migrations = moveLevel0(ctx, donor, recv, moveWork)
	for _, m := range d.Migrations {
		d.MovedBytes += m.Bytes
	}
	return d
}

// healthyGroups partitions the groups into reachable and excluded,
// recording quarantined groups on the decision. A group is healthy
// when it is not quarantined and has at least one surviving
// processor: a fully failed group can neither donate work nor receive
// it — picking it as the underloaded receiver would park level-0
// grids on dead processors until the next recovery.
func healthyGroups(ctx *Context, d *GlobalDecision) []int {
	sys := ctx.Sys
	var healthy []int
	for g := 0; g < sys.NumGroups(); g++ {
		if ctx.Quarantined != nil && ctx.Quarantined(g, ctx.now()) {
			d.Quarantined = append(d.Quarantined, g)
			continue
		}
		if len(sys.AliveInGroup(g)) == 0 {
			continue
		}
		healthy = append(healthy, g)
	}
	return healthy
}

// degradeToLocal is the shared fewer-than-two-reachable-groups
// fallback: no global phase is possible, so every group (quarantined
// ones included: they are cut off, not dead) evens out its own
// processors and waits for the outage window to close.
func degradeToLocal(ctx *Context, d *GlobalDecision) {
	d.Degraded = true
	for g := 0; g < ctx.Sys.NumGroups(); g++ {
		d.Migrations = append(d.Migrations, balanceOver(ctx, 0, groupProcs(ctx, g))...)
	}
	for _, m := range d.Migrations {
		d.MovedBytes += m.Bytes
	}
	d.Invoked = len(d.Migrations) > 0
}

// groupLevel0Cells returns the donor group's W^0: total level-0 cells
// owned by its processors. O(1) from the ledger; a full level-0 walk
// otherwise.
func groupLevel0Cells(ctx *Context, group int) int64 {
	if ctx.Ledger != nil {
		return ctx.Ledger.GroupLevel0Cells(group)
	}
	var n int64
	for _, g := range ctx.H.Grids(0) {
		if ctx.Sys.GroupOf(g.Owner) == group {
			n += g.NumCells()
		}
	}
	return n
}

// subtreeWork returns the iteration-weighted workload of a grid and
// all its descendants: a level-l cell advances r^l times per level-0
// step (Eq. 3's N^i_iter weighting for fully subcycled levels). The
// ledger answers in O(1); the fallback recursion is O(subtree ×
// level-width) because Children scans the next level.
func subtreeWork(ctx *Context, g *amr.Grid) float64 {
	if ctx.Ledger != nil {
		return ctx.Ledger.SubtreeWork(g.ID)
	}
	iters := 1.0
	for l := 0; l < g.Level; l++ {
		iters *= float64(ctx.H.RefFactor)
	}
	w := float64(g.NumCells()) * iters
	for _, c := range ctx.H.Children(g) {
		w += subtreeWork(ctx, c)
	}
	return w
}

// groupSubtreeWork sums subtreeWork over the group's level-0 grids.
// O(1) from the ledger; a recursive hierarchy walk otherwise.
func groupSubtreeWork(ctx *Context, group int) float64 {
	if ctx.Ledger != nil {
		return ctx.Ledger.GroupSubtreeWork(group)
	}
	var w float64
	for _, g := range ctx.H.Grids(0) {
		if ctx.Sys.GroupOf(g.Owner) == group {
			w += subtreeWork(ctx, g)
		}
	}
	return w
}

// moveLevel0 migrates level-0 grids carrying approximately moveWork
// iteration-weighted work from the donor group to the receiver group,
// nearest-to-receiver first, splitting one grid if a whole grid would
// overshoot by more than a quarter of its work.
func moveLevel0(ctx *Context, donor, recv int, moveWork float64) []Migration {
	target := receiverCentroid(ctx, recv)
	var donorGrids []*amr.Grid
	if ctx.Ledger != nil {
		for _, p := range sortedCopy(ctx.Sys.ProcsInGroup(donor)) {
			donorGrids = append(donorGrids, ctx.Ledger.Owned(0, p)...)
		}
	} else {
		for _, g := range ctx.H.Grids(0) {
			if ctx.Sys.GroupOf(g.Owner) == donor {
				donorGrids = append(donorGrids, g)
			}
		}
	}
	sort.Slice(donorGrids, func(i, j int) bool {
		di := dist2(boxCentroid(donorGrids[i].Box), target)
		dj := dist2(boxCentroid(donorGrids[j].Box), target)
		if di != dj {
			return di < dj
		}
		return donorGrids[i].ID < donorGrids[j].ID
	})

	recvProcs := groupProcs(ctx, recv)
	numFields := len(ctx.H.Fields)
	var out []Migration
	remaining := moveWork
	for _, g := range donorGrids {
		if remaining <= 0 {
			break
		}
		work := subtreeWork(ctx, g)
		if work <= remaining*1.25 {
			// Move the whole grid.
			from := g.Owner
			ctx.H.SetOwner(g, leastLoadedProc(ctx, recvProcs, 0))
			adoptSubtree(ctx, g)
			out = append(out, Migration{Grid: g.ID, From: from, To: g.Owner, Bytes: g.Bytes(numFields)})
			remaining -= work
			continue
		}
		// The grid carries much more work than remains to move: split
		// it and move the piece facing the receiver (the paper's
		// "moving the groups' boundaries slightly").
		piece := splitTowards(ctx, g, remaining/work, target)
		if piece == nil {
			break
		}
		from := piece.Owner
		ctx.H.SetOwner(piece, leastLoadedProc(ctx, recvProcs, 0))
		adoptSubtree(ctx, piece)
		out = append(out, Migration{Grid: piece.ID, From: from, To: piece.Owner, Bytes: piece.Bytes(numFields)})
		break
	}
	return out
}

// adoptSubtree moves g's descendants onto g's (new) owner. Only
// level-0 grids migrate between groups — their finer grids are
// rebuilt on the receiving side rather than shipped, so the
// descendants simply follow the root's owner instead of appearing as
// migrations or transfer bytes. Without this the subtree stays on the
// donor group's processors until the next regrid, breaking
// parent–child co-location whenever RegridInterval > 1 (the ledger
// already attributes the whole subtree to the root's group, so the
// two views disagreed). Children are visited in level order, which is
// deterministic.
func adoptSubtree(ctx *Context, g *amr.Grid) {
	for _, c := range ctx.H.Children(g) {
		ctx.H.SetOwner(c, g.Owner)
		adoptSubtree(ctx, c)
	}
}

// splitTowards splits grid g so that the piece nearer `target` holds
// about `frac` of the grid, and returns that piece (nil when the grid
// cannot be split).
func splitTowards(ctx *Context, g *amr.Grid, frac float64, target [3]float64) *amr.Grid {
	shape := g.Box.Shape()
	d := shape.MaxDim()
	if shape[d] < 2 {
		return nil
	}
	planes := int(frac*float64(shape[d]) + 0.5)
	if planes < 1 {
		planes = 1
	}
	if planes >= shape[d] {
		planes = shape[d] - 1
	}
	c := boxCentroid(g.Box)
	var lo, hi *amr.Grid
	if target[d] <= c[d] {
		// Receiver is on the low side: moved piece = low planes.
		lo, hi = ctx.H.SplitGrid(g, d, g.Box.Lo[d]+planes)
		_ = hi
		return lo
	}
	lo, hi = ctx.H.SplitGrid(g, d, g.Box.Hi[d]+1-planes)
	_ = lo
	return hi
}

// receiverCentroid returns the cell-weighted centroid of the
// receiving group's level-0 grids, or the domain centroid when the
// group owns nothing yet.
func receiverCentroid(ctx *Context, recv int) [3]float64 {
	var sum [3]float64
	var cells float64
	for _, g := range ctx.H.Grids(0) {
		if ctx.Sys.GroupOf(g.Owner) != recv {
			continue
		}
		c := boxCentroid(g.Box)
		w := float64(g.NumCells())
		for d := 0; d < 3; d++ {
			sum[d] += c[d] * w
		}
		cells += w
	}
	if cells == 0 {
		return boxCentroid(ctx.H.Domain)
	}
	for d := 0; d < 3; d++ {
		sum[d] /= cells
	}
	return sum
}

func boxCentroid(b geom.Box) [3]float64 {
	return [3]float64{
		float64(b.Lo[0]+b.Hi[0]) / 2,
		float64(b.Lo[1]+b.Hi[1]) / 2,
		float64(b.Lo[2]+b.Hi[2]) / 2,
	}
}

func dist2(a, b [3]float64) float64 {
	var s float64
	for d := 0; d < 3; d++ {
		v := a[d] - b[d]
		s += v * v
	}
	return s
}
