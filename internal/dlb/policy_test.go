package dlb

import (
	"sort"
	"testing"

	"samrdlb/internal/amr"
	"samrdlb/internal/geom"
	"samrdlb/internal/machine"
)

func TestPolicyRegistryNamesAndAliases(t *testing.T) {
	names := PolicyNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("PolicyNames not sorted: %v", names)
	}
	want := map[string]string{
		"distributed":   "distributed-dlb",
		"parallel":      "parallel-dlb",
		"sfc":           "sfc-dlb",
		"hilbert-sfc":   "hilbert-sfc-dlb",
		"diffusion":     "diffusion-dlb",
		"diffusion-sos": "diffusion-sos-dlb",
		"knapsack":      "knapsack-dlb",
	}
	if len(names) != len(want) {
		t.Fatalf("PolicyNames = %v, want %d policies", names, len(want))
	}
	for reg, balName := range want {
		b, err := NewPolicy(reg)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", reg, err)
		}
		if b.Name() != balName {
			t.Errorf("NewPolicy(%q).Name() = %q, want %q", reg, b.Name(), balName)
		}
	}
	// "paper" is an alias of the distributed scheme, not a separate
	// canonical name.
	b, err := NewPolicy("paper")
	if err != nil || b.Name() != "distributed-dlb" {
		t.Fatalf("alias paper: %v, %v", b, err)
	}
	if c, ok := CanonicalPolicy("paper"); !ok || c != "distributed" {
		t.Fatalf("CanonicalPolicy(paper) = %q, %v", c, ok)
	}
	if _, err := NewPolicy("no-such-policy"); err == nil {
		t.Fatal("NewPolicy accepted an unknown name")
	}
	if _, ok := PolicyTraits("no-such-policy"); ok {
		t.Fatal("PolicyTraits accepted an unknown name")
	}
}

func TestPolicyTraitsScopeRules(t *testing.T) {
	cases := []struct {
		name string
		want Traits
	}{
		{"distributed", Traits{Colocation: true, GainGate: true, BalanceTolerance: true}},
		{"paper", Traits{Colocation: true, GainGate: true, BalanceTolerance: true}},
		{"parallel", Traits{BalanceTolerance: true}},
		{"sfc", Traits{Colocation: true, GainGate: true}},
		{"hilbert-sfc", Traits{Colocation: true, GainGate: true}},
		{"diffusion", Traits{Colocation: true, BalanceTolerance: true}},
		{"diffusion-sos", Traits{Colocation: true, BalanceTolerance: true}},
		{"knapsack", Traits{Colocation: true, GainGate: true}},
	}
	for _, c := range cases {
		got, ok := PolicyTraits(c.name)
		if !ok || got != c.want {
			t.Errorf("PolicyTraits(%q) = %+v, %v; want %+v", c.name, got, ok, c.want)
		}
	}
}

// TestPolicyFactoriesAreFresh pins the registry contract that matters
// for stateful policies: every NewPolicy call returns an independent
// instance, so one run's SOS flow memory can never leak into another.
func TestPolicyFactoriesAreFresh(t *testing.T) {
	a, _ := NewPolicy("diffusion-sos")
	b, _ := NewPolicy("diffusion-sos")
	da, db := a.(*DiffusionDLB), b.(*DiffusionDLB)
	if da == db {
		t.Fatal("NewPolicy returned a shared instance for a stateful policy")
	}
	da.prevFlow = map[[2]int]float64{{0, 1}: 7}
	if db.prevFlow != nil {
		t.Fatal("flow memory leaked between instances")
	}
}

func TestPolicyDiffusionBalancesGroupsWithWholeGrids(t *testing.T) {
	sys := machine.WanPair(2, nil)
	// Four level-0 slabs, all owned by group 0 (procs 0 and 1).
	h := slabHierarchy(8, []int{2, 2, 2, 2}, []int{0, 0, 1, 1})
	ctx := ctxFor(sys, h)
	before := len(h.Grids(0))

	b, _ := NewPolicy("diffusion")
	d := b.GlobalBalance(ctx)
	if !d.Evaluated {
		t.Fatal("unbounded imbalance did not trigger an evaluation")
	}
	if d.GainCostValid {
		t.Fatal("diffusion must not claim a Gain/Cost gate record")
	}
	if !d.Invoked || len(d.Migrations) == 0 {
		t.Fatalf("expected migrations, got %+v", d)
	}
	// Integer rounding: whole grids only — the grid count is unchanged
	// (the paper scheme's splitTowards path would have grown it).
	if after := len(h.Grids(0)); after != before {
		t.Fatalf("diffusion split a grid: %d grids -> %d", before, after)
	}
	for _, m := range d.Migrations {
		if g := h.Grid(m.Grid); g.Level != 0 {
			t.Fatalf("non-level-0 grid crossed groups: %+v", m)
		}
	}
	// The flow is (z0-z1)/2 · h = half the surplus: both groups now
	// hold work.
	g0, g1 := groupCells(ctx, 0, 0), groupCells(ctx, 0, 1)
	if g0 == 0 || g1 == 0 {
		t.Fatalf("diffusion over/under-shot: group cells %v / %v", g0, g1)
	}
	if g0 != g1 {
		t.Errorf("symmetric system should balance exactly: %v vs %v", g0, g1)
	}
}

func TestPolicyDiffusionBelowTriggerDoesNothing(t *testing.T) {
	sys := machine.WanPair(2, nil)
	// Already balanced across the groups.
	h := slabHierarchy(8, []int{2, 2, 2, 2}, []int{0, 1, 2, 3})
	ctx := ctxFor(sys, h)
	b, _ := NewPolicy("diffusion")
	d := b.GlobalBalance(ctx)
	if d.Evaluated || d.Invoked || len(d.Migrations) != 0 {
		t.Fatalf("balanced system should be left alone: %+v", d)
	}
}

func TestPolicyDiffusionSOSKeepsFlowMemory(t *testing.T) {
	sys := machine.WanPair(2, nil)
	h := slabHierarchy(8, []int{2, 2, 2, 2}, []int{0, 0, 1, 1})
	ctx := ctxFor(sys, h)
	b := &DiffusionDLB{Order: 2}
	if b.Name() != "diffusion-sos-dlb" {
		t.Fatalf("name = %q", b.Name())
	}
	d := b.GlobalBalance(ctx)
	if !d.Invoked {
		t.Fatalf("expected an SOS sweep to move work: %+v", d)
	}
	if len(b.prevFlow) == 0 {
		t.Fatal("second-order scheme recorded no flow memory")
	}
	// First-order leaves no memory behind.
	f := &DiffusionDLB{}
	f.GlobalBalance(ctxFor(sys, slabHierarchy(8, []int{2, 2, 2, 2}, []int{0, 0, 1, 1})))
	if f.prevFlow != nil {
		t.Fatal("first-order scheme must stay stateless")
	}
}

func TestPolicyDiffusionDegradesWhenIsolated(t *testing.T) {
	sys := machine.WanPair(2, nil)
	h := slabHierarchy(8, []int{2, 2, 2, 2}, []int{0, 0, 1, 1})
	ctx := ctxFor(sys, h)
	ctx.Quarantined = func(group int, t float64) bool { return group == 1 }
	b, _ := NewPolicy("diffusion")
	d := b.GlobalBalance(ctx)
	if !d.Degraded {
		t.Fatalf("one reachable group should degrade to local-only: %+v", d)
	}
	for _, m := range d.Migrations {
		if !sys.SameGroup(m.From, m.To) {
			t.Fatalf("degraded sweep crossed groups: %+v", m)
		}
	}
}

func TestPolicyKnapsackPacksWithinGroups(t *testing.T) {
	sys := machine.WanPair(2, nil)
	// Uneven slabs, everything on proc 0 of group 0 and proc 2 of
	// group 1.
	h := slabHierarchy(8, []int{3, 1, 2, 2}, []int{0, 0, 2, 2})
	ctx := ctxFor(sys, h)
	k := KnapsackDLB{MoveFrac: 1}
	migs := k.LocalBalance(ctx, 0)
	if len(migs) == 0 {
		t.Fatal("expected migrations")
	}
	for _, m := range migs {
		if !sys.SameGroup(m.From, m.To) {
			t.Fatalf("knapsack local pass crossed groups: %+v", m)
		}
	}
	// LPT bound: within each group, the spread is at most the largest
	// grid.
	pc := procCells(ctx, 0)
	if spread := pc[0] - pc[1]; spread < -192 || spread > 192 {
		t.Errorf("group 0 spread %v exceeds the largest grid", spread)
	}
	if pc[2] != pc[3] {
		t.Errorf("group 1 equal slabs should split evenly: %v vs %v", pc[2], pc[3])
	}
}

func TestPolicyKnapsackMovementCapBinds(t *testing.T) {
	sys := machine.WanPair(2, nil)
	h := slabHierarchy(8, []int{2, 2, 2, 2}, []int{0, 0, 0, 0})
	ctx := ctxFor(sys, h)
	// A cap far below one grid's bytes freezes the layout even though
	// it is maximally imbalanced.
	k := KnapsackDLB{MoveFrac: 0.0001}
	if migs := k.LocalBalance(ctx, 0); len(migs) != 0 {
		t.Fatalf("cap should forbid every move, got %d migrations", len(migs))
	}
	// With the cap lifted the same layout balances.
	if migs := (KnapsackDLB{MoveFrac: 1}).LocalBalance(ctx, 0); len(migs) == 0 {
		t.Fatal("uncapped pack moved nothing")
	}
}

func TestPolicyHilbertSFCContiguousRuns(t *testing.T) {
	sys := machine.WanPair(2, nil)
	h := amr.New(geom.UnitCube(8), 2, 1, 1, false, "q")
	for x := 0; x < 8; x += 4 {
		for y := 0; y < 8; y += 4 {
			for z := 0; z < 8; z += 2 {
				h.AddGrid(0, geom.BoxFromShape(geom.Index{x, y, z}, geom.Index{4, 4, 2}), 0, amr.NoGrid)
			}
		}
	}
	ctx := ctxFor(sys, h)
	s := SFCDLB{Curve: CurveHilbert}
	migs := s.LocalBalance(ctx, 0)
	if len(migs) == 0 {
		t.Fatal("expected migrations")
	}
	for _, m := range migs {
		if !sys.SameGroup(m.From, m.To) {
			t.Fatalf("hilbert-sfc local balance crossed groups: %+v", m)
		}
	}
	pc := procCells(ctx, 0)
	if pc[0] != pc[1] {
		t.Errorf("hilbert-sfc balance uneven: %v vs %v", pc[0], pc[1])
	}
	// Each processor owns one contiguous run of the Hilbert order.
	grids := append([]*amr.Grid(nil), h.Grids(0)...)
	sort.Slice(grids, func(i, j int) bool { return s.keyOf(grids[i].Box) < s.keyOf(grids[j].Box) })
	switches := 0
	for i := 1; i < len(grids); i++ {
		if grids[i].Owner != grids[i-1].Owner {
			switches++
		}
	}
	if switches != 1 {
		t.Errorf("expected one owner switch along the Hilbert curve, got %d", switches)
	}
}
