package dlb

import (
	"samrdlb/internal/amr"
	"samrdlb/internal/geom"
)

// ParallelDLB is the baseline scheme (Lan, Taylor, Bryan; ICPP 2001),
// designed for homogeneous parallel systems: each level's workload is
// "evenly and equally distributed among the processors" — all of
// them, regardless of groups, networks, or traffic. On a distributed
// system this spreads children across machines and pays remote
// parent–child and sibling communication on every fine step, which is
// exactly the overhead the paper measures in Figure 3.
type ParallelDLB struct{}

// Name implements Balancer.
func (ParallelDLB) Name() string { return "parallel-dlb" }

// PlaceChild implements Balancer: children go to the least-loaded
// processor of the whole system.
func (ParallelDLB) PlaceChild(ctx *Context, childBox geom.Box, parent *amr.Grid) int {
	procs := allProcs(ctx)
	return leastLoadedProc(ctx, procs, parent.Level+1)
}

// LocalBalance implements Balancer: even redistribution over all
// processors after every step at every level.
func (ParallelDLB) LocalBalance(ctx *Context, level int) []Migration {
	return balanceOver(ctx, level, allProcs(ctx))
}

// GlobalBalance implements Balancer: the parallel scheme has no
// separate global phase; it simply rebalances level 0 over all
// processors, oblivious to group boundaries and network state.
func (ParallelDLB) GlobalBalance(ctx *Context) GlobalDecision {
	migs := balanceOver(ctx, 0, allProcs(ctx))
	var bytes int64
	for _, m := range migs {
		bytes += m.Bytes
	}
	return GlobalDecision{
		Evaluated:  false,
		Invoked:    len(migs) > 0,
		Migrations: migs,
		MovedBytes: bytes,
	}
}

// allProcs returns every admitted non-failed processor. Fallback
// chain: admitted ∩ alive → alive → all (only when every single
// processor has failed is there no better choice left, and the run is
// over anyway).
func allProcs(ctx *Context) []int {
	alive := ctx.Sys.AliveProcs()
	if adm := admittedOf(ctx, alive); len(adm) > 0 {
		return adm
	}
	if len(alive) > 0 {
		return alive
	}
	procs := make([]int, ctx.Sys.NumProcs())
	for i := range procs {
		procs[i] = i
	}
	return procs
}

// groupProcs returns group g's admitted non-failed processors
// ascending, with the same fallback chain as allProcs scoped to the
// group.
func groupProcs(ctx *Context, g int) []int {
	alive := ctx.Sys.AliveInGroup(g)
	if adm := admittedOf(ctx, alive); len(adm) > 0 {
		return adm
	}
	if len(alive) > 0 {
		return alive
	}
	return sortedCopy(ctx.Sys.ProcsInGroup(g))
}

// admittedOf filters procs through the membership admission predicate
// (identity when none is attached).
func admittedOf(ctx *Context, procs []int) []int {
	if ctx.Admitted == nil {
		return procs
	}
	out := make([]int, 0, len(procs))
	for _, p := range procs {
		if ctx.Admitted(p) {
			out = append(out, p)
		}
	}
	return out
}
