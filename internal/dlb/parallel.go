package dlb

import (
	"samrdlb/internal/amr"
	"samrdlb/internal/geom"
)

// ParallelDLB is the baseline scheme (Lan, Taylor, Bryan; ICPP 2001),
// designed for homogeneous parallel systems: each level's workload is
// "evenly and equally distributed among the processors" — all of
// them, regardless of groups, networks, or traffic. On a distributed
// system this spreads children across machines and pays remote
// parent–child and sibling communication on every fine step, which is
// exactly the overhead the paper measures in Figure 3.
type ParallelDLB struct{}

// Name implements Balancer.
func (ParallelDLB) Name() string { return "parallel-dlb" }

// PlaceChild implements Balancer: children go to the least-loaded
// processor of the whole system.
func (ParallelDLB) PlaceChild(ctx *Context, childBox geom.Box, parent *amr.Grid) int {
	procs := allProcs(ctx)
	return leastLoadedProc(ctx, procs, parent.Level+1)
}

// LocalBalance implements Balancer: even redistribution over all
// processors after every step at every level.
func (ParallelDLB) LocalBalance(ctx *Context, level int) []Migration {
	return balanceOver(ctx, level, allProcs(ctx))
}

// GlobalBalance implements Balancer: the parallel scheme has no
// separate global phase; it simply rebalances level 0 over all
// processors, oblivious to group boundaries and network state.
func (ParallelDLB) GlobalBalance(ctx *Context) GlobalDecision {
	migs := balanceOver(ctx, 0, allProcs(ctx))
	var bytes int64
	for _, m := range migs {
		bytes += m.Bytes
	}
	return GlobalDecision{
		Evaluated:  false,
		Invoked:    len(migs) > 0,
		Migrations: migs,
		MovedBytes: bytes,
	}
}

// allProcs returns every non-failed processor; only when every single
// processor has failed does it fall back to the full set (there is no
// better choice left, and the run is over anyway).
func allProcs(ctx *Context) []int {
	if alive := ctx.Sys.AliveProcs(); len(alive) > 0 {
		return alive
	}
	procs := make([]int, ctx.Sys.NumProcs())
	for i := range procs {
		procs[i] = i
	}
	return procs
}

// groupProcs returns group g's non-failed processors ascending,
// falling back to the whole group when every member has failed.
func groupProcs(ctx *Context, g int) []int {
	if alive := ctx.Sys.AliveInGroup(g); len(alive) > 0 {
		return alive
	}
	return sortedCopy(ctx.Sys.ProcsInGroup(g))
}
