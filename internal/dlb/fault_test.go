package dlb

import (
	"testing"

	"samrdlb/internal/machine"
)

// quarantineOf returns a Quarantined callback that marks the given
// groups unreachable at all times.
func quarantineOf(groups ...int) func(int, float64) bool {
	set := map[int]bool{}
	for _, g := range groups {
		set[g] = true
	}
	return func(g int, t float64) bool { return set[g] }
}

func TestGlobalBalanceSkipsQuarantinedGroup(t *testing.T) {
	// Three sites of two processors. Group 1 holds by far the most
	// work but is quarantined: the global phase must pick donor and
	// receiver among groups 0 and 2 only.
	sys := machine.MultiSite([]int{2, 2, 2}, nil)
	// Slabs: g0 (procs 0,1) heavy, g1 (procs 2,3) heaviest but cut
	// off, g2 (procs 4,5) light.
	h := slabHierarchy(8, []int{2, 2, 2, 2}, []int{0, 2, 0, 4})
	ctx := ctxFor(sys, h)
	ctx.Quarantined = quarantineOf(1)
	recordCellLoads(ctx)
	ctx.Load.SetIntervalTime(100)
	d := DistributedDLB{}.GlobalBalance(ctx)
	if len(d.Quarantined) != 1 || d.Quarantined[0] != 1 {
		t.Fatalf("quarantined groups = %v, want [1]", d.Quarantined)
	}
	if d.Degraded {
		t.Fatal("two healthy groups remain; must not degrade")
	}
	if !d.Invoked {
		t.Fatalf("expected redistribution between healthy groups: %+v", d)
	}
	for _, m := range d.Migrations {
		if sys.GroupOf(m.From) == 1 || sys.GroupOf(m.To) == 1 {
			t.Errorf("migration %+v touches the quarantined group", m)
		}
		if sys.GroupOf(m.From) != 0 || sys.GroupOf(m.To) != 2 {
			t.Errorf("migration %+v should flow from group 0 to group 2", m)
		}
	}
}

func TestGlobalBalanceDegradesToLocalOnly(t *testing.T) {
	// Two groups, one quarantined: fewer than two reachable groups
	// means no global phase — both groups even out internally and
	// nothing crosses the group boundary.
	sys := machine.WanPair(2, nil)
	// Group 0: everything on proc 0 (proc 1 idle); group 1: everything
	// on proc 2 (proc 3 idle).
	h := slabHierarchy(8, []int{2, 2, 2, 2}, []int{0, 0, 2, 2})
	ctx := ctxFor(sys, h)
	ctx.Quarantined = quarantineOf(1)
	recordCellLoads(ctx)
	ctx.Load.SetIntervalTime(100)
	d := DistributedDLB{}.GlobalBalance(ctx)
	if !d.Degraded {
		t.Fatalf("expected degraded local-only mode: %+v", d)
	}
	if d.Evaluated {
		t.Error("degraded mode must not run the gain/cost evaluation")
	}
	if len(d.Migrations) == 0 {
		t.Fatal("both groups are internally imbalanced; local balancing should move grids")
	}
	for _, m := range d.Migrations {
		if sys.GroupOf(m.From) != sys.GroupOf(m.To) {
			t.Errorf("migration %+v crossed groups during quarantine", m)
		}
	}
	// The quarantined group still balances internally (cut off, not dead).
	var g1Moves int
	for _, m := range d.Migrations {
		if sys.GroupOf(m.From) == 1 {
			g1Moves++
		}
	}
	if g1Moves == 0 {
		t.Error("quarantined group should still balance locally")
	}
}

func TestGlobalBalanceZeroWorkNoPanic(t *testing.T) {
	// max(W_group)=0 over the healthy groups: the evaluation must
	// neither divide by zero nor invoke redistribution.
	sys := machine.WanPair(2, nil)
	h := slabHierarchy(8, nil, nil) // empty hierarchy, zero work
	ctx := ctxFor(sys, h)
	recordCellLoads(ctx)
	ctx.Load.SetIntervalTime(100)
	ctx.ForceEval = true // bypass the imbalance trigger to reach the guard
	d := DistributedDLB{}.GlobalBalance(ctx)
	if d.Invoked {
		t.Errorf("zero-work system must not redistribute: %+v", d)
	}
	if len(d.Migrations) != 0 {
		t.Errorf("unexpected migrations: %v", d.Migrations)
	}
}

func TestGlobalBalanceAllWorkQuarantinedNoPanic(t *testing.T) {
	// Every cell is owned by the quarantined group: the healthy groups
	// see max(W)=0 and must settle without dividing by zero or
	// selecting the quarantined group.
	sys := machine.MultiSite([]int{2, 2, 2}, nil)
	h := slabHierarchy(8, []int{8}, []int{2}) // all work in group 1
	ctx := ctxFor(sys, h)
	ctx.Quarantined = quarantineOf(1)
	recordCellLoads(ctx)
	ctx.Load.SetIntervalTime(100)
	ctx.ForceEval = true
	d := DistributedDLB{}.GlobalBalance(ctx)
	if d.Invoked {
		t.Errorf("no reachable work; must not redistribute: %+v", d)
	}
	for _, m := range d.Migrations {
		t.Errorf("unexpected migration %+v", m)
	}
}

func TestGlobalBalanceOneHealthyGroupDegrades(t *testing.T) {
	// Three groups, two quarantined: one reachable group is not enough
	// for a global phase.
	sys := machine.MultiSite([]int{2, 2, 2}, nil)
	h := slabHierarchy(8, []int{4, 4}, []int{0, 0})
	ctx := ctxFor(sys, h)
	ctx.Quarantined = quarantineOf(1, 2)
	recordCellLoads(ctx)
	ctx.Load.SetIntervalTime(100)
	d := DistributedDLB{}.GlobalBalance(ctx)
	if !d.Degraded {
		t.Fatalf("one healthy group must degrade to local-only: %+v", d)
	}
	if len(d.Quarantined) != 2 {
		t.Errorf("quarantined = %v, want two groups", d.Quarantined)
	}
	for _, m := range d.Migrations {
		if sys.GroupOf(m.From) != sys.GroupOf(m.To) {
			t.Errorf("migration %+v crossed groups", m)
		}
	}
}
