package dlb

import (
	"testing"

	"samrdlb/internal/amr"
	"samrdlb/internal/geom"
	"samrdlb/internal/machine"
	"samrdlb/internal/netsim"
)

// Permanent regression tables for the small pure helpers the balancing
// passes are built from, plus the degenerate proc-set cases the
// property harness exercises only probabilistically.

// TestImbalanceTable complements TestImbalanceEdgeCases in
// regress_test.go with exact expected values.
func TestImbalanceTable(t *testing.T) {
	cases := []struct {
		name  string
		works []float64
		want  float64
	}{
		{"nil", nil, 0},
		{"empty", []float64{}, 0},
		{"single", []float64{5}, 0},
		{"all-zero", []float64{0, 0, 0}, 0},
		{"equal", []float64{4, 4, 4}, 0},
		{"half", []float64{8, 4}, 0.5},
		{"one-idle", []float64{4, 0}, 1},
		{"order-free", []float64{0, 4}, 1},
	}
	for _, c := range cases {
		if got := Imbalance(c.works); got != c.want {
			t.Errorf("%s: Imbalance(%v) = %v, want %v", c.name, c.works, got, c.want)
		}
	}
}

func TestPickGridEdgeCases(t *testing.T) {
	// Slabs of 1, 2 and 4 planes on an 8^3 domain: 64, 128, 256 cells.
	h := slabHierarchy(8, []int{1, 2, 4, 1}, []int{0, 0, 0, 0})
	grids := h.Grids(0) // IDs ascend in creation order

	if g := pickGrid(nil, 100); g != nil {
		t.Errorf("pickGrid(nil) = %v, want nil", g)
	}
	// Largest grid within budget wins.
	if g := pickGrid(grids, 130); g.NumCells() != 128 {
		t.Errorf("budget 130 picked %d cells, want 128", g.NumCells())
	}
	// Exact fit counts as within budget.
	if g := pickGrid(grids, 256); g.NumCells() != 256 {
		t.Errorf("budget 256 picked %d cells, want 256", g.NumCells())
	}
	// Nothing fits: fall back to the overall smallest.
	if g := pickGrid(grids, 10); g.NumCells() != 64 {
		t.Errorf("budget 10 picked %d cells, want smallest (64)", g.NumCells())
	}
	// Ties break on the lowest grid ID, not slice position.
	sized := []*amr.Grid{grids[3], grids[0]} // both 64 cells; grids[0] has the lower ID
	if g := pickGrid(sized, 100); g.ID != grids[0].ID {
		t.Errorf("size tie picked grid %d, want lowest ID %d", g.ID, grids[0].ID)
	}
	if g := pickGrid(sized, 1); g.ID != grids[0].ID {
		t.Errorf("smallest-grid tie picked grid %d, want lowest ID %d", g.ID, grids[0].ID)
	}
}

func TestSplitTowardsEdgeCases(t *testing.T) {
	sys := machine.WanPair(2, nil)

	// A single-plane slab (max dimension is y/z but those planes belong
	// to one cell column in x... the splittable dimension must have at
	// least 2 planes). A 1x1x1 grid is unsplittable in every dimension.
	h := amr.New(geom.UnitCube(4), 2, 1, 1, false, "q")
	tiny := h.AddGrid(0, geom.BoxFromShape(geom.Index{0, 0, 0}, geom.Index{1, 1, 1}), 0, amr.NoGrid)
	if p := splitTowards(ctxFor(sys, h), tiny, 0.5, [3]float64{0, 0, 0}); p != nil {
		t.Errorf("splitting a 1-cell grid returned %+v, want nil", p)
	}

	// frac→0 still carves at least one plane; frac→1 still leaves one.
	for _, frac := range []float64{0.0001, 0.9999} {
		h := slabHierarchy(8, []int{8}, []int{0})
		g := h.Grids(0)[0]
		before := g.NumCells()
		piece := splitTowards(ctxFor(sys, h), g, frac, [3]float64{0, 0.5, 0.5})
		if piece == nil {
			t.Fatalf("frac=%g: split returned nil", frac)
		}
		if piece.NumCells() == 0 || piece.NumCells() == before {
			t.Errorf("frac=%g: piece holds %d of %d cells", frac, piece.NumCells(), before)
		}
		if got := h.TotalCells(0); got != before {
			t.Errorf("frac=%g: split changed total cells %d -> %d", frac, before, got)
		}
	}

	// The returned piece faces the target (index-space coordinates):
	// low target gets the low half, high target the high half.
	for _, c := range []struct {
		targetX float64
		wantLoX int
	}{{0, 0}, {8, 4}} {
		h := slabHierarchy(8, []int{8}, []int{0})
		g := h.Grids(0)[0]
		piece := splitTowards(ctxFor(sys, h), g, 0.5, [3]float64{c.targetX, 4, 4})
		if piece == nil || piece.Box.Lo[0] != c.wantLoX {
			t.Errorf("target x=%g: piece at x=%d, want %d", c.targetX, piece.Box.Lo[0], c.wantLoX)
		}
	}
}

func TestBalanceOverEdgeCases(t *testing.T) {
	sys := machine.WanPair(2, nil)

	// Degenerate proc sets: empty and singleton sets cannot balance.
	h := slabHierarchy(8, []int{4, 4}, []int{0, 0})
	if migs := balanceOver(ctxFor(sys, h), 0, nil); len(migs) != 0 {
		t.Errorf("empty proc set produced migrations: %v", migs)
	}
	if migs := balanceOver(ctxFor(sys, h), 0, []int{0}); len(migs) != 0 {
		t.Errorf("singleton proc set produced migrations: %v", migs)
	}

	// A level with no grids is vacuously balanced.
	if migs := balanceOver(ctxFor(sys, h), 1, []int{0, 1}); len(migs) != 0 {
		t.Errorf("empty level produced migrations: %v", migs)
	}

	// One unsplittable grid between two processors: moving it to the
	// idle processor just mirrors the imbalance, so nothing may move.
	h1 := slabHierarchy(8, []int{8}, []int{0})
	if migs := balanceOver(ctxFor(sys, h1), 0, []int{0, 1}); len(migs) != 0 {
		t.Errorf("single-grid set moved anyway: %v", migs)
	}

	// Zero-load processor in the set: work flows to it until even.
	h2 := slabHierarchy(8, []int{2, 2, 2, 2}, []int{0, 0, 0, 0})
	ctx2 := ctxFor(sys, h2)
	if migs := balanceOver(ctx2, 0, []int{0, 1}); len(migs) != 2 {
		t.Errorf("expected 2 slabs to move to the idle processor, got %v", migs)
	}
	cells := procCells(ctx2, 0)
	if cells[0] != cells[1] {
		t.Errorf("post-balance loads %v, want even split", cells)
	}

	// Grids owned outside the proc set are invisible: never counted,
	// never moved.
	h3 := slabHierarchy(8, []int{4, 2, 2}, []int{2, 0, 0})
	ctx3 := ctxFor(sys, h3)
	migs := balanceOver(ctx3, 0, []int{0, 1})
	for _, m := range migs {
		if m.From == 2 || m.To == 2 {
			t.Errorf("migration touched out-of-set processor: %+v", m)
		}
	}
	if got := procCells(ctx3, 0)[2]; got != 256 {
		t.Errorf("out-of-set processor's load changed: %v cells", got)
	}
}

// threeGroupSystem builds a 3-group, one-processor-per-group machine
// over a LAN fabric — the smallest shape where receiver selection can
// pick a wrong group while a right one exists.
func threeGroupSystem() *machine.System {
	fab := netsim.NewFabric(3)
	for i := 0; i < 3; i++ {
		fab.SetIntra(i, netsim.OriginInterconnect())
	}
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			fab.SetInter(a, b, netsim.GigabitLAN(nil))
		}
	}
	return machine.New([]machine.GroupSpec{
		{Name: "g0", Procs: 1, Perf: 1},
		{Name: "g1", Procs: 1, Perf: 1},
		{Name: "g2", Procs: 1, Perf: 1},
	}, fab, machine.DefaultFlopsPerSecond)
}

// TestGlobalBalanceSkipsDeadGroups is the regression for the defect
// the scenario fuzzer caught: a group whose every processor has
// failed reads as minimally loaded, and choosing it as the receiver
// parks level-0 grids on dead processors. Dead groups must be
// excluded from donor/receiver selection entirely.
func TestGlobalBalanceSkipsDeadGroups(t *testing.T) {
	sys := threeGroupSystem()
	sys.SetHealth(1, 0) // group 1's only processor is dead

	// Donor group 0 holds 384 cells, alive group 2 holds 128, dead
	// group 1 holds nothing — exactly the minimum-work group.
	h := slabHierarchy(8, []int{2, 2, 2, 2}, []int{0, 0, 0, 2})
	ctx := ctxFor(sys, h)
	recordCellLoads(ctx)
	ctx.Load.SetIntervalTime(100)
	d := DistributedDLB{}.GlobalBalance(ctx)
	if !d.Invoked {
		t.Fatalf("imbalance between the two alive groups must redistribute: %+v", d)
	}
	for _, m := range d.Migrations {
		if m.To == 1 {
			t.Errorf("migration sent grid %d to dead processor 1", m.Grid)
		}
		if sys.GroupOf(m.To) != 2 {
			t.Errorf("migration to group %d, want alive receiver group 2: %+v", sys.GroupOf(m.To), m)
		}
	}
	for _, g := range h.Grids(0) {
		if g.Owner == 1 {
			t.Errorf("grid %d parked on dead processor 1", g.ID)
		}
	}
}

// TestGlobalBalanceDegradesWhenReceiverGroupDead: with only two
// groups, losing one entirely leaves no global phase at all — the
// scheme must degrade to local-only balancing rather than ship work
// to the dead side.
func TestGlobalBalanceDegradesWhenReceiverGroupDead(t *testing.T) {
	sys := machine.WanPair(2, nil)
	sys.SetHealth(2, 0)
	sys.SetHealth(3, 0)
	h := slabHierarchy(8, []int{2, 2, 2, 2}, []int{0, 0, 1, 1})
	ctx := ctxFor(sys, h)
	recordCellLoads(ctx)
	ctx.Load.SetIntervalTime(100)
	d := DistributedDLB{}.GlobalBalance(ctx)
	if !d.Degraded {
		t.Errorf("one alive group must degrade to local-only balancing: %+v", d)
	}
	for _, m := range d.Migrations {
		if m.To == 2 || m.To == 3 {
			t.Errorf("migration to dead processor: %+v", m)
		}
	}
}
