package dlb

import (
	"sort"

	"samrdlb/internal/amr"
	"samrdlb/internal/geom"
)

// KnapsackDLB is a greedy knapsack/LPT packer in the style AMReX uses
// (Nanda et al., arXiv:2505.15122): each group's grids at the
// balanced level are repacked from scratch — sorted by cell count
// descending and assigned one by one to the processor with the least
// projected perf-normalised load — under a movement-cost cap. The cap
// bounds the bytes a single pass may migrate to a fraction of the
// set's total grid bytes; once it binds, further grids stay with
// their current owner, trading balance quality against data motion
// (the knapsack-vs-SFC trade-off the study measures). Placement and
// the global phase are the paper's, so the comparison isolates the
// local packing policy.
type KnapsackDLB struct {
	// MoveFrac caps a pass's migrated bytes to this fraction of the
	// set's total grid bytes (0 = default 0.5).
	MoveFrac float64
}

// Name implements Balancer.
func (KnapsackDLB) Name() string { return "knapsack-dlb" }

// PlaceChild implements Balancer: children stay in the parent's
// group.
func (KnapsackDLB) PlaceChild(ctx *Context, childBox geom.Box, parent *amr.Grid) int {
	return DistributedDLB{}.PlaceChild(ctx, childBox, parent)
}

// GlobalBalance implements Balancer via the paper's gated global
// phase.
func (KnapsackDLB) GlobalBalance(ctx *Context) GlobalDecision {
	return DistributedDLB{}.GlobalBalance(ctx)
}

// LocalBalance implements Balancer: per-group LPT repacking under the
// movement cap.
func (k KnapsackDLB) LocalBalance(ctx *Context, level int) []Migration {
	var out []Migration
	for g := 0; g < ctx.Sys.NumGroups(); g++ {
		out = append(out, k.pack(ctx, level, groupProcs(ctx, g))...)
	}
	return out
}

// pack runs one capped LPT pass over the procs' grids at the level.
func (k KnapsackDLB) pack(ctx *Context, level int, procs []int) []Migration {
	if len(procs) < 2 {
		return nil
	}
	inSet := make(map[int]bool, len(procs))
	for _, p := range procs {
		inSet[p] = true
	}
	var grids []*amr.Grid
	numFields := len(ctx.H.Fields)
	var totalBytes int64
	for _, g := range ctx.H.Grids(level) {
		if inSet[g.Owner] {
			grids = append(grids, g)
			totalBytes += g.Bytes(numFields)
		}
	}
	if len(grids) == 0 {
		return nil
	}
	// Longest processing time first; ties break on the lowest grid ID
	// so the packing is insensitive to traversal order.
	sort.Slice(grids, func(i, j int) bool {
		ci, cj := grids[i].NumCells(), grids[j].NumCells()
		if ci != cj {
			return ci > cj
		}
		return grids[i].ID < grids[j].ID
	})
	frac := k.MoveFrac
	if !(frac > 0) || frac > 1 {
		frac = 0.5
	}
	budget := int64(frac * float64(totalBytes))
	load := make(map[int]float64, len(procs))
	var movedBytes int64
	var out []Migration
	for _, g := range grids {
		// Least projected perf-normalised load; ties go to the lowest
		// processor (procs is sorted ascending).
		best, bestN := procs[0], load[procs[0]]/ctx.Sys.Perf(procs[0])
		for _, p := range procs[1:] {
			if n := load[p] / ctx.Sys.Perf(p); n < bestN {
				best, bestN = p, n
			}
		}
		if best != g.Owner {
			cost := g.Bytes(numFields)
			if movedBytes+cost > budget {
				// The movement cap binds: the grid stays put and its load
				// is charged to its current owner.
				best = g.Owner
			} else {
				movedBytes += cost
				out = append(out, Migration{Grid: g.ID, From: g.Owner, To: best, Bytes: cost})
				ctx.H.SetOwner(g, best)
			}
		}
		load[best] += float64(g.NumCells())
	}
	return out
}
