package dlb_test

import (
	"fmt"
	"reflect"
	"testing"

	"samrdlb/internal/dlb"
	"samrdlb/internal/engine"
	"samrdlb/internal/machine"
	"samrdlb/internal/netsim"
	"samrdlb/internal/workload"
)

// TestPolicyReproducibility is the cross-seed determinism pin for
// every registered policy: a full engine run is byte-identically
// reproducible — two runs of the same (policy, seed) produce equal
// Results, compared both structurally and on the rendered string —
// across multiple traffic seeds. Stateful policies rely on the
// registry handing every run a fresh instance.
func TestPolicyReproducibility(t *testing.T) {
	for _, name := range dlb.PolicyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range []int64{1, 7} {
				run := func() string {
					bal, err := dlb.NewPolicy(name)
					if err != nil {
						t.Fatal(err)
					}
					traffic := &netsim.BurstyTraffic{
						QuietLoad: 0.1, BusyLoad: 0.6, MeanQuiet: 30, MeanBusy: 15, Seed: seed,
					}
					sys := machine.WanPair(2, traffic)
					res := engine.New(sys, workload.NewShockPool3D(12, 2), engine.Options{
						Steps: 4, Balancer: bal, MaxLevel: 2,
					}).Run()
					return fmt.Sprintf("%+v", *res)
				}
				a, b := run(), run()
				if a != b {
					t.Fatalf("policy %s seed %d not byte-identical across runs:\n%s\n%s", name, seed, a, b)
				}
			}
		})
	}
}

// TestPolicyRunsLeaveGateUntouched is the regression test for the
// latent paper-scheme assumption: a policy that never runs the Eq. 1
// gate (diffusion, parallel) must finish a faultless run with the
// LastGain/LastCost/LastGamma snapshot still zero — the engine only
// copies them when the decision marks GainCostValid — while gated
// policies on an imbalanced system record a non-zero γ.
func TestPolicyRunsLeaveGateUntouched(t *testing.T) {
	for _, name := range []string{"diffusion", "diffusion-sos", "parallel"} {
		bal, err := dlb.NewPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		res := engine.New(machine.WanPair(2, nil), workload.NewShockPool3D(12, 2), engine.Options{
			Steps: 4, Balancer: bal, MaxLevel: 2,
		}).Run()
		if res.LastGain != 0 || res.LastCost != 0 || res.LastGamma != 0 {
			t.Errorf("%s: gate snapshot should stay zero, got gain=%g cost=%g gamma=%g",
				name, res.LastGain, res.LastCost, res.LastGamma)
		}
	}
}

// TestPolicyResultsDiverge sanity-checks that the tournament has
// something to compare: the paper scheme and the parallel baseline do
// not produce structurally identical results on a WAN system.
func TestPolicyResultsDiverge(t *testing.T) {
	results := map[string]interface{}{}
	for _, name := range []string{"distributed", "parallel"} {
		bal, _ := dlb.NewPolicy(name)
		res := engine.New(machine.WanPair(2, nil), workload.NewShockPool3D(12, 2), engine.Options{
			Steps: 4, Balancer: bal, MaxLevel: 2,
		}).Run()
		res.Scheme = "" // ignore the labelling difference
		results[name] = *res
	}
	if reflect.DeepEqual(results["distributed"], results["parallel"]) {
		t.Fatal("distributed and parallel runs were identical; the comparison measures nothing")
	}
}
