package dlb

import (
	"math/rand"
	"testing"

	"samrdlb/internal/amr"
	"samrdlb/internal/geom"
	"samrdlb/internal/machine"
)

// Property tests: for randomized hierarchies and loads, the balancers
// must preserve the grid population, respect group boundaries (the
// schemes that promise to), and leave the hierarchy valid.

// randomHierarchy builds a random disjoint level-0 tiling with random
// owners drawn from the system's processors.
func randomHierarchy(rng *rand.Rand, sys *machine.System, n int) *amr.Hierarchy {
	h := amr.New(geom.UnitCube(n), 2, 1, 1, false, "q")
	tiles := geom.BoxList{h.Domain}.SplitEvenly(2 + rng.Intn(20))
	tiles.SortByLo()
	for _, b := range tiles {
		h.AddGrid(0, b, rng.Intn(sys.NumProcs()), amr.NoGrid)
	}
	return h
}

func cellsByID(h *amr.Hierarchy) map[amr.GridID]int64 {
	out := map[amr.GridID]int64{}
	for _, g := range h.Grids(0) {
		out[g.ID] = g.NumCells()
	}
	return out
}

func TestLocalBalancePreservesGridsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	sys := machine.WanPair(3, nil)
	for trial := 0; trial < 40; trial++ {
		h := randomHierarchy(rng, sys, 12)
		before := cellsByID(h)
		var bal Balancer
		switch trial % 3 {
		case 0:
			bal = ParallelDLB{}
		case 1:
			bal = DistributedDLB{}
		default:
			bal = SFCDLB{}
		}
		ctx := ctxFor(sys, h)
		migs := bal.LocalBalance(ctx, 0)
		after := cellsByID(h)
		if len(after) != len(before) {
			t.Fatalf("trial %d (%s): grid population changed", trial, bal.Name())
		}
		for id, c := range before {
			if after[id] != c {
				t.Fatalf("trial %d (%s): grid %d resized", trial, bal.Name(), id)
			}
		}
		// Migration records must match actual ownership changes and
		// stay within groups for the group-aware schemes.
		for _, m := range migs {
			if g := h.Grid(m.Grid); g.Owner != m.To {
				t.Fatalf("trial %d: migration record inconsistent", trial)
			}
			if bal.Name() != "parallel-dlb" && !sys.SameGroup(m.From, m.To) {
				t.Fatalf("trial %d (%s): crossed groups", trial, bal.Name())
			}
		}
		if err := h.CheckProperNesting(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestLocalBalanceNeverWorsensImbalanceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	sys := machine.Origin2000("ANL", 5)
	for trial := 0; trial < 40; trial++ {
		h := randomHierarchy(rng, sys, 12)
		ctx := ctxFor(sys, h)
		before := Imbalance(levelWork(ctx, 0))
		ParallelDLB{}.LocalBalance(ctx, 0)
		after := Imbalance(levelWork(ctx, 0))
		if after > before+1e-12 {
			t.Fatalf("trial %d: imbalance worsened %v -> %v", trial, before, after)
		}
	}
}

func TestGlobalBalancePreservesCellsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	sys := machine.WanPair(2, nil)
	for trial := 0; trial < 30; trial++ {
		h := randomHierarchy(rng, sys, 12)
		ctx := ctxFor(sys, h)
		recordCellLoads(ctx)
		ctx.Load.SetIntervalTime(10 + rng.Float64()*200)
		total := h.TotalCells(0)
		d := DistributedDLB{}.GlobalBalance(ctx)
		if h.TotalCells(0) != total {
			t.Fatalf("trial %d: global balance changed total cells", trial)
		}
		if err := h.CheckProperNesting(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Redistribution, when it happens, must reduce the group gap.
		if d.Invoked {
			if ctx.Load.ImbalanceRatio(sys) < 1 {
				t.Fatalf("trial %d: ratio below 1?", trial)
			}
		}
	}
}
