package dlb

import (
	"math"
	"sort"

	"samrdlb/internal/amr"
	"samrdlb/internal/geom"
)

// DiffusionDLB balances the groups' indivisible grid loads with
// nearest-neighbour diffusion over the netsim fabric graph, after
// Demirel & Sbalzarini (arXiv:1308.0148): each global step computes a
// work flow along every usable inter-group link and rounds it onto
// whole level-0 grids, instead of picking a single donor/receiver
// pair behind the paper's gain/cost gate.
//
//   - First-order scheme (FOS, the default): the flow on edge (i,j)
//     is α·(z_i − z_j)·h_ij, where z_g = W_g / P_g is the group's
//     perf-normalised workload, h_ij = 2·P_i·P_j/(P_i+P_j) the
//     harmonic-mean performance weight converting the z-difference
//     back into work units, and α = 1/|healthy groups| the diffusion
//     parameter keeping the Jacobi sweep stable.
//   - Second-order scheme (SOS, Order = 2): the flow carries memory,
//     f_t = (β−1)·f_{t−1} + β·f_FOS, which converges in roughly the
//     square root of the FOS step count. The flow memory is run state;
//     like the NWS forecast history, it restarts empty after a
//     checkpoint resume (a crash loses it by construction).
//   - Integer rounding: loads are indivisible grids. A flow moves
//     whole level-0 grids, nearest to the receiver's centroid first;
//     a grid is shipped only while at least half of it fits the
//     remaining flow (moved + w/2 ≤ f), and grids are never split.
//
// The local phase and child placement are the paper's (per-group
// balanceOver, parent-group placement), so the comparison against
// DistributedDLB isolates the global policy. Decisions report
// Evaluated without GainCostValid: there is no Gain/Cost record, and
// the invariant oracle's gate rule is scoped off via Traits.
type DiffusionDLB struct {
	// Order selects the scheme: 1 or 0 = first-order, 2 = second-order
	// with flow memory.
	Order int
	// Beta is the SOS over-relaxation parameter in (1, 2); 0 = default
	// 1.25. Ignored by the first-order scheme.
	Beta float64

	// prevFlow is the SOS flow memory, keyed by the (lo, hi) group
	// pair and signed positive lo→hi.
	prevFlow map[[2]int]float64
}

// Name implements Balancer.
func (b *DiffusionDLB) Name() string {
	if b.Order >= 2 {
		return "diffusion-sos-dlb"
	}
	return "diffusion-dlb"
}

// PlaceChild implements Balancer: children stay in the parent's
// group, as in the paper's scheme.
func (b *DiffusionDLB) PlaceChild(ctx *Context, childBox geom.Box, parent *amr.Grid) int {
	return DistributedDLB{}.PlaceChild(ctx, childBox, parent)
}

// LocalBalance implements Balancer with the paper's local phase:
// per-group even redistribution.
func (b *DiffusionDLB) LocalBalance(ctx *Context, level int) []Migration {
	return DistributedDLB{}.LocalBalance(ctx, level)
}

// GlobalBalance implements Balancer: one diffusion sweep per level-0
// step, rounded onto whole grids.
func (b *DiffusionDLB) GlobalBalance(ctx *Context) GlobalDecision {
	var d GlobalDecision
	sys := ctx.Sys
	if sys.NumGroups() < 2 {
		// Degenerate one-group system: same accounting as the paper's
		// scheme — the level-0 pass is still the global phase.
		d.Migrations = balanceOver(ctx, 0, allProcs(ctx))
		for _, m := range d.Migrations {
			d.MovedBytes += m.Bytes
		}
		d.Invoked = len(d.Migrations) > 0
		d.Evaluated = d.Invoked
		return d
	}
	healthy := healthyGroups(ctx, &d)
	if len(healthy) < 2 {
		degradeToLocal(ctx, &d)
		return d
	}

	// z_g = W_g / P_g over the reachable groups, using the
	// iteration-weighted subtree works (the same units the rounding
	// step compares grid loads in).
	z := make(map[int]float64, len(healthy))
	maxN, minN := math.Inf(-1), math.Inf(1)
	for _, g := range healthy {
		z[g] = groupSubtreeWork(ctx, g) / sys.GroupPerf(g)
		maxN = math.Max(maxN, z[g])
		minN = math.Min(minN, z[g])
	}
	if !ctx.ForceEval {
		ratio := math.Inf(1)
		switch {
		case maxN <= 0:
			ratio = 1
		case minN > 0:
			ratio = maxN / minN
		}
		if ratio <= 1+ctx.imbalanceEps() {
			return d
		}
	}
	d.Evaluated = true

	// One Jacobi sweep: flows on every usable fabric edge, computed
	// from the same z snapshot (edges do not see each other's moves
	// until the next step).
	alpha := 1 / float64(len(healthy))
	beta := b.Beta
	if !(beta > 1) || beta >= 2 {
		beta = 1.25
	}
	flow := make(map[[2]int]float64)
	for ii, i := range healthy {
		for _, j := range healthy[ii+1:] {
			if _, err := sys.Net.Between(i, j); err != nil {
				continue // no route: diffusion only flows along live links
			}
			pi, pj := sys.GroupPerf(i), sys.GroupPerf(j)
			h := 2 * pi * pj / (pi + pj)
			f := alpha * (z[i] - z[j]) * h
			key := [2]int{i, j}
			if b.Order >= 2 {
				f = (beta-1)*b.prevFlow[key] + beta*f
			}
			flow[key] = f
		}
	}
	if b.Order >= 2 {
		b.prevFlow = flow
	}

	// Execute the flows in deterministic edge order, rounding each
	// onto whole level-0 grids.
	keys := make([][2]int, 0, len(flow))
	for k := range flow {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, c int) bool {
		if keys[a][0] != keys[c][0] {
			return keys[a][0] < keys[c][0]
		}
		return keys[a][1] < keys[c][1]
	})
	for _, k := range keys {
		donor, recv, f := k[0], k[1], flow[k]
		if f < 0 {
			donor, recv, f = recv, donor, -f
		}
		if f < 1 {
			continue
		}
		d.Migrations = append(d.Migrations, moveLevel0Rounded(ctx, donor, recv, f)...)
	}
	for _, m := range d.Migrations {
		d.MovedBytes += m.Bytes
	}
	d.Invoked = len(d.Migrations) > 0
	return d
}

// moveLevel0Rounded migrates whole level-0 grids carrying about
// `target` iteration-weighted work from donor to receiver: nearest to
// the receiver's centroid first, a grid ships only while at least
// half of it fits the remaining flow, and grids are never split (the
// integer-load rounding of arXiv:1308.0148).
func moveLevel0Rounded(ctx *Context, donor, recv int, target float64) []Migration {
	centroid := receiverCentroid(ctx, recv)
	var donorGrids []*amr.Grid
	if ctx.Ledger != nil {
		for _, p := range sortedCopy(ctx.Sys.ProcsInGroup(donor)) {
			donorGrids = append(donorGrids, ctx.Ledger.Owned(0, p)...)
		}
	} else {
		for _, g := range ctx.H.Grids(0) {
			if ctx.Sys.GroupOf(g.Owner) == donor {
				donorGrids = append(donorGrids, g)
			}
		}
	}
	sort.Slice(donorGrids, func(i, j int) bool {
		di := dist2(boxCentroid(donorGrids[i].Box), centroid)
		dj := dist2(boxCentroid(donorGrids[j].Box), centroid)
		if di != dj {
			return di < dj
		}
		return donorGrids[i].ID < donorGrids[j].ID
	})
	recvProcs := groupProcs(ctx, recv)
	numFields := len(ctx.H.Fields)
	var out []Migration
	var moved float64
	for _, g := range donorGrids {
		w := subtreeWork(ctx, g)
		if moved+w/2 > target {
			continue // less than half fits; try a smaller grid further out
		}
		from := g.Owner
		ctx.H.SetOwner(g, leastLoadedProc(ctx, recvProcs, 0))
		adoptSubtree(ctx, g)
		out = append(out, Migration{Grid: g.ID, From: from, To: g.Owner, Bytes: g.Bytes(numFields)})
		moved += w
		if moved >= target {
			break
		}
	}
	return out
}
