package dlb

import (
	"testing"

	"samrdlb/internal/amr"
	"samrdlb/internal/geom"
	"samrdlb/internal/machine"
)

func TestMortonSegmentsAreCompact(t *testing.T) {
	// The partitioning property that matters: contiguous segments of
	// the Morton curve have less surface (and therefore less boundary
	// communication) than contiguous segments of a raster scan. Split
	// 8³ cells into 8 curve segments and compare total bounding-box
	// surface.
	n := 8
	var cells []geom.Index
	geom.UnitCube(n).ForEach(func(i geom.Index) { cells = append(cells, i) })
	byMorton := append([]geom.Index(nil), cells...)
	for i := 1; i < len(byMorton); i++ {
		for j := i; j > 0 && byMorton[j].MortonKey() < byMorton[j-1].MortonKey(); j-- {
			byMorton[j], byMorton[j-1] = byMorton[j-1], byMorton[j]
		}
	}
	segSurface := func(seq []geom.Index) int64 {
		var total int64
		segLen := len(seq) / 8
		for s := 0; s < 8; s++ {
			bb := geom.Box{Lo: geom.Index{1 << 30, 1 << 30, 1 << 30}, Hi: geom.Index{-(1 << 30), -(1 << 30), -(1 << 30)}}
			for _, i := range seq[s*segLen : (s+1)*segLen] {
				bb.Lo = bb.Lo.Min(i)
				bb.Hi = bb.Hi.Max(i)
			}
			total += bb.SurfaceCells()
		}
		return total
	}
	if segSurface(byMorton) >= segSurface(cells) {
		t.Errorf("Morton segments (surface %d) not more compact than scan segments (%d)",
			segSurface(byMorton), segSurface(cells))
	}
}

func TestMortonKeyMonotoneInOctants(t *testing.T) {
	// All cells of the low octant precede all cells of the high
	// octant (the defining recursive property of the Z-curve).
	lo := geom.UnitCube(2)
	hi := lo.Shift(geom.Index{2, 2, 2})
	var maxLo, minHi uint64 = 0, ^uint64(0)
	lo.ForEach(func(i geom.Index) {
		if k := i.MortonKey(); k > maxLo {
			maxLo = k
		}
	})
	hi.ForEach(func(i geom.Index) {
		if k := i.MortonKey(); k < minHi {
			minHi = k
		}
	})
	if maxLo >= minHi {
		t.Errorf("octant ordering violated: maxLo %d >= minHi %d", maxLo, minHi)
	}
	// Negative components clamp rather than wrap.
	if (geom.Index{-5, 0, 0}).MortonKey() != (geom.Index{0, 0, 0}).MortonKey() {
		t.Error("negative components must clamp to 0")
	}
}

func TestSFCLocalBalanceContiguousRuns(t *testing.T) {
	sys := machine.WanPair(2, nil)
	h := amr.New(geom.UnitCube(8), 2, 1, 1, false, "q")
	// 16 cubes in the low-z half (group 0's region), all on proc 0.
	for x := 0; x < 8; x += 4 {
		for y := 0; y < 8; y += 4 {
			for z := 0; z < 8; z += 2 {
				h.AddGrid(0, geom.BoxFromShape(geom.Index{x, y, z}, geom.Index{4, 4, 2}), 0, amr.NoGrid)
			}
		}
	}
	ctx := ctxFor(sys, h)
	migs := SFCDLB{}.LocalBalance(ctx, 0)
	if len(migs) == 0 {
		t.Fatal("expected migrations")
	}
	for _, m := range migs {
		if !sys.SameGroup(m.From, m.To) {
			t.Fatalf("SFC local balance crossed groups: %+v", m)
		}
	}
	// Perfect balance at this granularity.
	pc := procCells(ctx, 0)
	if pc[0] != pc[1] {
		t.Errorf("SFC balance uneven: %v vs %v", pc[0], pc[1])
	}
	// Each processor owns a contiguous run of the Morton order.
	grids := append([]*amr.Grid(nil), h.Grids(0)...)
	for i := 1; i < len(grids); i++ {
		for j := i; j > 0 && mortonOf(grids[j].Box) < mortonOf(grids[j-1].Box); j-- {
			grids[j], grids[j-1] = grids[j-1], grids[j]
		}
	}
	switches := 0
	for i := 1; i < len(grids); i++ {
		if grids[i].Owner != grids[i-1].Owner {
			switches++
		}
	}
	if switches != 1 {
		t.Errorf("expected one owner switch along the curve, got %d", switches)
	}
}

func TestSFCRespectsPerfWeights(t *testing.T) {
	// Partition directly over a mixed-speed processor set (the local
	// phase itself never crosses groups, so drive the partitioner).
	sys := machine.Heterogeneous(1, 1, 0.5, nil)
	h := slabHierarchy(6, []int{1, 1, 1, 1, 1, 1}, []int{0, 0, 0, 0, 0, 0})
	ctx := ctxFor(sys, h)
	sfcPartition(ctx, 0, []int{0, 1}, SFCDLB{}.keyOf)
	pc := procCells(ctx, 0)
	if pc[0] != 144 || pc[1] != 72 {
		t.Errorf("perf-weighted SFC split = %v / %v, want 144 / 72", pc[0], pc[1])
	}
}

func TestSFCGlobalPhaseMatchesDistributed(t *testing.T) {
	mk := func() *Context {
		sys := machine.WanPair(2, nil)
		h := slabHierarchy(8, []int{2, 2, 2, 2}, []int{0, 1, 0, 2})
		ctx := ctxFor(sys, h)
		recordCellLoads(ctx)
		ctx.Load.SetIntervalTime(100)
		return ctx
	}
	a := DistributedDLB{}.GlobalBalance(mk())
	b := SFCDLB{}.GlobalBalance(mk())
	if a.Invoked != b.Invoked || a.MovedBytes != b.MovedBytes {
		t.Errorf("SFC global phase diverges from distributed: %+v vs %+v", a, b)
	}
	if (SFCDLB{}).Name() != "sfc-dlb" {
		t.Error("name wrong")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestSFCLocalBalanceSkipsFailedProcs(t *testing.T) {
	// Regression for a fuzz-found invariant violation: the curve
	// partitioner dealt perf-weighted runs over every processor in the
	// group, failed ones included, so after a processor failure the SFC
	// local phase re-assigned grids onto the dead processor and the
	// checkpoint captured them there (owners-alive fired on resume).
	// The runs must be dealt over the alive processors only.
	for _, curve := range []CurveKind{CurveMorton, CurveHilbert} {
		sys := machine.WanPair(3, nil) // group 0 = procs 0,1,2
		sys.SetHealth(1, 0)
		h := slabHierarchy(6, []int{1, 1, 1, 1, 1, 1}, []int{0, 0, 0, 0, 0, 0})
		ctx := ctxFor(sys, h)
		migs := SFCDLB{Curve: curve}.LocalBalance(ctx, 0)
		if len(migs) == 0 {
			t.Fatalf("curve %v: expected migrations onto the surviving procs", curve)
		}
		for _, m := range migs {
			if m.To == 1 {
				t.Errorf("curve %v: migration %+v targets the failed processor", curve, m)
			}
		}
		for _, g := range h.Grids(0) {
			if g.Owner == 1 {
				t.Errorf("curve %v: grid %d left on the failed processor", curve, g.ID)
			}
		}
		// The survivors still split the curve evenly.
		pc := procCells(ctx, 0)
		if pc[0] != pc[2] {
			t.Errorf("curve %v: uneven split over survivors: %v vs %v", curve, pc[0], pc[2])
		}
	}
}
