package netsim

import (
	"math"
	"math/rand"
	"testing"
)

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries(0)
	if _, ok := s.Forecast(); ok {
		t.Error("empty series must not forecast")
	}
	if s.Best() != "" || s.Len() != 0 {
		t.Error("empty series state wrong")
	}
}

func TestSeriesConstantIsExact(t *testing.T) {
	s := NewSeries(0)
	for i := 0; i < 20; i++ {
		s.Record(0.42)
	}
	v, ok := s.Forecast()
	if !ok || math.Abs(v-0.42) > 1e-12 {
		t.Errorf("constant forecast = %v", v)
	}
}

func TestSeriesTracksTrend(t *testing.T) {
	// A slowly rising series: the forecast must stay close to the
	// latest values, not the ancient ones.
	s := NewSeries(0)
	for i := 0; i < 50; i++ {
		s.Record(float64(i))
	}
	v, _ := s.Forecast()
	if v < 40 {
		t.Errorf("forecast %v lags a rising trend badly", v)
	}
}

func TestSeriesMedianWinsOnSpikyData(t *testing.T) {
	// Mostly 1.0 with occasional huge spikes: median-like predictors
	// should accumulate less error than last-value, and the combined
	// forecast should sit near 1, not near the spike.
	s := NewSeries(0)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		v := 1.0 + 0.01*rng.NormFloat64()
		if i%17 == 0 {
			v = 25
		}
		s.Record(v)
	}
	// End right after a spike: a pure last-value forecaster would
	// predict ~25.
	s.Record(25)
	v, _ := s.Forecast()
	if v > 5 {
		t.Errorf("forecast %v dominated by spike; Best=%s", v, s.Best())
	}
}

func TestSeriesHistoryBounded(t *testing.T) {
	s := NewSeries(10)
	for i := 0; i < 100; i++ {
		s.Record(float64(i))
	}
	if s.Len() != 10 {
		t.Errorf("history len = %d, want 10", s.Len())
	}
}

func TestPredictorPrimitives(t *testing.T) {
	h := []float64{1, 2, 3, 4, 100}
	if got := (lastValue{}).predict(h); got != 100 {
		t.Errorf("last = %v", got)
	}
	if got := (runningMean{}).predict(h); math.Abs(got-22) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
	if got := (slidingMean{k: 2}).predict(h); math.Abs(got-52) > 1e-12 {
		t.Errorf("sliding mean = %v", got)
	}
	if got := (slidingMedian{k: 5}).predict(h); got != 3 {
		t.Errorf("median = %v", got)
	}
	if got := (slidingMedian{k: 4}).predict(h); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("even median = %v", got)
	}
	// Sliding windows larger than history degrade gracefully.
	if got := (slidingMean{k: 50}).predict(h); math.Abs(got-22) > 1e-12 {
		t.Errorf("oversized window = %v", got)
	}
	// Exponential smoothing with g=1 is last value.
	if got := (expSmooth{g: 1}).predict(h); got != 100 {
		t.Errorf("expSmooth(1) = %v", got)
	}
}

func TestLinkForecastRoundTrip(t *testing.T) {
	lf := NewLinkForecast()
	if _, _, ok := lf.Forecast(); ok {
		t.Error("empty link forecast must not be ok")
	}
	for i := 0; i < 10; i++ {
		lf.Record(0.01, 1e-7)
	}
	a, b, ok := lf.Forecast()
	if !ok || math.Abs(a-0.01) > 1e-12 || math.Abs(b-1e-7) > 1e-18 {
		t.Errorf("forecast = %v %v %v", a, b, ok)
	}
}

func TestForecastSetKeysByLink(t *testing.T) {
	fs := NewForecastSet()
	l1, l2 := MrenWAN(nil), GigabitLAN(nil)
	fs.For(l1).Record(1, 1)
	if fs.For(l1) != fs.For(l1) {
		t.Error("set must memoise per link")
	}
	if _, _, ok := fs.For(l2).Forecast(); ok {
		t.Error("fresh link must have no forecast")
	}
	if _, _, ok := fs.For(l1).Forecast(); !ok {
		t.Error("recorded link must forecast")
	}
}

func TestForecastBeatsRawProbeOnBurstyLink(t *testing.T) {
	// The point of the NWS integration: on a bursty link, the
	// forecast's error against the *long-run mean* effective beta is
	// smaller than the raw probe's, so cost estimates stop flapping.
	traffic := &BurstyTraffic{QuietLoad: 0.1, BusyLoad: 0.8, MeanQuiet: 10, MeanBusy: 5, Seed: 2}
	link := MrenWAN(traffic)
	lf := NewLinkForecast()
	var rawErr, forErr float64
	var mean float64
	// Establish the long-run mean effective beta.
	n := 0
	for ts := 0.0; ts < 400; ts += 1 {
		mean += link.EffectiveBeta(ts)
		n++
	}
	mean /= float64(n)
	for ts := 0.0; ts < 400; ts += 5 {
		_, bHat, _ := link.Probe(ts)
		if f, _, ok := lf.Forecast(); ok {
			_ = f
		}
		if _, fb, ok := lf.Forecast(); ok {
			forErr += math.Abs(fb - mean)
			rawErr += math.Abs(bHat - mean)
		}
		lf.Record(0.01, bHat)
	}
	if forErr >= rawErr {
		t.Errorf("forecast error %v should be below raw probe error %v", forErr, rawErr)
	}
}
