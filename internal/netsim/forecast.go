package netsim

import (
	"math"
	"sort"
)

// This file implements Network Weather Service-style forecasting
// (Wolski, "Dynamically Forecasting Network Performance using the
// Network Weather Service", 1996) — the integration the paper names
// as future work: "we will connect this proposed DLB scheme with
// tools such as the NWS service to get more accurate evaluation of
// underlying networks."
//
// NWS maintains a family of simple predictors over the measurement
// history and, for each new forecast, selects the predictor with the
// lowest accumulated error so far. A Series tracks one scalar (e.g. a
// link's measured β); a LinkForecast pairs two Series for α and β;
// a ForecastSet keys them by link.

// predictor is one forecasting strategy over a history of values.
type predictor interface {
	name() string
	predict(hist []float64) float64
}

// lastValue predicts the most recent measurement.
type lastValue struct{}

func (lastValue) name() string { return "last" }
func (lastValue) predict(h []float64) float64 {
	return h[len(h)-1]
}

// runningMean predicts the mean of the whole history.
type runningMean struct{}

func (runningMean) name() string { return "mean" }
func (runningMean) predict(h []float64) float64 {
	var s float64
	for _, v := range h {
		s += v
	}
	return s / float64(len(h))
}

// slidingMean predicts the mean of the last k measurements.
type slidingMean struct{ k int }

func (p slidingMean) name() string { return "sliding-mean" }
func (p slidingMean) predict(h []float64) float64 {
	start := len(h) - p.k
	if start < 0 {
		start = 0
	}
	var s float64
	for _, v := range h[start:] {
		s += v
	}
	return s / float64(len(h)-start)
}

// slidingMedian predicts the median of the last k measurements —
// robust against the bursty outliers shared networks produce.
type slidingMedian struct{ k int }

func (p slidingMedian) name() string { return "sliding-median" }
func (p slidingMedian) predict(h []float64) float64 {
	start := len(h) - p.k
	if start < 0 {
		start = 0
	}
	w := append([]float64(nil), h[start:]...)
	sort.Float64s(w)
	n := len(w)
	if n%2 == 1 {
		return w[n/2]
	}
	return (w[n/2-1] + w[n/2]) / 2
}

// expSmooth predicts with exponential smoothing at gain g.
type expSmooth struct{ g float64 }

func (p expSmooth) name() string { return "exp-smooth" }
func (p expSmooth) predict(h []float64) float64 {
	s := h[0]
	for _, v := range h[1:] {
		s = p.g*v + (1-p.g)*s
	}
	return s
}

// Series is an NWS-style forecaster for one scalar measurement
// stream: it runs a family of predictors in parallel, scores each by
// its accumulated absolute error, and forecasts with the current
// best.
type Series struct {
	hist    []float64
	preds   []predictor
	errs    []float64
	lastFor []float64
	maxHist int
}

// NewSeries returns a forecaster with the standard NWS predictor
// family. History is bounded to maxHist measurements (0 = 64).
func NewSeries(maxHist int) *Series {
	if maxHist <= 0 {
		maxHist = 64
	}
	// Robust predictors lead the list: bestIdx breaks ties toward the
	// earliest entry, so when the history has been too uneventful to
	// separate the predictors, outlier-resistant forecasts win.
	preds := []predictor{
		slidingMedian{k: 5},
		slidingMedian{k: 15},
		slidingMean{k: 5},
		slidingMean{k: 15},
		expSmooth{g: 0.3},
		expSmooth{g: 0.7},
		runningMean{},
		lastValue{},
	}
	return &Series{
		preds:   preds,
		errs:    make([]float64, len(preds)),
		lastFor: make([]float64, len(preds)),
		maxHist: maxHist,
	}
}

// Record adds a measurement: each predictor's standing forecast is
// scored against it, then forecasts are refreshed.
func (s *Series) Record(v float64) {
	if len(s.hist) > 0 {
		for i := range s.preds {
			s.errs[i] += math.Abs(v - s.lastFor[i])
		}
	}
	s.hist = append(s.hist, v)
	if len(s.hist) > s.maxHist {
		s.hist = s.hist[len(s.hist)-s.maxHist:]
	}
	for i, p := range s.preds {
		s.lastFor[i] = p.predict(s.hist)
	}
}

// Len returns the number of recorded measurements retained.
func (s *Series) Len() int { return len(s.hist) }

// Forecast returns the current best predictor's forecast; ok is false
// until at least one measurement exists.
func (s *Series) Forecast() (v float64, ok bool) {
	if len(s.hist) == 0 {
		return 0, false
	}
	return s.lastFor[s.bestIdx()], true
}

// Best returns the name of the currently winning predictor.
func (s *Series) Best() string {
	if len(s.hist) == 0 {
		return ""
	}
	return s.preds[s.bestIdx()].name()
}

func (s *Series) bestIdx() int {
	best := 0
	for i := 1; i < len(s.errs); i++ {
		if s.errs[i] < s.errs[best] {
			best = i
		}
	}
	return best
}

// LinkForecast forecasts a link's α and β from probe history.
type LinkForecast struct {
	Alpha, Beta *Series
}

// NewLinkForecast returns an empty link forecaster.
func NewLinkForecast() *LinkForecast {
	return &LinkForecast{Alpha: NewSeries(0), Beta: NewSeries(0)}
}

// Record feeds one probe measurement.
func (lf *LinkForecast) Record(alpha, beta float64) {
	lf.Alpha.Record(alpha)
	lf.Beta.Record(beta)
}

// Forecast returns the predicted (α, β); ok is false with no history.
func (lf *LinkForecast) Forecast() (alpha, beta float64, ok bool) {
	a, okA := lf.Alpha.Forecast()
	b, okB := lf.Beta.Forecast()
	return a, b, okA && okB
}

// ForecastSet holds one LinkForecast per link.
type ForecastSet struct {
	byLink map[*Link]*LinkForecast
}

// NewForecastSet returns an empty set.
func NewForecastSet() *ForecastSet {
	return &ForecastSet{byLink: make(map[*Link]*LinkForecast)}
}

// For returns (creating if needed) the forecaster for a link.
func (fs *ForecastSet) For(l *Link) *LinkForecast {
	lf := fs.byLink[l]
	if lf == nil {
		lf = NewLinkForecast()
		fs.byLink[l] = lf
	}
	return lf
}
