// Package netsim models the networks of a distributed system: links
// characterised by latency α and transfer rate β (seconds per byte),
// following the paper's communication model Tcomm = α + β·L, with
// shared links carrying time-varying background traffic that reduces
// the effective bandwidth. It also implements the paper's two-message
// probing that estimates α and β at runtime (Section 4.2).
//
// The modelled links are the sole timing authority for every run:
// when the engine carries rank messages over a real socket transport
// (engine.Options.Transport = "tcp"), the wire moves payload bytes
// but contributes nothing to virtual time — all communication charges
// still come from these links.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// TrafficModel describes the background load on a shared link as a
// function of time: Load(t) is the fraction of the nominal bandwidth
// consumed by other users, in [0, MaxLoad] with MaxLoad < 1.
type TrafficModel interface {
	// Load returns the background-load fraction at time t (seconds).
	Load(t float64) float64
}

// maxLoad clamps any model's output so a link never loses all its
// bandwidth (the paper's networks are shared but never unusable).
const maxLoadClamp = 0.95

func clampLoad(l float64) float64 {
	if l < 0 {
		return 0
	}
	if l > maxLoadClamp {
		return maxLoadClamp
	}
	return l
}

// ConstantTraffic is a fixed background load (0 = dedicated link).
type ConstantTraffic struct{ Level float64 }

// Load implements TrafficModel.
func (c ConstantTraffic) Load(float64) float64 { return clampLoad(c.Level) }

// SinusoidTraffic oscillates around Mean with the given amplitude and
// period, modelling diurnal or periodic congestion patterns.
type SinusoidTraffic struct {
	Mean, Amp, Period, Phase float64
}

// Load implements TrafficModel.
func (s SinusoidTraffic) Load(t float64) float64 {
	if s.Period <= 0 {
		return clampLoad(s.Mean)
	}
	return clampLoad(s.Mean + s.Amp*math.Sin(2*math.Pi*t/s.Period+s.Phase))
}

// BurstyTraffic is a deterministic-given-seed two-state (on/off)
// Markov-like model: the link alternates between a quiet level and a
// busy level with pseudo-random dwell times. It reproduces the
// shared-WAN behaviour the paper observed on MREN ("periods of high
// traffic due to sharing of the networks or low traffic").
type BurstyTraffic struct {
	QuietLoad, BusyLoad float64
	MeanQuiet, MeanBusy float64 // mean dwell times, seconds
	Seed                int64
	transitions         []transition
	generatedUpTo       float64
	rng                 *rand.Rand
}

type transition struct {
	at   float64
	busy bool
}

// Load implements TrafficModel. The dwell sequence is generated
// lazily and memoised, so repeated queries at any time are consistent.
func (b *BurstyTraffic) Load(t float64) float64 {
	if t < 0 {
		t = 0
	}
	b.ensure(t)
	// Binary search for the state at time t.
	i := sort.Search(len(b.transitions), func(i int) bool { return b.transitions[i].at > t })
	if i == 0 {
		return clampLoad(b.QuietLoad)
	}
	if b.transitions[i-1].busy {
		return clampLoad(b.BusyLoad)
	}
	return clampLoad(b.QuietLoad)
}

func (b *BurstyTraffic) ensure(t float64) {
	if b.rng == nil {
		b.rng = rand.New(rand.NewSource(b.Seed))
		b.transitions = []transition{{at: 0, busy: false}}
		b.generatedUpTo = 0
	}
	mq, mb := b.MeanQuiet, b.MeanBusy
	if mq <= 0 {
		mq = 10
	}
	if mb <= 0 {
		mb = 5
	}
	for b.generatedUpTo <= t {
		last := b.transitions[len(b.transitions)-1]
		var dwell float64
		if last.busy {
			dwell = b.rng.ExpFloat64() * mb
		} else {
			dwell = b.rng.ExpFloat64() * mq
		}
		if dwell < 1e-3 {
			dwell = 1e-3
		}
		next := transition{at: last.at + dwell, busy: !last.busy}
		b.transitions = append(b.transitions, next)
		b.generatedUpTo = next.at
	}
}

// RandomWalkTraffic performs a mean-reverting bounded random walk,
// sampled on a fixed grid and linearly interpolated, modelling slowly
// drifting background load.
type RandomWalkTraffic struct {
	Start, Step, Interval float64
	Seed                  int64
	samples               []float64
	rng                   *rand.Rand
}

// Load implements TrafficModel.
func (w *RandomWalkTraffic) Load(t float64) float64 {
	if t < 0 {
		t = 0
	}
	iv := w.Interval
	if iv <= 0 {
		iv = 1
	}
	idx := int(t / iv)
	w.ensure(idx + 1)
	frac := t/iv - float64(idx)
	v := w.samples[idx]*(1-frac) + w.samples[idx+1]*frac
	return clampLoad(v)
}

func (w *RandomWalkTraffic) ensure(n int) {
	if w.rng == nil {
		w.rng = rand.New(rand.NewSource(w.Seed))
		w.samples = []float64{clampLoad(w.Start)}
	}
	step := w.Step
	if step <= 0 {
		step = 0.05
	}
	for len(w.samples) <= n {
		prev := w.samples[len(w.samples)-1]
		// Mean-revert toward Start with random perturbation.
		v := prev + 0.1*(w.Start-prev) + step*(2*w.rng.Float64()-1)
		w.samples = append(w.samples, clampLoad(v))
	}
}

// TraceTraffic replays a recorded load trace: piecewise-constant
// between the given sample times. Times must be ascending.
type TraceTraffic struct {
	Times []float64
	Loads []float64
}

// Load implements TrafficModel.
func (tr TraceTraffic) Load(t float64) float64 {
	if len(tr.Times) == 0 {
		return 0
	}
	if len(tr.Times) != len(tr.Loads) {
		panic(fmt.Sprintf("netsim.TraceTraffic: %d times but %d loads", len(tr.Times), len(tr.Loads)))
	}
	i := sort.Search(len(tr.Times), func(i int) bool { return tr.Times[i] > t })
	if i == 0 {
		return clampLoad(tr.Loads[0])
	}
	return clampLoad(tr.Loads[i-1])
}

// CompositeTraffic sums several background sources sharing one link
// (e.g. a diurnal baseline plus bursty cross-traffic), clamped to the
// usable range.
type CompositeTraffic struct {
	Parts []TrafficModel
}

// Load implements TrafficModel.
func (c CompositeTraffic) Load(t float64) float64 {
	var sum float64
	for _, p := range c.Parts {
		sum += p.Load(t)
	}
	return clampLoad(sum)
}
