package netsim_test

import (
	"fmt"

	"samrdlb/internal/netsim"
)

func ExampleLink_TransferTime() {
	// The paper's model: Tcomm = α + β·L.
	wan := netsim.NewLink("wan", 0.010, 19.375e6, nil) // 10 ms, 155 Mb/s
	fmt.Printf("%.3f s\n", wan.TransferTime(0, 1<<20))
	// Output:
	// 0.064 s
}

func ExampleLink_Probe() {
	// Section 4.2: two messages recover α and β under the current
	// background traffic.
	wan := netsim.NewLink("wan", 0.010, 1e8, netsim.ConstantTraffic{Level: 0.5})
	alpha, beta, _ := wan.Probe(0)
	fmt.Printf("alpha %.0f ms, effective bandwidth %.0f MB/s\n", alpha*1e3, 1/beta/1e6)
	// Output:
	// alpha 10 ms, effective bandwidth 50 MB/s
}

func ExampleSeries() {
	// NWS-style forecasting: a spike is treated as an outlier once
	// the history says the link is usually quiet.
	s := netsim.NewSeries(0)
	for i := 0; i < 10; i++ {
		s.Record(1.0)
	}
	s.Record(25.0) // burst
	v, _ := s.Forecast()
	fmt.Printf("forecast %.1f via %s\n", v, s.Best())
	// Output:
	// forecast 1.0 via sliding-median
}
