package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func qc(seed int64) *quick.Config {
	return &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(seed))}
}

func TestTransferTimeMonotoneProperty(t *testing.T) {
	// For any traffic state and any pair of sizes, the larger message
	// never arrives sooner.
	models := []TrafficModel{
		nil,
		ConstantTraffic{Level: 0.3},
		SinusoidTraffic{Mean: 0.4, Amp: 0.3, Period: 30},
		&BurstyTraffic{QuietLoad: 0.1, BusyLoad: 0.8, Seed: 3},
		&RandomWalkTraffic{Start: 0.2, Step: 0.1, Seed: 4},
	}
	links := make([]*Link, len(models))
	for i, m := range models {
		links[i] = NewLink("l", 1e-3, 1e8, m)
	}
	f := func(ts, a, b float64) bool {
		now := math.Abs(math.Mod(ts, 1000))
		x, y := math.Abs(a), math.Abs(b)
		if x > y {
			x, y = y, x
		}
		for _, l := range links {
			if l.TransferTime(now, x) > l.TransferTime(now, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qc(31)); err != nil {
		t.Error(err)
	}
}

func TestEffectiveBetaNeverBelowNominalProperty(t *testing.T) {
	// Background traffic can only slow a link down.
	l := NewLink("l", 0, 1e8, &BurstyTraffic{QuietLoad: 0.0, BusyLoad: 0.9, Seed: 7})
	f := func(ts float64) bool {
		now := math.Abs(math.Mod(ts, 500))
		return l.EffectiveBeta(now) >= l.Beta
	}
	if err := quick.Check(f, qc(32)); err != nil {
		t.Error(err)
	}
}

func TestProbeExactUnderConstantTrafficProperty(t *testing.T) {
	// For any latency, bandwidth and constant load, the two-message
	// probe recovers the effective parameters exactly.
	f := func(lat, bw, loadRaw float64) bool {
		latency := math.Abs(math.Mod(lat, 0.1))
		bandwidth := 1e6 + math.Abs(math.Mod(bw, 1e9))
		level := math.Abs(math.Mod(loadRaw, 0.9))
		l := NewLink("l", latency, bandwidth, ConstantTraffic{Level: level})
		aHat, bHat, _ := l.Probe(0)
		wantB := l.EffectiveBeta(0)
		return math.Abs(aHat-latency) <= 1e-9*(1+latency) &&
			math.Abs(bHat-wantB) <= 1e-9*wantB
	}
	if err := quick.Check(f, qc(33)); err != nil {
		t.Error(err)
	}
}

func TestForecastWithinHistoryRangeProperty(t *testing.T) {
	// Every predictor in the NWS family is a convex combination of
	// history values, so the forecast stays inside [min, max].
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSeries(0)
		lo, hi := math.Inf(1), math.Inf(-1)
		n := 2 + rng.Intn(40)
		for i := 0; i < n; i++ {
			v := rng.Float64() * 100
			lo, hi = math.Min(lo, v), math.Max(hi, v)
			s.Record(v)
		}
		v, ok := s.Forecast()
		return ok && v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, qc(34)); err != nil {
		t.Error(err)
	}
}

func TestTrafficModelsBoundedProperty(t *testing.T) {
	models := []TrafficModel{
		ConstantTraffic{Level: 1.5},
		SinusoidTraffic{Mean: 0.8, Amp: 0.9, Period: 10},
		&BurstyTraffic{QuietLoad: -1, BusyLoad: 3, Seed: 9},
		&RandomWalkTraffic{Start: 0.9, Step: 0.5, Seed: 10},
		TraceTraffic{Times: []float64{0}, Loads: []float64{7}},
	}
	f := func(ts float64) bool {
		now := math.Abs(math.Mod(ts, 300))
		for _, m := range models {
			l := m.Load(now)
			if l < 0 || l > maxLoadClamp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qc(35)); err != nil {
		t.Error(err)
	}
}
