package netsim

import (
	"math"
	"strings"
	"testing"
)

// scriptedFault is a test double for the FaultModel interface: down
// and degraded over fixed windows, dropping the first nDrop probe
// messages.
type scriptedFault struct {
	downLo, downHi float64
	degrade        float64
	nDrop          int
	seen           int
}

func (f *scriptedFault) Down(t float64) bool { return t >= f.downLo && t < f.downHi }
func (f *scriptedFault) Degrade(t float64) float64 {
	if f.degrade == 0 {
		return 1
	}
	return f.degrade
}
func (f *scriptedFault) DropProbe(t float64) bool {
	f.seen++
	return f.seen <= f.nDrop
}

func TestAvailableAndDegrade(t *testing.T) {
	l := MrenWAN(nil)
	if !l.Available(5) {
		t.Error("fault-free link must always be available")
	}
	base := l.EffectiveBeta(0)
	l.Fault = &scriptedFault{downLo: 10, downHi: 20, degrade: 4}
	if l.Available(15) || !l.Available(5) || !l.Available(20) {
		t.Error("availability window wrong")
	}
	if got := l.EffectiveBeta(0); math.Abs(got-4*base)/base > 1e-12 {
		t.Errorf("degraded beta %v, want %v", got, 4*base)
	}
}

func TestTryProbeFailsWhenDown(t *testing.T) {
	l := MrenWAN(nil)
	l.Fault = &scriptedFault{downLo: 0, downHi: 100}
	_, _, pt, err := l.TryProbe(5)
	if err == nil {
		t.Fatal("probe over a down link must fail")
	}
	if pt != 0 {
		t.Errorf("failed probe must not report probe time, got %v", pt)
	}
	// Outside the window it matches the fault-blind probe.
	a1, b1, t1 := l.Probe(200)
	a2, b2, t2, err := l.TryProbe(200)
	if err != nil {
		t.Fatalf("probe after window: %v", err)
	}
	if a1 != a2 || b1 != b2 || t1 != t2 {
		t.Error("TryProbe must match Probe when healthy")
	}
}

func TestTryProbeDropsMessages(t *testing.T) {
	l := MrenWAN(nil)
	l.Fault = &scriptedFault{nDrop: 2}
	if _, _, _, err := l.TryProbe(0); err == nil || !strings.Contains(err.Error(), "message 1") {
		t.Fatalf("first message drop: %v", err)
	}
	// The second drop hits the second call's first message; the third
	// call then gets both messages through.
	if _, _, _, err := l.TryProbe(0); err == nil {
		t.Fatal("second probe must also fail")
	}
	if _, _, _, err := l.TryProbe(0); err != nil {
		t.Fatalf("drops exhausted, want success: %v", err)
	}
}

func TestProbeWithRetryRecoversAndTimes(t *testing.T) {
	l := MrenWAN(nil)
	l.Fault = &scriptedFault{nDrop: 2} // first attempt loses msg1, second loses msg1, third succeeds
	pol := RetryPolicy{MaxAttempts: 3, Timeout: 0.5, Backoff: 0.2, MaxBackoff: 1}
	a, b, elapsed, retryTime, attempts, err := l.ProbeWithRetry(0, pol)
	if err != nil {
		t.Fatalf("retry must eventually succeed: %v", err)
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	// Two failures cost 2 timeouts + backoffs 0.2 and 0.4.
	wantRetry := 2*0.5 + 0.2 + 0.4
	if math.Abs(retryTime-wantRetry) > 1e-12 {
		t.Errorf("retryTime = %v, want %v", retryTime, wantRetry)
	}
	// Elapsed = retry overhead + the successful probe itself.
	_, _, pt := l.Probe(wantRetry)
	if math.Abs(elapsed-(wantRetry+pt)) > 1e-12 {
		t.Errorf("elapsed = %v, want %v", elapsed, wantRetry+pt)
	}
	if a <= 0 || b <= 0 {
		t.Errorf("estimates must be positive: α=%v β=%v", a, b)
	}
}

func TestProbeWithRetryExhausts(t *testing.T) {
	l := MrenWAN(nil)
	l.Fault = &scriptedFault{downLo: 0, downHi: 1e9}
	pol := RetryPolicy{MaxAttempts: 4, Timeout: 0.25, Backoff: 0.1, MaxBackoff: 0.15}
	_, _, elapsed, retryTime, attempts, err := l.ProbeWithRetry(0, pol)
	if err == nil {
		t.Fatal("retry over a dead link must fail")
	}
	if attempts != 4 {
		t.Errorf("attempts = %d, want 4", attempts)
	}
	// 4 timeouts + backoffs 0.1, 0.15 (capped), 0.15 (capped).
	want := 4*0.25 + 0.1 + 0.15 + 0.15
	if math.Abs(elapsed-want) > 1e-12 || math.Abs(retryTime-want) > 1e-12 {
		t.Errorf("elapsed %v retry %v, want both %v", elapsed, retryTime, want)
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p.MaxAttempts != 3 || p.Timeout != 0.25 || p.Backoff != 0.1 || p.MaxBackoff != 2 {
		t.Errorf("defaults wrong: %+v", p)
	}
	// Explicit values survive.
	q := RetryPolicy{MaxAttempts: 7, Timeout: 1, Backoff: 2, MaxBackoff: 3}.withDefaults()
	if q.MaxAttempts != 7 || q.Timeout != 1 || q.Backoff != 2 || q.MaxBackoff != 3 {
		t.Errorf("explicit policy clobbered: %+v", q)
	}
}
