package netsim

import (
	"math"
	"testing"
)

func TestConstantTraffic(t *testing.T) {
	c := ConstantTraffic{Level: 0.3}
	if c.Load(0) != 0.3 || c.Load(1e9) != 0.3 {
		t.Error("constant traffic not constant")
	}
	if (ConstantTraffic{Level: 2}).Load(0) > maxLoadClamp {
		t.Error("load must clamp below 1")
	}
	if (ConstantTraffic{Level: -1}).Load(0) != 0 {
		t.Error("negative load must clamp to 0")
	}
}

func TestSinusoidTrafficRange(t *testing.T) {
	s := SinusoidTraffic{Mean: 0.4, Amp: 0.3, Period: 60}
	lo, hi := 1.0, 0.0
	for x := 0.0; x < 120; x += 0.5 {
		l := s.Load(x)
		if l < 0 || l >= 1 {
			t.Fatalf("load out of range at %v: %v", x, l)
		}
		lo, hi = math.Min(lo, l), math.Max(hi, l)
	}
	if hi-lo < 0.5 {
		t.Errorf("sinusoid should span ~2*Amp: lo %v hi %v", lo, hi)
	}
	// Zero period degenerates to the mean.
	if (SinusoidTraffic{Mean: 0.2}).Load(17) != 0.2 {
		t.Error("zero-period sinusoid should return mean")
	}
}

func TestBurstyTrafficTwoLevelsAndConsistency(t *testing.T) {
	b := &BurstyTraffic{QuietLoad: 0.1, BusyLoad: 0.8, MeanQuiet: 5, MeanBusy: 5, Seed: 3}
	seenQuiet, seenBusy := false, false
	vals := make([]float64, 0, 200)
	for x := 0.0; x < 100; x += 0.5 {
		l := b.Load(x)
		vals = append(vals, l)
		switch l {
		case 0.1:
			seenQuiet = true
		case 0.8:
			seenBusy = true
		default:
			t.Fatalf("bursty load must be one of two levels, got %v", l)
		}
	}
	if !seenQuiet || !seenBusy {
		t.Error("bursty model never switched state in 100s with 5s dwell")
	}
	// Re-querying earlier times gives identical answers (memoised).
	i := 0
	for x := 0.0; x < 100; x += 0.5 {
		if b.Load(x) != vals[i] {
			t.Fatalf("bursty model inconsistent on re-query at %v", x)
		}
		i++
	}
}

func TestBurstyTrafficDeterministicAcrossInstances(t *testing.T) {
	a := &BurstyTraffic{QuietLoad: 0.1, BusyLoad: 0.7, Seed: 9}
	b := &BurstyTraffic{QuietLoad: 0.1, BusyLoad: 0.7, Seed: 9}
	// Query in different orders; same seed must give same answers.
	if a.Load(50) != b.Load(50) {
		t.Error("same seed should give same trace")
	}
	if a.Load(10) != b.Load(10) {
		t.Error("same seed should give same trace at earlier time")
	}
}

func TestRandomWalkTrafficBoundedAndDeterministic(t *testing.T) {
	w := &RandomWalkTraffic{Start: 0.3, Step: 0.1, Interval: 1, Seed: 5}
	for x := 0.0; x < 200; x += 0.7 {
		l := w.Load(x)
		if l < 0 || l > maxLoadClamp {
			t.Fatalf("walk out of range at %v: %v", x, l)
		}
	}
	w2 := &RandomWalkTraffic{Start: 0.3, Step: 0.1, Interval: 1, Seed: 5}
	if w.Load(42.3) != w2.Load(42.3) {
		t.Error("same seed should replay same walk")
	}
	// Negative times are treated as 0.
	if w.Load(-5) != w.Load(0) {
		t.Error("negative time should clamp to 0")
	}
}

func TestTraceTraffic(t *testing.T) {
	tr := TraceTraffic{Times: []float64{0, 10, 20}, Loads: []float64{0.1, 0.5, 0.2}}
	cases := []struct{ t, want float64 }{
		{-1, 0.1}, {0, 0.1}, {5, 0.1}, {10, 0.5}, {15, 0.5}, {25, 0.2},
	}
	for _, c := range cases {
		if got := tr.Load(c.t); got != c.want {
			t.Errorf("trace load(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if (TraceTraffic{}).Load(5) != 0 {
		t.Error("empty trace should be 0")
	}
}

func TestTraceTrafficMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	TraceTraffic{Times: []float64{0, 1}, Loads: []float64{0.1}}.Load(0.5)
}

func TestLinkTransferTime(t *testing.T) {
	l := NewLink("test", 0.01, 1e6, nil) // 10ms, 1 MB/s
	got := l.TransferTime(0, 1e6)
	if math.Abs(got-1.01) > 1e-12 {
		t.Errorf("transfer time = %v, want 1.01", got)
	}
	// Zero bytes still pays latency.
	if l.TransferTime(0, 0) != 0.01 {
		t.Error("zero-byte message must pay alpha")
	}
}

func TestTransferTimeMonotoneInSize(t *testing.T) {
	l := NewLink("test", 1e-3, 1e8, ConstantTraffic{Level: 0.5})
	prev := -1.0
	for bytes := 0.0; bytes <= 1e7; bytes += 1e6 {
		tt := l.TransferTime(0, bytes)
		if tt <= prev {
			t.Fatalf("transfer time not strictly increasing at %v bytes", bytes)
		}
		prev = tt
	}
}

func TestEffectiveBandwidthReduced(t *testing.T) {
	free := NewLink("free", 0, 1e8, nil)
	busy := NewLink("busy", 0, 1e8, ConstantTraffic{Level: 0.5})
	if busy.TransferTime(0, 1e6) <= free.TransferTime(0, 1e6) {
		t.Error("background traffic must slow transfers")
	}
	if got, want := busy.EffectiveBeta(0), 2*free.Beta; math.Abs(got-want) > 1e-18 {
		t.Errorf("50%% load should double beta: %v vs %v", got, want)
	}
}

func TestNegativeSizePanics(t *testing.T) {
	l := NewLink("x", 0, 1e6, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	l.TransferTime(0, -1)
}

func TestNewLinkZeroBandwidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewLink("bad", 0, 0, nil)
}

func TestProbeRecoversAlphaBeta(t *testing.T) {
	// Under constant traffic the two-message probe must recover the
	// effective parameters exactly.
	l := NewLink("wan", 0.02, 19.375e6, ConstantTraffic{Level: 0.4})
	aHat, bHat, pt := l.Probe(0)
	if math.Abs(aHat-0.02) > 1e-12 {
		t.Errorf("alpha estimate %v, want 0.02", aHat)
	}
	wantBeta := l.EffectiveBeta(0)
	if math.Abs(bHat-wantBeta)/wantBeta > 1e-12 {
		t.Errorf("beta estimate %v, want %v", bHat, wantBeta)
	}
	if pt <= 0 {
		t.Error("probe must consume time")
	}
}

func TestProbeTracksDynamicTraffic(t *testing.T) {
	// With time-varying traffic the estimate at a busy moment must
	// exceed the estimate at a quiet moment.
	tr := TraceTraffic{Times: []float64{0, 100}, Loads: []float64{0.0, 0.8}}
	l := NewLink("wan", 0.02, 1e7, tr)
	_, quietBeta, _ := l.Probe(0)
	_, busyBeta, _ := l.Probe(200)
	if busyBeta <= quietBeta {
		t.Errorf("probe failed to detect congestion: %v vs %v", quietBeta, busyBeta)
	}
}

func TestFabricRouting(t *testing.T) {
	f := NewFabric(2)
	li0, li1 := OriginInterconnect(), OriginInterconnect()
	wan := MrenWAN(nil)
	f.SetIntra(0, li0)
	f.SetIntra(1, li1)
	f.SetInter(0, 1, wan)
	mustLink := func(a, b int) *Link {
		t.Helper()
		l, err := f.Between(a, b)
		if err != nil {
			t.Fatalf("Between(%d,%d): %v", a, b, err)
		}
		return l
	}
	if mustLink(0, 0) != li0 || mustLink(1, 1) != li1 {
		t.Error("intra routing wrong")
	}
	if mustLink(0, 1) != wan || mustLink(1, 0) != wan {
		t.Error("inter routing must be symmetric")
	}
	if f.NumGroups() != 2 {
		t.Error("NumGroups wrong")
	}
}

func TestFabricMissingLinkErrors(t *testing.T) {
	f := NewFabric(2)
	if _, err := f.Between(0, 1); err == nil {
		t.Error("missing inter link must be an error")
	}
	if _, err := f.Intra(0); err == nil {
		t.Error("missing intra link must be an error")
	}
	if _, err := f.Intra(-1); err == nil {
		t.Error("out-of-range group must be an error")
	}
	if _, err := f.Intra(2); err == nil {
		t.Error("out-of-range group must be an error")
	}
}

func TestFabricEachLinkDeterministic(t *testing.T) {
	f := NewFabric(3)
	for g := 0; g < 3; g++ {
		f.SetIntra(g, OriginInterconnect())
	}
	f.SetInter(0, 1, MrenWAN(nil))
	f.SetInter(1, 2, MrenWAN(nil))
	f.SetInter(0, 2, MrenWAN(nil))
	visit := func() [][2]int {
		var out [][2]int
		f.EachLink(func(a, b int, l *Link) {
			if l == nil {
				t.Fatal("nil link visited")
			}
			out = append(out, [2]int{a, b})
		})
		return out
	}
	first := visit()
	want := [][2]int{{0, 0}, {1, 1}, {2, 2}, {0, 1}, {0, 2}, {1, 2}}
	if len(first) != len(want) {
		t.Fatalf("visited %v, want %v", first, want)
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("visit order %v, want %v", first, want)
		}
	}
	for trial := 0; trial < 5; trial++ {
		again := visit()
		for i := range first {
			if again[i] != first[i] {
				t.Fatal("EachLink order not deterministic")
			}
		}
	}
}

func TestStandardLinks(t *testing.T) {
	lan := GigabitLAN(nil)
	wan := MrenWAN(nil)
	if lan.Alpha >= wan.Alpha {
		t.Error("LAN latency must be below WAN latency")
	}
	if lan.Beta >= wan.Beta {
		t.Error("LAN must be faster per byte than WAN")
	}
	oi := OriginInterconnect()
	if oi.Alpha >= lan.Alpha {
		t.Error("machine interconnect must beat LAN")
	}
}

func TestCompositeTrafficSumsAndClamps(t *testing.T) {
	c := CompositeTraffic{Parts: []TrafficModel{
		ConstantTraffic{Level: 0.3},
		ConstantTraffic{Level: 0.2},
	}}
	if got := c.Load(0); math.Abs(got-0.5) > 1e-15 {
		t.Errorf("composite = %v", got)
	}
	over := CompositeTraffic{Parts: []TrafficModel{
		ConstantTraffic{Level: 0.8},
		ConstantTraffic{Level: 0.8},
	}}
	if got := over.Load(0); got > maxLoadClamp {
		t.Errorf("composite must clamp: %v", got)
	}
	if (CompositeTraffic{}).Load(5) != 0 {
		t.Error("empty composite must be 0")
	}
}
