package netsim

import "fmt"

// Link is a network connection with the paper's conventional model
// Tcomm = α + β·L, where α is the one-way latency (seconds), β the
// transfer cost (seconds per byte, the inverse bandwidth), and L the
// message size in bytes. A shared link's effective β grows when
// background traffic consumes part of the bandwidth.
type Link struct {
	// Name labels the link in traces ("ANL-local", "MREN", ...).
	Name string
	// Alpha is the latency in seconds.
	Alpha float64
	// Beta is the nominal transfer cost in seconds per byte.
	Beta float64
	// Traffic is the background load model; nil means dedicated.
	Traffic TrafficModel
}

// NewLink builds a link from human-friendly units: latency in
// seconds, bandwidth in bytes per second.
func NewLink(name string, latency, bandwidth float64, traffic TrafficModel) *Link {
	if bandwidth <= 0 {
		panic(fmt.Sprintf("netsim.NewLink %s: bandwidth must be positive", name))
	}
	return &Link{Name: name, Alpha: latency, Beta: 1 / bandwidth, Traffic: traffic}
}

// LoadAt returns the background load fraction at time t.
func (l *Link) LoadAt(t float64) float64 {
	if l.Traffic == nil {
		return 0
	}
	return clampLoad(l.Traffic.Load(t))
}

// EffectiveBeta returns the effective transfer cost at time t: the
// nominal β divided by the free fraction of the bandwidth.
func (l *Link) EffectiveBeta(t float64) float64 {
	return l.Beta / (1 - l.LoadAt(t))
}

// TransferTime returns the time to move `bytes` bytes starting at
// time `now`: Tcomm = α + β_eff(now)·L. Zero-byte transfers still pay
// the latency (a message must cross the link).
func (l *Link) TransferTime(now, bytes float64) float64 {
	if bytes < 0 {
		panic("netsim.TransferTime: negative size")
	}
	return l.Alpha + l.EffectiveBeta(now)*bytes
}

// Probe implements the paper's runtime network measurement: "the
// scheme sends two messages between groups, and calculates the network
// performance parameters α and β" (Section 4.2). Two messages of
// different sizes are timed over the link; solving the two linear
// equations yields the current estimates. The returned probeTime is
// the wall time the probe itself consumed (charged to DLB overhead).
func (l *Link) Probe(now float64) (alphaHat, betaHat, probeTime float64) {
	const l1, l2 = 1 << 10, 1 << 16 // 1 KiB and 64 KiB probes: cheap by design
	t1 := l.TransferTime(now, l1)
	t2 := l.TransferTime(now+t1, l2)
	betaHat = (t2 - t1) / (l2 - l1)
	alphaHat = t1 - betaHat*l1
	return alphaHat, betaHat, t1 + t2
}

// Fabric is the interconnect of a distributed system: one intra-group
// link per group and one inter-group link per unordered group pair.
type Fabric struct {
	intra []*Link
	inter map[[2]int]*Link
}

// NewFabric creates a fabric for n groups with no links; callers add
// them with SetIntra and SetInter.
func NewFabric(n int) *Fabric {
	return &Fabric{intra: make([]*Link, n), inter: make(map[[2]int]*Link)}
}

// NumGroups returns the number of groups the fabric was built for.
func (f *Fabric) NumGroups() int { return len(f.intra) }

// SetIntra installs the intra-group link for group g.
func (f *Fabric) SetIntra(g int, l *Link) { f.intra[g] = l }

// SetInter installs the link between groups a and b (order
// irrelevant).
func (f *Fabric) SetInter(a, b int, l *Link) {
	f.inter[groupKey(a, b)] = l
}

// Intra returns group g's internal link.
func (f *Fabric) Intra(g int) *Link {
	l := f.intra[g]
	if l == nil {
		panic(fmt.Sprintf("netsim.Fabric: no intra link for group %d", g))
	}
	return l
}

// Between returns the link connecting groups a and b; for a == b it
// returns the intra-group link.
func (f *Fabric) Between(a, b int) *Link {
	if a == b {
		return f.Intra(a)
	}
	l := f.inter[groupKey(a, b)]
	if l == nil {
		panic(fmt.Sprintf("netsim.Fabric: no link between groups %d and %d", a, b))
	}
	return l
}

func groupKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Standard link constructors for the systems in the paper.

// GigabitLAN returns a fiber Gigabit Ethernet LAN link like the one
// joining the two ANL machines (shared, low latency).
func GigabitLAN(traffic TrafficModel) *Link {
	return NewLink("gige-lan", 500e-6, 125e6, traffic) // 0.5 ms TCP, 1 Gb/s
}

// MrenWAN returns an ATM OC-3 wide-area link like MREN between ANL
// and NCSA (shared, high latency, 155 Mb/s).
func MrenWAN(traffic TrafficModel) *Link {
	return NewLink("mren-oc3", 10e-3, 19.375e6, traffic) // 10 ms, 155 Mb/s
}

// OriginInterconnect returns an SGI Origin2000-class internal
// interconnect (dedicated, sub-microsecond latency).
func OriginInterconnect() *Link {
	return NewLink("origin-ccnuma", 1e-6, 500e6, nil)
}
