package netsim

import (
	"fmt"
	"sort"
)

// FaultModel injects failures and degradation into a link. The
// scripted implementation lives in package fault; the interface is
// satisfied structurally so neither package imports the other.
type FaultModel interface {
	// Down reports whether the link is unusable at time t.
	Down(t float64) bool
	// Degrade returns a multiplier (≥1) on the effective β at time t.
	Degrade(t float64) float64
	// DropProbe reports (and consumes) whether the next probe message
	// at time t is lost.
	DropProbe(t float64) bool
}

// Link is a network connection with the paper's conventional model
// Tcomm = α + β·L, where α is the one-way latency (seconds), β the
// transfer cost (seconds per byte, the inverse bandwidth), and L the
// message size in bytes. A shared link's effective β grows when
// background traffic consumes part of the bandwidth.
type Link struct {
	// Name labels the link in traces ("ANL-local", "MREN", ...).
	Name string
	// Alpha is the latency in seconds.
	Alpha float64
	// Beta is the nominal transfer cost in seconds per byte.
	Beta float64
	// Traffic is the background load model; nil means dedicated.
	Traffic TrafficModel
	// Fault, when non-nil, injects outages, degradation and probe loss
	// (see package fault). nil means the link never fails.
	Fault FaultModel
}

// NewLink builds a link from human-friendly units: latency in
// seconds, bandwidth in bytes per second.
func NewLink(name string, latency, bandwidth float64, traffic TrafficModel) *Link {
	if bandwidth <= 0 {
		panic(fmt.Sprintf("netsim.NewLink %s: bandwidth must be positive", name))
	}
	return &Link{Name: name, Alpha: latency, Beta: 1 / bandwidth, Traffic: traffic}
}

// LoadAt returns the background load fraction at time t.
func (l *Link) LoadAt(t float64) float64 {
	if l.Traffic == nil {
		return 0
	}
	return clampLoad(l.Traffic.Load(t))
}

// Available reports whether the link can carry traffic at time t.
func (l *Link) Available(t float64) bool {
	return l.Fault == nil || !l.Fault.Down(t)
}

// EffectiveBeta returns the effective transfer cost at time t: the
// nominal β divided by the free fraction of the bandwidth, further
// multiplied by any injected degradation.
func (l *Link) EffectiveBeta(t float64) float64 {
	b := l.Beta / (1 - l.LoadAt(t))
	if l.Fault != nil {
		b *= l.Fault.Degrade(t)
	}
	return b
}

// TransferTime returns the time to move `bytes` bytes starting at
// time `now`: Tcomm = α + β_eff(now)·L. Zero-byte transfers still pay
// the latency (a message must cross the link). Availability is the
// caller's concern (see Available); a down link has no finite
// transfer time.
func (l *Link) TransferTime(now, bytes float64) float64 {
	if bytes < 0 {
		panic("netsim.TransferTime: negative size")
	}
	return l.Alpha + l.EffectiveBeta(now)*bytes
}

// Probe implements the paper's runtime network measurement: "the
// scheme sends two messages between groups, and calculates the network
// performance parameters α and β" (Section 4.2). Two messages of
// different sizes are timed over the link; solving the two linear
// equations yields the current estimates. The returned probeTime is
// the wall time the probe itself consumed (charged to DLB overhead).
// Probe is fault-blind: it assumes both messages arrive. TryProbe is
// the fault-aware variant.
func (l *Link) Probe(now float64) (alphaHat, betaHat, probeTime float64) {
	const l1, l2 = 1 << 10, 1 << 16 // 1 KiB and 64 KiB probes: cheap by design
	t1 := l.TransferTime(now, l1)
	t2 := l.TransferTime(now+t1, l2)
	betaHat = (t2 - t1) / (l2 - l1)
	alphaHat = t1 - betaHat*l1
	return alphaHat, betaHat, t1 + t2
}

// TryProbe attempts one two-message probe under the link's fault
// model. It fails when the link is down at either send time or when
// the fault layer drops a probe message; probeTime is then zero (the
// caller's retry policy decides how much wall time the failed attempt
// cost — a timeout is policy, not physics).
func (l *Link) TryProbe(now float64) (alphaHat, betaHat, probeTime float64, err error) {
	const l1, l2 = 1 << 10, 1 << 16
	if !l.Available(now) {
		return 0, 0, 0, fmt.Errorf("netsim: link %s down at t=%.3f", l.Name, now)
	}
	if l.Fault != nil && l.Fault.DropProbe(now) {
		return 0, 0, 0, fmt.Errorf("netsim: link %s lost probe message 1 at t=%.3f", l.Name, now)
	}
	t1 := l.TransferTime(now, l1)
	if !l.Available(now + t1) {
		return 0, 0, 0, fmt.Errorf("netsim: link %s went down mid-probe at t=%.3f", l.Name, now+t1)
	}
	if l.Fault != nil && l.Fault.DropProbe(now+t1) {
		return 0, 0, 0, fmt.Errorf("netsim: link %s lost probe message 2 at t=%.3f", l.Name, now+t1)
	}
	t2 := l.TransferTime(now+t1, l2)
	betaHat = (t2 - t1) / (l2 - l1)
	alphaHat = t1 - betaHat*l1
	return alphaHat, betaHat, t1 + t2, nil
}

// RetryPolicy bounds the probe retry loop: a failed attempt costs
// Timeout seconds, and successive attempts back off exponentially
// from Backoff up to MaxBackoff. The zero value selects the defaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of probe attempts (default 3).
	MaxAttempts int
	// Timeout is the wall time charged per failed attempt (default
	// 0.25 s — the sender waits this long before declaring loss).
	Timeout float64
	// Backoff is the pause before the second attempt; it doubles for
	// every further attempt (default 0.1 s).
	Backoff float64
	// MaxBackoff caps the pause (default 2 s).
	MaxBackoff float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.Timeout <= 0 {
		p.Timeout = 0.25
	}
	if p.Backoff <= 0 {
		p.Backoff = 0.1
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2
	}
	return p
}

// ProbeWithRetry runs TryProbe under the policy: bounded attempts
// with exponential backoff, every failed attempt charged its timeout.
// elapsed is the total wall time consumed (timeouts + backoffs +, on
// success, the successful probe); retryTime is the part wasted on
// failures — the share the DLB charges to Eq. 1's δ overhead term.
// The schedule is deterministic: with a seeded fault model the same
// call sequence yields the same attempts, timing and outcome.
func (l *Link) ProbeWithRetry(now float64, pol RetryPolicy) (alphaHat, betaHat, elapsed, retryTime float64, attempts int, err error) {
	pol = pol.withDefaults()
	backoff := pol.Backoff
	for attempts = 1; attempts <= pol.MaxAttempts; attempts++ {
		a, b, pt, perr := l.TryProbe(now + elapsed)
		if perr == nil {
			return a, b, elapsed + pt, retryTime, attempts, nil
		}
		err = perr
		elapsed += pol.Timeout
		retryTime += pol.Timeout
		if attempts < pol.MaxAttempts {
			if backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
			elapsed += backoff
			retryTime += backoff
			backoff *= 2
		}
	}
	return 0, 0, elapsed, retryTime, pol.MaxAttempts,
		fmt.Errorf("netsim: probe of %s failed after %d attempts: %w", l.Name, pol.MaxAttempts, err)
}

// Fabric is the interconnect of a distributed system: one intra-group
// link per group and one inter-group link per unordered group pair.
type Fabric struct {
	intra []*Link
	inter map[[2]int]*Link
}

// NewFabric creates a fabric for n groups with no links; callers add
// them with SetIntra and SetInter.
func NewFabric(n int) *Fabric {
	return &Fabric{intra: make([]*Link, n), inter: make(map[[2]int]*Link)}
}

// NumGroups returns the number of groups the fabric was built for.
func (f *Fabric) NumGroups() int { return len(f.intra) }

// SetIntra installs the intra-group link for group g.
func (f *Fabric) SetIntra(g int, l *Link) { f.intra[g] = l }

// SetInter installs the link between groups a and b (order
// irrelevant).
func (f *Fabric) SetInter(a, b int, l *Link) {
	f.inter[groupKey(a, b)] = l
}

// Intra returns group g's internal link. A missing link is a legal
// runtime condition (a group may be unwired or out of range), so it
// is reported as an error rather than a panic.
func (f *Fabric) Intra(g int) (*Link, error) {
	if g < 0 || g >= len(f.intra) {
		return nil, fmt.Errorf("netsim.Fabric: group %d out of range [0, %d)", g, len(f.intra))
	}
	l := f.intra[g]
	if l == nil {
		return nil, fmt.Errorf("netsim.Fabric: no intra link for group %d", g)
	}
	return l, nil
}

// Between returns the link connecting groups a and b; for a == b it
// returns the intra-group link. A missing link is reported as an
// error: in a faulty distributed system an absent route means the
// pair simply cannot communicate.
func (f *Fabric) Between(a, b int) (*Link, error) {
	if a == b {
		return f.Intra(a)
	}
	l := f.inter[groupKey(a, b)]
	if l == nil {
		return nil, fmt.Errorf("netsim.Fabric: no link between groups %d and %d", a, b)
	}
	return l, nil
}

// EachLink visits every installed link once, in deterministic order:
// intra links by group, then inter links by sorted group pair. The
// callback receives the group pair the link joins (a == b for intra).
func (f *Fabric) EachLink(fn func(a, b int, l *Link)) {
	for g, l := range f.intra {
		if l != nil {
			fn(g, g, l)
		}
	}
	keys := make([][2]int, 0, len(f.inter))
	for k := range f.inter {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		fn(k[0], k[1], f.inter[k])
	}
}

func groupKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Standard link constructors for the systems in the paper.

// GigabitLAN returns a fiber Gigabit Ethernet LAN link like the one
// joining the two ANL machines (shared, low latency).
func GigabitLAN(traffic TrafficModel) *Link {
	return NewLink("gige-lan", 500e-6, 125e6, traffic) // 0.5 ms TCP, 1 Gb/s
}

// MrenWAN returns an ATM OC-3 wide-area link like MREN between ANL
// and NCSA (shared, high latency, 155 Mb/s).
func MrenWAN(traffic TrafficModel) *Link {
	return NewLink("mren-oc3", 10e-3, 19.375e6, traffic) // 10 ms, 155 Mb/s
}

// OriginInterconnect returns an SGI Origin2000-class internal
// interconnect (dedicated, sub-microsecond latency).
func OriginInterconnect() *Link {
	return NewLink("origin-ccnuma", 1e-6, 500e6, nil)
}
