package netsim

import (
	"math"
	"math/rand"
	"testing"
)

// TestForecastNonnegativeProperty is the property behind the probe-loss
// fallback: every predictor in the NWS family is an average, median or
// last value of its history, so any non-negative measurement history
// must forecast a finite, non-negative value. The cost model (Eq. 1)
// divides by and multiplies these, so a negative or NaN forecast would
// poison Gain/Cost comparisons.
func TestForecastNonnegativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		s := NewSeries(1 + rng.Intn(64))
		n := 1 + rng.Intn(100)
		for i := 0; i < n; i++ {
			// Adversarial histories: zeros, tiny, huge, bursty.
			var v float64
			switch rng.Intn(4) {
			case 0:
				v = 0
			case 1:
				v = rng.Float64() * 1e-12
			case 2:
				v = rng.Float64() * 1e12
			default:
				v = rng.Float64()
			}
			s.Record(v)
			got, ok := s.Forecast()
			if !ok {
				t.Fatalf("trial %d: no forecast after %d samples", trial, s.Len())
			}
			if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
				t.Fatalf("trial %d: forecast %v from non-negative history (predictor %s)",
					trial, got, s.Best())
			}
		}
	}
}

// TestLinkForecastNonnegative mirrors the property at the LinkForecast
// level the DLB cost fallback actually consumes.
func TestLinkForecastNonnegative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		lf := NewLinkForecast()
		if _, _, ok := lf.Forecast(); ok {
			t.Fatal("forecast from empty history must report !ok")
		}
		for i := 0; i < 1+rng.Intn(50); i++ {
			lf.Record(rng.Float64()*1e-3, rng.Float64()*1e-8)
			a, b, ok := lf.Forecast()
			if !ok {
				t.Fatalf("trial %d: no forecast after recording", trial)
			}
			if !(a >= 0) || !(b >= 0) || math.IsInf(a, 0) || math.IsInf(b, 0) {
				t.Fatalf("trial %d: forecast α=%v β=%v", trial, a, b)
			}
		}
	}
}
