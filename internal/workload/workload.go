// Package workload provides the application drivers that make the
// SAMR hierarchy adapt the way the paper's two datasets do:
//
//   - ShockPool3D "solves a purely hyperbolic equation ... simulates
//     the movement of a shock wave (a plane) that is slightly tilted
//     with respect to the edges of the computational domain, so more
//     and more grids are created along the moving shock wave plane."
//
//   - AMR64 "uses hyperbolic (fluid) and elliptic (Poisson's)
//     equations as well as a set of ordinary differential equations
//     for the particle trajectories ... designed to simulate the
//     formation of a cluster of galaxies, so many grids are randomly
//     distributed across the whole computational domain."
//
// A Driver supplies the physics kernels, the initial condition, the
// refinement flags as a function of simulated time, and (for AMR64)
// the particle population whose spatial distribution skews the load.
package workload

import (
	"math"
	"math/rand"

	"samrdlb/internal/cluster"
	"samrdlb/internal/geom"
	"samrdlb/internal/grid"
	"samrdlb/internal/solver"
)

// Driver describes one SAMR application.
type Driver interface {
	// Name identifies the dataset.
	Name() string
	// Fields are the patch fields the application needs.
	Fields() []string
	// Kernels are applied in order on every patch each time step.
	Kernels() []solver.Kernel
	// InitialCondition fills a freshly created patch.
	InitialCondition(p *grid.Patch, dx float64)
	// Flag marks the level-l cells (level index space) that need
	// refinement at simulated time t.
	Flag(level int, t float64, f *cluster.FlagField)
	// Dt0 is the physical time step at level 0.
	Dt0() float64
	// DomainN is the level-0 domain size in cells per side.
	DomainN() int
	// RefFactor is the refinement factor between levels.
	RefFactor() int
	// Particles returns the particle population, or nil.
	Particles() *solver.ParticleSet
}

// FlopsPerCell sums the per-cell cost of the driver's kernels — the
// unit of workload the DLB schemes balance.
func FlopsPerCell(d Driver) float64 {
	var sum float64
	for _, k := range d.Kernels() {
		sum += k.FlopsPerCell()
	}
	return sum
}

// cellCenter returns the physical coordinates (domain [0,1)^3) of the
// centre of cell i on the given level, for a level-0 domain of n0
// cells per side refined by factor ref.
func cellCenter(i geom.Index, level, n0, ref int) [3]float64 {
	dx := 1.0 / (float64(n0) * math.Pow(float64(ref), float64(level)))
	return [3]float64{
		(float64(i[0]) + 0.5) * dx,
		(float64(i[1]) + 0.5) * dx,
		(float64(i[2]) + 0.5) * dx,
	}
}

// ShockPool3D drives refinement along a slightly tilted plane that
// sweeps through the domain.
type ShockPool3D struct {
	// N0 is the level-0 domain size (cells per side); Ref the
	// refinement factor.
	N0, Ref int
	// Normal is the (not necessarily unit) shock normal; the default
	// is slightly tilted off the x axis, per the paper.
	Normal [3]float64
	// Speed is the plane's propagation speed along its normal.
	Speed float64
	// Width is the half-thickness of the refined zone at level 0 in
	// physical units; each finer level refines half the thickness.
	Width float64
	// Start is the plane's offset at t=0.
	Start float64
}

// NewShockPool3D returns the standard configuration on an n0^3 domain.
func NewShockPool3D(n0, ref int) *ShockPool3D {
	return &ShockPool3D{
		N0: n0, Ref: ref,
		Normal: [3]float64{1, 0.15, 0.1}, // slightly tilted plane
		Speed:  0.25,
		Width:  0.08,
		Start:  0.15,
	}
}

// Name implements Driver.
func (s *ShockPool3D) Name() string { return "ShockPool3D" }

// Fields implements Driver.
func (s *ShockPool3D) Fields() []string { return []string{solver.FieldQ} }

// Kernels implements Driver: purely hyperbolic.
func (s *ShockPool3D) Kernels() []solver.Kernel {
	return []solver.Kernel{solver.Advection3D{Vel: s.velocity()}}
}

func (s *ShockPool3D) velocity() [3]float64 {
	n := s.unitNormal()
	return [3]float64{s.Speed * n[0], s.Speed * n[1], s.Speed * n[2]}
}

func (s *ShockPool3D) unitNormal() [3]float64 {
	m := math.Sqrt(s.Normal[0]*s.Normal[0] + s.Normal[1]*s.Normal[1] + s.Normal[2]*s.Normal[2])
	return [3]float64{s.Normal[0] / m, s.Normal[1] / m, s.Normal[2] / m}
}

// planePos returns the plane offset at time t.
func (s *ShockPool3D) planePos(t float64) float64 { return s.Start + s.Speed*t }

// distance returns the signed distance of a physical point from the
// shock plane at time t.
func (s *ShockPool3D) distance(x [3]float64, t float64) float64 {
	n := s.unitNormal()
	return x[0]*n[0] + x[1]*n[1] + x[2]*n[2] - s.planePos(t)
}

// InitialCondition implements Driver: q = 1 behind the shock, 0 ahead.
func (s *ShockPool3D) InitialCondition(p *grid.Patch, dx float64) {
	level := p.Level
	p.FillFunc(solver.FieldQ, func(i geom.Index) float64 {
		if s.distance(cellCenter(i, level, s.N0, s.Ref), 0) < 0 {
			return 1
		}
		return 0
	})
}

// Flag implements Driver: cells within the level's capture width of
// the moving plane are refined. The zone thins with level so each
// finer level tracks the sharp front, and the tilt means the flagged
// set is not axis-aligned — exactly the behaviour that makes the
// workload migrate across the domain (and across groups) over time.
func (s *ShockPool3D) Flag(level int, t float64, f *cluster.FlagField) {
	w := s.Width / math.Pow(2, float64(level))
	dx := 1.0 / (float64(s.N0) * math.Pow(float64(s.Ref), float64(level)))
	n := s.unitNormal()
	pos := s.planePos(t)
	f.SetWhere(func(i geom.Index) bool {
		d := (float64(i[0])+0.5)*dx*n[0] +
			(float64(i[1])+0.5)*dx*n[1] +
			(float64(i[2])+0.5)*dx*n[2] - pos
		return math.Abs(d) < w
	})
}

// Dt0 implements Driver: CFL 0.4 at level 0.
func (s *ShockPool3D) Dt0() float64 {
	dx := 1.0 / float64(s.N0)
	k := solver.Advection3D{Vel: s.velocity()}
	return solver.MaxStableDt(k.MaxSpeed(), dx, 0.4)
}

// DomainN implements Driver.
func (s *ShockPool3D) DomainN() int { return s.N0 }

// RefFactor implements Driver.
func (s *ShockPool3D) RefFactor() int { return s.Ref }

// Particles implements Driver: the shock problem has none.
func (s *ShockPool3D) Particles() *solver.ParticleSet { return nil }

// AMR64 drives refinement around randomly scattered collapsing
// clusters, with a particle population concentrated near the cluster
// centres.
type AMR64 struct {
	N0, Ref int
	// NumClusters scatter over the domain with the given Seed.
	NumClusters int
	Seed        int64
	// BaseRadius is a cluster's refined radius at t=0 (physical
	// units); radii grow as (1 + GrowthRate·t) up to MaxRadius,
	// modelling deepening refinement as the collapse proceeds.
	BaseRadius, GrowthRate, MaxRadius float64
	// NumParticles are distributed around the centres.
	NumParticles int

	centers   [][3]float64
	particles *solver.ParticleSet
}

// NewAMR64 returns the standard configuration on an n0^3 domain.
func NewAMR64(n0, ref int, seed int64) *AMR64 {
	a := &AMR64{
		N0: n0, Ref: ref,
		NumClusters:  8,
		Seed:         seed,
		BaseRadius:   0.06,
		GrowthRate:   0.6,
		MaxRadius:    0.16,
		NumParticles: 2048,
	}
	a.init()
	return a
}

func (a *AMR64) init() {
	rng := rand.New(rand.NewSource(a.Seed))
	a.centers = make([][3]float64, a.NumClusters)
	for i := range a.centers {
		a.centers[i] = [3]float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	if a.NumParticles > 0 {
		ps := &solver.ParticleSet{Centers: a.centers, G: 0.005, Domain: 1}
		for i := 0; i < a.NumParticles; i++ {
			c := a.centers[i%len(a.centers)]
			var pos, vel [3]float64
			for d := 0; d < 3; d++ {
				pos[d] = math.Mod(c[d]+0.08*(rng.Float64()-0.5)+1, 1)
				vel[d] = 0.05 * (rng.Float64() - 0.5)
			}
			ps.Particles = append(ps.Particles, solver.Particle{Pos: pos, Vel: vel, Mass: 1})
		}
		a.particles = ps
	}
}

// Name implements Driver.
func (a *AMR64) Name() string { return "AMR64" }

// Fields implements Driver.
func (a *AMR64) Fields() []string {
	return []string{solver.FieldQ, solver.FieldPhi, solver.FieldRho}
}

// Kernels implements Driver: hyperbolic fluid plus elliptic Poisson.
func (a *AMR64) Kernels() []solver.Kernel {
	return []solver.Kernel{
		solver.Advection3D{Vel: [3]float64{0.1, 0.07, 0.05}},
		solver.GaussSeidel{Sweeps: 2},
	}
}

// Centers exposes the cluster centres (for tests and traces).
func (a *AMR64) Centers() [][3]float64 { return a.centers }

// radius returns a cluster's refinement radius at time t for the
// given level (finer levels capture the denser core).
func (a *AMR64) radius(level int, t float64) float64 {
	r := a.BaseRadius * (1 + a.GrowthRate*t)
	if r > a.MaxRadius {
		r = a.MaxRadius
	}
	return r / math.Pow(2, float64(level))
}

// InitialCondition implements Driver: density blobs at the centres,
// zero potential, uniform tracer.
func (a *AMR64) InitialCondition(p *grid.Patch, dx float64) {
	level := p.Level
	p.FillFunc(solver.FieldRho, func(i geom.Index) float64 {
		x := cellCenter(i, level, a.N0, a.Ref)
		var rho float64
		for _, c := range a.centers {
			d2 := wrapDist2(x, c)
			rho += math.Exp(-d2 / (2 * a.BaseRadius * a.BaseRadius))
		}
		return rho
	})
	p.FillConstant(solver.FieldPhi, 0)
	p.FillConstant(solver.FieldQ, 1)
}

// Flag implements Driver: cells within any cluster's current radius.
func (a *AMR64) Flag(level int, t float64, f *cluster.FlagField) {
	r := a.radius(level, t)
	r2 := r * r
	dx := 1.0 / (float64(a.N0) * math.Pow(float64(a.Ref), float64(level)))
	f.SetWhere(func(i geom.Index) bool {
		x := [3]float64{(float64(i[0]) + 0.5) * dx, (float64(i[1]) + 0.5) * dx, (float64(i[2]) + 0.5) * dx}
		for _, c := range a.centers {
			if wrapDist2(x, c) < r2 {
				return true
			}
		}
		return false
	})
}

// Dt0 implements Driver.
func (a *AMR64) Dt0() float64 {
	dx := 1.0 / float64(a.N0)
	k := solver.Advection3D{Vel: [3]float64{0.1, 0.07, 0.05}}
	return solver.MaxStableDt(k.MaxSpeed(), dx, 0.4)
}

// DomainN implements Driver.
func (a *AMR64) DomainN() int { return a.N0 }

// RefFactor implements Driver.
func (a *AMR64) RefFactor() int { return a.Ref }

// Particles implements Driver.
func (a *AMR64) Particles() *solver.ParticleSet { return a.particles }

// wrapDist2 is the squared distance on the unit periodic torus.
func wrapDist2(a, b [3]float64) float64 {
	var s float64
	for d := 0; d < 3; d++ {
		v := math.Abs(a[d] - b[d])
		if v > 0.5 {
			v = 1 - v
		}
		s += v * v
	}
	return s
}

// Uniform is a no-refinement driver (unigrid), used by tests and as
// the sequential baseline sanity check.
type Uniform struct{ N0, Ref int }

// Name implements Driver.
func (u *Uniform) Name() string { return "uniform" }

// Fields implements Driver.
func (u *Uniform) Fields() []string { return []string{solver.FieldQ} }

// Kernels implements Driver.
func (u *Uniform) Kernels() []solver.Kernel {
	return []solver.Kernel{solver.Advection3D{Vel: [3]float64{0.2, 0, 0}}}
}

// InitialCondition implements Driver.
func (u *Uniform) InitialCondition(p *grid.Patch, dx float64) {
	p.FillConstant(solver.FieldQ, 1)
}

// Flag implements Driver: nothing.
func (u *Uniform) Flag(int, float64, *cluster.FlagField) {}

// Dt0 implements Driver.
func (u *Uniform) Dt0() float64 { return 0.4 / (0.2 * float64(u.N0)) }

// DomainN implements Driver.
func (u *Uniform) DomainN() int { return u.N0 }

// RefFactor implements Driver.
func (u *Uniform) RefFactor() int { return u.Ref }

// Particles implements Driver.
func (u *Uniform) Particles() *solver.ParticleSet { return nil }

// StaticBlob refines a fixed central region at every level — the
// shape of the paper's Figure 1 hierarchy. Used by tests and the
// hierarchy-dump tool.
type StaticBlob struct {
	N0, Ref int
	// Center and Radius define the refined ball (physical units).
	Center [3]float64
	Radius float64
}

// NewStaticBlob returns a blob centred in the domain.
func NewStaticBlob(n0, ref int) *StaticBlob {
	return &StaticBlob{N0: n0, Ref: ref, Center: [3]float64{0.5, 0.5, 0.5}, Radius: 0.2}
}

// Name implements Driver.
func (b *StaticBlob) Name() string { return "static-blob" }

// Fields implements Driver.
func (b *StaticBlob) Fields() []string { return []string{solver.FieldQ} }

// Kernels implements Driver.
func (b *StaticBlob) Kernels() []solver.Kernel {
	return []solver.Kernel{solver.Advection3D{Vel: [3]float64{0.1, 0.1, 0}}}
}

// InitialCondition implements Driver.
func (b *StaticBlob) InitialCondition(p *grid.Patch, dx float64) {
	level := p.Level
	p.FillFunc(solver.FieldQ, func(i geom.Index) float64 {
		x := cellCenter(i, level, b.N0, b.Ref)
		if wrapDist2(x, b.Center) < b.Radius*b.Radius {
			return 1
		}
		return 0
	})
}

// Flag implements Driver: a ball whose radius halves per level.
func (b *StaticBlob) Flag(level int, t float64, f *cluster.FlagField) {
	r := b.Radius / math.Pow(2, float64(level))
	r2 := r * r
	dx := 1.0 / (float64(b.N0) * math.Pow(float64(b.Ref), float64(level)))
	f.SetWhere(func(i geom.Index) bool {
		x := [3]float64{(float64(i[0]) + 0.5) * dx, (float64(i[1]) + 0.5) * dx, (float64(i[2]) + 0.5) * dx}
		return wrapDist2(x, b.Center) < r2
	})
}

// Dt0 implements Driver.
func (b *StaticBlob) Dt0() float64 { return 0.4 / (0.2 * float64(b.N0)) }

// DomainN implements Driver.
func (b *StaticBlob) DomainN() int { return b.N0 }

// RefFactor implements Driver.
func (b *StaticBlob) RefFactor() int { return b.Ref }

// Particles implements Driver.
func (b *StaticBlob) Particles() *solver.ParticleSet { return nil }
