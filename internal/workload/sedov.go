package workload

import (
	"math"

	"samrdlb/internal/cluster"
	"samrdlb/internal/geom"
	"samrdlb/internal/grid"
	"samrdlb/internal/solver"
)

// SedovBlast is a third dataset beyond the paper's two: a point
// explosion whose shock front expands as the Sedov–Taylor similarity
// solution R(t) ∝ t^(2/5). Unlike ShockPool3D's travelling plane
// (which loads one group, then the other) the blast front loads both
// groups symmetrically while its *area* — and hence the refined cell
// count — grows quadratically, stressing the DLB's reaction to total
// load growth rather than load motion. The hyperbolic field is
// advanced with the nonlinear Godunov Burgers kernel, which really
// does steepen the initial pulse into a front.
type SedovBlast struct {
	N0, Ref int
	// Center is the explosion origin (physical units).
	Center [3]float64
	// R0 and Rate set the front radius R(t) = R0 + Rate·t^(2/5).
	R0, Rate float64
	// Width is the refined shell half-thickness at level 0; finer
	// levels refine half the thickness each.
	Width float64
	// Amplitude is the initial pulse height.
	Amplitude float64
}

// NewSedovBlast returns the standard configuration on an n0^3 domain.
func NewSedovBlast(n0, ref int) *SedovBlast {
	return &SedovBlast{
		N0: n0, Ref: ref,
		Center:    [3]float64{0.5, 0.5, 0.5},
		R0:        0.06,
		Rate:      0.45,
		Width:     0.07,
		Amplitude: 0.8,
	}
}

// Name implements Driver.
func (s *SedovBlast) Name() string { return "SedovBlast" }

// Fields implements Driver.
func (s *SedovBlast) Fields() []string { return []string{solver.FieldQ} }

// Kernels implements Driver.
func (s *SedovBlast) Kernels() []solver.Kernel {
	return []solver.Kernel{solver.Burgers3D{}}
}

// Radius returns the front radius at time t.
func (s *SedovBlast) Radius(t float64) float64 {
	if t < 0 {
		t = 0
	}
	return s.R0 + s.Rate*math.Pow(t, 0.4)
}

// InitialCondition implements Driver: a Gaussian pulse at the centre.
func (s *SedovBlast) InitialCondition(p *grid.Patch, dx float64) {
	level := p.Level
	w2 := s.R0 * s.R0
	p.FillFunc(solver.FieldQ, func(i geom.Index) float64 {
		x := cellCenter(i, level, s.N0, s.Ref)
		return s.Amplitude * math.Exp(-dist2c(x, s.Center)/(2*w2))
	})
}

// Flag implements Driver: a spherical shell around the current front.
func (s *SedovBlast) Flag(level int, t float64, f *cluster.FlagField) {
	r := s.Radius(t)
	w := s.Width / math.Pow(2, float64(level))
	dx := 1.0 / (float64(s.N0) * math.Pow(float64(s.Ref), float64(level)))
	f.SetWhere(func(i geom.Index) bool {
		x := [3]float64{(float64(i[0]) + 0.5) * dx, (float64(i[1]) + 0.5) * dx, (float64(i[2]) + 0.5) * dx}
		d := math.Sqrt(dist2c(x, s.Center)) - r
		return math.Abs(d) < w
	})
}

// Dt0 implements Driver: CFL against the pulse amplitude.
func (s *SedovBlast) Dt0() float64 {
	dx := 1.0 / float64(s.N0)
	return solver.MaxStableDt((solver.Burgers3D{}).MaxSpeed(s.Amplitude), dx, 0.4)
}

// DomainN implements Driver.
func (s *SedovBlast) DomainN() int { return s.N0 }

// RefFactor implements Driver.
func (s *SedovBlast) RefFactor() int { return s.Ref }

// Particles implements Driver.
func (s *SedovBlast) Particles() *solver.ParticleSet { return nil }

// dist2c is the plain (non-periodic) squared distance.
func dist2c(a, b [3]float64) float64 {
	var s float64
	for d := 0; d < 3; d++ {
		v := a[d] - b[d]
		s += v * v
	}
	return s
}
