package workload

import (
	"math"
	"testing"

	"samrdlb/internal/cluster"
	"samrdlb/internal/geom"
	"samrdlb/internal/grid"
	"samrdlb/internal/solver"
)

func flagCount(d Driver, level int, t float64, box geom.Box) int {
	f := cluster.NewFlagField(box)
	d.Flag(level, t, f)
	return f.Count()
}

func TestShockPoolPlaneMoves(t *testing.T) {
	s := NewShockPool3D(16, 2)
	dom := geom.UnitCube(16)
	f0 := cluster.NewFlagField(dom)
	s.Flag(0, 0, f0)
	f1 := cluster.NewFlagField(dom)
	s.Flag(0, 1.0, f1)
	if f0.Count() == 0 || f1.Count() == 0 {
		t.Fatal("plane should flag cells at both times")
	}
	// The flagged sets must differ (the plane moved).
	same := true
	dom.ForEach(func(i geom.Index) {
		if f0.Get(i) != f1.Get(i) {
			same = false
		}
	})
	if same {
		t.Error("flags did not move with the shock plane")
	}
	// Flagged centroid must advance along +x (dominant normal).
	if cx(f0) >= cx(f1) {
		t.Errorf("plane centroid did not advance: %v -> %v", cx(f0), cx(f1))
	}
}

func cx(f *cluster.FlagField) float64 {
	var sum float64
	n := 0
	f.Box.ForEach(func(i geom.Index) {
		if f.Get(i) {
			sum += float64(i[0])
			n++
		}
	})
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}

func TestShockPoolTiltedPlane(t *testing.T) {
	// A tilted plane flags different x positions at different y —
	// the paper's "slightly tilted with respect to the edges".
	s := NewShockPool3D(32, 2)
	f := cluster.NewFlagField(geom.UnitCube(32))
	s.Flag(0, 0.5, f)
	minX, maxX := 1000, -1000
	f.Box.ForEach(func(i geom.Index) {
		if f.Get(i) {
			if i[0] < minX {
				minX = i[0]
			}
			if i[0] > maxX {
				maxX = i[0]
			}
		}
	})
	if maxX-minX < 3 {
		t.Errorf("tilt too small to be visible: x range [%d,%d]", minX, maxX)
	}
}

func TestShockPoolFinerLevelsThinner(t *testing.T) {
	s := NewShockPool3D(16, 2)
	c0 := flagCount(s, 0, 0.5, geom.UnitCube(16))
	c1 := flagCount(s, 1, 0.5, geom.UnitCube(32))
	if c0 == 0 || c1 == 0 {
		t.Fatal("both levels should flag")
	}
	// Level 1 has 8x the cells but half the capture width; its flag
	// count must be well under 8x level 0's.
	if float64(c1) >= 6*float64(c0) {
		t.Errorf("fine level not thinner: %d vs %d", c0, c1)
	}
}

func TestShockPoolInitialConditionStep(t *testing.T) {
	s := NewShockPool3D(16, 2)
	p := grid.NewPatch(geom.UnitCube(16), 0, 1, s.Fields()...)
	s.InitialCondition(p, 1.0/16)
	// Behind the plane q=1, ahead q=0.
	if got := p.At(solver.FieldQ, geom.Index{0, 0, 0}); got != 1 {
		t.Errorf("behind shock q = %v", got)
	}
	if got := p.At(solver.FieldQ, geom.Index{15, 15, 15}); got != 0 {
		t.Errorf("ahead of shock q = %v", got)
	}
}

func TestShockPoolMetadata(t *testing.T) {
	s := NewShockPool3D(16, 2)
	if s.Name() != "ShockPool3D" || len(s.Kernels()) != 1 || s.Particles() != nil {
		t.Error("metadata wrong")
	}
	if s.Dt0() <= 0 || math.IsInf(s.Dt0(), 0) {
		t.Errorf("Dt0 = %v", s.Dt0())
	}
	if FlopsPerCell(s) != 18 {
		t.Errorf("FlopsPerCell = %v", FlopsPerCell(s))
	}
}

func TestAMR64ClustersScattered(t *testing.T) {
	a := NewAMR64(32, 2, 7)
	if len(a.Centers()) != 8 {
		t.Fatalf("centers = %d", len(a.Centers()))
	}
	f := cluster.NewFlagField(geom.UnitCube(32))
	a.Flag(0, 0, f)
	if f.Count() == 0 {
		t.Fatal("no flags at t=0")
	}
	// Flags must be spread: bounding box of flags should cover most of
	// the domain (clusters are random across the whole volume).
	bb := f.BoundingBox(f.Box)
	if bb.NumCells() < 32*32*32/4 {
		t.Errorf("clusters not scattered: bounding %v", bb)
	}
}

func TestAMR64RefinementGrows(t *testing.T) {
	a := NewAMR64(32, 2, 7)
	early := flagCount(a, 0, 0, geom.UnitCube(32))
	late := flagCount(a, 0, 0.4, geom.UnitCube(32))
	if late <= early {
		t.Errorf("refined region should grow with time: %d -> %d", early, late)
	}
	// And saturate at MaxRadius.
	cap1 := flagCount(a, 0, 100, geom.UnitCube(32))
	cap2 := flagCount(a, 0, 200, geom.UnitCube(32))
	if cap1 != cap2 {
		t.Errorf("radius should saturate: %d vs %d", cap1, cap2)
	}
}

func TestAMR64Determinism(t *testing.T) {
	a1 := NewAMR64(32, 2, 11)
	a2 := NewAMR64(32, 2, 11)
	for i, c := range a1.Centers() {
		if c != a2.Centers()[i] {
			t.Fatal("same seed must give same centers")
		}
	}
	b := NewAMR64(32, 2, 12)
	diff := false
	for i, c := range a1.Centers() {
		if c != b.Centers()[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should give different centers")
	}
}

func TestAMR64ParticlesNearCenters(t *testing.T) {
	a := NewAMR64(32, 2, 7)
	ps := a.Particles()
	if ps == nil || len(ps.Particles) != a.NumParticles {
		t.Fatal("particle population missing")
	}
	// Most particles start within 0.1 of some centre.
	near := 0
	for _, p := range ps.Particles {
		for _, c := range a.Centers() {
			if wrapDist2(p.Pos, c) < 0.1*0.1 {
				near++
				break
			}
		}
	}
	if float64(near) < 0.9*float64(len(ps.Particles)) {
		t.Errorf("only %d/%d particles near centres", near, len(ps.Particles))
	}
}

func TestAMR64FieldsAndKernels(t *testing.T) {
	a := NewAMR64(16, 2, 1)
	if len(a.Fields()) != 3 {
		t.Error("AMR64 needs q, phi, rho")
	}
	if len(a.Kernels()) != 2 {
		t.Error("AMR64 couples hyperbolic and elliptic kernels")
	}
	p := grid.NewPatch(geom.UnitCube(16), 0, 1, a.Fields()...)
	a.InitialCondition(p, 1.0/16)
	if p.Sum(solver.FieldRho) <= 0 {
		t.Error("density blobs missing")
	}
}

func TestUniformNeverFlags(t *testing.T) {
	u := &Uniform{N0: 8, Ref: 2}
	if flagCount(u, 0, 5, geom.UnitCube(8)) != 0 {
		t.Error("uniform driver must not flag")
	}
	if u.Dt0() <= 0 || u.Particles() != nil || u.Name() != "uniform" {
		t.Error("uniform metadata wrong")
	}
	p := grid.NewPatch(geom.UnitCube(4), 0, 1, u.Fields()...)
	u.InitialCondition(p, 0.25)
	if p.Sum(solver.FieldQ) != 64 {
		t.Error("uniform IC wrong")
	}
}

func TestStaticBlobCenteredAndStable(t *testing.T) {
	b := NewStaticBlob(16, 2)
	c1 := flagCount(b, 0, 0, geom.UnitCube(16))
	c2 := flagCount(b, 0, 9.5, geom.UnitCube(16))
	if c1 == 0 || c1 != c2 {
		t.Errorf("static blob must not change with time: %d vs %d", c1, c2)
	}
	f := cluster.NewFlagField(geom.UnitCube(16))
	b.Flag(0, 0, f)
	if !f.Get(geom.Index{8, 8, 8}) {
		t.Error("domain centre must be flagged")
	}
	if f.Get(geom.Index{0, 0, 0}) {
		t.Error("corner must not be flagged")
	}
	p := grid.NewPatch(geom.UnitCube(16), 0, 1, b.Fields()...)
	b.InitialCondition(p, 1.0/16)
	if p.At(solver.FieldQ, geom.Index{8, 8, 8}) != 1 {
		t.Error("blob IC wrong")
	}
}

func TestCellCenter(t *testing.T) {
	// Level 0, 8 cells: cell 0 centre at 1/16.
	x := cellCenter(geom.Index{0, 0, 0}, 0, 8, 2)
	if math.Abs(x[0]-1.0/16) > 1e-15 {
		t.Errorf("cellCenter = %v", x)
	}
	// Level 1 halves dx.
	x1 := cellCenter(geom.Index{0, 0, 0}, 1, 8, 2)
	if math.Abs(x1[0]-1.0/32) > 1e-15 {
		t.Errorf("level-1 cellCenter = %v", x1)
	}
}

func TestWrapDist2(t *testing.T) {
	a := [3]float64{0.05, 0.5, 0.5}
	b := [3]float64{0.95, 0.5, 0.5}
	if d := wrapDist2(a, b); math.Abs(d-0.01) > 1e-12 {
		t.Errorf("wrap distance = %v, want 0.01", d)
	}
}

func TestSedovFrontExpands(t *testing.T) {
	s := NewSedovBlast(32, 2)
	early := flagCount(s, 0, 0.05, geom.UnitCube(32))
	late := flagCount(s, 0, 0.8, geom.UnitCube(32))
	if early == 0 || late == 0 {
		t.Fatal("front must flag at both times")
	}
	// The shell area grows with the radius.
	if late <= early {
		t.Errorf("front should grow: %d -> %d flags", early, late)
	}
	if s.Radius(0.5) <= s.Radius(0.1) {
		t.Error("radius not growing")
	}
}

func TestSedovSymmetricAboutCenter(t *testing.T) {
	s := NewSedovBlast(16, 2)
	f := cluster.NewFlagField(geom.UnitCube(16))
	s.Flag(0, 0.3, f)
	// Mirror symmetry through the centre plane.
	mismatches := 0
	geom.UnitCube(16).ForEach(func(i geom.Index) {
		m := geom.Index{15 - i[0], i[1], i[2]}
		if f.Get(i) != f.Get(m) {
			mismatches++
		}
	})
	if mismatches != 0 {
		t.Errorf("front not mirror-symmetric: %d mismatches", mismatches)
	}
}

func TestSedovMetadataAndIC(t *testing.T) {
	s := NewSedovBlast(16, 2)
	if s.Name() != "SedovBlast" || s.Particles() != nil || s.DomainN() != 16 || s.RefFactor() != 2 {
		t.Error("metadata wrong")
	}
	if len(s.Kernels()) != 1 || s.Kernels()[0].Name() != "burgers3d-godunov" {
		t.Error("Sedov should use the nonlinear Burgers kernel")
	}
	p := grid.NewPatch(geom.UnitCube(16), 0, 1, s.Fields()...)
	s.InitialCondition(p, 1.0/16)
	// Peak at the centre, decaying outward.
	if p.At(solver.FieldQ, geom.Index{8, 8, 8}) <= p.At(solver.FieldQ, geom.Index{0, 0, 0}) {
		t.Error("pulse must peak at the centre")
	}
	if s.Dt0() <= 0 || math.IsInf(s.Dt0(), 0) {
		t.Errorf("Dt0 = %v", s.Dt0())
	}
}
