package scenario

import (
	"flag"
	"fmt"
	"testing"

	"samrdlb/internal/dlb"
)

// -policy-scenarios=N turns on the differential policy soak: N
// generated scenario envelopes, each executed once per registered
// balancer policy under the policy-scoped invariant oracle (CI runs
// 200 under -race). The differential angle: every policy faces the
// exact same systems, workloads, fault schedules and resume cuts, so a
// violation isolates the policy rather than the envelope.
var policyScenarios = flag.Int("policy-scenarios", 0,
	"number of generated scenarios for TestDifferentialPolicySoak, each run under every policy (0 = skip)")

// TestDifferentialPolicySweep is the always-on slice: a handful of
// generated envelopes crossed with every registered policy must hold
// each policy's scoped invariants.
func TestDifferentialPolicySweep(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		for _, policy := range dlb.PolicyNames() {
			seed, policy := seed, policy
			t.Run(fmt.Sprintf("seed%d/%s", seed, policy), func(t *testing.T) {
				t.Parallel()
				sc := Generate(seed)
				sc.Scheme = policy
				sc.Normalize()
				if out := sc.Execute(); out.Failed() {
					failNow(t, sc, out)
				}
			})
		}
	}
}

// TestDifferentialPolicySoak runs -policy-scenarios=N envelopes × all
// policies; failures shrink to a minimal replayable reproducer and
// land in $SAMR_REPRO_DIR for artifact upload.
func TestDifferentialPolicySoak(t *testing.T) {
	n := *policyScenarios
	if n <= 0 {
		t.Skip("policy soak disabled; run with -policy-scenarios=N")
	}
	for i := 0; i < n; i++ {
		seed := int64(20000 + i)
		for _, policy := range dlb.PolicyNames() {
			seed, policy := seed, policy
			t.Run(fmt.Sprintf("seed%d/%s", seed, policy), func(t *testing.T) {
				t.Parallel()
				sc := soakGenerate(t, seed)
				sc.Scheme = policy
				sc.Normalize()
				if out := sc.Execute(); out.Failed() {
					failNow(t, sc, out)
				}
			})
		}
	}
}
