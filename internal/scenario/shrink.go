package scenario

import (
	"reflect"

	"samrdlb/internal/fault"
)

// DefaultShrinkBudget bounds how many candidate executions Shrink may
// spend when the caller passes budget <= 0.
const DefaultShrinkBudget = 200

// Shrink greedily minimises a failing scenario: it applies reduction
// passes (drop the resume cut, drop faults, fewer steps, fewer
// groups/processors, shallower hierarchy, smaller domain, simpler
// options) until none still reproduces the failure, and returns the
// smallest reproducer found. failing must return true when the
// candidate still fails; budget caps how many candidates are tried.
// Seed and InjectBug are preserved so the returned scenario replays
// the same defect.
func Shrink(sc Scenario, failing func(Scenario) bool, budget int) Scenario {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	cur := clone(sc)
	for {
		improved := false
		for _, cand := range candidates(cur) {
			cand.Normalize()
			if reflect.DeepEqual(cand, cur) {
				continue
			}
			if budget <= 0 {
				return cur
			}
			budget--
			if failing(cand) {
				cur = cand
				improved = true
				break // restart the pass list from the smaller scenario
			}
		}
		if !improved {
			return cur
		}
	}
}

// candidates yields one-step reductions of s, most aggressive first
// so the greedy loop takes big bites before nibbling.
func candidates(s Scenario) []Scenario {
	var out []Scenario
	mut := func(f func(*Scenario)) {
		c := clone(s)
		f(&c)
		out = append(out, c)
	}
	if s.ResumeCut >= 0 {
		mut(func(c *Scenario) { c.ResumeCut = -1 })
	}
	if len(s.Faults) > 0 {
		mut(func(c *Scenario) { c.Faults = nil })
		for i := range s.Faults {
			i := i
			mut(func(c *Scenario) { c.Faults = append(c.Faults[:i], c.Faults[i+1:]...) })
		}
	}
	if s.Steps > 1 {
		mut(func(c *Scenario) { c.Steps = 1 })
		if s.Steps > 2 {
			mut(func(c *Scenario) { c.Steps = s.Steps / 2 })
		}
		mut(func(c *Scenario) { c.Steps = s.Steps - 1 })
	}
	if len(s.Groups) > 1 {
		mut(func(c *Scenario) { c.Groups = c.Groups[:len(c.Groups)-1] })
	}
	for i, g := range s.Groups {
		i, g := i, g
		if g.Procs > 1 {
			mut(func(c *Scenario) { c.Groups[i].Procs = 1 })
			if g.Procs > 2 {
				mut(func(c *Scenario) { c.Groups[i].Procs = g.Procs / 2 })
			}
			mut(func(c *Scenario) { c.Groups[i].Procs = g.Procs - 1 })
		}
		if g.Perf != 1 {
			mut(func(c *Scenario) { c.Groups[i].Perf = 1 })
		}
	}
	if s.MaxLevel > 1 {
		mut(func(c *Scenario) { c.MaxLevel = 1 })
	}
	if s.DomainN != domainSizes[0] {
		mut(func(c *Scenario) { c.DomainN = domainSizes[0] })
	}
	if s.GridsPerProc > 1 {
		mut(func(c *Scenario) { c.GridsPerProc = 1 })
	}
	if s.RegridInterval > 1 {
		mut(func(c *Scenario) { c.RegridInterval = 1 })
	}
	if s.WithData {
		mut(func(c *Scenario) { c.WithData = false })
	}
	if s.UseForecast {
		mut(func(c *Scenario) { c.UseForecast = false })
	}
	if s.Traffic != 0 {
		mut(func(c *Scenario) { c.Traffic = 0 })
	}
	if s.Wan {
		mut(func(c *Scenario) { c.Wan = false })
	}
	if s.Dataset != "ShockPool3D" {
		mut(func(c *Scenario) { c.Dataset = "ShockPool3D" })
	}
	if s.Gamma != 0 {
		mut(func(c *Scenario) { c.Gamma = 0 })
	}
	if s.Eps != 0 {
		mut(func(c *Scenario) { c.Eps = 0 })
	}
	if s.CkptInterval > 1 {
		mut(func(c *Scenario) { c.CkptInterval = 1 })
	}
	return out
}

// clone deep-copies the scenario's slices so candidate mutations
// never alias the original.
func clone(s Scenario) Scenario {
	c := s
	c.Groups = append([]GroupDef(nil), s.Groups...)
	if s.Faults != nil {
		c.Faults = append([]fault.Event(nil), s.Faults...)
	}
	return c
}
