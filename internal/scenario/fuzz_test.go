package scenario

import "testing"

// FuzzScenario feeds arbitrary bytes through FromBytes into the
// executor: whatever configuration the fuzzer reaches, the engine
// must neither panic nor violate a paper invariant. CI runs this for
// a short smoke window; `go test -fuzz=FuzzScenario ./internal/scenario`
// runs it open-ended.
func FuzzScenario(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{9, 0, 0, 0, 0, 0, 0, 0, 3, 7, 11, 42})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := FromBytes(data)
		if out := sc.Execute(); out.Failed() {
			t.Fatalf("%s\nreplay: %s", out.Summary(), ReplayCommand(sc))
		}
	})
}
