package scenario

import (
	"testing"

	"samrdlb/internal/fault"
)

// FuzzScenario feeds arbitrary bytes through FromBytes into the
// executor: whatever configuration the fuzzer reaches, the engine
// must neither panic nor violate a paper invariant. CI runs this for
// a short smoke window; `go test -fuzz=FuzzScenario ./internal/scenario`
// runs it open-ended.
func FuzzScenario(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{9, 0, 0, 0, 0, 0, 0, 0, 3, 7, 11, 42})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	// Fail → rejoin → fail-again on one processor (byte 25 hits the
	// churn-injection case of FromBytes).
	f.Add([]byte{5, 0, 0, 0, 0, 0, 0, 0, 25})
	// Chaos kill point (byte 26 hits the worker-kill injection case).
	f.Add([]byte{5, 0, 0, 0, 0, 0, 0, 0, 26})
	// Policy overrides under the churn schedule: byte 13 selects
	// diffusion, byte 69 knapsack (quotient indexes the sorted
	// registry), so the fuzzer starts from non-paper policies exercised
	// through faults and rejoins.
	f.Add([]byte{5, 0, 0, 0, 0, 0, 0, 0, 25, 13})
	f.Add([]byte{5, 0, 0, 0, 0, 0, 0, 0, 25, 69})
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := FromBytes(data)
		if out := sc.Execute(); out.Failed() {
			t.Fatalf("%s\nreplay: %s", out.Summary(), ReplayCommand(sc))
		}
	})
}

// TestFuzzCorpusChurnSeed pins the corpus entry that exercises the
// fail → rejoin → fail-again schedule: both bounded outages must
// survive normalisation (so the entry really stresses re-admission)
// and the scenario must execute with zero invariant violations.
func TestFuzzCorpusChurnSeed(t *testing.T) {
	sc := FromBytes([]byte{5, 0, 0, 0, 0, 0, 0, 0, 25})
	bounded := 0
	for _, e := range sc.Faults {
		if e.Kind == fault.ProcFailure && e.End > e.Start {
			bounded++
		}
	}
	if bounded != 2 {
		t.Fatalf("churn corpus entry lost its schedule after Normalize: %+v", sc.Faults)
	}
	if out := sc.Execute(); out.Failed() {
		failNow(t, sc, out)
	}
}

// TestFuzzCorpusPolicyBytes pins the policy-override corpus entries:
// the policy byte must actually select the intended non-paper policy
// (through the sorted registry), the churn schedule must survive
// alongside it, and the combination must execute clean under the
// policy-scoped oracle.
func TestFuzzCorpusPolicyBytes(t *testing.T) {
	cases := []struct {
		b      byte
		scheme string
	}{
		{13, "diffusion"},
		{69, "knapsack"},
	}
	for _, c := range cases {
		sc := FromBytes([]byte{5, 0, 0, 0, 0, 0, 0, 0, 25, c.b})
		if sc.Scheme != c.scheme {
			t.Fatalf("policy byte %d selected %q, want %q", c.b, sc.Scheme, c.scheme)
		}
		bounded := 0
		for _, e := range sc.Faults {
			if e.Kind == fault.ProcFailure && e.End > e.Start {
				bounded++
			}
		}
		if bounded != 2 {
			t.Fatalf("%s: churn schedule lost after Normalize: %+v", c.scheme, sc.Faults)
		}
		if out := sc.Execute(); out.Failed() {
			failNow(t, sc, out)
		}
	}
}

// TestFuzzCorpusWorkerKillSeed pins the worker-kill corpus entry: the
// injected kill point must survive normalisation and the key=value
// round-trip (a supervised replay needs the exact schedule), while the
// in-process executor must treat it as inert.
func TestFuzzCorpusWorkerKillSeed(t *testing.T) {
	sc := FromBytes([]byte{5, 0, 0, 0, 0, 0, 0, 0, 26})
	kills := 0
	for _, e := range sc.Faults {
		if e.Kind == fault.WorkerKill {
			kills++
		}
	}
	if kills == 0 {
		t.Fatalf("worker-kill corpus entry lost its kill point after Normalize: %+v", sc.Faults)
	}
	rt, err := Parse(sc.Encode())
	if err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	rtKills := 0
	for _, e := range rt.Faults {
		if e.Kind == fault.WorkerKill {
			rtKills++
		}
	}
	if rtKills != kills {
		t.Fatalf("kill points lost in encode/parse round-trip: %d -> %d", kills, rtKills)
	}
	if out := sc.Execute(); out.Failed() {
		failNow(t, sc, out)
	}
}
