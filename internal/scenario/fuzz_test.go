package scenario

import (
	"testing"

	"samrdlb/internal/fault"
)

// FuzzScenario feeds arbitrary bytes through FromBytes into the
// executor: whatever configuration the fuzzer reaches, the engine
// must neither panic nor violate a paper invariant. CI runs this for
// a short smoke window; `go test -fuzz=FuzzScenario ./internal/scenario`
// runs it open-ended.
func FuzzScenario(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{9, 0, 0, 0, 0, 0, 0, 0, 3, 7, 11, 42})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	// Fail → rejoin → fail-again on one processor (byte 24 hits the
	// churn-injection case of FromBytes).
	f.Add([]byte{5, 0, 0, 0, 0, 0, 0, 0, 24})
	// Chaos kill point (byte 25 hits the worker-kill injection case).
	f.Add([]byte{5, 0, 0, 0, 0, 0, 0, 0, 25})
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := FromBytes(data)
		if out := sc.Execute(); out.Failed() {
			t.Fatalf("%s\nreplay: %s", out.Summary(), ReplayCommand(sc))
		}
	})
}

// TestFuzzCorpusChurnSeed pins the corpus entry that exercises the
// fail → rejoin → fail-again schedule: both bounded outages must
// survive normalisation (so the entry really stresses re-admission)
// and the scenario must execute with zero invariant violations.
func TestFuzzCorpusChurnSeed(t *testing.T) {
	sc := FromBytes([]byte{5, 0, 0, 0, 0, 0, 0, 0, 24})
	bounded := 0
	for _, e := range sc.Faults {
		if e.Kind == fault.ProcFailure && e.End > e.Start {
			bounded++
		}
	}
	if bounded != 2 {
		t.Fatalf("churn corpus entry lost its schedule after Normalize: %+v", sc.Faults)
	}
	if out := sc.Execute(); out.Failed() {
		failNow(t, sc, out)
	}
}

// TestFuzzCorpusWorkerKillSeed pins the worker-kill corpus entry: the
// injected kill point must survive normalisation and the key=value
// round-trip (a supervised replay needs the exact schedule), while the
// in-process executor must treat it as inert.
func TestFuzzCorpusWorkerKillSeed(t *testing.T) {
	sc := FromBytes([]byte{5, 0, 0, 0, 0, 0, 0, 0, 25})
	kills := 0
	for _, e := range sc.Faults {
		if e.Kind == fault.WorkerKill {
			kills++
		}
	}
	if kills == 0 {
		t.Fatalf("worker-kill corpus entry lost its kill point after Normalize: %+v", sc.Faults)
	}
	rt, err := Parse(sc.Encode())
	if err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	rtKills := 0
	for _, e := range rt.Faults {
		if e.Kind == fault.WorkerKill {
			rtKills++
		}
	}
	if rtKills != kills {
		t.Fatalf("kill points lost in encode/parse round-trip: %d -> %d", kills, rtKills)
	}
	if out := sc.Execute(); out.Failed() {
		failNow(t, sc, out)
	}
}
