package scenario

import (
	"testing"

	"samrdlb/internal/fault"
)

// FuzzScenario feeds arbitrary bytes through FromBytes into the
// executor: whatever configuration the fuzzer reaches, the engine
// must neither panic nor violate a paper invariant. CI runs this for
// a short smoke window; `go test -fuzz=FuzzScenario ./internal/scenario`
// runs it open-ended.
func FuzzScenario(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{9, 0, 0, 0, 0, 0, 0, 0, 3, 7, 11, 42})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	// Fail → rejoin → fail-again on one processor (byte 23 hits the
	// churn-injection case of FromBytes).
	f.Add([]byte{5, 0, 0, 0, 0, 0, 0, 0, 23})
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := FromBytes(data)
		if out := sc.Execute(); out.Failed() {
			t.Fatalf("%s\nreplay: %s", out.Summary(), ReplayCommand(sc))
		}
	})
}

// TestFuzzCorpusChurnSeed pins the corpus entry that exercises the
// fail → rejoin → fail-again schedule: both bounded outages must
// survive normalisation (so the entry really stresses re-admission)
// and the scenario must execute with zero invariant violations.
func TestFuzzCorpusChurnSeed(t *testing.T) {
	sc := FromBytes([]byte{5, 0, 0, 0, 0, 0, 0, 0, 23})
	bounded := 0
	for _, e := range sc.Faults {
		if e.Kind == fault.ProcFailure && e.End > e.Start {
			bounded++
		}
	}
	if bounded != 2 {
		t.Fatalf("churn corpus entry lost its schedule after Normalize: %+v", sc.Faults)
	}
	if out := sc.Execute(); out.Failed() {
		failNow(t, sc, out)
	}
}
