package scenario

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"samrdlb/internal/amr"
	"samrdlb/internal/engine"
)

// -plan-scenarios=N turns on the plan-equivalence soak: N generated
// scenarios executed with the -plancheck oracle armed (CI runs 200
// under -race). 0 — the default — keeps ordinary `go test` fast; the
// always-on sweep below still covers a fixed dozen.
var planScenarios = flag.Int("plan-scenarios", 0, "number of generated scenarios for TestPlanEquivalenceSoak (0 = skip)")

func planMsgsEqual(a, b []amr.Message) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runPlanScenario executes one generated scenario as a plan-
// equivalence property trial: the engine runs with PlanCheck armed —
// every cached plan it serves is verified bitwise against the O(n²)
// scan planners, across every regrid, migration, fault and recovery
// the scenario throws at it — plus a per-phase hook that compares the
// indexed scratch GhostPlan against GhostPlanScan for all levels and
// both dropLocal variants (the cached path only exercises
// dropLocal=false). Failures shrink to a minimal replayable
// reproducer, dropped into $SAMR_REPRO_DIR when set.
func runPlanScenario(t *testing.T, sc Scenario) {
	t.Helper()
	sc.PlanCheck = true
	// Single leg: resume determinism has its own soak, and the oracle
	// re-arms on recovery anyway.
	sc.ResumeCut = -1
	hookFail := ""
	hook := func(pi *engine.PhaseInfo) {
		if hookFail != "" || pi.Runner == nil {
			return
		}
		h := pi.Runner.Hierarchy()
		for l := 0; l <= h.MaxLevel; l++ {
			for _, dl := range []bool{false, true} {
				got, want := h.GhostPlan(l, dl), h.GhostPlanScan(l, dl)
				if !planMsgsEqual(got, want) {
					hookFail = fmt.Sprintf(
						"step %d level %d dropLocal=%v: indexed GhostPlan diverged from scan (%d vs %d messages)",
						pi.Step, l, dl, len(got), len(want))
					return
				}
			}
		}
	}
	opt, err := sc.EngineOptions(hook)
	if err != nil {
		t.Fatalf("scenario setup: %v", err)
	}
	panicked := ""
	func() {
		defer func() {
			if p := recover(); p != nil {
				panicked = fmt.Sprint(p)
			}
		}()
		engine.New(sc.System(), sc.Driver(), opt).Run()
	}()
	if panicked == "" && hookFail == "" {
		return
	}
	shrunk := Shrink(sc, func(c Scenario) bool {
		c.PlanCheck = true
		return c.Execute().Failed()
	}, 0)
	reason := panicked
	if reason == "" {
		reason = hookFail
	}
	msg := fmt.Sprintf("plan equivalence failed: %s\noriginal: %s\nshrunk (%d procs, %d steps): %s\nreplay: %s",
		reason, sc.Encode(), shrunk.NumProcs(), shrunk.Steps, shrunk.Encode(), ReplayCommand(shrunk))
	if dir := os.Getenv("SAMR_REPRO_DIR"); dir != "" {
		_ = os.MkdirAll(dir, 0o755)
		name := filepath.Join(dir, fmt.Sprintf("repro-plan-seed%d.txt", sc.Seed))
		_ = os.WriteFile(name, []byte(ReplayCommand(shrunk)+"\n"), 0o644)
	}
	t.Fatal(msg)
}

// TestPlanEquivalenceSweep is the always-on slice of the property: a
// fixed dozen generated scenarios under the plan oracle.
func TestPlanEquivalenceSweep(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runPlanScenario(t, Generate(seed))
		})
	}
}

// TestPlanEquivalenceSoak runs -plan-scenarios=N generated scenarios
// under the plan oracle (the -profile flag selects the generator, as
// for the invariant soak).
func TestPlanEquivalenceSoak(t *testing.T) {
	n := *planScenarios
	if n <= 0 {
		t.Skip("plan soak disabled; run with -plan-scenarios=N")
	}
	for i := 0; i < n; i++ {
		seed := int64(5000 + i)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runPlanScenario(t, soakGenerate(t, seed))
		})
	}
}
