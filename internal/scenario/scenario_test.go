package scenario

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// -scenarios=N turns on the soak sweep: N generated scenarios executed
// under the invariant oracle (CI runs 200 under -race). 0 — the
// default — keeps ordinary `go test` fast; the always-on sweep below
// still covers a fixed dozen.
var soakScenarios = flag.Int("scenarios", 0, "number of generated scenarios for TestInvariantSoak (0 = skip)")

// -profile selects the soak generator: "" / "default" uses Generate,
// "rejoin" uses GenerateRejoin (fault schedules weighted toward
// processor rejoin and group reconnect churn). CI runs both.
var soakProfile = flag.String("profile", "", "soak generator profile: default or rejoin")

// soakGenerate maps the -profile flag onto a generator.
func soakGenerate(t *testing.T, seed int64) Scenario {
	switch *soakProfile {
	case "", "default":
		return Generate(seed)
	case "rejoin":
		return GenerateRejoin(seed)
	default:
		t.Fatalf("unknown -profile %q", *soakProfile)
		return Scenario{}
	}
}

// failNow reports a failing outcome with its shrunk reproducer and
// replayable command line, and drops the repro into $SAMR_REPRO_DIR
// when set (CI uploads that directory as an artifact).
func failNow(t *testing.T, sc Scenario, out Outcome) {
	t.Helper()
	shrunk := Shrink(sc, func(c Scenario) bool { return c.Execute().Failed() }, 0)
	sout := shrunk.Execute()
	msg := fmt.Sprintf("scenario failed: %s\noriginal: %s\nshrunk (%d procs, %d steps): %s\nreplay: %s",
		out.Summary(), sc.Encode(), shrunk.NumProcs(), shrunk.Steps, sout.Summary(), ReplayCommand(shrunk))
	if dir := os.Getenv("SAMR_REPRO_DIR"); dir != "" {
		_ = os.MkdirAll(dir, 0o755)
		name := filepath.Join(dir, fmt.Sprintf("repro-seed%d.txt", sc.Seed))
		_ = os.WriteFile(name, []byte(ReplayCommand(shrunk)+"\n"), 0o644)
	}
	t.Fatal(msg)
}

// TestInvariantSweep is the always-on property sweep: a fixed dozen
// generated scenarios (faults, WAN links, resume cuts, both schemes)
// must hold every paper invariant.
func TestInvariantSweep(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := Generate(seed)
			if out := sc.Execute(); out.Failed() {
				failNow(t, sc, out)
			}
		})
	}
}

// TestInvariantSoak runs -scenarios=N generated scenarios; failures
// shrink to a minimal replayable reproducer.
func TestInvariantSoak(t *testing.T) {
	n := *soakScenarios
	if n <= 0 {
		t.Skip("soak disabled; run with -scenarios=N")
	}
	for i := 0; i < n; i++ {
		seed := int64(1000 + i)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := soakGenerate(t, seed)
			if out := sc.Execute(); out.Failed() {
				failNow(t, sc, out)
			}
		})
	}
}

// TestGenerateDeterministic pins the generator's contract: the same
// seed yields the same scenario, and the scenario is already
// normalised.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate not deterministic:\n%+v\n%+v", seed, a, b)
		}
		n := a
		n.Normalize()
		if !reflect.DeepEqual(a, n) {
			t.Fatalf("seed %d: Generate output not normalised:\n%+v\n%+v", seed, a, n)
		}

		ra, rb := GenerateRejoin(seed), GenerateRejoin(seed)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("seed %d: GenerateRejoin not deterministic:\n%+v\n%+v", seed, ra, rb)
		}
		rn := ra
		rn.Normalize()
		if !reflect.DeepEqual(ra, rn) {
			t.Fatalf("seed %d: GenerateRejoin output not normalised:\n%+v\n%+v", seed, ra, rn)
		}
	}
}

// TestRejoinProfileSweep is the always-on slice of the rejoin-heavy
// profile: a handful of churn-weighted scenarios must hold every
// invariant even without the -profile=rejoin soak.
func TestRejoinProfileSweep(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := GenerateRejoin(seed)
			if out := sc.Execute(); out.Failed() {
				failNow(t, sc, out)
			}
		})
	}
}

// TestScenarioEncodeParseRoundTrip pins the replay format: every
// generated scenario survives Encode → Parse bit-exactly (floats use
// %g, which round-trips float64).
func TestScenarioEncodeParseRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		sc := Generate(seed)
		sc.InjectBug = ""
		if seed%7 == 0 {
			sc.InjectBug = "colocation"
		}
		parsed, err := Parse(sc.Encode())
		if err != nil {
			t.Fatalf("seed %d: Parse(%q): %v", seed, sc.Encode(), err)
		}
		if !reflect.DeepEqual(parsed, sc) {
			t.Fatalf("seed %d: round trip mismatch:\n in: %+v\nout: %+v", seed, sc, parsed)
		}
	}
}

func TestParseRejectsUnknownKey(t *testing.T) {
	if _, err := Parse("seed=1 bogus=2"); err == nil {
		t.Fatal("Parse accepted an unknown key")
	}
	if _, err := Parse("notatoken"); err == nil {
		t.Fatal("Parse accepted a key with no value")
	}
}

// TestScenarioDeterminism asserts the executor's core property: the
// same scenario executed twice produces identical Results — including
// runs with faults and resume cuts. Shrinking and replay depend on
// this.
func TestScenarioDeterminism(t *testing.T) {
	for _, seed := range []int64{2, 5, 9, 1004, 1013} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := Generate(seed)
			a, b := sc.Execute(), sc.Execute()
			if a.Failed() || b.Failed() {
				t.Fatalf("scenario failed: %s / %s", a.Summary(), b.Summary())
			}
			if !reflect.DeepEqual(a.Result, b.Result) {
				t.Fatalf("same scenario, different Results:\n%+v\n%+v", a.Result, b.Result)
			}
		})
	}
}

// TestNormalizeEnvelope spot-checks the clamping rules that keep
// scenarios runnable.
func TestNormalizeEnvelope(t *testing.T) {
	s := Scenario{DomainN: 1000, Steps: 99, MaxLevel: 7, ResumeCut: 50, CkptInterval: 9}
	s.Normalize()
	if s.DomainN != 16 || s.Steps != 10 || s.MaxLevel != 2 {
		t.Fatalf("clamps wrong: %+v", s)
	}
	if s.ResumeCut != -1 {
		t.Fatalf("cut beyond the run should drop, got %d", s.ResumeCut)
	}

	// A cut with no completed checkpoint before it must move or vanish.
	s2 := Scenario{Steps: 2, CkptInterval: 3, ResumeCut: 1}
	s2.Normalize()
	if s2.ResumeCut != -1 {
		t.Fatalf("unreachable cut survived: %+v", s2)
	}

	// Forecast + resume is excluded (forecast history restarts empty).
	s3 := Scenario{Steps: 6, CkptInterval: 1, ResumeCut: 2, UseForecast: true}
	s3.Normalize()
	if s3.UseForecast {
		t.Fatal("UseForecast survived a resume cut")
	}
}

// TestShrinkerMinimizesColocationBug seeds a deliberate co-location
// defect (children placed outside the parent's group) into a large
// scenario and requires the shrinker to find it and reduce the
// reproducer to at most 8 processors and 5 level-0 steps.
func TestShrinkerMinimizesColocationBug(t *testing.T) {
	sc := Scenario{
		Seed:    42,
		Dataset: "ShockPool3D", DomainN: 16, MaxLevel: 2,
		Scheme: "distributed",
		Groups: []GroupDef{{Procs: 4, Perf: 1}, {Procs: 4, Perf: 0.5}, {Procs: 4, Perf: 1}},
		Steps:  8, RegridInterval: 2, GridsPerProc: 2,
		CkptInterval: 2, ResumeCut: -1,
		InjectBug: "colocation",
	}
	sc.Normalize()

	hasColocation := func(c Scenario) bool {
		out := c.Execute()
		for _, v := range out.Violations {
			if v.Rule == "co-location" {
				return true
			}
		}
		return false
	}
	if !hasColocation(sc) {
		t.Fatal("injected co-location bug was not caught by the oracle")
	}
	shrunk := Shrink(sc, hasColocation, 0)
	if !hasColocation(shrunk) {
		t.Fatalf("shrunk scenario no longer reproduces: %s", shrunk.Encode())
	}
	if shrunk.InjectBug != "colocation" || shrunk.Seed != sc.Seed {
		t.Fatalf("shrinker dropped identity fields: %+v", shrunk)
	}
	if p := shrunk.NumProcs(); p > 8 || shrunk.Steps > 5 {
		t.Fatalf("shrunk reproducer too large: %d procs, %d steps (%s)", p, shrunk.Steps, shrunk.Encode())
	}
	// The printed command line must replay the same defect.
	parsed, err := Parse(shrunk.Encode())
	if err != nil {
		t.Fatalf("replay string does not parse: %v", err)
	}
	if !hasColocation(parsed) {
		t.Fatalf("replayed scenario does not reproduce: %s", ReplayCommand(shrunk))
	}
	t.Logf("shrunk repro: %s", ReplayCommand(shrunk))
}
