package scenario

import (
	"encoding/binary"
	"math/rand"

	"samrdlb/internal/dlb"
	"samrdlb/internal/fault"
	"samrdlb/internal/machine"
	"samrdlb/internal/workload"
)

// Generate derives a runnable scenario deterministically from a seed:
// the same seed always yields the same scenario, so a soak failure is
// reproducible from its seed alone. Every output has already passed
// Normalize.
func Generate(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	s := Scenario{Seed: seed, ResumeCut: -1}

	ngroups := 1 + rng.Intn(3)
	for i := 0; i < ngroups; i++ {
		perf := 1.0
		if rng.Float64() < 0.4 {
			perf = []float64{0.5, 0.75}[rng.Intn(2)]
		}
		s.Groups = append(s.Groups, GroupDef{Procs: 1 + rng.Intn(4), Perf: perf})
	}

	s.Dataset = []string{
		"ShockPool3D", "ShockPool3D", "AMR64", "SedovBlast", "blob", "uniform",
	}[rng.Intn(6)]
	s.DomainN = domainSizes[rng.Intn(len(domainSizes))]
	s.MaxLevel = 1
	if rng.Float64() < 0.3 {
		s.MaxLevel = 2
	}
	// One draw selects the policy, weighted toward the paper scheme
	// (it exercises the gate and group machinery the other policies
	// delegate to) with every registered policy represented.
	switch r := rng.Float64(); {
	case r < 0.52:
		s.Scheme = "distributed"
	case r < 0.66:
		s.Scheme = "parallel"
	case r < 0.74:
		s.Scheme = "sfc"
	case r < 0.81:
		s.Scheme = "hilbert-sfc"
	case r < 0.88:
		s.Scheme = "diffusion"
	case r < 0.94:
		s.Scheme = "diffusion-sos"
	default:
		s.Scheme = "knapsack"
	}
	s.Wan = ngroups >= 2 && rng.Float64() < 0.5
	if rng.Float64() < 0.3 {
		s.Traffic = 1 + rng.Int63n(1<<20)
	}
	s.Steps = 3 + rng.Intn(6)
	if rng.Float64() < 0.3 {
		s.Gamma = 0.5 + 3.5*rng.Float64()
	}
	if rng.Float64() < 0.3 {
		s.Eps = 0.01 + 0.19*rng.Float64()
	}
	s.RegridInterval = 1 + rng.Intn(3)
	s.GridsPerProc = 1 + rng.Intn(3)
	s.WithData = s.DomainN <= 12 && rng.Float64() < 0.2
	s.UseForecast = rng.Float64() < 0.3
	s.CkptInterval = 1 + rng.Intn(3)
	if rng.Float64() < 0.3 && s.Steps >= 2 {
		s.ResumeCut = s.CkptInterval + rng.Intn(s.Steps)
	}

	if rng.Float64() < 0.5 {
		s.FaultSeed = rng.Int63()
		est := s.estRunTime()
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			s.Faults = append(s.Faults, randomEvent(rng, est, len(s.Groups), s.NumProcs()))
		}
	}

	s.Normalize()
	return s
}

// estRunTime crudely estimates the run's virtual duration so fault
// windows land somewhere inside it. Precision is irrelevant — a
// window that misses the run is a no-op, not an error.
func (s *Scenario) estRunTime() float64 {
	cells := float64(s.DomainN * s.DomainN * s.DomainN)
	flops := workload.FlopsPerCell(s.Driver())
	var perf float64
	for _, g := range s.Groups {
		perf += float64(g.Procs) * g.Perf
	}
	if perf <= 0 {
		perf = 1
	}
	// ~3× for refined levels and subcycling.
	return float64(s.Steps) * cells * flops * 3 / (perf * machine.DefaultFlopsPerSecond)
}

// randomEvent draws one valid fault event with a window inside
// [0, est]. Kind-specific parameters respect fault.Event validation.
func randomEvent(rng *rand.Rand, est float64, ngroups, nprocs int) fault.Event {
	start := rng.Float64() * est * 0.8
	end := start + (0.05+0.45*rng.Float64())*est
	a, b := 0, 1
	if ngroups >= 2 {
		a = rng.Intn(ngroups)
		b = rng.Intn(ngroups)
		for b == a {
			b = rng.Intn(ngroups)
		}
	}
	switch rng.Intn(8) {
	case 0:
		return fault.Event{Kind: fault.LinkOutage, Start: start, End: end, A: a, B: b}
	case 1:
		return fault.Event{Kind: fault.LinkDegrade, Start: start, End: end, A: a, B: b,
			Factor: 1.5 + 6.5*rng.Float64()}
	case 2:
		return fault.Event{Kind: fault.ProbeLoss, Start: start, End: end, A: a, B: b,
			Prob: 0.3 + 0.7*rng.Float64()}
	case 3:
		return fault.Event{Kind: fault.ProcSlowdown, Start: start, End: end,
			Proc: rng.Intn(nprocs), Factor: 0.3 + 0.6*rng.Float64()}
	case 4:
		return fault.Event{Kind: fault.GroupDisconnect, Start: start, End: end,
			Group: rng.Intn(ngroups)}
	case 5:
		// Explicit revival: a no-op unless a failure struck the same
		// processor earlier, which the generator leaves to chance.
		return fault.Event{Kind: fault.ProcRecovery, Start: start, Proc: rng.Intn(nprocs)}
	case 6:
		return fault.Event{Kind: fault.GroupReconnect, Start: start, Group: rng.Intn(ngroups)}
	default:
		// Windowed failure: a bounded outage — the processor is down in
		// [start, end) and rejoins at end.
		return fault.Event{Kind: fault.ProcFailure, Start: start, End: end,
			Proc: rng.Intn(nprocs)}
	}
}

// GenerateRejoin derives a rejoin-heavy scenario deterministically:
// the run envelope comes from Generate, but the fault schedule is
// replaced with one weighted toward elastic-membership churn — bounded
// processor outages, explicit failure→recovery pairs, and group
// disconnect→reconnect pairs — so soaks exercise the rejoin and
// catch-up paths on every seed.
func GenerateRejoin(seed int64) Scenario {
	s := Generate(seed)
	rng := rand.New(rand.NewSource(seed ^ 0x52454a4f494e)) // "REJOIN"
	nprocs, ngroups := s.NumProcs(), len(s.Groups)
	est := s.estRunTime()
	s.FaultSeed = 1 + rng.Int63()
	s.Faults = nil
	s.ResumeCut = -1
	if rng.Float64() < 0.4 && s.Steps >= 2 {
		s.ResumeCut = s.CkptInterval + rng.Intn(s.Steps)
	}
	n := 1 + rng.Intn(2)
	for i := 0; i < n; i++ {
		p := rng.Intn(nprocs)
		t0 := rng.Float64() * est * 0.5
		t1 := t0 + (0.1+0.3*rng.Float64())*est
		if rng.Float64() < 0.5 {
			// Bounded outage: down in [t0, t1), rejoining at t1.
			s.Faults = append(s.Faults, fault.Event{Kind: fault.ProcFailure, Start: t0, End: t1, Proc: p})
		} else {
			// Permanent failure revived by an explicit recovery.
			s.Faults = append(s.Faults, fault.Event{Kind: fault.ProcFailure, Start: t0, Proc: p})
			s.Faults = append(s.Faults, fault.Event{Kind: fault.ProcRecovery, Start: t1, Proc: p})
		}
	}
	if ngroups >= 2 && rng.Float64() < 0.5 {
		g := rng.Intn(ngroups)
		t0 := rng.Float64() * est * 0.5
		t1 := t0 + (0.1+0.3*rng.Float64())*est
		s.Faults = append(s.Faults, fault.Event{Kind: fault.GroupDisconnect, Start: t0, End: t1, Group: g})
		s.Faults = append(s.Faults, fault.Event{Kind: fault.GroupReconnect, Start: t1 + 0.05*est, Group: g})
	}
	if rng.Float64() < 0.3 {
		s.Quorum = 1 + rng.Intn(2)
	}
	s.Normalize()
	return s
}

// FromBytes maps arbitrary fuzz input onto a scenario: the first 8
// bytes seed Generate, the rest perturb individual fields. Fuzz
// scenarios are clamped smaller than soak scenarios (tiny domains,
// few steps) so the fuzzer gets throughput; Normalize re-validates
// whatever the perturbations produced.
func FromBytes(data []byte) Scenario {
	var seed int64
	if len(data) >= 8 {
		seed = int64(binary.LittleEndian.Uint64(data[:8]))
		data = data[8:]
	}
	s := Generate(seed)
	for i, b := range data {
		switch b % 14 {
		case 0:
			s.Steps = 1 + int(b/11)%4
		case 1:
			s.MaxLevel = 1 + int(b)%2
		case 2:
			s.RegridInterval = 1 + int(b)%4
		case 3:
			s.GridsPerProc = 1 + int(b)%4
		case 4:
			s.Gamma = float64(b) / 32
		case 5:
			s.Eps = float64(b) / 512
		case 6:
			s.CkptInterval = 1 + int(b)%4
		case 7:
			if s.ResumeCut >= 0 {
				s.ResumeCut = int(b) % (s.Steps + 1)
			}
		case 8:
			if len(s.Groups) > 0 {
				s.Groups[i%len(s.Groups)].Procs = 1 + int(b)%4
			}
		case 9:
			s.UseForecast = b%2 == 0
		case 10:
			if len(s.Faults) > 0 {
				s.Faults[i%len(s.Faults)].Start = float64(b) / 255 * s.estRunTime()
			}
		case 11:
			// Fail → rejoin → fail-again on one processor: the schedule
			// that stresses re-admission bookkeeping hardest. Normalize
			// drops it when the system is too small.
			est := s.estRunTime()
			p := int(b) % s.NumProcs()
			s.FaultSeed = 1 + int64(b)
			s.Faults = []fault.Event{
				{Kind: fault.ProcFailure, Start: 0.1 * est, End: 0.35 * est, Proc: p},
				{Kind: fault.ProcFailure, Start: 0.55 * est, End: 0.8 * est, Proc: p},
			}
		case 12:
			// Chaos kill point: a supervised replay SIGKILLs this group's
			// worker after the scripted step. Inert for the in-process
			// executor, but the encode/normalize round-trip and the
			// schedule validation still get exercised.
			g := int(b) % max(1, len(s.Groups))
			s.Faults = append(s.Faults, fault.Event{
				Kind:  fault.WorkerKill,
				Start: float64(int(b) % max(1, s.Steps)),
				Group: g, A: -1, B: -1, Proc: -1,
			})
		case 13:
			// Policy override: the fuzzer explores every registered
			// balancer policy for free (the quotient indexes the sorted
			// registry).
			names := dlb.PolicyNames()
			s.Scheme = names[int(b/14)%len(names)]
		}
	}
	// Keep fuzz executions cheap.
	if s.DomainN > 12 {
		s.DomainN = 12
	}
	if s.Steps > 4 {
		s.Steps = 4
	}
	s.WithData = false
	s.Normalize()
	return s
}
