// Package scenario is the property-based test harness for the SAMR
// DLB engine: a deterministic generator of randomized run
// configurations (systems, workloads, DLB parameters, fault
// schedules, checkpoint/resume cut points), an executor that runs
// them under the paper-invariant oracle (internal/invariant), and a
// greedy shrinker that minimises a failing scenario and prints a
// replayable `samrsim -invariants -scenario '...'` command line.
//
// Everything is a pure function of the scenario value: the same
// Scenario always produces the same Result and the same violations,
// which is what makes shrinking and replay possible.
package scenario

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"samrdlb/internal/amr"
	"samrdlb/internal/dlb"
	"samrdlb/internal/engine"
	"samrdlb/internal/fault"
	"samrdlb/internal/geom"
	"samrdlb/internal/invariant"
	"samrdlb/internal/machine"
	"samrdlb/internal/metrics"
	"samrdlb/internal/netsim"
	"samrdlb/internal/workload"
)

// GroupDef describes one processor group: its size and the relative
// performance of its (homogeneous) processors.
type GroupDef struct {
	Procs int
	Perf  float64
}

// Scenario is one complete run configuration. The zero value is not
// runnable; use Generate, Parse or build one and call Normalize.
type Scenario struct {
	// Seed feeds the seeded parts of the run (AMR64's refinement
	// schedule); the scenario's own shape comes from Generate's seed.
	Seed    int64
	Dataset string // ShockPool3D | AMR64 | SedovBlast | blob | uniform
	DomainN int
	// MaxLevel is the deepest refinement level (1 or 2).
	MaxLevel int
	// Scheme names the balancer policy (any canonical name or alias of
	// the dlb policy registry: distributed, parallel, sfc, hilbert-sfc,
	// diffusion, diffusion-sos, knapsack). Normalize canonicalises it.
	Scheme string
	Groups   []GroupDef
	// Wan selects the MREN OC-3 WAN between groups (Gigabit LAN
	// otherwise); Traffic, when non-zero, seeds bursty background
	// traffic on the inter-group links.
	Wan            bool
	Traffic        int64
	Steps          int
	Gamma          float64 // 0 = paper default 2.0
	Eps            float64 // 0 = default 0.05
	RegridInterval int
	GridsPerProc   int
	WithData       bool
	UseForecast    bool
	// CkptInterval is the level-0 steps between checkpoints; ResumeCut
	// (-1 = none) interrupts the run after that many steps and resumes
	// from the durable store, exercising the restore path mid-scenario.
	CkptInterval int
	ResumeCut    int
	// Quorum is the per-group minimum of admitted processors for
	// global balancing under elastic membership (0 = engine default 1).
	Quorum    int
	FaultSeed int64
	Faults    []fault.Event
	// InjectBug deliberately breaks an invariant for harness
	// self-tests: "colocation" misplaces children outside their
	// parent's group. Never produced by Generate; preserved by Shrink.
	InjectBug string
	// PlanCheck arms the engine's exchange-plan oracle for the run:
	// every served plan is compared bitwise against the O(n²) scan
	// baselines. Never produced by Generate (the plan-equivalence soak
	// and -plancheck replays force it); preserved by Shrink.
	PlanCheck bool
}

// System builds the machine the scenario runs on.
func (s *Scenario) System() *machine.System {
	fab := netsim.NewFabric(len(s.Groups))
	specs := make([]machine.GroupSpec, len(s.Groups))
	for i, g := range s.Groups {
		fab.SetIntra(i, netsim.OriginInterconnect())
		specs[i] = machine.GroupSpec{Name: fmt.Sprintf("g%d", i), Procs: g.Procs, Perf: g.Perf}
	}
	for a := 0; a < len(s.Groups); a++ {
		for b := a + 1; b < len(s.Groups); b++ {
			var tm netsim.TrafficModel
			if s.Traffic != 0 {
				tm = &netsim.BurstyTraffic{
					QuietLoad: 0.1, BusyLoad: 0.6, MeanQuiet: 30, MeanBusy: 15,
					Seed: s.Traffic + int64(31*a+b),
				}
			}
			if s.Wan {
				fab.SetInter(a, b, netsim.MrenWAN(tm))
			} else {
				fab.SetInter(a, b, netsim.GigabitLAN(tm))
			}
		}
	}
	return machine.New(specs, fab, machine.DefaultFlopsPerSecond)
}

// Driver builds the scenario's workload driver. Drivers carry state
// (particles, seeded schedules), so every leg of a run needs a fresh
// one.
func (s *Scenario) Driver() workload.Driver {
	switch s.Dataset {
	case "AMR64":
		return workload.NewAMR64(s.DomainN, 2, s.Seed)
	case "SedovBlast":
		return workload.NewSedovBlast(s.DomainN, 2)
	case "blob":
		return workload.NewStaticBlob(s.DomainN, 2)
	case "uniform":
		return &workload.Uniform{N0: s.DomainN, Ref: 2}
	default:
		return workload.NewShockPool3D(s.DomainN, 2)
	}
}

// balancer builds the scheme from the policy registry, wrapping it
// with the injected bug when the scenario asks for one. Every leg of a
// run gets a fresh instance, so stateful policies (diffusion-sos's
// flow memory) never leak across legs.
func (s *Scenario) balancer() dlb.Balancer {
	b, err := dlb.NewPolicy(s.Scheme)
	if err != nil {
		b = dlb.DistributedDLB{}
	}
	if s.InjectBug == "colocation" {
		return misplacingBalancer{b}
	}
	return b
}

// misplacingBalancer wraps a scheme and deliberately places children
// outside their parent's group — the seeded defect the shrinker
// acceptance test hunts.
type misplacingBalancer struct {
	dlb.Balancer
}

func (m misplacingBalancer) PlaceChild(ctx *dlb.Context, childBox geom.Box, parent *amr.Grid) int {
	p := m.Balancer.PlaceChild(ctx, childBox, parent)
	grp := ctx.Sys.GroupOf(parent.Owner)
	for q := 0; q < ctx.Sys.NumProcs(); q++ {
		if ctx.Sys.GroupOf(q) != grp {
			return q
		}
	}
	return p
}

// EngineOptions builds the engine options for this scenario, with the
// given invariants hook attached (nil for none). CheckpointDir is
// left empty; Execute (or the caller) supplies it when the scenario
// resumes. A fresh fault.Schedule is built per call, so separate legs
// of a run never share probe-sequence state.
func (s *Scenario) EngineOptions(check func(*engine.PhaseInfo)) (engine.Options, error) {
	opt := engine.Options{
		Steps:              s.Steps,
		Balancer:           s.balancer(),
		Gamma:              s.Gamma,
		ImbalanceEps:       s.Eps,
		MaxLevel:           s.MaxLevel,
		RegridInterval:     s.RegridInterval,
		GridsPerProc:       s.GridsPerProc,
		WithData:           s.WithData,
		UseForecast:        s.UseForecast,
		CheckpointInterval: s.CkptInterval,
		GroupQuorum:        s.Quorum,
		PlanCheck:          s.PlanCheck,
		Invariants:         check,
	}
	if len(s.Faults) > 0 {
		sched, err := fault.NewSchedule(s.FaultSeed, s.Faults...)
		if err != nil {
			return opt, fmt.Errorf("scenario faults: %w", err)
		}
		opt.Faults = sched
	}
	return opt, nil
}

// Outcome is what executing a scenario produced.
type Outcome struct {
	Result     *metrics.Result
	Violations []invariant.Violation
	// Panic holds a recovered panic message (engine defect), Err a
	// setup or resume error; both count as failures.
	Panic string
	Err   string
}

// Failed reports whether the scenario violated an invariant, panicked
// or failed to execute.
func (o Outcome) Failed() bool {
	return len(o.Violations) > 0 || o.Panic != "" || o.Err != ""
}

// Summary renders a short human-readable account of a failure.
func (o Outcome) Summary() string {
	switch {
	case o.Panic != "":
		return "panic: " + o.Panic
	case o.Err != "":
		return "error: " + o.Err
	case len(o.Violations) > 0:
		var b strings.Builder
		fmt.Fprintf(&b, "%d violation(s):", len(o.Violations))
		for _, v := range o.Violations {
			b.WriteString("\n  " + v.String())
		}
		return b.String()
	default:
		return "ok"
	}
}

// Execute runs the scenario under the invariant oracle. With a resume
// cut, the run executes to the cut against a durable store in a
// temporary directory, then a fresh system and driver resume from the
// newest generation and finish the run — the restored state passes
// through the same oracle.
func (s Scenario) Execute() (out Outcome) {
	return s.execute(nil)
}

// ExecuteWithHistory runs the scenario like Execute while collecting
// the engine's per-step time series (step-time, cells,
// imbalance-ratio, remote-comm) into hist — what the policy tournament
// scores from. With a resume cut, both legs append to the same
// history.
func (s Scenario) ExecuteWithHistory(hist *metrics.History) Outcome {
	return s.execute(hist)
}

func (s Scenario) execute(hist *metrics.History) (out Outcome) {
	defer func() {
		if p := recover(); p != nil {
			out.Panic = fmt.Sprint(p)
		}
	}()
	// Rule scoping follows the policy's registered traits: structural
	// rules always on, paper-specific rules only where the policy
	// promises them.
	chk := invariant.NewForPolicy(s.Scheme)
	opt, err := s.EngineOptions(chk.Check)
	opt.History = hist
	if err != nil {
		out.Err = err.Error()
		return out
	}
	if s.ResumeCut >= 0 {
		dir, derr := os.MkdirTemp("", "samr-scn-")
		if derr != nil {
			out.Err = derr.Error()
			return out
		}
		defer os.RemoveAll(dir)
		opt.CheckpointDir = dir
		first := opt
		first.Steps = s.ResumeCut
		engine.New(s.System(), s.Driver(), first).Run()
		// The interrupted process is gone: the resume leg gets fresh
		// system health, particles and fault schedule, exactly as a
		// real restart would.
		ropt, rerr := s.EngineOptions(chk.Check)
		if rerr != nil {
			out.Err = rerr.Error()
			return out
		}
		ropt.History = hist
		ropt.CheckpointDir = dir
		r, _, rerr2 := engine.Resume(s.System(), s.Driver(), ropt)
		if rerr2 != nil {
			out.Err = rerr2.Error()
			out.Violations = chk.Violations()
			return out
		}
		out.Result = r.Run()
	} else {
		out.Result = engine.New(s.System(), s.Driver(), opt).Run()
	}
	out.Violations = chk.Violations()
	return out
}

// NumProcs returns the scenario's total processor count.
func (s *Scenario) NumProcs() int {
	n := 0
	for _, g := range s.Groups {
		n += g.Procs
	}
	return n
}

// --- replay encoding ------------------------------------------------

// Encode renders the scenario as the compact replay string consumed
// by Parse and `samrsim -scenario`. Floats use %g, which round-trips
// float64 exactly.
func (s *Scenario) Encode() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	add("seed", strconv.FormatInt(s.Seed, 10))
	add("dataset", s.Dataset)
	add("n", strconv.Itoa(s.DomainN))
	add("maxlevel", strconv.Itoa(s.MaxLevel))
	add("scheme", s.Scheme)
	gs := make([]string, len(s.Groups))
	for i, g := range s.Groups {
		gs[i] = fmt.Sprintf("%dx%g", g.Procs, g.Perf)
	}
	add("groups", strings.Join(gs, ","))
	add("wan", boolStr(s.Wan))
	add("traffic", strconv.FormatInt(s.Traffic, 10))
	add("steps", strconv.Itoa(s.Steps))
	add("gamma", fmtG(s.Gamma))
	add("eps", fmtG(s.Eps))
	add("regrid", strconv.Itoa(s.RegridInterval))
	add("gpp", strconv.Itoa(s.GridsPerProc))
	add("data", boolStr(s.WithData))
	add("forecast", boolStr(s.UseForecast))
	add("ckpt", strconv.Itoa(s.CkptInterval))
	add("cut", strconv.Itoa(s.ResumeCut))
	add("quorum", strconv.Itoa(s.Quorum))
	add("faultseed", strconv.FormatInt(s.FaultSeed, 10))
	if len(s.Faults) > 0 {
		es := make([]string, len(s.Faults))
		for i, e := range s.Faults {
			es[i] = fmt.Sprintf("%d:%s:%s:%d:%d:%d:%d:%s:%s",
				int(e.Kind), fmtG(e.Start), fmtG(e.End), e.A, e.B, e.Group, e.Proc,
				fmtG(e.Factor), fmtG(e.Prob))
		}
		add("faults", strings.Join(es, "+"))
	}
	if s.InjectBug != "" {
		add("bug", s.InjectBug)
	}
	if s.PlanCheck {
		add("plancheck", "1")
	}
	return strings.Join(parts, " ")
}

func fmtG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func boolStr(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// Parse decodes a replay string produced by Encode. Unknown keys are
// an error so typos surface instead of silently replaying a different
// scenario.
func Parse(in string) (Scenario, error) {
	s := Scenario{ResumeCut: -1}
	for _, tok := range strings.Fields(in) {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return s, fmt.Errorf("scenario.Parse: malformed token %q", tok)
		}
		var err error
		switch k {
		case "seed":
			s.Seed, err = strconv.ParseInt(v, 10, 64)
		case "dataset":
			s.Dataset = v
		case "n":
			s.DomainN, err = strconv.Atoi(v)
		case "maxlevel":
			s.MaxLevel, err = strconv.Atoi(v)
		case "scheme", "policy":
			s.Scheme = v
		case "groups":
			s.Groups, err = parseGroups(v)
		case "wan":
			s.Wan = v == "1"
		case "traffic":
			s.Traffic, err = strconv.ParseInt(v, 10, 64)
		case "steps":
			s.Steps, err = strconv.Atoi(v)
		case "gamma":
			s.Gamma, err = strconv.ParseFloat(v, 64)
		case "eps":
			s.Eps, err = strconv.ParseFloat(v, 64)
		case "regrid":
			s.RegridInterval, err = strconv.Atoi(v)
		case "gpp":
			s.GridsPerProc, err = strconv.Atoi(v)
		case "data":
			s.WithData = v == "1"
		case "forecast":
			s.UseForecast = v == "1"
		case "ckpt":
			s.CkptInterval, err = strconv.Atoi(v)
		case "cut":
			s.ResumeCut, err = strconv.Atoi(v)
		case "quorum":
			s.Quorum, err = strconv.Atoi(v)
		case "faultseed":
			s.FaultSeed, err = strconv.ParseInt(v, 10, 64)
		case "faults":
			s.Faults, err = parseFaults(v)
		case "bug":
			s.InjectBug = v
		case "plancheck":
			s.PlanCheck = v == "1"
		default:
			return s, fmt.Errorf("scenario.Parse: unknown key %q", k)
		}
		if err != nil {
			return s, fmt.Errorf("scenario.Parse: %s=%q: %w", k, v, err)
		}
	}
	return s, nil
}

func parseGroups(v string) ([]GroupDef, error) {
	var out []GroupDef
	for _, part := range strings.Split(v, ",") {
		p, perf, ok := strings.Cut(part, "x")
		if !ok {
			return nil, fmt.Errorf("group %q not NxPERF", part)
		}
		procs, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		pf, err := strconv.ParseFloat(perf, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, GroupDef{Procs: procs, Perf: pf})
	}
	return out, nil
}

func parseFaults(v string) ([]fault.Event, error) {
	var out []fault.Event
	for _, part := range strings.Split(v, "+") {
		f := strings.Split(part, ":")
		if len(f) != 9 {
			return nil, fmt.Errorf("fault %q wants 9 fields, has %d", part, len(f))
		}
		var e fault.Event
		kind, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, err
		}
		e.Kind = fault.Kind(kind)
		if e.Start, err = strconv.ParseFloat(f[1], 64); err != nil {
			return nil, err
		}
		if e.End, err = strconv.ParseFloat(f[2], 64); err != nil {
			return nil, err
		}
		if e.A, err = strconv.Atoi(f[3]); err != nil {
			return nil, err
		}
		if e.B, err = strconv.Atoi(f[4]); err != nil {
			return nil, err
		}
		if e.Group, err = strconv.Atoi(f[5]); err != nil {
			return nil, err
		}
		if e.Proc, err = strconv.Atoi(f[6]); err != nil {
			return nil, err
		}
		if e.Factor, err = strconv.ParseFloat(f[7], 64); err != nil {
			return nil, err
		}
		if e.Prob, err = strconv.ParseFloat(f[8], 64); err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// ReplayCommand renders the samrsim command line that reproduces the
// scenario — what a failing soak or fuzz run prints.
func ReplayCommand(s Scenario) string {
	return fmt.Sprintf("samrsim -invariants -scenario '%s'", s.Encode())
}

// --- normalisation --------------------------------------------------

var domainSizes = []int{8, 12, 16}

// Normalize clamps every field into the runnable envelope and drops
// fault events the system cannot host. It is idempotent, and both the
// generator and the shrinker funnel candidates through it, so every
// scenario that reaches Execute is well-formed by construction.
func (s *Scenario) Normalize() {
	if s.Dataset == "" {
		s.Dataset = "ShockPool3D"
	}
	switch s.Dataset {
	case "ShockPool3D", "AMR64", "SedovBlast", "blob", "uniform":
	default:
		s.Dataset = "ShockPool3D"
	}
	if canon, ok := dlb.CanonicalPolicy(s.Scheme); ok {
		s.Scheme = canon
	} else {
		s.Scheme = "distributed"
	}
	// Snap the domain to the nearest supported size.
	best := domainSizes[0]
	for _, d := range domainSizes {
		if abs(d-s.DomainN) < abs(best-s.DomainN) {
			best = d
		}
	}
	s.DomainN = best
	s.MaxLevel = clamp(s.MaxLevel, 1, 2)
	if len(s.Groups) == 0 {
		s.Groups = []GroupDef{{Procs: 2, Perf: 1}, {Procs: 2, Perf: 1}}
	}
	if len(s.Groups) > 4 {
		s.Groups = s.Groups[:4]
	}
	for i := range s.Groups {
		s.Groups[i].Procs = clamp(s.Groups[i].Procs, 1, 4)
		if !(s.Groups[i].Perf > 0) || s.Groups[i].Perf > 4 {
			s.Groups[i].Perf = 1
		}
	}
	s.Steps = clamp(s.Steps, 1, 10)
	if !(s.Gamma >= 0) || s.Gamma > 16 {
		s.Gamma = 0
	}
	if !(s.Eps >= 0) || s.Eps > 1 {
		s.Eps = 0
	}
	s.RegridInterval = clamp(s.RegridInterval, 1, 4)
	s.GridsPerProc = clamp(s.GridsPerProc, 1, 4)
	if s.WithData && s.DomainN > 12 {
		s.WithData = false
	}
	s.CkptInterval = clamp(s.CkptInterval, 1, 4)
	s.Quorum = clamp(s.Quorum, 0, 4)
	if s.ResumeCut >= 0 {
		// The cut needs a durable generation to resume from: at least
		// CkptInterval completed steps, and something left to run.
		if s.ResumeCut < s.CkptInterval {
			s.ResumeCut = s.CkptInterval
		}
		if s.ResumeCut >= s.Steps {
			s.ResumeCut = -1
		}
	}
	if s.ResumeCut < 0 {
		s.ResumeCut = -1
	}
	if s.ResumeCut >= 0 {
		// The forecast history restarts empty on resume (documented
		// engine limitation) — forecasting plus resume is excluded so
		// scenarios stay deterministic end to end.
		s.UseForecast = false
	}
	s.normalizeFaults()
}

// normalizeFaults drops events the current system shape cannot host
// (out-of-range groups or processors, malformed windows) and caps the
// schedule: one permanent processor failure (which must leave at least
// two survivors), and up to two bounded outages — windowed failures or
// failure/recovery pairs, whose processors rejoin mid-run.
func (s *Scenario) normalizeFaults() {
	if len(s.Faults) == 0 {
		s.Faults = nil
		return
	}
	nprocs, ngroups := s.NumProcs(), len(s.Groups)
	var kept []fault.Event
	failures, bounded := 0, 0
	for _, e := range s.Faults {
		switch e.Kind {
		case fault.LinkOutage, fault.LinkDegrade, fault.ProbeLoss:
			if ngroups < 2 || e.A >= ngroups || e.B >= ngroups || e.A == e.B {
				continue
			}
		case fault.GroupDisconnect:
			if ngroups < 2 || e.Group >= ngroups {
				continue
			}
		case fault.GroupReconnect:
			if ngroups < 2 || e.Group >= ngroups {
				continue
			}
		case fault.ProcSlowdown:
			if e.Proc >= nprocs {
				continue
			}
		case fault.ProcFailure:
			if e.Proc >= nprocs {
				continue
			}
			if e.End > e.Start {
				// Bounded outage: the processor rejoins at End, so it is
				// tolerable even on small systems.
				if nprocs < 2 || bounded >= 2 {
					continue
				}
				bounded++
			} else {
				if nprocs < 3 || failures >= 1 {
					continue
				}
				failures++
			}
		case fault.ProcRecovery:
			if e.Proc >= nprocs {
				continue
			}
		case fault.WorkerKill:
			// Kill points target worker processes by group; the
			// in-process scenario executor ignores them (the engine does
			// too), but they must survive the round-trip so a supervised
			// replay sees the same schedule.
			if e.Group < 0 || e.Group >= ngroups {
				continue
			}
		default:
			// Disk-fault kinds can corrupt every durable generation and
			// turn a healthy resume into a spurious failure; the ckpt
			// package owns those tests.
			continue
		}
		if eventOK(e, nprocs, ngroups) {
			kept = append(kept, e)
		}
	}
	if len(kept) > 4 {
		kept = kept[:4]
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].Start < kept[j].Start })
	s.Faults = kept
	if len(s.Faults) == 0 {
		s.Faults = nil
	}
}

// eventOK runs the fault package's own validation on a single event
// by building a throwaway schedule.
func eventOK(e fault.Event, nprocs, ngroups int) bool {
	sched, err := fault.NewSchedule(1, e)
	if err != nil {
		return false
	}
	return sched.Validate(nprocs, ngroups) == nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
