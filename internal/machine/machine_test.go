package machine

import (
	"math"
	"strings"
	"testing"

	"samrdlb/internal/netsim"
)

func TestNewAssignsIDsAndGroups(t *testing.T) {
	s := WanPair(4, nil)
	if s.NumProcs() != 8 || s.NumGroups() != 2 {
		t.Fatalf("procs %d groups %d", s.NumProcs(), s.NumGroups())
	}
	for i, p := range s.Procs {
		if p.ID != i {
			t.Errorf("proc %d has ID %d", i, p.ID)
		}
	}
	for _, p := range s.ProcsInGroup(0) {
		if s.GroupOf(p) != 0 {
			t.Errorf("proc %d should be in group 0", p)
		}
	}
	if s.GroupOf(7) != 1 {
		t.Error("proc 7 should be in group 1")
	}
}

func TestPerfAggregates(t *testing.T) {
	s := Heterogeneous(4, 4, 0.5, nil)
	if got := s.GroupPerf(0); got != 4 {
		t.Errorf("GroupPerf(0) = %v", got)
	}
	if got := s.GroupPerf(1); got != 2 {
		t.Errorf("GroupPerf(1) = %v", got)
	}
	if got := s.TotalPerf(); got != 6 {
		t.Errorf("TotalPerf = %v", got)
	}
}

func TestSameGroupAndLinks(t *testing.T) {
	s := WanPair(2, nil)
	if !s.SameGroup(0, 1) || s.SameGroup(1, 2) {
		t.Error("group membership wrong")
	}
	local, err := s.LinkBetween(0, 1)
	if err != nil {
		t.Fatalf("LinkBetween: %v", err)
	}
	remote, err := s.LinkBetween(0, 3)
	if err != nil {
		t.Fatalf("LinkBetween: %v", err)
	}
	if local.Alpha >= remote.Alpha {
		t.Error("intra-group link must have lower latency than WAN")
	}
}

func TestComputeTimeScalesWithPerf(t *testing.T) {
	s := Heterogeneous(1, 1, 0.5, nil)
	fast := s.ComputeTime(0, 1e6)
	slow := s.ComputeTime(1, 1e6)
	if math.Abs(slow-2*fast) > 1e-15 {
		t.Errorf("half-speed processor should take twice as long: %v vs %v", fast, slow)
	}
}

func TestOrigin2000SingleGroup(t *testing.T) {
	s := Origin2000("ANL", 8)
	if s.NumGroups() != 1 || s.NumProcs() != 8 {
		t.Fatal("Origin2000 shape wrong")
	}
	// All communication routes over the internal interconnect.
	l, err := s.LinkBetween(0, 7)
	if err != nil {
		t.Fatalf("LinkBetween: %v", err)
	}
	if l.Alpha > 1e-5 {
		t.Error("parallel machine interconnect should be sub-10µs")
	}
}

func TestLanPairUsesSharedLAN(t *testing.T) {
	s := LanPair(2, netsim.ConstantTraffic{Level: 0.3})
	l, err := s.LinkBetween(0, 2)
	if err != nil {
		t.Fatalf("LinkBetween: %v", err)
	}
	if l.LoadAt(0) != 0.3 {
		t.Error("LAN traffic model not wired through")
	}
}

func TestNewValidation(t *testing.T) {
	fab := netsim.NewFabric(1)
	fab.SetIntra(0, netsim.OriginInterconnect())
	assertPanics(t, "fabric group mismatch", func() {
		New([]GroupSpec{{Name: "a", Procs: 1}, {Name: "b", Procs: 1}}, fab, 1e6)
	})
	assertPanics(t, "empty group", func() {
		New([]GroupSpec{{Name: "a", Procs: 0}}, fab, 1e6)
	})
	assertPanics(t, "bad flops", func() {
		New([]GroupSpec{{Name: "a", Procs: 1}}, fab, 0)
	})
	// Perf defaults to 1.
	s := New([]GroupSpec{{Name: "a", Procs: 2}}, fab, 1e6)
	if s.Perf(0) != 1 {
		t.Error("Perf should default to 1")
	}
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestString(t *testing.T) {
	s := WanPair(4, nil)
	str := s.String()
	if !strings.Contains(str, "ANL") || !strings.Contains(str, "NCSA") {
		t.Errorf("String missing group names: %s", str)
	}
}

func TestMultiSite(t *testing.T) {
	s := MultiSite([]int{2, 3, 1}, func(a, b int) netsim.TrafficModel {
		return netsim.ConstantTraffic{Level: 0.1 * float64(a+b)}
	})
	if s.NumGroups() != 3 || s.NumProcs() != 6 {
		t.Fatalf("shape wrong: %s", s)
	}
	// Every pair is connected; traffic wired per pair.
	l01, err := s.Net.Between(0, 1)
	if err != nil {
		t.Fatalf("Between: %v", err)
	}
	l12, err := s.Net.Between(1, 2)
	if err != nil {
		t.Fatalf("Between: %v", err)
	}
	if l01.LoadAt(0) >= l12.LoadAt(0) {
		t.Error("per-pair traffic models not wired")
	}
	if !s.SameGroup(0, 1) || s.SameGroup(1, 2) {
		t.Error("group membership wrong")
	}
	assertPanics(t, "one site", func() { MultiSite([]int{4}, nil) })
}
