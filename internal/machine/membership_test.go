package machine

import "testing"

// memb builds a 2-group × 3-proc tracker with the default thresholds
// (suspect after 2, presume dead after 4, quorum 1).
func memb(t *testing.T, quorum int) (*System, *Membership) {
	t.Helper()
	s := WanPair(3, nil)
	return s, NewMembership(s, 0, 0, quorum)
}

func TestMembershipDefaults(t *testing.T) {
	_, m := memb(t, 0)
	if m.SuspectAfter != 2 || m.DeadAfter != 4 || m.Quorum != 1 {
		t.Fatalf("defaults wrong: suspect %d dead %d quorum %d", m.SuspectAfter, m.DeadAfter, m.Quorum)
	}
	// DeadAfter must stay above SuspectAfter even when misconfigured.
	s := WanPair(2, nil)
	m2 := NewMembership(s, 3, 2, 1)
	if m2.DeadAfter <= m2.SuspectAfter {
		t.Fatalf("DeadAfter %d not forced above SuspectAfter %d", m2.DeadAfter, m2.SuspectAfter)
	}
	for p := 0; p < s.NumProcs(); p++ {
		if m2.State(p) != StateAlive || !m2.Admitted(p) {
			t.Fatalf("proc %d not alive/admitted at start", p)
		}
		if m2.ReadmitStep(p) != -1 {
			t.Fatalf("proc %d has a readmit step before any rejoin", p)
		}
	}
}

func TestSuspicionLadder(t *testing.T) {
	_, m := memb(t, 0)
	g := 0
	p := 0 // in group 0

	m.NoteProbeFailure(g)
	if m.State(p) != StateAlive {
		t.Fatalf("one failure should not suspect: %v", m.State(p))
	}
	m.NoteProbeFailure(g)
	if m.State(p) != StateSuspected {
		t.Fatalf("suspicion 2 should suspect: %v", m.State(p))
	}
	if !m.Admitted(p) {
		t.Fatal("suspected procs stay admitted")
	}
	if m.SuspectTransitions != 3 { // all three procs of group 0
		t.Fatalf("SuspectTransitions = %d, want 3", m.SuspectTransitions)
	}

	m.NoteProbeFailure(g)
	m.NoteProbeFailure(g)
	if m.State(p) != StateDead || m.Cause(p) != CausePresumed {
		t.Fatalf("suspicion 4 should presume dead: %v/%v", m.State(p), m.Cause(p))
	}
	if m.Admitted(p) {
		t.Fatal("presumed-dead procs are not admitted")
	}
	if m.SuspectedToDead != 3 {
		t.Fatalf("SuspectedToDead = %d, want 3", m.SuspectedToDead)
	}

	// Suspicion is capped, so recovery is bounded.
	m.NoteProbeFailure(g)
	if m.Suspicion(g) != m.DeadAfter {
		t.Fatalf("suspicion %d not capped at %d", m.Suspicion(g), m.DeadAfter)
	}

	// A successful probe starts the rejoin, not a silent flip to alive.
	m.NoteProbeSuccess(g)
	if m.State(p) != StateRejoining {
		t.Fatalf("presumed-dead should rejoin on probe success: %v", m.State(p))
	}
	if m.Admitted(p) {
		t.Fatal("rejoining procs are not admitted yet")
	}
	m.CompleteRejoin(p, 7)
	if m.State(p) != StateAlive || m.Cause(p) != CauseNone || m.ReadmitStep(p) != 7 {
		t.Fatalf("rejoin did not complete: %v/%v readmit %d", m.State(p), m.Cause(p), m.ReadmitStep(p))
	}
	if m.Rejoins != 1 {
		t.Fatalf("Rejoins = %d, want 1", m.Rejoins)
	}
}

func TestSuspectedRecoversBelowThreshold(t *testing.T) {
	_, m := memb(t, 0)
	m.NoteProbeFailure(0)
	m.NoteProbeFailure(0)
	if m.State(0) != StateSuspected {
		t.Fatalf("setup: %v", m.State(0))
	}
	m.NoteProbeSuccess(0)
	if m.State(0) != StateAlive {
		t.Fatalf("suspected should clear to alive on probe success: %v", m.State(0))
	}
}

func TestBoundaryTickDecay(t *testing.T) {
	_, m := memb(t, 0)
	m.NoteProbeFailure(0)
	m.NoteProbeFailure(0)
	if m.State(0) != StateSuspected {
		t.Fatalf("setup: %v", m.State(0))
	}
	// Evidence was fresh this boundary: the first tick only clears the
	// flag, the next one decays.
	m.BoundaryTick()
	if m.Suspicion(0) != 2 {
		t.Fatalf("tick with fresh evidence decayed: %d", m.Suspicion(0))
	}
	m.BoundaryTick()
	if m.Suspicion(0) != 1 || m.State(0) != StateAlive {
		t.Fatalf("unprobed group should drain: suspicion %d state %v", m.Suspicion(0), m.State(0))
	}
	m.BoundaryTick()
	if m.Suspicion(0) != 0 {
		t.Fatalf("suspicion should reach 0, got %d", m.Suspicion(0))
	}
}

func TestCrashBeatsSuspicionAndKeepsCause(t *testing.T) {
	_, m := memb(t, 0)
	m.Crash(1)
	if m.State(1) != StateDead || m.Cause(1) != CauseCrash {
		t.Fatalf("crash not recorded: %v/%v", m.State(1), m.Cause(1))
	}
	// Probe success on the group must NOT revive a crash death — only
	// the engine (observing the fault schedule) may begin that rejoin.
	m.NoteProbeSuccess(0)
	if m.State(1) != StateDead {
		t.Fatalf("probe success revived a crash death: %v", m.State(1))
	}
	m.BeginRejoin(1)
	if m.State(1) != StateRejoining || m.Cause(1) != CauseCrash {
		t.Fatalf("rejoin should keep the crash cause: %v/%v", m.State(1), m.Cause(1))
	}
	// Thresholds must not touch an in-flight rejoin.
	m.NoteProbeFailure(0)
	m.NoteProbeFailure(0)
	if m.State(1) != StateRejoining {
		t.Fatalf("thresholds disturbed a rejoin in flight: %v", m.State(1))
	}
	if got := m.PendingRejoins(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("PendingRejoins = %v", got)
	}
	// BeginRejoin is a no-op on non-dead procs.
	m.BeginRejoin(2)
	if m.State(2) == StateRejoining {
		t.Fatal("BeginRejoin revived a proc that never died")
	}
}

func TestQuorum(t *testing.T) {
	s, m := memb(t, 3)
	if m.BelowQuorum(0) {
		t.Fatal("full group below quorum")
	}
	m.Crash(0)
	if m.NumAdmitted(0) != 2 || !m.BelowQuorum(0) {
		t.Fatalf("admitted %d, below %v", m.NumAdmitted(0), m.BelowQuorum(0))
	}
	if m.BelowQuorum(1) {
		t.Fatal("untouched group below quorum")
	}
	_ = s

	// Nil tracker: everyone admitted, no group degraded.
	var nilM *Membership
	if !nilM.Admitted(0) || nilM.BelowQuorum(0) {
		t.Fatal("nil tracker must admit everyone")
	}
	if nilM.PendingRejoins() != nil || nilM.ReadmitStep(0) != -1 {
		t.Fatal("nil tracker accessors wrong")
	}
	nilM.NoteProbeFailure(0)
	nilM.NoteProbeSuccess(0)
	nilM.BoundaryTick()
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s, m := memb(t, 2)
	m.Crash(0)
	m.BeginRejoin(0)
	m.NoteProbeFailure(1)
	m.NoteProbeFailure(1)
	m.CompleteRejoin(0, 3)
	m.CompleteRejoin(0, 3) // no-op: already alive

	m2 := NewMembership(s, 0, 0, 2)
	if err := m2.Restore(m.StateVec(), m.CauseVec(), m.ReadmitVec(), m.SuspicionVec(), m.EvidenceVec()); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	for p := 0; p < s.NumProcs(); p++ {
		if m2.State(p) != m.State(p) || m2.Cause(p) != m.Cause(p) || m2.ReadmitStep(p) != m.ReadmitStep(p) {
			t.Fatalf("proc %d state not restored", p)
		}
	}
	for g := 0; g < s.NumGroups(); g++ {
		if m2.Suspicion(g) != m.Suspicion(g) {
			t.Fatalf("group %d suspicion not restored", g)
		}
	}

	// Nil vectors (old checkpoint generations) leave the reset state.
	m3 := NewMembership(s, 0, 0, 2)
	if err := m3.Restore(nil, nil, nil, nil, nil); err != nil {
		t.Fatalf("Restore(nil...): %v", err)
	}
	if m3.State(0) != StateAlive {
		t.Fatalf("nil restore disturbed state: %v", m3.State(0))
	}

	// Length mismatches are corrupt checkpoints.
	if err := m3.Restore([]int{1}, nil, nil, nil, nil); err == nil {
		t.Fatal("short state vector accepted")
	}
	if err := m3.Restore(nil, nil, nil, nil, []bool{true}); err == nil {
		t.Fatal("short evidence vector accepted")
	}
}
