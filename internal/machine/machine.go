// Package machine describes the compute side of a distributed system
// in the paper's terms: a "group" is a set of processors with the same
// performance sharing an intra-connected network (a parallel machine
// or cluster); a distributed system is two or more groups joined by
// (possibly shared, possibly wide-area) inter-group links.
package machine

import (
	"fmt"
	"strings"

	"samrdlb/internal/netsim"
)

// Processor is one CPU of the distributed system.
type Processor struct {
	// ID is the global processor index.
	ID int
	// Group is the index of the group the processor belongs to.
	Group int
	// Perf is the relative performance weight the DLB scheme assigns:
	// a processor with Perf 2 advances cells twice as fast as one with
	// Perf 1. All processors in a group share the same Perf (the
	// paper's groups are homogeneous).
	Perf float64
}

// Group is a homogeneous set of processors sharing an internal
// network.
type Group struct {
	// ID is the group index.
	ID int
	// Name labels the group in reports ("ANL", "NCSA", ...).
	Name string
	// Procs lists the global IDs of the group's processors.
	Procs []int
}

// System is a distributed system: groups of processors plus the
// network fabric joining them.
type System struct {
	Procs  []Processor
	Groups []Group
	Net    *netsim.Fabric
	// FlopsPerSecond converts kernel flop counts into seconds for a
	// Perf=1 processor (the virtual-time compute model).
	FlopsPerSecond float64

	// health[p] is the runtime speed multiplier fault injection
	// applies to processor p: 1 healthy, (0, 1) slowed, 0 failed.
	// nil means every processor is healthy.
	health []float64
}

// GroupSpec describes one group for the builder.
type GroupSpec struct {
	Name  string
	Procs int
	Perf  float64
}

// New assembles a system from group specifications and a fabric. The
// fabric must have been built for len(specs) groups.
func New(specs []GroupSpec, net *netsim.Fabric, flopsPerSecond float64) *System {
	if net != nil && net.NumGroups() != len(specs) {
		panic(fmt.Sprintf("machine.New: fabric has %d groups, specs have %d", net.NumGroups(), len(specs)))
	}
	if flopsPerSecond <= 0 {
		panic("machine.New: flopsPerSecond must be positive")
	}
	s := &System{Net: net, FlopsPerSecond: flopsPerSecond}
	id := 0
	for gi, spec := range specs {
		if spec.Procs <= 0 {
			panic(fmt.Sprintf("machine.New: group %d has no processors", gi))
		}
		perf := spec.Perf
		if perf <= 0 {
			perf = 1
		}
		g := Group{ID: gi, Name: spec.Name}
		for p := 0; p < spec.Procs; p++ {
			s.Procs = append(s.Procs, Processor{ID: id, Group: gi, Perf: perf})
			g.Procs = append(g.Procs, id)
			id++
		}
		s.Groups = append(s.Groups, g)
	}
	return s
}

// NumProcs returns the total processor count.
func (s *System) NumProcs() int { return len(s.Procs) }

// NumGroups returns the group count.
func (s *System) NumGroups() int { return len(s.Groups) }

// GroupOf returns the group index owning processor p.
func (s *System) GroupOf(p int) int { return s.Procs[p].Group }

// ProcsInGroup returns the processor IDs of group g.
func (s *System) ProcsInGroup(g int) []int { return s.Groups[g].Procs }

// Perf returns processor p's relative performance weight.
func (s *System) Perf(p int) float64 { return s.Procs[p].Perf }

// GroupPerf returns the summed performance weight of group g — the
// n_A × p_A term in the paper's weight-proportional partitioning.
func (s *System) GroupPerf(g int) float64 {
	var sum float64
	for _, p := range s.Groups[g].Procs {
		sum += s.Procs[p].Perf
	}
	return sum
}

// TotalPerf returns the summed performance weight of all processors —
// the P in the paper's efficiency definition (relative to a Perf=1
// sequential reference).
func (s *System) TotalPerf() float64 {
	var sum float64
	for _, p := range s.Procs {
		sum += p.Perf
	}
	return sum
}

// SetHealth records processor p's runtime speed multiplier: 1 fully
// healthy, a fraction in (0, 1) for an injected slowdown, 0 for a
// failed processor. The DLB's static Perf weights are untouched —
// health is what actually happened, Perf is what the scheme believes.
func (s *System) SetHealth(p int, factor float64) {
	if factor < 0 || factor > 1 {
		panic(fmt.Sprintf("machine.SetHealth: factor %g out of [0, 1]", factor))
	}
	if s.health == nil {
		s.health = make([]float64, len(s.Procs))
		for i := range s.health {
			s.health[i] = 1
		}
	}
	s.health[p] = factor
}

// HealthOf returns processor p's current health factor (1 when no
// fault has ever been recorded).
func (s *System) HealthOf(p int) float64 {
	if s.health == nil {
		return 1
	}
	return s.health[p]
}

// Alive reports whether processor p has not failed.
func (s *System) Alive(p int) bool { return s.HealthOf(p) > 0 }

// EffectivePerf returns the processor's real current speed: the
// static Perf weight times the health factor.
func (s *System) EffectivePerf(p int) float64 {
	return s.Procs[p].Perf * s.HealthOf(p)
}

// AliveProcs returns the IDs of every non-failed processor, ascending.
func (s *System) AliveProcs() []int {
	out := make([]int, 0, len(s.Procs))
	for p := range s.Procs {
		if s.Alive(p) {
			out = append(out, p)
		}
	}
	return out
}

// AliveInGroup returns the non-failed processors of group g, ascending.
func (s *System) AliveInGroup(g int) []int {
	var out []int
	for _, p := range s.Groups[g].Procs {
		if s.Alive(p) {
			out = append(out, p)
		}
	}
	return out
}

// NumAlive returns the count of non-failed processors.
func (s *System) NumAlive() int {
	if s.health == nil {
		return len(s.Procs)
	}
	n := 0
	for p := range s.Procs {
		if s.Alive(p) {
			n++
		}
	}
	return n
}

// SameGroup reports whether processors a and b share a group (their
// communication is "local" in the paper's terminology).
func (s *System) SameGroup(a, b int) bool {
	return s.Procs[a].Group == s.Procs[b].Group
}

// LinkBetween returns the link used by a message from processor a to
// processor b; the error reports a missing route.
func (s *System) LinkBetween(a, b int) (*netsim.Link, error) {
	return s.Net.Between(s.Procs[a].Group, s.Procs[b].Group)
}

// ComputeTime returns the virtual time processor p needs to spend
// `flops` floating point operations.
func (s *System) ComputeTime(p int, flops float64) float64 {
	return flops / (s.Procs[p].Perf * s.FlopsPerSecond)
}

func (s *System) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "system{%d groups, %d procs:", s.NumGroups(), s.NumProcs())
	for _, g := range s.Groups {
		fmt.Fprintf(&b, " %s×%d", g.Name, len(g.Procs))
	}
	b.WriteString("}")
	return b.String()
}

// DefaultFlopsPerSecond is the nominal speed of a Perf=1 processor.
// A 250 MHz R10000 peaks at 500 Mflops but real SAMR hydro codes
// sustain an order of magnitude less; 50 Mflops puts virtual times in
// the same regime as the paper's plots.
const DefaultFlopsPerSecond = 50e6

// Origin2000 returns a single parallel machine: one group of n
// processors joined by the Origin's internal interconnect — the
// paper's "parallel system" configuration.
func Origin2000(name string, n int) *System {
	fab := netsim.NewFabric(1)
	fab.SetIntra(0, netsim.OriginInterconnect())
	return New([]GroupSpec{{Name: name, Procs: n, Perf: 1}}, fab, DefaultFlopsPerSecond)
}

// LanPair returns two n-processor machines joined by a shared Gigabit
// Ethernet LAN — the paper's ANL+ANL system used for AMR64.
func LanPair(n int, traffic netsim.TrafficModel) *System {
	fab := netsim.NewFabric(2)
	fab.SetIntra(0, netsim.OriginInterconnect())
	fab.SetIntra(1, netsim.OriginInterconnect())
	fab.SetInter(0, 1, netsim.GigabitLAN(traffic))
	return New([]GroupSpec{
		{Name: "ANL-a", Procs: n, Perf: 1},
		{Name: "ANL-b", Procs: n, Perf: 1},
	}, fab, DefaultFlopsPerSecond)
}

// WanPair returns two n-processor machines joined by the shared MREN
// OC-3 WAN — the paper's ANL+NCSA system used for ShockPool3D.
func WanPair(n int, traffic netsim.TrafficModel) *System {
	fab := netsim.NewFabric(2)
	fab.SetIntra(0, netsim.OriginInterconnect())
	fab.SetIntra(1, netsim.OriginInterconnect())
	fab.SetInter(0, 1, netsim.MrenWAN(traffic))
	return New([]GroupSpec{
		{Name: "ANL", Procs: n, Perf: 1},
		{Name: "NCSA", Procs: n, Perf: 1},
	}, fab, DefaultFlopsPerSecond)
}

// Heterogeneous returns a two-group system whose second group runs at
// the given relative speed — the processor-heterogeneity case the
// paper's scheme supports but could not evaluate for lack of testbeds.
func Heterogeneous(nA, nB int, perfB float64, wan netsim.TrafficModel) *System {
	fab := netsim.NewFabric(2)
	fab.SetIntra(0, netsim.OriginInterconnect())
	fab.SetIntra(1, netsim.OriginInterconnect())
	fab.SetInter(0, 1, netsim.MrenWAN(wan))
	return New([]GroupSpec{
		{Name: "fast", Procs: nA, Perf: 1},
		{Name: "slow", Procs: nB, Perf: perfB},
	}, fab, DefaultFlopsPerSecond)
}

// MultiSite returns a distributed system of len(ns) homogeneous
// groups, each pair joined by its own shared WAN link — the "more
// heterogeneous machines" extension the paper lists as future work.
// traffic, when non-nil, supplies the background model per group pair.
func MultiSite(ns []int, traffic func(a, b int) netsim.TrafficModel) *System {
	if len(ns) < 2 {
		panic("machine.MultiSite: need at least two sites")
	}
	fab := netsim.NewFabric(len(ns))
	specs := make([]GroupSpec, len(ns))
	for i, n := range ns {
		fab.SetIntra(i, netsim.OriginInterconnect())
		specs[i] = GroupSpec{Name: fmt.Sprintf("site-%d", i), Procs: n, Perf: 1}
	}
	for a := 0; a < len(ns); a++ {
		for b := a + 1; b < len(ns); b++ {
			var tm netsim.TrafficModel
			if traffic != nil {
				tm = traffic(a, b)
			}
			fab.SetInter(a, b, netsim.MrenWAN(tm))
		}
	}
	return New(specs, fab, DefaultFlopsPerSecond)
}
