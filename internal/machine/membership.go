package machine

import "fmt"

// ProcState is a processor's position in the elastic-membership state
// machine: alive → suspected → dead → rejoining → alive. Suspicion is
// evidence-driven (probe retry exhaustion against the proc's group);
// death is either scripted truth (a ProcFailure observed by the
// engine, CauseCrash) or accumulated suspicion (CausePresumed). A dead
// processor that shows signs of life — a scripted recovery, the end of
// a bounded failure window, or suspicion draining away — moves to
// rejoining, and stays there (owning no new work) until the engine
// re-admits it at a global-balance boundary.
type ProcState int

// Membership states.
const (
	StateAlive ProcState = iota
	StateSuspected
	StateDead
	StateRejoining
)

func (s ProcState) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspected:
		return "suspected"
	case StateDead:
		return "dead"
	case StateRejoining:
		return "rejoining"
	default:
		return "unknown"
	}
}

// DeathCause distinguishes how a processor reached StateDead: a crash
// observed from the fault schedule loses the proc's grids (checkpoint
// recovery reassigns them), while a presumed death from probe
// suspicion keeps them — the proc may well still be computing behind
// an unreachable network, exactly like a quarantined group.
type DeathCause int

// Death causes.
const (
	CauseNone DeathCause = iota
	CauseCrash
	CausePresumed
)

func (c DeathCause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseCrash:
		return "crash"
	case CausePresumed:
		return "presumed"
	default:
		return "unknown"
	}
}

// Membership tracks the elastic-membership state machine over a
// System's processors. Suspicion accumulates per group (probes travel
// group-to-group, so the evidence cannot single out a processor) and
// decays by one per boundary without fresh evidence, so a group that
// stops being probed — e.g. because suspicion itself degraded the run
// to local-only balancing — recovers instead of deadlocking.
//
// All transitions are pure functions of the sequence of Note*/Tick
// calls, keeping replay byte-identical.
type Membership struct {
	sys     *System
	state   []ProcState
	cause   []DeathCause
	readmit []int // step at which the proc was last re-admitted (-1 = never)

	suspicion []int  // per group: consecutive-evidence suspicion level
	evidence  []bool // per group: fresh probe evidence since the last tick

	// SuspectAfter and DeadAfter are the suspicion thresholds: a group
	// whose suspicion reaches SuspectAfter has its alive procs marked
	// suspected; at DeadAfter the suspected procs are presumed dead.
	SuspectAfter, DeadAfter int
	// Quorum is the minimum admitted processors a group needs to take
	// part in global balancing; below it the group degrades to
	// local-only decisions via the quarantine path.
	Quorum int

	// Counters, exposed through engine.Result.
	SuspectTransitions  int // alive → suspected
	SuspectedToDead     int // suspected → presumed dead
	Rejoins             int // completed re-admissions
	RejoinCatchups      int // forced catch-up evaluations armed by rejoins
	QuorumDegradedSteps int // boundaries at which some group was below quorum
}

// NewMembership builds a tracker with every processor alive.
// Threshold or quorum values ≤ 0 fall back to defaults (suspect after
// 2, presume dead after 4, quorum 1).
func NewMembership(sys *System, suspectAfter, deadAfter, quorum int) *Membership {
	if suspectAfter <= 0 {
		suspectAfter = 2
	}
	if deadAfter <= suspectAfter {
		deadAfter = suspectAfter + 2
	}
	if quorum <= 0 {
		quorum = 1
	}
	m := &Membership{
		sys:          sys,
		state:        make([]ProcState, sys.NumProcs()),
		cause:        make([]DeathCause, sys.NumProcs()),
		readmit:      make([]int, sys.NumProcs()),
		suspicion:    make([]int, sys.NumGroups()),
		evidence:     make([]bool, sys.NumGroups()),
		SuspectAfter: suspectAfter,
		DeadAfter:    deadAfter,
		Quorum:       quorum,
	}
	for p := range m.readmit {
		m.readmit[p] = -1
	}
	return m
}

// State returns processor p's membership state.
func (m *Membership) State(p int) ProcState { return m.state[p] }

// Cause returns how processor p reached StateDead (or the cause of the
// rejoin in flight); CauseNone for procs that never died.
func (m *Membership) Cause(p int) DeathCause { return m.cause[p] }

// Admitted reports whether processor p may own work: alive and
// suspected procs are admitted, dead and rejoining ones are not. A nil
// Membership admits everyone (fault-free runs never build a tracker).
func (m *Membership) Admitted(p int) bool {
	if m == nil {
		return true
	}
	return m.state[p] == StateAlive || m.state[p] == StateSuspected
}

// NumAdmitted returns how many of group g's processors are admitted.
func (m *Membership) NumAdmitted(g int) int {
	n := 0
	for _, p := range m.sys.ProcsInGroup(g) {
		if m.Admitted(p) {
			n++
		}
	}
	return n
}

// BelowQuorum reports whether group g has fewer admitted processors
// than the quorum. Nil-safe: no tracker, no degradation.
func (m *Membership) BelowQuorum(g int) bool {
	if m == nil {
		return false
	}
	return m.NumAdmitted(g) < m.Quorum
}

// Suspicion returns group g's current suspicion level.
func (m *Membership) Suspicion(g int) int { return m.suspicion[g] }

// ReadmitStep returns the level-0 step at which processor p last
// completed a rejoin, or -1 if it never rejoined.
func (m *Membership) ReadmitStep(p int) int {
	if m == nil {
		return -1
	}
	return m.readmit[p]
}

// Crash records a scripted processor failure observed by the engine:
// p is dead with its grids lost, whatever suspicion said.
func (m *Membership) Crash(p int) {
	m.state[p] = StateDead
	m.cause[p] = CauseCrash
}

// BeginRejoin moves a dead processor to StateRejoining: it is healthy
// again (scripted recovery or the end of a bounded failure window) but
// owns no new work until the engine re-admits it. The death cause is
// kept so the oracle knows whether the proc must be empty. No-op for
// procs that are not dead.
func (m *Membership) BeginRejoin(p int) {
	if m.state[p] != StateDead {
		return
	}
	m.state[p] = StateRejoining
}

// PendingRejoins returns the processors currently in StateRejoining,
// ascending. Nil when none (and on a nil tracker).
func (m *Membership) PendingRejoins() []int {
	if m == nil {
		return nil
	}
	var out []int
	for p, s := range m.state {
		if s == StateRejoining {
			out = append(out, p)
		}
	}
	return out
}

// CompleteRejoin re-admits a rejoining processor at level-0 step: it
// is alive again, its death cause is cleared, and the step is recorded
// so the oracle can grant a balance-tolerance grace window.
func (m *Membership) CompleteRejoin(p, step int) {
	if m.state[p] != StateRejoining {
		return
	}
	m.state[p] = StateAlive
	m.cause[p] = CauseNone
	m.readmit[p] = step
	m.Rejoins++
}

// NoteProbeFailure records that a global-phase probe touching group g
// exhausted its retries: suspicion rises and thresholds re-apply.
func (m *Membership) NoteProbeFailure(g int) {
	if m == nil {
		return
	}
	m.suspicion[g]++
	if m.suspicion[g] > m.DeadAfter {
		m.suspicion[g] = m.DeadAfter
	}
	m.evidence[g] = true
	m.applyThresholds(g)
}

// NoteProbeSuccess records a successful probe touching group g: the
// group is reachable, so suspicion resets and thresholds re-apply
// (suspected procs recover, presumed-dead ones start rejoining).
func (m *Membership) NoteProbeSuccess(g int) {
	if m == nil {
		return
	}
	m.suspicion[g] = 0
	m.evidence[g] = true
	m.applyThresholds(g)
}

// BoundaryTick advances the per-boundary suspicion decay: groups with
// no fresh probe evidence since the last tick lose one suspicion
// level, so a group nobody probes anymore (e.g. because its own
// suspicion degraded the run) drains back towards admission instead of
// deadlocking. Evidence flags reset for the next boundary.
func (m *Membership) BoundaryTick() {
	if m == nil {
		return
	}
	for g := range m.suspicion {
		if !m.evidence[g] && m.suspicion[g] > 0 {
			m.suspicion[g]--
			m.applyThresholds(g)
		}
		m.evidence[g] = false
	}
}

// applyThresholds re-derives the suspicion-driven states of group g's
// processors from its current suspicion level. Crash deaths and
// in-flight rejoins are evidence the thresholds must not override:
// only the alive ↔ suspected ↔ presumed-dead ladder is touched, and a
// presumed-dead proc whose suspicion drops below DeadAfter starts
// rejoining (it needs the engine's re-admission, not a silent flip).
func (m *Membership) applyThresholds(g int) {
	s := m.suspicion[g]
	for _, p := range m.sys.ProcsInGroup(g) {
		switch {
		case s >= m.DeadAfter:
			if m.state[p] == StateSuspected {
				m.state[p] = StateDead
				m.cause[p] = CausePresumed
				m.SuspectedToDead++
			}
		case s >= m.SuspectAfter:
			if m.state[p] == StateAlive {
				m.state[p] = StateSuspected
				m.SuspectTransitions++
			}
			if m.state[p] == StateDead && m.cause[p] == CausePresumed {
				m.state[p] = StateRejoining
			}
		default:
			if m.state[p] == StateSuspected {
				m.state[p] = StateAlive
			}
			if m.state[p] == StateDead && m.cause[p] == CausePresumed {
				m.state[p] = StateRejoining
			}
		}
	}
}

// Snapshot/restore support for durable checkpoints: plain int/bool
// vectors so ckpt.Meta stays gob-friendly and versionless fields
// decode as empty on old generations.

// StateVec returns a copy of the per-proc states as ints.
func (m *Membership) StateVec() []int {
	out := make([]int, len(m.state))
	for i, s := range m.state {
		out[i] = int(s)
	}
	return out
}

// CauseVec returns a copy of the per-proc death causes as ints.
func (m *Membership) CauseVec() []int {
	out := make([]int, len(m.cause))
	for i, c := range m.cause {
		out[i] = int(c)
	}
	return out
}

// ReadmitVec returns a copy of the per-proc re-admission steps.
func (m *Membership) ReadmitVec() []int {
	out := make([]int, len(m.readmit))
	copy(out, m.readmit)
	return out
}

// SuspicionVec returns a copy of the per-group suspicion levels.
func (m *Membership) SuspicionVec() []int {
	out := make([]int, len(m.suspicion))
	copy(out, m.suspicion)
	return out
}

// EvidenceVec returns a copy of the per-group fresh-evidence flags.
func (m *Membership) EvidenceVec() []bool {
	out := make([]bool, len(m.evidence))
	copy(out, m.evidence)
	return out
}

// Restore overwrites the tracker's state from checkpoint vectors.
// Vectors may be nil (old generations): the corresponding state is
// left at its reset value. Length mismatches are a corrupt checkpoint.
func (m *Membership) Restore(states, causes, readmits, suspicion []int, evidence []bool) error {
	if err := restoreInts("states", states, len(m.state), func(i, v int) { m.state[i] = ProcState(v) }); err != nil {
		return err
	}
	if err := restoreInts("causes", causes, len(m.cause), func(i, v int) { m.cause[i] = DeathCause(v) }); err != nil {
		return err
	}
	if err := restoreInts("readmits", readmits, len(m.readmit), func(i, v int) { m.readmit[i] = v }); err != nil {
		return err
	}
	if err := restoreInts("suspicion", suspicion, len(m.suspicion), func(i, v int) { m.suspicion[i] = v }); err != nil {
		return err
	}
	if evidence != nil {
		if len(evidence) != len(m.evidence) {
			return fmt.Errorf("membership: evidence vector has %d groups, system has %d", len(evidence), len(m.evidence))
		}
		copy(m.evidence, evidence)
	}
	return nil
}

func restoreInts(name string, src []int, want int, set func(i, v int)) error {
	if src == nil {
		return nil
	}
	if len(src) != want {
		return fmt.Errorf("membership: %s vector has %d entries, want %d", name, len(src), want)
	}
	for i, v := range src {
		set(i, v)
	}
	return nil
}
