package engine

import (
	"testing"

	"samrdlb/internal/amr"
	"samrdlb/internal/fault"
	"samrdlb/internal/geom"
	"samrdlb/internal/machine"
	"samrdlb/internal/vclock"
	"samrdlb/internal/workload"
)

func TestLedgerOracleQuickstartConfig(t *testing.T) {
	// The examples/quickstart scenario with the ledger oracle armed:
	// after every hierarchy mutation event the incremental aggregates
	// are verified against a full recomputation (panic on divergence),
	// and the recorder's Eq. 2 group sums are checked at every
	// global-balance decision.
	if testing.Short() {
		t.Skip("oracle mode is O(grids) per event")
	}
	sys := machine.WanPair(4, nil)
	r := New(sys, workload.NewShockPool3D(32, 2), Options{
		Steps: 10, MaxLevel: 2, LedgerCheck: true,
	})
	res := r.Run()
	if res.LedgerEvents == 0 {
		t.Error("a full run must flow mutation events through the ledger")
	}
	if res.LedgerRebuilds != 0 {
		t.Errorf("fault-free run should never rebuild the ledger, got %d", res.LedgerRebuilds)
	}
	if err := r.Ledger().Verify(); err != nil {
		t.Errorf("final ledger state diverged: %v", err)
	}
	if err := r.rec.VerifyGroups(sys); err != nil {
		t.Errorf("final recorder group aggregates diverged: %v", err)
	}
}

func TestLedgerOracleFaultConfig(t *testing.T) {
	// The examples/faults scenario under the oracle: an outage, lossy
	// probes and a processor failure whose checkpoint recovery swaps in
	// a fresh hierarchy — the ledger must rebuild and stay exact
	// through the repartition and the rest of the run.
	bt := boundaryClocks(t, 8)
	r := New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 8, MaxLevel: 1, Faults: wanScenario(t, bt), LedgerCheck: true,
	})
	res := r.Run()
	if res.Recoveries != 1 {
		t.Fatalf("scenario should recover exactly once, got %d", res.Recoveries)
	}
	if res.LedgerRebuilds != 1 {
		t.Errorf("recovery must rebuild the ledger exactly once, got %d", res.LedgerRebuilds)
	}
	if res.LedgerEvents == 0 {
		t.Error("ledger events not counted across the rebuild")
	}
	if err := r.Ledger().Verify(); err != nil {
		t.Errorf("ledger diverged after recovery: %v", err)
	}
}

func TestLedgerCountersReported(t *testing.T) {
	r := New(machine.WanPair(2, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 3, MaxLevel: 1,
	})
	res := r.Run()
	if res.LedgerEvents == 0 {
		t.Error("LedgerEvents missing from the result")
	}
	if res.LedgerRebuilds != 0 {
		t.Errorf("LedgerRebuilds = %d on a fault-free run", res.LedgerRebuilds)
	}
	if res.LedgerEvents != r.Ledger().EventCount() {
		t.Errorf("result reports %d events, ledger holds %d", res.LedgerEvents, r.Ledger().EventCount())
	}
}

func TestSingleGroupRedistributionChargedWithDelta(t *testing.T) {
	// One group, grossly imbalanced level 0 (everything on proc 0,
	// injected via Resume): the degenerate global phase must book the
	// moves as Redistribution — not LocalComm — and record δ for the
	// next Eq. 1 evaluation.
	h := amr.New(geom.UnitCube(16), 2, 1, 1, false, "q")
	for x := 0; x < 16; x += 4 {
		h.AddGrid(0, geom.BoxFromShape(geom.Index{x, 0, 0}, geom.Index{4, 16, 16}), 0, amr.NoGrid)
	}
	r := New(machine.Origin2000("ANL", 4), workload.NewShockPool3D(16, 2), Options{
		Steps: 2, MaxLevel: 1, Resume: h, LedgerCheck: true,
	})
	res := r.Run()
	if res.GlobalRedists < 1 {
		t.Fatalf("imbalanced single group must redistribute, got %d (evals %d)",
			res.GlobalRedists, res.GlobalEvals)
	}
	if res.Breakdown[vclock.Redistribution] <= 0 {
		t.Error("single-group moves must be charged to the Redistribution phase")
	}
	if r.rec.Delta() <= 0 {
		t.Error("single-group redistribution must record δ")
	}
}

func TestLedgerSurvivesRegridAndSplitStorm(t *testing.T) {
	// A deeper run whose regrids clear and rebuild fine levels every
	// step while global redistributions split level-0 grids: the
	// invariants the decision path reads must match a recompute at
	// every level-0 boundary.
	sched, err := fault.NewSchedule(3)
	if err != nil {
		t.Fatal(err)
	}
	r := New(machine.WanPair(3, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 6, MaxLevel: 2, Faults: sched, LedgerCheck: true,
		AfterStep: func(step int, rr *Runner) {
			if err := rr.Ledger().Verify(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		},
	})
	r.Run()
}
