package engine_test

import (
	"fmt"
	"reflect"
	"testing"

	"samrdlb/internal/engine"
	"samrdlb/internal/scenario"
)

// TestResumeByteIdenticalGeneratedConfigs extends the byte-identity
// guarantee from the fixed configurations of ckpt_resume_test.go to
// generator-produced ones: for scenarios drawn from the property
// harness, a run interrupted at every reachable checkpoint boundary
// and resumed from the durable store yields a Result deeply equal to
// the uninterrupted run's. Fault schedules and forecasting are
// excluded — the NWS history restarting empty on resume is a
// documented engine limitation, and the scenario package encodes the
// same exclusion in Normalize.
func TestResumeByteIdenticalGeneratedConfigs(t *testing.T) {
	for _, seed := range []int64{3, 8, 21, 34} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			sc := scenario.Generate(seed)
			sc.Faults = nil
			sc.FaultSeed = 0
			sc.UseForecast = false
			sc.ResumeCut = -1
			if sc.Steps <= sc.CkptInterval {
				sc.Steps = sc.CkptInterval + 2
			}
			sc.Normalize()

			opt, err := sc.EngineOptions(nil)
			if err != nil {
				t.Fatal(err)
			}
			// The uninterrupted leg also writes durable generations:
			// the writes charge the virtual clock, so both legs must
			// pay them for the Results to be comparable.
			opt.CheckpointDir = t.TempDir()
			want := engine.New(sc.System(), sc.Driver(), opt).Run()

			for stop := sc.CkptInterval; stop < sc.Steps; stop++ {
				dir := t.TempDir()
				first, _ := sc.EngineOptions(nil)
				first.CheckpointDir = dir
				first.Steps = stop
				engine.New(sc.System(), sc.Driver(), first).Run()

				rest, _ := sc.EngineOptions(nil)
				rest.CheckpointDir = dir
				r, report, err := engine.Resume(sc.System(), sc.Driver(), rest)
				if err != nil {
					t.Fatalf("stop=%d: %v (scenario %s)", stop, err, sc.Encode())
				}
				if len(report.Skipped) != 0 {
					t.Errorf("stop=%d: skipped generations %+v", stop, report.Skipped)
				}
				got := r.Run()
				if !reflect.DeepEqual(got, want) {
					t.Errorf("stop=%d: resumed result differs (scenario %s)\n got: %+v\nwant: %+v",
						stop, sc.Encode(), got, want)
				}
			}
		})
	}
}
