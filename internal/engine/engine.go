// Package engine executes a SAMR application on a modelled
// distributed system, implementing the control flow of the paper's
// Figure 4: recursive subcycled integration over the grid hierarchy,
// local load balancing after each finer-level time step, and the
// global imbalance check — probe, gain/cost evaluation, possible
// redistribution — after each level-0 time step.
//
// Time accounting is bulk-synchronous virtual time (package vclock):
// each level step charges per-processor compute time (cells × kernel
// flops / processor speed) and per-link communication time
// (Tcomm = α + β_eff·L over the ghost-exchange plan, aggregated per
// processor pair). The numerics themselves are real: when Options
// .WithData is set, patch kernels genuinely advance the solution, in
// parallel across host cores.
package engine

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"time"

	"samrdlb/internal/amr"
	"samrdlb/internal/ckpt"
	"samrdlb/internal/cluster"
	"samrdlb/internal/dlb"
	"samrdlb/internal/fault"
	"samrdlb/internal/geom"
	"samrdlb/internal/load"
	"samrdlb/internal/machine"
	"samrdlb/internal/metrics"
	"samrdlb/internal/mpx"
	"samrdlb/internal/netsim"
	"samrdlb/internal/solver"
	"samrdlb/internal/trace"
	"samrdlb/internal/vclock"
	"samrdlb/internal/workload"
)

// Options configures a run.
type Options struct {
	// Steps is the number of level-0 time steps.
	Steps int
	// Balancer is the DLB scheme under test.
	Balancer dlb.Balancer
	// Gamma is the γ threshold (0 = paper default 2.0).
	Gamma float64
	// ImbalanceEps is the imbalance trigger (0 = default 0.05).
	ImbalanceEps float64
	// MaxLevel is the deepest refinement level (default 2).
	MaxLevel int
	// NGhost is the ghost width (default 1).
	NGhost int
	// Regrid are the clustering parameters (zero value = defaults).
	Regrid amr.RegridParams
	// RegridInterval regrids every k level-0 steps (default 1).
	RegridInterval int
	// GridsPerProc controls the initial level-0 decomposition
	// granularity (default 4 boxes per processor).
	GridsPerProc int
	// WithData makes the run carry and advance real field data.
	WithData bool
	// UseForecast enables NWS-style forecasting of probe measurements
	// in the global gain/cost evaluation (the paper's future work).
	UseForecast bool
	// Reflux enables conservative flux correction at coarse–fine
	// boundaries for kernels that expose face fluxes (requires
	// WithData; not supported together with UseMPX).
	Reflux bool
	// GradientField, when non-empty, switches regridding to
	// data-driven flagging: cells where the named field's gradient
	// exceeds GradientThreshold are refined, instead of the driver's
	// geometric schedule (requires WithData).
	GradientField     string
	GradientThreshold float64
	// UseMPX routes the real data motion through the mpx
	// message-passing runtime with one rank per simulated processor
	// (requires WithData): kernels and exchanges then execute
	// rank-parallel, as ENZO does over MPI.
	UseMPX bool
	// Transport selects how rank messages travel when UseMPX is set.
	// "" or "loopback" keeps the single in-process world; "tcp" runs
	// each processor group as its own shard world behind a real
	// localhost socket transport (CRC32-framed wire messages), while
	// the netsim link model remains the sole timing authority. The two
	// modes produce identical Results for fault-free runs.
	Transport string
	// WireFault, when non-nil, injects deterministic send failures
	// into the tcp transport (a pure function of (src, dst, attempt)).
	// A faulted exchange phase falls back to the in-memory data path
	// and the failure feeds membership suspicion like a failed probe.
	WireFault mpx.WireFault
	// WireTimeout bounds every wire read and write on the tcp/worker
	// transports and enables heartbeat frames, so a dead or stopped
	// peer surfaces as a transport fault within the timeout instead of
	// blocking a phase forever (0 disables deadlines).
	WireTimeout time.Duration
	// Worker configures a worker-process shard (Transport=worker):
	// this process hosts exactly one group's ranks behind an endpoint
	// already connected to its peer workers, while replicating the
	// deterministic control plane so every worker computes the same
	// Result.
	Worker *WorkerWire
	// BeforeCheckpointWrite, when non-nil, runs immediately before
	// each durable generation write (chaos harnesses use it to kill a
	// worker mid-checkpoint). seq is the monotone write-attempt index.
	BeforeCheckpointWrite func(step, seq int)
	// Pool runs patch kernels in parallel (nil = sequential).
	Pool *solver.Pool
	// Trace, when non-nil, records structured events.
	Trace *trace.Recorder
	// History, when non-nil, collects per-step time series (cells,
	// imbalance, step time, remote comm).
	History *metrics.History
	// AfterStep, when non-nil, runs after every level-0 step (used by
	// tests to check invariants continuously and by tools to stream
	// state).
	AfterStep func(step int, r *Runner)
	// Invariants, when non-nil, fires after every structural phase of
	// the run — regrid, local balance, global balance, checkpoint,
	// restore — with a snapshot of what just happened (see PhaseInfo).
	// It is the attachment point for the paper-invariant oracle in
	// internal/invariant; callbacks must not mutate the runner.
	Invariants func(*PhaseInfo)
	// Resume, when non-nil, starts from a checkpointed hierarchy
	// (amr.Load) instead of a fresh decomposition; ResumeTime sets the
	// simulated time the checkpoint was taken at.
	Resume     *amr.Hierarchy
	ResumeTime float64
	// Faults, when non-nil, injects the scripted fault schedule into
	// the run: link outages and degradations attach to the fabric,
	// probe losses trigger the retry/backoff/forecast path, processor
	// slowdowns and failures flow into the health vector, and whole
	// groups can be quarantined. The run then checkpoints the
	// hierarchy every CheckpointInterval level-0 steps and recovers
	// from the last checkpoint when a processor fails.
	Faults *fault.Schedule
	// CheckpointInterval is the number of level-0 steps between
	// periodic recovery checkpoints (default 4; used when Faults is
	// set and for the durable store when CheckpointDir is set).
	CheckpointInterval int
	// CheckpointDir, when non-empty, enables the durable generational
	// checkpoint store (internal/ckpt): every CheckpointInterval
	// level-0 steps the engine writes its full state — hierarchy,
	// virtual clock, counters, fault bookkeeping — to a new CRC32-
	// framed on-disk generation, making an interrupted run resumable
	// via Resume. In-memory behaviour is unchanged when unset.
	CheckpointDir string
	// CheckpointKeep bounds the retained on-disk generations
	// (default 3; only used with CheckpointDir).
	CheckpointKeep int
	// Retry bounds the probe retry/backoff loop of the global phase
	// (zero value = netsim defaults).
	Retry netsim.RetryPolicy
	// GroupQuorum is the minimum admitted processors a group needs to
	// take part in global balancing under elastic membership; below it
	// the group degrades to local-only decisions via the quarantine
	// path (0 = default 1, i.e. a group degrades only when every
	// member is dead or rejoining). Only meaningful with Faults.
	GroupQuorum int
	// SuspectAfter and DeadAfter are the membership suspicion
	// thresholds: after SuspectAfter consecutive probe failures
	// against a group its processors are suspected, after DeadAfter
	// they are presumed dead (0 = defaults 2 and 4). Only meaningful
	// with Faults.
	SuspectAfter int
	DeadAfter    int
	// LedgerCheck enables the load-ledger debug oracle: after every
	// hierarchy mutation event the incremental aggregates are verified
	// against a full recomputation (panic on divergence), and the
	// recorder's group aggregates are checked at each global-balance
	// decision. Turns O(changes) bookkeeping into O(grids) per event —
	// for tests and -ledgercheck runs only.
	LedgerCheck bool
	// DataCheck enables the data-motion debug oracle: every planned
	// ghost fill and restriction is re-run through the scan-based
	// baseline and compared bitwise (panic on divergence). Roughly
	// doubles the data-path cost — for tests and -datacheck runs only.
	DataCheck bool
	// PlanCheck enables the exchange-plan debug oracle: every served
	// (indexed, incrementally patched) plan is re-derived through the
	// retained O(n²) scan planners and compared bitwise (panic on
	// divergence). Structure-only and deterministic, so unlike
	// DataCheck it is safe on multi-process worker shards — for tests
	// and -plancheck runs only.
	PlanCheck bool
}

func (o *Options) setDefaults() {
	if o.Steps <= 0 {
		o.Steps = 8
	}
	if o.Balancer == nil {
		o.Balancer = dlb.DistributedDLB{}
	}
	if o.MaxLevel < 0 {
		panic("engine: negative MaxLevel")
	}
	if o.MaxLevel == 0 {
		o.MaxLevel = 2
	}
	if o.NGhost <= 0 {
		o.NGhost = 1
	}
	if o.Regrid.Cluster.MinEfficiency == 0 {
		o.Regrid = amr.DefaultRegridParams()
	}
	if o.RegridInterval <= 0 {
		o.RegridInterval = 1
	}
	if o.GridsPerProc <= 0 {
		o.GridsPerProc = 4
	}
	if o.CheckpointInterval <= 0 {
		o.CheckpointInterval = 4
	}
	if o.CheckpointKeep <= 0 {
		o.CheckpointKeep = 3
	}
}

// regridFlopsPerCell is the modelled computational cost of
// re-partitioning and rebuilding data structures, per cell touched —
// the source of the δ term in Eq. 1.
const regridFlopsPerCell = 4.0

// evalFlops is the modelled cost of one gain/cost evaluation
// (negligible by design: "the evaluation should be very fast").
const evalFlops = 5e4

// checkpointFlopsPerCell is the modelled cost of writing or restoring
// one cell of recovery checkpoint state.
const checkpointFlopsPerCell = 2.0

// Runner executes one SAMR application on one system with one DLB
// scheme.
type Runner struct {
	sys    *machine.System
	driver workload.Driver
	opt    Options

	h      *amr.Hierarchy
	clock  *vclock.Clock
	rec    *load.Recorder
	ledger *load.Ledger
	ctx    *dlb.Context

	kernels      []solver.Kernel
	flopsPerCell float64
	refFactor    int
	dt0          float64
	t            float64

	world    *mpx.World
	shards   *shardSet // tcp transport: one shard world per group
	fluxRegs []*amr.FluxRegister

	transportFaults    int
	transportFallbacks int

	intervalStart float64
	globalEvals   int
	globalRedists int
	localMigs     int
	maxCells      int64
	curStep       int // level-0 step the loop is executing (for hooks)

	// Last gate inputs the balancer actually compared (Eq. 1), kept
	// for the Result and persisted across Resume so a resumed run
	// reports what the original compared, not a stale recompute.
	lastGain, lastCost, lastGamma float64

	// Fault-tolerance state (active only when opt.Faults is set).
	ckpt          []byte       // last checkpoint (gob stream)
	ckptBuf       bytes.Buffer // reused serialisation scratch
	ckptStep      int          // level-0 step it covers (-1 = pristine)
	ckptT         float64      // simulated time at the checkpoint
	ckptClock     float64      // virtual wall time at the checkpoint
	lastFailCheck float64      // end of the last failure-scan window
	failedSet     map[int]bool
	wasQuar       bool // a group was quarantined at the last boundary
	memb          *machine.Membership

	// Durable checkpoint state (active only when opt.CheckpointDir is
	// set, except for the fallback counters, which the in-memory
	// recovery path also feeds).
	store          *ckpt.Store
	startStep      int  // first level-0 step of this process (> 0 on resume)
	resumed        bool // this runner continues an interrupted run
	ckptAttempts   int  // durable write attempts; keys disk-fault decisions
	diskCkptWrites int
	diskCkptErrors int
	diskPruneBase  int // prune failures inherited from the resumed run
	ckptFallbacks  int
	corruptGens    int
	pristineResets int

	probeRetries   int
	probeFallbacks int
	retryTime      float64
	quarSteps      int
	catchupEvals   int
	recoveries     int
	recoveryTime   float64

	// Ledger bookkeeping: events applied by ledgers that were since
	// replaced (recovery), and full rebuilds performed.
	ledgerEvents   uint64
	ledgerRebuilds int

	// Per-step scratch, reused across calls so the hot loop makes no
	// allocations: advanceLevel's per-processor accumulators, the
	// message/migration charging buffers, and the flux collection
	// slice. The engine loop is single-threaded (vclock.AddPhase
	// copies values immediately), so plain reuse is safe.
	perProcBuf, workBuf   []float64
	commLocal, commRemote []float64
	pairBytes             map[commPair]int64
	pairList              []commPair
	fluxesBuf             []*solver.Fluxes
}

// commPair keys the per-(src,dst) aggregation of chargeMessages.
type commPair struct{ src, dst int }

// procScratch returns a zeroed length-n slice backed by the given
// reusable buffer (grown once, then recycled every call).
func procScratch(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	s := (*buf)[:n]
	clear(s)
	return s
}

// New prepares a runner. The hierarchy is initialised with a level-0
// decomposition of GridsPerProc boxes per processor, assigned in
// spatial order so each group owns a contiguous region (the paper's
// group-boundary picture of Figure 6).
func New(sys *machine.System, driver workload.Driver, opt Options) *Runner {
	opt.setDefaults()
	r := &Runner{
		sys:          sys,
		driver:       driver,
		opt:          opt,
		clock:        vclock.New(sys.NumProcs()),
		kernels:      driver.Kernels(),
		flopsPerCell: workload.FlopsPerCell(driver),
		refFactor:    driver.RefFactor(),
		dt0:          driver.Dt0(),
	}
	n0 := driver.DomainN()
	if opt.Resume != nil {
		h := opt.Resume
		if h.Domain != geom.UnitCube(n0) || h.RefFactor != r.refFactor ||
			h.WithData != opt.WithData {
			panic("engine: checkpoint does not match the driver/options")
		}
		r.h = h
		r.t = opt.ResumeTime
	} else {
		r.h = amr.New(geom.UnitCube(n0), r.refFactor, opt.MaxLevel, opt.NGhost, opt.WithData, driver.Fields()...)
	}
	// The hierarchy executes its cached data-motion plans over the
	// host pool; the oracle flag flows down with it (covers both the
	// fresh and the Resume hierarchy).
	r.h.SetPool(opt.Pool)
	r.h.SetDataCheck(opt.DataCheck)
	r.h.SetPlanCheck(opt.PlanCheck)
	// The ledger attaches before the initial decomposition so every
	// grid creation flows through it as an event; on Resume the
	// constructor's full build (parallel over the pool) picks up the
	// checkpointed hierarchy instead.
	r.ledger = load.NewLedger(sys, r.h, opt.Pool)
	r.ledger.SetSelfCheck(opt.LedgerCheck)
	r.h.SetListener(r.ledger)
	r.rec = load.NewRecorder(sys.NumProcs(), opt.MaxLevel)
	r.rec.BindGroups(sys)
	r.ctx = &dlb.Context{
		Sys: sys, H: r.h, Load: r.rec,
		Ledger:       r.ledger,
		Now:          r.clock.Now,
		Gamma:        opt.Gamma,
		ImbalanceEps: opt.ImbalanceEps,
	}
	if opt.UseForecast {
		r.ctx.Forecast = netsim.NewForecastSet()
	}
	if opt.Faults != nil {
		if err := opt.Faults.Validate(sys.NumProcs(), sys.NumGroups()); err != nil {
			panic("engine: " + err.Error())
		}
		// Attach the schedule to every fabric link (outages, degradation
		// and probe loss), expose quarantine and the retry policy to the
		// balancer, and make sure a forecast history exists: it is the
		// fallback the global phase uses when every probe attempt fails.
		sys.Net.EachLink(func(a, b int, l *netsim.Link) {
			l.Fault = opt.Faults.ForLink(a, b)
		})
		r.ctx.Quarantined = r.groupQuarantined
		r.ctx.Retry = opt.Retry
		if r.ctx.Forecast == nil {
			r.ctx.Forecast = netsim.NewForecastSet()
		}
		r.failedSet = make(map[int]bool)
		r.ckptStep = -1
		r.memb = machine.NewMembership(sys, opt.SuspectAfter, opt.DeadAfter, opt.GroupQuorum)
		r.ctx.Admitted = r.memb.Admitted
	}
	if opt.CheckpointDir != "" {
		st, err := ckpt.Open(opt.CheckpointDir, opt.CheckpointKeep)
		if err != nil {
			panic("engine: " + err.Error())
		}
		if opt.Faults != nil {
			st.SetFault(opt.Faults.ForDisk())
		}
		r.store = st
	}
	switch opt.Transport {
	case "", TransportLoopback:
	case TransportTCP:
		if !opt.UseMPX {
			panic("engine: Transport=tcp requires UseMPX")
		}
	case TransportWorker:
		if !opt.UseMPX {
			panic("engine: Transport=worker requires UseMPX")
		}
		if opt.Worker == nil {
			panic("engine: Transport=worker requires Options.Worker")
		}
		if opt.GradientField != "" || opt.DataCheck {
			// Worker replicas may hold stale copies of remote-owned
			// grids; any control decision or oracle that reads field
			// values would diverge across processes.
			panic("engine: Transport=worker forbids data-dependent control (GradientField/DataCheck)")
		}
	default:
		panic("engine: unknown Transport " + opt.Transport)
	}
	if opt.UseMPX {
		if !opt.WithData {
			panic("engine: UseMPX requires WithData")
		}
		if opt.Reflux {
			panic("engine: Reflux and UseMPX are not supported together")
		}
		switch {
		case opt.Transport == TransportTCP:
			ss, err := newTCPShards(sys, opt.WireFault, opt.WireTimeout)
			if err != nil {
				panic("engine: " + err.Error())
			}
			r.shards = ss
		case opt.Transport == TransportWorker:
			if opt.Worker.Endpoint != nil && !opt.Worker.Detached {
				r.shards = newWorkerShard(sys, opt.Worker.Shard, opt.Worker.Endpoint)
			}
			// Detached workers (a restart after a crash, or a worker
			// whose peers are all gone) run the plain in-memory data
			// path — the virtual-time charging is identical, so the
			// Result still matches the attached replicas.
		default:
			r.world = mpx.NewWorld(sys.NumProcs())
		}
	}
	if opt.Reflux {
		if !opt.WithData {
			panic("engine: Reflux requires WithData")
		}
		r.fluxRegs = make([]*amr.FluxRegister, opt.MaxLevel+1)
	}
	if opt.GradientField != "" && !opt.WithData {
		panic("engine: gradient flagging requires WithData")
	}
	if opt.Resume == nil {
		r.initLevel0()
	}
	return r
}

// Time returns the current simulated physical time.
func (r *Runner) Time() float64 { return r.t }

// Hierarchy exposes the grid hierarchy (for tools and tests).
func (r *Runner) Hierarchy() *amr.Hierarchy { return r.h }

// Clock exposes the virtual clock.
func (r *Runner) Clock() *vclock.Clock { return r.clock }

// Ledger exposes the incremental load ledger (for tools and tests).
func (r *Runner) Ledger() *load.Ledger { return r.ledger }

// initLevel0 decomposes the domain into boxes and deals them to
// processors proportionally to performance, in spatial order.
func (r *Runner) initLevel0() {
	boxes := geom.BoxList{r.h.Domain}.SplitEvenly(r.sys.NumProcs() * r.opt.GridsPerProc)
	boxes.SortByLo()
	total := float64(r.h.Domain.NumCells())
	perfSum := r.sys.TotalPerf()
	proc := 0
	var assigned float64
	for _, b := range boxes {
		// Advance to the next processor once this one holds its share.
		for proc < r.sys.NumProcs()-1 &&
			assigned >= total*cumPerf(r.sys, proc)/perfSum {
			proc++
		}
		g := r.h.AddGrid(0, b, proc, amr.NoGrid)
		assigned += float64(b.NumCells())
		if r.opt.WithData {
			r.driver.InitialCondition(g.Patch, r.dx(0))
		}
	}
	r.h.SortLevel(0)
}

// cumPerf returns the summed performance of processors 0..p inclusive.
func cumPerf(sys *machine.System, p int) float64 {
	var s float64
	for i := 0; i <= p; i++ {
		s += sys.Perf(i)
	}
	return s
}

func (r *Runner) dx(level int) float64 {
	return 1.0 / (float64(r.driver.DomainN()) * math.Pow(float64(r.refFactor), float64(level)))
}

func (r *Runner) dt(level int) float64 {
	return r.dt0 / math.Pow(float64(r.refFactor), float64(level))
}

// Run executes the configured number of level-0 steps and returns the
// measured result. Under fault injection the loop additionally applies
// processor slowdowns before each step, scans for failures after it
// (rewinding to the last checkpoint and replaying when one struck),
// takes periodic recovery checkpoints, and tracks group quarantine
// across level-0 boundaries.
func (r *Runner) Run() *metrics.Result {
	defer r.Close()
	r.curStep = r.startStep
	if r.opt.Faults != nil {
		if r.resumed {
			// The resume point doubles as the in-memory recovery point;
			// its write cost was charged by the run that produced the
			// durable generation, so remember it without charging again.
			r.rememberCheckpoint(r.startStep - 1)
			r.ckptClock = r.clock.Now()
		} else {
			r.lastFailCheck = -1
			r.takeCheckpoint(-1)
		}
	}
	for s := r.startStep; s < r.opt.Steps; s++ {
		r.curStep = s
		if r.opt.Faults != nil {
			r.applySlowdowns()
		}
		if s%r.opt.RegridInterval == 0 {
			r.regrid(s == 0)
		}
		r.step(0)
		r.t += r.dt0
		if r.opt.Faults != nil {
			if r.detectFailures() {
				s = r.recoverFromCheckpoint()
				continue
			}
			if (s+1)%r.opt.CheckpointInterval == 0 {
				r.takeCheckpoint(s)
			}
		}
		r.globalBalance()
		if r.store != nil && (s+1)%r.opt.CheckpointInterval == 0 {
			r.writeDurable(s)
		}
		if r.opt.AfterStep != nil {
			r.opt.AfterStep(s, r)
		}
	}
	return r.result()
}

// groupQuarantined reports whether group g is unreachable at virtual
// time t: either a scripted whole-group disconnect covers it, or every
// inter-group link from g is inside an outage window.
func (r *Runner) groupQuarantined(g int, t float64) bool {
	f := r.opt.Faults
	if f == nil {
		return false
	}
	if r.memb.BelowQuorum(g) {
		// Too few admitted processors: the group cannot meaningfully
		// donate or receive global work, so it degrades to local-only
		// balancing through the same path as an unreachable group.
		return true
	}
	if f.GroupDown(g, t) {
		return true
	}
	ng := r.sys.NumGroups()
	if ng < 2 {
		return false
	}
	for h := 0; h < ng; h++ {
		if h != g && !f.LinkDown(g, h, t) {
			return false
		}
	}
	return true
}

// applySlowdowns refreshes the health vector from the fault schedule
// at the current virtual time: slowdown windows scale effective
// performance; failed processors drop to zero. A previously failed
// processor whose factor came back positive — a bounded outage window
// closed, or a scripted proc-recover fired — is healthy again but not
// yet admitted: it enters the rejoining state and owns no new work
// until the next global boundary re-admits it.
func (r *Runner) applySlowdowns() {
	now := r.clock.Now()
	revivedOwning := false
	for p := 0; p < r.sys.NumProcs(); p++ {
		f := r.opt.Faults.ProcFactor(p, now)
		if f > 1 {
			f = 1
		}
		if f > 0 && r.failedSet[p] {
			delete(r.failedSet, p)
			r.memb.BeginRejoin(p)
			r.opt.Trace.Add(trace.Membership, 0, now,
				fmt.Sprintf("processor %d healthy again; rejoin pending", p))
			if r.ownsCells(p) {
				revivedOwning = true
			}
		}
		r.sys.SetHealth(p, f)
	}
	if revivedOwning {
		// A returning processor that still owns grids means a recovery
		// ran with no alive processor to repartition onto (grids stayed
		// with their dead owners). The processors coming back now are
		// the only capacity there is: repartition over them and re-admit
		// on the spot — waiting for the boundary would leave work parked
		// on crash-rejoining or still-dead processors.
		r.repartition()
		r.completePendingRejoins(r.curStep)
		r.opt.Trace.Add(trace.Membership, 0, now,
			"capacity returned after total failure; repartitioned and re-admitted")
	}
}

// detectFailures scans the fault schedule for processor failures since
// the last scan and marks them dead. Returns true when a new failure
// struck (the caller must then recover from the last checkpoint).
func (r *Runner) detectFailures() bool {
	now := r.clock.Now()
	procs := r.opt.Faults.FailuresIn(r.lastFailCheck, now)
	r.lastFailCheck = now
	hit := false
	for _, p := range procs {
		if r.failedSet[p] {
			continue
		}
		r.failedSet[p] = true
		r.sys.SetHealth(p, 0)
		r.memb.Crash(p)
		hit = true
		r.opt.Trace.Add(trace.Fault, 0, now, fmt.Sprintf("processor %d failed", p))
	}
	return hit
}

// rememberCheckpoint serialises the hierarchy into the reused scratch
// buffer and records it as the in-memory recovery point, without
// charging the virtual clock (the caller charges, or the cost was
// already paid — by the original run, when resuming).
func (r *Runner) rememberCheckpoint(step int) {
	r.ckptBuf.Reset()
	if err := r.h.Save(&r.ckptBuf); err != nil {
		panic(fmt.Sprintf("engine: checkpoint failed: %v", err))
	}
	// Copy out of the scratch buffer: the durable write path resets it.
	r.ckpt = append(r.ckpt[:0], r.ckptBuf.Bytes()...)
	r.ckptStep = step
	r.ckptT = r.t
}

// takeCheckpoint serialises the hierarchy for recovery, charging the
// write cost to the Recovery phase. step is the last completed level-0
// step the checkpoint covers (-1 for the pristine pre-run state).
func (r *Runner) takeCheckpoint(step int) {
	r.rememberCheckpoint(step)
	cells := r.ledger.TotalCells()
	r.clock.AddUniform(vclock.Recovery, float64(cells)*checkpointFlopsPerCell/r.sys.FlopsPerSecond)
	r.ckptClock = r.clock.Now()
	r.opt.Trace.Add(trace.Recovery, 0, r.ckptClock,
		fmt.Sprintf("checkpoint step=%d cells=%d", step, cells))
	r.fireInvariant(PhaseCheckpoint, 0, nil, nil, false)
}

// writeDurable serialises the full engine state — hierarchy plus the
// Meta header Resume needs — into a new generation of the durable
// store. The write cost is charged to the Recovery phase before the
// clock is snapshotted, so a resumed run reproduces the charge
// exactly. A failed write (injected disk fault or real I/O error) is
// counted and traced but never aborts the run: the older generations
// are untouched.
func (r *Runner) writeDurable(step int) {
	r.ckptBuf.Reset()
	if err := r.h.Save(&r.ckptBuf); err != nil {
		panic(fmt.Sprintf("engine: durable checkpoint failed: %v", err))
	}
	cells := r.ledger.TotalCells()
	r.clock.AddUniform(vclock.Recovery, float64(cells)*checkpointFlopsPerCell/r.sys.FlopsPerSecond)
	seq := r.ckptAttempts
	r.ckptAttempts++
	now := r.clock.Now()
	if r.opt.BeforeCheckpointWrite != nil {
		r.opt.BeforeCheckpointWrite(step, seq)
	}
	meta := r.snapshotMeta(step)
	// The prune count, like DiskCheckpoints, describes the world in
	// which this generation landed on disk — including the prune its
	// own write triggers, whose outcome under injected faults is a pure
	// function of (seq, now) and therefore predictable.
	meta.DiskPruneErrors = r.diskPruneBase + r.store.PruneErrors() + r.store.PredictPruneErrors(seq, now)
	gen, err := r.store.Write(meta, r.ckptBuf.Bytes(), seq, now)
	if err != nil {
		r.diskCkptErrors++
		r.opt.Trace.Add(trace.Checkpoint, 0, now,
			fmt.Sprintf("write failed step=%d: %v", step, err))
		return
	}
	r.diskCkptWrites++
	r.opt.Trace.Add(trace.Checkpoint, 0, now,
		fmt.Sprintf("gen=%d step=%d cells=%d bytes=%d", gen, step, cells, r.ckptBuf.Len()))
	if pe := r.diskPruneBase + r.store.PruneErrors(); pe > 0 {
		r.opt.Trace.Add(trace.Checkpoint, 0, now,
			fmt.Sprintf("prune failures to date: %d (stranded generation files)", pe))
	}
	r.fireInvariant(PhaseCheckpoint, 0, nil, nil, false)
}

// snapshotMeta captures everything beyond the hierarchy that Resume
// needs to continue the run byte-identically. step is the completed
// level-0 step the snapshot covers; counters are cumulative, with the
// in-flight durable write already counted (a generation that lands on
// disk describes the world in which its own write succeeded).
func (r *Runner) snapshotMeta(step int) *ckpt.Meta {
	m := &ckpt.Meta{
		Version:         ckpt.MetaVersion,
		Step:            step,
		SimTime:         r.t,
		Clock:           r.clock.State(),
		IntervalStart:   r.intervalStart,
		IntervalTime:    r.rec.IntervalTime(),
		Delta:           r.rec.Delta(),
		ForceEval:       r.ctx.ForceEval,
		NextGridID:      int64(r.h.NextID()),
		GlobalEvals:     r.globalEvals,
		GlobalRedists:   r.globalRedists,
		LocalMigrations: r.localMigs,
		MaxCells:        r.maxCells,
		LastGain:        r.lastGain,
		LastCost:        r.lastCost,
		LastGamma:       r.lastGamma,
		LedgerEvents:    r.ledgerEvents + r.ledger.EventCount(),
		LedgerRebuilds:  r.ledgerRebuilds + r.ledger.Rebuilds(),
		DiskCheckpoints: r.diskCkptWrites + 1,
		DiskCkptErrors:  r.diskCkptErrors,
		WriteAttempts:   r.ckptAttempts,
		CkptFallbacks:   r.ckptFallbacks,
		PristineResets:  r.pristineResets,
		CorruptGens:     r.corruptGens,
	}
	if f := r.opt.Faults; f != nil {
		m.HasFaults = true
		m.FaultSeed = f.Seed()
		m.LastFailCheck = r.lastFailCheck
		m.WasQuarantined = r.wasQuar
		for p := range r.failedSet {
			m.FailedProcs = append(m.FailedProcs, p)
		}
		sort.Ints(m.FailedProcs)
		for _, e := range f.ProbeSeqSnapshot() {
			m.ProbeSeq = append(m.ProbeSeq, ckpt.ProbeSeq{A: e.A, B: e.B, N: e.N})
		}
		m.ProbeRetries = r.probeRetries
		m.ProbeFallbacks = r.probeFallbacks
		m.RetryTime = r.retryTime
		m.QuarSteps = r.quarSteps
		m.CatchupEvals = r.catchupEvals
		m.Recoveries = r.recoveries
		m.RecoveryTime = r.recoveryTime
		if r.memb != nil {
			m.MembState = r.memb.StateVec()
			m.MembCause = r.memb.CauseVec()
			m.MembReadmit = r.memb.ReadmitVec()
			m.MembSuspicion = r.memb.SuspicionVec()
			m.MembEvidence = r.memb.EvidenceVec()
			m.MembSuspects = r.memb.SuspectTransitions
			m.MembSuspectDead = r.memb.SuspectedToDead
			m.MembRejoins = r.memb.Rejoins
			m.MembCatchups = r.memb.RejoinCatchups
			m.MembQuorumSteps = r.memb.QuorumDegradedSteps
		}
	}
	return m
}

// recoverFromCheckpoint restores the hierarchy from the last periodic
// checkpoint after a processor failure, re-runs the initial partition
// over the surviving processors, and charges the restore to the
// Recovery phase. The wall time elapsed since the checkpoint — work
// that is now lost and must be replayed — is recorded as recovery
// time. An unusable in-memory checkpoint no longer kills the run: the
// restore falls back to the durable store's generations and, as a last
// resort, to a pristine rebuild of the initial state. Returns the
// restored step so the caller's loop replays from the step after it.
func (r *Runner) recoverFromCheckpoint() int {
	now := r.clock.Now()
	step, simT, ckClock := r.ckptStep, r.ckptT, r.ckptClock
	h, err := amr.Load(bytes.NewReader(r.ckpt))
	pristine := false
	if err != nil {
		r.ckptFallbacks++
		r.opt.Trace.Add(trace.Fault, 0, now,
			fmt.Sprintf("in-memory checkpoint unusable (%v); falling back", err))
		h, step, simT, ckClock, pristine = r.recoverFallback(now)
	}
	lost := now - ckClock
	h.SetPool(r.opt.Pool)
	h.SetDataCheck(r.opt.DataCheck)
	h.SetPlanCheck(r.opt.PlanCheck)
	r.h = h
	r.ctx.H = h
	r.t = simT
	// The restored hierarchy needs a fresh ledger — the one unavoidable
	// full recompute besides the initial build, parallelised over the
	// pool — attached before repartition so the ownership reshuffle
	// flows through it as events.
	r.ledgerEvents += r.ledger.EventCount()
	r.ledger = load.NewLedger(r.sys, h, r.opt.Pool)
	r.ledger.SetSelfCheck(r.opt.LedgerCheck)
	h.SetListener(r.ledger)
	r.ctx.Ledger = r.ledger
	r.ledgerRebuilds++
	if pristine {
		r.initLevel0()
	}
	// Outage windows that closed during the lost span: those processors
	// are healthy again, and the repartition below must spread work
	// over them too.
	for p := 0; p < r.sys.NumProcs(); p++ {
		if !r.failedSet[p] {
			continue
		}
		if f := r.opt.Faults.ProcFactor(p, now); f > 0 {
			if f > 1 {
				f = 1
			}
			delete(r.failedSet, p)
			r.sys.SetHealth(p, f)
			r.memb.BeginRejoin(p)
			r.opt.Trace.Add(trace.Membership, 0, now,
				fmt.Sprintf("processor %d healthy again; rejoin pending", p))
		}
	}
	r.repartition()
	// The recovery repartition spreads work over every alive processor,
	// rejoining ones included: it is their re-admission, so no separate
	// catch-up evaluation is needed.
	r.completePendingRejoins(step)
	restore := float64(r.ledger.TotalCells()) * checkpointFlopsPerCell / r.sys.FlopsPerSecond
	r.clock.AddUniform(vclock.Recovery, restore)
	r.recoveries++
	r.recoveryTime += lost + restore
	// The aborted interval's accumulators describe work that no longer
	// exists; start the next measurement interval clean.
	r.rec.ResetInterval()
	r.intervalStart = r.clock.Now()
	if err != nil {
		// The blob that just failed must not be retried on the next
		// failure: the recovered state becomes the new recovery point
		// (its restore cost was charged above).
		r.rememberCheckpoint(step)
		r.ckptClock = r.clock.Now()
	}
	r.opt.Trace.Add(trace.Recovery, 0, r.clock.Now(),
		fmt.Sprintf("restored checkpoint step=%d lost=%.4fs survivors=%d",
			step, lost, r.sys.NumAlive()))
	r.curStep = step
	r.fireInvariant(PhaseRestore, 0, nil, nil, false)
	return step
}

// recoverFallback is the error path of recoverFromCheckpoint: the
// in-memory blob was unusable, so try the durable store's generations
// (newest first, skipping corrupt ones), and as a last resort rebuild
// the pristine initial state. It never panics — a fault-injected run
// always degrades to *some* valid state.
func (r *Runner) recoverFallback(now float64) (h *amr.Hierarchy, step int, simT, ckClock float64, pristine bool) {
	if r.store != nil {
		var hier *amr.Hierarchy
		meta, _, report, err := r.store.Restore(func(m *ckpt.Meta, payload []byte) error {
			var e error
			hier, e = amr.Load(bytes.NewReader(payload))
			return e
		})
		if report != nil {
			r.corruptGens += len(report.Skipped)
		}
		if err == nil {
			hier.SetNextID(amr.GridID(meta.NextGridID))
			r.opt.Trace.Add(trace.Checkpoint, 0, now,
				fmt.Sprintf("recovered from durable gen=%d step=%d", report.Gen, meta.Step))
			return hier, meta.Step, meta.SimTime, meta.Clock.Now, false
		}
		r.opt.Trace.Add(trace.Checkpoint, 0, now,
			fmt.Sprintf("durable restore failed: %v", err))
	}
	// Pristine restart: rebuild the initial hierarchy from scratch and
	// replay the whole run on the surviving processors.
	r.pristineResets++
	r.opt.Trace.Add(trace.Fault, 0, now, "no usable checkpoint; pristine restart")
	h = amr.New(geom.UnitCube(r.driver.DomainN()), r.refFactor, r.opt.MaxLevel,
		r.opt.NGhost, r.opt.WithData, r.driver.Fields()...)
	return h, -1, 0, 0, true
}

// repartition re-runs the initial level-0 partition over the surviving
// processors (spatial order, shares proportional to effective
// performance); finer grids follow their parent's owner, preserving
// the distributed scheme's same-group placement.
func (r *Runner) repartition() {
	alive := r.sys.AliveProcs()
	if len(alive) == 0 {
		return // every processor failed; nothing sensible remains
	}
	r.h.SortLevel(0)
	grids := r.h.Grids(0)
	var perfSum, total float64
	for _, p := range alive {
		perfSum += r.sys.EffectivePerf(p)
	}
	for _, g := range grids {
		total += float64(g.NumCells())
	}
	idx := 0
	assigned, cum := 0.0, r.sys.EffectivePerf(alive[0])
	for _, g := range grids {
		for idx < len(alive)-1 && assigned >= total*cum/perfSum {
			idx++
			cum += r.sys.EffectivePerf(alive[idx])
		}
		r.h.SetOwner(g, alive[idx])
		assigned += float64(g.NumCells())
	}
	for l := 1; l <= r.h.MaxLevel; l++ {
		for _, g := range r.h.Grids(l) {
			if p := r.h.Grid(g.Parent); p != nil {
				r.h.SetOwner(g, p.Owner)
			}
		}
	}
}

// step advances one level by one of its time steps, then recursively
// subcycles the finer level (Fig. 2's ordering), restricts the fine
// solution, and runs the local balancing of Fig. 4's right column.
func (r *Runner) step(level int) {
	hasFine := level < r.h.MaxLevel && len(r.h.Grids(level+1)) > 0
	if r.fluxRegs != nil && hasFine {
		r.fluxRegs[level+1] = amr.NewFluxRegister(r.h, level+1)
	}
	r.advanceLevel(level)
	r.opt.Trace.Add(trace.Step, level, r.clock.Now(), "")
	if hasFine {
		for i := 0; i < r.refFactor; i++ {
			r.step(level + 1)
		}
		r.restrict(level + 1)
		if r.fluxRegs != nil && r.fluxRegs[level+1] != nil {
			r.fluxRegs[level+1].Apply()
			r.fluxRegs[level+1] = nil
		}
	}
	if level > 0 {
		r.localBalance(level)
	}
}

// advanceLevel performs one time step of one level: ghost exchange
// (charged over the network model), kernel compute (charged per
// processor; really executed when WithData), and load recording.
func (r *Runner) advanceLevel(level int) {
	grids := r.h.Grids(level)
	if len(grids) == 0 {
		return
	}

	// Communication: ghost plan, aggregated per processor pair.
	r.chargeMessages(r.h.GhostPlanCached(level), vclock.LocalComm, vclock.RemoteComm)

	// Real data motion and numerics.
	if r.opt.WithData {
		dt, dx := r.dt(level), r.dx(level)
		if r.shards != nil {
			// Sharded wire execution: the ghost exchange and the kernel
			// sweep run as separate phases, so a wire failure during the
			// exchange can fall back to the in-memory fill (an idempotent
			// full rewrite) without re-running any kernel.
			if !r.shards.wireActive() || !r.runWirePhase("fill", level, func(rank *mpx.Rank) {
				r.h.FillGhostsMPX(rank, level)
			}) {
				r.h.FillGhostsData(level)
			}
			if r.shards.worker {
				// A worker replica steps every grid, not just its own:
				// its copies of remote-owned grids stay as fresh as the
				// last wire exchange allows, so after a detach the plain
				// data path continues from a self-consistent state. The
				// virtual compute charge below is ledger-driven and
				// unaffected.
				stepGrid := func(i int) {
					for _, k := range r.kernels {
						k.Step(grids[i].Patch, dt, dx)
					}
				}
				if r.opt.Pool != nil {
					r.opt.Pool.ForEach(len(grids), stepGrid)
				} else {
					for i := range grids {
						stepGrid(i)
					}
				}
			} else {
				r.shards.mustRun(func(rank *mpx.Rank) {
					for _, g := range grids {
						if g.Owner != rank.ID() {
							continue
						}
						for _, k := range r.kernels {
							k.Step(g.Patch, dt, dx)
						}
					}
				})
			}
		} else if r.world != nil {
			// Rank-parallel execution: every simulated processor runs
			// as an mpx rank, exchanging ghosts by message and
			// advancing only its own grids.
			r.world.Run(func(rank *mpx.Rank) {
				r.h.FillGhostsMPX(rank, level)
				for _, g := range grids {
					if g.Owner != rank.ID() {
						continue
					}
					for _, k := range r.kernels {
						k.Step(g.Patch, dt, dx)
					}
				}
			})
		} else {
			r.h.FillGhostsData(level)
			var fluxes []*solver.Fluxes
			if r.fluxRegs != nil {
				if cap(r.fluxesBuf) < len(grids) {
					r.fluxesBuf = make([]*solver.Fluxes, len(grids))
				}
				fluxes = r.fluxesBuf[:len(grids)]
				for i := range fluxes {
					fluxes[i] = nil
				}
			}
			stepGrid := func(i int) {
				for _, k := range r.kernels {
					if fluxes != nil {
						if fk, ok := k.(solver.FluxedKernel); ok {
							fluxes[i] = fk.StepFluxes(grids[i].Patch, dt, dx)
							continue
						}
					}
					k.Step(grids[i].Patch, dt, dx)
				}
			}
			if r.opt.Pool != nil {
				r.opt.Pool.ForEach(len(grids), stepGrid)
			} else {
				for i := range grids {
					stepGrid(i)
				}
			}
			// Feed the flux registers sequentially in grid order so
			// accumulation is deterministic; the registers copy the
			// values out, so the fluxes go straight back to the pool.
			if fluxes != nil {
				for i, g := range grids {
					if fluxes[i] == nil {
						continue
					}
					if level+1 <= r.h.MaxLevel && r.fluxRegs[level+1] != nil {
						r.fluxRegs[level+1].AddCoarse(g, fluxes[i])
					}
					if r.fluxRegs[level] != nil {
						r.fluxRegs[level].AddFine(g, fluxes[i])
					}
					fluxes[i].Release()
					fluxes[i] = nil
				}
			}
		}
	}

	// Virtual compute time and workload snapshot: the per-processor
	// cell counts come from the ledger in O(procs) instead of a walk
	// over the level's grids. Accumulators live on reused Runner
	// scratch (AddPhase copies them out immediately).
	perProc := procScratch(&r.perProcBuf, r.sys.NumProcs())
	work := procScratch(&r.workBuf, r.sys.NumProcs())
	for p := range work {
		work[p] = r.ledger.ProcCells(level, p) * r.flopsPerCell
	}
	if level == 0 {
		r.particleWork(work)
	}
	for p := range perProc {
		if work[p] > 0 {
			eff := r.sys.EffectivePerf(p)
			if eff <= 0 {
				// A processor that failed mid-step still finishes it at
				// nominal speed; recovery follows at the step boundary.
				eff = r.sys.Perf(p)
			}
			perProc[p] = work[p] / (eff * r.sys.FlopsPerSecond)
		}
		r.rec.RecordLevelWork(p, level, work[p])
	}
	r.clock.AddPhase(vclock.Compute, perProc)
	r.rec.RecordIteration(level)

	if c := r.ledger.TotalCells(); c > r.maxCells {
		r.maxCells = c
	}
}

// particleWork advances the particle population (once per level-0
// step) and adds its per-processor cost: each particle is integrated
// by the owner of the level-0 grid containing it.
func (r *Runner) particleWork(work []float64) {
	ps := r.driver.Particles()
	if ps == nil {
		return
	}
	ps.Step(r.dt0)
	dx0 := r.dx(0)
	for _, g := range r.h.Grids(0) {
		lo := [3]float64{float64(g.Box.Lo[0]) * dx0, float64(g.Box.Lo[1]) * dx0, float64(g.Box.Lo[2]) * dx0}
		hi := [3]float64{float64(g.Box.Hi[0]+1) * dx0, float64(g.Box.Hi[1]+1) * dx0, float64(g.Box.Hi[2]+1) * dx0}
		n := ps.CountInRegion(lo, hi)
		work[g.Owner] += float64(n) * solver.FlopsPerParticle
	}
}

// restrict projects level l onto l-1, charging the transfer plan.
func (r *Runner) restrict(level int) {
	r.chargeMessages(r.h.RestrictPlanCached(level), vclock.LocalComm, vclock.RemoteComm)
	if r.opt.WithData {
		if r.shards != nil {
			if !r.shards.wireActive() || !r.runWirePhase("restrict", level, func(rank *mpx.Rank) {
				r.h.RestrictMPX(rank, level)
			}) {
				r.h.RestrictData(level)
			}
		} else if r.world != nil {
			r.world.Run(func(rank *mpx.Rank) {
				r.h.RestrictMPX(rank, level)
			})
		} else {
			r.h.RestrictData(level)
		}
	}
}

// chargeMessages aggregates the plan per (src proc, dst proc) pair —
// one latency per pair, bytes summed, matching message coalescing in
// real SAMR codes — and charges each processor the time of the
// transfers it participates in.
func (r *Runner) chargeMessages(msgs []amr.Message, localPhase, remotePhase vclock.Phase) {
	if len(msgs) == 0 {
		return
	}
	if r.pairBytes == nil {
		r.pairBytes = make(map[commPair]int64)
	} else {
		clear(r.pairBytes)
	}
	bytesBy := r.pairBytes
	pairs := r.pairList[:0]
	for _, m := range msgs {
		src := r.h.Grid(m.Src).Owner
		dst := r.h.Grid(m.Dst).Owner
		if src == dst {
			continue
		}
		key := commPair{src, dst}
		if _, seen := bytesBy[key]; !seen {
			pairs = append(pairs, key)
		}
		bytesBy[key] += m.Bytes
	}
	r.pairList = pairs
	// Deterministic accumulation order: the per-processor float sums
	// (and hence every downstream DLB decision) depend on it.
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].src != pairs[j].src {
			return pairs[i].src < pairs[j].src
		}
		return pairs[i].dst < pairs[j].dst
	})
	local := procScratch(&r.commLocal, r.sys.NumProcs())
	remote := procScratch(&r.commRemote, r.sys.NumProcs())
	now := r.clock.Now()
	anyLocal, anyRemote := false, false
	for _, pr := range pairs {
		link, err := r.sys.LinkBetween(pr.src, pr.dst)
		if err != nil {
			// No fabric link between the pair: nothing to charge.
			continue
		}
		tt := link.TransferTime(now, float64(bytesBy[pr]))
		if r.sys.SameGroup(pr.src, pr.dst) {
			local[pr.src] += tt
			local[pr.dst] += tt
			anyLocal = true
		} else {
			remote[pr.src] += tt
			remote[pr.dst] += tt
			anyRemote = true
		}
	}
	if anyLocal {
		r.clock.AddPhase(localPhase, local)
	}
	if anyRemote {
		r.clock.AddPhase(remotePhase, remote)
	}
}

// chargeMigrations charges grid-migration transfers into the given
// phases (local and remote by group relation).
func (r *Runner) chargeMigrations(migs []dlb.Migration, localPhase, remotePhase vclock.Phase) {
	if len(migs) == 0 {
		return
	}
	local := procScratch(&r.commLocal, r.sys.NumProcs())
	remote := procScratch(&r.commRemote, r.sys.NumProcs())
	now := r.clock.Now()
	anyLocal, anyRemote := false, false
	for _, m := range migs {
		link, err := r.sys.LinkBetween(m.From, m.To)
		if err != nil {
			// No fabric link between the pair: nothing to charge.
			continue
		}
		tt := link.TransferTime(now, float64(m.Bytes))
		if r.sys.SameGroup(m.From, m.To) {
			local[m.From] += tt
			local[m.To] += tt
			anyLocal = true
		} else {
			remote[m.From] += tt
			remote[m.To] += tt
			anyRemote = true
		}
	}
	if anyLocal {
		r.clock.AddPhase(localPhase, local)
	}
	if anyRemote {
		r.clock.AddPhase(remotePhase, remote)
	}
}

// localBalance runs the scheme's local phase for one level.
func (r *Runner) localBalance(level int) {
	migs := r.opt.Balancer.LocalBalance(r.ctx, level)
	if len(migs) > 0 {
		r.localMigs += len(migs)
		r.chargeMigrations(migs, vclock.LocalComm, vclock.RemoteComm)
		r.opt.Trace.Add(trace.LocalBalance, level, r.clock.Now(), fmt.Sprintf("migrations=%d", len(migs)))
	}
	// The hook fires even for an empty migration list: "already
	// balanced" is itself a claim the oracle checks.
	r.fireInvariant(PhaseLocalBalance, level, nil, migs, false)
}

// globalBalance implements the left column of Fig. 4 after a level-0
// step: record T(t), let the scheme decide, charge probe and
// redistribution costs, measure δ for the next decision, and reset
// the interval accumulators.
func (r *Runner) globalBalance() {
	r.rec.SetIntervalTime(r.clock.Now() - r.intervalStart)
	if r.opt.History != nil {
		r.opt.History.Record("step-time", r.clock.Now()-r.intervalStart)
		r.opt.History.Record("cells", float64(r.ledger.TotalCells()))
		r.opt.History.Record("imbalance-ratio", r.rec.ImbalanceRatio(r.sys))
		r.opt.History.Record("remote-comm", r.clock.PhaseTotal(vclock.RemoteComm))
	}
	if r.opt.Faults != nil {
		r.noteMembership()
		r.noteQuarantine()
	}
	if r.opt.LedgerCheck {
		// Oracle for the incremental Eq. 2 aggregates: the recorder's
		// group sums must match a recompute over all processors right
		// before the decision reads them.
		if err := r.rec.VerifyGroups(r.sys); err != nil {
			panic("engine: recorder group aggregates diverged: " + err.Error())
		}
	}
	forced := r.ctx.ForceEval
	d := r.opt.Balancer.GlobalBalance(r.ctx)
	r.ctx.ForceEval = false
	overhead := d.ProbeTime
	if d.Evaluated {
		r.globalEvals++
		overhead += evalFlops / r.sys.FlopsPerSecond
		if forced {
			r.catchupEvals++
		}
	}
	if overhead > 0 {
		r.clock.AddUniform(vclock.DLBOverhead, overhead)
	}
	if d.Evaluated {
		r.opt.Trace.Add(trace.GlobalCheck, 0, r.clock.Now(),
			fmt.Sprintf("gain=%.4g cost=%.4g invoked=%v forced=%v", d.Gain, d.Cost, d.Invoked, forced))
	}
	if d.RetryTime > 0 {
		// Wasted probe attempts and backoff inflate the δ overhead term
		// of Eq. 1: the next cost estimate sees an unreliable network.
		failedAttempts := d.ProbeAttempts - 1
		if d.ProbeFailed {
			failedAttempts = d.ProbeAttempts
		}
		r.probeRetries += failedAttempts
		r.retryTime += d.RetryTime
		r.rec.AddDelta(d.RetryTime)
		r.opt.Trace.Add(trace.ProbeRetry, 0, r.clock.Now(),
			fmt.Sprintf("attempts=%d retry-time=%.4fs failed=%v", d.ProbeAttempts, d.RetryTime, d.ProbeFailed))
	}
	if d.UsedForecast {
		r.probeFallbacks++
		r.opt.Trace.Add(trace.Fault, 0, r.clock.Now(), "probe failed; cost model fell back to forecast")
	} else if d.ProbeFailed {
		r.opt.Trace.Add(trace.Fault, 0, r.clock.Now(), "probe failed; no forecast history; redistribution skipped")
	}
	if d.ProbeAttempts > 0 {
		// The probe outcome is the membership tracker's evidence stream:
		// retry exhaustion raises suspicion against both endpoint
		// groups, success clears it.
		r.noteProbeEvidence(d.ProbedA, d.ProbedB, d.ProbeFailed)
	}
	if d.Invoked {
		if d.Evaluated {
			// The distributed scheme's global redistribution: remote
			// transfers plus the computational overhead δ (measured
			// and remembered for the next Eq. 1 evaluation).
			r.globalRedists++
			r.chargeMigrations(d.Migrations, vclock.Redistribution, vclock.Redistribution)
			var movedCells int64
			for _, m := range d.Migrations {
				if g := r.h.Grid(m.Grid); g != nil {
					movedCells += g.NumCells()
				}
			}
			// δ covers "the time to partition the grids at the top
			// level, rebuild the internal data structures, and update
			// boundary conditions" — it scales with the level-0 size,
			// not just the moved volume.
			delta := float64(movedCells+r.h.TotalCells(0)) * regridFlopsPerCell / r.sys.FlopsPerSecond
			r.clock.AddUniform(vclock.Redistribution, delta)
			r.rec.SetDelta(delta)
			r.opt.Trace.Add(trace.Redistribution, 0, r.clock.Now(),
				fmt.Sprintf("migrations=%d bytes=%d", len(d.Migrations), d.MovedBytes))
		} else {
			// The parallel scheme's per-step rebalancing of level 0.
			r.localMigs += len(d.Migrations)
			r.chargeMigrations(d.Migrations, vclock.LocalComm, vclock.RemoteComm)
		}
	}
	if d.GainCostValid {
		r.lastGain, r.lastCost, r.lastGamma = d.Gain, d.Cost, d.Gamma
	}
	// The oracle hook fires before the interval resets, so checkers
	// still see the recorder state the decision read.
	r.fireInvariant(PhaseGlobalBalance, 0, &d, d.Migrations, forced)
	r.rec.ResetInterval()
	r.intervalStart = r.clock.Now()
}

// regrid rebuilds the fine levels from the driver's flags at the
// current simulated time, placing children via the scheme.
func (r *Runner) regrid(initial bool) {
	flagger := func(level int, f *cluster.FlagField) {
		if r.opt.GradientField != "" {
			r.h.FlagWhereGradient(level, r.opt.GradientField, r.opt.GradientThreshold, f)
			return
		}
		r.driver.Flag(level, r.t, f)
	}
	place := func(childBox geom.Box, parent *amr.Grid) int {
		return r.opt.Balancer.PlaceChild(r.ctx, childBox, parent)
	}
	r.h.RegridAll(0, flagger, r.opt.Regrid, place)
	if initial && r.opt.WithData {
		// At t=0 the exact initial condition beats prolonged data.
		for l := 1; l <= r.h.MaxLevel; l++ {
			for _, g := range r.h.Grids(l) {
				r.driver.InitialCondition(g.Patch, r.dx(l))
			}
		}
	}
	// Charge the regrid cost: flag evaluation, clustering and
	// data-structure rebuild scale with the cell count.
	cells := r.ledger.TotalCells()
	r.clock.AddUniform(vclock.Regrid, float64(cells)*regridFlopsPerCell/r.sys.FlopsPerSecond)
	r.opt.Trace.Add(trace.Regrid, 0, r.clock.Now(), fmt.Sprintf("cells=%d", cells))
	r.fireInvariant(PhaseRegrid, 0, nil, nil, false)
}

// noteQuarantine tracks group reachability across level-0 boundaries:
// it counts boundaries at which some group is quarantined and, when
// the last quarantine lifts, arms a forced catch-up gain/cost
// evaluation for the decision that follows.
func (r *Runner) noteQuarantine() {
	now := r.clock.Now()
	var quar []int
	for g := 0; g < r.sys.NumGroups(); g++ {
		if r.groupQuarantined(g, now) {
			quar = append(quar, g)
		}
	}
	if len(quar) > 0 {
		r.quarSteps++
		r.wasQuar = true
		r.opt.Trace.Add(trace.Quarantine, 0, now, fmt.Sprintf("groups=%v", quar))
	} else if r.wasQuar {
		r.wasQuar = false
		r.ctx.ForceEval = true
		r.opt.Trace.Add(trace.Quarantine, 0, now, "lifted; catch-up evaluation armed")
	}
}

// result assembles the run's metrics.
func (r *Runner) result() *metrics.Result {
	res := &metrics.Result{
		Scheme:          r.opt.Balancer.Name(),
		Dataset:         r.driver.Name(),
		SystemName:      r.sys.String(),
		Procs:           r.sys.NumProcs(),
		PerfSum:         r.sys.TotalPerf(),
		Steps:           r.opt.Steps,
		Total:           r.clock.Now(),
		Breakdown:       r.clock.Breakdown(),
		Utilisation:     r.clock.Utilisation(),
		GlobalEvals:     r.globalEvals,
		GlobalRedists:   r.globalRedists,
		LocalMigrations: r.localMigs,
		MaxCells:        r.maxCells,
		LedgerEvents:    r.ledgerEvents + r.ledger.EventCount(),
		LedgerRebuilds:  r.ledgerRebuilds + r.ledger.Rebuilds(),
		LastGain:        r.lastGain,
		LastCost:        r.lastCost,
		LastGamma:       r.lastGamma,
	}
	if r.opt.Faults != nil {
		res.FaultEvents = r.opt.Faults.NumEvents()
		res.ProbeRetries = r.probeRetries
		res.ProbeFallbacks = r.probeFallbacks
		res.RetryTime = r.retryTime
		res.QuarantinedSteps = r.quarSteps
		res.CatchupEvals = r.catchupEvals
		res.Recoveries = r.recoveries
		res.RecoveryTime = r.recoveryTime
		res.FailedProcs = len(r.failedSet)
		if r.memb != nil {
			res.SuspectTransitions = r.memb.SuspectTransitions
			res.SuspectedDead = r.memb.SuspectedToDead
			res.Rejoins = r.memb.Rejoins
			res.RejoinCatchups = r.memb.RejoinCatchups
			res.QuorumDegradedSteps = r.memb.QuorumDegradedSteps
		}
	}
	res.DiskCheckpoints = r.diskCkptWrites
	res.DiskCheckpointErrors = r.diskCkptErrors
	res.CheckpointFallbacks = r.ckptFallbacks
	res.CorruptGenerations = r.corruptGens
	res.PristineRestarts = r.pristineResets
	res.DiskPruneErrors = r.diskPruneBase
	if r.store != nil {
		res.DiskPruneErrors += r.store.PruneErrors()
	}
	if r.shards != nil {
		res.TransportFaults = r.transportFaults
		res.TransportFallbacks = r.transportFallbacks
		res.TransportFrames, res.TransportBytes = r.shards.stats()
		res.TransportTimeouts = r.shards.timeoutCount()
	}
	return res
}
