package engine_test

import (
	"fmt"

	"samrdlb/internal/dlb"
	"samrdlb/internal/engine"
	"samrdlb/internal/machine"
	"samrdlb/internal/metrics"
	"samrdlb/internal/workload"
)

func ExampleRunner_Run() {
	// The paper's headline comparison on a small deterministic system:
	// ShockPool3D over a dedicated (traffic-free) WAN, parallel DLB vs
	// distributed DLB.
	run := func(b dlb.Balancer) float64 {
		sys := machine.WanPair(2, nil)
		r := engine.New(sys, workload.NewShockPool3D(16, 2), engine.Options{
			Steps: 4, MaxLevel: 1, Balancer: b,
		})
		return r.Run().Total
	}
	par := run(dlb.ParallelDLB{})
	dist := run(dlb.DistributedDLB{})
	fmt.Println("distributed DLB wins:", metrics.Improvement(par, dist) > 0)
	// Output:
	// distributed DLB wins: true
}
