package engine

import (
	"testing"

	"samrdlb/internal/machine"
	"samrdlb/internal/solver"
	"samrdlb/internal/workload"
)

// The datacheck oracle re-runs every planned ghost fill and
// restriction against the scan-based baseline and panics on any
// bitwise divergence, so these runs fail loudly if the cached
// data-motion plan ever drifts from the original semantics.

func TestDataCheckQuickstartConfig(t *testing.T) {
	// The examples/quickstart scenario carrying real field data, with
	// the oracle armed and a worker pool attached (pooled execution
	// must also be bit-exact).
	if testing.Short() {
		t.Skip("oracle mode re-runs the scan fill every exchange")
	}
	r := New(machine.WanPair(4, nil), workload.NewShockPool3D(32, 2), Options{
		Steps: 6, MaxLevel: 2, WithData: true, DataCheck: true,
		Pool: solver.NewPool(4),
	})
	res := r.Run()
	if res.Steps != 6 {
		t.Fatalf("run did not complete: %d steps", res.Steps)
	}
}

func TestDataCheckShockPoolSequential(t *testing.T) {
	// Same workload without a pool: the sequential plan executor goes
	// through the oracle too.
	r := New(machine.WanPair(2, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 5, MaxLevel: 1, WithData: true, DataCheck: true,
	})
	res := r.Run()
	if res.Steps != 5 {
		t.Fatalf("run did not complete: %d steps", res.Steps)
	}
}

func TestDataCheckFaultRecoveryConfig(t *testing.T) {
	// The faults scenario: an outage, lossy probes and a processor
	// failure with checkpoint recovery swapping in a fresh hierarchy —
	// the rebuilt hierarchy's plans must still match the scan baseline
	// through the repartition and the rest of the run.
	if testing.Short() {
		t.Skip("oracle mode re-runs the scan fill every exchange")
	}
	bt := boundaryClocks(t, 8)
	r := New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 8, MaxLevel: 1, Faults: wanScenario(t, bt),
		WithData: true, DataCheck: true, Pool: solver.NewPool(4),
	})
	res := r.Run()
	if res.Recoveries != 1 {
		t.Fatalf("scenario should recover exactly once, got %d", res.Recoveries)
	}
}

func TestDataCheckResumeFromCheckpoint(t *testing.T) {
	// Crash/resume through the durable store with the oracle armed on
	// both the original and the resumed runner: resumed hierarchies
	// build their plans from restored state.
	if testing.Short() {
		t.Skip("oracle mode re-runs the scan fill every exchange")
	}
	testResumeIdentity(t, []int{3}, func() workload.Driver {
		return workload.NewShockPool3D(16, 2)
	}, func(o *Options) {
		o.WithData = true
		o.DataCheck = true
		o.Pool = solver.NewPool(2)
	})
}
