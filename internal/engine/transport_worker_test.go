package engine

import (
	"sync"
	"testing"
	"time"

	"samrdlb/internal/machine"
	"samrdlb/internal/metrics"
	"samrdlb/internal/mpx"
	"samrdlb/internal/solver"
	"samrdlb/internal/workload"
)

// connectedWorkerEndpoints brings up one wire endpoint per processor
// group, fully connected with the lower-dials-higher convention, with
// wire timeouts (and therefore heartbeats) armed before any dial.
func connectedWorkerEndpoints(t *testing.T, ngroups int, wireTimeout time.Duration) []*mpx.TCPEndpoint {
	t.Helper()
	sys := machine.WanPair(2, nil)
	eps := make([]*mpx.TCPEndpoint, ngroups)
	for g := range eps {
		ep, err := mpx.ListenTCP(g, "127.0.0.1:0", sys.GroupOf)
		if err != nil {
			t.Fatal(err)
		}
		ep.SetWireTimeout(wireTimeout)
		eps[g] = ep
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
	})
	for i := 0; i < ngroups; i++ {
		for j := i + 1; j < ngroups; j++ {
			if err := eps[i].DialRetry(j, eps[j].Addr(), 10*time.Second); err != nil {
				t.Fatal(err)
			}
		}
	}
	return eps
}

// newWorkerRunner builds one worker-process replica of the reference
// scenario. Each replica gets its own System and driver — in a real
// supervised run they live in separate OS processes.
func newWorkerRunner(shard, steps int, ep *mpx.TCPEndpoint) *Runner {
	return New(machine.WanPair(2, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: steps, MaxLevel: 1, WithData: true, UseMPX: true,
		Transport: TransportWorker,
		Worker:    &WorkerWire{Shard: shard, Endpoint: ep},
	})
}

// requireWorkerResultMatches asserts the worker-replica oracle: the
// full Result fingerprint plus the headline counters must match the
// loopback reference. Field data is deliberately not part of the
// contract — a worker's copies of remote-owned grids go stale by
// design, and once any phase falls back the in-memory rewrite reads
// those stale copies. Only the Result is pinned across workers.
func requireWorkerResultMatches(t *testing.T, who string, ref, got *metrics.Result) {
	t.Helper()
	if got.Total != ref.Total {
		t.Errorf("%s: virtual time differs: %v vs %v", who, got.Total, ref.Total)
	}
	if got.GlobalEvals != ref.GlobalEvals || got.GlobalRedists != ref.GlobalRedists ||
		got.LocalMigrations != ref.LocalMigrations {
		t.Errorf("%s: load-balancer counters differ: %d/%d/%d vs %d/%d/%d", who,
			got.GlobalEvals, got.GlobalRedists, got.LocalMigrations,
			ref.GlobalEvals, ref.GlobalRedists, ref.LocalMigrations)
	}
	if got.String() != ref.String() {
		t.Errorf("%s: Result fingerprint diverged:\n got: %s\nwant: %s", who, got, ref)
	}
}

// TestWorkerTransportMatchesLoopback is the multi-process tentpole's
// in-process safety net: one engine replica per group, each hosting
// only its shard behind a real socket, run concurrently — and every
// replica must report the very Result the single-process loopback run
// reports, with frames demonstrably crossing the wire.
func TestWorkerTransportMatchesLoopback(t *testing.T) {
	loopRes, loopRun := runTransport(TransportLoopback, nil)

	eps := connectedWorkerEndpoints(t, 2, 5*time.Second)
	runners := make([]*Runner, 2)
	for g := range runners {
		runners[g] = newWorkerRunner(g, 3, eps[g])
	}
	results := make([]*metrics.Result, 2)
	var wg sync.WaitGroup
	for g := range runners {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = runners[g].Run()
		}(g)
	}
	wg.Wait()

	for g, res := range results {
		requireWorkerResultMatches(t, "worker "+string(rune('0'+g)), loopRes, res)
		if res.TransportFrames == 0 || res.TransportBytes == 0 {
			t.Errorf("worker %d moved no wire frames; the exchange stayed in memory", g)
		}
		// No fallback assertion here: the first worker to finish closes
		// its endpoint, and a peer still draining its final phase may
		// legally detach onto the (bit-identical) in-memory path.
	}

	// Owned-grid exactness: while every phase runs over the wire, ghost
	// data always comes from the owning worker, so owned interiors never
	// drift — bit-for-bit equal to the loopback run. The guarantee ends
	// at the first fallback (the in-memory rewrite reads stale copies of
	// remote-owned grids), so skip a worker that detached during the
	// end-of-run teardown race.
	sys := machine.WanPair(2, nil)
	for g, rr := range runners {
		if results[g].TransportFallbacks != 0 {
			continue
		}
		for l := 0; l <= 1; l++ {
			ga, gw := loopRun.Hierarchy().Grids(l), rr.Hierarchy().Grids(l)
			if len(ga) != len(gw) {
				t.Fatalf("worker %d: grid counts differ at level %d: %d vs %d", g, l, len(gw), len(ga))
			}
			for i := range gw {
				if sys.GroupOf(gw[i].Owner) != g {
					continue
				}
				fa, fw := ga[i].Patch.Field(solver.FieldQ), gw[i].Patch.Field(solver.FieldQ)
				for k := range fa {
					if fa[k] != fw[k] {
						t.Fatalf("worker %d: owned level %d grid %d differs at %d: %v vs %v",
							g, l, i, k, fw[k], fa[k])
					}
				}
			}
		}
	}
}

// TestWorkerDetachOnPeerExitStaysIdentical pins the crash-survival
// contract: worker 1 vanishes after one step (its endpoint closes with
// its process — here emulated by a shorter Steps budget), and worker 0
// must detect the loss, permanently detach onto the in-memory data
// path, and still finish with exactly the fault-free Result — a dead
// peer costs availability of the wire, never correctness.
func TestWorkerDetachOnPeerExitStaysIdentical(t *testing.T) {
	loopRes, _ := runTransport(TransportLoopback, nil)

	eps := connectedWorkerEndpoints(t, 2, 2*time.Second)
	survivor := newWorkerRunner(0, 3, eps[0])
	quitter := newWorkerRunner(1, 1, eps[1])

	var res0 *metrics.Result
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		res0 = survivor.Run()
	}()
	go func() {
		defer wg.Done()
		quitter.Run()
	}()
	wg.Wait()

	requireWorkerResultMatches(t, "survivor", loopRes, res0)
	if res0.TransportFallbacks == 0 {
		t.Error("survivor never fell back; peer loss went unnoticed")
	}
	if res0.TransportFrames == 0 {
		t.Error("survivor moved no wire frames before the peer left")
	}
}

// TestWorkerTransportValidation pins the option validation for the
// worker transport mode.
func TestWorkerTransportValidation(t *testing.T) {
	mustPanic := func(name string, opt Options) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: New did not panic", name)
			}
		}()
		New(machine.WanPair(1, nil), workload.NewShockPool3D(16, 2), opt)
	}
	mustPanic("worker without UseMPX", Options{Steps: 1, Transport: TransportWorker})
	mustPanic("worker without Worker", Options{
		Steps: 1, WithData: true, UseMPX: true, Transport: TransportWorker,
	})
	mustPanic("worker with DataCheck", Options{
		Steps: 1, WithData: true, UseMPX: true, DataCheck: true,
		Transport: TransportWorker, Worker: &WorkerWire{Shard: 0, Detached: true},
	})
}

// TestDetachedWorkerRunsPlainPath pins the restart path's engine mode:
// a detached worker (no endpoint at all) must run the plain in-memory
// path end-to-end and still produce the reference Result.
func TestDetachedWorkerRunsPlainPath(t *testing.T) {
	loopRes, _ := runTransport(TransportLoopback, nil)
	r := New(machine.WanPair(2, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 3, MaxLevel: 1, WithData: true, UseMPX: true,
		Transport: TransportWorker,
		Worker:    &WorkerWire{Shard: 1, Detached: true},
	})
	res := r.Run()
	requireWorkerResultMatches(t, "detached worker", loopRes, res)
	if res.TransportFrames != 0 {
		t.Errorf("detached worker reports %d wire frames", res.TransportFrames)
	}
}
