package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"samrdlb/internal/machine"
	"samrdlb/internal/mpx"
	"samrdlb/internal/trace"
)

// Transport mode names accepted by Options.Transport.
const (
	// TransportLoopback (and "") is the in-process mpx world: every
	// simulated processor is a goroutine rank in one shared-memory
	// communicator. It is the scenario/oracle reference configuration.
	TransportLoopback = "loopback"
	// TransportTCP runs each processor group as its own shard world
	// behind a real localhost socket: inter-group messages travel as
	// CRC32-framed bytes, exercising marshalling, ordering and the
	// abort protocol. The netsim link model remains the sole timing
	// authority — the wire carries payloads, never costs.
	TransportTCP = "tcp"
	// TransportWorker is one shard of a supervised multi-process run:
	// this OS process hosts a single group's ranks behind an endpoint
	// connected to the peer worker processes, while replicating the
	// deterministic control plane (every worker computes the same
	// decisions, clock and Result). A wire failure — a crashed or
	// stopped peer — permanently detaches the worker onto the plain
	// in-memory data path, whose virtual-time charging is identical.
	TransportWorker = "worker"
)

// WorkerWire configures one worker process's shard (Transport=worker).
type WorkerWire struct {
	// Shard is the processor-group id this process hosts.
	Shard int
	// Endpoint is the worker's already-connected wire endpoint; New
	// binds the shard world to it. nil runs the worker detached.
	Endpoint *mpx.TCPEndpoint
	// Detached starts the worker without a wire — the restart path
	// after a crash, when the surviving peers have already detached.
	Detached bool
}

// shardSet is the engine's view of a sharded wire execution: one
// shard World plus one TCPEndpoint per processor group, fully
// connected with the lower-dials-higher convention.
type shardSet struct {
	worlds []*mpx.World
	eps    []*mpx.TCPEndpoint
	// worker marks a single worker-process shard: wire failures detach
	// permanently instead of resetting, and they never feed the
	// deterministic control plane.
	worker   bool
	detached atomic.Bool
}

// newTCPShards brings up one endpoint per group on an ephemeral
// localhost port, connects every pair, and builds the shard worlds.
func newTCPShards(sys *machine.System, wf mpx.WireFault, wireTimeout time.Duration) (*shardSet, error) {
	ng := sys.NumGroups()
	shardOf := func(rank int) int { return sys.GroupOf(rank) }
	s := &shardSet{}
	for g := 0; g < ng; g++ {
		ep, err := mpx.ListenTCP(g, "127.0.0.1:0", shardOf)
		if err != nil {
			s.close()
			return nil, err
		}
		if wf != nil {
			ep.SetFault(wf)
		}
		ep.SetWireTimeout(wireTimeout)
		s.eps = append(s.eps, ep)
	}
	for i := 0; i < ng; i++ {
		for j := i + 1; j < ng; j++ {
			if err := s.eps[i].Dial(j, s.eps[j].Addr()); err != nil {
				s.close()
				return nil, err
			}
		}
	}
	for g := 0; g < ng; g++ {
		w := mpx.NewShardWorld(sys.NumProcs(), shardOf, g, s.eps[g])
		s.eps[g].Bind(w)
		s.worlds = append(s.worlds, w)
	}
	return s, nil
}

// newWorkerShard wraps one worker process's already-connected endpoint
// in a single-world shard set: the local group's ranks live here, the
// peer groups' ranks live in other OS processes behind the wire.
func newWorkerShard(sys *machine.System, shard int, ep *mpx.TCPEndpoint) *shardSet {
	shardOf := func(rank int) int { return sys.GroupOf(rank) }
	w := mpx.NewShardWorld(sys.NumProcs(), shardOf, shard, ep)
	ep.Bind(w)
	return &shardSet{
		worlds: []*mpx.World{w},
		eps:    []*mpx.TCPEndpoint{ep},
		worker: true,
	}
}

// wireActive reports whether phases should still attempt the wire.
func (s *shardSet) wireActive() bool { return !s.worker || !s.detached.Load() }

// detach permanently abandons the wire after a worker-mode failure:
// broadcast the abort (best-effort — peers blocked mid-phase wake
// immediately) and close the endpoint (peers that miss the frame get
// the EOF instead). Both signals converge on the peers detaching too.
func (s *shardSet) detach(cause string) {
	if s.detached.Swap(true) {
		return
	}
	for _, ep := range s.eps {
		ep.Abort(cause)
		ep.Close()
	}
}

// wireFailure summarises a phase that failed purely on the transport:
// the computation never misbehaved, the wire did.
type wireFailure struct {
	cause  string
	faults int        // TransportError panics across all shards
	pairs  []commPair // (src rank, dst rank) of each failed send
}

// run executes body across every shard world concurrently and joins
// them — the join is the global barrier between phases. A transport-
// only failure is returned for the caller's fallback path; any other
// rank panic is re-raised unchanged.
func (s *shardSet) run(body func(r *mpx.Rank)) *wireFailure {
	var wg sync.WaitGroup
	panics := make([]interface{}, len(s.worlds))
	for i, w := range s.worlds {
		wg.Add(1)
		go func(i int, w *mpx.World) {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			w.Run(body)
		}(i, w)
	}
	wg.Wait()
	var merged mpx.RunPanicError
	for _, p := range panics {
		switch v := p.(type) {
		case nil:
		case *mpx.RunPanicError:
			merged.Panics = append(merged.Panics, v.Panics...)
		default:
			panic(v)
		}
	}
	if len(merged.Panics) == 0 {
		return nil
	}
	if !merged.TransportOnly() {
		panic(&merged)
	}
	f := &wireFailure{}
	if p := merged.Primary(); p != nil {
		f.cause = fmt.Sprintf("%v", p.Value)
	}
	for i := range merged.Panics {
		if te, ok := merged.Panics[i].Value.(*mpx.TransportError); ok {
			f.faults++
			f.pairs = append(f.pairs, commPair{te.Src, te.Dst})
		}
	}
	return f
}

// mustRun is run for phases that make no sends (per-rank kernels): a
// transport failure there means an abort leaked across a phase
// boundary, which the epoch protocol is supposed to prevent.
func (s *shardSet) mustRun(body func(r *mpx.Rank)) {
	if f := s.run(body); f != nil {
		panic("engine: transport failure in a compute-only phase: " + f.cause)
	}
}

// reset prepares every endpoint and world for the phase after an
// aborted one. Endpoints go first: their epoch bump makes straggling
// frames droppable before the worlds' mailboxes are wiped, so nothing
// from the dead phase can land afterwards.
func (s *shardSet) reset() {
	for _, ep := range s.eps {
		ep.Reset()
	}
	for _, w := range s.worlds {
		w.Reset()
	}
}

// stats sums frames and bytes actually written to the wire.
func (s *shardSet) stats() (frames, bytes int64) {
	for _, ep := range s.eps {
		f, b := ep.Stats()
		frames += f
		bytes += b
	}
	return
}

// timeoutCount sums wire deadline expiries across the endpoints.
func (s *shardSet) timeoutCount() (n int64) {
	for _, ep := range s.eps {
		n += ep.Timeouts()
	}
	return
}

func (s *shardSet) close() {
	for _, ep := range s.eps {
		ep.Close()
	}
}

// runWirePhase executes one data-motion phase over the shard worlds.
// On a transport-only failure it counts the faults, feeds them into
// membership suspicion (the wire failing between two groups is the
// same evidence stream a failed probe produces), resets the transports
// and worlds, and returns false so the caller re-runs the phase over
// the in-memory data path — which is an idempotent full rewrite of
// exactly the cells the wire path writes, so a partial wire phase
// followed by the fallback is bit-identical to the fallback alone.
func (r *Runner) runWirePhase(phase string, level int, body func(rank *mpx.Rank)) bool {
	f := r.shards.run(body)
	if f == nil {
		return true
	}
	r.transportFaults += f.faults
	r.transportFallbacks++
	now := r.clock.Now()
	r.opt.Trace.Add(trace.Fault, level, now,
		fmt.Sprintf("wire %s failed (%s); falling back to in-memory exchange", phase, f.cause))
	if r.shards.worker {
		// A worker's wire failure means a peer process crashed or hung.
		// When the failure lands is wall-clock, so it must not perturb
		// the deterministic control plane — crash evidence feeds the
		// supervisor's membership tracker, not this replica's balancer.
		// Detach permanently; every remaining phase runs the in-memory
		// path with identical virtual-time charging.
		r.shards.detach(f.cause)
		return false
	}
	seen := make(map[commPair]bool)
	for _, pr := range f.pairs {
		ga, gb := r.sys.GroupOf(pr.src), r.sys.GroupOf(pr.dst)
		gp := commPair{ga, gb}
		if seen[gp] {
			continue
		}
		seen[gp] = true
		r.noteProbeEvidence(ga, gb, true)
	}
	r.shards.reset()
	return false
}

// StepDigest returns a compact fingerprint of the run's state after a
// level-0 step — the value replicated lockstep processes exchange to
// detect divergence. Any difference in decisions, data motion or the
// virtual clock perturbs at least one component.
func (r *Runner) StepDigest(step int) []float64 {
	return []float64{
		float64(step),
		r.clock.Now(),
		float64(r.globalEvals),
		float64(r.globalRedists),
		float64(r.localMigs),
		float64(r.ledger.TotalCells()),
	}
}

// Close releases the runner's transport resources (no-op for loopback
// runs). Run calls it on exit; it is safe to call again.
func (r *Runner) Close() {
	if r.shards != nil {
		r.shards.close()
	}
}
