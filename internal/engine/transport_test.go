package engine

import (
	"strings"
	"testing"

	"samrdlb/internal/fault"
	"samrdlb/internal/machine"
	"samrdlb/internal/metrics"
	"samrdlb/internal/mpx"
	"samrdlb/internal/solver"
	"samrdlb/internal/workload"
)

// runTransport executes the reference scenario (two WAN groups, two
// procs each) under the given transport options and returns the result
// plus the runner for field inspection.
func runTransport(transport string, wf mpx.WireFault) (*metrics.Result, *Runner) {
	sys := machine.WanPair(2, nil)
	r := New(sys, workload.NewShockPool3D(16, 2), Options{
		Steps: 3, MaxLevel: 1, WithData: true, UseMPX: true,
		Transport: transport, WireFault: wf,
	})
	return r.Run(), r
}

// requireIdenticalRuns asserts the cross-transport oracle: virtual
// time, the migration/redistribution counters, and every field value
// must agree bit-for-bit between the two runs.
func requireIdenticalRuns(t *testing.T, a, b *metrics.Result, ra, rb *Runner) {
	t.Helper()
	if a.Total != b.Total {
		t.Errorf("virtual time differs across transports: %v vs %v", a.Total, b.Total)
	}
	if a.GlobalEvals != b.GlobalEvals || a.GlobalRedists != b.GlobalRedists ||
		a.LocalMigrations != b.LocalMigrations {
		t.Errorf("load-balancer counters differ: %d/%d/%d vs %d/%d/%d",
			a.GlobalEvals, a.GlobalRedists, a.LocalMigrations,
			b.GlobalEvals, b.GlobalRedists, b.LocalMigrations)
	}
	for l := 0; l <= 1; l++ {
		ga, gb := ra.Hierarchy().Grids(l), rb.Hierarchy().Grids(l)
		if len(ga) != len(gb) {
			t.Fatalf("grid counts differ at level %d: %d vs %d", l, len(ga), len(gb))
		}
		for i := range ga {
			fa, fb := ga[i].Patch.Field(solver.FieldQ), gb[i].Patch.Field(solver.FieldQ)
			for k := range fa {
				if fa[k] != fb[k] {
					t.Fatalf("level %d grid %d differs at %d: %v vs %v", l, i, k, fa[k], fb[k])
				}
			}
		}
	}
}

// TestTCPTransportMatchesLoopback is the tentpole's safety net: the
// same seeded scenario over the in-process loopback world and over
// real per-group TCP shards must produce identical Results and
// bit-identical field data, with the tcp run demonstrably moving
// frames across actual sockets.
func TestTCPTransportMatchesLoopback(t *testing.T) {
	loopRes, loopRun := runTransport(TransportLoopback, nil)
	tcpRes, tcpRun := runTransport(TransportTCP, nil)

	requireIdenticalRuns(t, loopRes, tcpRes, loopRun, tcpRun)

	if tcpRes.TransportFrames == 0 || tcpRes.TransportBytes == 0 {
		t.Error("tcp run moved no wire frames; the exchange stayed in memory")
	}
	if tcpRes.TransportFaults != 0 || tcpRes.TransportFallbacks != 0 {
		t.Errorf("clean tcp run reports %d faults, %d fallbacks",
			tcpRes.TransportFaults, tcpRes.TransportFallbacks)
	}
	if loopRes.TransportFrames != 0 {
		t.Errorf("loopback run reports %d wire frames", loopRes.TransportFrames)
	}
	if s := tcpRes.TransportSummary(); !strings.Contains(s, "wire transport") {
		t.Errorf("TransportSummary = %q", s)
	}
	if s := loopRes.TransportSummary(); s != "" {
		t.Errorf("loopback TransportSummary = %q, want empty", s)
	}
}

// dropFirstOffers fails the first send attempt of every (src, dst)
// pair. Offer indices are per-pair and never reset, so exactly the
// first wire phase fails; every retry after the phase fallback and
// endpoint reset succeeds.
type dropFirstOffers struct{}

func (dropFirstOffers) DropSend(src, dst int, n uint64) bool { return n == 0 }

// TestWireFaultFallsBackAndStaysIdentical injects wire drops: the
// faulted phases must fold into fault/fallback counters while the
// fallback data path keeps the run bit-identical to loopback — a
// flaky wire may cost availability, never correctness.
func TestWireFaultFallsBackAndStaysIdentical(t *testing.T) {
	loopRes, loopRun := runTransport(TransportLoopback, nil)
	tcpRes, tcpRun := runTransport(TransportTCP, dropFirstOffers{})

	requireIdenticalRuns(t, loopRes, tcpRes, loopRun, tcpRun)

	if tcpRes.TransportFaults == 0 {
		t.Error("injected drops produced no recorded transport faults")
	}
	if tcpRes.TransportFallbacks == 0 {
		t.Error("faulted phases did not fall back")
	}
	if s := tcpRes.TransportSummary(); !strings.Contains(s, "fallback") {
		t.Errorf("TransportSummary = %q, want fault/fallback accounting", s)
	}
}

// TestTCPTransportRequiresMPX pins the option validation.
func TestTCPTransportRequiresMPX(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Transport=tcp without UseMPX must panic")
		}
	}()
	New(machine.WanPair(1, nil), workload.NewShockPool3D(16, 2),
		Options{Steps: 1, Transport: TransportTCP})
}

// TestUnknownTransportRejected pins the option validation.
func TestUnknownTransportRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown Transport must panic")
		}
	}()
	New(machine.WanPair(1, nil), workload.NewShockPool3D(16, 2),
		Options{Steps: 1, WithData: true, UseMPX: true, Transport: "carrier-pigeon"})
}

// TestPruneErrorsSurfaceInResult drives the satellite fix end to end:
// a DiskWriteError window with a negligible per-write probability lets
// every checkpoint land but fails every prune removal, so the stranded
// deletions must show up in Result.DiskPruneErrors and the checkpoint
// summary instead of vanishing.
func TestPruneErrorsSurfaceInResult(t *testing.T) {
	sched, err := fault.NewSchedule(7,
		fault.Event{Kind: fault.DiskWriteError, Start: 0, End: 1e9, Prob: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	r := New(machine.WanPair(2, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 6, MaxLevel: 1,
		CheckpointDir: t.TempDir(), CheckpointInterval: 1, CheckpointKeep: 2,
		Faults: sched,
	})
	res := r.Run()
	if res.DiskCheckpointErrors != 0 {
		t.Fatalf("writes failed (%d); the window's probability should only hit removals", res.DiskCheckpointErrors)
	}
	if res.DiskPruneErrors == 0 {
		t.Error("failed prune removals not counted in Result.DiskPruneErrors")
	}
	sum := res.CheckpointSummary()
	if !strings.Contains(sum, "prune failures") {
		t.Errorf("CheckpointSummary = %q, want prune failures reported", sum)
	}
}
