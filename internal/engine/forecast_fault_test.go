package engine

import (
	"math"
	"testing"

	"samrdlb/internal/dlb"
	"samrdlb/internal/fault"
	"samrdlb/internal/machine"
	"samrdlb/internal/workload"
)

// TestForecastCostSaneUnderTotalProbeLoss drives the NWS fallback
// property test through the engine: probes feed the forecast history
// early in the run, then every probe is lost (p=1) for the rest of
// it. Decisions must fall back to the forecast, and no decision —
// forecast-fed or probed — may carry a negative, NaN or infinite
// Gain/Cost/γ/δ into the Eq. 1 comparison.
func TestForecastCostSaneUnderTotalProbeLoss(t *testing.T) {
	bt := boundaryClocks(t, 8)
	lossStart := (bt[1] + bt[2]) / 2
	sched, err := fault.NewSchedule(7,
		fault.Event{Kind: fault.ProbeLoss, A: 0, B: 1, Start: lossStart, End: 1e9, Prob: 1})
	if err != nil {
		t.Fatal(err)
	}
	var decisions []dlb.GlobalDecision
	res := New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 8, MaxLevel: 1, Faults: sched, UseForecast: true,
		Invariants: func(pi *PhaseInfo) {
			if pi.Phase == PhaseGlobalBalance && pi.Decision != nil {
				decisions = append(decisions, *pi.Decision)
			}
		},
	}).Run()

	usedForecast := false
	for i, d := range decisions {
		if d.UsedForecast {
			usedForecast = true
		}
		if !d.GainCostValid {
			continue
		}
		for _, v := range []struct {
			name string
			val  float64
		}{{"gain", d.Gain}, {"cost", d.Cost}, {"gamma", d.Gamma}, {"delta", d.Delta}} {
			if math.IsNaN(v.val) || math.IsInf(v.val, 0) || v.val < 0 {
				t.Errorf("decision %d: %s = %v (forecast=%v probe-failed=%v)",
					i, v.name, v.val, d.UsedForecast, d.ProbeFailed)
			}
		}
	}
	if res.ProbeFallbacks == 0 || !usedForecast {
		t.Fatalf("total probe loss with history must fall back to the forecast: fallbacks=%d used=%v",
			res.ProbeFallbacks, usedForecast)
	}
}

// TestQuarantineCatchupWithinOneStep pins the recovery latency claim:
// after an outage window closes, the forced catch-up gain/cost
// evaluation fires at the first level-0 boundary past the recovery —
// not a step later. The invariants hook's Forced flag is the
// observable.
func TestQuarantineCatchupWithinOneStep(t *testing.T) {
	bt := boundaryClocks(t, 8)
	outStart := (bt[0] + bt[1]) / 2
	outEnd := (bt[2] + bt[3]) / 2
	sched, err := fault.NewSchedule(7,
		fault.Event{Kind: fault.LinkOutage, A: 0, B: 1, Start: outStart, End: outEnd})
	if err != nil {
		t.Fatal(err)
	}
	var forcedSteps []int
	var clocks []float64
	res := New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 8, MaxLevel: 1, Faults: sched,
		Invariants: func(pi *PhaseInfo) {
			if pi.Phase == PhaseGlobalBalance && pi.Forced {
				forcedSteps = append(forcedSteps, pi.Step)
			}
		},
		AfterStep: func(step int, rr *Runner) { clocks = append(clocks, rr.Clock().Now()) },
	}).Run()

	if res.QuarantinedSteps < 1 {
		t.Fatalf("outage spanning two boundaries must quarantine the link, got %d steps", res.QuarantinedSteps)
	}
	if res.CatchupEvals < 1 {
		t.Fatalf("lifting the outage must force a catch-up evaluation, got %d", res.CatchupEvals)
	}
	if len(forcedSteps) == 0 {
		t.Fatal("no forced global evaluation surfaced through the invariants hook")
	}
	sF := forcedSteps[0]
	if clocks[sF] < outEnd {
		t.Errorf("catch-up at step %d (t=%.4f) before the outage lifted (t=%.4f)", sF, clocks[sF], outEnd)
	}
	if sF > 0 && clocks[sF-1] >= outEnd {
		t.Errorf("link recovered before step %d ended (t=%.4f >= %.4f) but the catch-up waited until step %d",
			sF-1, clocks[sF-1], outEnd, sF)
	}
}
