package engine

import (
	"math"
	"reflect"
	"testing"

	"samrdlb/internal/fault"
	"samrdlb/internal/machine"
	"samrdlb/internal/trace"
	"samrdlb/internal/vclock"
	"samrdlb/internal/workload"
)

// boundaryClocks runs the scenario with an empty fault schedule (so
// checkpoint charging is identical to a fault run) and returns the
// virtual clock at every level-0 boundary — the timeline tests use to
// place fault windows.
func boundaryClocks(t *testing.T, steps int) []float64 {
	t.Helper()
	sched, err := fault.NewSchedule(7)
	if err != nil {
		t.Fatal(err)
	}
	var times []float64
	r := New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: steps, MaxLevel: 1, Faults: sched,
		AfterStep: func(step int, rr *Runner) {
			times = append(times, rr.Clock().Now())
		},
	})
	r.Run()
	return times
}

// wanScenario is the acceptance scenario of the fault issue: a WAN
// outage spanning at least two level-0 steps, a probe-loss window
// after it, and one processor failure later in the run.
func wanScenario(t *testing.T, bt []float64) *fault.Schedule {
	t.Helper()
	a := (bt[0] + bt[1]) / 2
	b := (bt[3] + bt[4]) / 2
	tf := (bt[5] + bt[6]) / 2
	sched, err := fault.NewSchedule(7,
		fault.Event{Kind: fault.LinkOutage, A: 0, B: 1, Start: a, End: b},
		fault.Event{Kind: fault.ProbeLoss, A: 0, B: 1, Start: b, End: tf, Prob: 0.7},
		fault.Event{Kind: fault.ProcFailure, Proc: 5, Start: tf},
	)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

func TestFaultScenarioGracefulDegradationAndRecovery(t *testing.T) {
	bt := boundaryClocks(t, 8)
	tr := trace.New()
	r := New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 8, MaxLevel: 1, Faults: wanScenario(t, bt), Trace: tr,
	})
	res := r.Run()

	if res.QuarantinedSteps < 2 {
		t.Errorf("outage should quarantine >=2 level-0 boundaries, got %d", res.QuarantinedSteps)
	}
	if res.CatchupEvals < 1 {
		t.Errorf("closing the outage window should force a catch-up evaluation, got %d", res.CatchupEvals)
	}
	if res.FailedProcs != 1 || res.Recoveries != 1 {
		t.Errorf("one failure, one recovery expected: failed=%d recoveries=%d",
			res.FailedProcs, res.Recoveries)
	}
	if res.RecoveryTime <= 0 {
		t.Error("recovery must record lost+replayed wall time")
	}
	if res.Breakdown[vclock.Recovery] <= 0 {
		t.Error("checkpoint/restore cost must appear in the Recovery phase")
	}
	if res.FaultEvents != 3 {
		t.Errorf("FaultEvents = %d, want 3", res.FaultEvents)
	}
	if !res.Faulty() || res.FaultSummary() == "" {
		t.Error("result must report itself faulty with a non-empty summary")
	}

	// During the outage the run performs only local balancing: between
	// the first quarantine event and the lift, no global evaluation or
	// redistribution may appear in the trace.
	first, lifted := -1, -1
	for i, e := range tr.Events {
		if e.Kind == trace.Quarantine {
			if e.Note == "lifted; catch-up evaluation armed" {
				if lifted < 0 {
					lifted = i
				}
			} else if first < 0 {
				first = i
			}
		}
	}
	if first < 0 || lifted < 0 || lifted <= first {
		t.Fatalf("expected quarantine window in trace (first=%d lifted=%d)", first, lifted)
	}
	for _, e := range tr.Events[first:lifted] {
		if e.Kind == trace.GlobalCheck || e.Kind == trace.Redistribution {
			t.Errorf("global phase ran during the outage: %+v", e)
		}
	}
	if tr.Count(trace.Recovery) < 2 { // >=1 checkpoint + 1 restore
		t.Errorf("trace should carry checkpoint/restore events, got %d", tr.Count(trace.Recovery))
	}
	if tr.Count(trace.Fault) == 0 {
		t.Error("processor failure must appear as a fault trace event")
	}

	// The failed processor owns nothing after recovery.
	for l := 0; l <= r.Hierarchy().MaxLevel; l++ {
		for _, g := range r.Hierarchy().Grids(l) {
			if g.Owner == 5 {
				t.Fatalf("grid %d still owned by failed processor 5", g.ID)
			}
		}
	}
}

func TestFaultScenarioDeterministicReplay(t *testing.T) {
	bt := boundaryClocks(t, 8)
	run := func() (string, string, []trace.Event, interface{}) {
		tr := trace.New()
		r := New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), Options{
			Steps: 8, MaxLevel: 1, Faults: wanScenario(t, bt), Trace: tr,
		})
		res := r.Run()
		return res.String(), res.FaultSummary(), tr.Events, *res
	}
	s1, f1, e1, r1 := run()
	s2, f2, e2, r2 := run()
	if s1 != s2 {
		t.Errorf("metrics line differs between identical runs:\n%s\n%s", s1, s2)
	}
	if f1 != f2 {
		t.Errorf("fault summary differs between identical runs:\n%s\n%s", f1, f2)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("full results differ between identical runs:\n%+v\n%+v", r1, r2)
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Errorf("traces differ between identical runs (%d vs %d events)", len(e1), len(e2))
	}
}

func TestProbeRetryTimeChargedToDelta(t *testing.T) {
	// Probe loss over the whole run, huge gamma so no redistribution
	// ever runs (SetDelta would overwrite the accumulator): every bit
	// of delta must then come from AddDelta(retry time).
	sched, err := fault.NewSchedule(11,
		fault.Event{Kind: fault.ProbeLoss, A: 0, B: 1, Start: 0, End: 1e9, Prob: 0.6},
	)
	if err != nil {
		t.Fatal(err)
	}
	r := New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 6, MaxLevel: 1, Faults: sched, Gamma: 1e12,
	})
	res := r.Run()
	if res.ProbeRetries == 0 {
		t.Fatal("probe loss at p=0.6 over the whole run should force retries")
	}
	if res.RetryTime <= 0 {
		t.Fatal("retries must accumulate retry time")
	}
	if got := r.rec.Delta(); math.Abs(got-res.RetryTime) > 1e-12 {
		t.Errorf("delta = %g, want retry time %g charged into it", got, res.RetryTime)
	}
	if res.GlobalRedists != 0 {
		t.Errorf("gamma veto should prevent redistribution, got %d", res.GlobalRedists)
	}
}

func TestProbeRetryDeterministicUnderSeed(t *testing.T) {
	run := func(seed int64) (int, int, float64) {
		sched, err := fault.NewSchedule(seed,
			fault.Event{Kind: fault.ProbeLoss, A: 0, B: 1, Start: 0, End: 1e9, Prob: 0.5},
		)
		if err != nil {
			t.Fatal(err)
		}
		r := New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), Options{
			Steps: 6, MaxLevel: 1, Faults: sched,
		})
		res := r.Run()
		return res.ProbeRetries, res.ProbeFallbacks, res.RetryTime
	}
	a1, b1, c1 := run(3)
	a2, b2, c2 := run(3)
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Errorf("same seed must replay identically: (%d,%d,%g) vs (%d,%d,%g)", a1, b1, c1, a2, b2, c2)
	}
}

func TestProcSlowdownInflatesComputeTime(t *testing.T) {
	base := New(machine.WanPair(2, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 3, MaxLevel: 1,
	}).Run()
	sched, err := fault.NewSchedule(1,
		fault.Event{Kind: fault.ProcSlowdown, Proc: 0, Start: 0, End: 1e9, Factor: 0.25},
	)
	if err != nil {
		t.Fatal(err)
	}
	slow := New(machine.WanPair(2, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 3, MaxLevel: 1, Faults: sched,
	}).Run()
	if slow.Compute() <= base.Compute() {
		t.Errorf("a 4x slowdown of proc 0 must inflate compute time: base %g, slow %g",
			base.Compute(), slow.Compute())
	}
}
