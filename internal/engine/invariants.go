package engine

import (
	"samrdlb/internal/dlb"
	"samrdlb/internal/load"
	"samrdlb/internal/machine"
)

// Phase identifies the hook point at which an Options.Invariants
// callback fires. Each phase corresponds to one structural transition
// of the run loop after which the paper's invariants must hold.
type Phase int

const (
	// PhaseRegrid fires after the hierarchy has been rebuilt from the
	// driver's flags (children placed via the scheme).
	PhaseRegrid Phase = iota
	// PhaseLocalBalance fires after the scheme's local phase for one
	// finer level, whether or not it migrated anything.
	PhaseLocalBalance
	// PhaseGlobalBalance fires after the global gain/cost decision and
	// any redistribution, before the measurement interval resets — so
	// the recorder still holds the state the decision read.
	PhaseGlobalBalance
	// PhaseCheckpoint fires after a recovery checkpoint was recorded
	// (in-memory) or written (durable store).
	PhaseCheckpoint
	// PhaseRestore fires after state was restored: from the in-memory
	// or durable checkpoint chain on processor failure, or from the
	// durable store by engine.Resume.
	PhaseRestore
)

func (p Phase) String() string {
	switch p {
	case PhaseRegrid:
		return "regrid"
	case PhaseLocalBalance:
		return "local-balance"
	case PhaseGlobalBalance:
		return "global-balance"
	case PhaseCheckpoint:
		return "checkpoint"
	case PhaseRestore:
		return "restore"
	default:
		return "unknown"
	}
}

// PhaseInfo is the snapshot handed to Options.Invariants at each hook
// point. The Runner is the live runner — callbacks may read its
// hierarchy, clock, ledger and context, but must not mutate them.
type PhaseInfo struct {
	Phase Phase
	// Step is the level-0 step being executed (the step a Restore
	// rewound to, for PhaseRestore).
	Step int
	// Level is the balanced level (PhaseLocalBalance only; 0 otherwise).
	Level int
	// Runner is the live runner.
	Runner *Runner
	// Decision is the global phase's outcome (PhaseGlobalBalance only).
	Decision *dlb.GlobalDecision
	// Migrations are the local phase's moves (PhaseLocalBalance only;
	// may be empty).
	Migrations []dlb.Migration
	// Forced reports that the global evaluation was a quarantine
	// catch-up (PhaseGlobalBalance only).
	Forced bool
}

// System exposes the machine the run executes on.
func (r *Runner) System() *machine.System { return r.sys }

// Recorder exposes the load recorder (for invariant checkers).
func (r *Runner) Recorder() *load.Recorder { return r.rec }

// Context exposes the DLB context (for invariant checkers).
func (r *Runner) Context() *dlb.Context { return r.ctx }

// Membership exposes the elastic-membership tracker (nil on runs
// without fault injection).
func (r *Runner) Membership() *machine.Membership { return r.memb }

// RunnerOptions returns a copy of the effective options (defaults
// applied).
func (r *Runner) RunnerOptions() Options { return r.opt }

// fireInvariant invokes the Options.Invariants hook, if any.
func (r *Runner) fireInvariant(ph Phase, level int, d *dlb.GlobalDecision, migs []dlb.Migration, forced bool) {
	if r.opt.Invariants == nil {
		return
	}
	r.opt.Invariants(&PhaseInfo{
		Phase: ph, Step: r.curStep, Level: level,
		Runner: r, Decision: d, Migrations: migs, Forced: forced,
	})
}
