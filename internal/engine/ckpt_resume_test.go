package engine

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"samrdlb/internal/fault"
	"samrdlb/internal/machine"
	"samrdlb/internal/workload"
)

// resumeSteps is the uninterrupted run length of the byte-identity
// tests; interval 2 puts durable generations after steps 1, 3, 5, 7.
const resumeSteps = 8

// testResumeIdentity is the tentpole acceptance check: a run
// interrupted after `stop` steps and resumed from its durable store
// must produce a Result byte-identical to the uninterrupted run's.
// mkDriver builds a fresh driver per run (drivers carry mutable state,
// e.g. particle sets); tweak customises each run's options the same
// way (constructing fresh fault schedules etc.).
func testResumeIdentity(t *testing.T, stops []int, mkDriver func() workload.Driver, tweak func(*Options)) {
	t.Helper()
	mkOpt := func(dir string, steps int) Options {
		opt := Options{Steps: steps, MaxLevel: 1, CheckpointInterval: 2, CheckpointDir: dir}
		if tweak != nil {
			tweak(&opt)
		}
		return opt
	}
	want := New(machine.WanPair(4, nil), mkDriver(), mkOpt(t.TempDir(), resumeSteps)).Run()

	for _, stop := range stops {
		dir := t.TempDir()
		New(machine.WanPair(4, nil), mkDriver(), mkOpt(dir, stop)).Run()
		r, report, err := Resume(machine.WanPair(4, nil), mkDriver(), mkOpt(dir, resumeSteps))
		if err != nil {
			t.Fatalf("stop after %d steps: %v", stop, err)
		}
		if len(report.Skipped) != 0 {
			t.Errorf("stop=%d: unexpected skipped generations %+v", stop, report.Skipped)
		}
		got := r.Run()
		if !reflect.DeepEqual(got, want) {
			t.Errorf("stop=%d: resumed result differs\n got: %+v\nwant: %+v", stop, got, want)
		}
	}
}

func TestResumeByteIdenticalResult(t *testing.T) {
	testResumeIdentity(t, []int{2, 3, 4, 5, 6, 7},
		func() workload.Driver { return workload.NewShockPool3D(16, 2) }, nil)
}

func TestResumeByteIdenticalWithData(t *testing.T) {
	testResumeIdentity(t, []int{3, 6},
		func() workload.Driver { return workload.NewShockPool3D(16, 2) },
		func(o *Options) { o.WithData = true })
}

func TestResumeByteIdenticalWithParticles(t *testing.T) {
	testResumeIdentity(t, []int{4},
		func() workload.Driver { return workload.NewAMR64(16, 2, 11) }, nil)
}

func TestResumeByteIdenticalWithSlowdownFaults(t *testing.T) {
	testResumeIdentity(t, []int{2, 5},
		func() workload.Driver { return workload.NewShockPool3D(16, 2) },
		func(o *Options) {
			sched, err := fault.NewSchedule(7,
				fault.Event{Kind: fault.ProcSlowdown, Proc: 2, Start: 0.001, End: 1e9, Factor: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			o.Faults = sched
		})
}

// TestResumeSkipsCorruptNewestGeneration corrupts the newest on-disk
// generation after the interruption: Resume must fall back to the
// previous generation, report the skip, and still converge to the
// byte-identical Result (the extra replayed steps are deterministic).
func TestResumeSkipsCorruptNewestGeneration(t *testing.T) {
	mkOpt := func(dir string, steps int) Options {
		return Options{Steps: steps, MaxLevel: 1, CheckpointInterval: 2, CheckpointDir: dir}
	}
	want := New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), mkOpt(t.TempDir(), resumeSteps)).Run()

	dir := t.TempDir()
	New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), mkOpt(dir, 6)).Run()
	names, err := filepath.Glob(filepath.Join(dir, "gen-*.ckpt"))
	if err != nil || len(names) < 2 {
		t.Fatalf("generations on disk: %v (err %v)", names, err)
	}
	sort.Strings(names)
	newest := names[len(names)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, report, err := Resume(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), mkOpt(dir, resumeSteps))
	if err != nil {
		t.Fatalf("resume must fall back past the corrupt generation: %v", err)
	}
	if len(report.Skipped) != 1 {
		t.Errorf("skipped = %+v, want exactly the corrupt newest generation", report.Skipped)
	}
	got := r.Run()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed-after-corruption result differs\n got: %+v\nwant: %+v", got, want)
	}
}

// TestRecoveryFallsBackToDurableGeneration is the run-time acceptance
// scenario: the in-memory recovery blob is corrupt when a processor
// failure strikes AND an injected disk fault bit-flipped the newest
// on-disk generation — the run must still recover from an older
// generation without panicking.
func TestRecoveryFallsBackToDurableGeneration(t *testing.T) {
	// Probe run (store enabled, empty schedule) records the boundary
	// clocks so the fault windows land where intended.
	probe, err := fault.NewSchedule(7)
	if err != nil {
		t.Fatal(err)
	}
	var bt []float64
	New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 8, MaxLevel: 1, CheckpointInterval: 2, CheckpointDir: t.TempDir(),
		Faults:    probe,
		AfterStep: func(step int, rr *Runner) { bt = append(bt, rr.Clock().Now()) },
	}).Run()

	// Bit-flip the durable write at the step-3 boundary; fail a
	// processor inside step 5; truncate the in-memory blob just before
	// the failure is detected.
	sched, err := fault.NewSchedule(7,
		fault.Event{Kind: fault.DiskBitFlip, Start: (bt[1] + bt[2]) / 2, End: (bt[3] + bt[4]) / 2},
		fault.Event{Kind: fault.ProcFailure, Proc: 5, Start: (bt[4] + bt[5]) / 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	r := New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 8, MaxLevel: 1, CheckpointInterval: 2, CheckpointDir: t.TempDir(),
		Faults: sched,
		AfterStep: func(step int, rr *Runner) {
			if step == 4 {
				rr.ckpt = rr.ckpt[:len(rr.ckpt)/2]
			}
		},
	})
	res := r.Run()
	if res.Recoveries != 1 || res.FailedProcs != 1 {
		t.Errorf("recoveries=%d failed=%d, want 1/1", res.Recoveries, res.FailedProcs)
	}
	if res.CheckpointFallbacks != 1 {
		t.Errorf("CheckpointFallbacks = %d, want 1 (corrupt in-memory blob)", res.CheckpointFallbacks)
	}
	if res.CorruptGenerations < 1 {
		t.Errorf("CorruptGenerations = %d, want >=1 (bit-flipped gen skipped)", res.CorruptGenerations)
	}
	if res.PristineRestarts != 0 {
		t.Errorf("PristineRestarts = %d, want 0 (an older generation was usable)", res.PristineRestarts)
	}
	if res.DiskCheckpointErrors != 0 {
		t.Errorf("a bit flip is a lying disk, not a write error: errors=%d", res.DiskCheckpointErrors)
	}
}

// TestRecoveryPristineRestartWithoutStore: with no durable store and a
// corrupt in-memory blob, recovery degrades to a pristine rebuild of
// the initial state — counted, traced, and panic-free.
func TestRecoveryPristineRestartWithoutStore(t *testing.T) {
	bt := boundaryClocks(t, 8)
	sched, err := fault.NewSchedule(7,
		fault.Event{Kind: fault.ProcFailure, Proc: 5, Start: (bt[4] + bt[5]) / 2})
	if err != nil {
		t.Fatal(err)
	}
	r := New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 8, MaxLevel: 1, Faults: sched,
		AfterStep: func(step int, rr *Runner) {
			if step == 4 {
				rr.ckpt = rr.ckpt[:len(rr.ckpt)/2]
			}
		},
	})
	res := r.Run()
	if res.PristineRestarts != 1 || res.CheckpointFallbacks != 1 {
		t.Errorf("pristine=%d fallbacks=%d, want 1/1", res.PristineRestarts, res.CheckpointFallbacks)
	}
	if res.Recoveries != 1 || res.FailedProcs != 1 {
		t.Errorf("recoveries=%d failed=%d, want 1/1", res.Recoveries, res.FailedProcs)
	}
	if res.Total <= 0 || res.Steps != 8 {
		t.Errorf("the restarted run must still complete: %+v", res)
	}
}

// TestResumeErrors: configuration mismatches surface as errors, never
// panics.
func TestResumeErrors(t *testing.T) {
	driver := func() workload.Driver { return workload.NewShockPool3D(16, 2) }
	if _, _, err := Resume(machine.WanPair(4, nil), driver(), Options{Steps: 8, MaxLevel: 1}); err == nil {
		t.Error("Resume without CheckpointDir must error")
	}
	if _, _, err := Resume(machine.WanPair(4, nil), driver(),
		Options{Steps: 8, MaxLevel: 1, CheckpointDir: t.TempDir()}); err == nil {
		t.Error("Resume from an empty store must error")
	}

	dir := t.TempDir()
	New(machine.WanPair(4, nil), driver(), Options{
		Steps: 4, MaxLevel: 1, CheckpointInterval: 2, CheckpointDir: dir,
	}).Run()
	if _, _, err := Resume(machine.WanPair(2, nil), driver(),
		Options{Steps: 8, MaxLevel: 1, CheckpointDir: dir}); err == nil {
		t.Error("processor-count mismatch must be rejected")
	}
	sched, err := fault.NewSchedule(9)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Resume(machine.WanPair(4, nil), driver(),
		Options{Steps: 8, MaxLevel: 1, CheckpointDir: dir, Faults: sched}); err == nil {
		t.Error("fault-configuration mismatch must be rejected")
	}
	if _, _, err := Resume(machine.WanPair(4, nil), driver(),
		Options{Steps: 8, MaxLevel: 1, CheckpointDir: dir, WithData: true}); err == nil {
		t.Error("WithData mismatch must be rejected")
	}
}
