package engine

import (
	"bytes"
	"math"
	"testing"

	"samrdlb/internal/amr"
	"samrdlb/internal/dlb"
	"samrdlb/internal/geom"
	"samrdlb/internal/machine"
	"samrdlb/internal/metrics"
	"samrdlb/internal/netsim"
	"samrdlb/internal/solver"
	"samrdlb/internal/trace"
	"samrdlb/internal/vclock"
	"samrdlb/internal/workload"
)

func TestUniformRunCompletes(t *testing.T) {
	sys := machine.Origin2000("ANL", 2)
	r := New(sys, &workload.Uniform{N0: 8, Ref: 2}, Options{Steps: 3, MaxLevel: 1})
	res := r.Run()
	if res.Total <= 0 || res.Compute() <= 0 {
		t.Errorf("run produced no time: %+v", res)
	}
	if res.Steps != 3 {
		t.Errorf("Steps = %d", res.Steps)
	}
	// Single group: no remote communication can exist.
	if res.RemoteComm() != 0 {
		t.Errorf("single-group run has remote comm %v", res.RemoteComm())
	}
	if err := r.Hierarchy().CheckProperNesting(); err != nil {
		t.Errorf("hierarchy invalid after run: %v", err)
	}
}

func TestInitLevel0CoversDomainBalanced(t *testing.T) {
	sys := machine.WanPair(2, nil)
	r := New(sys, workload.NewShockPool3D(16, 2), Options{Steps: 1})
	h := r.Hierarchy()
	if !h.Boxes(0).ContainsBox(h.Domain) {
		t.Error("level 0 must tile the domain")
	}
	if !h.Boxes(0).Disjoint() {
		t.Error("level-0 boxes must be disjoint")
	}
	// Every processor owns roughly its share.
	cells := make(map[int]int64)
	for _, g := range h.Grids(0) {
		cells[g.Owner] += g.NumCells()
	}
	want := float64(h.Domain.NumCells()) / 4
	for p := 0; p < 4; p++ {
		if math.Abs(float64(cells[p])-want) > want {
			t.Errorf("proc %d owns %d cells, want ~%v", p, cells[p], want)
		}
	}
	// Spatial assignment is contiguous in z-major order: group 0 owns
	// the low-z half of the domain.
	for _, g := range h.Grids(0) {
		if sys.GroupOf(g.Owner) == 0 && g.Box.Lo[2] >= 8 {
			t.Errorf("group 0 owns high-z box %v", g.Box)
		}
	}
}

func TestFig2ExecutionOrder(t *testing.T) {
	// Four levels, refinement factor 2: the paper's 1st..15th sequence.
	sys := machine.Origin2000("ANL", 2)
	tr := trace.New()
	r := New(sys, workload.NewStaticBlob(16, 2), Options{
		Steps: 1, MaxLevel: 3, Trace: tr, Balancer: dlb.ParallelDLB{},
	})
	r.Run()
	want := []int{0, 1, 2, 3, 3, 2, 3, 3, 1, 2, 3, 3, 2, 3, 3}
	got := tr.StepLevels()
	if len(got) != len(want) {
		t.Fatalf("step count = %d, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("integration order differs at %d: got %v want %v", i+1, got, want)
		}
	}
}

func TestFig4FlowControl(t *testing.T) {
	// Global checks only after level-0 steps; local balancing only at
	// finer levels.
	sys := machine.WanPair(2, nil)
	tr := trace.New()
	r := New(sys, workload.NewShockPool3D(16, 2), Options{
		Steps: 4, MaxLevel: 2, Trace: tr,
		// Huge eps so the global check always evaluates=false... use
		// tiny eps instead so it evaluates often.
		ImbalanceEps: 1e-9,
	})
	r.Run()
	if n := tr.Count(trace.GlobalCheck); n > 4 {
		t.Errorf("global checks %d exceed level-0 steps 4", n)
	}
	for _, e := range tr.OfKind(trace.LocalBalance) {
		if e.Level == 0 {
			t.Error("local balancing must not run at level 0 for the distributed scheme")
		}
	}
	// Steps at level 0 are exactly 4.
	n0 := 0
	for _, l := range tr.StepLevels() {
		if l == 0 {
			n0++
		}
	}
	if n0 != 4 {
		t.Errorf("level-0 steps = %d", n0)
	}
}

func TestDistributedBeatsParallelOnWAN(t *testing.T) {
	// The headline claim, in miniature: same dataset, same system,
	// parallel DLB vs distributed DLB.
	traffic := &netsim.BurstyTraffic{QuietLoad: 0.1, BusyLoad: 0.7, MeanQuiet: 20, MeanBusy: 10, Seed: 1}
	run := func(b dlb.Balancer) float64 {
		sys := machine.WanPair(4, traffic)
		r := New(sys, workload.NewShockPool3D(32, 2), Options{
			Steps: 6, MaxLevel: 2, Balancer: b,
		})
		return r.Run().Total
	}
	par := run(dlb.ParallelDLB{})
	dist := run(dlb.DistributedDLB{})
	if dist >= par {
		t.Errorf("distributed DLB (%v) should beat parallel DLB (%v) on a WAN system", dist, par)
	}
}

func TestDistributedCutsRemoteComm(t *testing.T) {
	run := func(b dlb.Balancer) *vclock.Clock {
		sys := machine.WanPair(2, nil)
		r := New(sys, workload.NewShockPool3D(16, 2), Options{
			Steps: 4, MaxLevel: 2, Balancer: b,
		})
		r.Run()
		return r.Clock()
	}
	par := run(dlb.ParallelDLB{})
	dist := run(dlb.DistributedDLB{})
	if dist.PhaseTotal(vclock.RemoteComm) >= par.PhaseTotal(vclock.RemoteComm) {
		t.Errorf("distributed remote comm %v should be below parallel %v",
			dist.PhaseTotal(vclock.RemoteComm), par.PhaseTotal(vclock.RemoteComm))
	}
}

func TestWithDataSolutionBounded(t *testing.T) {
	sys := machine.WanPair(2, nil)
	r := New(sys, workload.NewShockPool3D(16, 2), Options{
		Steps: 4, MaxLevel: 1, WithData: true, Pool: solver.NewPool(0),
	})
	r.Run()
	for l := 0; l <= 1; l++ {
		for _, g := range r.Hierarchy().Grids(l) {
			if m := g.Patch.MaxAbs(solver.FieldQ); m > 1+1e-9 {
				t.Fatalf("monotone advection overshot on level %d: %v", l, m)
			}
		}
	}
}

func TestWithDataMatchesPlanOnlyTiming(t *testing.T) {
	// Virtual time must not depend on whether real data is carried.
	run := func(withData bool) float64 {
		sys := machine.WanPair(2, nil)
		r := New(sys, workload.NewShockPool3D(16, 2), Options{
			Steps: 3, MaxLevel: 1, WithData: withData,
		})
		return r.Run().Total
	}
	a, b := run(false), run(true)
	if math.Abs(a-b) > 1e-9*math.Max(a, b) {
		t.Errorf("virtual time differs with data: %v vs %v", a, b)
	}
}

func TestParticlesSkewLoad(t *testing.T) {
	// AMR64's particles add level-0 work where the particles are.
	sys := machine.Origin2000("ANL", 2)
	d := workload.NewAMR64(16, 2, 3)
	r := New(sys, d, Options{Steps: 2, MaxLevel: 1})
	res := r.Run()
	if res.Total <= 0 {
		t.Fatal("run failed")
	}
	if d.Particles() == nil {
		t.Fatal("AMR64 must carry particles")
	}
}

func TestGlobalRedistributionHappensUnderImbalance(t *testing.T) {
	// ShockPool3D's moving plane loads one group more than the other;
	// over enough steps the distributed scheme must redistribute at
	// least once on a quiet network.
	sys := machine.WanPair(2, nil)
	tr := trace.New()
	r := New(sys, workload.NewShockPool3D(32, 2), Options{
		Steps: 10, MaxLevel: 2, Trace: tr,
	})
	res := r.Run()
	if res.GlobalRedists == 0 {
		t.Errorf("expected at least one global redistribution; evals=%d", res.GlobalEvals)
	}
	if res.GlobalRedists > res.GlobalEvals {
		t.Error("redistributions cannot exceed evaluations")
	}
	if tr.Count(trace.Redistribution) != res.GlobalRedists {
		t.Error("trace and result disagree on redistributions")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() float64 {
		sys := machine.WanPair(2, &netsim.BurstyTraffic{QuietLoad: 0.1, BusyLoad: 0.6, Seed: 4})
		r := New(sys, workload.NewAMR64(16, 2, 5), Options{Steps: 3, MaxLevel: 1})
		return r.Run().Total
	}
	if a, b := run(), run(); a != b {
		t.Errorf("runs with same seed differ: %v vs %v", a, b)
	}
}

func TestResultBreakdownConsistent(t *testing.T) {
	sys := machine.WanPair(2, nil)
	r := New(sys, workload.NewShockPool3D(16, 2), Options{Steps: 3, MaxLevel: 1})
	res := r.Run()
	var sum float64
	for _, v := range res.Breakdown {
		sum += v
	}
	if math.Abs(sum-res.Total) > 1e-9*res.Total {
		t.Errorf("breakdown sums to %v, total %v", sum, res.Total)
	}
	if res.Utilisation <= 0 || res.Utilisation > 1+1e-12 {
		t.Errorf("utilisation out of range: %v", res.Utilisation)
	}
	if res.MaxCells <= 0 {
		t.Error("MaxCells not tracked")
	}
}

func TestSequentialBaseline(t *testing.T) {
	// One processor: no communication at all, efficiency reference.
	sys := machine.Origin2000("seq", 1)
	r := New(sys, workload.NewShockPool3D(16, 2), Options{Steps: 2, MaxLevel: 1})
	res := r.Run()
	if res.Comm() != 0 {
		t.Errorf("sequential run has comm time %v", res.Comm())
	}
	if res.Compute() <= 0 {
		t.Error("sequential run must compute")
	}
}

func TestUseMPXMatchesSharedMemoryRun(t *testing.T) {
	run := func(useMPX bool) (*metrics.Result, *Runner) {
		sys := machine.WanPair(2, nil)
		r := New(sys, workload.NewShockPool3D(16, 2), Options{
			Steps: 3, MaxLevel: 1, WithData: true, UseMPX: useMPX,
		})
		return r.Run(), r
	}
	seqRes, seqRun := run(false)
	mpxRes, mpxRun := run(true)
	if seqRes.Total != mpxRes.Total {
		t.Errorf("virtual time differs under MPX: %v vs %v", seqRes.Total, mpxRes.Total)
	}
	// Field data must match bit-for-bit at every level.
	for l := 0; l <= 1; l++ {
		a, b := seqRun.Hierarchy().Grids(l), mpxRun.Hierarchy().Grids(l)
		if len(a) != len(b) {
			t.Fatalf("grid counts differ at level %d", l)
		}
		for i := range a {
			fa, fb := a[i].Patch.Field(solver.FieldQ), b[i].Patch.Field(solver.FieldQ)
			for k := range fa {
				if fa[k] != fb[k] {
					t.Fatalf("level %d grid %d differs at %d: %v vs %v", l, i, k, fa[k], fb[k])
				}
			}
		}
	}
}

func TestUseMPXRequiresWithData(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(machine.WanPair(1, nil), workload.NewShockPool3D(16, 2), Options{UseMPX: true})
}

func TestRefluxImprovesConservation(t *testing.T) {
	// Full engine runs with and without flux correction: the refluxed
	// run's level-0 mass drift must not exceed the uncorrected one.
	// (The clamp boundary exchanges mass, so exact conservation is not
	// expected — only that refluxing never makes it worse and the two
	// runs genuinely differ.)
	run := func(reflux bool) (drift float64, sum float64) {
		sys := machine.Origin2000("ANL", 2)
		r := New(sys, workload.NewStaticBlob(16, 2), Options{
			Steps: 4, MaxLevel: 1, WithData: true, Reflux: reflux,
		})
		var before float64
		for _, g := range r.Hierarchy().Grids(0) {
			before += g.Patch.Sum(solver.FieldQ)
		}
		r.Run()
		var after float64
		for _, g := range r.Hierarchy().Grids(0) {
			after += g.Patch.Sum(solver.FieldQ)
		}
		return math.Abs(after - before), after
	}
	dNo, sNo := run(false)
	dYes, sYes := run(true)
	if sNo == sYes {
		t.Error("refluxing had no effect on the solution")
	}
	if dYes > dNo+1e-9 {
		t.Errorf("refluxing worsened conservation: %v vs %v", dYes, dNo)
	}
}

func TestRefluxOptionValidation(t *testing.T) {
	assertEnginePanics(t, "reflux without data", func() {
		New(machine.Origin2000("x", 1), workload.NewStaticBlob(8, 2), Options{Reflux: true})
	})
	assertEnginePanics(t, "reflux with mpx", func() {
		New(machine.Origin2000("x", 1), workload.NewStaticBlob(8, 2),
			Options{Reflux: true, WithData: true, UseMPX: true})
	})
}

func assertEnginePanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestGradientFlaggingTracksShock(t *testing.T) {
	// Data-driven regridding: the fine grids must sit on the shock
	// front, which the solution itself defines.
	sys := machine.Origin2000("ANL", 2)
	d := workload.NewShockPool3D(16, 2)
	r := New(sys, d, Options{
		Steps: 3, MaxLevel: 1, WithData: true,
		GradientField: solver.FieldQ, GradientThreshold: 0.3,
	})
	r.Run()
	h := r.Hierarchy()
	if len(h.Grids(1)) == 0 {
		t.Fatal("gradient flagging produced no fine grids")
	}
	// The real invariant: every steep level-0 cell (the front) must be
	// covered by the fine level.
	fineCover := h.Boxes(1).Coarsen(2)
	for _, g := range h.Grids(0) {
		q := g.Patch
		g.Box.ForEach(func(i geom.Index) {
			j := i
			j[0]++
			if !g.Box.Contains(j) {
				return
			}
			if math.Abs(q.At(solver.FieldQ, j)-q.At(solver.FieldQ, i)) > 0.5 {
				if !fineCover.Contains(i) && !fineCover.Contains(j) {
					t.Fatalf("steep front cell %v not refined", i)
				}
			}
		})
	}
}

func TestGradientFlaggingRequiresData(t *testing.T) {
	assertEnginePanics(t, "gradient without data", func() {
		New(machine.Origin2000("x", 1), workload.NewShockPool3D(8, 2),
			Options{GradientField: solver.FieldQ})
	})
}

func TestFig1HierarchyShape(t *testing.T) {
	// The paper's Figure 1: a blob refined through four levels gives a
	// tree of grids — one coarse root region, nested finer regions of
	// shrinking extent, all properly nested.
	sys := machine.Origin2000("ANL", 4)
	r := New(sys, workload.NewStaticBlob(16, 2), Options{Steps: 1, MaxLevel: 3})
	r.Run()
	h := r.Hierarchy()
	if h.NumLevels() != 4 {
		t.Fatalf("expected 4 levels like Fig. 1, got %d", h.NumLevels())
	}
	if err := h.CheckProperNesting(); err != nil {
		t.Fatalf("hierarchy not properly nested: %v", err)
	}
	// Each level's refined region shrinks relative to its domain: the
	// blob radius halves per level.
	for l := 1; l <= 3; l++ {
		frac := float64(h.TotalCells(l)) / float64(h.DomainAt(l).NumCells())
		coarser := float64(h.TotalCells(l-1)) / float64(h.DomainAt(l-1).NumCells())
		if frac >= coarser {
			t.Errorf("level %d covers %.3f of its domain, not less than level %d's %.3f",
				l, frac, l-1, coarser)
		}
	}
}

func TestRefinementFactorFour(t *testing.T) {
	// One level-0 step with r=4 subcycles the fine level four times:
	// 1 + 4 = 5 step events, and dt scales accordingly.
	sys := machine.Origin2000("ANL", 2)
	tr := trace.New()
	d := workload.NewStaticBlob(16, 4)
	r := New(sys, d, Options{Steps: 1, MaxLevel: 1, Trace: tr})
	r.Run()
	want := []int{0, 1, 1, 1, 1}
	got := tr.StepLevels()
	if len(got) != len(want) {
		t.Fatalf("steps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if err := r.Hierarchy().CheckProperNesting(); err != nil {
		t.Errorf("r=4 hierarchy invalid: %v", err)
	}
	if r.Hierarchy().DomainAt(1) != geom.UnitCube(64) {
		t.Error("r=4 fine domain wrong")
	}
}

func TestInvariantsHoldEveryStep(t *testing.T) {
	// A longer run with the invariants checked after every level-0
	// step, not just at the end: proper nesting, level-0 domain
	// coverage, and monotone virtual time.
	sys := machine.WanPair(3, nil)
	var lastNow float64
	steps := 0
	r := New(sys, workload.NewShockPool3D(16, 2), Options{
		Steps: 12, MaxLevel: 2,
		AfterStep: func(step int, r *Runner) {
			steps++
			if err := r.Hierarchy().CheckProperNesting(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if !r.Hierarchy().Boxes(0).ContainsBox(r.Hierarchy().Domain) {
				t.Fatalf("step %d: level 0 no longer tiles the domain", step)
			}
			if now := r.Clock().Now(); now <= lastNow {
				t.Fatalf("step %d: virtual time not advancing", step)
			} else {
				lastNow = now
			}
		},
	})
	r.Run()
	if steps != 12 {
		t.Errorf("AfterStep ran %d times", steps)
	}
}

func TestSedovBlastRuns(t *testing.T) {
	sys := machine.WanPair(2, nil)
	d := workload.NewSedovBlast(16, 2)
	r := New(sys, d, Options{Steps: 4, MaxLevel: 1, WithData: true})
	res := r.Run()
	if res.Total <= 0 {
		t.Fatal("run failed")
	}
	// The Burgers field must stay bounded by the initial amplitude.
	for _, g := range r.Hierarchy().Grids(0) {
		if m := g.Patch.MaxAbs(solver.FieldQ); m > d.Amplitude+1e-9 {
			t.Errorf("Sedov field overshot: %v", m)
		}
	}
	if err := r.Hierarchy().CheckProperNesting(); err != nil {
		t.Error(err)
	}
}

func TestResumeFromCheckpoint(t *testing.T) {
	sys := machine.WanPair(2, nil)
	d := workload.NewShockPool3D(16, 2)
	first := New(sys, d, Options{Steps: 3, MaxLevel: 1})
	first.Run()
	var buf bytes.Buffer
	if err := first.Hierarchy().Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := amr.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed := New(machine.WanPair(2, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 3, MaxLevel: 1,
		Resume: restored, ResumeTime: first.Time(),
	})
	if resumed.Time() != first.Time() {
		t.Error("resume time not applied")
	}
	// The resumed run starts from the checkpointed structure.
	if resumed.Hierarchy().TotalCells(0) != first.Hierarchy().TotalCells(0) {
		t.Error("resumed level 0 differs from checkpoint")
	}
	res := resumed.Run()
	if res.Total <= 0 {
		t.Fatal("resumed run failed")
	}
	if err := resumed.Hierarchy().CheckProperNesting(); err != nil {
		t.Errorf("resumed hierarchy invalid: %v", err)
	}
}

func TestResumeMismatchPanics(t *testing.T) {
	h := amr.New(geom.UnitCube(8), 2, 1, 1, false, "q")
	h.AddGrid(0, geom.UnitCube(8), 0, amr.NoGrid)
	assertEnginePanics(t, "domain mismatch", func() {
		New(machine.Origin2000("x", 1), workload.NewShockPool3D(16, 2), Options{Resume: h})
	})
}

func TestUseMPXMatchesOnMultiFieldWorkload(t *testing.T) {
	// AMR64 carries three fields and two kernels; the rank-parallel
	// exchange must still be bit-identical.
	run := func(useMPX bool) *Runner {
		sys := machine.WanPair(2, nil)
		r := New(sys, workload.NewAMR64(16, 2, 9), Options{
			Steps: 2, MaxLevel: 1, WithData: true, UseMPX: useMPX,
		})
		r.Run()
		return r
	}
	a, b := run(false), run(true)
	for l := 0; l <= 1; l++ {
		ga, gb := a.Hierarchy().Grids(l), b.Hierarchy().Grids(l)
		if len(ga) != len(gb) {
			t.Fatalf("grid counts differ at level %d", l)
		}
		for i := range ga {
			for _, f := range a.Hierarchy().Fields {
				fa, fb := ga[i].Patch.Field(f), gb[i].Patch.Field(f)
				for k := range fa {
					if fa[k] != fb[k] {
						t.Fatalf("level %d grid %d field %s differs", l, i, f)
					}
				}
			}
		}
	}
}

func TestHistoryRecordedPerStep(t *testing.T) {
	h := metrics.NewHistory()
	sys := machine.WanPair(2, nil)
	r := New(sys, workload.NewShockPool3D(16, 2), Options{Steps: 5, MaxLevel: 1, History: h})
	r.Run()
	for _, name := range []string{"step-time", "cells", "imbalance-ratio", "remote-comm"} {
		if got := len(h.Get(name)); got != 5 {
			t.Errorf("series %s has %d points, want 5", name, got)
		}
	}
	for _, v := range h.Get("imbalance-ratio") {
		if v < 1 {
			t.Errorf("imbalance ratio below 1: %v", v)
		}
	}
}
