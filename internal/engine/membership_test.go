package engine

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"samrdlb/internal/fault"
	"samrdlb/internal/machine"
	"samrdlb/internal/metrics"
	"samrdlb/internal/trace"
	"samrdlb/internal/workload"
)

// rejoinSchedule is the elastic-membership acceptance schedule: every
// group loses one processor to a bounded outage and regains it with
// several level-0 steps left to absorb the catch-up.
func rejoinSchedule(t *testing.T, bt []float64) *fault.Schedule {
	t.Helper()
	sched, err := fault.NewSchedule(7,
		// Group 0 loses proc 1 across boundaries 1-2.
		fault.Event{Kind: fault.ProcFailure, Proc: 1,
			Start: (bt[0] + bt[1]) / 2, End: (bt[2] + bt[3]) / 2},
		// Group 1 loses proc 5 across boundaries 2-3.
		fault.Event{Kind: fault.ProcFailure, Proc: 5,
			Start: (bt[1] + bt[2]) / 2, End: (bt[3] + bt[4]) / 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

// ownedCells sums processor p's ledger load across all levels.
func ownedCells(r *Runner, p int) float64 {
	total := 0.0
	for l := 0; l <= r.Hierarchy().MaxLevel; l++ {
		total += r.Ledger().ProcCells(l, p)
	}
	return total
}

// TestElasticRejoinAcceptance is the issue's acceptance scenario:
// every group loses and regains a processor, the run completes with
// both processors re-admitted and owning work at the final step, and
// the whole thing replays byte-identically.
func TestElasticRejoinAcceptance(t *testing.T) {
	bt := boundaryClocks(t, 8)
	run := func() (*Runner, []trace.Event, metrics.Result) {
		tr := trace.New()
		r := New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), Options{
			Steps: 8, MaxLevel: 1, Faults: rejoinSchedule(t, bt), Trace: tr,
		})
		res := r.Run()
		return r, tr.Events, *res
	}
	r, ev, res := run()

	m := r.Membership()
	if m == nil {
		t.Fatal("fault run must build a membership tracker")
	}
	if res.Rejoins != 2 {
		t.Fatalf("both processors must rejoin, got %d", res.Rejoins)
	}
	if res.RejoinCatchups < 1 {
		t.Fatalf("rejoins must arm at least one catch-up evaluation, got %d", res.RejoinCatchups)
	}
	if res.CatchupEvals < res.RejoinCatchups {
		t.Fatalf("armed catch-ups must run: evals %d < armed %d", res.CatchupEvals, res.RejoinCatchups)
	}
	for _, p := range []int{1, 5} {
		if st := m.State(p); st != machine.StateAlive {
			t.Errorf("proc %d should end the run alive, got %v", p, st)
		}
		if m.ReadmitStep(p) < 0 {
			t.Errorf("proc %d has no re-admission step", p)
		}
		if got := ownedCells(r, p); got <= 0 {
			t.Errorf("rejoined proc %d owns no work at the final step", p)
		}
	}
	if res.FailedProcs != 0 {
		t.Errorf("no processor is lost for good, got FailedProcs=%d", res.FailedProcs)
	}
	var sawRejoin, sawReadmit bool
	for _, e := range ev {
		if e.Kind != trace.Membership {
			continue
		}
		if strings.Contains(e.Note, "rejoin pending") {
			sawRejoin = true
		}
		if strings.Contains(e.Note, "re-admitted") {
			sawReadmit = true
		}
	}
	if !sawRejoin || !sawReadmit {
		t.Errorf("trace must carry the rejoin lifecycle (pending=%v re-admitted=%v)", sawRejoin, sawReadmit)
	}
	if res.RecoveryReport() == "" {
		t.Error("a run with rejoins must produce a recovery report")
	}

	// Byte-identical replay.
	r2, ev2, res2 := run()
	_ = r2
	if !reflect.DeepEqual(res, res2) {
		t.Errorf("results differ between identical runs:\n%+v\n%+v", res, res2)
	}
	if !reflect.DeepEqual(ev, ev2) {
		t.Errorf("traces differ between identical runs (%d vs %d events)", len(ev), len(ev2))
	}
}

// quarWindows builds a schedule of group-disconnect windows; each
// entry is (group, start, end) in boundary-clock coordinates.
func quarWindows(t *testing.T, windows [][3]float64) *fault.Schedule {
	t.Helper()
	var evs []fault.Event
	for _, w := range windows {
		evs = append(evs, fault.Event{Kind: fault.GroupDisconnect,
			Group: int(w[0]), Start: w[1], End: w[2]})
	}
	sched, err := fault.NewSchedule(7, evs...)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

// countLifts returns the number of quarantine-lift trace events (each
// arms exactly one forced catch-up evaluation).
func countLifts(ev []trace.Event) int {
	n := 0
	for _, e := range ev {
		if e.Kind == trace.Quarantine && e.Note == "lifted; catch-up evaluation armed" {
			n++
		}
	}
	return n
}

// TestOverlappingQuarantinesSingleCatchup pins the noteQuarantine
// contract for overlapping outages of multiple groups: one contiguous
// degraded window arms exactly one forced catch-up evaluation — when
// the LAST quarantine lifts — while interleaved but disjoint windows
// arm one catch-up each.
func TestOverlappingQuarantinesSingleCatchup(t *testing.T) {
	bt := boundaryClocks(t, 8)

	t.Run("overlapping", func(t *testing.T) {
		// Group 0 down over boundaries 1-2, group 1 over 2-4: the
		// windows overlap, so the degradation is one contiguous span.
		tr := trace.New()
		r := New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), Options{
			Steps: 8, MaxLevel: 1, Trace: tr,
			Faults: quarWindows(t, [][3]float64{
				{0, (bt[0] + bt[1]) / 2, (bt[2] + bt[3]) / 2},
				{1, (bt[1] + bt[2]) / 2, (bt[4] + bt[5]) / 2},
			}),
		})
		res := r.Run()
		if res.QuarantinedSteps < 3 {
			t.Errorf("overlapping windows should quarantine >=3 boundaries, got %d", res.QuarantinedSteps)
		}
		if got := countLifts(tr.Events); got != 1 {
			t.Errorf("one contiguous degraded span must lift exactly once, got %d lifts", got)
		}
		if res.CatchupEvals != 1 {
			t.Errorf("exactly one forced catch-up evaluation must run when the last quarantine lifts, got %d", res.CatchupEvals)
		}
	})

	t.Run("disjoint", func(t *testing.T) {
		// Group 0 down around boundary 1, group 1 around boundary 5:
		// two separate degraded spans, two lifts, two catch-ups.
		tr := trace.New()
		r := New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), Options{
			Steps: 8, MaxLevel: 1, Trace: tr,
			Faults: quarWindows(t, [][3]float64{
				{0, (bt[0] + bt[1]) / 2, (bt[1] + bt[2]) / 2},
				{1, (bt[4] + bt[5]) / 2, (bt[6] + bt[7]) / 2},
			}),
		})
		res := r.Run()
		if got := countLifts(tr.Events); got != 2 {
			t.Errorf("two disjoint degraded spans must lift twice, got %d lifts", got)
		}
		if res.CatchupEvals != 2 {
			t.Errorf("each lift must force one catch-up evaluation, got %d", res.CatchupEvals)
		}
	})
}

// TestSuspicionFromProbeRetries drives the membership tracker from the
// probe path alone — no scripted processor failures: sustained probe
// loss must raise suspicion (visible in the counters), and the run
// must stay deterministic under the same seed.
func TestSuspicionFromProbeRetries(t *testing.T) {
	run := func() metrics.Result {
		sched, err := fault.NewSchedule(11,
			fault.Event{Kind: fault.ProbeLoss, A: 0, B: 1, Start: 0, End: 1e9, Prob: 0.97},
		)
		if err != nil {
			t.Fatal(err)
		}
		r := New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), Options{
			Steps: 10, MaxLevel: 1, Faults: sched,
		})
		return *r.Run()
	}
	res := run()
	if res.SuspectTransitions == 0 {
		t.Fatalf("sustained probe loss must suspect at least one group's procs: %+v", res)
	}
	if res.RecoveryReport() == "" {
		t.Error("suspicion activity must produce a recovery report")
	}
	res2 := run()
	if !reflect.DeepEqual(res, res2) {
		t.Errorf("suspicion path not deterministic:\n%+v\n%+v", res, res2)
	}
}

// TestQuorumDegradation: with a per-group quorum of 2 and only two
// processors per group, losing one processor drops its group below
// quorum — the group must degrade to local-only balancing (counted in
// QuorumDegradedSteps) and recover once the processor rejoins.
func TestQuorumDegradation(t *testing.T) {
	empty, err := fault.NewSchedule(7)
	if err != nil {
		t.Fatal(err)
	}
	var bt []float64
	New(machine.WanPair(2, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 8, MaxLevel: 1, Faults: empty, GroupQuorum: 2,
		AfterStep: func(step int, rr *Runner) { bt = append(bt, rr.Clock().Now()) },
	}).Run()

	sched, err := fault.NewSchedule(7,
		fault.Event{Kind: fault.ProcFailure, Proc: 1,
			Start: (bt[0] + bt[1]) / 2, End: (bt[3] + bt[4]) / 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	r := New(machine.WanPair(2, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 8, MaxLevel: 1, Faults: sched, GroupQuorum: 2,
	})
	res := r.Run()
	if res.QuorumDegradedSteps < 1 {
		t.Errorf("outage must push group 0 below quorum for >=1 boundary, got %d", res.QuorumDegradedSteps)
	}
	if res.QuarantinedSteps < res.QuorumDegradedSteps {
		t.Errorf("below-quorum boundaries must count as quarantined: quar %d < degraded %d",
			res.QuarantinedSteps, res.QuorumDegradedSteps)
	}
	if res.Rejoins != 1 {
		t.Errorf("the processor must rejoin when its window closes, got %d", res.Rejoins)
	}
	if st := r.Membership().State(1); st != machine.StateAlive {
		t.Errorf("proc 1 should end the run alive, got %v", st)
	}
}

// TestResumeWhileProcDownReadmitsOnSchedule pins the satellite-6
// regression: a durable checkpoint taken while a processor is inside
// its outage window must, on resume, still re-admit the processor when
// the window closes — membership state survives the store round trip.
func TestResumeWhileProcDownReadmitsOnSchedule(t *testing.T) {
	bt := boundaryClocks(t, 8)
	start, end := (bt[1]+bt[2])/2, (bt[4]+bt[5])/2
	mkSched := func() *fault.Schedule {
		sched, err := fault.NewSchedule(7,
			fault.Event{Kind: fault.ProcFailure, Proc: 2, Start: start, End: end},
		)
		if err != nil {
			t.Fatal(err)
		}
		return sched
	}
	dir, err := os.MkdirTemp("", "samr-memb-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The uninterrupted run, for comparison.
	full := New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 8, MaxLevel: 1, Faults: mkSched(),
	}).Run()
	if full.Rejoins != 1 {
		t.Fatalf("setup: the outage must produce one rejoin, got %d", full.Rejoins)
	}

	// First leg: stop at step 4, inside the outage window, writing
	// durable checkpoints. The processor is down at the cut.
	firstLeg := New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 4, MaxLevel: 1, Faults: mkSched(),
		CheckpointDir: dir, CheckpointInterval: 1,
	})
	firstLeg.Run()
	if st := firstLeg.Membership().State(2); st != machine.StateDead {
		t.Fatalf("setup: proc 2 must be down at the cut, got %v", st)
	}

	// Resume with a fresh system and schedule, run to completion.
	r, _, err := Resume(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), Options{
		Steps: 8, MaxLevel: 1, Faults: mkSched(),
		CheckpointDir: dir, CheckpointInterval: 1,
	})
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if st := r.Membership().State(2); st != machine.StateDead {
		t.Fatalf("restored membership must still hold proc 2 dead, got %v", st)
	}
	res := r.Run()
	if res.Rejoins != 1 {
		t.Fatalf("resumed run must re-admit proc 2 on schedule, got %d rejoins", res.Rejoins)
	}
	if st := r.Membership().State(2); st != machine.StateAlive {
		t.Fatalf("proc 2 should end the resumed run alive, got %v", st)
	}
	if r.Membership().ReadmitStep(2) < 0 {
		t.Fatal("re-admission step not recorded after resume")
	}
	if got := ownedCells(r, 2); got <= 0 {
		t.Error("rejoined proc 2 owns no work at the end of the resumed run")
	}
}
