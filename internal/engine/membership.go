package engine

import (
	"fmt"

	"samrdlb/internal/trace"
)

// noteMembership advances the elastic-membership state machine at a
// level-0 boundary, before the global decision reads the world:
// suspicion decays for groups with no fresh probe evidence, pending
// rejoins complete — the processor is re-admitted at its current
// EffectivePerf and a forced catch-up gain/cost evaluation is armed so
// the decision that follows redistributes work onto it (charged to δ
// exactly like quarantine catch-up) — and below-quorum groups are
// counted and traced. Everything here is a pure function of the
// deterministic probe/fault history, keeping replay byte-identical.
func (r *Runner) noteMembership() {
	if r.memb == nil {
		return
	}
	now := r.clock.Now()
	preDead := r.memb.SuspectedToDead
	r.memb.BoundaryTick()
	if pend := r.memb.PendingRejoins(); len(pend) > 0 {
		for _, p := range pend {
			r.memb.CompleteRejoin(p, r.curStep)
			r.opt.Trace.Add(trace.Membership, 0, now,
				fmt.Sprintf("processor %d re-admitted at perf %.3g", p, r.sys.EffectivePerf(p)))
		}
		r.memb.RejoinCatchups++
		r.ctx.ForceEval = true
		r.opt.Trace.Add(trace.Membership, 0, now,
			fmt.Sprintf("rejoin complete for %v; catch-up evaluation armed", pend))
	}
	if r.memb.SuspectedToDead > preDead {
		r.opt.Trace.Add(trace.Membership, 0, now, "suspicion threshold crossed; processors presumed dead")
	}
	var below []int
	for g := 0; g < r.sys.NumGroups(); g++ {
		if r.memb.BelowQuorum(g) {
			below = append(below, g)
		}
	}
	if len(below) > 0 {
		r.memb.QuorumDegradedSteps++
		r.opt.Trace.Add(trace.Membership, 0, now,
			fmt.Sprintf("groups %v below quorum %d; local-only balancing", below, r.memb.Quorum))
	}
}

// noteProbeEvidence feeds the global decision's probe outcome into
// membership suspicion: a probe that exhausted its retries raises
// suspicion against both endpoint groups, a successful one clears it.
// Scripted whole-group disconnects are deliberately not fed in — they
// are ground truth the quarantine path already handles; suspicion
// models only what the run can actually observe.
func (r *Runner) noteProbeEvidence(probedA, probedB int, failed bool) {
	if r.memb == nil {
		return
	}
	now := r.clock.Now()
	if failed {
		r.memb.NoteProbeFailure(probedA)
		r.memb.NoteProbeFailure(probedB)
		r.opt.Trace.Add(trace.Membership, 0, now,
			fmt.Sprintf("probe failed between groups %d,%d; suspicion %d,%d",
				probedA, probedB, r.memb.Suspicion(probedA), r.memb.Suspicion(probedB)))
		return
	}
	hadSuspicion := r.memb.Suspicion(probedA) > 0 || r.memb.Suspicion(probedB) > 0
	r.memb.NoteProbeSuccess(probedA)
	r.memb.NoteProbeSuccess(probedB)
	if hadSuspicion {
		r.opt.Trace.Add(trace.Membership, 0, now,
			fmt.Sprintf("probe succeeded between groups %d,%d; suspicion cleared", probedA, probedB))
	}
}

// ownsCells reports whether the ledger still attributes any cells to
// processor p. After a total-capacity failure the recovery repartition
// has no alive target, so grids keep their dead owners; the first
// returning processor that still owns cells marks that situation.
func (r *Runner) ownsCells(p int) bool {
	for l := 0; l <= r.h.MaxLevel; l++ {
		if r.ledger.ProcCells(l, p) > 0 {
			return true
		}
	}
	return false
}

// completePendingRejoins re-admits every rejoining processor without
// arming a catch-up evaluation — used after a checkpoint restore,
// where the recovery repartition over the alive processors already
// placed work on them (the repartition is the re-admission).
func (r *Runner) completePendingRejoins(step int) {
	if r.memb == nil {
		return
	}
	now := r.clock.Now()
	for _, p := range r.memb.PendingRejoins() {
		r.memb.CompleteRejoin(p, step)
		r.opt.Trace.Add(trace.Membership, 0, now,
			fmt.Sprintf("processor %d re-admitted by recovery repartition", p))
	}
}
