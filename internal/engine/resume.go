package engine

import (
	"bytes"
	"fmt"

	"samrdlb/internal/amr"
	"samrdlb/internal/ckpt"
	"samrdlb/internal/fault"
	"samrdlb/internal/geom"
	"samrdlb/internal/machine"
	"samrdlb/internal/workload"
)

// Resume reconstructs a Runner from the durable checkpoint store at
// opt.CheckpointDir and continues the interrupted run: the returned
// runner's Run() executes the remaining level-0 steps and yields a
// Result identical to the uninterrupted run's. Generations that fail
// validation — torn, bit-flipped, or semantically rejected by amr.Load
// — are skipped newest-first; the report says what was skipped and
// which generation won. sys and driver must be fresh instances
// configured exactly like the original run's (the store carries no
// system or workload description, only a few compatibility fields that
// are checked here).
//
// Known resume limitations, accepted by design: the NWS forecast
// history restarts empty (runs whose decisions consult the forecast
// may diverge), and a processor failure after the resume point rewinds
// to the resume point rather than the original run's in-memory
// checkpoint.
func Resume(sys *machine.System, driver workload.Driver, opt Options) (*Runner, *ckpt.RestoreReport, error) {
	opt.setDefaults()
	if opt.CheckpointDir == "" {
		return nil, nil, fmt.Errorf("engine.Resume: Options.CheckpointDir is required")
	}
	if opt.Resume != nil {
		return nil, nil, fmt.Errorf("engine.Resume: Options.Resume must be nil (the store supplies the hierarchy)")
	}
	store, err := ckpt.Open(opt.CheckpointDir, opt.CheckpointKeep)
	if err != nil {
		return nil, nil, fmt.Errorf("engine.Resume: %w", err)
	}
	var h *amr.Hierarchy
	meta, _, report, err := store.Restore(func(m *ckpt.Meta, payload []byte) error {
		if e := validateMeta(m, sys, &opt); e != nil {
			return e
		}
		hh, e := amr.Load(bytes.NewReader(payload))
		if e != nil {
			return e
		}
		if dom := geom.UnitCube(driver.DomainN()); hh.Domain != dom {
			return fmt.Errorf("checkpoint domain %v does not match driver %q (%v)", hh.Domain, driver.Name(), dom)
		}
		if hh.RefFactor != driver.RefFactor() {
			return fmt.Errorf("checkpoint refinement factor %d, driver wants %d", hh.RefFactor, driver.RefFactor())
		}
		if hh.WithData != opt.WithData {
			return fmt.Errorf("checkpoint WithData=%v, options want %v", hh.WithData, opt.WithData)
		}
		h = hh
		return nil
	})
	if err != nil {
		return nil, report, fmt.Errorf("engine.Resume: %w", err)
	}
	opt.Resume = h
	opt.ResumeTime = meta.SimTime
	// New opens its own Store handle on the same directory (continuing
	// the generation numbering the restore saw) and attaches the
	// disk-fault injector if the run is fault-scripted.
	r := New(sys, driver, opt)
	if err := r.restoreFromMeta(meta); err != nil {
		return nil, report, fmt.Errorf("engine.Resume: %w", err)
	}
	// The restored state is a phase boundary like any other: let the
	// invariant oracle inspect it before the run continues.
	r.curStep = meta.Step
	r.fireInvariant(PhaseRestore, 0, nil, nil, false)
	return r, report, nil
}

// validateMeta rejects checkpoints that cannot possibly belong to this
// system and fault configuration — errors, never panics, so Restore
// falls through to older generations (a mismatch rejects them all and
// surfaces as a joined error).
func validateMeta(m *ckpt.Meta, sys *machine.System, opt *Options) error {
	if len(m.Clock.Busy) != sys.NumProcs() {
		return fmt.Errorf("checkpoint covers %d processors, system has %d", len(m.Clock.Busy), sys.NumProcs())
	}
	if m.HasFaults != (opt.Faults != nil) {
		return fmt.Errorf("checkpoint fault injection %v, options say %v", m.HasFaults, opt.Faults != nil)
	}
	if m.HasFaults && m.FaultSeed != opt.Faults.Seed() {
		return fmt.Errorf("checkpoint fault seed %d, schedule seed %d", m.FaultSeed, opt.Faults.Seed())
	}
	if m.Step < 0 {
		return fmt.Errorf("checkpoint covers step %d", m.Step)
	}
	return nil
}

// restoreFromMeta rehydrates everything beyond the hierarchy: the
// virtual clock, the recorder's persistent T(t) and δ, the DLB
// context, all run counters, and the fault-layer bookkeeping. After
// it, Run() continues at meta.Step+1 exactly as the original process
// would have.
func (r *Runner) restoreFromMeta(m *ckpt.Meta) error {
	if err := r.clock.SetState(m.Clock); err != nil {
		return err
	}
	r.startStep = m.Step + 1
	r.resumed = true
	r.intervalStart = m.IntervalStart
	r.rec.SetIntervalTime(m.IntervalTime)
	r.rec.SetDelta(m.Delta)
	r.ctx.ForceEval = m.ForceEval
	r.h.SetNextID(amr.GridID(m.NextGridID))
	r.globalEvals = m.GlobalEvals
	r.globalRedists = m.GlobalRedists
	r.localMigs = m.LocalMigrations
	r.maxCells = m.MaxCells
	r.lastGain = m.LastGain
	r.lastCost = m.LastCost
	r.lastGamma = m.LastGamma
	// The resume-time full ledger build replaces the original run's
	// initial build in the campaign totals: reconcile so the reported
	// events/rebuilds match the uninterrupted run's.
	r.ledgerEvents = m.LedgerEvents - r.ledger.EventCount()
	r.ledgerRebuilds = m.LedgerRebuilds - r.ledger.Rebuilds()
	r.diskCkptWrites = m.DiskCheckpoints
	r.diskCkptErrors = m.DiskCkptErrors
	r.diskPruneBase = m.DiskPruneErrors
	r.ckptAttempts = m.WriteAttempts
	r.ckptFallbacks = m.CkptFallbacks
	r.pristineResets = m.PristineResets
	r.corruptGens = m.CorruptGens
	if m.HasFaults {
		r.lastFailCheck = m.LastFailCheck
		r.wasQuar = m.WasQuarantined
		for _, p := range m.FailedProcs {
			r.failedSet[p] = true
			r.sys.SetHealth(p, 0)
		}
		if r.memb != nil {
			if m.MembState != nil {
				if err := r.memb.Restore(m.MembState, m.MembCause, m.MembReadmit,
					m.MembSuspicion, m.MembEvidence); err != nil {
					return err
				}
				r.memb.SuspectTransitions = m.MembSuspects
				r.memb.SuspectedToDead = m.MembSuspectDead
				r.memb.Rejoins = m.MembRejoins
				r.memb.RejoinCatchups = m.MembCatchups
				r.memb.QuorumDegradedSteps = m.MembQuorumSteps
			} else {
				// Pre-membership generation: the failed set is the only
				// record — mark those procs crashed so a later scripted
				// recovery still routes through the rejoin protocol.
				for _, p := range m.FailedProcs {
					r.memb.Crash(p)
				}
			}
		}
		entries := make([]fault.ProbeSeqEntry, 0, len(m.ProbeSeq))
		for _, e := range m.ProbeSeq {
			entries = append(entries, fault.ProbeSeqEntry{A: e.A, B: e.B, N: e.N})
		}
		r.opt.Faults.RestoreProbeSeq(entries)
		r.probeRetries = m.ProbeRetries
		r.probeFallbacks = m.ProbeFallbacks
		r.retryTime = m.RetryTime
		r.quarSteps = m.QuarSteps
		r.catchupEvals = m.CatchupEvals
		r.recoveries = m.Recoveries
		r.recoveryTime = m.RecoveryTime
	}
	// Particle populations live in the driver and advance once per
	// level-0 step; replay them to the checkpointed step so positions
	// (pure integration, no randomness) match the original run's.
	if ps := r.driver.Particles(); ps != nil {
		for i := 0; i <= m.Step; i++ {
			ps.Step(r.dt0)
		}
	}
	return nil
}
