package load

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"samrdlb/internal/amr"
	"samrdlb/internal/machine"
	"samrdlb/internal/solver"
)

// Ledger is the incrementally maintained load table the DLB decision
// path reads. The paper's argument (Eqs. 1–4) needs the balancer's
// bookkeeping overhead δ to stay small relative to the gain, yet a
// naive implementation recomputes every aggregate — per-processor
// level loads, the Eq. 2/3 group works, subtree workloads, total cell
// counts — by walking the whole hierarchy on every evaluation, an
// O(grids) cost per decision. The ledger instead subscribes to the
// hierarchy's mutation events (amr.Listener) and keeps every
// aggregate current in O(depth) per grid event, so each decision-path
// read is O(1) or O(procs) regardless of hierarchy size.
//
// Maintained state:
//
//   - procCells[level][proc]: cells owned per processor per level
//     (the w^i_proc table in cell units; the engine scales it by the
//     kernel flop weight when feeding the Recorder).
//   - groupCells[level][group]: the Eq. 2 aggregate W^i_group in cell
//     units.
//   - levelCells[level] and the all-level total.
//   - sub[id]: the iteration-weighted subtree workload of every grid
//     (cells × RefFactor^level summed over the grid and its attached
//     descendants — Eq. 3's N^i_iter weighting for fully subcycled
//     levels).
//   - groupSubtree[group]: Σ sub over the group's level-0 grids,
//     attributed by the level-0 owner's group (the donor workload of
//     the global phase's boundary shift).
//   - groupL0Cells[group]: level-0 cells per group (the W^0 used to
//     size the transferred bytes).
//   - owned[level][proc]: the grids themselves, for the local phase's
//     donor scans.
//
// All cell quantities are integers represented in float64, far below
// 2^53, so incremental adds and subtracts are exact and Verify can
// demand bit equality with a full recomputation.
type Ledger struct {
	sys  *machine.System
	h    *amr.Hierarchy
	pool *solver.Pool

	procCells  [][]float64 // [level][proc]
	groupCells [][]float64 // [level][group]
	levelCells []int64     // [level]
	total      int64

	sub          map[amr.GridID]float64
	groupSubtree []float64 // [group]
	groupL0Cells []int64   // [group]

	owned []map[int][]*amr.Grid // [level][proc]

	events   uint64
	rebuilds int

	// selfCheck makes every event run the full recompute oracle and
	// panic on divergence — the -ledgercheck debug mode.
	selfCheck bool
}

// NewLedger builds a ledger for the hierarchy's current contents and
// returns it. The caller must install it with h.SetListener to keep
// it current; pool (optional) parallelises this full build and any
// later Rebuild across host cores.
func NewLedger(sys *machine.System, h *amr.Hierarchy, pool *solver.Pool) *Ledger {
	l := &Ledger{sys: sys, h: h, pool: pool}
	l.Rebuild()
	l.rebuilds = 0 // the initial build is not a "re"-build
	return l
}

// SetSelfCheck toggles oracle mode: after every mutation event the
// whole ledger is verified against a from-scratch recomputation and
// any divergence panics with the failing aggregate. Meant for tests
// and the -ledgercheck flag; it turns O(changes) bookkeeping back
// into O(grids) per event.
func (l *Ledger) SetSelfCheck(on bool) { l.selfCheck = on }

// EventCount returns the number of mutation events applied since the
// last rebuild — the "O(changes)" side of the decision-path cost.
func (l *Ledger) EventCount() uint64 { return l.events }

// Rebuilds returns how many full recomputations ran (initial build
// excluded): one per checkpoint recovery in a faulty run.
func (l *Ledger) Rebuilds() int { return l.rebuilds }

// Rebuild recomputes every aggregate from the hierarchy, in parallel
// over the pool when one was provided. The engine calls it only for
// the unavoidable full recomputes: attaching to a freshly restored
// checkpoint hierarchy.
func (l *Ledger) Rebuild() {
	nproc := l.sys.NumProcs()
	ngroup := l.sys.NumGroups()
	nlevel := l.h.MaxLevel + 1

	l.procCells = make([][]float64, nlevel)
	l.groupCells = make([][]float64, nlevel)
	l.levelCells = make([]int64, nlevel)
	l.owned = make([]map[int][]*amr.Grid, nlevel)
	l.total = 0
	l.sub = make(map[amr.GridID]float64)
	l.groupSubtree = make([]float64, ngroup)
	l.groupL0Cells = make([]int64, ngroup)
	l.events = 0
	l.rebuilds++

	for lev := 0; lev < nlevel; lev++ {
		l.procCells[lev] = make([]float64, nproc)
		l.groupCells[lev] = make([]float64, ngroup)
		l.owned[lev] = make(map[int][]*amr.Grid)
		grids := l.h.Grids(lev)
		l.parallelProcCells(grids, l.procCells[lev])
		for p := 0; p < nproc; p++ {
			l.groupCells[lev][l.sys.GroupOf(p)] += l.procCells[lev][p]
		}
		for _, g := range grids {
			c := g.NumCells()
			l.levelCells[lev] += c
			l.total += c
			l.owned[lev][g.Owner] = append(l.owned[lev][g.Owner], g)
			l.sub[g.ID] = float64(c) * l.iterWeight(lev)
		}
	}
	// Propagate subtree work bottom-up: when level lev is folded into
	// lev-1, every sub at lev is already complete.
	for lev := nlevel - 1; lev >= 1; lev-- {
		for _, g := range l.h.Grids(lev) {
			if g.Parent != amr.NoGrid {
				l.sub[g.Parent] += l.sub[g.ID]
			}
		}
	}
	for _, g := range l.h.Grids(0) {
		l.groupSubtree[l.sys.GroupOf(g.Owner)] += l.sub[g.ID]
		l.groupL0Cells[l.sys.GroupOf(g.Owner)] += g.NumCells()
	}
}

// parallelProcCells fills dst[proc] with the summed cells of each
// processor's grids, fanning the grid list out over the pool.
func (l *Ledger) parallelProcCells(grids []*amr.Grid, dst []float64) {
	workers := 1
	if l.pool != nil {
		workers = l.pool.Workers()
	}
	if workers <= 1 || len(grids) < 2*workers {
		for _, g := range grids {
			dst[g.Owner] += float64(g.NumCells())
		}
		return
	}
	partial := make([][]float64, workers)
	chunk := (len(grids) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(grids) {
			hi = len(grids)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := make([]float64, len(dst))
			for _, g := range grids[lo:hi] {
				acc[g.Owner] += float64(g.NumCells())
			}
			partial[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()
	// Merge in worker order: integer-valued sums, so order only
	// matters for determinism of the code path, not the result.
	for _, acc := range partial {
		for p, v := range acc {
			dst[p] += v
		}
	}
}

// iterWeight returns RefFactor^level: how many times a level's cells
// advance per level-0 step under full subcycling.
func (l *Ledger) iterWeight(level int) float64 {
	w := 1.0
	for i := 0; i < level; i++ {
		w *= float64(l.h.RefFactor)
	}
	return w
}

// --- amr.Listener implementation -----------------------------------

// GridAdded implements amr.Listener.
func (l *Ledger) GridAdded(h *amr.Hierarchy, g *amr.Grid) {
	cells := float64(g.NumCells())
	grp := l.sys.GroupOf(g.Owner)
	l.procCells[g.Level][g.Owner] += cells
	l.groupCells[g.Level][grp] += cells
	l.levelCells[g.Level] += g.NumCells()
	l.total += g.NumCells()
	l.owned[g.Level][g.Owner] = append(l.owned[g.Level][g.Owner], g)

	own := cells * l.iterWeight(g.Level)
	l.sub[g.ID] = own
	if g.Level == 0 {
		l.groupSubtree[grp] += own
		l.groupL0Cells[grp] += g.NumCells()
	} else {
		l.addToChain(g.Parent, own)
	}
	l.event()
}

// GridRemoved implements amr.Listener. The grid's children are
// already gone (RemoveGrid's invariant; ClearLevelsFrom removes
// deepest level first), so sub[g] holds only the grid's own work; its
// ancestors are still present for the chain walk.
func (l *Ledger) GridRemoved(h *amr.Hierarchy, g *amr.Grid) {
	cells := float64(g.NumCells())
	grp := l.sys.GroupOf(g.Owner)
	l.procCells[g.Level][g.Owner] -= cells
	l.groupCells[g.Level][grp] -= cells
	l.levelCells[g.Level] -= g.NumCells()
	l.total -= g.NumCells()
	l.disown(g)

	w := l.sub[g.ID]
	if g.Level == 0 {
		l.groupSubtree[grp] -= w
		l.groupL0Cells[grp] -= g.NumCells()
	} else {
		l.addToChain(g.Parent, -w)
	}
	delete(l.sub, g.ID)
	l.event()
}

// OwnerChanged implements amr.Listener.
func (l *Ledger) OwnerChanged(h *amr.Hierarchy, g *amr.Grid, oldOwner int) {
	cells := float64(g.NumCells())
	oldGrp, newGrp := l.sys.GroupOf(oldOwner), l.sys.GroupOf(g.Owner)
	l.procCells[g.Level][oldOwner] -= cells
	l.procCells[g.Level][g.Owner] += cells
	l.groupCells[g.Level][oldGrp] -= cells
	l.groupCells[g.Level][newGrp] += cells
	lst := l.owned[g.Level][oldOwner]
	for i, x := range lst {
		if x.ID == g.ID {
			l.owned[g.Level][oldOwner] = append(lst[:i], lst[i+1:]...)
			break
		}
	}
	l.owned[g.Level][g.Owner] = append(l.owned[g.Level][g.Owner], g)
	if g.Level == 0 && oldGrp != newGrp {
		// The whole subtree's workload follows the level-0 owner's
		// group (children live in their root's group under the
		// distributed scheme; the aggregate is defined by the root).
		l.groupSubtree[oldGrp] -= l.sub[g.ID]
		l.groupSubtree[newGrp] += l.sub[g.ID]
	}
	if g.Level == 0 {
		l.groupL0Cells[oldGrp] -= g.NumCells()
		l.groupL0Cells[newGrp] += g.NumCells()
	}
	l.event()
}

// ParentChanged implements amr.Listener: the grid's subtree work
// moves from the old ancestor chain to the new one (either may be
// detached mid-split).
func (l *Ledger) ParentChanged(h *amr.Hierarchy, g *amr.Grid, oldParent amr.GridID) {
	w := l.sub[g.ID]
	if oldParent != amr.NoGrid {
		l.addToChain(oldParent, -w)
	}
	if g.Parent != amr.NoGrid {
		l.addToChain(g.Parent, w)
	}
	l.event()
}

// addToChain adds w to every ancestor's subtree sum starting at id,
// and to the owning group's aggregate when the chain reaches a
// level-0 root. A chain ending at a detached grid (mid-split) gets no
// group attribution; the re-attach event restores it.
func (l *Ledger) addToChain(id amr.GridID, w float64) {
	for id != amr.NoGrid {
		p := l.h.Grid(id)
		if p == nil {
			return
		}
		l.sub[p.ID] += w
		if p.Level == 0 {
			l.groupSubtree[l.sys.GroupOf(p.Owner)] += w
			return
		}
		id = p.Parent
	}
}

// disown removes g from its owner's per-level grid list (order
// preserving, so scans stay deterministic).
func (l *Ledger) disown(g *amr.Grid) {
	lst := l.owned[g.Level][g.Owner]
	for i, x := range lst {
		if x.ID == g.ID {
			l.owned[g.Level][g.Owner] = append(lst[:i], lst[i+1:]...)
			return
		}
	}
}

func (l *Ledger) event() {
	l.events++
	if l.selfCheck {
		if err := l.Verify(); err != nil {
			panic(fmt.Sprintf("load.Ledger self-check failed after event %d: %v", l.events, err))
		}
	}
}

// --- decision-path reads -------------------------------------------

// ProcCells returns the cells processor proc owns at the level.
func (l *Ledger) ProcCells(level, proc int) float64 { return l.procCells[level][proc] }

// LevelWork returns every processor's cell count at the level (a
// fresh slice, O(procs) — the ledger-backed replacement for walking
// the level's grids).
func (l *Ledger) LevelWork(level int) []float64 {
	out := make([]float64, len(l.procCells[level]))
	copy(out, l.procCells[level])
	return out
}

// GroupLevelCells returns W^i_group (Eq. 2) in cell units.
func (l *Ledger) GroupLevelCells(level, group int) float64 { return l.groupCells[level][group] }

// LevelCells returns the cell count of one level.
func (l *Ledger) LevelCells(level int) int64 { return l.levelCells[level] }

// TotalCells returns the all-level cell count.
func (l *Ledger) TotalCells() int64 { return l.total }

// SubtreeWork returns the iteration-weighted workload of the grid and
// its descendants (0 for unknown IDs).
func (l *Ledger) SubtreeWork(id amr.GridID) float64 { return l.sub[id] }

// GroupSubtreeWork returns the summed subtree workload of the group's
// level-0 grids — the donor workload of the global phase.
func (l *Ledger) GroupSubtreeWork(group int) float64 { return l.groupSubtree[group] }

// GroupLevel0Cells returns the group's level-0 cell count.
func (l *Ledger) GroupLevel0Cells(group int) int64 { return l.groupL0Cells[group] }

// Owned returns the grids processor proc holds at the level. The
// slice is the ledger's own state: callers must not mutate it and
// should copy before triggering migrations.
func (l *Ledger) Owned(level, proc int) []*amr.Grid { return l.owned[level][proc] }

// --- recompute oracle ----------------------------------------------

// Verify recomputes every aggregate from the hierarchy and compares
// it against the incrementally maintained state, returning a
// descriptive error on the first divergence. All quantities are
// integer-valued, so the comparison is exact.
func (l *Ledger) Verify() error {
	want := &Ledger{sys: l.sys, h: l.h}
	want.Rebuild()
	for lev := range want.procCells {
		for p := range want.procCells[lev] {
			if l.procCells[lev][p] != want.procCells[lev][p] {
				return fmt.Errorf("procCells[%d][%d]: ledger %v, recompute %v",
					lev, p, l.procCells[lev][p], want.procCells[lev][p])
			}
		}
		for g := range want.groupCells[lev] {
			if l.groupCells[lev][g] != want.groupCells[lev][g] {
				return fmt.Errorf("groupCells[%d][%d]: ledger %v, recompute %v",
					lev, g, l.groupCells[lev][g], want.groupCells[lev][g])
			}
		}
		if l.levelCells[lev] != want.levelCells[lev] {
			return fmt.Errorf("levelCells[%d]: ledger %d, recompute %d",
				lev, l.levelCells[lev], want.levelCells[lev])
		}
	}
	if l.total != want.total {
		return fmt.Errorf("total cells: ledger %d, recompute %d", l.total, want.total)
	}
	if len(l.sub) != len(want.sub) {
		return fmt.Errorf("subtree table size: ledger %d, recompute %d", len(l.sub), len(want.sub))
	}
	for id, w := range want.sub {
		if lw, ok := l.sub[id]; !ok || lw != w {
			return fmt.Errorf("subtree[%d]: ledger %v, recompute %v", id, l.sub[id], w)
		}
	}
	for g := range want.groupSubtree {
		if l.groupSubtree[g] != want.groupSubtree[g] {
			return fmt.Errorf("groupSubtree[%d]: ledger %v, recompute %v",
				g, l.groupSubtree[g], want.groupSubtree[g])
		}
		if l.groupL0Cells[g] != want.groupL0Cells[g] {
			return fmt.Errorf("groupL0Cells[%d]: ledger %d, recompute %d",
				g, l.groupL0Cells[g], want.groupL0Cells[g])
		}
	}
	for lev := range want.owned {
		for p := 0; p < l.sys.NumProcs(); p++ {
			got, exp := idSet(l.owned[lev][p]), idSet(want.owned[lev][p])
			if len(got) != len(exp) {
				return fmt.Errorf("owned[%d][%d]: ledger holds %d grids, recompute %d",
					lev, p, len(got), len(exp))
			}
			for i := range got {
				if got[i] != exp[i] {
					return fmt.Errorf("owned[%d][%d]: ledger %v, recompute %v", lev, p, got, exp)
				}
			}
		}
	}
	return nil
}

func idSet(grids []*amr.Grid) []amr.GridID {
	out := make([]amr.GridID, len(grids))
	for i, g := range grids {
		out[i] = g.ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MaxProcCells returns the largest per-processor cell count at a
// level — a cheap sanity probe used by tests.
func (l *Ledger) MaxProcCells(level int) float64 {
	m := math.Inf(-1)
	for _, v := range l.procCells[level] {
		m = math.Max(m, v)
	}
	return m
}
