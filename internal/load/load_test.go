package load

import (
	"math"
	"testing"

	"samrdlb/internal/machine"
)

func rec2x2(t *testing.T) (*Recorder, *machine.System) {
	t.Helper()
	sys := machine.WanPair(2, nil) // procs 0,1 in group 0; 2,3 in group 1
	return NewRecorder(sys.NumProcs(), 2), sys
}

func TestEq2LevelGroupWork(t *testing.T) {
	r, sys := rec2x2(t)
	r.RecordLevelWork(0, 0, 10)
	r.RecordLevelWork(1, 0, 20)
	r.RecordLevelWork(2, 0, 5)
	if got := r.LevelGroupWork(sys, 0, 0); got != 30 {
		t.Errorf("W^0_group0 = %v, want 30", got)
	}
	if got := r.LevelGroupWork(sys, 1, 0); got != 5 {
		t.Errorf("W^0_group1 = %v, want 5", got)
	}
}

func TestEq3GroupWorkWeightsByIterations(t *testing.T) {
	r, sys := rec2x2(t)
	// Level 0 runs once, level 1 twice, level 2 four times (r=2).
	r.RecordIteration(0)
	r.RecordIteration(1)
	r.RecordIteration(1)
	for i := 0; i < 4; i++ {
		r.RecordIteration(2)
	}
	r.RecordLevelWork(0, 0, 100) // group 0, level 0
	r.RecordLevelWork(0, 1, 10)  // group 0, level 1
	r.RecordLevelWork(0, 2, 1)   // group 0, level 2
	want := 100.0*1 + 10*2 + 1*4
	if got := r.GroupWork(sys, 0); got != want {
		t.Errorf("W_group0 = %v, want %v", got, want)
	}
	if r.Iterations(1) != 2 {
		t.Errorf("Iterations(1) = %d", r.Iterations(1))
	}
}

func TestEq4Gain(t *testing.T) {
	r, sys := rec2x2(t)
	r.SetIntervalTime(50)
	r.RecordLevelWork(0, 0, 60) // group 0: 100
	r.RecordLevelWork(1, 0, 40)
	r.RecordLevelWork(2, 0, 30) // group 1: 50
	r.RecordLevelWork(3, 0, 20)
	// Gain = 50 * (100-50) / (2*100) = 12.5.
	if got := r.Gain(sys); math.Abs(got-12.5) > 1e-12 {
		t.Errorf("Gain = %v, want 12.5", got)
	}
}

func TestGainBalancedIsZero(t *testing.T) {
	r, sys := rec2x2(t)
	r.SetIntervalTime(100)
	for p := 0; p < 4; p++ {
		r.RecordLevelWork(p, 0, 25)
	}
	if got := r.Gain(sys); got != 0 {
		t.Errorf("balanced gain = %v", got)
	}
}

func TestGainZeroWork(t *testing.T) {
	r, sys := rec2x2(t)
	r.SetIntervalTime(100)
	if got := r.Gain(sys); got != 0 {
		t.Errorf("zero-work gain = %v", got)
	}
}

func TestGainIsConservative(t *testing.T) {
	// The paper calls Eq. 4 "a very conservative estimate": it must
	// never exceed the true imbalance share T·(max-min)/max.
	r, sys := rec2x2(t)
	r.SetIntervalTime(80)
	r.RecordLevelWork(0, 0, 90)
	r.RecordLevelWork(2, 0, 10)
	upper := 80.0 * (90.0 - 10.0) / 90.0
	if g := r.Gain(sys); g > upper/float64(sys.NumGroups())+1e-12 {
		t.Errorf("gain %v exceeds conservative bound %v", g, upper/2)
	}
}

func TestImbalanceRatio(t *testing.T) {
	r, sys := rec2x2(t)
	r.RecordLevelWork(0, 0, 30)
	r.RecordLevelWork(2, 0, 10)
	if got := r.ImbalanceRatio(sys); math.Abs(got-3) > 1e-12 {
		t.Errorf("ratio = %v, want 3", got)
	}
	// All-zero loads: balanced by convention.
	r2, _ := rec2x2(t)
	if got := r2.ImbalanceRatio(sys); got != 1 {
		t.Errorf("zero-load ratio = %v", got)
	}
	// One empty group: effectively infinite.
	r3, _ := rec2x2(t)
	r3.RecordLevelWork(0, 0, 5)
	if got := r3.ImbalanceRatio(sys); got < 1e6 {
		t.Errorf("empty-group ratio = %v, want huge", got)
	}
}

func TestImbalanceRatioNormalisesByPerf(t *testing.T) {
	// Group 1 has half-speed processors: equal absolute work means
	// group 1 is actually overloaded 2x.
	sys := machine.Heterogeneous(2, 2, 0.5, nil)
	r := NewRecorder(4, 0)
	r.RecordLevelWork(0, 0, 10)
	r.RecordLevelWork(2, 0, 10)
	if got := r.ImbalanceRatio(sys); math.Abs(got-2) > 1e-12 {
		t.Errorf("normalised ratio = %v, want 2", got)
	}
}

func TestProcWork(t *testing.T) {
	r, _ := rec2x2(t)
	r.RecordIteration(0)
	r.RecordIteration(1)
	r.RecordIteration(1)
	r.RecordLevelWork(1, 0, 5)
	r.RecordLevelWork(1, 1, 3)
	if got := r.ProcWork(1); got != 5+3*2 {
		t.Errorf("ProcWork = %v", got)
	}
}

func TestResetInterval(t *testing.T) {
	r, sys := rec2x2(t)
	r.RecordLevelWork(0, 0, 10)
	r.RecordIteration(1)
	r.SetDelta(3)
	r.SetIntervalTime(9)
	r.ResetInterval()
	if r.GroupWork(sys, 0) != 0 || r.Iterations(1) != 0 {
		t.Error("ResetInterval did not clear accumulators")
	}
	// δ and T survive: they are history, not interval state.
	if r.Delta() != 3 || r.IntervalTime() != 9 {
		t.Error("ResetInterval must keep delta and T")
	}
}

func TestCostEq1(t *testing.T) {
	// Cost = α + β·W + δ.
	if got := Cost(0.5, 1e-6, 1e6, 0.25); math.Abs(got-1.75) > 1e-12 {
		t.Errorf("Cost = %v, want 1.75", got)
	}
	if got := Cost(0.1, 1e-6, 0, 0); math.Abs(got-0.1) > 1e-15 {
		t.Errorf("zero-byte cost = %v", got)
	}
}

func TestValidation(t *testing.T) {
	assertPanics(t, "bad recorder", func() { NewRecorder(0, 1) })
	r, _ := rec2x2(t)
	assertPanics(t, "negative work", func() { r.RecordLevelWork(0, 0, -1) })
	assertPanics(t, "bad level", func() { r.RecordIteration(9) })
	assertPanics(t, "negative T", func() { r.SetIntervalTime(-1) })
	assertPanics(t, "negative delta", func() { r.SetDelta(-1) })
	assertPanics(t, "negative bytes", func() { Cost(0, 0, -1, 0) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}
