// Package load implements the paper's workload bookkeeping and the
// heuristic gain/cost evaluation for global redistribution
// (Section 4.2–4.3):
//
//	Cost = (α + β·W) + δ                               (Eq. 1)
//	W^i_group(t)  = Σ_{proc∈group} w^i_proc(t)          (Eq. 2)
//	W_group(t)    = Σ_i W^i_group(t) · N^i_iter(t)      (Eq. 3)
//	Gain = T(t) · (max W_group − min W_group)
//	       / (NumGroups · max W_group)                  (Eq. 4)
//
// Between two level-0 iterations the Recorder accumulates the
// per-processor workload at each level (w^i_proc), the iteration
// counts per finer level (N^i_iter), the wall time of the last level-0
// interval (T), and the computational overhead of the previous
// redistribution (δ).
package load

import (
	"fmt"

	"samrdlb/internal/machine"
)

// Recorder accumulates the performance data the DLB needs between two
// iterations at level 0.
type Recorder struct {
	nproc    int
	maxLevel int
	// w[proc][level] is the workload (weighted cells advanced per
	// level iteration) processor proc held at that level during the
	// current interval; the paper's w^i_proc(t).
	w [][]float64
	// nIter[level] counts iterations of each level within the current
	// interval; the paper's N^i_iter(t).
	nIter []int
	// lastT is T(t): the execution time of the previous level-0
	// interval.
	lastT float64
	// delta is δ: the recorded computational overhead of the previous
	// global redistribution.
	delta float64

	// Incremental Eq. 2 aggregates, maintained when BindGroups has
	// attached a processor→group map: gw[group][level] mirrors
	// Σ_{proc∈group} w[proc][level] and is updated in O(1) per
	// RecordLevelWork call, so GroupWork/GroupWorks/Gain/
	// ImbalanceRatio read O(groups·levels) state instead of summing
	// over every processor on each decision.
	groupOf []int
	gw      [][]float64
}

// NewRecorder returns a recorder for nproc processors and levels
// 0..maxLevel.
func NewRecorder(nproc, maxLevel int) *Recorder {
	if nproc <= 0 || maxLevel < 0 {
		panic("load.NewRecorder: bad shape")
	}
	r := &Recorder{nproc: nproc, maxLevel: maxLevel}
	r.ResetInterval()
	return r
}

// ResetInterval clears the per-interval accumulators (called after
// each level-0 step, once the global-balance decision has been made).
func (r *Recorder) ResetInterval() {
	r.w = make([][]float64, r.nproc)
	for i := range r.w {
		r.w[i] = make([]float64, r.maxLevel+1)
	}
	r.nIter = make([]int, r.maxLevel+1)
	for g := range r.gw {
		for l := range r.gw[g] {
			r.gw[g][l] = 0
		}
	}
}

// BindGroups attaches the system's processor→group map so the Eq. 2
// group aggregates are maintained incrementally as level work is
// recorded. Unbound recorders fall back to recomputing group sums
// over all processors on every query (the original behaviour, kept
// as the verification oracle).
func (r *Recorder) BindGroups(sys *machine.System) {
	if sys.NumProcs() != r.nproc {
		panic("load.BindGroups: system size does not match recorder")
	}
	r.groupOf = make([]int, r.nproc)
	for p := 0; p < r.nproc; p++ {
		r.groupOf[p] = sys.GroupOf(p)
	}
	r.gw = make([][]float64, sys.NumGroups())
	for g := range r.gw {
		r.gw[g] = make([]float64, r.maxLevel+1)
	}
	// Fold in whatever the current interval already recorded.
	for p := 0; p < r.nproc; p++ {
		for l := 0; l <= r.maxLevel; l++ {
			r.gw[r.groupOf[p]][l] += r.w[p][l]
		}
	}
}

// RecordLevelWork stores the instantaneous per-level workload for a
// processor, overwriting the previous snapshot; w^i_proc(t) is the
// load the processor currently holds at level i. The workload unit is
// arbitrary but must be consistent (the engine uses cells ×
// kernel-flops); Eqs. 2–4 use only ratios.
func (r *Recorder) RecordLevelWork(proc, level int, work float64) {
	if work < 0 {
		panic("load.RecordLevelWork: negative work")
	}
	if r.gw != nil {
		r.gw[r.groupOf[proc]][level] += work - r.w[proc][level]
	}
	r.w[proc][level] = work
}

// RecordIteration counts one iteration of the given level inside the
// current interval.
func (r *Recorder) RecordIteration(level int) {
	if level < 0 || level > r.maxLevel {
		panic(fmt.Sprintf("load.RecordIteration: level %d out of range", level))
	}
	r.nIter[level]++
}

// Iterations returns N^i_iter for the current interval.
func (r *Recorder) Iterations(level int) int { return r.nIter[level] }

// SetIntervalTime records T(t), the execution time of the last
// level-0 interval.
func (r *Recorder) SetIntervalTime(t float64) {
	if t < 0 {
		panic("load.SetIntervalTime: negative time")
	}
	r.lastT = t
}

// IntervalTime returns the recorded T(t).
func (r *Recorder) IntervalTime() float64 { return r.lastT }

// SetDelta records δ, the computational overhead observed during the
// most recent global redistribution (Section 4.2: "the scheme uses
// history information").
func (r *Recorder) SetDelta(d float64) {
	if d < 0 {
		panic("load.SetDelta: negative delta")
	}
	r.delta = d
}

// AddDelta accumulates extra overhead into δ — probe retries and
// backoff stalls are DLB overhead just like the redistribution
// rebuild, so a flaky network inflates the cost side of Eq. 1 until
// the next redistribution measures a fresh δ.
func (r *Recorder) AddDelta(d float64) {
	if d < 0 {
		panic("load.AddDelta: negative delta")
	}
	r.delta += d
}

// Delta returns the recorded δ.
func (r *Recorder) Delta() float64 { return r.delta }

// ProcWork returns the total workload of a processor over all levels,
// weighted by the interval's iteration counts (the per-processor
// analogue of Eq. 3).
func (r *Recorder) ProcWork(proc int) float64 {
	var sum float64
	for l := 0; l <= r.maxLevel; l++ {
		sum += r.w[proc][l] * float64(max(r.nIter[l], 1))
	}
	return sum
}

// LevelGroupWork returns W^i_group(t) (Eq. 2) for the given group:
// the incrementally maintained aggregate when groups are bound, else
// a recomputation over the group's processors.
func (r *Recorder) LevelGroupWork(sys *machine.System, group, level int) float64 {
	if r.gw != nil {
		return r.gw[group][level]
	}
	return r.levelGroupWorkRecompute(sys, group, level)
}

// levelGroupWorkRecompute is the original O(procs) Eq. 2 sum, kept as
// the oracle VerifyGroups asserts the incremental aggregates against.
func (r *Recorder) levelGroupWorkRecompute(sys *machine.System, group, level int) float64 {
	var sum float64
	for _, p := range sys.ProcsInGroup(group) {
		sum += r.w[p][level]
	}
	return sum
}

// GroupWork returns W_group(t) (Eq. 3): the group's per-level loads
// weighted by the number of iterations each level runs within one
// level-0 step.
func (r *Recorder) GroupWork(sys *machine.System, group int) float64 {
	var sum float64
	for l := 0; l <= r.maxLevel; l++ {
		sum += r.LevelGroupWork(sys, group, l) * float64(max(r.nIter[l], 1))
	}
	return sum
}

// GroupWorkRecompute is GroupWork evaluated through the recompute
// oracle regardless of binding (tests and benchmarks).
func (r *Recorder) GroupWorkRecompute(sys *machine.System, group int) float64 {
	var sum float64
	for l := 0; l <= r.maxLevel; l++ {
		sum += r.levelGroupWorkRecompute(sys, group, l) * float64(max(r.nIter[l], 1))
	}
	return sum
}

// VerifyGroups compares the incremental Eq. 2 aggregates against the
// recompute oracle. Incremental maintenance replays additions in a
// different association order than a direct sum, so equality is
// checked to a tight relative tolerance rather than bit-exactly.
func (r *Recorder) VerifyGroups(sys *machine.System) error {
	if r.gw == nil {
		return nil
	}
	for g := 0; g < sys.NumGroups(); g++ {
		for l := 0; l <= r.maxLevel; l++ {
			inc := r.gw[g][l]
			ora := r.levelGroupWorkRecompute(sys, g, l)
			diff := inc - ora
			if diff < 0 {
				diff = -diff
			}
			scale := ora
			if scale < 1 {
				scale = 1
			}
			if diff > 1e-9*scale {
				return fmt.Errorf("group %d level %d: incremental %v, recompute %v", g, l, inc, ora)
			}
		}
	}
	return nil
}

// GroupWorks returns W_group for every group.
func (r *Recorder) GroupWorks(sys *machine.System) []float64 {
	out := make([]float64, sys.NumGroups())
	for g := range out {
		out[g] = r.GroupWork(sys, g)
	}
	return out
}

// Gain evaluates Eq. 4: the estimated reduction in execution time from
// removing the current inter-group imbalance. The estimate is
// deliberately conservative (the paper divides by NumGroups·max).
func (r *Recorder) Gain(sys *machine.System) float64 {
	works := r.GroupWorks(sys)
	maxW, minW := works[0], works[0]
	for _, w := range works[1:] {
		if w > maxW {
			maxW = w
		}
		if w < minW {
			minW = w
		}
	}
	if maxW <= 0 {
		return 0
	}
	return r.lastT * (maxW - minW) / (float64(sys.NumGroups()) * maxW)
}

// ImbalanceRatio returns max/min of the groups' performance-normalised
// loads (W_group divided by the group's aggregate performance weight).
// A ratio of 1 is perfect balance. Groups with zero load make the
// ratio +Inf unless every group is empty, which returns 1.
func (r *Recorder) ImbalanceRatio(sys *machine.System) float64 {
	works := r.GroupWorks(sys)
	first := true
	var maxN, minN float64
	for g, w := range works {
		n := w / sys.GroupPerf(g)
		if first {
			maxN, minN = n, n
			first = false
			continue
		}
		if n > maxN {
			maxN = n
		}
		if n < minN {
			minN = n
		}
	}
	if maxN == 0 {
		return 1
	}
	if minN == 0 {
		return maxN * 1e18 // effectively infinite imbalance
	}
	return maxN / minN
}

// Cost evaluates Eq. 1: the time to redistribute W bytes over a link
// with measured parameters α and β, plus the recorded computational
// overhead δ.
func Cost(alpha, beta, bytes, delta float64) float64 {
	if bytes < 0 {
		panic("load.Cost: negative size")
	}
	return alpha + beta*bytes + delta
}
