package load

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"samrdlb/internal/machine"
)

// Property tests over the paper's equations: the gain/cost arithmetic
// gates every global redistribution, so its algebraic structure is
// worth pinning down beyond spot values.

func qc(seed int64) *quick.Config {
	return &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(seed))}
}

// randomLoads fills a recorder with random per-proc level-0 loads.
func randomLoads(rng *rand.Rand, sys *machine.System) *Recorder {
	r := NewRecorder(sys.NumProcs(), 1)
	for p := 0; p < sys.NumProcs(); p++ {
		r.RecordLevelWork(p, 0, rng.Float64()*100)
	}
	r.SetIntervalTime(1 + rng.Float64()*100)
	return r
}

func TestGainNonNegativeProperty(t *testing.T) {
	sys := machine.WanPair(2, nil)
	f := func(seed int64) bool {
		r := randomLoads(rand.New(rand.NewSource(seed)), sys)
		return r.Gain(sys) >= 0
	}
	if err := quick.Check(f, qc(21)); err != nil {
		t.Error(err)
	}
}

func TestGainBoundedByIntervalProperty(t *testing.T) {
	// Eq. 4 divides by NumGroups·max, so Gain can never exceed
	// T/NumGroups — the "very conservative estimate" the paper claims.
	sys := machine.WanPair(3, nil)
	f := func(seed int64) bool {
		r := randomLoads(rand.New(rand.NewSource(seed)), sys)
		return r.Gain(sys) <= r.IntervalTime()/float64(sys.NumGroups())+1e-12
	}
	if err := quick.Check(f, qc(22)); err != nil {
		t.Error(err)
	}
}

func TestGainScaleInvariantProperty(t *testing.T) {
	// Scaling every load by a constant leaves the gain unchanged
	// (Eq. 4 is a ratio).
	sys := machine.WanPair(2, nil)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		scale := 0.5 + rng.Float64()*10
		r1 := NewRecorder(sys.NumProcs(), 0)
		r2 := NewRecorder(sys.NumProcs(), 0)
		r1.SetIntervalTime(50)
		r2.SetIntervalTime(50)
		for p := 0; p < sys.NumProcs(); p++ {
			w := rng.Float64() * 100
			r1.RecordLevelWork(p, 0, w)
			r2.RecordLevelWork(p, 0, w*scale)
		}
		return math.Abs(r1.Gain(sys)-r2.Gain(sys)) < 1e-9
	}
	if err := quick.Check(f, qc(23)); err != nil {
		t.Error(err)
	}
}

func TestGainProportionalToTProperty(t *testing.T) {
	sys := machine.WanPair(2, nil)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRecorder(sys.NumProcs(), 0)
		for p := 0; p < sys.NumProcs(); p++ {
			r.RecordLevelWork(p, 0, rng.Float64()*100)
		}
		r.SetIntervalTime(10)
		g1 := r.Gain(sys)
		r.SetIntervalTime(30)
		g3 := r.Gain(sys)
		return math.Abs(g3-3*g1) < 1e-9*(1+g1)
	}
	if err := quick.Check(f, qc(24)); err != nil {
		t.Error(err)
	}
}

func TestCostLinearProperty(t *testing.T) {
	// Eq. 1 is affine in the transfer size.
	f := func(alpha, beta, w1, w2, delta float64) bool {
		a := math.Abs(math.Mod(alpha, 1))
		b := math.Abs(math.Mod(beta, 1e-3))
		d := math.Abs(math.Mod(delta, 10))
		x, y := math.Abs(math.Mod(w1, 1e9)), math.Abs(math.Mod(w2, 1e9))
		lhs := Cost(a, b, x+y, d)
		rhs := Cost(a, b, x, d) + Cost(a, b, y, d) - Cost(a, b, 0, d)
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, qc(25)); err != nil {
		t.Error(err)
	}
}

func TestImbalanceRatioAtLeastOneProperty(t *testing.T) {
	sys := machine.WanPair(2, nil)
	f := func(seed int64) bool {
		r := randomLoads(rand.New(rand.NewSource(seed)), sys)
		return r.ImbalanceRatio(sys) >= 1
	}
	if err := quick.Check(f, qc(26)); err != nil {
		t.Error(err)
	}
}

func TestGroupWorksSumToProcWorksProperty(t *testing.T) {
	// Σ_groups W_group == Σ_procs ProcWork (Eq. 2/3 consistency).
	sys := machine.WanPair(3, nil)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRecorder(sys.NumProcs(), 2)
		for l := 0; l <= 2; l++ {
			for k := 0; k < 1<<l; k++ {
				r.RecordIteration(l)
			}
			for p := 0; p < sys.NumProcs(); p++ {
				r.RecordLevelWork(p, l, rng.Float64()*10)
			}
		}
		var byGroup, byProc float64
		for g := 0; g < sys.NumGroups(); g++ {
			byGroup += r.GroupWork(sys, g)
		}
		for p := 0; p < sys.NumProcs(); p++ {
			byProc += r.ProcWork(p)
		}
		return math.Abs(byGroup-byProc) < 1e-9*(1+byProc)
	}
	if err := quick.Check(f, qc(27)); err != nil {
		t.Error(err)
	}
}
