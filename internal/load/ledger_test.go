package load

import (
	"testing"

	"samrdlb/internal/amr"
	"samrdlb/internal/geom"
	"samrdlb/internal/machine"
	"samrdlb/internal/solver"
)

// ledgerFixture builds a 3-level hierarchy on a WanPair(2) system (4
// procs, 2 groups) with the ledger installed as listener: two level-0
// x-slabs (one per group), a level-1 child under each, and one level-2
// grandchild in group 0.
func ledgerFixture(t *testing.T) (*machine.System, *amr.Hierarchy, *Ledger) {
	t.Helper()
	sys := machine.WanPair(2, nil)
	h := amr.New(geom.UnitCube(8), 2, 2, 1, false, "q")
	l := NewLedger(sys, h, nil)
	h.SetListener(l)
	a := h.AddGrid(0, geom.BoxFromShape(geom.Index{0, 0, 0}, geom.Index{4, 8, 8}), 0, amr.NoGrid)
	b := h.AddGrid(0, geom.BoxFromShape(geom.Index{4, 0, 0}, geom.Index{4, 8, 8}), 2, amr.NoGrid)
	// ca spans fine x in [2,6): coarse x in [1,3), so it straddles a
	// level-0 split at x=2 (the SplitGrid test relies on this).
	ca := h.AddGrid(1, geom.BoxFromShape(geom.Index{2, 0, 0}, geom.Index{4, 4, 4}), 1, a.ID)
	h.AddGrid(1, geom.BoxFromShape(geom.Index{8, 0, 0}, geom.Index{4, 4, 4}), 3, b.ID)
	h.AddGrid(2, geom.BoxFromShape(geom.Index{4, 0, 0}, geom.Index{4, 4, 4}), 1, ca.ID)
	return sys, h, l
}

func mustVerify(t *testing.T, l *Ledger, when string) {
	t.Helper()
	if err := l.Verify(); err != nil {
		t.Fatalf("%s: ledger diverged from recompute: %v", when, err)
	}
}

func TestLedgerTracksBuildExactly(t *testing.T) {
	sys, h, l := ledgerFixture(t)
	mustVerify(t, l, "after build")
	// Hand-checked aggregates: level-0 slabs are 256 cells each, the
	// level-1 children 64 cells (weight 2), the level-2 grandchild 64
	// cells (weight 4).
	if got := l.TotalCells(); got != 256+256+64+64+64 {
		t.Errorf("TotalCells = %d", got)
	}
	if got := l.ProcCells(0, 0); got != 256 {
		t.Errorf("ProcCells(0,0) = %v", got)
	}
	if got := l.GroupLevelCells(1, 1); got != 64 {
		t.Errorf("GroupLevelCells(1,1) = %v", got)
	}
	// Group 0 subtree: 256 + 64*2 + 64*4 = 640; group 1: 256 + 64*2.
	if got := l.GroupSubtreeWork(0); got != 640 {
		t.Errorf("GroupSubtreeWork(0) = %v", got)
	}
	if got := l.GroupSubtreeWork(1); got != 384 {
		t.Errorf("GroupSubtreeWork(1) = %v", got)
	}
	if got := l.GroupLevel0Cells(0); got != 256 {
		t.Errorf("GroupLevel0Cells(0) = %d", got)
	}
	a := h.Grids(0)[0]
	if got := l.SubtreeWork(a.ID); got != 640 {
		t.Errorf("SubtreeWork(root A) = %v", got)
	}
	_ = sys
}

func TestLedgerTracksOwnerChanges(t *testing.T) {
	sys, h, l := ledgerFixture(t)
	a := h.Grids(0)[0]
	// Within-group move: group aggregates stay put, proc ones shift.
	h.SetOwner(a, 1)
	mustVerify(t, l, "intra-group SetOwner")
	if l.ProcCells(0, 0) != 0 || l.ProcCells(0, 1) != 256 {
		t.Error("proc cells did not follow intra-group move")
	}
	if l.GroupSubtreeWork(0) != 640 {
		t.Error("intra-group move must not change group subtree work")
	}
	// Cross-group move: the whole subtree's work follows the root.
	h.SetOwner(a, 3)
	mustVerify(t, l, "cross-group SetOwner")
	if got := l.GroupSubtreeWork(1); got != 640+384 {
		t.Errorf("GroupSubtreeWork(1) = %v after cross-group move", got)
	}
	if got := l.GroupLevel0Cells(0); got != 0 {
		t.Errorf("GroupLevel0Cells(0) = %d after cross-group move", got)
	}
	// No-op move fires no event.
	before := l.EventCount()
	h.SetOwner(a, 3)
	if l.EventCount() != before {
		t.Error("same-owner SetOwner must be a no-op")
	}
	_ = sys
}

func TestLedgerTracksRemovalAndClear(t *testing.T) {
	_, h, l := ledgerFixture(t)
	// Remove the grandchild, then a child: each removal must peel only
	// that grid's own weighted work off the ancestor chain.
	g2 := h.Grids(2)[0]
	h.RemoveGrid(g2.ID)
	mustVerify(t, l, "remove level-2")
	if got := l.GroupSubtreeWork(0); got != 256+64*2 {
		t.Errorf("GroupSubtreeWork(0) = %v after grandchild removal", got)
	}
	h.RemoveGrid(h.Grids(1)[0].ID)
	mustVerify(t, l, "remove level-1")
	// Regrid-style wipe of the fine levels.
	h.ClearLevelsFrom(1)
	mustVerify(t, l, "ClearLevelsFrom(1)")
	if got := l.TotalCells(); got != 512 {
		t.Errorf("TotalCells = %d after clearing fine levels", got)
	}
	if got := l.GroupSubtreeWork(1); got != 256 {
		t.Errorf("GroupSubtreeWork(1) = %v after clear", got)
	}
}

func TestLedgerTracksSplitWithStraddlingChildren(t *testing.T) {
	_, h, l := ledgerFixture(t)
	l.SetSelfCheck(true) // verify after EVERY event inside the split
	a := h.Grids(0)[0]
	lo, hi := h.SplitGrid(a, 0, 2)
	if lo == nil || hi == nil {
		t.Fatal("split failed")
	}
	mustVerify(t, l, "after split")
	if got := l.TotalCells(); got != 256+256+64+64+64 {
		t.Errorf("TotalCells = %d after split (must conserve)", got)
	}
	// The level-1 child straddled x=4 (fine x in [0,8)), so it was
	// split too; both halves' work must still reach group 0's root sum.
	if got := l.GroupSubtreeWork(0); got != 640 {
		t.Errorf("GroupSubtreeWork(0) = %v after split", got)
	}
	if err := h.CheckProperNesting(); err != nil {
		t.Fatalf("split broke nesting: %v", err)
	}
}

func TestLedgerParallelRebuildMatchesSequential(t *testing.T) {
	sys := machine.WanPair(4, nil)
	h := amr.New(geom.UnitCube(32), 2, 1, 1, false, "q")
	// Enough level-0 grids to exceed the parallel-split threshold.
	for x := 0; x < 32; x += 2 {
		for y := 0; y < 32; y += 8 {
			h.AddGrid(0, geom.BoxFromShape(geom.Index{x, y, 0}, geom.Index{2, 8, 32}), (x/2+y/8)%8, amr.NoGrid)
		}
	}
	seq := NewLedger(sys, h, nil)
	par := NewLedger(sys, h, solver.NewPool(0))
	for lev := 0; lev <= h.MaxLevel; lev++ {
		sw, pw := seq.LevelWork(lev), par.LevelWork(lev)
		for p := range sw {
			if sw[p] != pw[p] {
				t.Fatalf("level %d proc %d: sequential %v, parallel %v", lev, p, sw[p], pw[p])
			}
		}
	}
	if seq.TotalCells() != par.TotalCells() {
		t.Error("totals differ between sequential and parallel rebuild")
	}
	for g := 0; g < sys.NumGroups(); g++ {
		if seq.GroupSubtreeWork(g) != par.GroupSubtreeWork(g) {
			t.Errorf("group %d subtree work differs", g)
		}
	}
	if err := par.Verify(); err != nil {
		t.Errorf("parallel-built ledger fails its own oracle: %v", err)
	}
}

func TestLedgerCounters(t *testing.T) {
	_, h, l := ledgerFixture(t)
	if l.Rebuilds() != 0 {
		t.Errorf("initial build must not count as a rebuild, got %d", l.Rebuilds())
	}
	if l.EventCount() != 5 {
		t.Errorf("EventCount = %d after 5 AddGrid events", l.EventCount())
	}
	l.Rebuild()
	if l.Rebuilds() != 1 || l.EventCount() != 0 {
		t.Errorf("Rebuild must bump rebuilds and reset events: %d, %d", l.Rebuilds(), l.EventCount())
	}
	mustVerify(t, l, "after explicit rebuild")
	_ = h
}

func TestLedgerSelfCheckPanicsOnCorruption(t *testing.T) {
	_, h, l := ledgerFixture(t)
	l.SetSelfCheck(true)
	// Corrupt an aggregate behind the ledger's back; the next event's
	// self-check must catch it.
	l.procCells[0][0]++
	defer func() {
		if recover() == nil {
			t.Error("self-check did not catch a corrupted aggregate")
		}
	}()
	h.SetOwner(h.Grids(0)[1], 3)
}
