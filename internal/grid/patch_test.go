package grid

import (
	"math"
	"math/rand"
	"testing"

	"samrdlb/internal/geom"
)

func TestNewPatchLayout(t *testing.T) {
	b := geom.UnitCube(4)
	p := NewPatch(b, 1, 2, "q", "rho")
	if p.Grown() != b.Grow(2) {
		t.Errorf("Grown = %v", p.Grown())
	}
	if got := len(p.Field("q")); got != 8*8*8 {
		t.Errorf("field size = %d, want 512", got)
	}
	if p.NumFields() != 2 {
		t.Errorf("NumFields = %d", p.NumFields())
	}
	names := p.FieldNames()
	if names[0] != "q" || names[1] != "rho" {
		t.Errorf("FieldNames = %v (want sorted)", names)
	}
	if !p.HasField("q") || p.HasField("nope") {
		t.Error("HasField wrong")
	}
}

func TestNewPatchPanics(t *testing.T) {
	assertPanics(t, "empty box", func() {
		NewPatch(geom.Box{Lo: geom.Index{1, 0, 0}, Hi: geom.Index{0, 0, 0}}, 0, 0, "q")
	})
	assertPanics(t, "negative ghost", func() {
		NewPatch(geom.UnitCube(2), 0, -1, "q")
	})
	assertPanics(t, "duplicate field", func() {
		NewPatch(geom.UnitCube(2), 0, 0, "q", "q")
	})
	p := NewPatch(geom.UnitCube(2), 0, 0, "q")
	assertPanics(t, "unknown field", func() { p.Field("zz") })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestAtSetRoundTrip(t *testing.T) {
	p := NewPatch(geom.UnitCube(3), 0, 1, "q")
	i := geom.Index{-1, 0, 3} // a ghost cell
	p.Set("q", i, 42.5)
	if got := p.At("q", i); got != 42.5 {
		t.Errorf("At = %v", got)
	}
}

func TestFillFuncAndSum(t *testing.T) {
	p := NewPatch(geom.UnitCube(4), 0, 1, "q")
	p.FillFunc("q", func(i geom.Index) float64 {
		return float64(i[0] + i[1] + i[2])
	})
	// Sum over interior only: sum_{x,y,z in 0..3} (x+y+z) = 3 * 16 * (0+1+2+3) = 288.
	if got := p.Sum("q"); got != 288 {
		t.Errorf("Sum = %v, want 288", got)
	}
}

func TestSumExcludesGhosts(t *testing.T) {
	p := NewPatch(geom.UnitCube(2), 0, 2, "q")
	p.FillConstant("q", 1)
	if got := p.Sum("q"); got != 8 {
		t.Errorf("Sum = %v, want 8 (interior only)", got)
	}
}

func TestNorms(t *testing.T) {
	p := NewPatch(geom.UnitCube(2), 0, 0, "q")
	p.FillConstant("q", -3)
	if p.MaxAbs("q") != 3 {
		t.Errorf("MaxAbs = %v", p.MaxAbs("q"))
	}
	if math.Abs(p.L2Norm("q")-3) > 1e-14 {
		t.Errorf("L2Norm = %v", p.L2Norm("q"))
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewPatch(geom.UnitCube(2), 1, 1, "q")
	p.FillConstant("q", 7)
	q := p.Clone()
	q.Set("q", geom.Index{0, 0, 0}, 0)
	if p.At("q", geom.Index{0, 0, 0}) != 7 {
		t.Error("Clone shares storage with original")
	}
	if q.Level != p.Level || q.NGhost != p.NGhost || q.Box != p.Box {
		t.Error("Clone metadata mismatch")
	}
}

func TestBytes(t *testing.T) {
	p := NewPatch(geom.UnitCube(4), 0, 0, "a", "b")
	if got := p.Bytes(); got != 64*2*8 {
		t.Errorf("Bytes = %d", got)
	}
}

func TestCopyRegion(t *testing.T) {
	// Two adjacent patches; copy src interior into dst ghost layer.
	dst := NewPatch(geom.BoxFromShape(geom.Index{0, 0, 0}, geom.Index{4, 4, 4}), 0, 1, "q")
	src := NewPatch(geom.BoxFromShape(geom.Index{4, 0, 0}, geom.Index{4, 4, 4}), 0, 1, "q")
	src.FillConstant("q", 9)
	dst.FillConstant("q", 0)
	// dst's ghost plane at x=4 overlaps src's interior.
	region := dst.Grown().Intersect(src.Box)
	CopyRegion(dst, src, "q", region)
	if got := dst.At("q", geom.Index{4, 2, 2}); got != 9 {
		t.Errorf("ghost cell not filled: %v", got)
	}
	// dst interior untouched.
	if got := dst.At("q", geom.Index{3, 2, 2}); got != 0 {
		t.Errorf("interior overwritten: %v", got)
	}
}

func TestCopyRegionClips(t *testing.T) {
	dst := NewPatch(geom.UnitCube(2), 0, 0, "q")
	src := NewPatch(geom.UnitCube(2).Shift(geom.Index{10, 0, 0}), 0, 0, "q")
	// Disjoint: must be a no-op, not a panic.
	CopyRegion(dst, src, "q", geom.UnitCube(20))
	if dst.Sum("q") != 0 {
		t.Error("disjoint copy modified dst")
	}
}

func TestCopyRegionLevelMismatchPanics(t *testing.T) {
	dst := NewPatch(geom.UnitCube(2), 0, 0, "q")
	src := NewPatch(geom.UnitCube(2), 1, 0, "q")
	assertPanics(t, "level mismatch", func() {
		CopyRegion(dst, src, "q", geom.UnitCube(2))
	})
}

func TestRestrictAverages(t *testing.T) {
	r := 2
	coarse := NewPatch(geom.UnitCube(2), 0, 0, "q")
	fine := NewPatch(geom.UnitCube(4), 1, 0, "q")
	// Fine field = linear in x: restriction of each 2x2x2 block is the
	// block average.
	fine.FillFunc("q", func(i geom.Index) float64 { return float64(i[0]) })
	Restrict(coarse, fine, "q", r)
	// Coarse cell (0,*,*) covers fine x in {0,1} -> avg 0.5.
	if got := coarse.At("q", geom.Index{0, 0, 0}); math.Abs(got-0.5) > 1e-14 {
		t.Errorf("restrict avg = %v, want 0.5", got)
	}
	if got := coarse.At("q", geom.Index{1, 1, 1}); math.Abs(got-2.5) > 1e-14 {
		t.Errorf("restrict avg = %v, want 2.5", got)
	}
}

func TestRestrictConservesTotal(t *testing.T) {
	r := 2
	rng := rand.New(rand.NewSource(7))
	coarse := NewPatch(geom.UnitCube(4), 0, 0, "q")
	fine := NewPatch(geom.UnitCube(8), 1, 0, "q")
	fine.FillFunc("q", func(geom.Index) float64 { return rng.Float64() })
	Restrict(coarse, fine, "q", r)
	// Total coarse mass * r^3 must equal total fine mass (cell volumes
	// differ by r^3).
	cMass := coarse.Sum("q") * float64(r*r*r)
	fMass := fine.Sum("q")
	if math.Abs(cMass-fMass) > 1e-10*math.Abs(fMass) {
		t.Errorf("restriction lost mass: coarse %v fine %v", cMass, fMass)
	}
}

func TestRestrictPartialOverlap(t *testing.T) {
	coarse := NewPatch(geom.UnitCube(4), 0, 0, "q")
	fine := NewPatch(geom.BoxFromShape(geom.Index{2, 2, 2}, geom.Index{4, 4, 4}), 1, 0, "q")
	fine.FillConstant("q", 5)
	coarse.FillConstant("q", 1)
	Restrict(coarse, fine, "q", 2)
	// Covered coarse cells (1..2)^3 become 5; others stay 1.
	if got := coarse.At("q", geom.Index{1, 1, 1}); got != 5 {
		t.Errorf("covered cell = %v", got)
	}
	if got := coarse.At("q", geom.Index{0, 0, 0}); got != 1 {
		t.Errorf("uncovered cell = %v", got)
	}
}

func TestProlongInjection(t *testing.T) {
	coarse := NewPatch(geom.UnitCube(2), 0, 0, "q")
	coarse.FillFunc("q", func(i geom.Index) float64 { return float64(i[0]*100 + i[1]*10 + i[2]) })
	fine := NewPatch(geom.UnitCube(4), 1, 0, "q")
	Prolong(fine, coarse, "q", 2, fine.Box)
	// Fine cell (3,3,3) maps to coarse (1,1,1) -> 111.
	if got := fine.At("q", geom.Index{3, 3, 3}); got != 111 {
		t.Errorf("prolong = %v, want 111", got)
	}
	if got := fine.At("q", geom.Index{0, 1, 2}); got != 1 {
		t.Errorf("prolong = %v, want 1 (coarse (0,0,1))", got)
	}
}

func TestProlongThenRestrictIsIdentity(t *testing.T) {
	// Piecewise-constant prolongation followed by averaging restriction
	// must reproduce the coarse data exactly.
	rng := rand.New(rand.NewSource(8))
	coarse := NewPatch(geom.UnitCube(3), 0, 0, "q")
	coarse.FillFunc("q", func(geom.Index) float64 { return rng.Float64() })
	orig := coarse.Clone()
	fine := NewPatch(geom.UnitCube(6), 1, 0, "q")
	Prolong(fine, coarse, "q", 2, fine.Box)
	coarse.FillConstant("q", 0)
	Restrict(coarse, fine, "q", 2)
	coarse.Box.ForEach(func(i geom.Index) {
		if math.Abs(coarse.At("q", i)-orig.At("q", i)) > 1e-14 {
			t.Fatalf("restrict∘prolong != id at %v", i)
		}
	})
}

func TestProlongFillsGhostRegion(t *testing.T) {
	coarse := NewPatch(geom.UnitCube(4), 0, 1, "q")
	coarse.FillConstant("q", 2)
	fine := NewPatch(geom.BoxFromShape(geom.Index{2, 2, 2}, geom.Index{4, 4, 4}), 1, 1, "q")
	// Fill the whole grown fine box from the coarse patch.
	Prolong(fine, coarse, "q", 2, fine.Grown())
	if got := fine.At("q", geom.Index{1, 2, 2}); got != 2 {
		t.Errorf("fine ghost = %v, want 2", got)
	}
}
