package grid

import (
	"fmt"

	"samrdlb/internal/geom"
)

// PackRegion serializes the named fields of p over region into a flat
// slice (field-major, then offset order within the region). The
// region must lie within the patch's grown box — both sides of a
// message must agree on the exact cell set.
func PackRegion(p *Patch, region geom.Box, fields []string) []float64 {
	g := p.Grown()
	if !g.ContainsBox(region) {
		panic(fmt.Sprintf("grid.PackRegion: region %v escapes patch %v", region, g))
	}
	n := int(region.NumCells())
	out := make([]float64, 0, n*len(fields))
	for _, name := range fields {
		f := p.Field(name)
		region.ForEach(func(i geom.Index) {
			out = append(out, f[g.Offset(i)])
		})
	}
	return out
}

// UnpackRegion writes data produced by PackRegion with the same
// region and field list into p.
func UnpackRegion(p *Patch, region geom.Box, fields []string, data []float64) {
	g := p.Grown()
	if !g.ContainsBox(region) {
		panic(fmt.Sprintf("grid.UnpackRegion: region %v escapes patch %v", region, g))
	}
	n := int(region.NumCells())
	if len(data) != n*len(fields) {
		panic(fmt.Sprintf("grid.UnpackRegion: got %d values for %d cells × %d fields",
			len(data), n, len(fields)))
	}
	k := 0
	for _, name := range fields {
		f := p.Field(name)
		region.ForEach(func(i geom.Index) {
			f[g.Offset(i)] = data[k]
			k++
		})
	}
}
