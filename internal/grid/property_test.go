package grid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"samrdlb/internal/geom"
)

// Property tests over the patch transfer operators: these are the
// primitives every exchange in the system reduces to, so they carry
// invariants rather than example-based expectations.

func quickCfg(seed int64) *quick.Config {
	return &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(seed))}
}

// randomRegionIn returns a random non-empty sub-box of b.
func randomRegionIn(rng *rand.Rand, b geom.Box) geom.Box {
	var lo, hi geom.Index
	for d := 0; d < 3; d++ {
		s := b.Shape()[d]
		a := rng.Intn(s)
		z := a + rng.Intn(s-a)
		lo[d], hi[d] = b.Lo[d]+a, b.Lo[d]+z
	}
	return geom.Box{Lo: lo, Hi: hi}
}

func TestPackUnpackRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewPatch(geom.UnitCube(6), 0, 1, "a", "b")
		p.FillFunc("a", func(geom.Index) float64 { return rng.Float64() })
		p.FillFunc("b", func(geom.Index) float64 { return rng.Float64() })
		region := randomRegionIn(rng, p.Grown())
		data := PackRegion(p, region, []string{"a", "b"})
		q := NewPatch(p.Box, 0, 1, "a", "b")
		UnpackRegion(q, region, []string{"a", "b"}, data)
		ok := true
		region.ForEach(func(i geom.Index) {
			if q.At("a", i) != p.At("a", i) || q.At("b", i) != p.At("b", i) {
				ok = false
			}
		})
		// Cells outside the region stay zero.
		q.Box.ForEach(func(i geom.Index) {
			if !region.Contains(i) && q.At("a", i) != 0 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, quickCfg(11)); err != nil {
		t.Error(err)
	}
}

func TestPackRegionEscapePanics(t *testing.T) {
	p := NewPatch(geom.UnitCube(4), 0, 0, "q")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PackRegion(p, geom.UnitCube(10), []string{"q"})
}

func TestUnpackSizeMismatchPanics(t *testing.T) {
	p := NewPatch(geom.UnitCube(4), 0, 0, "q")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	UnpackRegion(p, geom.UnitCube(2), []string{"q"}, make([]float64, 3))
}

func TestRestrictConservationProperty(t *testing.T) {
	// For any fine data, coarse mass × r³ equals fine mass over the
	// covered region (the finite-volume conservation invariant).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 2
		coarse := NewPatch(geom.UnitCube(4), 0, 0, "q")
		fine := NewPatch(geom.UnitCube(8), 1, 0, "q")
		fine.FillFunc("q", func(geom.Index) float64 { return rng.Float64()*2 - 1 })
		Restrict(coarse, fine, "q", r)
		cMass := coarse.Sum("q") * float64(r*r*r)
		fMass := fine.Sum("q")
		diff := cMass - fMass
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-10*(1+absf(fMass))
	}
	if err := quick.Check(f, quickCfg(12)); err != nil {
		t.Error(err)
	}
}

func TestProlongPreservesBoundsProperty(t *testing.T) {
	// Piecewise-constant prolongation introduces no new extrema.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		coarse := NewPatch(geom.UnitCube(4), 0, 0, "q")
		coarse.FillFunc("q", func(geom.Index) float64 { return rng.Float64() })
		fine := NewPatch(geom.UnitCube(8), 1, 0, "q")
		Prolong(fine, coarse, "q", 2, fine.Box)
		lo, hi := 2.0, -1.0
		coarse.Box.ForEach(func(i geom.Index) {
			v := coarse.At("q", i)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		})
		ok := true
		fine.Box.ForEach(func(i geom.Index) {
			v := fine.At("q", i)
			if v < lo-1e-15 || v > hi+1e-15 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, quickCfg(13)); err != nil {
		t.Error(err)
	}
}

func TestCopyRegionIdempotentProperty(t *testing.T) {
	// Copying the same region twice equals copying once.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := NewPatch(geom.UnitCube(5), 0, 1, "q")
		src.FillFunc("q", func(geom.Index) float64 { return rng.Float64() })
		dst1 := NewPatch(geom.UnitCube(5).Shift(geom.Index{3, 0, 0}), 0, 1, "q")
		dst2 := dst1.Clone()
		region := randomRegionIn(rng, geom.UnitCube(8))
		CopyRegion(dst1, src, "q", region)
		CopyRegion(dst2, src, "q", region)
		CopyRegion(dst2, src, "q", region)
		for k, v := range dst1.Field("q") {
			if dst2.Field("q")[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(14)); err != nil {
		t.Error(err)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestProlongLinearReproducesLinearFields(t *testing.T) {
	// Trilinear interpolation is exact for affine data: prolong a
	// linear coarse field and compare fine interior cells away from
	// the boundary (where the full stencil exists) against the exact
	// values.
	coarse := NewPatch(geom.UnitCube(6), 0, 1, "q")
	lin := func(x, y, z float64) float64 { return 2*x - 3*y + 0.5*z + 1 }
	coarse.FillFunc("q", func(i geom.Index) float64 {
		return lin(float64(i[0])+0.5, float64(i[1])+0.5, float64(i[2])+0.5)
	})
	fine := NewPatch(geom.UnitCube(12), 1, 0, "q")
	ProlongLinear(fine, coarse, "q", 2, fine.Box)
	inner := fine.Box.Grow(-2)
	inner.ForEach(func(f geom.Index) {
		// Fine cell centre in coarse coordinates.
		want := lin((float64(f[0])+0.5)/2, (float64(f[1])+0.5)/2, (float64(f[2])+0.5)/2)
		if got := fine.At("q", f); absf(got-want) > 1e-12 {
			t.Fatalf("trilinear not exact on linear data at %v: %v vs %v", f, got, want)
		}
	})
}

func TestProlongLinearBoundaryFallback(t *testing.T) {
	// A coarse patch with no ghosts: fine cells near the edge lack a
	// full stencil and fall back to injection — values must still be
	// within the coarse data's range, never extrapolated wildly.
	coarse := NewPatch(geom.UnitCube(4), 0, 0, "q")
	coarse.FillFunc("q", func(i geom.Index) float64 { return float64(i[0]) })
	fine := NewPatch(geom.UnitCube(8), 1, 0, "q")
	ProlongLinear(fine, coarse, "q", 2, fine.Box)
	fine.Box.ForEach(func(f geom.Index) {
		v := fine.At("q", f)
		if v < 0 || v > 3 {
			t.Fatalf("boundary fallback out of range at %v: %v", f, v)
		}
	})
	// Corner cell gets pure injection of its parent.
	if got := fine.At("q", geom.Index{0, 0, 0}); got != 0 {
		t.Errorf("corner injection = %v", got)
	}
}

func TestProlongLinearBetterThanConstantOnSmoothData(t *testing.T) {
	coarse := NewPatch(geom.UnitCube(8), 0, 1, "q")
	smooth := func(x float64) float64 { return x * x }
	coarse.FillFunc("q", func(i geom.Index) float64 {
		return smooth((float64(i[0]) + 0.5) / 8)
	})
	mkFine := func() *Patch { return NewPatch(geom.UnitCube(16), 1, 0, "q") }
	fc, fl := mkFine(), mkFine()
	Prolong(fc, coarse, "q", 2, fc.Box)
	ProlongLinear(fl, coarse, "q", 2, fl.Box)
	errOf := func(p *Patch) float64 {
		var e float64
		p.Box.Grow(-2).ForEach(func(f geom.Index) {
			e += absf(p.At("q", f) - smooth((float64(f[0])+0.5)/16))
		})
		return e
	}
	if errOf(fl) >= errOf(fc) {
		t.Errorf("trilinear (%v) should beat injection (%v) on smooth data", errOf(fl), errOf(fc))
	}
}

func TestProlongLinearValidation(t *testing.T) {
	coarse := NewPatch(geom.UnitCube(4), 0, 0, "q")
	fine := NewPatch(geom.UnitCube(8), 2, 0, "q") // wrong level gap
	defer func() {
		if recover() == nil {
			t.Error("expected panic for level mismatch")
		}
	}()
	ProlongLinear(fine, coarse, "q", 2, fine.Box)
}

func TestProlongLinearEmptyRegionNoop(t *testing.T) {
	coarse := NewPatch(geom.UnitCube(4), 0, 0, "q")
	coarse.FillConstant("q", 5)
	fine := NewPatch(geom.UnitCube(8), 1, 0, "q")
	ProlongLinear(fine, coarse, "q", 2, geom.UnitCube(8).Shift(geom.Index{100, 0, 0}))
	if fine.Sum("q") != 0 {
		t.Error("disjoint region must be a no-op")
	}
}
