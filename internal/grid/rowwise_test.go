package grid

import (
	"math/rand"
	"testing"

	"samrdlb/internal/geom"
)

// The row-wise kernels in patch.go replaced per-cell closure loops.
// These tests pin them, bit for bit, against naive per-cell references
// equivalent to the originals — including boxes with negative (ghost)
// indices.

func randPatch(rng *rand.Rand, box geom.Box, level, nghost int) *Patch {
	p := NewPatch(box, level, nghost, "q")
	// FillFunc covers the grown box, ghosts included.
	p.FillFunc("q", func(geom.Index) float64 { return rng.Float64() })
	return p
}

func refCopyRegion(dst, src *Patch, name string, region geom.Box) {
	r := region.Intersect(dst.Grown()).Intersect(src.Grown())
	r.ForEach(func(i geom.Index) {
		dst.Set(name, i, src.At(name, i))
	})
}

func refProlong(fine, coarse *Patch, name string, r int, region geom.Box) {
	cg := coarse.Grown()
	region.Intersect(fine.Grown()).ForEach(func(f geom.Index) {
		c := f.FloorDiv(r)
		if !cg.Contains(c) {
			return
		}
		fine.Set(name, f, coarse.At(name, c))
	})
}

func refRestrict(coarse, fine *Patch, name string, r int) {
	overlap := coarse.Box.Intersect(fine.Box.Coarsen(r))
	inv := 1.0 / float64(r*r*r)
	r3 := float64(r * r * r)
	overlap.ForEach(func(c geom.Index) {
		fb := geom.Box{Lo: c.Scale(r), Hi: c.Scale(r).Add(geom.Index{r - 1, r - 1, r - 1})}.
			Intersect(fine.Box)
		var s float64
		fb.ForEach(func(f geom.Index) { s += fine.At(name, f) })
		coarse.Set(name, c, s*inv*r3/float64(fb.NumCells()))
	})
}

func refClamp(p *Patch, name string, region, src geom.Box) {
	region.Intersect(p.Grown()).ForEach(func(i geom.Index) {
		p.Set(name, i, p.At(name, i.Max(src.Lo).Min(src.Hi)))
	})
}

func assertSameField(t *testing.T, want, got *Patch, context string) {
	t.Helper()
	wf, gf := want.Field("q"), got.Field("q")
	for k := range wf {
		if wf[k] != gf[k] {
			t.Fatalf("%s: field differs at flat index %d: want %v, got %v", context, k, wf[k], gf[k])
		}
	}
}

func TestCopyRegionMatchesPerCell(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Boxes straddling the origin so negative indices are exercised.
	src := randPatch(rng, geom.Box{Lo: geom.Index{-4, -3, -2}, Hi: geom.Index{5, 6, 7}}, 0, 2)
	a := randPatch(rng, geom.Box{Lo: geom.Index{-1, -1, -1}, Hi: geom.Index{8, 8, 8}}, 0, 2)
	b := a.Clone()
	region := geom.Box{Lo: geom.Index{-3, -2, -1}, Hi: geom.Index{4, 5, 6}}
	CopyRegion(a, src, "q", region)
	refCopyRegion(b, src, "q", region)
	assertSameField(t, b, a, "CopyRegion")
}

func TestProlongMatchesPerCell(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, r := range []int{2, 4} {
		coarse := randPatch(rng, geom.Box{Lo: geom.Index{-2, -2, -2}, Hi: geom.Index{5, 5, 5}}, 0, 1)
		a := randPatch(rng, geom.Box{Lo: geom.Index{-3, -3, -3}, Hi: geom.Index{9, 9, 9}}, 1, 2)
		b := a.Clone()
		// Region deliberately larger than the coarse footprint so the
		// clip-vs-contains equivalence is exercised, with negative lows.
		region := a.Grown()
		Prolong(a, coarse, "q", r, region)
		refProlong(b, coarse, "q", r, region)
		assertSameField(t, b, a, "Prolong")
	}
}

func TestRestrictMatchesPerCell(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, r := range []int{2, 3} {
		fine := randPatch(rng, geom.Box{Lo: geom.Index{-2, 0, 2}, Hi: geom.Index{9, 11, 13}}, 1, 1)
		a := randPatch(rng, geom.Box{Lo: geom.Index{-3, -3, -3}, Hi: geom.Index{6, 6, 6}}, 0, 1)
		b := a.Clone()
		Restrict(a, fine, "q", r)
		refRestrict(b, fine, "q", r)
		assertSameField(t, b, a, "Restrict")
	}
}

func TestClampRegionMatchesPerCell(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	box := geom.Box{Lo: geom.Index{0, 0, 0}, Hi: geom.Index{7, 7, 7}}
	a := randPatch(rng, box, 0, 2)
	b := a.Clone()
	// Exactly the fill path's usage: clamp every grown cell outside the
	// domain back into the grid box.
	dom := geom.Box{Lo: geom.Index{0, 0, 0}, Hi: geom.Index{15, 15, 15}}
	for _, cb := range geom.Subtract(a.Grown(), dom) {
		ClampRegion(a, "q", cb, box)
		refClamp(b, "q", cb, box)
	}
	assertSameField(t, b, a, "ClampRegion")

	// An interior grid (no domain face): clamp boxes on all six sides.
	inner := geom.Box{Lo: geom.Index{4, 4, 4}, Hi: geom.Index{11, 11, 11}}
	c := randPatch(rng, inner, 0, 2)
	d := c.Clone()
	for _, cb := range geom.Subtract(c.Grown(), dom) {
		ClampRegion(c, "q", cb, inner)
		refClamp(d, "q", cb, inner)
	}
	assertSameField(t, d, c, "ClampRegion interior")
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, r, want int }{
		{0, 2, 0}, {1, 2, 0}, {2, 2, 1}, {3, 2, 1},
		{-1, 2, -1}, {-2, 2, -1}, {-3, 2, -2}, {-4, 2, -2},
		{-1, 4, -1}, {-4, 4, -1}, {-5, 4, -2}, {7, 4, 1},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.r); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.r, got, c.want)
		}
	}
}
