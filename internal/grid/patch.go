// Package grid provides structured grid patches: rectangular blocks of
// cell-centred field data with ghost zones, plus the inter-patch
// transfer operators SAMR needs (copy-on-intersection, restriction
// from fine to coarse, prolongation from coarse to fine).
//
// A Patch stores one or more named fields over its grown (interior +
// ghost) box in x-fastest linear order. All operators are written
// against geom.Box index arithmetic so they work for any level and any
// patch placement.
package grid

import (
	"fmt"
	"math"
	"sort"

	"samrdlb/internal/geom"
)

// Patch is a rectangular block of cell-centred data on one refinement
// level. Fields are stored over the grown box (interior plus NGhost
// ghost cells on every side).
type Patch struct {
	// Box is the interior region owned by this patch, in level index
	// space.
	Box geom.Box
	// Level is the refinement level the patch lives on (0 = coarsest).
	Level int
	// NGhost is the ghost-zone width on each side.
	NGhost int

	names  []string
	fields map[string][]float64
}

// NewPatch allocates a patch with the given interior box, level, ghost
// width, and named fields (all zero-initialised).
func NewPatch(box geom.Box, level, nghost int, fieldNames ...string) *Patch {
	if box.Empty() {
		panic(fmt.Sprintf("grid.NewPatch: empty box %v", box))
	}
	if nghost < 0 {
		panic("grid.NewPatch: negative ghost width")
	}
	p := &Patch{
		Box:    box,
		Level:  level,
		NGhost: nghost,
		fields: make(map[string][]float64, len(fieldNames)),
	}
	n := int(box.Grow(nghost).NumCells())
	for _, name := range fieldNames {
		if _, dup := p.fields[name]; dup {
			panic("grid.NewPatch: duplicate field " + name)
		}
		p.fields[name] = make([]float64, n)
		p.names = append(p.names, name)
	}
	sort.Strings(p.names)
	return p
}

// Grown returns the interior box expanded by the ghost width — the
// region actually backed by storage.
func (p *Patch) Grown() geom.Box { return p.Box.Grow(p.NGhost) }

// FieldNames returns the patch's field names in sorted order.
func (p *Patch) FieldNames() []string {
	out := make([]string, len(p.names))
	copy(out, p.names)
	return out
}

// NumFields returns the number of fields stored on the patch.
func (p *Patch) NumFields() int { return len(p.names) }

// Field returns the raw storage for a named field (over the grown
// box). It panics on unknown names: field sets are fixed at
// construction and a miss is a programming error.
func (p *Patch) Field(name string) []float64 {
	f, ok := p.fields[name]
	if !ok {
		panic("grid: unknown field " + name)
	}
	return f
}

// HasField reports whether the patch carries the named field.
func (p *Patch) HasField(name string) bool {
	_, ok := p.fields[name]
	return ok
}

// At returns field value at cell i (which must lie in the grown box).
func (p *Patch) At(name string, i geom.Index) float64 {
	return p.Field(name)[p.Grown().Offset(i)]
}

// Set stores v at cell i of the named field.
func (p *Patch) Set(name string, i geom.Index, v float64) {
	p.Field(name)[p.Grown().Offset(i)] = v
}

// FillConstant sets every cell (including ghosts) of the field to v.
func (p *Patch) FillConstant(name string, v float64) {
	f := p.Field(name)
	for i := range f {
		f[i] = v
	}
}

// FillFunc evaluates fn at every cell of the grown box and stores the
// result in the named field.
func (p *Patch) FillFunc(name string, fn func(geom.Index) float64) {
	f := p.Field(name)
	g := p.Grown()
	g.ForEach(func(i geom.Index) {
		f[g.Offset(i)] = fn(i)
	})
}

// Sum returns the sum of the field over the interior box only.
func (p *Patch) Sum(name string) float64 {
	f := p.Field(name)
	g := p.Grown()
	var s float64
	p.Box.ForEach(func(i geom.Index) {
		s += f[g.Offset(i)]
	})
	return s
}

// MaxAbs returns the maximum absolute value over the interior.
func (p *Patch) MaxAbs(name string) float64 {
	f := p.Field(name)
	g := p.Grown()
	var m float64
	p.Box.ForEach(func(i geom.Index) {
		if v := math.Abs(f[g.Offset(i)]); v > m {
			m = v
		}
	})
	return m
}

// L2Norm returns the root-mean-square of the field over the interior.
func (p *Patch) L2Norm(name string) float64 {
	f := p.Field(name)
	g := p.Grown()
	var s float64
	p.Box.ForEach(func(i geom.Index) {
		v := f[g.Offset(i)]
		s += v * v
	})
	return math.Sqrt(s / float64(p.Box.NumCells()))
}

// Clone returns a deep copy of the patch.
func (p *Patch) Clone() *Patch {
	q := NewPatch(p.Box, p.Level, p.NGhost, p.names...)
	for _, name := range p.names {
		copy(q.fields[name], p.fields[name])
	}
	return q
}

// Bytes returns the in-memory size of the patch's field data, the
// quantity that matters for migration cost modelling.
func (p *Patch) Bytes() int64 {
	return p.Grown().NumCells() * int64(len(p.names)) * 8
}

// CopyRegion copies the named field over region (in level index space)
// from src to dst. The region is clipped to both patches' grown boxes,
// so callers may pass the nominal overlap and let clipping handle
// ghosts. Both patches must be on the same level. Rows are moved with
// copy() — this is the hot operation of the ghost-exchange plan.
func CopyRegion(dst, src *Patch, name string, region geom.Box) {
	if dst.Level != src.Level {
		panic("grid.CopyRegion: level mismatch")
	}
	r := region.Intersect(dst.Grown()).Intersect(src.Grown())
	if r.Empty() {
		return
	}
	df, sf := dst.Field(name), src.Field(name)
	dg, sg := dst.Grown(), src.Grown()
	n := r.Hi[0] - r.Lo[0] + 1
	for z := r.Lo[2]; z <= r.Hi[2]; z++ {
		for y := r.Lo[1]; y <= r.Hi[1]; y++ {
			do := dg.Offset(geom.Index{r.Lo[0], y, z})
			so := sg.Offset(geom.Index{r.Lo[0], y, z})
			copy(df[do:do+n], sf[so:so+n])
		}
	}
}

// ClampRegion fills the named field over region by copying, for every
// cell, the value at the cell's per-component clamp into the src box —
// the outflow (nearest-interior) boundary condition. Each row splits
// into at most three segments: a constant run left of src, a straight
// copy of the clamped source row, and a constant run right of src.
// The region is clipped to the patch's grown box; src must be inside
// it.
func ClampRegion(p *Patch, name string, region, src geom.Box) {
	g := p.Grown()
	reg := region.Intersect(g)
	if reg.Empty() {
		return
	}
	f := p.Field(name)
	for z := reg.Lo[2]; z <= reg.Hi[2]; z++ {
		sz := clampInt(z, src.Lo[2], src.Hi[2])
		for y := reg.Lo[1]; y <= reg.Hi[1]; y++ {
			sy := clampInt(y, src.Lo[1], src.Hi[1])
			do := g.Offset(geom.Index{reg.Lo[0], y, z})
			// Left of src: constant value of src's low-x column.
			if x1 := min(reg.Hi[0], src.Lo[0]-1); x1 >= reg.Lo[0] {
				v := f[g.Offset(geom.Index{src.Lo[0], sy, sz})]
				for x := reg.Lo[0]; x <= x1; x++ {
					f[do] = v
					do++
				}
			}
			// Inside src's x-range: copy the clamped row.
			m0, m1 := max(reg.Lo[0], src.Lo[0]), min(reg.Hi[0], src.Hi[0])
			if m0 <= m1 {
				so := g.Offset(geom.Index{m0, sy, sz})
				n := m1 - m0 + 1
				copy(f[do:do+n], f[so:so+n])
				do += n
			}
			// Right of src: constant value of src's high-x column.
			if x0 := max(reg.Lo[0], src.Hi[0]+1); x0 <= reg.Hi[0] {
				v := f[g.Offset(geom.Index{src.Hi[0], sy, sz})]
				for x := x0; x <= reg.Hi[0]; x++ {
					f[do] = v
					do++
				}
			}
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Restrict averages the fine patch's field over each coarse cell of
// the overlap and stores it into the coarse patch. The refinement
// factor r relates the two levels (fine.Level = coarse.Level+1). The
// loops are explicit but accumulate in exactly the closure-based
// original's order, so results are bit-identical to it.
func Restrict(coarse, fine *Patch, name string, r int) {
	if fine.Level != coarse.Level+1 {
		panic("grid.Restrict: fine must be exactly one level finer")
	}
	overlap := coarse.Box.Intersect(fine.Box.Coarsen(r))
	if overlap.Empty() {
		return
	}
	cf, ff := coarse.Field(name), fine.Field(name)
	cg, fg := coarse.Grown(), fine.Grown()
	inv := 1.0 / float64(r*r*r)
	r3 := float64(r * r * r)
	for cz := overlap.Lo[2]; cz <= overlap.Hi[2]; cz++ {
		for cy := overlap.Lo[1]; cy <= overlap.Hi[1]; cy++ {
			co := cg.Offset(geom.Index{overlap.Lo[0], cy, cz})
			for cx := overlap.Lo[0]; cx <= overlap.Hi[0]; cx++ {
				fb := geom.Box{
					Lo: geom.Index{cx * r, cy * r, cz * r},
					Hi: geom.Index{cx*r + r - 1, cy*r + r - 1, cz*r + r - 1},
				}.Intersect(fine.Box)
				n := fb.Hi[0] - fb.Lo[0] + 1
				var s float64
				for fz := fb.Lo[2]; fz <= fb.Hi[2]; fz++ {
					for fy := fb.Lo[1]; fy <= fb.Hi[1]; fy++ {
						fo := fg.Offset(geom.Index{fb.Lo[0], fy, fz})
						for i := 0; i < n; i++ {
							s += ff[fo]
							fo++
						}
					}
				}
				cf[co] = s * inv * r3 / float64(fb.NumCells())
				co++
			}
		}
	}
}

// Prolong fills the fine patch's field over region (fine index space)
// by piecewise-constant injection from the coarse patch. Used to
// initialise newly created fine grids and to fill fine ghost cells
// that have no same-level neighbour. Fine cells whose coarse parent
// falls outside the coarse patch's grown box are left untouched
// (handled by clipping the region to the coarse footprint up front,
// so the row loops need no per-cell containment check).
func Prolong(fine, coarse *Patch, name string, r int, region geom.Box) {
	if fine.Level != coarse.Level+1 {
		panic("grid.Prolong: fine must be exactly one level finer")
	}
	cg, fg := coarse.Grown(), fine.Grown()
	// f.FloorDiv(r) ∈ cg  ⟺  f ∈ cg.Refine(r), so the clip below is
	// exactly the original per-cell cg.Contains test.
	reg := region.Intersect(fg).Intersect(cg.Refine(r))
	if reg.Empty() {
		return
	}
	cf, ff := coarse.Field(name), fine.Field(name)
	for fz := reg.Lo[2]; fz <= reg.Hi[2]; fz++ {
		cz := floorDiv(fz, r)
		for fy := reg.Lo[1]; fy <= reg.Hi[1]; fy++ {
			cy := floorDiv(fy, r)
			fo := fg.Offset(geom.Index{reg.Lo[0], fy, fz})
			cx := floorDiv(reg.Lo[0], r)
			co := cg.Offset(geom.Index{cx, cy, cz})
			rem := reg.Lo[0] - cx*r // position within the coarse cell, in [0,r)
			for fx := reg.Lo[0]; fx <= reg.Hi[0]; fx++ {
				ff[fo] = cf[co]
				fo++
				rem++
				if rem == r {
					rem = 0
					co++
				}
			}
		}
	}
}

// floorDiv is floored integer division for positive divisors (ghost
// indices can be negative).
func floorDiv(a, r int) int {
	q := a / r
	if a%r != 0 && a < 0 {
		q--
	}
	return q
}

// ProlongLinear fills the fine patch's field over region (fine index
// space) by trilinear interpolation of the coarse patch — the
// higher-order prolongation multigrid needs for textbook convergence
// rates. Coarse values are read cell-centred; fine cells whose
// interpolation stencil leaves the coarse patch's grown box fall back
// to piecewise-constant injection.
func ProlongLinear(fine, coarse *Patch, name string, r int, region geom.Box) {
	if fine.Level != coarse.Level+1 {
		panic("grid.ProlongLinear: fine must be exactly one level finer")
	}
	reg := region.Intersect(fine.Grown())
	if reg.Empty() {
		return
	}
	cf, ff := coarse.Field(name), fine.Field(name)
	cg, fg := coarse.Grown(), fine.Grown()
	rf := float64(r)
	reg.ForEach(func(f geom.Index) {
		// Fine cell centre in coarse cell-centred coordinates.
		var base geom.Index
		var w [3]float64
		ok := true
		for d := 0; d < 3; d++ {
			x := (float64(f[d])+0.5)/rf - 0.5
			lo := int(x)
			if x < 0 {
				lo = -1
			}
			if float64(lo) > x {
				lo--
			}
			base[d] = lo
			w[d] = x - float64(lo)
		}
		hi := base.Add(geom.Index{1, 1, 1})
		if !cg.Contains(base) || !cg.Contains(hi) {
			c := f.FloorDiv(r)
			if cg.Contains(c) {
				ff[fg.Offset(f)] = cf[cg.Offset(c)]
			}
			ok = false
		}
		if !ok {
			return
		}
		var v float64
		for dz := 0; dz < 2; dz++ {
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					c := base.Add(geom.Index{dx, dy, dz})
					weight := lerpW(w[0], dx) * lerpW(w[1], dy) * lerpW(w[2], dz)
					v += weight * cf[cg.Offset(c)]
				}
			}
		}
		ff[fg.Offset(f)] = v
	})
}

func lerpW(w float64, side int) float64 {
	if side == 1 {
		return w
	}
	return 1 - w
}
