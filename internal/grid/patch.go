// Package grid provides structured grid patches: rectangular blocks of
// cell-centred field data with ghost zones, plus the inter-patch
// transfer operators SAMR needs (copy-on-intersection, restriction
// from fine to coarse, prolongation from coarse to fine).
//
// A Patch stores one or more named fields over its grown (interior +
// ghost) box in x-fastest linear order. All operators are written
// against geom.Box index arithmetic so they work for any level and any
// patch placement.
package grid

import (
	"fmt"
	"math"
	"sort"

	"samrdlb/internal/geom"
)

// Patch is a rectangular block of cell-centred data on one refinement
// level. Fields are stored over the grown box (interior plus NGhost
// ghost cells on every side).
type Patch struct {
	// Box is the interior region owned by this patch, in level index
	// space.
	Box geom.Box
	// Level is the refinement level the patch lives on (0 = coarsest).
	Level int
	// NGhost is the ghost-zone width on each side.
	NGhost int

	names  []string
	fields map[string][]float64
}

// NewPatch allocates a patch with the given interior box, level, ghost
// width, and named fields (all zero-initialised).
func NewPatch(box geom.Box, level, nghost int, fieldNames ...string) *Patch {
	if box.Empty() {
		panic(fmt.Sprintf("grid.NewPatch: empty box %v", box))
	}
	if nghost < 0 {
		panic("grid.NewPatch: negative ghost width")
	}
	p := &Patch{
		Box:    box,
		Level:  level,
		NGhost: nghost,
		fields: make(map[string][]float64, len(fieldNames)),
	}
	n := int(box.Grow(nghost).NumCells())
	for _, name := range fieldNames {
		if _, dup := p.fields[name]; dup {
			panic("grid.NewPatch: duplicate field " + name)
		}
		p.fields[name] = make([]float64, n)
		p.names = append(p.names, name)
	}
	sort.Strings(p.names)
	return p
}

// Grown returns the interior box expanded by the ghost width — the
// region actually backed by storage.
func (p *Patch) Grown() geom.Box { return p.Box.Grow(p.NGhost) }

// FieldNames returns the patch's field names in sorted order.
func (p *Patch) FieldNames() []string {
	out := make([]string, len(p.names))
	copy(out, p.names)
	return out
}

// NumFields returns the number of fields stored on the patch.
func (p *Patch) NumFields() int { return len(p.names) }

// Field returns the raw storage for a named field (over the grown
// box). It panics on unknown names: field sets are fixed at
// construction and a miss is a programming error.
func (p *Patch) Field(name string) []float64 {
	f, ok := p.fields[name]
	if !ok {
		panic("grid: unknown field " + name)
	}
	return f
}

// HasField reports whether the patch carries the named field.
func (p *Patch) HasField(name string) bool {
	_, ok := p.fields[name]
	return ok
}

// At returns field value at cell i (which must lie in the grown box).
func (p *Patch) At(name string, i geom.Index) float64 {
	return p.Field(name)[p.Grown().Offset(i)]
}

// Set stores v at cell i of the named field.
func (p *Patch) Set(name string, i geom.Index, v float64) {
	p.Field(name)[p.Grown().Offset(i)] = v
}

// FillConstant sets every cell (including ghosts) of the field to v.
func (p *Patch) FillConstant(name string, v float64) {
	f := p.Field(name)
	for i := range f {
		f[i] = v
	}
}

// FillFunc evaluates fn at every cell of the grown box and stores the
// result in the named field.
func (p *Patch) FillFunc(name string, fn func(geom.Index) float64) {
	f := p.Field(name)
	g := p.Grown()
	g.ForEach(func(i geom.Index) {
		f[g.Offset(i)] = fn(i)
	})
}

// Sum returns the sum of the field over the interior box only.
func (p *Patch) Sum(name string) float64 {
	f := p.Field(name)
	g := p.Grown()
	var s float64
	p.Box.ForEach(func(i geom.Index) {
		s += f[g.Offset(i)]
	})
	return s
}

// MaxAbs returns the maximum absolute value over the interior.
func (p *Patch) MaxAbs(name string) float64 {
	f := p.Field(name)
	g := p.Grown()
	var m float64
	p.Box.ForEach(func(i geom.Index) {
		if v := math.Abs(f[g.Offset(i)]); v > m {
			m = v
		}
	})
	return m
}

// L2Norm returns the root-mean-square of the field over the interior.
func (p *Patch) L2Norm(name string) float64 {
	f := p.Field(name)
	g := p.Grown()
	var s float64
	p.Box.ForEach(func(i geom.Index) {
		v := f[g.Offset(i)]
		s += v * v
	})
	return math.Sqrt(s / float64(p.Box.NumCells()))
}

// Clone returns a deep copy of the patch.
func (p *Patch) Clone() *Patch {
	q := NewPatch(p.Box, p.Level, p.NGhost, p.names...)
	for _, name := range p.names {
		copy(q.fields[name], p.fields[name])
	}
	return q
}

// Bytes returns the in-memory size of the patch's field data, the
// quantity that matters for migration cost modelling.
func (p *Patch) Bytes() int64 {
	return p.Grown().NumCells() * int64(len(p.names)) * 8
}

// CopyRegion copies the named field over region (in level index space)
// from src to dst. The region is clipped to both patches' grown boxes,
// so callers may pass the nominal overlap and let clipping handle
// ghosts. Both patches must be on the same level.
func CopyRegion(dst, src *Patch, name string, region geom.Box) {
	if dst.Level != src.Level {
		panic("grid.CopyRegion: level mismatch")
	}
	r := region.Intersect(dst.Grown()).Intersect(src.Grown())
	if r.Empty() {
		return
	}
	df, sf := dst.Field(name), src.Field(name)
	dg, sg := dst.Grown(), src.Grown()
	r.ForEach(func(i geom.Index) {
		df[dg.Offset(i)] = sf[sg.Offset(i)]
	})
}

// Restrict averages the fine patch's field over each coarse cell of
// the overlap and stores it into the coarse patch. The refinement
// factor r relates the two levels (fine.Level = coarse.Level+1).
func Restrict(coarse, fine *Patch, name string, r int) {
	if fine.Level != coarse.Level+1 {
		panic("grid.Restrict: fine must be exactly one level finer")
	}
	overlap := coarse.Box.Intersect(fine.Box.Coarsen(r))
	if overlap.Empty() {
		return
	}
	cf, ff := coarse.Field(name), fine.Field(name)
	cg, fg := coarse.Grown(), fine.Grown()
	inv := 1.0 / float64(r*r*r)
	overlap.ForEach(func(c geom.Index) {
		fineBlock := geom.Box{Lo: c.Scale(r), Hi: c.Scale(r).Add(geom.Index{r - 1, r - 1, r - 1})}
		fineBlock = fineBlock.Intersect(fine.Box)
		var s float64
		fineBlock.ForEach(func(f geom.Index) {
			s += ff[fg.Offset(f)]
		})
		cf[cg.Offset(c)] = s * inv * float64(r*r*r) / float64(fineBlock.NumCells())
	})
}

// Prolong fills the fine patch's field over region (fine index space)
// by piecewise-constant injection from the coarse patch. Used to
// initialise newly created fine grids and to fill fine ghost cells
// that have no same-level neighbour.
func Prolong(fine, coarse *Patch, name string, r int, region geom.Box) {
	if fine.Level != coarse.Level+1 {
		panic("grid.Prolong: fine must be exactly one level finer")
	}
	reg := region.Intersect(fine.Grown())
	if reg.Empty() {
		return
	}
	cf, ff := coarse.Field(name), fine.Field(name)
	cg, fg := coarse.Grown(), fine.Grown()
	reg.ForEach(func(f geom.Index) {
		c := f.FloorDiv(r)
		if !cg.Contains(c) {
			return
		}
		ff[fg.Offset(f)] = cf[cg.Offset(c)]
	})
}

// ProlongLinear fills the fine patch's field over region (fine index
// space) by trilinear interpolation of the coarse patch — the
// higher-order prolongation multigrid needs for textbook convergence
// rates. Coarse values are read cell-centred; fine cells whose
// interpolation stencil leaves the coarse patch's grown box fall back
// to piecewise-constant injection.
func ProlongLinear(fine, coarse *Patch, name string, r int, region geom.Box) {
	if fine.Level != coarse.Level+1 {
		panic("grid.ProlongLinear: fine must be exactly one level finer")
	}
	reg := region.Intersect(fine.Grown())
	if reg.Empty() {
		return
	}
	cf, ff := coarse.Field(name), fine.Field(name)
	cg, fg := coarse.Grown(), fine.Grown()
	rf := float64(r)
	reg.ForEach(func(f geom.Index) {
		// Fine cell centre in coarse cell-centred coordinates.
		var base geom.Index
		var w [3]float64
		ok := true
		for d := 0; d < 3; d++ {
			x := (float64(f[d])+0.5)/rf - 0.5
			lo := int(x)
			if x < 0 {
				lo = -1
			}
			if float64(lo) > x {
				lo--
			}
			base[d] = lo
			w[d] = x - float64(lo)
		}
		hi := base.Add(geom.Index{1, 1, 1})
		if !cg.Contains(base) || !cg.Contains(hi) {
			c := f.FloorDiv(r)
			if cg.Contains(c) {
				ff[fg.Offset(f)] = cf[cg.Offset(c)]
			}
			ok = false
		}
		if !ok {
			return
		}
		var v float64
		for dz := 0; dz < 2; dz++ {
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					c := base.Add(geom.Index{dx, dy, dz})
					weight := lerpW(w[0], dx) * lerpW(w[1], dy) * lerpW(w[2], dz)
					v += weight * cf[cg.Offset(c)]
				}
			}
		}
		ff[fg.Offset(f)] = v
	})
}

func lerpW(w float64, side int) float64 {
	if side == 1 {
		return w
	}
	return 1 - w
}
