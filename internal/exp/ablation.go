package exp

import (
	"fmt"

	"samrdlb/internal/dlb"
	"samrdlb/internal/engine"
	"samrdlb/internal/machine"
	"samrdlb/internal/metrics"
	"samrdlb/internal/netsim"
)

// Ablations beyond the paper's figures: the sensitivity studies its
// Section 6 lists as future work (γ is in figures.go; here the
// imbalance trigger, decomposition granularity, regrid interval, the
// NWS forecasting integration, and the multi-site extension).

// EpsRow is one point of the imbalance-trigger sweep.
type EpsRow struct {
	Eps           float64
	Total         float64
	GlobalEvals   int
	GlobalRedists int
}

// EpsSweep varies the "imbalance exists?" threshold on the 4+4 WAN
// system.
func EpsSweep(epss []float64, o Options) []EpsRow {
	o.setDefaults()
	var rows []EpsRow
	for _, e := range epss {
		sys := systemFor("ShockPool3D", 4, o.Seed)
		r := engine.New(sys, driverFor("ShockPool3D", o), engine.Options{
			Steps:        o.Steps,
			Balancer:     dlb.DistributedDLB{},
			ImbalanceEps: e,
			MaxLevel:     o.MaxLevel,
			WithData:     o.WithData,
		}).Run()
		rows = append(rows, EpsRow{Eps: e, Total: r.Total, GlobalEvals: r.GlobalEvals, GlobalRedists: r.GlobalRedists})
	}
	return rows
}

// GranularityRow is one point of the decomposition-granularity sweep.
type GranularityRow struct {
	GridsPerProc int
	Total        float64
	Utilisation  float64
}

// GranularitySweep varies the initial level-0 boxes per processor:
// finer decompositions balance better but pay more messages.
func GranularitySweep(gpps []int, o Options) []GranularityRow {
	o.setDefaults()
	var rows []GranularityRow
	for _, g := range gpps {
		sys := systemFor("ShockPool3D", 4, o.Seed)
		r := engine.New(sys, driverFor("ShockPool3D", o), engine.Options{
			Steps:        o.Steps,
			Balancer:     dlb.DistributedDLB{},
			GridsPerProc: g,
			MaxLevel:     o.MaxLevel,
			WithData:     o.WithData,
		}).Run()
		rows = append(rows, GranularityRow{GridsPerProc: g, Total: r.Total, Utilisation: r.Utilisation})
	}
	return rows
}

// RegridRow is one point of the regrid-interval sweep.
type RegridRow struct {
	Interval int
	Total    float64
	MaxCells int64
}

// RegridIntervalSweep varies how often the hierarchy is rebuilt.
func RegridIntervalSweep(intervals []int, o Options) []RegridRow {
	o.setDefaults()
	var rows []RegridRow
	for _, iv := range intervals {
		sys := systemFor("ShockPool3D", 4, o.Seed)
		r := engine.New(sys, driverFor("ShockPool3D", o), engine.Options{
			Steps:          o.Steps,
			Balancer:       dlb.DistributedDLB{},
			RegridInterval: iv,
			MaxLevel:       o.MaxLevel,
			WithData:       o.WithData,
		}).Run()
		rows = append(rows, RegridRow{Interval: iv, Total: r.Total, MaxCells: r.MaxCells})
	}
	return rows
}

// ForecastRow compares raw-probe and NWS-forecast cost evaluation
// under one traffic condition.
type ForecastRow struct {
	Traffic               string
	RawTotal, FcTotal     float64
	RawRedists, FcRedists int
}

// ForecastAblation runs the distributed DLB with and without
// NWS-style forecasting under increasingly spiky WAN traffic.
func ForecastAblation(o Options) []ForecastRow {
	o.setDefaults()
	conditions := []struct {
		name    string
		traffic func() netsim.TrafficModel
	}{
		{"steady-20%", func() netsim.TrafficModel { return netsim.ConstantTraffic{Level: 0.2} }},
		{"bursty-mild", func() netsim.TrafficModel {
			return &netsim.BurstyTraffic{QuietLoad: 0.1, BusyLoad: 0.5, MeanQuiet: 20, MeanBusy: 8, Seed: o.Seed}
		}},
		{"bursty-hard", func() netsim.TrafficModel {
			return &netsim.BurstyTraffic{QuietLoad: 0.05, BusyLoad: 0.9, MeanQuiet: 10, MeanBusy: 6, Seed: o.Seed}
		}},
	}
	var rows []ForecastRow
	for _, c := range conditions {
		run := func(useForecast bool) *metrics.Result {
			sys := machine.WanPair(4, c.traffic())
			return engine.New(sys, driverFor("ShockPool3D", o), engine.Options{
				Steps:       o.Steps,
				Balancer:    dlb.DistributedDLB{},
				UseForecast: useForecast,
				MaxLevel:    o.MaxLevel,
				WithData:    o.WithData,
			}).Run()
		}
		raw := run(false)
		fc := run(true)
		rows = append(rows, ForecastRow{
			Traffic:  c.name,
			RawTotal: raw.Total, FcTotal: fc.Total,
			RawRedists: raw.GlobalRedists, FcRedists: fc.GlobalRedists,
		})
	}
	return rows
}

// SchemeRow compares the three local-phase policies on one system.
type SchemeRow struct {
	Scheme string
	Total  float64
	Remote float64
}

// SchemeSweep runs ShockPool3D on the 4+4 WAN under each scheme:
// the paper's baseline, the paper's contribution, and the
// space-filling-curve variant of the local phase.
func SchemeSweep(o Options) []SchemeRow {
	o.setDefaults()
	var rows []SchemeRow
	for _, scheme := range []string{"parallel", "distributed", "sfc"} {
		r := Run("ShockPool3D", scheme, systemFor("ShockPool3D", 4, o.Seed), o)
		rows = append(rows, SchemeRow{Scheme: r.Scheme, Total: r.Total, Remote: r.RemoteComm()})
	}
	return rows
}

// MultiSiteRow compares the schemes on a k-site system.
type MultiSiteRow struct {
	Sites                 string
	Parallel, Distributed float64
	ImprovementPct        float64
}

// MultiSiteSweep runs ShockPool3D on 2-, 3- and 4-site systems (the
// paper's future work of "including more heterogeneous machines").
func MultiSiteSweep(o Options) []MultiSiteRow {
	o.setDefaults()
	layouts := [][]int{{4, 4}, {3, 3, 3}, {2, 2, 2, 2}}
	var rows []MultiSiteRow
	for _, ns := range layouts {
		traffic := func(a, b int) netsim.TrafficModel {
			return &netsim.BurstyTraffic{
				QuietLoad: 0.1, BusyLoad: 0.6,
				MeanQuiet: 30, MeanBusy: 15,
				Seed: o.Seed + int64(16*a+b),
			}
		}
		run := func(scheme string) float64 {
			sys := machine.MultiSite(ns, traffic)
			return Run("ShockPool3D", scheme, sys, o).Total
		}
		par := run("parallel")
		dist := run("distributed")
		rows = append(rows, MultiSiteRow{
			Sites:          fmt.Sprint(ns),
			Parallel:       par,
			Distributed:    dist,
			ImprovementPct: metrics.Improvement(par, dist),
		})
	}
	return rows
}

// AblationReport renders all ablations.
func AblationReport(o Options) string {
	o.setDefaults()
	out := ""

	t := metrics.NewTable(
		"Ablation — imbalance trigger ε (ShockPool3D, 4+4 WAN)",
		"eps", "total-time", "evals", "redists")
	for _, r := range EpsSweep([]float64{0.01, 0.05, 0.2, 0.5}, o) {
		t.AddRow(fmt.Sprintf("%.2f", r.Eps), r.Total, r.GlobalEvals, r.GlobalRedists)
	}
	out += t.String() + "\n"

	t = metrics.NewTable(
		"Ablation — decomposition granularity (level-0 boxes per processor)",
		"grids/proc", "total-time", "utilisation")
	for _, r := range GranularitySweep([]int{1, 2, 4, 8}, o) {
		t.AddRow(r.GridsPerProc, r.Total, r.Utilisation)
	}
	out += t.String() + "\n"

	t = metrics.NewTable(
		"Ablation — regrid interval (level-0 steps between regrids)",
		"interval", "total-time", "peak-cells")
	for _, r := range RegridIntervalSweep([]int{1, 2, 4}, o) {
		t.AddRow(r.Interval, r.Total, r.MaxCells)
	}
	out += t.String() + "\n"

	t = metrics.NewTable(
		"Extension — NWS-style forecasting of probe measurements (paper's future work)",
		"traffic", "raw-total", "forecast-total", "raw-redists", "forecast-redists")
	for _, r := range ForecastAblation(o) {
		t.AddRow(r.Traffic, r.RawTotal, r.FcTotal, r.RawRedists, r.FcRedists)
	}
	out += t.String() + "\n"

	t = metrics.NewTable(
		"Ablation — local-phase policy (ShockPool3D, 4+4 WAN)",
		"scheme", "total-time", "remote-comm")
	for _, r := range SchemeSweep(o) {
		t.AddRow(r.Scheme, r.Total, r.Remote)
	}
	out += t.String() + "\n"

	t = metrics.NewTable(
		"Extension — multi-site systems (paper's future work)",
		"sites", "parallel-dlb", "distributed-dlb", "improvement%")
	for _, r := range MultiSiteSweep(o) {
		t.AddRow(r.Sites, r.Parallel, r.Distributed, r.ImprovementPct)
	}
	out += t.String()
	return out
}
