// Package exp is the experiment harness: it reassembles the paper's
// evaluation — Figure 3 (parallel vs distributed execution under the
// parallel DLB), Figure 7 (parallel DLB vs distributed DLB execution
// times), Figure 8 (efficiency) — plus the γ-sensitivity ablation the
// paper defers to future work, on the modelled ANL/NCSA systems.
//
// Reproduction posture: the substrate is a simulator, so absolute
// times are not comparable to the paper's Origin2000 numbers; the
// shape is. Each figure's harness reports the same rows/series the
// paper plots, and the Bands tables record the paper's reported
// ranges so tests and EXPERIMENTS.md can compare.
package exp

import (
	"fmt"

	"samrdlb/internal/dlb"
	"samrdlb/internal/engine"
	"samrdlb/internal/machine"
	"samrdlb/internal/metrics"
	"samrdlb/internal/netsim"
	"samrdlb/internal/workload"
)

// PaperConfigs are the tested configurations: N+N processors.
var PaperConfigs = []int{1, 2, 4, 6, 8}

// Options configures a sweep.
type Options struct {
	// Steps is the number of level-0 steps per run (default 10).
	Steps int
	// Configs are the N of each N+N configuration (default
	// PaperConfigs).
	Configs []int
	// Seed drives the traffic models and AMR64's cluster placement.
	Seed int64
	// MaxLevel is the refinement depth (default 2).
	MaxLevel int
	// WithData carries real field data (slower; default off for
	// sweeps — virtual timing is identical either way, which
	// TestWithDataMatchesPlanOnlyTiming in the engine package checks).
	WithData bool
	// ShockN and AMRN are the level-0 domain sizes (defaults 32).
	ShockN, AMRN int
}

func (o *Options) setDefaults() {
	if o.Steps <= 0 {
		o.Steps = 10
	}
	if len(o.Configs) == 0 {
		o.Configs = PaperConfigs
	}
	if o.MaxLevel <= 0 {
		o.MaxLevel = 2
	}
	if o.ShockN <= 0 {
		o.ShockN = 32
	}
	if o.AMRN <= 0 {
		o.AMRN = 32
	}
}

// wanTraffic returns the shared-MREN background model for a run. Both
// schemes of a comparison use the same seed, reproducing the paper's
// protocol of running them back-to-back "so that the two executions
// would have the similar network environments".
func wanTraffic(seed int64) netsim.TrafficModel {
	return &netsim.BurstyTraffic{QuietLoad: 0.1, BusyLoad: 0.6, MeanQuiet: 30, MeanBusy: 15, Seed: seed}
}

// lanTraffic returns the shared Gigabit-Ethernet background model.
func lanTraffic(seed int64) netsim.TrafficModel {
	return &netsim.BurstyTraffic{QuietLoad: 0.05, BusyLoad: 0.4, MeanQuiet: 20, MeanBusy: 10, Seed: seed + 1}
}

// driverFor builds a fresh driver (drivers carry mutable state such
// as AMR64's particles, so every run gets its own).
func driverFor(dataset string, o Options) workload.Driver {
	switch dataset {
	case "ShockPool3D":
		return workload.NewShockPool3D(o.ShockN, 2)
	case "AMR64":
		return workload.NewAMR64(o.AMRN, 2, o.Seed)
	case "SedovBlast":
		return workload.NewSedovBlast(o.ShockN, 2)
	default:
		panic("exp: unknown dataset " + dataset)
	}
}

// systemFor builds the machine for a dataset/config: AMR64 runs on
// the LAN-connected ANL pair, ShockPool3D on the ANL–NCSA WAN pair,
// as in Section 5.
func systemFor(dataset string, n int, seed int64) *machine.System {
	if dataset == "AMR64" {
		return machine.LanPair(n, lanTraffic(seed))
	}
	return machine.WanPair(n, wanTraffic(seed))
}

// balancerFor maps a scheme name to its implementation via the policy
// registry (any canonical name or alias).
func balancerFor(scheme string) dlb.Balancer {
	b, err := dlb.NewPolicy(scheme)
	if err != nil {
		panic("exp: unknown scheme " + scheme)
	}
	return b
}

// Run executes one (dataset, scheme, system) combination and returns
// its result.
func Run(dataset, scheme string, sys *machine.System, o Options) *metrics.Result {
	o.setDefaults()
	r := engine.New(sys, driverFor(dataset, o), engine.Options{
		Steps:    o.Steps,
		Balancer: balancerFor(scheme),
		MaxLevel: o.MaxLevel,
		WithData: o.WithData,
	})
	return r.Run()
}

// Sequential runs the dataset on a single dedicated processor — the
// E(1) of the paper's efficiency definition.
func Sequential(dataset string, o Options) *metrics.Result {
	o.setDefaults()
	return Run(dataset, "distributed", machine.Origin2000("seq", 1), o)
}

// ConfigName renders a configuration the way the paper does.
func ConfigName(n int) string { return fmt.Sprintf("%d+%d", n, n) }
