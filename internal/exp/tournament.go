package exp

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"samrdlb/internal/dlb"
	"samrdlb/internal/metrics"
	"samrdlb/internal/scenario"
	"samrdlb/internal/vclock"
)

// TournamentOptions configures a policy ablation tournament: every
// registered balancer policy runs the exact same seeded scenario
// envelopes (systems, workloads, fault schedules, resume cuts), so the
// score differences isolate the policy.
type TournamentOptions struct {
	// Scenarios is the number of generated envelopes (default 20).
	Scenarios int
	// Seed0 is the first generator seed; envelopes use Seed0,
	// Seed0+1, ... (default 40000, clear of the soak ranges).
	Seed0 int64
	// Policies lists the competitors (default: every registered
	// policy). Names may be registry aliases.
	Policies []string
}

func (o *TournamentOptions) setDefaults() error {
	if o.Scenarios <= 0 {
		o.Scenarios = 20
	}
	if o.Seed0 == 0 {
		o.Seed0 = 40000
	}
	if len(o.Policies) == 0 {
		o.Policies = dlb.PolicyNames()
	}
	for i, p := range o.Policies {
		canon, ok := dlb.CanonicalPolicy(p)
		if !ok {
			return fmt.Errorf("tournament: unknown policy %q", p)
		}
		o.Policies[i] = canon
	}
	return nil
}

// PolicyScore aggregates one policy's results over the whole envelope
// set. All fields except WallSeconds are deterministic functions of
// the seeds, so they are stable across machines and runs; WallSeconds
// is real elapsed time and is excluded from BenchJSON.
type PolicyScore struct {
	Policy string `json:"policy"`
	// Runs counts completed envelopes; Failures counts envelopes that
	// panicked, errored or violated a scoped invariant (their metrics
	// are not aggregated).
	Runs     int `json:"runs"`
	Failures int `json:"failures"`
	// MeanTotal is the mean virtual execution time (seconds) — the
	// headline ranking metric.
	MeanTotal float64 `json:"mean_total_s"`
	// MeanImbalance is the mean of the engine's per-step
	// imbalance-ratio series across all envelopes (1.0 = perfectly
	// balanced).
	MeanImbalance float64 `json:"mean_imbalance"`
	// Migrations sums local migrations and global redistributions.
	LocalMigrations int `json:"local_migrations"`
	GlobalRedists   int `json:"global_redists"`
	// MeanDeltaCost is the mean per-envelope δ-charged balancing cost:
	// critical-path redistribution plus DLB-overhead time (seconds).
	MeanDeltaCost float64 `json:"mean_delta_cost_s"`
	// WallSeconds is the real time the policy's runs took (advisory;
	// not part of the JSON artifact).
	WallSeconds float64 `json:"-"`
}

// Tournament is the outcome of RunTournament.
type Tournament struct {
	Scenarios int           `json:"scenarios"`
	Seed0     int64         `json:"seed0"`
	Scores    []PolicyScore `json:"scores"`
}

// RunTournament executes the ablation: Scenarios envelopes × Policies,
// every run under the policy-scoped invariant oracle, scoring virtual
// time, imbalance, migration volume and δ-charged cost. Scores are
// sorted by MeanTotal ascending (winner first, name-tiebroken).
func RunTournament(o TournamentOptions) (*Tournament, error) {
	if err := o.setDefaults(); err != nil {
		return nil, err
	}
	t := &Tournament{Scenarios: o.Scenarios, Seed0: o.Seed0}
	for _, policy := range o.Policies {
		start := time.Now()
		sc := PolicyScore{Policy: policy}
		var totalSum, imbSum, costSum float64
		scored := 0
		for i := 0; i < o.Scenarios; i++ {
			// Regenerate per policy: the envelope is a pure function of
			// the seed, so every policy faces identical conditions.
			s := scenario.Generate(o.Seed0 + int64(i))
			s.Scheme = policy
			s.Normalize()
			hist := metrics.NewHistory()
			out := s.ExecuteWithHistory(hist)
			sc.Runs++
			if out.Failed() {
				sc.Failures++
				continue
			}
			r := out.Result
			totalSum += r.Total
			imbSum += metrics.Mean(hist.Get("imbalance-ratio"))
			costSum += r.Breakdown[vclock.Redistribution] + r.Breakdown[vclock.DLBOverhead]
			sc.LocalMigrations += r.LocalMigrations
			sc.GlobalRedists += r.GlobalRedists
			scored++
		}
		if scored > 0 {
			sc.MeanTotal = totalSum / float64(scored)
			sc.MeanImbalance = imbSum / float64(scored)
			sc.MeanDeltaCost = costSum / float64(scored)
		}
		sc.WallSeconds = time.Since(start).Seconds()
		t.Scores = append(t.Scores, sc)
	}
	sort.SliceStable(t.Scores, func(i, j int) bool {
		a, b := t.Scores[i], t.Scores[j]
		if a.MeanTotal != b.MeanTotal {
			return a.MeanTotal < b.MeanTotal
		}
		return a.Policy < b.Policy
	})
	return t, nil
}

// Markdown renders the comparison report: one ranked table plus the
// envelope provenance, ready for a PR comment or EXPERIMENTS.md.
func (t *Tournament) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## Policy tournament\n\n")
	fmt.Fprintf(&b, "%d seeded scenario envelopes (seeds %d..%d), every policy on identical systems, workloads and fault schedules, under the policy-scoped invariant oracle. Ranked by mean virtual execution time.\n\n",
		t.Scenarios, t.Seed0, t.Seed0+int64(t.Scenarios)-1)
	b.WriteString("| rank | policy | mean total (s) | mean imbalance | local migs | global redists | δ-cost (s) | failures | wall (s) |\n")
	b.WriteString("|-----:|--------|---------------:|---------------:|-----------:|---------------:|-----------:|---------:|---------:|\n")
	for i, s := range t.Scores {
		fmt.Fprintf(&b, "| %d | %s | %.3f | %.4f | %d | %d | %.3f | %d | %.2f |\n",
			i+1, s.Policy, s.MeanTotal, s.MeanImbalance,
			s.LocalMigrations, s.GlobalRedists, s.MeanDeltaCost, s.Failures, s.WallSeconds)
	}
	return b.String()
}

// BenchJSON renders the deterministic benchmark artifact
// (BENCH_policy.json): per-policy metrics that are pure functions of
// the seed set — wall time excluded, so the file is identical across
// machines and reruns.
func (t *Tournament) BenchJSON() ([]byte, error) {
	out, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
