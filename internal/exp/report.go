package exp

import (
	"fmt"
	"strings"

	"samrdlb/internal/metrics"
)

// Report renders the full evaluation — every figure with
// paper-vs-measured comparison — as text. cmd/figures prints it and
// EXPERIMENTS.md records a run of it.
func Report(o Options) string {
	o.setDefaults()
	var b strings.Builder

	b.WriteString("SAMR distributed DLB reproduction — evaluation report\n")
	fmt.Fprintf(&b, "steps=%d configs=%v seed=%d maxlevel=%d shockN=%d amrN=%d\n\n",
		o.Steps, o.Configs, o.Seed, o.MaxLevel, o.ShockN, o.AMRN)

	b.WriteString(Fig3Report(o))
	b.WriteString("\n")
	for _, ds := range []string{"AMR64", "ShockPool3D"} {
		b.WriteString(Fig7Report(ds, o))
		b.WriteString("\n")
	}
	for _, ds := range []string{"AMR64", "ShockPool3D"} {
		b.WriteString(Fig8Report(ds, o))
		b.WriteString("\n")
	}
	b.WriteString(GammaReport(o))
	b.WriteString("\n")
	b.WriteString(AblationReport(o))
	return b.String()
}

// Fig3Report renders Figure 3.
func Fig3Report(o Options) string {
	t := metrics.NewTable(
		"Figure 3 — parallel vs distributed execution (ShockPool3D, parallel DLB on both systems; seconds)",
		"config", "par-compute", "par-comm", "par-total", "dist-compute", "dist-comm", "dist-total")
	for _, r := range Fig3(o) {
		t.AddRow(r.Config, r.ParCompute, r.ParComm, r.ParTotal, r.DistCompute, r.DistComm, r.DistTotal)
	}
	return t.String() +
		"paper: computation similar on both systems; distributed communication much larger (shared WAN).\n"
}

// Fig7Report renders Figure 7 for one dataset.
func Fig7Report(dataset string, o Options) string {
	rows := Fig7(dataset, o)
	band := Fig7Bands[dataset]
	sysName := "WAN (ANL+NCSA, MREN OC-3)"
	if dataset == "AMR64" {
		sysName = "LAN (ANL+ANL, shared GigE)"
	}
	t := metrics.NewTable(
		fmt.Sprintf("Figure 7 — execution time, %s on %s (seconds)", dataset, sysName),
		"config", "parallel-dlb", "distributed-dlb", "improvement%")
	for _, r := range rows {
		t.AddRow(r.Config, r.Parallel, r.Distributed, r.ImprovementPct)
	}
	return t.String() + fmt.Sprintf(
		"measured: avg improvement %.1f%% | paper: %.1f%%–%.1f%%, avg %.1f%%\n",
		AvgImprovement(rows), band.MinPct, band.MaxPct, band.AvgPct)
}

// Fig8Report renders Figure 8 for one dataset.
func Fig8Report(dataset string, o Options) string {
	rows := Fig8(dataset, o)
	band := Fig8Bands[dataset]
	t := metrics.NewTable(
		fmt.Sprintf("Figure 8 — efficiency E(1)/(E·P), %s", dataset),
		"config", "parallel-dlb", "distributed-dlb", "improvement%")
	var avg float64
	for _, r := range rows {
		t.AddRow(r.Config, r.ParallelEfficiency, r.DistEfficiency, r.ImprovementPct)
		avg += r.ImprovementPct
	}
	avg /= float64(len(rows))
	return t.String() + fmt.Sprintf(
		"measured: avg efficiency improvement %.1f%% | paper: %.1f%%–%.1f%%\n",
		avg, band.MinPct, band.MaxPct)
}

// GammaReport renders the γ-sensitivity ablation.
func GammaReport(o Options) string {
	t := metrics.NewTable(
		"Ablation — γ sensitivity (ShockPool3D, 4+4 WAN; paper defers this to future work)",
		"gamma", "total-time", "global-redists", "global-evals")
	for _, r := range GammaSweep([]float64{0.5, 1, 2, 4, 8}, o) {
		t.AddRow(fmt.Sprintf("%.1f", r.Gamma), r.Total, r.GlobalRedists, r.GlobalEvals)
	}
	return t.String() +
		"expectation: higher γ vetoes more redistributions; γ≈2 (the paper's default) balances overhead vs imbalance.\n"
}
