package exp

import (
	"fmt"
	"strings"
)

// MarkdownReport renders the paper-vs-measured evaluation as markdown
// (the machine-generated core of EXPERIMENTS.md), so the record of a
// reproduction run can be regenerated verbatim:
//
//	go run ./cmd/figures -format md > report.md
func MarkdownReport(o Options) string {
	o.setDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "# Reproduction report\n\n")
	fmt.Fprintf(&b, "Parameters: steps=%d, configs=%v, seed=%d, maxlevel=%d, domains %d³/%d³.\n\n",
		o.Steps, o.Configs, o.Seed, o.MaxLevel, o.ShockN, o.AMRN)

	b.WriteString("## Figure 3 — parallel vs distributed execution (ShockPool3D, parallel DLB)\n\n")
	b.WriteString("| config | par-compute | par-comm | dist-compute | dist-comm |\n|---|---|---|---|---|\n")
	for _, r := range Fig3(o) {
		fmt.Fprintf(&b, "| %s | %.3f | %.3f | %.3f | %.3f |\n",
			r.Config, r.ParCompute, r.ParComm, r.DistCompute, r.DistComm)
	}
	b.WriteString("\nPaper: compute similar on both systems; distributed communication much larger.\n\n")

	for _, ds := range []string{"AMR64", "ShockPool3D"} {
		band := Fig7Bands[ds]
		rows := Fig7(ds, o)
		fmt.Fprintf(&b, "## Figure 7 — execution time, %s\n\n", ds)
		b.WriteString("| config | parallel | distributed | improvement |\n|---|---|---|---|\n")
		for _, r := range rows {
			fmt.Fprintf(&b, "| %s | %.3f | %.3f | %+.1f%% |\n",
				r.Config, r.Parallel, r.Distributed, r.ImprovementPct)
		}
		fmt.Fprintf(&b, "\nMeasured avg %.1f%% | paper %.1f%%–%.1f%% (avg %.1f%%).\n\n",
			AvgImprovement(rows), band.MinPct, band.MaxPct, band.AvgPct)
	}

	for _, ds := range []string{"AMR64", "ShockPool3D"} {
		band := Fig8Bands[ds]
		rows := Fig8(ds, o)
		fmt.Fprintf(&b, "## Figure 8 — efficiency, %s\n\n", ds)
		b.WriteString("| config | parallel eff. | distributed eff. | improvement |\n|---|---|---|---|\n")
		var avg float64
		for _, r := range rows {
			fmt.Fprintf(&b, "| %s | %.3f | %.3f | %+.1f%% |\n",
				r.Config, r.ParallelEfficiency, r.DistEfficiency, r.ImprovementPct)
			avg += r.ImprovementPct
		}
		fmt.Fprintf(&b, "\nMeasured avg %.1f%% | paper %.1f%%–%.1f%%.\n\n",
			avg/float64(len(rows)), band.MinPct, band.MaxPct)
	}

	b.WriteString("## γ sensitivity\n\n| γ | total | redistributions | evaluations |\n|---|---|---|---|\n")
	for _, r := range GammaSweep([]float64{0.5, 1, 2, 4, 8}, o) {
		fmt.Fprintf(&b, "| %.1f | %.3f | %d | %d |\n", r.Gamma, r.Total, r.GlobalRedists, r.GlobalEvals)
	}
	b.WriteString("\n")
	return b.String()
}
