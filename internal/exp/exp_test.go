package exp

import (
	"strings"
	"testing"
)

// fastOpts keeps test sweeps quick while preserving the dynamics.
func fastOpts() Options {
	return Options{Steps: 6, Configs: []int{2, 4}, Seed: 42}
}

func TestFig3Shape(t *testing.T) {
	rows := Fig3(fastOpts())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Computation must be (nearly) identical: same processors.
		if relDiff(r.ParCompute, r.DistCompute) > 0.05 {
			t.Errorf("%s: compute differs: par %v dist %v", r.Config, r.ParCompute, r.DistCompute)
		}
		// Distributed communication must be much larger than parallel.
		if r.DistComm < 3*r.ParComm {
			t.Errorf("%s: distributed comm %v not ≫ parallel comm %v", r.Config, r.DistComm, r.ParComm)
		}
		// And the distributed total larger overall.
		if r.DistTotal <= r.ParTotal {
			t.Errorf("%s: distributed total %v should exceed parallel %v", r.Config, r.DistTotal, r.ParTotal)
		}
	}
}

func TestFig7DistributedWins(t *testing.T) {
	for _, ds := range []string{"AMR64", "ShockPool3D"} {
		rows := Fig7(ds, fastOpts())
		for _, r := range rows {
			if r.ImprovementPct <= 0 {
				t.Errorf("%s %s: distributed DLB must win, improvement %.1f%%", ds, r.Config, r.ImprovementPct)
			}
			// The paper's improvements peak at ~46%; anything beyond
			// 75% would mean our model overstates the effect badly.
			if r.ImprovementPct > 75 {
				t.Errorf("%s %s: improvement %.1f%% implausibly large", ds, r.Config, r.ImprovementPct)
			}
		}
		avg := AvgImprovement(rows)
		// Paper averages: 29.7% and 23.7%. Accept a generous band.
		if avg < 5 || avg > 60 {
			t.Errorf("%s: avg improvement %.1f%% outside plausible band", ds, avg)
		}
	}
}

func TestFig7ImprovementBandsFullSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	o := Options{Steps: 10, Seed: 42}
	for _, ds := range []string{"AMR64", "ShockPool3D"} {
		rows := Fig7(ds, o)
		band := Fig7Bands[ds]
		avg := AvgImprovement(rows)
		// The measured average should be within 15 percentage points
		// of the paper's — the substrate differs, the shape must not.
		if avg < band.AvgPct-15 || avg > band.AvgPct+15 {
			t.Errorf("%s: avg improvement %.1f%% vs paper avg %.1f%%", ds, avg, band.AvgPct)
		}
		for _, r := range rows {
			if r.ImprovementPct < band.MinPct-15 || r.ImprovementPct > band.MaxPct+15 {
				t.Errorf("%s %s: improvement %.1f%% far outside paper band [%.1f, %.1f]",
					ds, r.Config, r.ImprovementPct, band.MinPct, band.MaxPct)
			}
		}
	}
}

func TestFig8EfficiencyImproves(t *testing.T) {
	for _, ds := range []string{"ShockPool3D"} {
		rows := Fig8(ds, fastOpts())
		for _, r := range rows {
			if r.DistEfficiency <= r.ParallelEfficiency {
				t.Errorf("%s %s: distributed efficiency %v must beat parallel %v",
					ds, r.Config, r.DistEfficiency, r.ParallelEfficiency)
			}
			if r.ParallelEfficiency <= 0 || r.ParallelEfficiency > 1.2 {
				t.Errorf("%s %s: efficiency out of range: %v", ds, r.Config, r.ParallelEfficiency)
			}
		}
	}
}

func TestEfficiencyDecreasesWithScale(t *testing.T) {
	// More processors on a WAN → lower efficiency (the paper's Fig 8
	// bars shrink left to right).
	rows := Fig8("ShockPool3D", fastOpts())
	if rows[1].DistEfficiency >= rows[0].DistEfficiency {
		t.Errorf("efficiency should fall with scale: %v then %v",
			rows[0].DistEfficiency, rows[1].DistEfficiency)
	}
}

func TestGammaSweepMonotoneRedistributions(t *testing.T) {
	o := fastOpts()
	rows := GammaSweep([]float64{0.5, 8}, o)
	if rows[0].GlobalRedists < rows[1].GlobalRedists {
		t.Errorf("low gamma should redistribute at least as often: %d vs %d",
			rows[0].GlobalRedists, rows[1].GlobalRedists)
	}
}

func TestRunsAreReproducible(t *testing.T) {
	o := fastOpts()
	a := Fig7("ShockPool3D", o)
	b := Fig7("ShockPool3D", o)
	for i := range a {
		if a[i].Parallel != b[i].Parallel || a[i].Distributed != b[i].Distributed {
			t.Fatalf("sweep not reproducible at %s", a[i].Config)
		}
	}
}

func TestSequentialHasNoComm(t *testing.T) {
	r := Sequential("ShockPool3D", fastOpts())
	if r.Comm() != 0 {
		t.Errorf("sequential comm = %v", r.Comm())
	}
}

func TestUnknownNamesPanic(t *testing.T) {
	assertPanics(t, "dataset", func() { driverFor("nope", fastOpts()) })
	assertPanics(t, "scheme", func() { balancerFor("nope") })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestConfigName(t *testing.T) {
	if ConfigName(4) != "4+4" {
		t.Errorf("ConfigName = %s", ConfigName(4))
	}
}

func TestReportsRender(t *testing.T) {
	o := Options{Steps: 4, Configs: []int{2}, Seed: 1}
	for name, txt := range map[string]string{
		"fig3":  Fig3Report(o),
		"fig7":  Fig7Report("ShockPool3D", o),
		"fig8":  Fig8Report("ShockPool3D", o),
		"gamma": GammaReport(o),
	} {
		if !strings.Contains(txt, "2+2") && name != "gamma" {
			t.Errorf("%s report missing config row:\n%s", name, txt)
		}
		if len(txt) < 100 {
			t.Errorf("%s report suspiciously short", name)
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d / m
}

func TestEpsSweepMoreEvalsAtLowerEps(t *testing.T) {
	rows := EpsSweep([]float64{0.01, 0.5}, fastOpts())
	if rows[0].GlobalEvals < rows[1].GlobalEvals {
		t.Errorf("lower eps should evaluate at least as often: %d vs %d",
			rows[0].GlobalEvals, rows[1].GlobalEvals)
	}
}

func TestGranularitySweepUtilisation(t *testing.T) {
	rows := GranularitySweep([]int{1, 8}, fastOpts())
	for _, r := range rows {
		if r.Total <= 0 || r.Utilisation <= 0 {
			t.Errorf("bad granularity row: %+v", r)
		}
	}
}

func TestRegridIntervalSweep(t *testing.T) {
	rows := RegridIntervalSweep([]int{1, 4}, fastOpts())
	for _, r := range rows {
		if r.Total <= 0 || r.MaxCells <= 0 {
			t.Errorf("bad regrid row: %+v", r)
		}
	}
}

func TestForecastAblationRuns(t *testing.T) {
	rows := ForecastAblation(fastOpts())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.RawTotal <= 0 || r.FcTotal <= 0 {
			t.Errorf("bad forecast row: %+v", r)
		}
	}
}

func TestMultiSiteDistributedWins(t *testing.T) {
	rows := MultiSiteSweep(fastOpts())
	for _, r := range rows {
		if r.ImprovementPct <= 0 {
			t.Errorf("distributed DLB must win on %s: %+v", r.Sites, r)
		}
	}
}

func TestAblationReportRenders(t *testing.T) {
	txt := AblationReport(Options{Steps: 3, Configs: []int{2}, Seed: 1})
	for _, want := range []string{"imbalance trigger", "granularity", "regrid interval", "NWS", "multi-site"} {
		if !strings.Contains(txt, want) {
			t.Errorf("ablation report missing %q", want)
		}
	}
}

func TestSchemeSweep(t *testing.T) {
	rows := SchemeSweep(fastOpts())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]SchemeRow{}
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	// Both group-aware schemes must beat the baseline.
	for _, s := range []string{"distributed-dlb", "sfc-dlb"} {
		if byName[s].Total >= byName["parallel-dlb"].Total {
			t.Errorf("%s (%v) should beat parallel (%v)", s, byName[s].Total, byName["parallel-dlb"].Total)
		}
	}
}

func TestMarkdownReport(t *testing.T) {
	md := MarkdownReport(Options{Steps: 3, Configs: []int{2}, Seed: 1})
	for _, want := range []string{"# Reproduction report", "## Figure 3", "## Figure 7", "## Figure 8", "| 2+2 |", "γ sensitivity"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}
