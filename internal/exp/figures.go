package exp

import (
	"samrdlb/internal/dlb"
	"samrdlb/internal/engine"
	"samrdlb/internal/machine"
	"samrdlb/internal/metrics"
)

// Band records a range the paper reports, for paper-vs-measured
// comparison in EXPERIMENTS.md and the sanity tests.
type Band struct {
	MinPct, MaxPct, AvgPct float64
}

// Fig7Bands are the paper's reported execution-time improvements of
// distributed DLB over parallel DLB.
var Fig7Bands = map[string]Band{
	"AMR64":       {MinPct: 9.0, MaxPct: 45.9, AvgPct: 29.7},
	"ShockPool3D": {MinPct: 2.6, MaxPct: 44.2, AvgPct: 23.7},
}

// Fig8Bands are the paper's reported efficiency improvements.
var Fig8Bands = map[string]Band{
	"AMR64":       {MinPct: 9.9, MaxPct: 84.8},
	"ShockPool3D": {MinPct: 2.6, MaxPct: 79.4},
}

// Fig3Row is one configuration of Figure 3: ENZO with the parallel
// DLB on a parallel machine versus on a WAN-connected distributed
// system, decomposed into computation and communication time.
type Fig3Row struct {
	Config                string
	ParCompute, ParComm   float64
	DistCompute, DistComm float64
	ParTotal, DistTotal   float64
}

// Fig3 reproduces Figure 3 (ShockPool3D, parallel DLB on both
// systems).
func Fig3(o Options) []Fig3Row {
	o.setDefaults()
	var rows []Fig3Row
	for _, n := range o.Configs {
		par := Run("ShockPool3D", "parallel", machine.Origin2000("ANL", 2*n), o)
		dist := Run("ShockPool3D", "parallel", systemFor("ShockPool3D", n, o.Seed), o)
		rows = append(rows, Fig3Row{
			Config:      ConfigName(n),
			ParCompute:  par.Compute(),
			ParComm:     par.Comm() + par.Overhead(),
			DistCompute: dist.Compute(),
			DistComm:    dist.Comm() + dist.Overhead(),
			ParTotal:    par.Total,
			DistTotal:   dist.Total,
		})
	}
	return rows
}

// Fig7Row is one configuration of Figure 7: total execution time
// under each scheme, and the relative improvement.
type Fig7Row struct {
	Config                string
	Parallel, Distributed float64
	ImprovementPct        float64
	ParallelResult        *metrics.Result
	DistributedResult     *metrics.Result
}

// Fig7 reproduces Figure 7 for one dataset (AMR64 on the LAN system,
// ShockPool3D on the WAN system).
func Fig7(dataset string, o Options) []Fig7Row {
	o.setDefaults()
	var rows []Fig7Row
	for _, n := range o.Configs {
		par := Run(dataset, "parallel", systemFor(dataset, n, o.Seed), o)
		dist := Run(dataset, "distributed", systemFor(dataset, n, o.Seed), o)
		rows = append(rows, Fig7Row{
			Config:            ConfigName(n),
			Parallel:          par.Total,
			Distributed:       dist.Total,
			ImprovementPct:    metrics.Improvement(par.Total, dist.Total),
			ParallelResult:    par,
			DistributedResult: dist,
		})
	}
	return rows
}

// AvgImprovement returns the mean improvement over the rows.
func AvgImprovement(rows []Fig7Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rows {
		sum += r.ImprovementPct
	}
	return sum / float64(len(rows))
}

// Fig8Row is one configuration of Figure 8: efficiency under each
// scheme and the relative efficiency improvement.
type Fig8Row struct {
	Config             string
	ParallelEfficiency float64
	DistEfficiency     float64
	ImprovementPct     float64
}

// Fig8 reproduces Figure 8 for one dataset, reusing Fig7's runs plus
// a sequential run for E(1).
func Fig8(dataset string, o Options) []Fig8Row {
	o.setDefaults()
	e1 := Sequential(dataset, o).Total
	var rows []Fig8Row
	for _, row := range Fig7(dataset, o) {
		p := row.ParallelResult.PerfSum
		ep := metrics.Efficiency(e1, row.Parallel, p)
		ed := metrics.Efficiency(e1, row.Distributed, p)
		rows = append(rows, Fig8Row{
			Config:             row.Config,
			ParallelEfficiency: ep,
			DistEfficiency:     ed,
			// The paper reports the relative efficiency increase.
			ImprovementPct: 100 * (ed - ep) / ep,
		})
	}
	return rows
}

// GammaRow is one point of the γ-sensitivity ablation (the parameter
// study Section 6 lists as future work).
type GammaRow struct {
	Gamma         float64
	Total         float64
	GlobalRedists int
	GlobalEvals   int
}

// GammaSweep runs ShockPool3D on the 4+4 WAN system across γ values.
func GammaSweep(gammas []float64, o Options) []GammaRow {
	o.setDefaults()
	var rows []GammaRow
	for _, g := range gammas {
		sys := systemFor("ShockPool3D", 4, o.Seed)
		r := engine.New(sys, driverFor("ShockPool3D", o), engine.Options{
			Steps:    o.Steps,
			Balancer: dlb.DistributedDLB{},
			Gamma:    g,
			MaxLevel: o.MaxLevel,
			WithData: o.WithData,
		}).Run()
		rows = append(rows, GammaRow{
			Gamma:         g,
			Total:         r.Total,
			GlobalRedists: r.GlobalRedists,
			GlobalEvals:   r.GlobalEvals,
		})
	}
	return rows
}
