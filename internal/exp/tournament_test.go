package exp

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"samrdlb/internal/dlb"
)

// TestTournamentRunsAllPoliciesDeterministically is the acceptance
// check for the ablation harness: a small tournament covers every
// registered policy with zero failures, and its deterministic artifact
// (BenchJSON, wall time excluded) is byte-identical across reruns.
func TestTournamentRunsAllPoliciesDeterministically(t *testing.T) {
	opt := TournamentOptions{Scenarios: 3, Seed0: 40000}
	a, err := RunTournament(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Scores) != len(dlb.PolicyNames()) {
		t.Fatalf("scores for %d policies, want %d", len(a.Scores), len(dlb.PolicyNames()))
	}
	seen := map[string]bool{}
	for _, s := range a.Scores {
		seen[s.Policy] = true
		if s.Runs != opt.Scenarios {
			t.Errorf("%s: %d runs, want %d", s.Policy, s.Runs, opt.Scenarios)
		}
		if s.Failures != 0 {
			t.Errorf("%s: %d failures (invariant violations or panics)", s.Policy, s.Failures)
		}
		if s.MeanTotal <= 0 || s.MeanImbalance < 1 {
			t.Errorf("%s: implausible score %+v", s.Policy, s)
		}
	}
	for _, name := range dlb.PolicyNames() {
		if !seen[name] {
			t.Errorf("policy %s missing from the tournament", name)
		}
	}

	b, err := RunTournament(TournamentOptions{Scenarios: 3, Seed0: 40000})
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.BenchJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.BenchJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Fatalf("BenchJSON not deterministic:\n%s\n---\n%s", aj, bj)
	}
	// The artifact parses back into an equal Tournament (WallSeconds is
	// excluded, so the round-trip is exact).
	var rt Tournament
	if err := json.Unmarshal(aj, &rt); err != nil {
		t.Fatalf("BenchJSON does not parse: %v", err)
	}
	for i := range a.Scores {
		a.Scores[i].WallSeconds = 0
	}
	if !reflect.DeepEqual(rt, *a) {
		t.Fatalf("JSON round trip mismatch:\n%+v\n%+v", rt, *a)
	}
}

// TestTournamentMarkdownReport checks the report renders a ranked
// markdown table with one row per policy.
func TestTournamentMarkdownReport(t *testing.T) {
	tour, err := RunTournament(TournamentOptions{Scenarios: 2, Seed0: 41000})
	if err != nil {
		t.Fatal(err)
	}
	md := tour.Markdown()
	if !strings.HasPrefix(md, "## Policy tournament") {
		t.Fatalf("report missing header:\n%s", md)
	}
	if !strings.Contains(md, "| rank | policy |") {
		t.Fatalf("report missing table header:\n%s", md)
	}
	for _, name := range dlb.PolicyNames() {
		if !strings.Contains(md, "| "+name+" |") {
			t.Errorf("report missing row for %s:\n%s", name, md)
		}
	}
	// Ranked ascending by mean total.
	for i := 1; i < len(tour.Scores); i++ {
		if tour.Scores[i].MeanTotal < tour.Scores[i-1].MeanTotal {
			t.Fatalf("scores not ranked: %+v before %+v", tour.Scores[i-1], tour.Scores[i])
		}
	}
}

// TestTournamentRejectsUnknownPolicy: a typo must error, not silently
// benchmark the wrong scheme.
func TestTournamentRejectsUnknownPolicy(t *testing.T) {
	if _, err := RunTournament(TournamentOptions{Policies: []string{"no-such"}}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	// Aliases canonicalise.
	tour, err := RunTournament(TournamentOptions{Scenarios: 1, Policies: []string{"paper"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tour.Scores) != 1 || tour.Scores[0].Policy != "distributed" {
		t.Fatalf("alias not canonicalised: %+v", tour.Scores)
	}
}
