package fault

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Event-script format: one event per line, `kind key=value ...`.
// Blank lines and lines starting with '#' are ignored. Keys:
//
//	between=a,b   group pair for link events
//	group=g       target of group-disconnect
//	proc=p        target of proc-slow / proc-fail
//	start=, end=  the window [start, end) in virtual seconds
//	at=           alias for start (proc-fail)
//	factor=       degrade / slowdown multiplier
//	prob=         probe-loss drop probability
//
// Example:
//
//	# WAN flap while group 1 is busy
//	probe-loss between=0,1 start=1 end=4 prob=0.8
//	link-outage between=0,1 start=5 end=9
//	proc-fail proc=3 at=10.5
//	# a bounded outage: proc 2 is down for [12, 20) and rejoins at 20
//	proc-fail proc=2 at=12 end=20
//	# explicit revival of a previously failed processor
//	proc-recover proc=3 at=25
//	# a disconnected group comes back
//	group-reconnect group=1 at=14
//	# chaos: SIGKILL group 1's worker process after it reports step 2
//	worker-kill group=1 at=2
//	# checkpoint writes in the window land torn (40% survives)
//	disk-torn-write start=2 end=6 factor=0.4

// ParseScript reads an event script. Errors name the offending line.
func ParseScript(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		e, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("fault script line %d: %w", lineNo, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fault script: %w", err)
	}
	return events, nil
}

// FormatScript renders events in the script format ParseScript reads.
func FormatScript(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteString("\n")
	}
	return b.String()
}

func parseLine(line string) (Event, error) {
	fields := strings.Fields(line)
	var e Event
	switch fields[0] {
	case "link-outage":
		e.Kind = LinkOutage
	case "link-degrade":
		e.Kind = LinkDegrade
	case "probe-loss":
		e.Kind = ProbeLoss
	case "proc-slow":
		e.Kind = ProcSlowdown
	case "proc-fail":
		e.Kind = ProcFailure
	case "group-disconnect":
		e.Kind = GroupDisconnect
	case "disk-torn-write":
		e.Kind = DiskTornWrite
	case "disk-bit-flip":
		e.Kind = DiskBitFlip
	case "disk-write-error":
		e.Kind = DiskWriteError
	case "proc-recover":
		e.Kind = ProcRecovery
	case "group-reconnect":
		e.Kind = GroupReconnect
	case "worker-kill":
		e.Kind = WorkerKill
	default:
		return e, fmt.Errorf("unknown event kind %q", fields[0])
	}
	e.A, e.B, e.Group, e.Proc = -1, -1, -1, -1
	if e.Kind == LinkDegrade || e.Kind == ProcSlowdown {
		e.Factor = -1
	}
	for _, tok := range fields[1:] {
		k, v, ok := strings.Cut(tok, "=")
		if !ok {
			return e, fmt.Errorf("token %q is not key=value", tok)
		}
		var err error
		switch k {
		case "between":
			as, bs, ok := strings.Cut(v, ",")
			if !ok {
				return e, fmt.Errorf("between=%q needs two groups a,b", v)
			}
			if e.A, err = strconv.Atoi(as); err == nil {
				e.B, err = strconv.Atoi(bs)
			}
		case "group":
			e.Group, err = strconv.Atoi(v)
		case "proc":
			e.Proc, err = strconv.Atoi(v)
		case "start", "at":
			e.Start, err = strconv.ParseFloat(v, 64)
		case "end":
			e.End, err = strconv.ParseFloat(v, 64)
		case "factor":
			e.Factor, err = strconv.ParseFloat(v, 64)
		case "prob":
			e.Prob, err = strconv.ParseFloat(v, 64)
		default:
			return e, fmt.Errorf("unknown key %q", k)
		}
		if err != nil {
			return e, fmt.Errorf("bad value in %q: %v", tok, err)
		}
	}
	if e.Kind == ProcFailure && e.End == 0 {
		e.End = e.Start
	}
	if err := e.validate(); err != nil {
		return e, err
	}
	return e, nil
}
