package fault

import (
	"strings"
	"testing"
)

func mustSchedule(t *testing.T, seed int64, events ...Event) *Schedule {
	t.Helper()
	s, err := NewSchedule(seed, events...)
	if err != nil {
		t.Fatalf("NewSchedule: %v", err)
	}
	return s
}

func TestLinkDownWindows(t *testing.T) {
	s := mustSchedule(t, 1,
		Event{Kind: LinkOutage, A: 0, B: 1, Start: 2, End: 5},
		Event{Kind: GroupDisconnect, Group: 2, Start: 10, End: 12},
	)
	cases := []struct {
		a, b int
		t    float64
		want bool
	}{
		{0, 1, 1.9, false},
		{0, 1, 2, true},
		{1, 0, 4.9, true}, // order-insensitive
		{0, 1, 5, false},  // half-open window
		{0, 2, 3, false},  // different pair untouched
		{0, 2, 10, true},  // group disconnect downs every inter link
		{1, 2, 11.9, true},
		{2, 2, 11, false}, // intra link of the disconnected group survives
		{0, 1, 11, false},
	}
	for _, c := range cases {
		if got := s.LinkDown(c.a, c.b, c.t); got != c.want {
			t.Errorf("LinkDown(%d,%d,%g) = %v, want %v", c.a, c.b, c.t, got, c.want)
		}
	}
}

func TestDegradeAndProcFactors(t *testing.T) {
	s := mustSchedule(t, 1,
		Event{Kind: LinkDegrade, A: 0, B: 1, Start: 0, End: 10, Factor: 2},
		Event{Kind: LinkDegrade, A: 0, B: 1, Start: 5, End: 10, Factor: 3},
		Event{Kind: ProcSlowdown, Proc: 3, Start: 1, End: 4, Factor: 0.5},
		Event{Kind: ProcFailure, Proc: 2, Start: 6},
	)
	if f := s.DegradeFactor(0, 1, 1); f != 2 {
		t.Errorf("degrade at t=1: %g", f)
	}
	if f := s.DegradeFactor(0, 1, 6); f != 6 {
		t.Errorf("overlapping degrades must compound: %g", f)
	}
	if f := s.DegradeFactor(0, 1, 11); f != 1 {
		t.Errorf("degrade after window: %g", f)
	}
	if f := s.ProcFactor(3, 2); f != 0.5 {
		t.Errorf("slowdown factor: %g", f)
	}
	if f := s.ProcFactor(3, 5); f != 1 {
		t.Errorf("slowdown after window: %g", f)
	}
	if f := s.ProcFactor(2, 7); f != 0 {
		t.Errorf("failed proc must report 0, got %g", f)
	}
	if f := s.ProcFactor(2, 5); f != 1 {
		t.Errorf("proc healthy before failure, got %g", f)
	}
}

func TestProbeDropDeterministic(t *testing.T) {
	mk := func() *Schedule {
		return mustSchedule(t, 42,
			Event{Kind: ProbeLoss, A: 0, B: 1, Start: 0, End: 100, Prob: 0.5})
	}
	a, b := mk(), mk()
	var seqA, seqB []bool
	for i := 0; i < 200; i++ {
		seqA = append(seqA, a.DropProbe(0, 1, 10))
		seqB = append(seqB, b.DropProbe(0, 1, 10))
	}
	drops := 0
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("drop sequence diverges at %d", i)
		}
		if seqA[i] {
			drops++
		}
	}
	if drops < 60 || drops > 140 {
		t.Errorf("drop rate implausible for p=0.5: %d/200", drops)
	}
	// A different seed must give a different sequence.
	c := mustSchedule(t, 43,
		Event{Kind: ProbeLoss, A: 0, B: 1, Start: 0, End: 100, Prob: 0.5})
	diff := false
	for i := 0; i < 200; i++ {
		if c.DropProbe(0, 1, 10) != seqA[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("seed change did not change the drop sequence")
	}
	// Outside the loss window nothing drops (but the sequence advances).
	d := mk()
	for i := 0; i < 50; i++ {
		if d.DropProbe(0, 1, 200) {
			t.Fatal("drop outside window")
		}
	}
}

func TestFailuresIn(t *testing.T) {
	s := mustSchedule(t, 1,
		Event{Kind: ProcFailure, Proc: 4, Start: 3},
		Event{Kind: ProcFailure, Proc: 1, Start: 7},
	)
	if got := s.FailuresIn(0, 2.9); len(got) != 0 {
		t.Errorf("early window: %v", got)
	}
	if got := s.FailuresIn(0, 3); len(got) != 1 || got[0] != 4 {
		t.Errorf("inclusive end: %v", got)
	}
	if got := s.FailuresIn(3, 10); len(got) != 1 || got[0] != 1 {
		t.Errorf("exclusive start: %v", got)
	}
}

func TestNilScheduleIsHealthy(t *testing.T) {
	var s *Schedule
	if s.LinkDown(0, 1, 5) || s.GroupDown(0, 5) || s.DropProbe(0, 1, 5) {
		t.Error("nil schedule must inject nothing")
	}
	if s.DegradeFactor(0, 1, 5) != 1 || s.ProcFactor(0, 5) != 1 {
		t.Error("nil schedule must not degrade")
	}
	if s.FailuresIn(0, 100) != nil || s.NumEvents() != 0 {
		t.Error("nil schedule has no events")
	}
}

func TestValidation(t *testing.T) {
	bad := []Event{
		{Kind: LinkOutage, A: 0, B: 1, Start: 5, End: 5},               // empty window
		{Kind: LinkOutage, A: -1, B: 1, Start: 0, End: 1},              // bad group
		{Kind: LinkDegrade, A: 0, B: 1, Start: 0, End: 1, Factor: 0.5}, // speeds up
		{Kind: ProcSlowdown, Proc: 0, Start: 0, End: 1, Factor: 2},     // >1
		{Kind: ProbeLoss, A: 0, B: 1, Start: 0, End: 1, Prob: 1.5},     // bad prob
		{Kind: ProcFailure, Proc: 0, Start: -1},                        // negative time
	}
	for i, e := range bad {
		if _, err := NewSchedule(1, e); err == nil {
			t.Errorf("event %d (%s) must not validate", i, e)
		}
	}
}

func TestScriptRoundTrip(t *testing.T) {
	src := `
# demo script
link-outage between=0,1 start=2 end=6
link-degrade between=0,1 start=0 end=2 factor=4
probe-loss between=1,0 start=1 end=4 prob=0.8
proc-slow proc=3 start=0.5 end=1.5 factor=0.25
proc-fail proc=2 at=4.5
group-disconnect group=1 start=7 end=9
`
	events, err := ParseScript(strings.NewReader(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(events) != 6 {
		t.Fatalf("parsed %d events, want 6", len(events))
	}
	if events[0].Kind != LinkOutage || events[0].A != 0 || events[0].B != 1 ||
		events[0].Start != 2 || events[0].End != 6 {
		t.Errorf("outage parsed wrong: %+v", events[0])
	}
	if events[4].Kind != ProcFailure || events[4].Proc != 2 || events[4].Start != 4.5 {
		t.Errorf("proc-fail parsed wrong: %+v", events[4])
	}
	// Round trip through the formatter.
	again, err := ParseScript(strings.NewReader(FormatScript(events)))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(again) != len(events) {
		t.Fatalf("round trip lost events: %d vs %d", len(again), len(events))
	}
	for i := range events {
		if again[i] != events[i] {
			t.Errorf("event %d changed in round trip: %+v vs %+v", i, events[i], again[i])
		}
	}
}

func TestScriptErrors(t *testing.T) {
	bad := []string{
		"explode between=0,1 start=0 end=1",
		"link-outage between=0 start=0 end=1",
		"link-outage between=0,1 start=x end=1",
		"link-outage between=0,1 start=0 end=1 wat=1",
		"link-outage between=0,1 start=0",
		"proc-slow proc=1 start=0 end=1", // missing factor
	}
	for _, src := range bad {
		if _, err := ParseScript(strings.NewReader(src)); err == nil {
			t.Errorf("script %q must not parse", src)
		}
	}
}

func TestValidateAgainstSystemSize(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		want string
	}{
		{"proc-fail-oob", Event{Kind: ProcFailure, Proc: 99, Start: 1}, "proc 99"},
		{"proc-slow-oob", Event{Kind: ProcSlowdown, Proc: 8, Start: 0, End: 1, Factor: 0.5}, "proc 8"},
		{"link-group-oob", Event{Kind: LinkOutage, A: 0, B: 5, Start: 0, End: 1}, "group pair"},
		{"disconnect-oob", Event{Kind: GroupDisconnect, Group: 2, Start: 0, End: 1}, "group 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSchedule(1, tc.ev)
			if err != nil {
				t.Fatal(err)
			}
			err = s.Validate(8, 2)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate(8, 2) = %v, want error mentioning %q", err, tc.want)
			}
		})
	}

	ok, err := NewSchedule(1,
		Event{Kind: ProcFailure, Proc: 7, Start: 1},
		Event{Kind: LinkOutage, A: 0, B: 1, Start: 0, End: 1},
		Event{Kind: GroupDisconnect, Group: 1, Start: 0, End: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.Validate(8, 2); err != nil {
		t.Errorf("in-range events must validate, got %v", err)
	}
	var nilSched *Schedule
	if err := nilSched.Validate(8, 2); err != nil {
		t.Errorf("nil schedule must validate, got %v", err)
	}
}
