// Package fault implements deterministic, scripted fault injection
// for the simulated distributed system: link outage and degradation
// windows, probe-message loss, processor slowdowns, whole-processor
// failures, and group disconnects. The paper's premise is that
// wide-area networks are dynamic and unreliable; this package makes
// the simulation's networks and processors unreliable on a schedule,
// so the DLB scheme's degraded modes (probe retry, group quarantine,
// checkpoint recovery) can be exercised reproducibly.
//
// All decisions are pure functions of (seed, event script, query
// order): two runs with the same schedule and the same execution
// order observe byte-identical fault behaviour, which is what lets
// tests assert determinism of the whole fault-tolerant run.
package fault

import (
	"fmt"
	"sort"
	"sync"
)

// Kind classifies a fault event.
type Kind int

// The fault kinds.
const (
	// LinkOutage makes the link between groups A and B unusable for
	// the window [Start, End): transfers are undeliverable and probes
	// fail.
	LinkOutage Kind = iota
	// LinkDegrade multiplies the link's effective β by Factor (>1 =
	// slower) during [Start, End) — a congested or flapping WAN.
	LinkDegrade
	// ProbeLoss drops each probe message on the link between A and B
	// with probability Prob during [Start, End), deterministically
	// derived from the schedule seed.
	ProbeLoss
	// ProcSlowdown multiplies processor Proc's speed by Factor
	// (0 < Factor ≤ 1) during [Start, End) — background load or
	// thermal throttling.
	ProcSlowdown
	// ProcFailure kills processor Proc permanently at time Start.
	ProcFailure
	// GroupDisconnect cuts group Group off from every other group for
	// [Start, End): all its inter-group links behave as down.
	GroupDisconnect
	// DiskTornWrite makes checkpoint writes inside [Start, End) land
	// torn: the generation file appears complete but holds only a
	// prefix (Factor is the surviving fraction in (0,1); 0 = 0.5).
	DiskTornWrite
	// DiskBitFlip flips one deterministically chosen bit of each
	// checkpoint write inside [Start, End).
	DiskBitFlip
	// DiskWriteError makes checkpoint writes inside [Start, End) fail
	// outright (a full disk or dying controller); nothing lands. Prob,
	// when non-zero, makes each write fail with that probability
	// (deterministically per write index) instead of always — a
	// flaky disk rather than a dead one. Pruned-generation deletions
	// inside the window always fail: a disk that rejects writes
	// rejects unlinks too.
	DiskWriteError
	// ProcRecovery revives processor Proc at time Start: any failure in
	// effect ends (a windowed one early, a permanent one at all). The
	// event is instantaneous — End must be 0.
	ProcRecovery
	// GroupReconnect restores group Group's connectivity at time Start,
	// cancelling any GroupDisconnect window in effect. Instantaneous —
	// End must be 0.
	GroupReconnect
	// WorkerKill instructs a chaos supervisor to SIGKILL the worker
	// process hosting group Group once that worker has reported
	// completing level-0 step Start (here a step index, not a virtual
	// time). The engine itself ignores the kind entirely — the kill is
	// an OS-level event the supervisor delivers, and the run's Result
	// must come out byte-identical anyway. Instantaneous — End must
	// be 0.
	WorkerKill
)

func (k Kind) String() string {
	switch k {
	case LinkOutage:
		return "link-outage"
	case LinkDegrade:
		return "link-degrade"
	case ProbeLoss:
		return "probe-loss"
	case ProcSlowdown:
		return "proc-slow"
	case ProcFailure:
		return "proc-fail"
	case GroupDisconnect:
		return "group-disconnect"
	case DiskTornWrite:
		return "disk-torn-write"
	case DiskBitFlip:
		return "disk-bit-flip"
	case DiskWriteError:
		return "disk-write-error"
	case ProcRecovery:
		return "proc-recover"
	case GroupReconnect:
		return "group-reconnect"
	case WorkerKill:
		return "worker-kill"
	default:
		return "unknown"
	}
}

// Event is one scripted fault. Times are virtual (vclock) seconds;
// windows are half-open [Start, End).
//
// ProcFailure's End is an implicit recovery time: End > Start bounds
// the outage to [Start, End) and the processor rejoins at End, while
// End == 0 or End == Start (the script parser's shorthand) means the
// failure is permanent. An End before Start is rejected. ProcRecovery
// and GroupReconnect are instantaneous (End must be 0).
type Event struct {
	Kind Kind
	// Start and End bound the event window.
	Start, End float64
	// A and B name the group pair for link events (order irrelevant).
	A, B int
	// Group names the target of a GroupDisconnect.
	Group int
	// Proc names the target of ProcSlowdown / ProcFailure.
	Proc int
	// Factor is the LinkDegrade β multiplier (≥1) or the ProcSlowdown
	// speed multiplier (0 < Factor ≤ 1).
	Factor float64
	// Prob is the ProbeLoss per-message drop probability in [0, 1],
	// or the DiskWriteError per-write failure probability (0 = every
	// write in the window fails, preserving older scripts).
	Prob float64
}

func (e Event) String() string {
	switch e.Kind {
	case LinkOutage:
		return fmt.Sprintf("link-outage between=%d,%d start=%g end=%g", e.A, e.B, e.Start, e.End)
	case LinkDegrade:
		return fmt.Sprintf("link-degrade between=%d,%d start=%g end=%g factor=%g", e.A, e.B, e.Start, e.End, e.Factor)
	case ProbeLoss:
		return fmt.Sprintf("probe-loss between=%d,%d start=%g end=%g prob=%g", e.A, e.B, e.Start, e.End, e.Prob)
	case ProcSlowdown:
		return fmt.Sprintf("proc-slow proc=%d start=%g end=%g factor=%g", e.Proc, e.Start, e.End, e.Factor)
	case ProcFailure:
		if e.End > e.Start {
			return fmt.Sprintf("proc-fail proc=%d at=%g end=%g", e.Proc, e.Start, e.End)
		}
		return fmt.Sprintf("proc-fail proc=%d at=%g", e.Proc, e.Start)
	case GroupDisconnect:
		return fmt.Sprintf("group-disconnect group=%d start=%g end=%g", e.Group, e.Start, e.End)
	case DiskTornWrite:
		return fmt.Sprintf("disk-torn-write start=%g end=%g factor=%g", e.Start, e.End, e.Factor)
	case DiskBitFlip:
		return fmt.Sprintf("disk-bit-flip start=%g end=%g", e.Start, e.End)
	case DiskWriteError:
		if e.Prob > 0 {
			return fmt.Sprintf("disk-write-error start=%g end=%g prob=%g", e.Start, e.End, e.Prob)
		}
		return fmt.Sprintf("disk-write-error start=%g end=%g", e.Start, e.End)
	case ProcRecovery:
		return fmt.Sprintf("proc-recover proc=%d at=%g", e.Proc, e.Start)
	case GroupReconnect:
		return fmt.Sprintf("group-reconnect group=%d at=%g", e.Group, e.Start)
	case WorkerKill:
		return fmt.Sprintf("worker-kill group=%d at=%g", e.Group, e.Start)
	default:
		return fmt.Sprintf("unknown(%d)", int(e.Kind))
	}
}

// validate rejects malformed events with a descriptive error.
func (e Event) validate() error {
	if e.Start < 0 {
		return fmt.Errorf("%s: negative start %g", e.Kind, e.Start)
	}
	switch e.Kind {
	case ProcFailure:
		// End > Start is a bounded outage (the proc rejoins at End);
		// End == 0 or End == Start means permanent. Anything else is
		// a recovery scheduled before the failure — reject it.
		if e.End != 0 && e.End < e.Start {
			return fmt.Errorf("proc-fail: end %g before start %g (use end=0 or end=start for a permanent failure)", e.End, e.Start)
		}
	case ProcRecovery, GroupReconnect, WorkerKill:
		if e.End != 0 {
			return fmt.Errorf("%s: instantaneous event must have end=0, got %g", e.Kind, e.End)
		}
	default:
		if e.End <= e.Start {
			return fmt.Errorf("%s: empty window [%g, %g)", e.Kind, e.Start, e.End)
		}
	}
	switch e.Kind {
	case LinkOutage, LinkDegrade, ProbeLoss:
		if e.A < 0 || e.B < 0 {
			return fmt.Errorf("%s: negative group in pair (%d, %d)", e.Kind, e.A, e.B)
		}
	case ProcSlowdown, ProcFailure, ProcRecovery:
		if e.Proc < 0 {
			return fmt.Errorf("%s: negative proc %d", e.Kind, e.Proc)
		}
	case GroupDisconnect, GroupReconnect, WorkerKill:
		if e.Group < 0 {
			return fmt.Errorf("%s: negative group %d", e.Kind, e.Group)
		}
	case DiskTornWrite, DiskBitFlip, DiskWriteError:
		// Disk events target the checkpoint store as a whole; only the
		// window (and, for torn writes, the surviving fraction) matter.
	default:
		return fmt.Errorf("unknown fault kind %d", int(e.Kind))
	}
	if e.Kind == LinkDegrade && e.Factor < 1 {
		return fmt.Errorf("link-degrade: factor %g must be ≥ 1", e.Factor)
	}
	if e.Kind == DiskTornWrite && (e.Factor < 0 || e.Factor >= 1) {
		return fmt.Errorf("disk-torn-write: surviving fraction %g must be in [0, 1)", e.Factor)
	}
	if e.Kind == ProcSlowdown && (e.Factor <= 0 || e.Factor > 1) {
		return fmt.Errorf("proc-slow: factor %g must be in (0, 1]", e.Factor)
	}
	if e.Kind == ProbeLoss && (e.Prob < 0 || e.Prob > 1) {
		return fmt.Errorf("probe-loss: prob %g must be in [0, 1]", e.Prob)
	}
	if e.Kind == DiskWriteError && (e.Prob < 0 || e.Prob > 1) {
		return fmt.Errorf("disk-write-error: prob %g must be in [0, 1]", e.Prob)
	}
	return nil
}

// in reports whether t falls inside the event's window.
func (e Event) in(t float64) bool { return t >= e.Start && t < e.End }

// matchesPair reports whether a link event targets the (a, b) pair.
func (e Event) matchesPair(a, b int) bool {
	if a > b {
		a, b = b, a
	}
	ea, eb := e.A, e.B
	if ea > eb {
		ea, eb = eb, ea
	}
	return ea == a && eb == b
}

// Schedule is a validated, seeded fault script. Query methods are
// safe for concurrent use (the probe-drop sequence is guarded), but
// determinism across runs additionally requires a deterministic query
// order, which the single-threaded engine loop provides.
type Schedule struct {
	seed   int64
	events []Event

	mu       sync.Mutex
	probeSeq map[[2]int]uint64
}

// NewSchedule validates the events and builds a schedule. The seed
// drives the deterministic probe-loss decisions.
func NewSchedule(seed int64, events ...Event) (*Schedule, error) {
	for i, e := range events {
		if err := e.validate(); err != nil {
			return nil, fmt.Errorf("fault.NewSchedule: event %d: %w", i, err)
		}
	}
	s := &Schedule{
		seed:     seed,
		events:   append([]Event(nil), events...),
		probeSeq: make(map[[2]int]uint64),
	}
	// Stable order by start time (then kind) so Events and the failure
	// scan are reproducible regardless of script order.
	sort.SliceStable(s.events, func(i, j int) bool {
		if s.events[i].Start != s.events[j].Start {
			return s.events[i].Start < s.events[j].Start
		}
		return s.events[i].Kind < s.events[j].Kind
	})
	return s, nil
}

// Seed returns the schedule's seed.
func (s *Schedule) Seed() int64 { return s.seed }

// Validate checks every event's processor and group indices against
// the target system's size. NewSchedule cannot do this (it sees no
// system), so callers bind the check at wiring time.
func (s *Schedule) Validate(numProcs, numGroups int) error {
	if s == nil {
		return nil
	}
	for i, e := range s.events {
		switch e.Kind {
		case LinkOutage, LinkDegrade, ProbeLoss:
			if e.A >= numGroups || e.B >= numGroups {
				return fmt.Errorf("fault event %d (%s): group pair (%d, %d) out of range for %d groups", i, e.Kind, e.A, e.B, numGroups)
			}
		case ProcSlowdown, ProcFailure, ProcRecovery:
			if e.Proc >= numProcs {
				return fmt.Errorf("fault event %d (%s): proc %d out of range for %d processors", i, e.Kind, e.Proc, numProcs)
			}
		case GroupDisconnect, GroupReconnect, WorkerKill:
			if e.Group >= numGroups {
				return fmt.Errorf("fault event %d (%s): group %d out of range for %d groups", i, e.Kind, e.Group, numGroups)
			}
		}
	}
	return nil
}

// KillPoint is one scripted worker kill: SIGKILL the worker hosting
// Group once it has reported completing level-0 step Step.
type KillPoint struct {
	Group int
	Step  int
}

// WorkerKills returns the scripted worker-kill points in schedule
// order — the chaos supervisor's kill list. The engine's own fault
// queries never see WorkerKill events.
func (s *Schedule) WorkerKills() []KillPoint {
	if s == nil {
		return nil
	}
	var out []KillPoint
	for _, e := range s.events {
		if e.Kind == WorkerKill {
			out = append(out, KillPoint{Group: e.Group, Step: int(e.Start)})
		}
	}
	return out
}

// Events returns a copy of the validated events in start order.
func (s *Schedule) Events() []Event {
	if s == nil {
		return nil
	}
	return append([]Event(nil), s.events...)
}

// NumEvents returns the event count (0 on nil).
func (s *Schedule) NumEvents() int {
	if s == nil {
		return 0
	}
	return len(s.events)
}

// LinkDown reports whether the link between groups a and b is
// unusable at time t: a LinkOutage window covers the pair, or either
// endpoint is group-disconnected.
func (s *Schedule) LinkDown(a, b int, t float64) bool {
	if s == nil {
		return false
	}
	for _, e := range s.events {
		if e.Kind == LinkOutage && e.in(t) && e.matchesPair(a, b) {
			return true
		}
	}
	if a != b && (s.GroupDown(a, t) || s.GroupDown(b, t)) {
		return true
	}
	return false
}

// DegradeFactor returns the product of the β multipliers of every
// LinkDegrade window covering the pair at time t (1 when none).
func (s *Schedule) DegradeFactor(a, b int, t float64) float64 {
	f := 1.0
	if s == nil {
		return f
	}
	for _, e := range s.events {
		if e.Kind == LinkDegrade && e.in(t) && e.matchesPair(a, b) {
			f *= e.Factor
		}
	}
	return f
}

// DropProbe decides whether the next probe message on the (a, b) link
// at time t is lost. Each call advances the pair's deterministic
// drop sequence, so the k-th probe message of a run always sees the
// same fate under the same seed and script.
func (s *Schedule) DropProbe(a, b int, t float64) bool {
	if s == nil {
		return false
	}
	prob := 0.0
	for _, e := range s.events {
		if e.Kind == ProbeLoss && e.in(t) && e.matchesPair(a, b) && e.Prob > prob {
			prob = e.Prob
		}
	}
	if a > b {
		a, b = b, a
	}
	key := [2]int{a, b}
	s.mu.Lock()
	n := s.probeSeq[key]
	s.probeSeq[key] = n + 1
	s.mu.Unlock()
	if prob <= 0 {
		return false
	}
	return hashUnit(uint64(s.seed), uint64(a)<<32|uint64(uint32(b)), n) < prob
}

// ProcFactor returns processor p's speed multiplier at time t: the
// product of every covering ProcSlowdown window, clamped below at
// 0.01 so modelled compute time stays finite. A dead processor
// (see ProcDead) returns 0.
func (s *Schedule) ProcFactor(p int, t float64) float64 {
	if s == nil {
		return 1
	}
	if s.ProcDead(p, t) {
		return 0
	}
	f := 1.0
	for _, e := range s.events {
		if e.Kind == ProcSlowdown && e.Proc == p && e.in(t) {
			f *= e.Factor
		}
	}
	if f < 0.01 {
		f = 0.01
	}
	return f
}

// ProcDead reports whether processor p is failed at time t. The
// events for p are replayed in start order: a ProcFailure kills it
// (until End for a windowed failure, forever otherwise) and a
// ProcRecovery revives it. On a start-time tie the recovery wins.
func (s *Schedule) ProcDead(p int, t float64) bool {
	if s == nil {
		return false
	}
	dead := false
	for _, e := range s.events {
		if e.Start > t || e.Proc != p {
			continue
		}
		switch e.Kind {
		case ProcFailure:
			if e.End > e.Start && t >= e.End {
				continue // windowed failure already over
			}
			dead = true
		case ProcRecovery:
			dead = false
		}
	}
	return dead
}

// GroupDown reports whether group g is disconnected at time t: a
// GroupDisconnect window covers t and no later (or same-start —
// reconnect wins ties) GroupReconnect has fired by t.
func (s *Schedule) GroupDown(g int, t float64) bool {
	if s == nil {
		return false
	}
	down := false
	for _, e := range s.events {
		if e.Start > t || e.Group != g {
			continue
		}
		switch e.Kind {
		case GroupDisconnect:
			if t < e.End {
				down = true
			}
		case GroupReconnect:
			down = false
		}
	}
	return down
}

// FailuresIn returns the processors whose ProcFailure fires in the
// window (t0, t1], in event order (duplicates removed).
func (s *Schedule) FailuresIn(t0, t1 float64) []int {
	if s == nil {
		return nil
	}
	var out []int
	seen := map[int]bool{}
	for _, e := range s.events {
		if e.Kind == ProcFailure && e.Start > t0 && e.Start <= t1 && !seen[e.Proc] {
			seen[e.Proc] = true
			out = append(out, e.Proc)
		}
	}
	return out
}

// RecoveriesIn returns the processors with a scripted recovery point
// in the window (t0, t1]: an explicit ProcRecovery start or the End of
// a windowed ProcFailure. Ordered by recovery time then processor,
// duplicates removed.
func (s *Schedule) RecoveriesIn(t0, t1 float64) []int {
	if s == nil {
		return nil
	}
	type rec struct {
		at   float64
		proc int
	}
	var recs []rec
	seen := map[int]bool{}
	for _, e := range s.events {
		var at float64
		switch e.Kind {
		case ProcRecovery:
			at = e.Start
		case ProcFailure:
			if e.End <= e.Start {
				continue
			}
			at = e.End
		default:
			continue
		}
		if at > t0 && at <= t1 && !seen[e.Proc] {
			seen[e.Proc] = true
			recs = append(recs, rec{at, e.Proc})
		}
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].at != recs[j].at {
			return recs[i].at < recs[j].at
		}
		return recs[i].proc < recs[j].proc
	})
	out := make([]int, 0, len(recs))
	for _, r := range recs {
		out = append(out, r.proc)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// LinkFault binds the schedule to one fabric link (the group pair the
// link joins). It satisfies netsim's FaultModel interface without an
// import in either direction.
type LinkFault struct {
	s    *Schedule
	a, b int
}

// ForLink returns the fault view of the link between groups a and b
// (a == b for an intra-group link).
func (s *Schedule) ForLink(a, b int) *LinkFault {
	return &LinkFault{s: s, a: a, b: b}
}

// Down reports whether the link is unusable at time t.
func (lf *LinkFault) Down(t float64) bool { return lf.s.LinkDown(lf.a, lf.b, t) }

// Degrade returns the β multiplier at time t.
func (lf *LinkFault) Degrade(t float64) float64 { return lf.s.DegradeFactor(lf.a, lf.b, t) }

// DropProbe reports (and consumes) the fate of one probe message.
func (lf *LinkFault) DropProbe(t float64) bool { return lf.s.DropProbe(lf.a, lf.b, t) }

// diskKey salts the deterministic bit-flip position so it is
// independent of the probe-loss hash stream; diskWriteKey salts the
// per-write failure draw of a probabilistic DiskWriteError window.
const (
	diskKey      = 0xd15cfa17
	diskWriteKey = 0xd15cbad1
)

// DiskFault binds the schedule to a checkpoint store. It satisfies
// ckpt's DiskFault interface without an import in either direction.
// Decisions are pure functions of (seed, script, write index, time),
// so a resumed run that replays the same write sequence observes the
// same corruption.
type DiskFault struct{ s *Schedule }

// ForDisk returns the disk-fault view of the schedule.
func (s *Schedule) ForDisk() *DiskFault { return &DiskFault{s: s} }

// WriteError reports whether the n-th checkpoint write at time t
// fails outright. An event with Prob == 0 fails every write in its
// window (the historical behaviour); Prob in (0, 1] fails each write
// with that probability, drawn deterministically from the write
// index so a resumed run replays the same fates.
func (d *DiskFault) WriteError(n int, t float64) bool {
	if d == nil || d.s == nil {
		return false
	}
	prob := 0.0
	for _, e := range d.s.events {
		if e.Kind != DiskWriteError || !e.in(t) {
			continue
		}
		p := e.Prob
		if p == 0 {
			p = 1
		}
		if p > prob {
			prob = p
		}
	}
	if prob == 0 {
		return false
	}
	return hashUnit(uint64(d.s.seed), diskWriteKey, uint64(n)) < prob
}

// RemoveError reports whether deleting a pruned checkpoint file fails
// at time t: any DiskWriteError window covers removals too — a disk
// that rejects writes rejects unlinks — regardless of the window's
// per-write probability. n keys nothing today but mirrors the other
// disk-fault decisions' shape.
func (d *DiskFault) RemoveError(n int, t float64) bool {
	if d == nil || d.s == nil {
		return false
	}
	for _, e := range d.s.events {
		if e.Kind == DiskWriteError && e.in(t) {
			return true
		}
	}
	return false
}

// TornWrite reports whether the n-th checkpoint write at time t lands
// torn, and the fraction of bytes that survive.
func (d *DiskFault) TornWrite(n int, t float64) (bool, float64) {
	if d == nil || d.s == nil {
		return false, 0
	}
	for _, e := range d.s.events {
		if e.Kind == DiskTornWrite && e.in(t) {
			frac := e.Factor
			if frac == 0 {
				frac = 0.5
			}
			return true, frac
		}
	}
	return false, 0
}

// FlipBit reports whether one bit of the n-th checkpoint write at
// time t is flipped, and a unit value selecting which bit.
func (d *DiskFault) FlipBit(n int, t float64) (bool, float64) {
	if d == nil || d.s == nil {
		return false, 0
	}
	for _, e := range d.s.events {
		if e.Kind == DiskBitFlip && e.in(t) {
			return true, hashUnit(uint64(d.s.seed), diskKey, uint64(n))
		}
	}
	return false, 0
}

// ProbeSeqEntry records one link pair's position in the deterministic
// probe-drop sequence.
type ProbeSeqEntry struct {
	A, B int
	N    uint64
}

// ProbeSeqSnapshot returns the per-pair probe-drop sequence positions
// in (A, B) order, for checkpointing: restoring them into an
// identically scripted schedule makes a resumed run observe the same
// probe fates the uninterrupted run would have.
func (s *Schedule) ProbeSeqSnapshot() []ProbeSeqEntry {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ProbeSeqEntry, 0, len(s.probeSeq))
	for k, n := range s.probeSeq {
		out = append(out, ProbeSeqEntry{A: k[0], B: k[1], N: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// RestoreProbeSeq resets the probe-drop sequence positions from a
// snapshot (any previous positions are discarded).
func (s *Schedule) RestoreProbeSeq(entries []ProbeSeqEntry) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.probeSeq = make(map[[2]int]uint64, len(entries))
	for _, e := range entries {
		a, b := e.A, e.B
		if a > b {
			a, b = b, a
		}
		s.probeSeq[[2]int{a, b}] = e.N
	}
}

// hashUnit maps (seed, key, n) to a uniform float64 in [0, 1) with a
// splitmix64-style mix — deterministic and platform-independent.
func hashUnit(seed, key, n uint64) float64 {
	x := seed ^ key*0x9e3779b97f4a7c15 ^ n*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
