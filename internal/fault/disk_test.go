package fault

import (
	"strings"
	"testing"
)

func TestDiskEventValidation(t *testing.T) {
	ok := []Event{
		{Kind: DiskTornWrite, Start: 1, End: 2},
		{Kind: DiskTornWrite, Start: 1, End: 2, Factor: 0.4},
		{Kind: DiskBitFlip, Start: 1, End: 2},
		{Kind: DiskWriteError, Start: 1, End: 2},
	}
	for _, e := range ok {
		if _, err := NewSchedule(1, e); err != nil {
			t.Errorf("%v: %v", e, err)
		}
	}
	bad := []Event{
		{Kind: DiskTornWrite, Start: 1, End: 2, Factor: 1.0}, // nothing torn
		{Kind: DiskTornWrite, Start: 1, End: 2, Factor: -0.1},
		{Kind: DiskBitFlip, Start: 2, End: 1}, // inverted window
	}
	for _, e := range bad {
		if _, err := NewSchedule(1, e); err == nil {
			t.Errorf("%v: want validation error", e)
		}
	}
}

func TestForDiskDeterministicAndWindowed(t *testing.T) {
	mk := func() *DiskFault {
		s, err := NewSchedule(42,
			Event{Kind: DiskWriteError, Start: 1, End: 2},
			Event{Kind: DiskTornWrite, Start: 3, End: 4, Factor: 0.25},
			Event{Kind: DiskBitFlip, Start: 5, End: 6},
		)
		if err != nil {
			t.Fatal(err)
		}
		return s.ForDisk()
	}
	d := mk()
	if !d.WriteError(0, 1.5) || d.WriteError(0, 2.5) {
		t.Error("write errors must fire inside their window only")
	}
	if torn, frac := d.TornWrite(0, 3.5); !torn || frac != 0.25 {
		t.Errorf("torn=%v frac=%v, want true/0.25", torn, frac)
	}
	if torn, _ := d.TornWrite(0, 4.5); torn {
		t.Error("torn write outside its window")
	}
	flip, u := d.FlipBit(7, 5.5)
	if !flip || u < 0 || u >= 1 {
		t.Errorf("flip=%v u=%v, want true with unit value", flip, u)
	}
	// Same seed + script + write index reproduces the same bit choice —
	// the property resumed runs rely on.
	if _, u2 := mk().FlipBit(7, 5.5); u2 != u {
		t.Errorf("bit choice not deterministic: %v vs %v", u, u2)
	}
	if _, u3 := d.FlipBit(8, 5.5); u3 == u {
		t.Error("distinct writes should (almost surely) flip distinct bits")
	}
	var nilFault *DiskFault
	if nilFault.WriteError(0, 1) {
		t.Error("nil DiskFault must be a no-op")
	}
}

func TestDefaultTornFraction(t *testing.T) {
	s, err := NewSchedule(1, Event{Kind: DiskTornWrite, Start: 1, End: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, frac := s.ForDisk().TornWrite(0, 1.5); frac != 0.5 {
		t.Errorf("frac = %v, want the 0.5 default", frac)
	}
}

func TestDiskScriptRoundTrip(t *testing.T) {
	script := `
# durable-store fault block
disk-torn-write start=2 end=6 factor=0.4
disk-bit-flip start=7 end=9
disk-write-error start=10 end=11
`
	events, err := ParseScript(strings.NewReader(script))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("parsed %d events, want 3", len(events))
	}
	if events[0].Kind != DiskTornWrite || events[0].Factor != 0.4 {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1].Kind != DiskBitFlip || events[2].Kind != DiskWriteError {
		t.Errorf("kinds = %v, %v", events[1].Kind, events[2].Kind)
	}
	reparsed, err := ParseScript(strings.NewReader(FormatScript(events)))
	if err != nil {
		t.Fatalf("formatted script must reparse: %v", err)
	}
	for i := range events {
		if events[i] != reparsed[i] {
			t.Errorf("round trip changed event %d: %+v vs %+v", i, events[i], reparsed[i])
		}
	}
}

func TestProbeSeqSnapshotRestore(t *testing.T) {
	s, err := NewSchedule(3, Event{Kind: ProbeLoss, A: 0, B: 1, Start: 0, End: 100, Prob: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Advance the drop sequence, snapshot, then replay the same probes
	// on a restored schedule: fates must match position for position.
	var orig []bool
	for i := 0; i < 8; i++ {
		orig = append(orig, s.DropProbe(0, 1, 50))
	}
	snap := s.ProbeSeqSnapshot()
	if len(snap) != 1 || snap[0].N != 8 {
		t.Fatalf("snapshot = %+v, want one pair at position 8", snap)
	}
	cont := []bool{s.DropProbe(0, 1, 50), s.DropProbe(0, 1, 50)}

	s2, err := NewSchedule(3, Event{Kind: ProbeLoss, A: 0, B: 1, Start: 0, End: 100, Prob: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	s2.RestoreProbeSeq(snap)
	if got := []bool{s2.DropProbe(0, 1, 50), s2.DropProbe(0, 1, 50)}; got[0] != cont[0] || got[1] != cont[1] {
		t.Errorf("restored sequence diverged: %v vs %v", got, cont)
	}
	_ = orig
}
