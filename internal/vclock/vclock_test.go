package vclock

import (
	"math"
	"testing"
)

func TestAddPhaseTakesMax(t *testing.T) {
	c := New(3)
	worst := c.AddPhase(Compute, []float64{1, 3, 2})
	if worst != 3 {
		t.Errorf("worst = %v", worst)
	}
	if c.Now() != 3 {
		t.Errorf("Now = %v", c.Now())
	}
	if c.PhaseTotal(Compute) != 3 {
		t.Errorf("PhaseTotal = %v", c.PhaseTotal(Compute))
	}
	if c.Busy(0) != 1 || c.Busy(1) != 3 || c.Busy(2) != 2 {
		t.Error("per-proc busy wrong")
	}
}

func TestUtilisationReflectsImbalance(t *testing.T) {
	c := New(2)
	c.AddPhase(Compute, []float64{1, 1})
	if u := c.Utilisation(); math.Abs(u-1) > 1e-15 {
		t.Errorf("balanced utilisation = %v", u)
	}
	c2 := New(2)
	c2.AddPhase(Compute, []float64{0, 2})
	if u := c2.Utilisation(); math.Abs(u-0.5) > 1e-15 {
		t.Errorf("imbalanced utilisation = %v", u)
	}
	// Empty clock is conventionally fully utilised.
	if New(4).Utilisation() != 1 {
		t.Error("fresh clock utilisation should be 1")
	}
}

func TestAddUniform(t *testing.T) {
	c := New(4)
	c.AddUniform(RemoteComm, 2)
	if c.Now() != 2 || c.PhaseTotal(RemoteComm) != 2 {
		t.Error("AddUniform accounting wrong")
	}
	if c.Utilisation() != 1 {
		t.Error("uniform phase must keep utilisation 1")
	}
}

func TestPhasesAccumulateIndependently(t *testing.T) {
	c := New(1)
	c.AddPhase(Compute, []float64{1})
	c.AddPhase(LocalComm, []float64{2})
	c.AddPhase(RemoteComm, []float64{3})
	c.AddPhase(DLBOverhead, []float64{0.5})
	c.AddPhase(Redistribution, []float64{0.25})
	c.AddPhase(Regrid, []float64{0.125})
	if c.Now() != 6.875 {
		t.Errorf("Now = %v", c.Now())
	}
	if c.CommTotal() != 5 {
		t.Errorf("CommTotal = %v", c.CommTotal())
	}
	b := c.Breakdown()
	if b[Compute] != 1 || b[Regrid] != 0.125 {
		t.Error("Breakdown wrong")
	}
}

func TestPhaseString(t *testing.T) {
	if Compute.String() != "compute" || RemoteComm.String() != "remote-comm" {
		t.Error("phase names wrong")
	}
	if Phase(99).String() != "phase(99)" {
		t.Error("out-of-range phase name wrong")
	}
}

func TestValidation(t *testing.T) {
	assertPanics(t, "zero procs", func() { New(0) })
	c := New(2)
	assertPanics(t, "wrong len", func() { c.AddPhase(Compute, []float64{1}) })
	assertPanics(t, "negative", func() { c.AddPhase(Compute, []float64{1, -1}) })
	assertPanics(t, "negative uniform", func() { c.AddUniform(Compute, -1) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}
