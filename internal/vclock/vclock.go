// Package vclock accounts virtual time for the bulk-synchronous
// distributed execution model. Each simulated processor accumulates
// busy time; phases advance the global clock by the slowest
// processor's contribution (the critical path), and the per-phase
// totals form the compute/communication breakdown reported by the
// paper's Figure 3.
package vclock

import "fmt"

// Phase tags where virtual time is spent.
type Phase int

// The accounting phases. LocalComm is communication within a group;
// RemoteComm crosses groups (the overhead the paper's scheme attacks).
const (
	Compute Phase = iota
	LocalComm
	RemoteComm
	DLBOverhead
	Redistribution
	Regrid
	// Recovery is checkpointing plus failure recovery: the wall time
	// spent writing periodic checkpoints, restoring after an injected
	// processor failure, and re-doing the work lost since the last
	// checkpoint.
	Recovery
	numPhases
)

// NumPhases is the count of accounting phases.
const NumPhases = int(numPhases)

var phaseNames = [...]string{
	"compute", "local-comm", "remote-comm", "dlb-overhead", "redistribution", "regrid", "recovery",
}

func (p Phase) String() string {
	if p < 0 || int(p) >= NumPhases {
		return fmt.Sprintf("phase(%d)", int(p))
	}
	return phaseNames[p]
}

// Clock tracks the virtual execution time of a bulk-synchronous run
// over nproc processors.
type Clock struct {
	nproc   int
	now     float64
	byPhase [NumPhases]float64
	busy    []float64 // per-processor busy time, for utilisation
}

// New returns a clock for nproc processors, at time zero.
func New(nproc int) *Clock {
	if nproc <= 0 {
		panic("vclock.New: need at least one processor")
	}
	return &Clock{nproc: nproc, busy: make([]float64, nproc)}
}

// NumProcs returns the processor count the clock was built for.
func (c *Clock) NumProcs() int { return c.nproc }

// Now returns the current virtual time (seconds).
func (c *Clock) Now() float64 { return c.now }

// AddPhase records a bulk-synchronous phase: perProc[i] is the time
// processor i spends in the phase. The global clock advances by the
// maximum (all processors wait at the implicit barrier) and that
// maximum is attributed to the phase. Per-processor busy time
// accumulates the individual contributions, so Utilisation reflects
// imbalance.
func (c *Clock) AddPhase(p Phase, perProc []float64) float64 {
	if len(perProc) != c.nproc {
		panic(fmt.Sprintf("vclock.AddPhase: got %d entries for %d procs", len(perProc), c.nproc))
	}
	var worst float64
	for i, dt := range perProc {
		if dt < 0 {
			panic("vclock.AddPhase: negative time")
		}
		c.busy[i] += dt
		if dt > worst {
			worst = dt
		}
	}
	c.now += worst
	c.byPhase[p] += worst
	return worst
}

// AddUniform records a phase where every processor spends the same
// time dt (e.g. a global synchronisation or an all-to-all exchange
// bounded by one link).
func (c *Clock) AddUniform(p Phase, dt float64) {
	if dt < 0 {
		panic("vclock.AddUniform: negative time")
	}
	for i := range c.busy {
		c.busy[i] += dt
	}
	c.now += dt
	c.byPhase[p] += dt
}

// PhaseTotal returns the accumulated critical-path time of a phase.
func (c *Clock) PhaseTotal(p Phase) float64 { return c.byPhase[p] }

// Busy returns processor i's accumulated busy time.
func (c *Clock) Busy(i int) float64 { return c.busy[i] }

// Utilisation returns mean busy time divided by elapsed time — 1.0
// means perfectly balanced, lower means processors idled at barriers.
func (c *Clock) Utilisation() float64 {
	if c.now == 0 {
		return 1
	}
	var sum float64
	for _, b := range c.busy {
		sum += b
	}
	return sum / (float64(c.nproc) * c.now)
}

// Breakdown returns a copy of the per-phase totals.
func (c *Clock) Breakdown() [NumPhases]float64 { return c.byPhase }

// State is a serializable snapshot of a clock, used by the durable
// checkpoint store so a resumed run continues with exactly the
// virtual time, phase breakdown and per-processor busy totals the
// interrupted run had accumulated.
type State struct {
	Now     float64
	ByPhase [NumPhases]float64
	Busy    []float64
}

// State snapshots the clock.
func (c *Clock) State() State {
	return State{Now: c.now, ByPhase: c.byPhase, Busy: append([]float64(nil), c.busy...)}
}

// SetState restores a snapshot taken by State. The snapshot must
// cover the same processor count the clock was built for.
func (c *Clock) SetState(s State) error {
	if len(s.Busy) != c.nproc {
		return fmt.Errorf("vclock.SetState: snapshot covers %d processors, clock has %d", len(s.Busy), c.nproc)
	}
	c.now = s.Now
	c.byPhase = s.ByPhase
	copy(c.busy, s.Busy)
	return nil
}

// CommTotal returns local plus remote communication time.
func (c *Clock) CommTotal() float64 {
	return c.byPhase[LocalComm] + c.byPhase[RemoteComm]
}
