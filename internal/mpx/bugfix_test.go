package mpx

import (
	"runtime"
	"testing"
)

// TestRunAggregatesAllPanicValues pins the panic-propagation fix: Run
// must re-raise a *RunPanicError carrying every rank's ORIGINAL panic
// value, not a flattened string of the first one it happened to see.
// (Pre-fix, Run raised fmt.Sprintf("rank %d: %v", ...) of one panic,
// losing the typed values and all but one failure.)
func TestRunAggregatesAllPanicValues(t *testing.T) {
	type rankFault struct{ code int }
	w := NewWorld(4)
	defer func() {
		p := recover()
		rpe, ok := p.(*RunPanicError)
		if !ok {
			t.Fatalf("Run re-raised %T (%v), want *RunPanicError", p, p)
		}
		if len(rpe.Panics) != 4 {
			t.Fatalf("aggregated %d panics, want all 4: %v", len(rpe.Panics), rpe)
		}
		seen := make(map[int]bool)
		for _, rp := range rpe.Panics {
			v, ok := rp.Value.(rankFault)
			if !ok {
				t.Fatalf("rank %d's value arrived as %T, want the original rankFault", rp.Rank, rp.Value)
			}
			if v.code != rp.Rank {
				t.Errorf("rank %d carries code %d", rp.Rank, v.code)
			}
			if len(rp.Stack) == 0 {
				t.Errorf("rank %d has no captured stack", rp.Rank)
			}
			seen[rp.Rank] = true
		}
		if len(seen) != 4 {
			t.Errorf("panics cover ranks %v, want all 4", seen)
		}
	}()
	w.Run(func(r *Rank) { panic(rankFault{code: r.ID()}) })
}

// TestRunPrimaryCauseUnderAbort: one rank fails while the rest block
// in Recv; the blocked ranks surface as secondary AbortErrors and
// Primary() identifies the real culprit.
func TestRunPrimaryCauseUnderAbort(t *testing.T) {
	w := NewWorld(3)
	defer func() {
		rpe, ok := recover().(*RunPanicError)
		if !ok {
			t.Fatal("want *RunPanicError")
		}
		prim := rpe.Primary()
		if prim == nil || prim.Rank != 0 {
			t.Fatalf("Primary = %+v, want rank 0's failure", prim)
		}
		if s, ok := prim.Value.(string); !ok || s != "boom" {
			t.Fatalf("primary value = %v, want the original \"boom\"", prim.Value)
		}
		for _, rp := range rpe.Panics {
			if rp.Rank == 0 {
				continue
			}
			if _, ok := rp.Value.(*AbortError); !ok {
				t.Errorf("blocked rank %d panicked %T, want *AbortError", rp.Rank, rp.Value)
			}
		}
	}()
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			panic("boom")
		}
		r.Recv(0, 7) // never sent; must be woken by the abort
	})
}

// TestNegativeUserTagsRejected pins the tag-validation fix: user tags
// collide with the reserved collective tag space when negative, so
// Send and Recv must reject them loudly instead of corrupting a
// concurrent AllGather/Bcast.
func TestNegativeUserTagsRejected(t *testing.T) {
	w := NewWorld(2)
	r := &Rank{world: w, id: 0}
	for _, op := range []struct {
		name string
		call func()
	}{
		{"Send", func() { r.Send(1, -1, []float64{1}) }},
		{"Send-deep-negative", func() { r.Send(1, tagGather, []float64{1}) }},
		{"Recv", func() { _ = r.Recv(1, -2) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with a negative tag must panic", op.name)
				}
			}()
			op.call()
		}()
	}
	// Tag 0 stays valid.
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 0, []float64{42})
		} else if got := r.Recv(0, 0); got[0] != 42 {
			t.Errorf("tag-0 payload = %v", got)
		}
	})
}

// TestMailboxCompactsAndReleases pins the retention fix: taking a
// message out of the middle of the queue must not leave its payload
// reachable through a stale tail slot, and a drained queue that grew
// beyond smallQueueCap must release its backing array.
func TestMailboxCompactsAndReleases(t *testing.T) {
	w := NewWorld(2)
	box := w.boxes[1][0]
	const burst = 64
	for i := 0; i < burst; i++ {
		box.put(message{tag: i, data: make([]float64, 8)})
	}
	// Drain out of order (middle-first) so every removal compacts.
	box.take(burst / 2)
	for i := 0; i < burst; i++ {
		if i != burst/2 {
			box.take(i)
		}
	}
	if n, c := box.queueState(); n != 0 || c != 0 {
		t.Errorf("drained queue holds len=%d cap=%d, want the backing array released", n, c)
	}
	// A queue that never grew past smallQueueCap keeps its array.
	box.put(message{tag: 0, data: nil})
	box.take(0)
	if n, c := box.queueState(); n != 0 || c == 0 || c > smallQueueCap {
		t.Errorf("small queue len=%d cap=%d, want a retained array of at most %d", n, c, smallQueueCap)
	}
}

// TestMailboxRetentionHeapBound is the end-to-end memory check: bursts
// of large payloads through a world must not accumulate once consumed.
func TestMailboxRetentionHeapBound(t *testing.T) {
	const (
		rounds  = 8
		msgs    = 16
		words   = 1 << 15 // 256 KiB per payload
		payload = msgs * words * 8
	)
	w := NewWorld(2)
	for round := 0; round < rounds; round++ {
		w.Run(func(r *Rank) {
			if r.ID() == 0 {
				for i := 0; i < msgs; i++ {
					r.Send(1, i, make([]float64, words))
				}
			} else {
				for i := msgs - 1; i >= 0; i-- { // reverse: every take compacts
					_ = r.Recv(0, i)
				}
			}
		})
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	// All 8×16 payloads are garbage by now; allow generous slack for
	// the runtime itself but far less than even one retained burst.
	if ms.HeapAlloc > 3*payload {
		t.Errorf("heap after drain = %d bytes; consumed payloads appear retained (burst = %d bytes)",
			ms.HeapAlloc, payload)
	}
}
