package mpx

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

func TestWireDataFrameRoundTrip(t *testing.T) {
	cases := []struct {
		name          string
		src, dst, tag int
		seq           uint64
		data          []float64
	}{
		{"basic", 0, 3, 7, 42, []float64{1.5, -2.25, math.Pi}},
		{"empty-payload", 1, 2, 0, 0, nil},
		{"negative-collective-tag", 5, 0, tagGather, 9, []float64{0.5}},
		{"special-values", 2, 1, 1 << 20, 1, []float64{math.Inf(1), math.Copysign(0, -1), math.MaxFloat64}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame := encodeDataFrame(3, tc.src, tc.dst, tc.tag, tc.seq, tc.data)
			payload, err := readWireFrame(bytes.NewReader(frame))
			if err != nil {
				t.Fatal(err)
			}
			m, err := decodeFrame(payload)
			if err != nil {
				t.Fatal(err)
			}
			if m.kind != frameData || m.epoch != 3 || m.src != tc.src || m.dst != tc.dst ||
				m.tag != tc.tag || m.seq != tc.seq {
				t.Fatalf("decoded header %+v", m)
			}
			want := tc.data
			if want == nil {
				want = []float64{}
			}
			got := m.data
			if got == nil {
				got = []float64{}
			}
			// Bit-level comparison: NaN payloads and signed zeros must
			// survive the wire exactly.
			if len(got) != len(want) {
				t.Fatalf("decoded %d values, want %d", len(got), len(want))
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Errorf("value %d: %x, want %x", i, math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		})
	}
}

func TestWireAbortFrameRoundTrip(t *testing.T) {
	frame := encodeAbortFrame(9, "rank 3 panicked: boom")
	payload, err := readWireFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	m, err := decodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	if m.kind != frameAbort || m.epoch != 9 || m.cause != "rank 3 panicked: boom" {
		t.Fatalf("decoded %+v", m)
	}
}

// TestWireFrameCorruptionDetected flips every byte position in turn:
// the CRC (or, for the two length bytes that survive it, the length
// sanity check) must reject each mutation — no corrupt frame decodes.
func TestWireFrameCorruptionDetected(t *testing.T) {
	frame := encodeDataFrame(0, 1, 2, 3, 4, []float64{1, 2, 3})
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x40
		payload, err := readWireFrame(bytes.NewReader(mut))
		if err != nil {
			continue // rejected by length or checksum: good
		}
		// A flipped length byte can shorten the declared frame; the CRC
		// over the shorter payload must then fail. Reaching here with a
		// successfully verified payload means corruption went unnoticed.
		if m, derr := decodeFrame(payload); derr == nil {
			if reflect.DeepEqual(m.data, []float64{1, 2, 3}) && m.src == 1 && m.dst == 2 {
				continue // the flip hit redundant padding that round-tripped identically (impossible for this format)
			}
			t.Fatalf("byte %d flip decoded silently to %+v", i, m)
		}
	}
}

func TestWireTruncationDetected(t *testing.T) {
	frame := encodeDataFrame(0, 1, 2, 3, 4, []float64{1, 2})
	for cut := 1; cut < len(frame); cut++ {
		if _, err := readWireFrame(bytes.NewReader(frame[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes read a full frame", cut)
		}
	}
}

func TestWireHandshake(t *testing.T) {
	var buf bytes.Buffer
	if err := writeHandshake(&buf, 7); err != nil {
		t.Fatal(err)
	}
	shard, err := readHandshake(&buf)
	if err != nil || shard != 7 {
		t.Fatalf("handshake -> shard %d, err %v", shard, err)
	}
	bad := bytes.NewReader([]byte("NOTMAGIC\x00\x00\x00\x07"))
	if _, err := readHandshake(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}
