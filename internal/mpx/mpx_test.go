package mpx

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestPingPong(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(r *Rank) {
		switch r.ID() {
		case 0:
			r.Send(1, 7, []float64{1, 2, 3})
			got := r.Recv(1, 8)
			if len(got) != 1 || got[0] != 6 {
				t.Errorf("rank 0 got %v", got)
			}
		case 1:
			in := r.Recv(0, 7)
			var s float64
			for _, v := range in {
				s += v
			}
			r.Send(0, 8, []float64{s})
		}
	})
}

func TestSendCopiesData(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			buf := []float64{1}
			r.Send(1, 0, buf)
			buf[0] = 99 // must not affect the delivered message
		} else {
			if got := r.Recv(0, 0); got[0] != 1 {
				t.Errorf("message aliased sender buffer: %v", got)
			}
		}
	})
}

func TestOutOfOrderTags(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 1, []float64{10})
			r.Send(1, 2, []float64{20})
			r.Send(1, 3, []float64{30})
		} else {
			// Receive in reverse order; matching must skip queued
			// messages with other tags.
			if got := r.Recv(0, 3); got[0] != 30 {
				t.Errorf("tag 3 = %v", got)
			}
			if got := r.Recv(0, 1); got[0] != 10 {
				t.Errorf("tag 1 = %v", got)
			}
			if got := r.Recv(0, 2); got[0] != 20 {
				t.Errorf("tag 2 = %v", got)
			}
		}
	})
}

func TestSameTagFIFO(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(r *Rank) {
		if r.ID() == 0 {
			for i := 0; i < 10; i++ {
				r.Send(1, 0, []float64{float64(i)})
			}
		} else {
			for i := 0; i < 10; i++ {
				if got := r.Recv(0, 0); got[0] != float64(i) {
					t.Errorf("message %d out of order: %v", i, got)
				}
			}
		}
	})
}

func TestSelfSend(t *testing.T) {
	w := NewWorld(1)
	w.Run(func(r *Rank) {
		r.Send(0, 5, []float64{42})
		if got := r.Recv(0, 5); got[0] != 42 {
			t.Errorf("self-send = %v", got)
		}
	})
}

func TestBarrierSeparatesPhases(t *testing.T) {
	const n = 8
	w := NewWorld(n)
	var phase1 int32
	w.Run(func(r *Rank) {
		atomic.AddInt32(&phase1, 1)
		r.Barrier()
		// After the barrier every rank must observe all n increments.
		if got := atomic.LoadInt32(&phase1); got != n {
			t.Errorf("rank %d saw %d after barrier", r.ID(), got)
		}
	})
}

func TestBarrierReusable(t *testing.T) {
	const n, rounds = 4, 50
	w := NewWorld(n)
	var counter int32
	w.Run(func(r *Rank) {
		for round := 0; round < rounds; round++ {
			atomic.AddInt32(&counter, 1)
			r.Barrier()
			want := int32((round + 1) * n)
			if got := atomic.LoadInt32(&counter); got != want {
				t.Errorf("round %d: counter %d want %d", round, got, want)
			}
			r.Barrier()
		}
	})
}

func TestAllReduceSum(t *testing.T) {
	const n = 6
	w := NewWorld(n)
	w.Run(func(r *Rank) {
		got := r.AllReduceSum(float64(r.ID() + 1))
		if got != n*(n+1)/2 {
			t.Errorf("rank %d: sum = %v", r.ID(), got)
		}
	})
}

func TestAllGather(t *testing.T) {
	const n = 5
	w := NewWorld(n)
	w.Run(func(r *Rank) {
		vals := r.AllGather(float64(r.ID() * 10))
		if len(vals) != n {
			t.Fatalf("len = %d", len(vals))
		}
		for i, v := range vals {
			if v != float64(i*10) {
				t.Errorf("rank %d: vals[%d] = %v", r.ID(), i, v)
			}
		}
	})
}

func TestBcast(t *testing.T) {
	const n = 4
	w := NewWorld(n)
	w.Run(func(r *Rank) {
		var in []float64
		if r.ID() == 2 {
			in = []float64{3.14, 2.71}
		}
		got := r.Bcast(2, in)
		if len(got) != 2 || got[0] != 3.14 || got[1] != 2.71 {
			t.Errorf("rank %d: bcast = %v", r.ID(), got)
		}
	})
}

func TestCollectivesRepeatedly(t *testing.T) {
	// Back-to-back collectives must not cross-talk.
	const n = 4
	w := NewWorld(n)
	w.Run(func(r *Rank) {
		for i := 0; i < 20; i++ {
			s := r.AllReduceSum(float64(i))
			if s != float64(i*n) {
				t.Errorf("iteration %d: %v", i, s)
			}
		}
	})
}

func TestAllToAllNoDeadlock(t *testing.T) {
	// Every rank sends a large message to every other rank before
	// receiving anything: buffered sends must prevent deadlock.
	const n = 8
	w := NewWorld(n)
	payload := make([]float64, 4096)
	w.Run(func(r *Rank) {
		for dst := 0; dst < n; dst++ {
			if dst != r.ID() {
				r.Send(dst, r.ID(), payload)
			}
		}
		for src := 0; src < n; src++ {
			if src != r.ID() {
				if got := r.Recv(src, src); len(got) != len(payload) {
					t.Errorf("short message from %d", src)
				}
			}
		}
	})
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic to propagate")
		}
	}()
	NewWorld(3).Run(func(r *Rank) {
		if r.ID() == 1 {
			panic("boom")
		}
	})
}

func TestValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad world size")
		}
	}()
	NewWorld(0)
}

func TestBadEndpointsPanic(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Send to bad rank must panic")
				}
			}()
			r.Send(5, 0, nil)
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Recv from bad rank must panic")
				}
			}()
			r.Recv(-1, 0)
		}()
	})
}

func TestReduceMatchesSequential(t *testing.T) {
	const n = 7
	w := NewWorld(n)
	w.Run(func(r *Rank) {
		x := math.Sqrt(float64(r.ID() + 1))
		got := r.AllReduceSum(x)
		var want float64
		for i := 1; i <= n; i++ {
			want += math.Sqrt(float64(i))
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("sum = %v want %v", got, want)
		}
	})
}
