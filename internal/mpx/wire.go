package mpx

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Wire format, reusing the CRC32 framing idiom of internal/ckpt: a
// connection handshake (magic + shard id) followed by a stream of
// length-prefixed checksummed frames, each tagged by (src, dst, tag,
// seq) so the receiver can verify per-pair FIFO continuity.
//
//	handshake: "SAMRWIR1" | uint32 BE shard id        (12 bytes)
//	frame:     uint32 BE payload len | uint32 BE CRC32-IEEE | payload
//	payload:   kind byte (1 data, 2 abort, 3 heartbeat) | uint32 BE epoch | body
//	data body: int32 BE src | int32 BE dst | int32 BE tag |
//	           uint64 BE seq | count × uint64 BE float64 bits
//	abort body: UTF-8 cause
//	heartbeat: no body — its arrival alone refreshes the peer's read
//	           deadline, so an idle-but-alive shard is distinguishable
//	           from a dead or stopped one
//
// Tags travel as int32 two's complement so the collectives' reserved
// negative tags survive the wire.
const (
	wireMagic = "SAMRWIR1"
	// wireHdr is the per-frame length + CRC prefix.
	wireHdr = 8
	// maxWireFrame caps a frame's declared length; larger is a corrupt
	// length field, not a plausible message.
	maxWireFrame = 1 << 31

	frameData      = 1
	frameAbort     = 2
	frameHeartbeat = 3

	// dataHdr is the data body's fixed prefix: kind + epoch + src +
	// dst + tag + seq.
	dataHdr = 1 + 4 + 4 + 4 + 4 + 8
)

// wireMsg is one decoded frame.
type wireMsg struct {
	kind  byte
	epoch uint32
	// data frames
	src, dst, tag int
	seq           uint64
	data          []float64
	// abort frames
	cause string
}

// encodeDataFrame assembles one framed data message.
func encodeDataFrame(epoch uint32, src, dst, tag int, seq uint64, data []float64) []byte {
	n := dataHdr + 8*len(data)
	buf := make([]byte, wireHdr+n)
	p := buf[wireHdr:]
	p[0] = frameData
	binary.BigEndian.PutUint32(p[1:5], epoch)
	binary.BigEndian.PutUint32(p[5:9], uint32(int32(src)))
	binary.BigEndian.PutUint32(p[9:13], uint32(int32(dst)))
	binary.BigEndian.PutUint32(p[13:17], uint32(int32(tag)))
	binary.BigEndian.PutUint64(p[17:25], seq)
	off := dataHdr
	for _, v := range data {
		binary.BigEndian.PutUint64(p[off:off+8], math.Float64bits(v))
		off += 8
	}
	sealFrame(buf)
	return buf
}

// encodeAbortFrame assembles one framed abort notification.
func encodeAbortFrame(epoch uint32, cause string) []byte {
	n := 1 + 4 + len(cause)
	buf := make([]byte, wireHdr+n)
	p := buf[wireHdr:]
	p[0] = frameAbort
	binary.BigEndian.PutUint32(p[1:5], epoch)
	copy(p[5:], cause)
	sealFrame(buf)
	return buf
}

// encodeHeartbeatFrame assembles one framed liveness beacon.
func encodeHeartbeatFrame(epoch uint32) []byte {
	buf := make([]byte, wireHdr+5)
	p := buf[wireHdr:]
	p[0] = frameHeartbeat
	binary.BigEndian.PutUint32(p[1:5], epoch)
	sealFrame(buf)
	return buf
}

// sealFrame writes the length + CRC prefix over the payload in place.
func sealFrame(buf []byte) {
	payload := buf[wireHdr:]
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
}

// decodeFrame parses and validates one payload (the bytes after the
// length + CRC prefix, already checksum-verified by readWireFrame).
func decodeFrame(payload []byte) (wireMsg, error) {
	if len(payload) < 5 {
		return wireMsg{}, fmt.Errorf("mpx: frame payload too short (%d bytes)", len(payload))
	}
	m := wireMsg{kind: payload[0], epoch: binary.BigEndian.Uint32(payload[1:5])}
	switch m.kind {
	case frameData:
		if len(payload) < dataHdr {
			return wireMsg{}, fmt.Errorf("mpx: truncated data frame (%d bytes)", len(payload))
		}
		if (len(payload)-dataHdr)%8 != 0 {
			return wireMsg{}, fmt.Errorf("mpx: data frame body not a float64 multiple (%d bytes)", len(payload)-dataHdr)
		}
		m.src = int(int32(binary.BigEndian.Uint32(payload[5:9])))
		m.dst = int(int32(binary.BigEndian.Uint32(payload[9:13])))
		m.tag = int(int32(binary.BigEndian.Uint32(payload[13:17])))
		m.seq = binary.BigEndian.Uint64(payload[17:25])
		count := (len(payload) - dataHdr) / 8
		m.data = make([]float64, count)
		off := dataHdr
		for i := range m.data {
			m.data[i] = math.Float64frombits(binary.BigEndian.Uint64(payload[off : off+8]))
			off += 8
		}
	case frameAbort:
		m.cause = string(payload[5:])
	case frameHeartbeat:
		// Liveness only: the kind and epoch already parsed above are all
		// there is.
	default:
		return wireMsg{}, fmt.Errorf("mpx: unknown frame kind %d", m.kind)
	}
	return m, nil
}

// readWireFrame reads one length-prefixed frame from r and verifies
// its checksum, returning the raw payload.
func readWireFrame(r io.Reader) ([]byte, error) {
	var hdr [wireHdr]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	sum := binary.BigEndian.Uint32(hdr[4:8])
	if n > maxWireFrame {
		return nil, fmt.Errorf("mpx: absurd frame length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("mpx: frame checksum mismatch: stored %08x, computed %08x", sum, got)
	}
	return payload, nil
}

// writeHandshake sends the connection preamble identifying the local
// shard.
func writeHandshake(w io.Writer, shard int) error {
	var buf [len(wireMagic) + 4]byte
	copy(buf[:], wireMagic)
	binary.BigEndian.PutUint32(buf[len(wireMagic):], uint32(shard))
	_, err := w.Write(buf[:])
	return err
}

// readHandshake validates the preamble and returns the peer's shard.
func readHandshake(r io.Reader) (int, error) {
	var buf [len(wireMagic) + 4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	if string(buf[:len(wireMagic)]) != wireMagic {
		return 0, fmt.Errorf("mpx: bad handshake magic %q", buf[:len(wireMagic)])
	}
	return int(binary.BigEndian.Uint32(buf[len(wireMagic):])), nil
}
