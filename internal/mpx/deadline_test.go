package mpx

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// recordSink captures wire aborts for assertions.
type recordSink struct {
	mu     sync.Mutex
	aborts []string
}

func (r *recordSink) Deliver(src, dst, tag int, data []float64) {}

func (r *recordSink) AbortFromWire(cause string) {
	r.mu.Lock()
	r.aborts = append(r.aborts, cause)
	r.mu.Unlock()
}

func (r *recordSink) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.aborts)
}

// pairEndpoints connects two endpoints (0 dials 1) with the given wire
// timeouts and stub sinks, returning them plus a cleanup.
func pairEndpoints(t *testing.T, to0, to1 time.Duration) (*TCPEndpoint, *TCPEndpoint, *recordSink, *recordSink) {
	t.Helper()
	shardOf := func(rank int) int { return rank % 2 }
	a, err := ListenTCP(0, "127.0.0.1:0", shardOf)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenTCP(1, "127.0.0.1:0", shardOf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	a.SetWireTimeout(to0)
	b.SetWireTimeout(to1)
	sa, sb := &recordSink{}, &recordSink{}
	a.Bind(sa)
	b.Bind(sb)
	if err := a.Dial(1, b.Addr()); err != nil {
		t.Fatal(err)
	}
	return a, b, sa, sb
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestWireTimeoutPoisonsSilentPeer pins the read-deadline path: a peer
// that sends nothing — no data, no heartbeats (its own timeout is 0,
// so it runs no heartbeat sender) — must poison the endpoint within
// the configured timeout, waking anything blocked on a receive.
func TestWireTimeoutPoisonsSilentPeer(t *testing.T) {
	const d = 150 * time.Millisecond
	a, _, sa, _ := pairEndpoints(t, d, 0)
	waitFor(t, 10*d, func() bool { return a.Err() != nil }, "silent peer never timed out")
	if !strings.Contains(a.Err().Error(), "wire timeout") {
		t.Fatalf("expected a wire timeout error, got %v", a.Err())
	}
	if a.Timeouts() == 0 {
		t.Fatal("timeout not counted")
	}
	if sa.count() == 0 {
		t.Fatal("timeout did not abort the bound sink")
	}
}

// TestHeartbeatsPreventFalseTimeout pins the liveness protocol: two
// idle endpoints that both heartbeat must sit well past the timeout
// without either side poisoning.
func TestHeartbeatsPreventFalseTimeout(t *testing.T) {
	const d = 200 * time.Millisecond
	a, b, sa, sb := pairEndpoints(t, d, d)
	time.Sleep(5 * d)
	if err := a.Err(); err != nil {
		t.Fatalf("endpoint 0 poisoned while idle: %v", err)
	}
	if err := b.Err(); err != nil {
		t.Fatalf("endpoint 1 poisoned while idle: %v", err)
	}
	if n := a.Timeouts() + b.Timeouts(); n != 0 {
		t.Fatalf("%d spurious timeouts on an idle heartbeating pair", n)
	}
	if sa.count()+sb.count() != 0 {
		t.Fatal("spurious aborts on an idle heartbeating pair")
	}
	// Heartbeats are liveness-only: nothing may leak into the
	// deterministic frame statistics.
	if f, by := a.Stats(); f != 0 || by != 0 {
		t.Fatalf("heartbeats counted as data frames: %d frames, %d bytes", f, by)
	}
}

// TestPeerLossPoisonsWithoutDeadline pins the EOF path: a peer that
// hangs up while we are live is a crashed peer, and the endpoint must
// poison immediately — no deadline configured, no hang.
func TestPeerLossPoisonsWithoutDeadline(t *testing.T) {
	a, b, sa, _ := pairEndpoints(t, 0, 0)
	b.Close()
	waitFor(t, 5*time.Second, func() bool { return a.Err() != nil }, "peer loss never detected")
	if !strings.Contains(a.Err().Error(), "connection to shard 1 lost") {
		t.Fatalf("expected a connection-lost error, got %v", a.Err())
	}
	if sa.count() == 0 {
		t.Fatal("peer loss did not abort the bound sink")
	}
}

// TestDialRetryWaitsForLateListener pins the backoff dial: the target
// endpoint comes up only after a delay, and DialRetry must connect
// anyway — shard startup order must not matter.
func TestDialRetryWaitsForLateListener(t *testing.T) {
	shardOf := func(rank int) int { return rank % 2 }
	a, err := ListenTCP(0, "127.0.0.1:0", shardOf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	// Reserve an address, release it, bring the real endpoint up on it
	// after a delay.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	var bmu sync.Mutex
	var b *TCPEndpoint
	go func() {
		time.Sleep(300 * time.Millisecond)
		ep, err := ListenTCP(1, addr, shardOf)
		if err != nil {
			return // port raced away; DialRetry will fail the test below
		}
		ep.Bind(&recordSink{})
		bmu.Lock()
		b = ep
		bmu.Unlock()
	}()
	t.Cleanup(func() {
		bmu.Lock()
		defer bmu.Unlock()
		if b != nil {
			b.Close()
		}
	})
	if err := a.DialRetry(1, addr, 10*time.Second); err != nil {
		t.Fatalf("DialRetry never reached the late listener: %v", err)
	}
}

// TestDialRetryGivesUp pins the bounded budget: a peer that never
// appears must produce an error, not an infinite loop.
func TestDialRetryGivesUp(t *testing.T) {
	shardOf := func(rank int) int { return rank % 2 }
	a, err := ListenTCP(0, "127.0.0.1:0", shardOf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	start := time.Now()
	if err := a.DialRetry(1, addr, 400*time.Millisecond); err == nil {
		t.Fatal("DialRetry succeeded against a dead address")
	}
	if e := time.Since(start); e > 5*time.Second {
		t.Fatalf("DialRetry overshot its budget: %v", e)
	}
}
