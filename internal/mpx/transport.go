package mpx

import (
	"fmt"
	"sync"
)

// Transport carries messages between shard worlds. Send must copy or
// serialise data before returning (the caller reuses the slice) and
// must preserve per-(src, dst) order — mailbox matching is FIFO per
// (source, tag), so an order-preserving transport keeps shard-world
// semantics identical to the all-local world. Abort propagates a
// failure to peer shards so their blocked ranks wake instead of
// deadlocking; it is best-effort (an unreachable peer is already
// failing). Close releases the transport's resources.
type Transport interface {
	Send(src, dst, tag int, data []float64) error
	Abort(cause string)
	Close() error
}

// Sink receives messages arriving from a Transport's receive path.
// *World implements it.
type Sink interface {
	Deliver(src, dst, tag int, data []float64)
	AbortFromWire(cause string)
}

// TransportError is the panic value a rank raises when its send could
// not be carried: the computation is fine, the wire is not. Callers
// that recover a RunPanicError whose panics are TransportOnly can
// fall back to a local data path and fold the failure into their
// health machinery.
type TransportError struct {
	Src, Dst, Tag int
	Err           error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("mpx: transport send %d -> %d (tag %d): %v", e.Src, e.Dst, e.Tag, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// AbortError is the panic value a blocked rank raises when its world
// aborts underneath it — another rank panicked, locally or on a peer
// shard. It is a secondary failure: Primary() on the aggregated
// RunPanicError identifies the cause.
type AbortError struct {
	Cause string
}

func (e *AbortError) Error() string { return "mpx: world aborted: " + e.Cause }

// LocalFabric connects shard worlds in-process without sockets: an
// order-preserving, error-free Transport used to exercise the shard
// seam deterministically (tests) and by callers that want shard
// semantics — local barriers, explicit delivery — without the wire.
// A FaultFunc can force sends to fail, to test the abort/fallback
// path.
type LocalFabric struct {
	shardOf func(rank int) int

	mu    sync.Mutex
	sinks map[int]Sink
	fault func(src, dst, tag int) error
}

// NewLocalFabric creates a fabric routing rank r to shard shardOf(r).
func NewLocalFabric(shardOf func(rank int) int) *LocalFabric {
	if shardOf == nil {
		panic("mpx.NewLocalFabric: shardOf is required")
	}
	return &LocalFabric{shardOf: shardOf, sinks: make(map[int]Sink)}
}

// Bind attaches shard's sink (its world).
func (f *LocalFabric) Bind(shard int, s Sink) {
	f.mu.Lock()
	f.sinks[shard] = s
	f.mu.Unlock()
}

// SetFault installs a send-failure injector (nil clears it).
func (f *LocalFabric) SetFault(fn func(src, dst, tag int) error) {
	f.mu.Lock()
	f.fault = fn
	f.mu.Unlock()
}

// Endpoint returns the Transport view one shard uses.
func (f *LocalFabric) Endpoint(shard int) Transport {
	return &fabricEndpoint{f: f, shard: shard}
}

type fabricEndpoint struct {
	f     *LocalFabric
	shard int
}

func (e *fabricEndpoint) Send(src, dst, tag int, data []float64) error {
	e.f.mu.Lock()
	fault := e.f.fault
	sink := e.f.sinks[e.f.shardOf(dst)]
	e.f.mu.Unlock()
	if fault != nil {
		if err := fault(src, dst, tag); err != nil {
			return err
		}
	}
	if sink == nil {
		return fmt.Errorf("mpx: no sink bound for shard %d", e.f.shardOf(dst))
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	sink.Deliver(src, dst, tag, cp)
	return nil
}

func (e *fabricEndpoint) Abort(cause string) {
	e.f.mu.Lock()
	sinks := make([]Sink, 0, len(e.f.sinks))
	for shard, s := range e.f.sinks {
		if shard != e.shard {
			sinks = append(sinks, s)
		}
	}
	e.f.mu.Unlock()
	for _, s := range sinks {
		s.AbortFromWire(cause)
	}
}

func (e *fabricEndpoint) Close() error { return nil }
