// Package mpx is a minimal in-process message-passing runtime in the
// style of MPI, the substrate ENZO uses for inter-processor
// communication. A World holds n ranks; each rank runs on its own
// goroutine with point-to-point tagged sends and receives, barriers,
// and the collectives the SAMR machinery needs (reduce, gather,
// broadcast).
//
// Sends are buffered and never block (mailboxes grow as needed), so
// bulk-synchronous exchange patterns — every rank posting all its
// sends, then draining its receives — cannot deadlock. Receives match
// (source, tag) pairs and tolerate out-of-order arrival.
package mpx

import (
	"fmt"
	"sync"
)

// World is a communicator over n ranks.
type World struct {
	n     int
	boxes [][]*mailbox // boxes[dst][src]
	bar   *barrier
}

// NewWorld creates a communicator with n ranks.
func NewWorld(n int) *World {
	if n <= 0 {
		panic("mpx.NewWorld: need at least one rank")
	}
	w := &World{n: n, bar: newBarrier(n)}
	w.boxes = make([][]*mailbox, n)
	for dst := 0; dst < n; dst++ {
		w.boxes[dst] = make([]*mailbox, n)
		for src := 0; src < n; src++ {
			w.boxes[dst][src] = newMailbox()
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Run executes body once per rank, each on its own goroutine, and
// waits for all of them. A panic in any rank is re-raised in the
// caller after the others finish.
func (w *World) Run(body func(r *Rank)) {
	var wg sync.WaitGroup
	panics := make([]interface{}, w.n)
	wg.Add(w.n)
	for i := 0; i < w.n; i++ {
		go func(id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[id] = p
				}
			}()
			body(&Rank{world: w, id: id})
		}(i)
	}
	wg.Wait()
	for id, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("mpx: rank %d panicked: %v", id, p))
		}
	}
}

// Rank is one process of the world, valid only inside Run's body.
type Rank struct {
	world *World
	id    int
}

// ID returns the rank index in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.n }

// Send delivers data to rank `to` under the given tag. The slice is
// copied; Send never blocks. Sending to oneself is allowed.
func (r *Rank) Send(to, tag int, data []float64) {
	if to < 0 || to >= r.world.n {
		panic(fmt.Sprintf("mpx.Send: bad destination %d", to))
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	r.world.boxes[to][r.id].put(message{tag: tag, data: cp})
}

// Recv blocks until a message with the given tag arrives from rank
// `from` and returns its payload. Messages from the same source with
// other tags are queued, not lost.
func (r *Rank) Recv(from, tag int) []float64 {
	if from < 0 || from >= r.world.n {
		panic(fmt.Sprintf("mpx.Recv: bad source %d", from))
	}
	return r.world.boxes[r.id][from].take(tag)
}

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier() { r.world.bar.await() }

// reserved tag space for collectives; user tags must be >= 0.
const (
	tagReduce = -1 - iota
	tagBcast
	tagGather
)

// AllReduceSum returns the sum of x over all ranks, on every rank.
func (r *Rank) AllReduceSum(x float64) float64 {
	vals := r.AllGather(x)
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum
}

// AllGather returns every rank's x, indexed by rank, on every rank.
func (r *Rank) AllGather(x float64) []float64 {
	n := r.world.n
	if r.id == 0 {
		out := make([]float64, n)
		out[0] = x
		for src := 1; src < n; src++ {
			out[src] = r.Recv(src, tagGather)[0]
		}
		for dst := 1; dst < n; dst++ {
			r.Send(dst, tagGather, out)
		}
		return out
	}
	r.Send(0, tagGather, []float64{x})
	return r.Recv(0, tagGather)
}

// Bcast distributes root's data to every rank; non-root ranks pass
// nil (or anything) and receive the root's payload.
func (r *Rank) Bcast(root int, data []float64) []float64 {
	if r.id == root {
		for dst := 0; dst < r.world.n; dst++ {
			if dst != root {
				r.Send(dst, tagBcast, data)
			}
		}
		cp := make([]float64, len(data))
		copy(cp, data)
		return cp
	}
	return r.Recv(root, tagBcast)
}

// message is one queued transfer.
type message struct {
	tag  int
	data []float64
}

// mailbox is an unbounded (src → dst) queue with tag matching.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.pending = append(m.pending, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

func (m *mailbox) take(tag int) []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.pending {
			if msg.tag == tag {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				return msg.data
			}
		}
		m.cond.Wait()
	}
}

// barrier is a reusable counting barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
}
