// Package mpx is a minimal in-process message-passing runtime in the
// style of MPI, the substrate ENZO uses for inter-processor
// communication. A World holds n ranks; each rank runs on its own
// goroutine with point-to-point tagged sends and receives, barriers,
// and the collectives the SAMR machinery needs (reduce, gather,
// broadcast).
//
// Sends are buffered and never block (mailboxes grow as needed), so
// bulk-synchronous exchange patterns — every rank posting all its
// sends, then draining its receives — cannot deadlock. Receives match
// (source, tag) pairs and tolerate out-of-order arrival.
//
// A world can also host only a subset ("shard") of its ranks, with
// the rest living behind a Transport (see NewShardWorld): sends to a
// remote rank are carried by the transport, receives from remote
// ranks are satisfied by frames the transport delivers into the local
// mailboxes, and barriers synchronise only the local ranks. Because
// mailboxes match (source, tag) FIFO and the transports preserve
// per-connection order, point-to-point semantics are identical to the
// all-local world.
package mpx

import (
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
)

// World is a communicator over n ranks.
type World struct {
	n     int
	boxes [][]*mailbox // boxes[dst][src]
	bar   *barrier

	// Sharding seam. For the classic all-local world shardOf is nil
	// and local covers every rank; a shard world hosts only the ranks
	// with shardOf[rank] == self and routes the rest through tr.
	local   []int
	shardOf []int
	self    int
	tr      Transport

	aborted atomic.Bool
	cause   atomic.Value // string; first abort cause wins
}

// NewWorld creates a communicator with n ranks, all hosted locally.
func NewWorld(n int) *World {
	if n <= 0 {
		panic("mpx.NewWorld: need at least one rank")
	}
	w := newWorldCommon(n)
	w.local = make([]int, n)
	for i := range w.local {
		w.local[i] = i
	}
	w.bar = newBarrier(w, n)
	return w
}

// NewShardWorld creates a communicator over n ranks of which only the
// ranks with shardOf(rank) == self run locally; sends to the others
// travel over tr, and their sends arrive via Deliver (the transport
// calls it from its receive path). Barriers synchronise the local
// ranks only — cross-shard phases rely on tag matching, and the
// caller joins the shards between phases.
func NewShardWorld(n int, shardOf func(rank int) int, self int, tr Transport) *World {
	if n <= 0 {
		panic("mpx.NewShardWorld: need at least one rank")
	}
	if shardOf == nil || tr == nil {
		panic("mpx.NewShardWorld: shardOf and transport are required")
	}
	w := newWorldCommon(n)
	w.shardOf = make([]int, n)
	w.self = self
	w.tr = tr
	for r := 0; r < n; r++ {
		w.shardOf[r] = shardOf(r)
		if w.shardOf[r] == self {
			w.local = append(w.local, r)
		}
	}
	if len(w.local) == 0 {
		panic(fmt.Sprintf("mpx.NewShardWorld: shard %d hosts no ranks", self))
	}
	w.bar = newBarrier(w, len(w.local))
	return w
}

func newWorldCommon(n int) *World {
	w := &World{n: n}
	w.boxes = make([][]*mailbox, n)
	for dst := 0; dst < n; dst++ {
		w.boxes[dst] = make([]*mailbox, n)
		for src := 0; src < n; src++ {
			w.boxes[dst][src] = newMailbox(w)
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// LocalRanks returns the rank IDs hosted by this world (all of them
// for a classic world, the shard's subset for a shard world).
func (w *World) LocalRanks() []int { return append([]int(nil), w.local...) }

// RankPanic records one rank's panic with the original value and the
// goroutine stack it unwound.
type RankPanic struct {
	Rank  int
	Value interface{}
	Stack []byte
}

// RunPanicError aggregates every rank panic of one Run call. Run
// re-raises it as the panic value, so callers recover the original
// per-rank values instead of a flattened string.
type RunPanicError struct {
	Panics []RankPanic
}

func (e *RunPanicError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mpx: %d rank(s) panicked:", len(e.Panics))
	for _, p := range e.Panics {
		fmt.Fprintf(&b, " [rank %d: %v]", p.Rank, p.Value)
	}
	return b.String()
}

// Primary returns the first panic that is not a secondary AbortError
// (falling back to the first panic of any kind): the failure that
// aborted the phase, as opposed to the ranks it woke up.
func (e *RunPanicError) Primary() *RankPanic {
	for i := range e.Panics {
		if _, ok := e.Panics[i].Value.(*AbortError); !ok {
			return &e.Panics[i]
		}
	}
	if len(e.Panics) > 0 {
		return &e.Panics[0]
	}
	return nil
}

// TransportOnly reports whether every panic is either a transport
// failure or a secondary abort — i.e. the phase failed purely because
// the wire did, and the computation itself never misbehaved.
func (e *RunPanicError) TransportOnly() bool {
	if len(e.Panics) == 0 {
		return false
	}
	for _, p := range e.Panics {
		switch p.Value.(type) {
		case *TransportError, *AbortError:
		default:
			return false
		}
	}
	return true
}

// Run executes body once per locally hosted rank, each on its own
// goroutine, and waits for all of them. If any rank panics the world
// aborts: blocked ranks are woken with an AbortError, the transport
// (if any) propagates the abort to peer shards, and Run re-raises a
// *RunPanicError aggregating every rank's original panic value.
//
// A world that is already aborted when Run is called fails immediately
// with a secondary AbortError per local rank: on a shard world a peer
// shard can fail the current phase (and propagate its abort over the
// wire) before this shard's Run has even started, and that race must
// surface as the same transport-only failure the caller's fallback
// path already handles — Reset clears it.
func (w *World) Run(body func(r *Rank)) {
	if w.aborted.Load() {
		var agg RunPanicError
		for _, id := range w.local {
			agg.Panics = append(agg.Panics, RankPanic{
				Rank:  id,
				Value: &AbortError{Cause: w.abortCause()},
				Stack: debug.Stack(),
			})
		}
		panic(&agg)
	}
	var wg sync.WaitGroup
	panics := make([]*RankPanic, len(w.local))
	wg.Add(len(w.local))
	for i, id := range w.local {
		go func(slot, id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[slot] = &RankPanic{Rank: id, Value: p, Stack: debug.Stack()}
					// Wake ranks blocked on this one so the Run joins
					// instead of deadlocking.
					w.abort(fmt.Sprintf("rank %d panicked: %v", id, p), false)
				}
			}()
			body(&Rank{world: w, id: id})
		}(i, id)
	}
	wg.Wait()
	var agg RunPanicError
	for _, p := range panics {
		if p != nil {
			agg.Panics = append(agg.Panics, *p)
		}
	}
	if len(agg.Panics) > 0 {
		panic(&agg)
	}
}

// abort wakes every blocked local rank (they panic with AbortError)
// and, unless the abort itself arrived over the wire, asks the
// transport to propagate it to peer shards. First cause wins.
func (w *World) abort(cause string, fromWire bool) {
	if !w.aborted.CompareAndSwap(false, true) {
		return
	}
	w.cause.Store(cause)
	for _, dst := range w.local {
		for _, box := range w.boxes[dst] {
			box.wake()
		}
	}
	w.bar.wake()
	if !fromWire && w.tr != nil {
		w.tr.Abort(cause)
	}
}

// AbortFromWire aborts the world on behalf of a remote shard (called
// by transports from their receive path).
func (w *World) AbortFromWire(cause string) { w.abort(cause, true) }

// Deliver places a transported message into the destination rank's
// mailbox; the transport's receive path calls it. The payload's
// ownership passes to the mailbox.
func (w *World) Deliver(src, dst, tag int, data []float64) {
	if src < 0 || src >= w.n || dst < 0 || dst >= w.n {
		panic(fmt.Sprintf("mpx.Deliver: bad endpoints %d -> %d", src, dst))
	}
	w.boxes[dst][src].put(message{tag: tag, data: data})
}

// Reset clears an aborted world for reuse: drains every mailbox
// (messages from the aborted phase must not leak tags into the next
// one), rearms the barrier, and clears the abort flag. The caller
// must Reset the transport's sequence/epoch state alongside.
func (w *World) Reset() {
	for dst := range w.boxes {
		for _, box := range w.boxes[dst] {
			box.reset()
		}
	}
	w.bar.reset()
	w.cause.Store("")
	w.aborted.Store(false)
}

// abortCause returns the recorded cause ("" when not aborted).
func (w *World) abortCause() string {
	if c, ok := w.cause.Load().(string); ok {
		return c
	}
	return ""
}

// Rank is one process of the world, valid only inside Run's body.
type Rank struct {
	world *World
	id    int
}

// ID returns the rank index in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.n }

// Send delivers data to rank `to` under the given tag. The slice is
// copied (or serialised) before Send returns; Send never blocks.
// Sending to oneself is allowed. User tags must be >= 0 — negative
// tags are reserved for the collectives and would corrupt them.
func (r *Rank) Send(to, tag int, data []float64) {
	if tag < 0 {
		panic(fmt.Sprintf("mpx.Send: negative tag %d is reserved for collectives", tag))
	}
	r.send(to, tag, data)
}

// send is the unchecked path the collectives use with reserved tags.
func (r *Rank) send(to, tag int, data []float64) {
	w := r.world
	if to < 0 || to >= w.n {
		panic(fmt.Sprintf("mpx.Send: bad destination %d", to))
	}
	if w.shardOf != nil && w.shardOf[to] != w.self {
		if err := w.tr.Send(r.id, to, tag, data); err != nil {
			panic(&TransportError{Src: r.id, Dst: to, Tag: tag, Err: err})
		}
		return
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	w.boxes[to][r.id].put(message{tag: tag, data: cp})
}

// Recv blocks until a message with the given tag arrives from rank
// `from` and returns its payload. Messages from the same source with
// other tags are queued, not lost. User tags must be >= 0.
func (r *Rank) Recv(from, tag int) []float64 {
	if tag < 0 {
		panic(fmt.Sprintf("mpx.Recv: negative tag %d is reserved for collectives", tag))
	}
	return r.recv(from, tag)
}

// recv is the unchecked path the collectives use with reserved tags.
func (r *Rank) recv(from, tag int) []float64 {
	if from < 0 || from >= r.world.n {
		panic(fmt.Sprintf("mpx.Recv: bad source %d", from))
	}
	return r.world.boxes[r.id][from].take(tag)
}

// Barrier blocks until every locally hosted rank has entered it.
func (r *Rank) Barrier() { r.world.bar.await() }

// reserved tag space for collectives; user tags must be >= 0.
const (
	tagReduce = -1 - iota
	tagBcast
	tagGather
)

// AllReduceSum returns the sum of x over all ranks, on every rank.
func (r *Rank) AllReduceSum(x float64) float64 {
	vals := r.AllGather(x)
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum
}

// AllGather returns every rank's x, indexed by rank, on every rank.
func (r *Rank) AllGather(x float64) []float64 {
	n := r.world.n
	if r.id == 0 {
		out := make([]float64, n)
		out[0] = x
		for src := 1; src < n; src++ {
			out[src] = r.recv(src, tagGather)[0]
		}
		for dst := 1; dst < n; dst++ {
			r.send(dst, tagGather, out)
		}
		return out
	}
	r.send(0, tagGather, []float64{x})
	return r.recv(0, tagGather)
}

// Bcast distributes root's data to every rank; non-root ranks pass
// nil (or anything) and receive the root's payload.
func (r *Rank) Bcast(root int, data []float64) []float64 {
	if r.id == root {
		for dst := 0; dst < r.world.n; dst++ {
			if dst != root {
				r.send(dst, tagBcast, data)
			}
		}
		cp := make([]float64, len(data))
		copy(cp, data)
		return cp
	}
	return r.recv(root, tagBcast)
}

// message is one queued transfer.
type message struct {
	tag  int
	data []float64
}

// smallQueueCap is the backing-array size a drained mailbox keeps; a
// queue that grew beyond it during a burst releases the array when it
// drains, so long soak runs stop pinning burst-sized buffers.
const smallQueueCap = 8

// mailbox is an unbounded (src → dst) queue with tag matching.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
	w       *World
}

func newMailbox(w *World) *mailbox {
	m := &mailbox{w: w}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.pending = append(m.pending, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

func (m *mailbox) take(tag int) []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i := range m.pending {
			if m.pending[i].tag != tag {
				continue
			}
			data := m.pending[i].data
			// Compact and zero the vacated tail slot: the shift alone
			// would leave a duplicate tail entry whose payload stays
			// reachable through the backing array forever.
			copy(m.pending[i:], m.pending[i+1:])
			last := len(m.pending) - 1
			m.pending[last] = message{}
			m.pending = m.pending[:last]
			if last == 0 && cap(m.pending) > smallQueueCap {
				m.pending = nil
			}
			return data
		}
		if m.w != nil && m.w.aborted.Load() {
			panic(&AbortError{Cause: m.w.abortCause()})
		}
		m.cond.Wait()
	}
}

// wake broadcasts under the lock so a rank between its abort check
// and cond.Wait cannot miss the wakeup.
func (m *mailbox) wake() {
	m.mu.Lock()
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (m *mailbox) reset() {
	m.mu.Lock()
	m.pending = nil
	m.mu.Unlock()
}

// queueState reports the queue length and backing capacity (tests).
func (m *mailbox) queueState() (length, capacity int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending), cap(m.pending)
}

// barrier is a reusable counting barrier over the world's local ranks.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	w     *World
	n     int
	count int
	gen   int
}

func newBarrier(w *World, n int) *barrier {
	b := &barrier{w: w, n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		if b.w != nil && b.w.aborted.Load() {
			panic(&AbortError{Cause: b.w.abortCause()})
		}
		b.cond.Wait()
	}
}

func (b *barrier) wake() {
	b.mu.Lock()
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *barrier) reset() {
	b.mu.Lock()
	b.count = 0
	b.gen++
	b.cond.Broadcast()
	b.mu.Unlock()
}
