package mpx

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// WireFault injects deterministic send failures into a TCP transport:
// DropSend is consulted with the per-(src, dst) offer index — a
// monotone count of send attempts, never reset — so a pure function
// of (src, dst, n) yields the same fates on every run.
type WireFault interface {
	DropSend(src, dst int, n uint64) bool
}

// connWait bounds how long a send waits for the peer connection to
// finish its handshake (covers the accept-side registration racing
// the first post-dial send).
const connWait = 10 * time.Second

// TCPEndpoint carries one shard's traffic over real sockets: it
// listens for peer shards, dials others (convention: the lower shard
// id dials the higher), and exchanges CRC32-framed messages tagged by
// (src, dst, tag, seq). The receive path verifies every checksum and
// per-(src, dst) sequence continuity, delivers into the bound sink
// (the shard's World), and propagates aborts. An epoch counter,
// bumped by Reset, lets the caller discard frames that straggle in
// from an aborted phase.
type TCPEndpoint struct {
	shard   int
	shardOf func(rank int) int
	ln      net.Listener

	mu       sync.Mutex
	sink     Sink
	conns    map[int]*wireConn
	connCh   chan struct{} // closed+replaced when a conn registers or the endpoint closes
	sendSeq  map[[2]int]uint64
	offerSeq map[[2]int]uint64
	fault    WireFault

	recvMu  sync.Mutex
	recvSeq map[[2]int]uint64

	epoch  atomic.Uint32
	closed atomic.Bool
	done   chan struct{} // closed once, on Close; stops heartbeat senders
	wg     sync.WaitGroup

	errMu    sync.Mutex
	firstErr error // first receive-path failure; poisons the endpoint

	// Wire deadlines (nanoseconds; 0 disables). Reads and writes that
	// exceed them fail the connection instead of blocking a phase
	// forever; heartbeat frames every hbIval keep idle-but-alive
	// connections under the read deadline.
	readTO, writeTO, hbIval atomic.Int64

	framesSent, bytesSent atomic.Int64
	framesRecv, bytesRecv atomic.Int64
	timeouts              atomic.Int64
}

// wireConn is one peer connection with serialised writes. hb marks a
// running heartbeat sender (guarded by the endpoint's mu).
type wireConn struct {
	peer int
	hb   bool
	mu   sync.Mutex
	c    net.Conn
}

var errEndpointClosed = errors.New("mpx: endpoint closed")

// ListenTCP opens a shard endpoint on addr (use "127.0.0.1:0" for an
// ephemeral localhost port) and starts accepting peer connections.
func ListenTCP(shard int, addr string, shardOf func(rank int) int) (*TCPEndpoint, error) {
	if shardOf == nil {
		return nil, fmt.Errorf("mpx.ListenTCP: shardOf is required")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("mpx.ListenTCP: %w", err)
	}
	e := &TCPEndpoint{
		shard:    shard,
		shardOf:  shardOf,
		ln:       ln,
		conns:    make(map[int]*wireConn),
		connCh:   make(chan struct{}),
		sendSeq:  make(map[[2]int]uint64),
		offerSeq: make(map[[2]int]uint64),
		recvSeq:  make(map[[2]int]uint64),
		done:     make(chan struct{}),
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the endpoint's listen address.
func (e *TCPEndpoint) Addr() string { return e.ln.Addr().String() }

// Shard returns the endpoint's shard id.
func (e *TCPEndpoint) Shard() int { return e.shard }

// Bind attaches the sink (the shard's World) that receives delivered
// messages. Must be called before any peer traffic arrives.
func (e *TCPEndpoint) Bind(s Sink) {
	e.mu.Lock()
	e.sink = s
	e.mu.Unlock()
}

// SetFault installs a deterministic send-failure injector.
func (e *TCPEndpoint) SetFault(f WireFault) {
	e.mu.Lock()
	e.fault = f
	e.mu.Unlock()
}

// SetWireTimeout bounds every wire read and write by d and starts a
// heartbeat sender (at d/3) on each subsequently registered
// connection, so a dead or stopped peer surfaces as a transport fault
// within d instead of blocking a phase forever. Call it before
// dialing or accepting peers; d <= 0 disables deadlines. Heartbeat
// frames are liveness-only: they are excluded from the frame/byte
// statistics so wall-clock timing never leaks into reported counters.
func (e *TCPEndpoint) SetWireTimeout(d time.Duration) {
	if d <= 0 {
		e.readTO.Store(0)
		e.writeTO.Store(0)
		e.hbIval.Store(0)
		return
	}
	e.readTO.Store(int64(d))
	e.writeTO.Store(int64(d))
	hb := d / 3
	if hb < time.Millisecond {
		hb = time.Millisecond
	}
	e.hbIval.Store(int64(hb))
	// A peer with a static address may have connected before the
	// timeout was configured; those connections need senders too.
	e.mu.Lock()
	for _, wc := range e.conns {
		e.startHeartbeatLocked(wc, hb)
	}
	e.mu.Unlock()
}

// startHeartbeatLocked starts one connection's heartbeat sender at
// most once. Caller holds e.mu.
func (e *TCPEndpoint) startHeartbeatLocked(wc *wireConn, interval time.Duration) {
	if wc.hb || e.closed.Load() {
		return
	}
	wc.hb = true
	e.wg.Add(1)
	go e.heartbeatLoop(wc, interval)
}

// Timeouts returns how many wire reads or writes exceeded the
// configured deadline.
func (e *TCPEndpoint) Timeouts() int64 { return e.timeouts.Load() }

// Dial connects to a peer shard and completes the handshake. Use the
// lower-dials-higher convention so each pair has exactly one
// connection.
func (e *TCPEndpoint) Dial(peer int, addr string) error {
	e.mu.Lock()
	_, dup := e.conns[peer]
	e.mu.Unlock()
	if dup {
		return fmt.Errorf("mpx: already connected to shard %d", peer)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("mpx: dial shard %d: %w", peer, err)
	}
	if err := writeHandshake(c, e.shard); err != nil {
		c.Close()
		return fmt.Errorf("mpx: handshake with shard %d: %w", peer, err)
	}
	got, err := readHandshake(c)
	if err != nil {
		c.Close()
		return fmt.Errorf("mpx: handshake with shard %d: %w", peer, err)
	}
	if got != peer {
		c.Close()
		return fmt.Errorf("mpx: dialed shard %d but peer identifies as %d", peer, got)
	}
	e.register(peer, c)
	return nil
}

// DialRetry dials a peer with exponential backoff until the budget
// elapses, so shard startup order doesn't matter. An already
// established connection (the peer dialed us first) counts as
// success.
func (e *TCPEndpoint) DialRetry(peer int, addr string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	pause := 25 * time.Millisecond
	for {
		e.mu.Lock()
		_, ok := e.conns[peer]
		e.mu.Unlock()
		if ok {
			return nil
		}
		err := e.Dial(peer, addr)
		if err == nil {
			return nil
		}
		if e.closed.Load() {
			return errEndpointClosed
		}
		if time.Now().Add(pause).After(deadline) {
			return fmt.Errorf("mpx: shard %d unreachable at %s after %v: %w", peer, addr, budget, err)
		}
		time.Sleep(pause)
		if pause *= 2; pause > 2*time.Second {
			pause = 2 * time.Second
		}
	}
}

// acceptLoop admits peer connections: read their handshake, answer
// with ours, register.
func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return // listener closed
		}
		peer, err := readHandshake(c)
		if err != nil {
			c.Close()
			continue
		}
		if err := writeHandshake(c, e.shard); err != nil {
			c.Close()
			continue
		}
		e.register(peer, c)
	}
}

// register records the peer connection, wakes waiting senders, and
// starts its read loop. A duplicate (both sides dialed) is rejected.
func (e *TCPEndpoint) register(peer int, c net.Conn) {
	e.mu.Lock()
	if _, dup := e.conns[peer]; dup || e.closed.Load() {
		e.mu.Unlock()
		c.Close()
		return
	}
	wc := &wireConn{peer: peer, c: c}
	e.conns[peer] = wc
	close(e.connCh)
	e.connCh = make(chan struct{})
	if hb := time.Duration(e.hbIval.Load()); hb > 0 {
		e.startHeartbeatLocked(wc, hb)
	}
	e.mu.Unlock()
	e.wg.Add(1)
	go e.readLoop(wc)
}

// conn returns the peer connection, waiting briefly for a handshake
// still in flight.
func (e *TCPEndpoint) conn(peer int) (*wireConn, error) {
	deadline := time.Now().Add(connWait)
	for {
		e.mu.Lock()
		if c, ok := e.conns[peer]; ok {
			e.mu.Unlock()
			return c, nil
		}
		ch := e.connCh
		e.mu.Unlock()
		if e.closed.Load() {
			return nil, errEndpointClosed
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("mpx: no connection to shard %d", peer)
		}
		t := time.NewTimer(remain)
		select {
		case <-ch:
			t.Stop()
		case <-t.C:
		}
	}
}

// Send frames and writes one message to the shard hosting dst. The
// fault injector is consulted first (against the offer index, which
// advances even for dropped messages, keeping fates deterministic);
// the wire sequence number advances only for frames actually written,
// preserving receive-side continuity.
func (e *TCPEndpoint) Send(src, dst, tag int, data []float64) error {
	if err := e.Err(); err != nil {
		return err
	}
	if e.closed.Load() {
		return errEndpointClosed
	}
	peer := e.shardOf(dst)
	key := [2]int{src, dst}
	e.mu.Lock()
	offer := e.offerSeq[key]
	e.offerSeq[key] = offer + 1
	fault := e.fault
	sink := e.sink
	e.mu.Unlock()
	if fault != nil && fault.DropSend(src, dst, offer) {
		return fmt.Errorf("mpx: injected wire fault dropped %d -> %d (offer %d)", src, dst, offer)
	}
	if peer == e.shard {
		// Self-shard delivery (the World normally short-circuits this,
		// but be correct for direct users).
		if sink == nil {
			return fmt.Errorf("mpx: no sink bound on shard %d", e.shard)
		}
		cp := make([]float64, len(data))
		copy(cp, data)
		sink.Deliver(src, dst, tag, cp)
		return nil
	}
	c, err := e.conn(peer)
	if err != nil {
		return err
	}
	e.mu.Lock()
	seq := e.sendSeq[key]
	e.sendSeq[key] = seq + 1
	e.mu.Unlock()
	frame := encodeDataFrame(e.epoch.Load(), src, dst, tag, seq, data)
	if werr := e.writeFrame(c, frame); werr != nil {
		return fmt.Errorf("mpx: write to shard %d: %w", peer, werr)
	}
	e.framesSent.Add(1)
	e.bytesSent.Add(int64(len(frame)))
	return nil
}

// writeFrame writes one framed message under the connection's write
// lock, applying the configured write deadline. Deadline expiries are
// counted before the error is returned.
func (e *TCPEndpoint) writeFrame(wc *wireConn, frame []byte) error {
	wt := time.Duration(e.writeTO.Load())
	wc.mu.Lock()
	if wt > 0 {
		wc.c.SetWriteDeadline(time.Now().Add(wt))
	}
	_, err := wc.c.Write(frame)
	wc.mu.Unlock()
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			e.timeouts.Add(1)
		}
	}
	return err
}

// heartbeatLoop keeps one connection's traffic under the peer's read
// deadline while the endpoint is otherwise idle. A heartbeat that
// cannot be written within the write deadline poisons the endpoint:
// the peer is wedged, and blocked ranks must fail fast.
func (e *TCPEndpoint) heartbeatLoop(wc *wireConn, interval time.Duration) {
	defer e.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-e.done:
			return
		case <-t.C:
		}
		if err := e.writeFrame(wc, encodeHeartbeatFrame(e.epoch.Load())); err != nil {
			if e.closed.Load() {
				return
			}
			e.poison(fmt.Errorf("mpx: heartbeat to shard %d: %w", wc.peer, err))
			return
		}
	}
}

// Abort broadcasts an abort notification to every peer, best-effort.
func (e *TCPEndpoint) Abort(cause string) {
	frame := encodeAbortFrame(e.epoch.Load(), cause)
	e.mu.Lock()
	conns := make([]*wireConn, 0, len(e.conns))
	for _, c := range e.conns {
		conns = append(conns, c)
	}
	e.mu.Unlock()
	for _, c := range conns {
		e.writeFrame(c, frame)
	}
}

// readLoop drains one peer connection: verify framing and sequence
// continuity, drop frames from stale epochs, deliver the rest.
func (e *TCPEndpoint) readLoop(wc *wireConn) {
	defer e.wg.Done()
	for {
		if rt := time.Duration(e.readTO.Load()); rt > 0 {
			wc.c.SetReadDeadline(time.Now().Add(rt))
		}
		payload, err := readWireFrame(wc.c)
		if err != nil {
			if e.closed.Load() {
				return // orderly teardown
			}
			var ne net.Error
			switch {
			case errors.As(err, &ne) && ne.Timeout():
				e.timeouts.Add(1)
				e.poison(fmt.Errorf("mpx: wire timeout: no frame from shard %d within %v",
					wc.peer, time.Duration(e.readTO.Load())))
			case errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed):
				// A peer that hangs up while we are live is a crashed
				// peer, not an orderly teardown: blocked ranks must be
				// woken, not left hanging.
				e.poison(fmt.Errorf("mpx: connection to shard %d lost: %w", wc.peer, err))
			default:
				e.poison(fmt.Errorf("mpx: receive on shard %d: %w", e.shard, err))
			}
			return
		}
		msg, err := decodeFrame(payload)
		if err != nil {
			e.poison(err)
			return
		}
		if msg.kind == frameHeartbeat {
			// Its arrival already refreshed the read deadline; nothing to
			// deliver, and liveness beacons stay out of the frame counts.
			continue
		}
		e.mu.Lock()
		sink := e.sink
		e.mu.Unlock()
		if sink == nil {
			e.poison(fmt.Errorf("mpx: frame arrived on shard %d before Bind", e.shard))
			return
		}
		// The epoch check and the delivery happen under recvMu, which
		// Reset also takes to bump the epoch: a frame is therefore either
		// fully delivered before a Reset (and cleared by the paired
		// World.Reset) or observed stale and dropped — never delivered
		// into the freshly reset world.
		e.recvMu.Lock()
		if msg.epoch != e.epoch.Load() {
			e.recvMu.Unlock()
			continue // straggler from an aborted phase
		}
		switch msg.kind {
		case frameAbort:
			sink.AbortFromWire(msg.cause)
			e.recvMu.Unlock()
		case frameData:
			key := [2]int{msg.src, msg.dst}
			expect := e.recvSeq[key]
			if msg.seq != expect {
				e.recvMu.Unlock()
				e.poison(fmt.Errorf("mpx: sequence break %d -> %d: got %d, want %d",
					msg.src, msg.dst, msg.seq, expect))
				return
			}
			e.recvSeq[key] = expect + 1
			e.framesRecv.Add(1)
			e.bytesRecv.Add(int64(wireHdr + len(payload)))
			sink.Deliver(msg.src, msg.dst, msg.tag, msg.data)
			e.recvMu.Unlock()
		}
	}
}

// poison records the first receive-path failure and aborts the bound
// world so blocked ranks fail fast instead of hanging.
func (e *TCPEndpoint) poison(err error) {
	e.errMu.Lock()
	if e.firstErr == nil {
		e.firstErr = err
	}
	e.errMu.Unlock()
	e.mu.Lock()
	sink := e.sink
	e.mu.Unlock()
	if sink != nil {
		sink.AbortFromWire(err.Error())
	}
}

// Err returns the first receive-path failure (nil if none).
func (e *TCPEndpoint) Err() error {
	e.errMu.Lock()
	defer e.errMu.Unlock()
	return e.firstErr
}

// Reset prepares the endpoint for the phase after an abort: the epoch
// bump makes straggling frames from the aborted phase droppable, and
// the wire sequence maps restart with it. The offer index is NOT
// reset — fault-injection fates stay a function of the global attempt
// count. Every connected endpoint must be Reset together, while no
// phase is running.
func (e *TCPEndpoint) Reset() {
	e.mu.Lock()
	e.sendSeq = make(map[[2]int]uint64)
	e.mu.Unlock()
	e.recvMu.Lock()
	e.epoch.Add(1)
	e.recvSeq = make(map[[2]int]uint64)
	e.recvMu.Unlock()
	e.errMu.Lock()
	e.firstErr = nil
	e.errMu.Unlock()
}

// Stats returns frames and bytes sent over the wire (receive counts
// mirror the peers' sends).
func (e *TCPEndpoint) Stats() (frames, bytes int64) {
	return e.framesSent.Load(), e.bytesSent.Load()
}

// Close shuts the listener and every connection down and joins the
// endpoint's goroutines.
func (e *TCPEndpoint) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(e.done)
	e.ln.Close()
	e.mu.Lock()
	for _, c := range e.conns {
		c.c.Close()
	}
	close(e.connCh)
	e.connCh = make(chan struct{})
	e.mu.Unlock()
	e.wg.Wait()
	return nil
}
