package mpx

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// runShards drives the same body over every shard world concurrently
// and returns the merged panic (nil when clean), mimicking how the
// engine joins shard phases.
func runShards(worlds []*World, body func(r *Rank)) *RunPanicError {
	var wg sync.WaitGroup
	panics := make([]interface{}, len(worlds))
	for i, w := range worlds {
		wg.Add(1)
		go func(i int, w *World) {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			w.Run(body)
		}(i, w)
	}
	wg.Wait()
	var merged RunPanicError
	for _, p := range panics {
		if p == nil {
			continue
		}
		rpe, ok := p.(*RunPanicError)
		if !ok {
			panic(p)
		}
		merged.Panics = append(merged.Panics, rpe.Panics...)
	}
	if len(merged.Panics) == 0 {
		return nil
	}
	return &merged
}

// exchangeBody is a deterministic all-to-all: every rank sends
// f(src, dst) to every other rank and verifies what it receives.
func exchangeBody(t *testing.T, results [][]float64) func(r *Rank) {
	return func(r *Rank) {
		for dst := 0; dst < r.Size(); dst++ {
			if dst != r.ID() {
				r.Send(dst, 5, []float64{float64(100*r.ID() + dst)})
			}
		}
		sum := 0.0
		for src := 0; src < r.Size(); src++ {
			if src == r.ID() {
				continue
			}
			got := r.Recv(src, 5)
			if want := float64(100*src + r.ID()); got[0] != want {
				t.Errorf("rank %d from %d: got %v want %v", r.ID(), src, got, want)
			}
			sum += got[0]
		}
		r.Barrier()
		results[r.ID()] = []float64{sum, r.AllReduceSum(float64(r.ID()))}
	}
}

// TestShardWorldsMatchSingleWorld: the same exchange over (a) one
// all-local world and (b) two shard worlds joined by a LocalFabric
// must produce identical per-rank results — including a collective
// that crosses the shard boundary through rank 0.
func TestShardWorldsMatchSingleWorld(t *testing.T) {
	const n = 6
	shardOf := func(rank int) int { return rank * 2 / n } // 0,0,0,1,1,1

	single := make([][]float64, n)
	NewWorld(n).Run(exchangeBody(t, single))

	fab := NewLocalFabric(shardOf)
	worlds := make([]*World, 2)
	for s := 0; s < 2; s++ {
		worlds[s] = NewShardWorld(n, shardOf, s, fab.Endpoint(s))
		fab.Bind(s, worlds[s])
	}
	sharded := make([][]float64, n)
	if err := runShards(worlds, exchangeBody(t, sharded)); err != nil {
		t.Fatalf("sharded run failed: %v", err)
	}

	for rank := 0; rank < n; rank++ {
		if len(single[rank]) != len(sharded[rank]) {
			t.Fatalf("rank %d: result shapes differ", rank)
		}
		for i := range single[rank] {
			if single[rank][i] != sharded[rank][i] {
				t.Errorf("rank %d result %d: single %v, sharded %v", rank, i, single[rank][i], sharded[rank][i])
			}
		}
	}
}

// TestShardWorldLocalRanks checks the shard partition bookkeeping.
func TestShardWorldLocalRanks(t *testing.T) {
	shardOf := func(r int) int { return r % 2 }
	fab := NewLocalFabric(shardOf)
	w := NewShardWorld(5, shardOf, 1, fab.Endpoint(1))
	want := []int{1, 3}
	got := w.LocalRanks()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("LocalRanks = %v, want %v", got, want)
	}
}

// TestFabricFaultAbortsAllShards: an injected send failure must panic
// the sending rank with the *TransportError, wake everything else with
// secondary aborts (local and across the fabric), and leave the merged
// failure TransportOnly so the engine knows it can fall back.
func TestFabricFaultAbortsAllShards(t *testing.T) {
	const n = 4
	shardOf := func(r int) int { return r / 2 }
	fab := NewLocalFabric(shardOf)
	worlds := make([]*World, 2)
	for s := 0; s < 2; s++ {
		worlds[s] = NewShardWorld(n, shardOf, s, fab.Endpoint(s))
		fab.Bind(s, worlds[s])
	}
	wireDown := errors.New("wire down")
	fab.SetFault(func(src, dst, tag int) error {
		if src == 0 && dst == 3 {
			return wireDown
		}
		return nil
	})
	err := runShards(worlds, func(r *Rank) {
		for dst := 0; dst < n; dst++ {
			if dst != r.ID() {
				r.Send(dst, 1, []float64{1})
			}
		}
		for src := 0; src < n; src++ {
			if src != r.ID() {
				r.Recv(src, 1)
			}
		}
	})
	if err == nil {
		t.Fatal("faulted exchange completed")
	}
	if !err.TransportOnly() {
		t.Fatalf("failure not transport-only: %v", err)
	}
	prim := err.Primary()
	te, ok := prim.Value.(*TransportError)
	if !ok {
		t.Fatalf("primary = %v, want *TransportError", prim.Value)
	}
	if te.Src != 0 || te.Dst != 3 || !errors.Is(te, wireDown) {
		t.Errorf("transport error %+v does not identify the failed send", te)
	}
	// Both worlds are aborted; Reset rearms them for the fallback rerun.
	for s, w := range worlds {
		if !w.aborted.Load() {
			t.Errorf("shard %d not aborted", s)
		}
		w.Reset()
	}
	fab.SetFault(nil)
	results := make([][]float64, n)
	if err := runShards(worlds, exchangeBody(t, results)); err != nil {
		t.Fatalf("post-Reset run failed: %v", err)
	}
}

// dropOnce fails exactly one (src, dst, offer) attempt.
type dropOnce struct {
	src, dst int
	offer    uint64
}

func (d dropOnce) DropSend(src, dst int, n uint64) bool {
	return src == d.src && dst == d.dst && n == d.offer
}

// newTCPPair builds two fully connected shard worlds over real
// localhost sockets: ranks 0..1 on shard 0, ranks 2..3 on shard 1.
func newTCPPair(t *testing.T) ([]*World, []*TCPEndpoint) {
	t.Helper()
	const n = 4
	shardOf := func(r int) int { return r / 2 }
	eps := make([]*TCPEndpoint, 2)
	for s := 0; s < 2; s++ {
		ep, err := ListenTCP(s, "127.0.0.1:0", shardOf)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		eps[s] = ep
	}
	if err := eps[0].Dial(1, eps[1].Addr()); err != nil {
		t.Fatal(err)
	}
	worlds := make([]*World, 2)
	for s := 0; s < 2; s++ {
		worlds[s] = NewShardWorld(n, shardOf, s, eps[s])
		eps[s].Bind(worlds[s])
	}
	return worlds, eps
}

// TestTCPShardExchange runs a real-socket exchange with collectives
// and checks the wire accounting moved actual frames.
func TestTCPShardExchange(t *testing.T) {
	worlds, eps := newTCPPair(t)
	results := make([][]float64, 4)
	if err := runShards(worlds, exchangeBody(t, results)); err != nil {
		t.Fatalf("tcp exchange failed: %v", err)
	}
	for rank, res := range results {
		// sum of 100*src+rank over the three peers; AllReduceSum(0..3)=6.
		want := 0.0
		for src := 0; src < 4; src++ {
			if src != rank {
				want += float64(100*src + rank)
			}
		}
		if res[0] != want || res[1] != 6 {
			t.Errorf("rank %d results %v, want [%v 6]", rank, res, want)
		}
	}
	frames, bytes := eps[0].Stats()
	if frames == 0 || bytes == 0 {
		t.Error("no frames crossed the wire; exchange fell back to memory?")
	}
}

// TestTCPFaultThenReset injects one wire drop: the phase fails
// transport-only, a Reset of endpoints then worlds rearms everything,
// and the rerun completes with deterministic fault accounting (the
// offer index not resetting means the same attempt cannot fail twice).
func TestTCPFaultThenReset(t *testing.T) {
	worlds, eps := newTCPPair(t)
	for _, ep := range eps {
		ep.SetFault(dropOnce{src: 1, dst: 2, offer: 0})
	}
	body := func(r *Rank) {
		for dst := 0; dst < 4; dst++ {
			if dst != r.ID() {
				r.Send(dst, 9, []float64{float64(r.ID())})
			}
		}
		for src := 0; src < 4; src++ {
			if src != r.ID() {
				if got := r.Recv(src, 9); got[0] != float64(src) {
					panic(fmt.Sprintf("rank %d got %v from %d", r.ID(), got, src))
				}
			}
		}
	}
	err := runShards(worlds, body)
	if err == nil {
		t.Fatal("dropped send did not fail the phase")
	}
	if !err.TransportOnly() {
		t.Fatalf("failure not transport-only: %v", err)
	}
	te, ok := err.Primary().Value.(*TransportError)
	if !ok || te.Src != 1 || te.Dst != 2 {
		t.Fatalf("primary %+v, want the 1 -> 2 drop", err.Primary())
	}
	for _, ep := range eps {
		ep.Reset()
	}
	for _, w := range worlds {
		w.Reset()
	}
	// offer 0 for (1, 2) is consumed; the rerun's sends succeed.
	if err := runShards(worlds, body); err != nil {
		t.Fatalf("post-Reset rerun failed: %v", err)
	}
}

// TestTCPDialValidation covers the handshake checks.
func TestTCPDialValidation(t *testing.T) {
	shardOf := func(r int) int { return r }
	a, err := ListenTCP(0, "127.0.0.1:0", shardOf)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP(1, "127.0.0.1:0", shardOf)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Dial(2, b.Addr()); err == nil {
		t.Error("dialing shard 2 at shard 1's address must fail the identity check")
	}
	if err := a.Dial(1, b.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := a.Dial(1, b.Addr()); err == nil {
		t.Error("duplicate dial must be rejected")
	}
}
