package geom

import (
	"math/rand"
	"sort"
	"testing"
)

// TestHilbertBijectiveOnLattice verifies that the order-b curve is a
// bijection between the 2^b lattice cube and [0, 2^(3b)): every point
// gets a distinct key, every key in range is hit, and hilbertPoint
// inverts hilbertKey exactly.
func TestHilbertBijectiveOnLattice(t *testing.T) {
	for _, b := range []uint{1, 2, 3, 4} {
		n := 1 << b
		total := n * n * n
		seen := make([]bool, total)
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				for z := 0; z < n; z++ {
					p := Index{x, y, z}
					h := hilbertKey(b, p)
					if h >= uint64(total) {
						t.Fatalf("order %d: key %d of %v out of range %d", b, h, p, total)
					}
					if seen[h] {
						t.Fatalf("order %d: key %d hit twice (at %v)", b, h, p)
					}
					seen[h] = true
					if back := hilbertPoint(b, h); back != p {
						t.Fatalf("order %d: hilbertPoint(%d) = %v, want %v", b, h, back, p)
					}
				}
			}
		}
		for h, ok := range seen {
			if !ok {
				t.Fatalf("order %d: key %d never produced", b, h)
			}
		}
	}
}

// TestHilbertAdjacency verifies the curve's defining property:
// consecutive indices are face neighbours (Manhattan distance exactly
// 1). Checked exhaustively at order 4 and on a sampled window of the
// full order-21 curve.
func TestHilbertAdjacency(t *testing.T) {
	for _, b := range []uint{2, 3, 4} {
		total := uint64(1) << (3 * b)
		for h := uint64(0); h+1 < total; h++ {
			if d := manhattan(hilbertPoint(b, h), hilbertPoint(b, h+1)); d != 1 {
				t.Fatalf("order %d: |P(%d) - P(%d)| = %d, want 1", b, h, h+1, d)
			}
		}
	}
	// Spot-check the production order-21 curve, including across the
	// high-bit boundaries a low-order test never reaches.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		h := rng.Uint64() % ((1 << 63) - 1)
		if d := manhattan(HilbertPoint(h), HilbertPoint(h+1)); d != 1 {
			t.Fatalf("order 21: |P(%d) - P(%d)| = %d, want 1", h, h+1, d)
		}
	}
}

// TestHilbertRoundTripOrder21 pins the production key: HilbertPoint
// inverts HilbertKey on random in-range points, and negative
// components clamp to zero exactly as MortonKey's do.
func TestHilbertRoundTripOrder21(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		p := Index{rng.Intn(1 << 21), rng.Intn(1 << 21), rng.Intn(1 << 21)}
		if back := HilbertPoint(p.HilbertKey()); back != p {
			t.Fatalf("round trip: %v -> %d -> %v", p, p.HilbertKey(), back)
		}
	}
	neg := Index{-5, 3, -1}
	clamped := Index{0, 3, 0}
	if neg.HilbertKey() != clamped.HilbertKey() {
		t.Fatalf("negative components should clamp to zero: key(%v)=%d key(%v)=%d",
			neg, neg.HilbertKey(), clamped, clamped.HilbertKey())
	}
}

// TestHilbertLocalityBeatsMorton compares the two curves with the
// bounding-box spread metric an SFC partitioner cares about: sort a
// point cloud by curve key, cut it into contiguous runs, and sum the
// runs' bounding-box volumes. Tighter runs mean better partition
// locality; the Hilbert order must not be worse than Morton and is
// strictly better on this pinned workload.
func TestHilbertLocalityBeatsMorton(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, runs = 4096, 16
	pts := make([]Index, n)
	for i := range pts {
		pts[i] = Index{rng.Intn(64), rng.Intn(64), rng.Intn(64)}
	}
	hilbert := curveSpread(pts, runs, Index.HilbertKey)
	morton := curveSpread(pts, runs, Index.MortonKey)
	if hilbert >= morton {
		t.Fatalf("Hilbert runs should be tighter than Morton runs: hilbert=%g morton=%g", hilbert, morton)
	}
	t.Logf("bounding-box spread: hilbert=%g morton=%g (%.1f%% tighter)",
		hilbert, morton, 100*(morton-hilbert)/morton)
}

// curveSpread sorts pts by the key, splits them into `runs` contiguous
// chunks and sums each chunk's bounding-box volume.
func curveSpread(pts []Index, runs int, key func(Index) uint64) float64 {
	sorted := append([]Index(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return key(sorted[i]) < key(sorted[j]) })
	per := (len(sorted) + runs - 1) / runs
	var total float64
	for start := 0; start < len(sorted); start += per {
		end := start + per
		if end > len(sorted) {
			end = len(sorted)
		}
		lo, hi := sorted[start], sorted[start]
		for _, p := range sorted[start:end] {
			lo, hi = lo.Min(p), hi.Max(p)
		}
		total += float64(hi.Sub(lo).Add(Index{1, 1, 1}).Product())
	}
	return total
}

func manhattan(a, b Index) int {
	d := 0
	for i := 0; i < Dims; i++ {
		if a[i] > b[i] {
			d += a[i] - b[i]
		} else {
			d += b[i] - a[i]
		}
	}
	return d
}
