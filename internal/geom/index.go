// Package geom provides the integer index-space geometry used by the
// structured AMR machinery: three-dimensional indices, inclusive boxes,
// and box-list algebra (intersection, subtraction, splitting,
// refinement and coarsening between levels).
//
// Conventions:
//   - A Box is a closed interval in each dimension: it contains every
//     cell i with Lo[d] <= i[d] <= Hi[d] for all d.
//   - A Box with any Hi[d] < Lo[d] is empty.
//   - Refinement by factor r maps coarse cell c to the fine cells
//     [c*r, c*r+r-1]; coarsening is the inverse with floor division
//     (correct for negative indices too).
package geom

import "fmt"

// Dims is the spatial dimensionality of the index space. The SAMR
// machinery in this repository is written for 3-D problems, matching
// the paper's AMR64 and ShockPool3D datasets; lower-dimensional
// problems use degenerate boxes (extent 1 in unused dimensions).
const Dims = 3

// Index is a point in the 3-D integer index space.
type Index [Dims]int

// Add returns the component-wise sum a+b.
func (a Index) Add(b Index) Index {
	return Index{a[0] + b[0], a[1] + b[1], a[2] + b[2]}
}

// Sub returns the component-wise difference a-b.
func (a Index) Sub(b Index) Index {
	return Index{a[0] - b[0], a[1] - b[1], a[2] - b[2]}
}

// Scale returns the component-wise product a*s.
func (a Index) Scale(s int) Index {
	return Index{a[0] * s, a[1] * s, a[2] * s}
}

// Mul returns the component-wise product a*b.
func (a Index) Mul(b Index) Index {
	return Index{a[0] * b[0], a[1] * b[1], a[2] * b[2]}
}

// Min returns the component-wise minimum of a and b.
func (a Index) Min(b Index) Index {
	return Index{min(a[0], b[0]), min(a[1], b[1]), min(a[2], b[2])}
}

// Max returns the component-wise maximum of a and b.
func (a Index) Max(b Index) Index {
	return Index{max(a[0], b[0]), max(a[1], b[1]), max(a[2], b[2])}
}

// AllLE reports whether a[d] <= b[d] for every dimension d.
func (a Index) AllLE(b Index) bool {
	return a[0] <= b[0] && a[1] <= b[1] && a[2] <= b[2]
}

// AllGE reports whether a[d] >= b[d] for every dimension d.
func (a Index) AllGE(b Index) bool {
	return a[0] >= b[0] && a[1] >= b[1] && a[2] >= b[2]
}

// Product returns a[0]*a[1]*a[2] as an int64, guarding against
// overflow for large extents.
func (a Index) Product() int64 {
	return int64(a[0]) * int64(a[1]) * int64(a[2])
}

// MaxDim returns the dimension with the largest component, breaking
// ties toward the lowest dimension.
func (a Index) MaxDim() int {
	d := 0
	for i := 1; i < Dims; i++ {
		if a[i] > a[d] {
			d = i
		}
	}
	return d
}

func (a Index) String() string {
	return fmt.Sprintf("(%d,%d,%d)", a[0], a[1], a[2])
}

// FloorDiv returns floor(a/b) component-wise for positive b, which is
// the correct coarsening map for negative indices (unlike Go's
// truncated integer division).
func (a Index) FloorDiv(r int) Index {
	var out Index
	for d := 0; d < Dims; d++ {
		q := a[d] / r
		if a[d]%r != 0 && (a[d] < 0) != (r < 0) {
			q--
		}
		out[d] = q
	}
	return out
}

// MortonKey interleaves the low 21 bits of each (non-negative)
// component into a Z-order curve key: indices close in space get
// close keys, the property space-filling-curve partitioners rely on.
// Negative components are clamped to zero.
func (a Index) MortonKey() uint64 {
	var key uint64
	for d := 0; d < Dims; d++ {
		v := a[d]
		if v < 0 {
			v = 0
		}
		key |= spread3(uint64(v)&((1<<21)-1)) << d
	}
	return key
}

// spread3 inserts two zero bits between each of the low 21 bits.
func spread3(x uint64) uint64 {
	x = (x | x<<32) & 0x1f00000000ffff
	x = (x | x<<16) & 0x1f0000ff0000ff
	x = (x | x<<8) & 0x100f00f00f00f00f
	x = (x | x<<4) & 0x10c30c30c30c30c3
	x = (x | x<<2) & 0x1249249249249249
	return x
}
