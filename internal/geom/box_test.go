package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randBox produces a modest random box (possibly empty) for property
// tests.
func randBox(r *rand.Rand) Box {
	var lo, hi Index
	for d := 0; d < Dims; d++ {
		lo[d] = r.Intn(41) - 20
		hi[d] = lo[d] + r.Intn(25) - 4 // sometimes empty
	}
	return Box{Lo: lo, Hi: hi}
}

func randNonEmptyBox(r *rand.Rand) Box {
	var lo, hi Index
	for d := 0; d < Dims; d++ {
		lo[d] = r.Intn(41) - 20
		hi[d] = lo[d] + r.Intn(20)
	}
	return Box{Lo: lo, Hi: hi}
}

func quickCfg(seed int64) *quick.Config {
	return &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(seed)),
		Values:   nil,
	}
}

func TestIndexArithmetic(t *testing.T) {
	a := Index{1, -2, 3}
	b := Index{4, 5, -6}
	if got := a.Add(b); got != (Index{5, 3, -3}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Index{-3, -7, 9}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Index{2, -4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Mul(b); got != (Index{4, -10, -18}) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Min(b); got != (Index{1, -2, -6}) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != (Index{4, 5, 3}) {
		t.Errorf("Max = %v", got)
	}
	if a.Product() != 1*-2*3 {
		t.Errorf("Product = %d", a.Product())
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct {
		in   Index
		r    int
		want Index
	}{
		{Index{4, 5, 6}, 2, Index{2, 2, 3}},
		{Index{-1, -2, -3}, 2, Index{-1, -1, -2}},
		{Index{-4, 0, 7}, 4, Index{-1, 0, 1}},
		{Index{-5, -4, -3}, 4, Index{-2, -1, -1}},
	}
	for _, c := range cases {
		if got := c.in.FloorDiv(c.r); got != c.want {
			t.Errorf("FloorDiv(%v, %d) = %v, want %v", c.in, c.r, got, c.want)
		}
	}
}

func TestMaxDim(t *testing.T) {
	if d := (Index{3, 7, 7}).MaxDim(); d != 1 {
		t.Errorf("MaxDim tie should pick lowest dim: got %d", d)
	}
	if d := (Index{3, 1, 9}).MaxDim(); d != 2 {
		t.Errorf("MaxDim = %d", d)
	}
}

func TestBoxBasics(t *testing.T) {
	b := NewBox(Index{0, 0, 0}, Index{3, 4, 5})
	if b.Empty() {
		t.Fatal("box should not be empty")
	}
	if got := b.Shape(); got != (Index{4, 5, 6}) {
		t.Errorf("Shape = %v", got)
	}
	if got := b.NumCells(); got != 120 {
		t.Errorf("NumCells = %d", got)
	}
	if !b.Contains(Index{3, 4, 5}) || !b.Contains(Index{0, 0, 0}) {
		t.Error("corner cells must be contained (inclusive box)")
	}
	if b.Contains(Index{4, 0, 0}) {
		t.Error("cell beyond Hi must not be contained")
	}
	empty := NewBox(Index{1, 1, 1}, Index{0, 5, 5})
	if !empty.Empty() || empty.NumCells() != 0 {
		t.Error("box with Hi<Lo must be empty with 0 cells")
	}
}

func TestBoxFromShape(t *testing.T) {
	b := BoxFromShape(Index{2, 3, 4}, Index{5, 1, 2})
	if b.Shape() != (Index{5, 1, 2}) {
		t.Errorf("Shape = %v", b.Shape())
	}
	if b.Lo != (Index{2, 3, 4}) || b.Hi != (Index{6, 3, 5}) {
		t.Errorf("bad corners: %v", b)
	}
}

func TestUnitCube(t *testing.T) {
	b := UnitCube(8)
	if b.NumCells() != 512 {
		t.Errorf("NumCells = %d", b.NumCells())
	}
}

func TestIntersectCommutativeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		a, b := randBox(r), randBox(r)
		ab, ba := a.Intersect(b), b.Intersect(a)
		if ab.Empty() != ba.Empty() {
			t.Fatalf("emptiness not commutative: %v %v", a, b)
		}
		if !ab.Empty() && ab != ba {
			t.Fatalf("intersect not commutative: %v %v", a, b)
		}
		if !ab.Empty() && ab.Intersect(ab) != ab {
			t.Fatalf("intersect not idempotent: %v", ab)
		}
		if got := a.Intersect(a); !a.Empty() && got != a {
			t.Fatalf("a∩a != a for %v", a)
		}
	}
}

func TestIntersectionIsContained(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz uint8) bool {
		a := BoxFromShape(Index{int(ax) % 10, int(ay) % 10, int(az) % 10}, Index{1 + int(bx)%8, 1 + int(by)%8, 1 + int(bz)%8})
		b := BoxFromShape(Index{int(bx) % 10, int(bz) % 10, int(ay) % 10}, Index{1 + int(ax)%8, 1 + int(az)%8, 1 + int(by)%8})
		iv := a.Intersect(b)
		if iv.Empty() {
			return true
		}
		return a.ContainsBox(iv) && b.ContainsBox(iv)
	}
	if err := quick.Check(f, quickCfg(2)); err != nil {
		t.Error(err)
	}
}

func TestRefineCoarsenRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		b := randNonEmptyBox(r)
		for _, rf := range []int{2, 3, 4} {
			// Coarsen∘Refine must be identity.
			if got := b.Refine(rf).Coarsen(rf); got != b {
				t.Fatalf("coarsen(refine(%v,%d)) = %v", b, rf, got)
			}
			// Refine∘Coarsen must cover the original box.
			if got := b.Coarsen(rf).Refine(rf); !got.ContainsBox(b) {
				t.Fatalf("refine(coarsen(%v,%d)) = %v does not cover original", b, rf, got)
			}
			// Cell counts scale exactly under refinement.
			if b.Refine(rf).NumCells() != b.NumCells()*int64(rf*rf*rf) {
				t.Fatalf("refine cell count wrong for %v r=%d", b, rf)
			}
		}
	}
}

func TestRefineCoarsenNegativeIndices(t *testing.T) {
	b := NewBox(Index{-4, -3, -2}, Index{-1, 2, 5})
	c := b.Coarsen(2)
	if c.Lo != (Index{-2, -2, -1}) {
		t.Errorf("Coarsen Lo = %v", c.Lo)
	}
	if c.Hi != (Index{-1, 1, 2}) {
		t.Errorf("Coarsen Hi = %v", c.Hi)
	}
	if !c.Refine(2).ContainsBox(b) {
		t.Error("refined coarse box must cover original")
	}
}

func TestGrowShrinkInverse(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		b := randNonEmptyBox(r)
		n := r.Intn(4)
		if got := b.Grow(n).Grow(-n); got != b {
			t.Fatalf("grow(%d) then shrink != id for %v", n, b)
		}
		if b.Grow(n).NumCells() < b.NumCells() {
			t.Fatalf("grow shrank the box %v", b)
		}
	}
}

func TestGrowDim(t *testing.T) {
	b := UnitCube(4)
	g := b.GrowDim(1, 2, 3)
	if g.Lo != (Index{0, -2, 0}) || g.Hi != (Index{3, 6, 3}) {
		t.Errorf("GrowDim = %v", g)
	}
	// Other dims untouched.
	if g.Lo[0] != 0 || g.Hi[2] != 3 {
		t.Errorf("GrowDim changed other dims: %v", g)
	}
}

func TestSplitPreservesCells(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		b := randNonEmptyBox(r)
		d := b.LongestDim()
		if b.Shape()[d] < 2 {
			continue
		}
		at := b.Lo[d] + 1 + r.Intn(b.Shape()[d]-1)
		lo, hi := b.SplitAt(d, at)
		if lo.NumCells()+hi.NumCells() != b.NumCells() {
			t.Fatalf("split lost cells: %v -> %v %v", b, lo, hi)
		}
		if lo.Intersects(hi) {
			t.Fatalf("split halves overlap: %v %v", lo, hi)
		}
		if lo.Union(hi) != b {
			t.Fatalf("split halves do not tile the box: %v %v vs %v", lo, hi, b)
		}
	}
}

func TestHalve(t *testing.T) {
	b := NewBox(Index{0, 0, 0}, Index{9, 3, 3})
	lo, hi := b.Halve()
	if lo.Shape()[0] != 5 || hi.Shape()[0] != 5 {
		t.Errorf("Halve should cut longest dim evenly: %v %v", lo, hi)
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	b := NewBox(Index{-2, 3, 1}, Index{4, 7, 5})
	n := int(b.NumCells())
	seen := make([]bool, n)
	b.ForEach(func(i Index) {
		off := b.Offset(i)
		if off < 0 || off >= n {
			t.Fatalf("offset out of range: %v -> %d", i, off)
		}
		if seen[off] {
			t.Fatalf("offset collision at %v", i)
		}
		seen[off] = true
		if b.IndexAt(off) != i {
			t.Fatalf("IndexAt(Offset(%v)) = %v", i, b.IndexAt(off))
		}
	})
	for _, s := range seen {
		if !s {
			t.Fatal("ForEach missed an offset")
		}
	}
}

func TestForEachIsOffsetOrdered(t *testing.T) {
	b := NewBox(Index{0, 0, 0}, Index{2, 2, 2})
	want := 0
	b.ForEach(func(i Index) {
		if b.Offset(i) != want {
			t.Fatalf("ForEach out of order at %v: offset %d want %d", i, b.Offset(i), want)
		}
		want++
	})
}

func TestSurfaceCells(t *testing.T) {
	b := UnitCube(4)
	// 4^3 - 2^3 = 64 - 8 = 56
	if got := b.SurfaceCells(); got != 56 {
		t.Errorf("SurfaceCells = %d, want 56", got)
	}
	thin := BoxFromShape(Index{0, 0, 0}, Index{1, 5, 5})
	if got := thin.SurfaceCells(); got != 25 {
		t.Errorf("thin SurfaceCells = %d, want 25 (all cells on surface)", got)
	}
	if got := (Box{Lo: Index{0, 0, 0}, Hi: Index{-1, 0, 0}}).SurfaceCells(); got != 0 {
		t.Errorf("empty SurfaceCells = %d", got)
	}
}

func TestShift(t *testing.T) {
	b := UnitCube(3)
	s := b.Shift(Index{1, -2, 3})
	if s.Lo != (Index{1, -2, 3}) || s.Hi != (Index{3, 0, 5}) {
		t.Errorf("Shift = %v", s)
	}
	if s.NumCells() != b.NumCells() {
		t.Error("shift changed cell count")
	}
}

func TestUnionBounding(t *testing.T) {
	a := NewBox(Index{0, 0, 0}, Index{1, 1, 1})
	b := NewBox(Index{5, 5, 5}, Index{6, 6, 6})
	u := a.Union(b)
	if !u.ContainsBox(a) || !u.ContainsBox(b) {
		t.Error("union must contain both operands")
	}
	var empty Box
	empty.Hi = Index{-1, -1, -1}
	if a.Union(empty) != a || empty.Union(a) != a {
		t.Error("union with empty must be identity")
	}
}

func TestContainsBoxEmpty(t *testing.T) {
	a := UnitCube(2)
	empty := Box{Lo: Index{5, 5, 5}, Hi: Index{4, 4, 4}}
	if !a.ContainsBox(empty) {
		t.Error("every box contains the empty box")
	}
}
