package geom

import "sort"

// BoxList is a collection of boxes, typically (but not necessarily)
// pairwise disjoint.
type BoxList []Box

// NumCells returns the total cell count over all boxes. Overlapping
// cells are counted once per box that contains them.
func (l BoxList) NumCells() int64 {
	var n int64
	for _, b := range l {
		n += b.NumCells()
	}
	return n
}

// Bounding returns the bounding box of the list (empty for an empty
// list).
func (l BoxList) Bounding() Box {
	out := Box{Lo: Index{0, 0, 0}, Hi: Index{-1, -1, -1}}
	for _, b := range l {
		out = out.Union(b)
	}
	return out
}

// IntersectBox returns the non-empty intersections of each list
// element with b.
func (l BoxList) IntersectBox(b Box) BoxList {
	var out BoxList
	for _, x := range l {
		if iv := x.Intersect(b); !iv.Empty() {
			out = append(out, iv)
		}
	}
	return out
}

// Contains reports whether the cell i lies in any box of the list.
func (l BoxList) Contains(i Index) bool {
	for _, b := range l {
		if b.Contains(i) {
			return true
		}
	}
	return false
}

// ContainsBox reports whether the box b is entirely covered by the
// union of the list. It subtracts each list element from b and checks
// that nothing remains.
func (l BoxList) ContainsBox(b Box) bool {
	rest := BoxList{b}
	for _, x := range l {
		var next BoxList
		for _, r := range rest {
			next = append(next, Subtract(r, x)...)
		}
		rest = next
		if len(rest) == 0 {
			return true
		}
	}
	return len(rest) == 0
}

// Disjoint reports whether no two boxes in the list overlap.
func (l BoxList) Disjoint() bool {
	for i := 0; i < len(l); i++ {
		for j := i + 1; j < len(l); j++ {
			if l[i].Intersects(l[j]) {
				return false
			}
		}
	}
	return true
}

// Refine refines every box in the list.
func (l BoxList) Refine(r int) BoxList {
	out := make(BoxList, len(l))
	for i, b := range l {
		out[i] = b.Refine(r)
	}
	return out
}

// Coarsen coarsens every box in the list.
func (l BoxList) Coarsen(r int) BoxList {
	out := make(BoxList, len(l))
	for i, b := range l {
		out[i] = b.Coarsen(r)
	}
	return out
}

// Subtract returns a \ b as a list of disjoint boxes. The standard
// axis-sweep decomposition yields at most 6 boxes in 3-D.
func Subtract(a, b Box) BoxList {
	return SubtractAppend(nil, a, b)
}

// SubtractAppend appends a \ b to dst and returns the extended list —
// the scratch-friendly form of Subtract for callers that reuse a
// buffer across many subtractions.
func SubtractAppend(dst BoxList, a, b Box) BoxList {
	iv := a.Intersect(b)
	if iv.Empty() {
		return append(dst, a)
	}
	if iv == a {
		return dst
	}
	rem := a
	for d := 0; d < Dims; d++ {
		if rem.Lo[d] < iv.Lo[d] {
			lo, hi := rem.SplitAt(d, iv.Lo[d])
			dst = append(dst, lo)
			rem = hi
		}
		if rem.Hi[d] > iv.Hi[d] {
			lo, hi := rem.SplitAt(d, iv.Hi[d]+1)
			dst = append(dst, hi)
			rem = lo
		}
	}
	return dst
}

// SubtractList returns the region of a not covered by any box in bs,
// as disjoint boxes.
func SubtractList(a Box, bs BoxList) BoxList {
	rest := BoxList{a}
	for _, b := range bs {
		var next BoxList
		for _, r := range rest {
			next = append(next, Subtract(r, b)...)
		}
		rest = next
		if len(rest) == 0 {
			break
		}
	}
	return rest
}

// SplitEvenly greedily splits the boxes in the list until it contains
// at least n boxes, always halving the currently largest box along its
// longest dimension. Boxes of a single cell are never split further.
// It is used by the baseline parallel DLB to break up oversized level-0
// grids so they can be spread over all processors.
func (l BoxList) SplitEvenly(n int) BoxList {
	out := append(BoxList{}, l...)
	for len(out) < n {
		// Find the largest splittable box.
		bi, bc := -1, int64(1)
		for i, b := range out {
			if c := b.NumCells(); c > bc {
				bi, bc = i, c
			}
		}
		if bi < 0 {
			break // everything is single-cell
		}
		lo, hi := out[bi].Halve()
		out[bi] = lo
		out = append(out, hi)
	}
	return out
}

// SortByLo orders the list lexicographically by the low corner
// (z-major), giving deterministic iteration order independent of
// construction order.
func (l BoxList) SortByLo() {
	sort.Slice(l, func(i, j int) bool {
		a, b := l[i].Lo, l[j].Lo
		if a[2] != b[2] {
			return a[2] < b[2]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[0] < b[0]
	})
}

// Coalesce greedily merges pairs of boxes whose union is exactly
// their bounding box (same cross-section, adjacent along one axis),
// repeating until no merge applies. For disjoint inputs the result
// covers exactly the same cells with (usually far) fewer boxes —
// fewer grids means fewer messages and less per-grid overhead.
func (l BoxList) Coalesce() BoxList {
	out := append(BoxList{}, l...)
	for {
		merged := false
	outer:
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				if u, ok := mergeBoxes(out[i], out[j]); ok {
					out[i] = u
					out = append(out[:j], out[j+1:]...)
					merged = true
					break outer
				}
			}
		}
		if !merged {
			return out
		}
	}
}

// mergeBoxes returns the union if a and b tile it exactly.
func mergeBoxes(a, b Box) (Box, bool) {
	u := a.Union(b)
	if u.NumCells() == a.NumCells()+b.NumCells() && !a.Intersects(b) {
		return u, true
	}
	return Box{}, false
}
