package geom

import "fmt"

// Box is a closed axis-aligned box of cells in the integer index
// space: it contains every Index i with Lo.AllLE(i) && i.AllLE(Hi).
// A Box is empty when Hi[d] < Lo[d] in any dimension.
type Box struct {
	Lo, Hi Index
}

// NewBox returns the box with the given inclusive corners.
func NewBox(lo, hi Index) Box { return Box{Lo: lo, Hi: hi} }

// BoxFromShape returns the box anchored at lo with the given extent in
// each dimension (shape[d] cells along dimension d).
func BoxFromShape(lo Index, shape Index) Box {
	return Box{Lo: lo, Hi: lo.Add(shape).Sub(Index{1, 1, 1})}
}

// UnitCube returns the box [0,n-1]^3.
func UnitCube(n int) Box {
	return Box{Lo: Index{0, 0, 0}, Hi: Index{n - 1, n - 1, n - 1}}
}

// Empty reports whether the box contains no cells.
func (b Box) Empty() bool {
	return b.Hi[0] < b.Lo[0] || b.Hi[1] < b.Lo[1] || b.Hi[2] < b.Lo[2]
}

// Shape returns the extent of the box in each dimension. For empty
// boxes negative extents may appear; callers should check Empty first.
func (b Box) Shape() Index {
	return b.Hi.Sub(b.Lo).Add(Index{1, 1, 1})
}

// NumCells returns the number of cells in the box (0 if empty).
func (b Box) NumCells() int64 {
	if b.Empty() {
		return 0
	}
	return b.Shape().Product()
}

// Contains reports whether the cell i lies inside the box.
func (b Box) Contains(i Index) bool {
	return b.Lo.AllLE(i) && i.AllLE(b.Hi)
}

// ContainsBox reports whether o is entirely inside b. An empty o is
// contained in every box.
func (b Box) ContainsBox(o Box) bool {
	if o.Empty() {
		return true
	}
	return b.Lo.AllLE(o.Lo) && o.Hi.AllLE(b.Hi)
}

// Intersect returns the overlap of b and o, which may be empty.
func (b Box) Intersect(o Box) Box {
	return Box{Lo: b.Lo.Max(o.Lo), Hi: b.Hi.Min(o.Hi)}
}

// Intersects reports whether b and o share at least one cell.
func (b Box) Intersects(o Box) bool {
	return !b.Intersect(o).Empty()
}

// Union returns the bounding box of b and o. Empty operands are
// ignored; the union of two empty boxes is empty.
func (b Box) Union(o Box) Box {
	if b.Empty() {
		return o
	}
	if o.Empty() {
		return b
	}
	return Box{Lo: b.Lo.Min(o.Lo), Hi: b.Hi.Max(o.Hi)}
}

// Refine maps the box to the next finer level with refinement factor
// r: each coarse cell becomes an r^3 block of fine cells.
func (b Box) Refine(r int) Box {
	return Box{Lo: b.Lo.Scale(r), Hi: b.Hi.Scale(r).Add(Index{r - 1, r - 1, r - 1})}
}

// Coarsen maps the box to the next coarser level with refinement
// factor r, using floor division so the result covers every coarse
// cell touched by the fine box.
func (b Box) Coarsen(r int) Box {
	return Box{Lo: b.Lo.FloorDiv(r), Hi: b.Hi.FloorDiv(r)}
}

// Grow expands the box by n cells in every direction (negative n
// shrinks it).
func (b Box) Grow(n int) Box {
	g := Index{n, n, n}
	return Box{Lo: b.Lo.Sub(g), Hi: b.Hi.Add(g)}
}

// GrowDim expands the box by lo cells on the low side and hi cells on
// the high side of dimension d only.
func (b Box) GrowDim(d, lo, hi int) Box {
	b.Lo[d] -= lo
	b.Hi[d] += hi
	return b
}

// Shift translates the box by v.
func (b Box) Shift(v Index) Box {
	return Box{Lo: b.Lo.Add(v), Hi: b.Hi.Add(v)}
}

// SplitAt cuts the box along dimension d so that the first part holds
// indices < at and the second part holds indices >= at. Callers must
// ensure Lo[d] < at <= Hi[d] for both halves to be non-empty.
func (b Box) SplitAt(d, at int) (Box, Box) {
	lo, hi := b, b
	lo.Hi[d] = at - 1
	hi.Lo[d] = at
	return lo, hi
}

// Halve splits the box at the midpoint of its longest dimension.
func (b Box) Halve() (Box, Box) {
	d := b.Shape().MaxDim()
	at := b.Lo[d] + (b.Hi[d]-b.Lo[d]+1)/2
	return b.SplitAt(d, at)
}

// LongestDim returns the dimension of largest extent.
func (b Box) LongestDim() int { return b.Shape().MaxDim() }

// Offset returns the linear offset of cell i within the box using
// x-fastest (Fortran-like) ordering, matching the field storage layout
// in package grid. The cell must be inside the box.
func (b Box) Offset(i Index) int {
	s := b.Shape()
	return (i[0] - b.Lo[0]) + s[0]*((i[1]-b.Lo[1])+s[1]*(i[2]-b.Lo[2]))
}

// IndexAt is the inverse of Offset.
func (b Box) IndexAt(off int) Index {
	s := b.Shape()
	x := off % s[0]
	off /= s[0]
	y := off % s[1]
	z := off / s[1]
	return Index{b.Lo[0] + x, b.Lo[1] + y, b.Lo[2] + z}
}

// SurfaceCells returns the number of cells on the boundary shell of
// the box — the cells that have at least one face on the box surface.
// This is the ghost-exchange volume proxy used by the communication
// model.
func (b Box) SurfaceCells() int64 {
	if b.Empty() {
		return 0
	}
	s := b.Shape()
	inner := Index{max(s[0]-2, 0), max(s[1]-2, 0), max(s[2]-2, 0)}
	return s.Product() - inner.Product()
}

// ForEach calls fn for every cell in the box in Offset order.
func (b Box) ForEach(fn func(Index)) {
	if b.Empty() {
		return
	}
	for z := b.Lo[2]; z <= b.Hi[2]; z++ {
		for y := b.Lo[1]; y <= b.Hi[1]; y++ {
			for x := b.Lo[0]; x <= b.Hi[0]; x++ {
				fn(Index{x, y, z})
			}
		}
	}
}

func (b Box) String() string {
	return fmt.Sprintf("[%v..%v]", b.Lo, b.Hi)
}
