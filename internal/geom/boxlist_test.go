package geom

import (
	"math/rand"
	"testing"
)

func TestSubtractDisjointTiles(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 500; i++ {
		a, b := randNonEmptyBox(r), randNonEmptyBox(r)
		parts := Subtract(a, b)
		if !parts.Disjoint() {
			t.Fatalf("Subtract produced overlapping parts: %v \\ %v = %v", a, b, parts)
		}
		// parts + a∩b must tile a exactly.
		total := parts.NumCells() + a.Intersect(b).NumCells()
		if total != a.NumCells() {
			t.Fatalf("Subtract cell accounting wrong: %v \\ %v: %d + overlap != %d",
				a, b, parts.NumCells(), a.NumCells())
		}
		for _, p := range parts {
			if !a.ContainsBox(p) {
				t.Fatalf("part %v escapes %v", p, a)
			}
			if p.Intersects(b) {
				t.Fatalf("part %v still overlaps %v", p, b)
			}
		}
	}
}

func TestSubtractSelf(t *testing.T) {
	a := UnitCube(4)
	if parts := Subtract(a, a); len(parts) != 0 {
		t.Errorf("a \\ a should be empty, got %v", parts)
	}
}

func TestSubtractDisjointOperands(t *testing.T) {
	a := UnitCube(4)
	b := a.Shift(Index{10, 0, 0})
	parts := Subtract(a, b)
	if len(parts) != 1 || parts[0] != a {
		t.Errorf("a \\ disjoint should be {a}, got %v", parts)
	}
}

func TestSubtractCenterHole(t *testing.T) {
	a := UnitCube(6)
	hole := NewBox(Index{2, 2, 2}, Index{3, 3, 3})
	parts := Subtract(a, hole)
	if parts.NumCells() != a.NumCells()-hole.NumCells() {
		t.Errorf("cell count wrong: %d", parts.NumCells())
	}
	if len(parts) != 6 {
		t.Errorf("center hole should give 6 slabs, got %d", len(parts))
	}
}

func TestSubtractList(t *testing.T) {
	a := UnitCube(8)
	covers := BoxList{
		NewBox(Index{0, 0, 0}, Index{7, 7, 3}),
		NewBox(Index{0, 0, 4}, Index{7, 7, 7}),
	}
	if rest := SubtractList(a, covers); len(rest) != 0 {
		t.Errorf("fully covered box should leave nothing, got %v", rest)
	}
	partial := BoxList{NewBox(Index{0, 0, 0}, Index{7, 7, 3})}
	rest := SubtractList(a, partial)
	if rest.NumCells() != 8*8*4 {
		t.Errorf("remaining cells = %d, want %d", rest.NumCells(), 8*8*4)
	}
}

func TestContainsBoxList(t *testing.T) {
	l := BoxList{
		NewBox(Index{0, 0, 0}, Index{3, 7, 7}),
		NewBox(Index{4, 0, 0}, Index{7, 7, 7}),
	}
	if !l.ContainsBox(UnitCube(8)) {
		t.Error("two slabs must cover the cube")
	}
	if l.ContainsBox(UnitCube(9)) {
		t.Error("slabs must not cover the larger cube")
	}
	if !l.Contains(Index{5, 5, 5}) || l.Contains(Index{8, 0, 0}) {
		t.Error("point containment wrong")
	}
}

func TestBoundingAndNumCells(t *testing.T) {
	l := BoxList{UnitCube(2), UnitCube(2).Shift(Index{4, 4, 4})}
	bb := l.Bounding()
	if bb.Lo != (Index{0, 0, 0}) || bb.Hi != (Index{5, 5, 5}) {
		t.Errorf("Bounding = %v", bb)
	}
	if l.NumCells() != 16 {
		t.Errorf("NumCells = %d", l.NumCells())
	}
	if (BoxList{}).Bounding().NumCells() != 0 {
		t.Error("empty list bounding must be empty")
	}
}

func TestIntersectBoxList(t *testing.T) {
	l := BoxList{UnitCube(4), UnitCube(4).Shift(Index{10, 0, 0})}
	got := l.IntersectBox(NewBox(Index{2, 0, 0}, Index{11, 3, 3}))
	if len(got) != 2 {
		t.Fatalf("expected 2 intersections, got %v", got)
	}
	if got.NumCells() != 2*4*4+2*4*4 {
		t.Errorf("intersection cells = %d", got.NumCells())
	}
}

func TestSplitEvenly(t *testing.T) {
	l := BoxList{UnitCube(8)}
	out := l.SplitEvenly(7)
	if len(out) < 7 {
		t.Fatalf("SplitEvenly produced %d boxes, want >= 7", len(out))
	}
	if out.NumCells() != 512 {
		t.Errorf("SplitEvenly changed total cells: %d", out.NumCells())
	}
	if !out.Disjoint() {
		t.Error("SplitEvenly parts must be disjoint")
	}
	// Largest/smallest ratio should be modest for a power-of-two cube.
	var lo, hi int64 = 1 << 62, 0
	for _, b := range out {
		c := b.NumCells()
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi > 4*lo {
		t.Errorf("SplitEvenly very uneven: min %d max %d", lo, hi)
	}
}

func TestSplitEvenlySingleCells(t *testing.T) {
	l := BoxList{UnitCube(1)}
	out := l.SplitEvenly(5)
	if len(out) != 1 {
		t.Errorf("single cell cannot be split, got %d boxes", len(out))
	}
}

func TestRefineCoarsenList(t *testing.T) {
	l := BoxList{UnitCube(2), UnitCube(2).Shift(Index{4, 0, 0})}
	r := l.Refine(2)
	if r.NumCells() != l.NumCells()*8 {
		t.Error("list refine cell count wrong")
	}
	if c := r.Coarsen(2); c.NumCells() != l.NumCells() {
		t.Error("list coarsen did not invert refine")
	}
}

func TestSortByLo(t *testing.T) {
	l := BoxList{
		UnitCube(1).Shift(Index{0, 0, 5}),
		UnitCube(1).Shift(Index{3, 0, 0}),
		UnitCube(1).Shift(Index{1, 0, 0}),
		UnitCube(1).Shift(Index{0, 2, 0}),
	}
	l.SortByLo()
	want := []Index{{1, 0, 0}, {3, 0, 0}, {0, 2, 0}, {0, 0, 5}}
	for i, b := range l {
		if b.Lo != want[i] {
			t.Fatalf("SortByLo order wrong at %d: %v", i, b.Lo)
		}
	}
}

func TestCoalesceMergesAdjacent(t *testing.T) {
	l := BoxList{
		NewBox(Index{0, 0, 0}, Index{3, 7, 7}),
		NewBox(Index{4, 0, 0}, Index{7, 7, 7}),
	}
	out := l.Coalesce()
	if len(out) != 1 || out[0] != UnitCube(8) {
		t.Errorf("Coalesce = %v", out)
	}
}

func TestCoalesceChain(t *testing.T) {
	// Four quarters of a slab merge down to one box (two merge steps).
	var l BoxList
	for x := 0; x < 8; x += 2 {
		l = append(l, BoxFromShape(Index{x, 0, 0}, Index{2, 4, 4}))
	}
	out := l.Coalesce()
	if len(out) != 1 {
		t.Errorf("chain should coalesce to one box, got %v", out)
	}
	if out.NumCells() != l.NumCells() {
		t.Error("coalesce changed cell count")
	}
}

func TestCoalesceLeavesNonMergeable(t *testing.T) {
	l := BoxList{
		UnitCube(2),
		UnitCube(2).Shift(Index{5, 0, 0}),      // gap
		NewBox(Index{0, 2, 0}, Index{3, 3, 1}), // different cross-section
	}
	out := l.Coalesce()
	if len(out) != 3 {
		t.Errorf("nothing should merge, got %v", out)
	}
	if !out.Disjoint() || out.NumCells() != l.NumCells() {
		t.Error("coalesce corrupted the list")
	}
}

func TestCoalesceProperty(t *testing.T) {
	// For random disjoint tilings: cells preserved, disjointness
	// preserved, count never grows.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		tiles := BoxList{UnitCube(8)}.SplitEvenly(2 + rng.Intn(20))
		out := tiles.Coalesce()
		if out.NumCells() != tiles.NumCells() {
			t.Fatalf("trial %d: cells changed", trial)
		}
		if !out.Disjoint() {
			t.Fatalf("trial %d: overlap introduced", trial)
		}
		if len(out) > len(tiles) {
			t.Fatalf("trial %d: coalesce grew the list", trial)
		}
	}
}
