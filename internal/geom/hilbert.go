package geom

// Hilbert-curve indexing (Skilling's transpose algorithm, AIP Conf.
// Proc. 707, 2004). Like MortonKey, HilbertKey maps a non-negative
// 3-D index with up to 21 bits per component onto a single uint64
// curve position; unlike the Morton curve, consecutive Hilbert
// positions are always face neighbours, so contiguous curve runs have
// tighter bounding boxes — the locality property SFC partitioners
// want. The two keys are interchangeable as sort keys, which is how
// SFCDLB exposes the curve choice.

// hilbertOrder is the curve order: bits per component. 3×21 = 63 key
// bits fit a uint64, matching MortonKey's domain.
const hilbertOrder = 21

// HilbertKey returns the position of the index on the order-21
// Hilbert curve. Negative components are clamped to zero and each
// component keeps its low 21 bits, mirroring MortonKey's envelope.
func (a Index) HilbertKey() uint64 {
	return hilbertKey(hilbertOrder, a)
}

// HilbertPoint inverts HilbertKey: it returns the index whose
// HilbertKey is h (for h within the order-21 curve).
func HilbertPoint(h uint64) Index {
	return hilbertPoint(hilbertOrder, h)
}

// hilbertKey computes the order-b curve position of a point with
// 0 <= component < 2^b.
func hilbertKey(b uint, a Index) uint64 {
	var x [Dims]uint32
	for d := 0; d < Dims; d++ {
		v := a[d]
		if v < 0 {
			v = 0
		}
		x[d] = uint32(v) & (1<<b - 1)
	}
	axesToTranspose(&x, b)
	var h uint64
	for k := int(b) - 1; k >= 0; k-- {
		for i := 0; i < Dims; i++ {
			h = h<<1 | uint64(x[i]>>uint(k)&1)
		}
	}
	return h
}

// hilbertPoint inverts hilbertKey for the order-b curve.
func hilbertPoint(b uint, h uint64) Index {
	var x [Dims]uint32
	for k := uint(0); k < b; k++ {
		for i := uint(0); i < Dims; i++ {
			x[i] |= uint32(h>>(Dims*k+Dims-1-i)&1) << k
		}
	}
	transposeToAxes(&x, b)
	var a Index
	for d := 0; d < Dims; d++ {
		a[d] = int(x[d])
	}
	return a
}

// axesToTranspose converts coordinates into the transposed Hilbert
// index in place (Skilling's AxestoTranspose).
func axesToTranspose(x *[Dims]uint32, b uint) {
	m := uint32(1) << (b - 1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < Dims; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < Dims; i++ {
		x[i] ^= x[i-1]
	}
	var t uint32
	for q := m; q > 1; q >>= 1 {
		if x[Dims-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < Dims; i++ {
		x[i] ^= t
	}
}

// transposeToAxes converts a transposed Hilbert index back into
// coordinates in place (Skilling's TransposetoAxes).
func transposeToAxes(x *[Dims]uint32, b uint) {
	n := uint32(2) << (b - 1)
	// Gray decode by H ^ (H/2).
	t := x[Dims-1] >> 1
	for i := Dims - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint32(2); q != n; q <<= 1 {
		p := q - 1
		for i := Dims - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				tt := (x[0] ^ x[i]) & p
				x[0] ^= tt
				x[i] ^= tt
			}
		}
	}
}
