package geom_test

import (
	"fmt"

	"samrdlb/internal/geom"
)

func ExampleBox_Refine() {
	coarse := geom.NewBox(geom.Index{2, 2, 2}, geom.Index{3, 3, 3})
	fine := coarse.Refine(2)
	fmt.Println(fine, fine.NumCells(), "cells")
	fmt.Println(fine.Coarsen(2) == coarse)
	// Output:
	// [(4,4,4)..(7,7,7)] 64 cells
	// true
}

func ExampleSubtract() {
	domain := geom.UnitCube(4)
	hole := geom.NewBox(geom.Index{1, 1, 1}, geom.Index{2, 2, 2})
	parts := geom.Subtract(domain, hole)
	fmt.Println(len(parts), "boxes,", parts.NumCells(), "cells")
	// Output:
	// 6 boxes, 56 cells
}

func ExampleBoxList_SplitEvenly() {
	tiles := geom.BoxList{geom.UnitCube(8)}.SplitEvenly(4)
	fmt.Println(len(tiles), "tiles of", tiles[0].NumCells(), "cells each")
	// Output:
	// 4 tiles of 128 cells each
}

func ExampleBoxList_Coalesce() {
	halves := geom.BoxList{
		geom.NewBox(geom.Index{0, 0, 0}, geom.Index{3, 7, 7}),
		geom.NewBox(geom.Index{4, 0, 0}, geom.Index{7, 7, 7}),
	}
	fmt.Println(halves.Coalesce())
	// Output:
	// [[(0,0,0)..(7,7,7)]]
}

func ExampleIndex_MortonKey() {
	a := geom.Index{0, 0, 0}
	b := geom.Index{1, 1, 1} // same octant as a
	c := geom.Index{4, 4, 4} // next octant
	fmt.Println(a.MortonKey() < b.MortonKey(), b.MortonKey() < c.MortonKey())
	// Output:
	// true true
}
