// Package trace records structured events from a SAMR run: the
// integration order of level steps (the paper's Figures 2 and 5), the
// balancing points, regrids, and global redistributions (Figure 6).
// Traces are used by tests to assert the control flow matches the
// paper's flowchart and by the hierarchy tool to render the figures.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	Step Kind = iota
	LocalBalance
	GlobalCheck
	Redistribution
	Regrid
	// ProbeRetry records a global-phase probe that needed retries (or
	// exhausted them and fell back to the forecast).
	ProbeRetry
	// Quarantine records a level-0 boundary at which one or more
	// groups were unreachable and the run degraded to local-only
	// balancing.
	Quarantine
	// Recovery records a checkpoint restore after an injected
	// processor failure.
	Recovery
	// Fault records a raw injected fault observed by the engine
	// (processor failure, outage window edges).
	Fault
	// Checkpoint records a durable checkpoint generation written to
	// (or failed against) the on-disk store.
	Checkpoint
	// Membership records an elastic-membership transition: suspicion
	// raised or cleared, a processor presumed dead, a rejoin beginning
	// or completing, or a group dropping below quorum.
	Membership
)

func (k Kind) String() string {
	switch k {
	case Step:
		return "step"
	case LocalBalance:
		return "local-balance"
	case GlobalCheck:
		return "global-check"
	case Redistribution:
		return "redistribution"
	case Regrid:
		return "regrid"
	case ProbeRetry:
		return "probe-retry"
	case Quarantine:
		return "quarantine"
	case Recovery:
		return "recovery"
	case Fault:
		return "fault"
	case Checkpoint:
		return "checkpoint"
	case Membership:
		return "membership"
	default:
		return "unknown"
	}
}

// Event is one recorded occurrence.
type Event struct {
	Kind  Kind
	Level int
	// VTime is the virtual time at which the event completed.
	VTime float64
	// Note carries event-specific detail (migration counts, gain/cost).
	Note string
}

// Recorder accumulates events. A nil Recorder is valid and records
// nothing, so callers never need to branch.
type Recorder struct {
	Events []Event
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Add appends an event (no-op on nil receiver).
func (r *Recorder) Add(k Kind, level int, vtime float64, note string) {
	if r == nil {
		return
	}
	r.Events = append(r.Events, Event{Kind: k, Level: level, VTime: vtime, Note: note})
}

// StepLevels returns the levels of the Step events in order — the
// integration sequence of Figure 2.
func (r *Recorder) StepLevels() []int {
	if r == nil {
		return nil
	}
	var out []int
	for _, e := range r.Events {
		if e.Kind == Step {
			out = append(out, e.Level)
		}
	}
	return out
}

// Count returns how many events of the given kind were recorded.
func (r *Recorder) Count(k Kind) int {
	if r == nil {
		return 0
	}
	n := 0
	for _, e := range r.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// OfKind returns the events of the given kind, in order.
func (r *Recorder) OfKind(k Kind) []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for _, e := range r.Events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// String renders the trace, one event per line.
func (r *Recorder) String() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for i, e := range r.Events {
		fmt.Fprintf(&b, "%4d t=%.6f %-14s level=%d %s\n", i+1, e.VTime, e.Kind, e.Level, e.Note)
	}
	return b.String()
}

// OrderDiagram renders the step sequence like the paper's Figure 2:
// one line per level, with the ordinal position of every step of that
// level marked.
func (r *Recorder) OrderDiagram(maxLevel int) string {
	steps := r.StepLevels()
	var b strings.Builder
	for l := 0; l <= maxLevel; l++ {
		fmt.Fprintf(&b, "level %d: ", l)
		for i, s := range steps {
			if s == l {
				fmt.Fprintf(&b, "%d ", i+1)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// WriteJSON emits the trace as a JSON array of events, for external
// analysis and plotting tools.
func (r *Recorder) WriteJSON(w io.Writer) error {
	type jsonEvent struct {
		Kind  string  `json:"kind"`
		Level int     `json:"level"`
		VTime float64 `json:"vtime"`
		Note  string  `json:"note,omitempty"`
	}
	var events []jsonEvent
	if r != nil {
		events = make([]jsonEvent, len(r.Events))
		for i, e := range r.Events {
			events[i] = jsonEvent{Kind: e.Kind.String(), Level: e.Level, VTime: e.VTime, Note: e.Note}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(events)
}
