package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	r := New()
	r.Add(Step, 0, 0.1, "")
	r.Add(Step, 1, 0.2, "")
	r.Add(LocalBalance, 1, 0.25, "migrations=2")
	r.Add(GlobalCheck, 0, 0.3, "gain=1 cost=2")
	if got := r.StepLevels(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("StepLevels = %v", got)
	}
	if r.Count(Step) != 2 || r.Count(GlobalCheck) != 1 || r.Count(Redistribution) != 0 {
		t.Error("Count wrong")
	}
	if evs := r.OfKind(LocalBalance); len(evs) != 1 || evs[0].Note != "migrations=2" {
		t.Errorf("OfKind = %v", evs)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Add(Step, 0, 0, "") // must not panic
	if r.StepLevels() != nil || r.Count(Step) != 0 || r.OfKind(Step) != nil || r.String() != "" {
		t.Error("nil recorder must behave as empty")
	}
}

func TestString(t *testing.T) {
	r := New()
	r.Add(Redistribution, 0, 1.5, "bytes=42")
	s := r.String()
	if !strings.Contains(s, "redistribution") || !strings.Contains(s, "bytes=42") {
		t.Errorf("String = %q", s)
	}
}

func TestOrderDiagram(t *testing.T) {
	r := New()
	for _, l := range []int{0, 1, 1} {
		r.Add(Step, l, 0, "")
	}
	d := r.OrderDiagram(1)
	if !strings.Contains(d, "level 0: 1") || !strings.Contains(d, "level 1: 2 3") {
		t.Errorf("OrderDiagram = %q", d)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		Step: "step", LocalBalance: "local-balance", GlobalCheck: "global-check",
		Redistribution: "redistribution", Regrid: "regrid", Kind(99): "unknown",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %s", k, k.String())
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := New()
	r.Add(Step, 2, 1.25, "")
	r.Add(GlobalCheck, 0, 2.5, "gain=1")
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0]["kind"] != "step" || events[0]["level"].(float64) != 2 {
		t.Errorf("first event wrong: %v", events[0])
	}
	if events[1]["note"] != "gain=1" {
		t.Errorf("note lost: %v", events[1])
	}
	// Nil recorder emits an empty (null) array without error.
	var nr *Recorder
	buf.Reset()
	if err := nr.WriteJSON(&buf); err != nil {
		t.Errorf("nil WriteJSON: %v", err)
	}
}
