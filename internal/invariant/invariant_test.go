package invariant_test

import (
	"math"
	"strings"
	"testing"

	"samrdlb/internal/dlb"
	"samrdlb/internal/engine"
	"samrdlb/internal/fault"
	"samrdlb/internal/invariant"
	"samrdlb/internal/machine"
	"samrdlb/internal/workload"
)

// cleanRun executes a short distributed run with the checker attached
// and returns the runner for post-hoc tampering.
func cleanRun(t *testing.T, c *invariant.Checker) *engine.Runner {
	t.Helper()
	r := engine.New(machine.WanPair(2, nil), workload.NewShockPool3D(16, 2), engine.Options{
		Steps: 2, MaxLevel: 1, Invariants: c.Check,
	})
	r.Run()
	return r
}

func TestCheckerCleanRunHasNoViolations(t *testing.T) {
	c := invariant.New(true)
	cleanRun(t, c)
	if err := c.Err(); err != nil {
		t.Fatalf("clean run violated invariants: %v", err)
	}
}

// TestCheckerCatchesMisplacedChild hand-breaks co-location after a
// clean run and feeds the state back through the checker.
func TestCheckerCatchesMisplacedChild(t *testing.T) {
	c := invariant.New(true)
	r := cleanRun(t, c)

	h, sys := r.Hierarchy(), r.System()
	grids := h.Grids(1)
	if len(grids) == 0 {
		t.Fatal("run produced no level-1 grids")
	}
	victim := grids[0]
	parent := h.Grid(victim.Parent)
	for q := 0; q < sys.NumProcs(); q++ {
		if sys.GroupOf(q) != sys.GroupOf(parent.Owner) {
			h.SetOwner(victim, q)
			break
		}
	}

	c.Check(&engine.PhaseInfo{Phase: engine.PhaseRegrid, Step: 3, Runner: r})
	found := false
	for _, v := range c.Violations() {
		if v.Rule == "co-location" {
			found = true
			if v.Step != 3 || v.Phase != engine.PhaseRegrid {
				t.Errorf("violation context wrong: %+v", v)
			}
			if !strings.Contains(v.String(), "co-location") {
				t.Errorf("String() misses the rule: %q", v.String())
			}
		}
	}
	if !found {
		t.Fatalf("misplaced child not caught; violations: %v", c.Violations())
	}
	if c.Err() == nil {
		t.Fatal("Err() must be non-nil after a violation")
	}
}

// TestCheckerGateAndCostRules feeds synthetic global decisions through
// the checker: an Invoked flag contradicting the recorded Gain/γ·Cost
// comparison, and a NaN cost, must each be flagged.
func TestCheckerGateAndCostRules(t *testing.T) {
	c := invariant.New(true)
	r := cleanRun(t, c)
	before := len(c.Violations())

	c.Check(&engine.PhaseInfo{
		Phase: engine.PhaseGlobalBalance, Step: 5, Runner: r,
		Decision: &dlb.GlobalDecision{
			GainCostValid: true, Gain: 1, Gamma: 2, Cost: 10, Invoked: true,
		},
	})
	c.Check(&engine.PhaseInfo{
		Phase: engine.PhaseGlobalBalance, Step: 6, Runner: r,
		Decision: &dlb.GlobalDecision{
			GainCostValid: true, Gain: 1, Gamma: 2, Cost: math.NaN(),
		},
	})
	var gate, sane bool
	for _, v := range c.Violations()[before:] {
		switch v.Rule {
		case "gain-cost-gate":
			gate = true
		case "cost-sane":
			sane = true
		}
	}
	if !gate {
		t.Error("contradictory Invoked flag not flagged by gain-cost-gate")
	}
	if !sane {
		t.Error("NaN cost not flagged by cost-sane")
	}
}

// TestCheckerTruncatesViolationFlood: a broken invariant fires every
// phase; the report must cap and say so.
func TestCheckerTruncatesViolationFlood(t *testing.T) {
	c := invariant.New(true)
	c.MaxViolations = 2
	r := cleanRun(t, c)

	h, sys := r.Hierarchy(), r.System()
	grids := h.Grids(1)
	if len(grids) == 0 {
		t.Fatal("run produced no level-1 grids")
	}
	parent := h.Grid(grids[0].Parent)
	for q := 0; q < sys.NumProcs(); q++ {
		if sys.GroupOf(q) != sys.GroupOf(parent.Owner) {
			h.SetOwner(grids[0], q)
			break
		}
	}
	for i := 0; i < 5; i++ {
		c.Check(&engine.PhaseInfo{Phase: engine.PhaseRegrid, Step: i, Runner: r})
	}
	if got := len(c.Violations()); got != 2 {
		t.Fatalf("violations = %d, want cap of 2", got)
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("capped report must mention dropped violations: %v", err)
	}
}

// TestCheckerCleanAcrossRejoins is the acceptance scenario under the
// oracle: every group loses and regains a processor to bounded outage
// windows, and the full run — degradation, recovery, rejoin, catch-up
// — must hold every invariant including the rejoin rules.
func TestCheckerCleanAcrossRejoins(t *testing.T) {
	// Boundary clocks from a schedule-free run (empty schedule keeps
	// the checkpoint charging identical) place the outage windows.
	empty, err := fault.NewSchedule(7)
	if err != nil {
		t.Fatal(err)
	}
	var bt []float64
	engine.New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), engine.Options{
		Steps: 8, MaxLevel: 1, Faults: empty,
		AfterStep: func(step int, rr *engine.Runner) { bt = append(bt, rr.Clock().Now()) },
	}).Run()

	sched, err := fault.NewSchedule(7,
		fault.Event{Kind: fault.ProcFailure, Proc: 1,
			Start: (bt[0] + bt[1]) / 2, End: (bt[2] + bt[3]) / 2},
		fault.Event{Kind: fault.ProcFailure, Proc: 5,
			Start: (bt[1] + bt[2]) / 2, End: (bt[3] + bt[4]) / 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	c := invariant.New(true)
	r := engine.New(machine.WanPair(4, nil), workload.NewShockPool3D(16, 2), engine.Options{
		Steps: 8, MaxLevel: 1, Faults: sched, Invariants: c.Check,
	})
	res := r.Run()
	if err := c.Err(); err != nil {
		t.Fatalf("rejoin run violated invariants: %v", err)
	}
	if res.Rejoins != 2 {
		t.Fatalf("setup: both procs must rejoin, got %d", res.Rejoins)
	}
}

// TestCheckerScopesByPolicyTraits pins the NewForPolicy mapping onto
// the registry's traits: each policy gets exactly the rules it
// promises, unknown names fall back to the strict set, and the legacy
// New(colocation) constructor keeps its historical two-scheme scoping.
func TestCheckerScopesByPolicyTraits(t *testing.T) {
	for _, name := range dlb.PolicyNames() {
		tr, ok := dlb.PolicyTraits(name)
		if !ok {
			t.Fatalf("registered policy %q has no traits", name)
		}
		c := invariant.NewForPolicy(name)
		if c.Colocation != tr.Colocation || c.GainGate != tr.GainGate || c.BalanceTolerance != tr.BalanceTolerance {
			t.Errorf("NewForPolicy(%q) = {%v %v %v}, want traits %+v",
				name, c.Colocation, c.GainGate, c.BalanceTolerance, tr)
		}
	}
	if c := invariant.NewForPolicy("no-such-policy"); !c.Colocation || !c.GainGate || !c.BalanceTolerance {
		t.Errorf("unknown policy must fall back to the strict rule set, got %+v", c)
	}
	if c := invariant.New(true); !c.Colocation || !c.GainGate || !c.BalanceTolerance {
		t.Errorf("New(true) lost its historical scoping: %+v", c)
	}
	if c := invariant.New(false); c.Colocation || c.GainGate || !c.BalanceTolerance {
		t.Errorf("New(false) lost its historical scoping: %+v", c)
	}
}

// TestCheckerGateRuleScopedOffForUngatedPolicies is the regression for
// the latent paper-scheme assumption: diffusion redistributes on a
// healthy multi-group system without ever running the Eq. 1 gate, so a
// decision with Evaluated && Invoked && !GainCostValid is legitimate
// under its checker — while the same decision under the distributed
// scheme's checker remains a violation.
func TestCheckerGateRuleScopedOffForUngatedPolicies(t *testing.T) {
	r := cleanRun(t, invariant.New(true))
	ungatedDecision := func() *engine.PhaseInfo {
		return &engine.PhaseInfo{
			Phase: engine.PhaseGlobalBalance, Step: 5, Runner: r,
			Decision: &dlb.GlobalDecision{Evaluated: true, Invoked: true},
		}
	}

	diff := invariant.NewForPolicy("diffusion")
	diff.Check(ungatedDecision())
	for _, v := range diff.Violations() {
		if v.Rule == "gain-cost-gate" {
			t.Fatalf("diffusion checker flagged a legitimate ungated redistribution: %v", v)
		}
	}

	strict := invariant.NewForPolicy("distributed")
	strict.Check(ungatedDecision())
	found := false
	for _, v := range strict.Violations() {
		if v.Rule == "gain-cost-gate" {
			found = true
		}
	}
	if !found {
		t.Fatal("distributed checker must still flag an ungated redistribution")
	}

	// A decision that does carry a gate record is audited under every
	// policy: a contradictory Invoked flag stays a violation even for
	// diffusion's checker.
	diff2 := invariant.NewForPolicy("diffusion")
	diff2.Check(&engine.PhaseInfo{
		Phase: engine.PhaseGlobalBalance, Step: 6, Runner: r,
		Decision: &dlb.GlobalDecision{
			GainCostValid: true, Gain: 1, Gamma: 2, Cost: 10, Invoked: true,
		},
	})
	found = false
	for _, v := range diff2.Violations() {
		if v.Rule == "gain-cost-gate" {
			found = true
		}
	}
	if !found {
		t.Fatal("a recorded gate must be audited regardless of policy traits")
	}
}

// TestCheckerBalanceToleranceScopedOff: policies that trade the
// one-quantum bound away (knapsack's movement cap, SFC contiguity)
// must not be held to it, while their structural rules stay on.
func TestCheckerBalanceToleranceScopedOff(t *testing.T) {
	for _, name := range []string{"knapsack", "sfc", "hilbert-sfc"} {
		c := invariant.NewForPolicy(name)
		if c.BalanceTolerance {
			t.Errorf("%s: balance-tolerance should be scoped off", name)
		}
		if !c.Colocation {
			t.Errorf("%s: structural co-location rule must stay on", name)
		}
	}
}

// TestCheckerCatchesDirtyRejoin hand-assigns a grid to a processor
// that is rejoining after a crash — exactly the state the rejoin-clean
// rule exists to forbid (a crash loses the proc's grids; nothing may
// be placed on it before re-admission completes).
func TestCheckerCatchesDirtyRejoin(t *testing.T) {
	empty, err := fault.NewSchedule(7)
	if err != nil {
		t.Fatal(err)
	}
	c := invariant.New(true)
	r := engine.New(machine.WanPair(2, nil), workload.NewShockPool3D(16, 2), engine.Options{
		Steps: 2, MaxLevel: 1, Faults: empty, Invariants: c.Check,
	})
	r.Run()
	before := len(c.Violations())

	grids := r.Hierarchy().Grids(1)
	if len(grids) == 0 {
		t.Fatal("run produced no level-1 grids")
	}
	p := grids[0].Owner
	r.Membership().Crash(p)
	r.Membership().BeginRejoin(p)
	c.Check(&engine.PhaseInfo{Phase: engine.PhaseRegrid, Step: 3, Runner: r})

	found := false
	for _, v := range c.Violations()[before:] {
		if v.Rule == "rejoin-clean" {
			found = true
		}
	}
	if !found {
		t.Fatalf("grid on a crash-rejoining proc not caught; violations: %v", c.Violations()[before:])
	}
}
