// Package invariant implements the paper-invariant oracle: a
// pluggable checker the engine invokes after each structural phase
// (regrid, local balance, global redistribution, checkpoint, restore)
// via engine.Options.Invariants. Each check maps to a structural
// promise the paper makes:
//
//   - co-location: every child grid lives in its parent's group
//     (Section 4.2 — "the newly generated grids are always placed on
//     the processors within the same group as their parent grids").
//   - level-0-only global moves: only level-0 grids migrate between
//     groups (Section 4.3's boundary shift of Figure 6).
//   - gating: a global redistribution was invoked iff Gain > γ·Cost
//     (Eq. 1–4), judged on the very values the balancer compared.
//   - balance tolerance: after a balancing pass, perf-normalised
//     per-processor loads lie within one grid quantum of the
//     weight-proportional target (Section 4.1's n_A·p_A weighting).
//   - ledger-exact: the incremental load ledger equals a full
//     recomputation.
//   - owner sanity: every owner is a valid processor of the
//     machine.System; after a restore every owner is alive.
//
// The checker never panics: violations accumulate and surface through
// Err()/Violations, so a scenario harness can shrink a failing case.
package invariant

import (
	"fmt"
	"math"
	"strings"

	"samrdlb/internal/dlb"
	"samrdlb/internal/engine"
	"samrdlb/internal/machine"
)

// Violation is one observed breach of an invariant.
type Violation struct {
	Phase  engine.Phase
	Step   int
	Rule   string
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("step %d, %s: %s: %s", v.Step, v.Phase, v.Rule, v.Detail)
}

// Checker accumulates violations across a run. Attach it with
// Options.Invariants = checker.Check. A checker serves one run at a
// time (the engine loop is single-threaded).
type Checker struct {
	// Colocation enables the distributed scheme's placement invariants
	// (parent–child co-location, within-group local migrations,
	// level-0-only global moves). The parallel scheme deliberately
	// violates them, so leave it false there.
	Colocation bool
	// GainGate enables the paper-specific gate bookkeeping rule: a
	// global redistribution on a healthy multi-group system must have
	// run (and recorded) the Eq. 1 gate. Policies that redistribute
	// without a gain/cost model — diffusion, the parallel baseline —
	// legitimately invoke without a record, so the rule is scoped off
	// for them. A decision that does carry GainCostValid is always
	// audited, whatever the policy.
	GainGate bool
	// BalanceTolerance enables the one-grid-quantum spread check after
	// local phases. SFC contiguity and knapsack's movement cap trade
	// this bound away by design.
	BalanceTolerance bool
	// MaxViolations bounds the accumulated list (0 = 64): a broken
	// invariant tends to fire every phase thereafter.
	MaxViolations int
	// RejoinGraceSteps is the number of level-0 steps after a
	// processor's re-admission during which the balance-tolerance
	// check is suspended for its sets (0 = default 2): the catch-up
	// redistribution and the following local phases need a boundary or
	// two to absorb the returned capacity.
	RejoinGraceSteps int

	violations []Violation
	truncated  bool
}

// New returns a checker; colocation selects the distributed scheme's
// placement invariants. It preserves the historical two-scheme
// scoping: the distributed scheme gets the full rule set, the parallel
// baseline keeps only the structural rules plus balance tolerance.
func New(colocation bool) *Checker {
	return &Checker{Colocation: colocation, GainGate: colocation, BalanceTolerance: true}
}

// NewForPolicy returns a checker scoped by the registered policy's
// traits, so every policy runs under the oracle with exactly the rules
// it promises to uphold. Unknown names fall back to the strict
// distributed-scheme rule set.
func NewForPolicy(policy string) *Checker {
	tr, ok := dlb.PolicyTraits(policy)
	if !ok {
		return New(true)
	}
	return &Checker{
		Colocation:       tr.Colocation,
		GainGate:         tr.GainGate,
		BalanceTolerance: tr.BalanceTolerance,
	}
}

// Violations returns the accumulated violations.
func (c *Checker) Violations() []Violation { return c.violations }

// Err returns nil when every check passed, else an error joining the
// accumulated violations.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d invariant violation(s):", len(c.violations))
	for _, v := range c.violations {
		b.WriteString("\n  " + v.String())
	}
	if c.truncated {
		b.WriteString("\n  ... (further violations dropped)")
	}
	return fmt.Errorf("%s", b.String())
}

func (c *Checker) report(pi *engine.PhaseInfo, rule, format string, args ...interface{}) {
	limit := c.MaxViolations
	if limit <= 0 {
		limit = 64
	}
	if len(c.violations) >= limit {
		c.truncated = true
		return
	}
	c.violations = append(c.violations, Violation{
		Phase: pi.Phase, Step: pi.Step, Rule: rule,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Check is the engine.Options.Invariants entry point.
func (c *Checker) Check(pi *engine.PhaseInfo) {
	c.checkStructure(pi)
	c.checkLedger(pi)
	c.checkRejoinClean(pi)
	switch pi.Phase {
	case engine.PhaseLocalBalance:
		if c.Colocation {
			c.checkLocalMigrationsInGroup(pi)
		}
		if c.BalanceTolerance {
			c.checkBalanceTolerance(pi)
		}
	case engine.PhaseGlobalBalance:
		c.checkRecorderGroups(pi)
		c.checkGlobalDecision(pi)
	case engine.PhaseRestore:
		c.checkOwnersAlive(pi)
	}
}

// checkStructure verifies proper nesting, owner validity and (for the
// distributed scheme) parent–child group co-location — at every phase.
func (c *Checker) checkStructure(pi *engine.PhaseInfo) {
	r := pi.Runner
	h, sys := r.Hierarchy(), r.System()
	if err := h.CheckProperNesting(); err != nil {
		c.report(pi, "proper-nesting", "%v", err)
	}
	for l := 0; l <= h.MaxLevel; l++ {
		for _, g := range h.Grids(l) {
			if g.Owner < 0 || g.Owner >= sys.NumProcs() {
				c.report(pi, "owner-range", "grid %d (level %d) owned by processor %d of %d",
					g.ID, l, g.Owner, sys.NumProcs())
				continue
			}
			if !c.Colocation || l == 0 {
				continue
			}
			p := h.Grid(g.Parent)
			if p == nil {
				c.report(pi, "co-location", "grid %d (level %d) has no parent grid %d",
					g.ID, l, g.Parent)
				continue
			}
			if sys.GroupOf(g.Owner) != sys.GroupOf(p.Owner) {
				c.report(pi, "co-location",
					"grid %d (level %d, proc %d, group %d) not in parent %d's group %d (proc %d)",
					g.ID, l, g.Owner, sys.GroupOf(g.Owner), p.ID, sys.GroupOf(p.Owner), p.Owner)
			}
		}
	}
}

// checkLedger verifies the incremental ledger against the full
// recompute oracle.
func (c *Checker) checkLedger(pi *engine.PhaseInfo) {
	if err := pi.Runner.Ledger().Verify(); err != nil {
		c.report(pi, "ledger-exact", "%v", err)
	}
}

// checkRecorderGroups verifies the recorder's Eq. 2 group aggregates
// right where the decision read them (the hook fires before the
// interval resets).
func (c *Checker) checkRecorderGroups(pi *engine.PhaseInfo) {
	if err := pi.Runner.Recorder().VerifyGroups(pi.Runner.System()); err != nil {
		c.report(pi, "recorder-groups", "%v", err)
	}
}

// checkLocalMigrationsInGroup asserts the distributed scheme's local
// phase never crossed a group boundary.
func (c *Checker) checkLocalMigrationsInGroup(pi *engine.PhaseInfo) {
	sys := pi.Runner.System()
	for _, m := range pi.Migrations {
		if !sys.SameGroup(m.From, m.To) {
			c.report(pi, "local-in-group", "level-%d migration of grid %d crossed groups: proc %d (group %d) → proc %d (group %d)",
				pi.Level, m.Grid, m.From, sys.GroupOf(m.From), m.To, sys.GroupOf(m.To))
		}
	}
}

// checkGlobalDecision verifies the global phase's outcome: the Eq. 1
// gate on the balancer's own inputs, sane cost-model values, and (for
// the distributed scheme) that only level-0 grids crossed groups.
func (c *Checker) checkGlobalDecision(pi *engine.PhaseInfo) {
	d := pi.Decision
	if d == nil {
		c.report(pi, "gain-cost-gate", "global-balance hook fired without a decision")
		return
	}
	if d.GainCostValid {
		for _, v := range []struct {
			name string
			val  float64
		}{{"gain", d.Gain}, {"cost", d.Cost}, {"gamma", d.Gamma}, {"delta", d.Delta}} {
			if math.IsNaN(v.val) || math.IsInf(v.val, 0) || v.val < 0 {
				c.report(pi, "cost-sane", "%s = %v (forecast=%v probe-failed=%v)",
					v.name, v.val, d.UsedForecast, d.ProbeFailed)
			}
		}
		if want := d.Gain > d.Gamma*d.Cost; d.Invoked != want {
			c.report(pi, "gain-cost-gate",
				"invoked=%v but Gain > γ·Cost is %v (gain=%g gamma=%g cost=%g)",
				d.Invoked, want, d.Gain, d.Gamma, d.Cost)
		}
	} else if d.Evaluated && d.Invoked && len(d.Quarantined) == 0 && !d.Degraded &&
		pi.Runner.System().NumGroups() >= 2 && c.GainGate {
		// A gated policy on a multi-group system must have run the gate
		// before invoking (the degenerate paths are excluded above).
		// Ungated policies — diffusion, the parallel baseline — are
		// scoped out via the GainGate trait.
		c.report(pi, "gain-cost-gate", "redistribution invoked without a recorded gate")
	}
	if c.Colocation {
		h, sys := pi.Runner.Hierarchy(), pi.Runner.System()
		for _, m := range d.Migrations {
			g := h.Grid(m.Grid)
			if g == nil {
				c.report(pi, "global-level0-only", "migrated grid %d no longer exists", m.Grid)
				continue
			}
			if g.Level != 0 && !sys.SameGroup(m.From, m.To) {
				c.report(pi, "global-level0-only",
					"level-%d grid %d crossed groups: proc %d → %d", g.Level, g.ID, m.From, m.To)
			}
		}
	}
}

// checkBalanceTolerance asserts the weight-proportional balance claim
// after a local phase: within every balanced processor set, the
// perf-normalised load spread at the balanced level is at most one
// grid quantum (the set's largest grid over its slowest processor) —
// the best any grid-granular balancer can do against the
// total·perf_p/Σperf targets of Section 4.1.
func (c *Checker) checkBalanceTolerance(pi *engine.PhaseInfo) {
	sys := pi.Runner.System()
	if c.Colocation {
		for grp := 0; grp < sys.NumGroups(); grp++ {
			c.checkSetBalance(pi, admittedSet(pi, sys.AliveInGroup(grp)), fmt.Sprintf("group %d", grp))
		}
	} else {
		c.checkSetBalance(pi, admittedSet(pi, sys.AliveProcs()), "all processors")
	}
}

// admittedSet intersects procs with the elastic-membership admission
// predicate: presumed-dead and rejoining processors are outside the
// balancer's reach, so the tolerance claim does not cover them.
// Identity when the run has no membership tracker.
func admittedSet(pi *engine.PhaseInfo, procs []int) []int {
	memb := pi.Runner.Membership()
	if memb == nil {
		return procs
	}
	out := make([]int, 0, len(procs))
	for _, p := range procs {
		if memb.Admitted(p) {
			out = append(out, p)
		}
	}
	return out
}

// inRejoinGrace reports whether any processor of the set completed a
// rejoin within the last RejoinGraceSteps level-0 steps: the catch-up
// machinery is still absorbing the returned capacity, so the balance
// tolerance is granted a short grace window (it must hold again once
// the window closes).
func (c *Checker) inRejoinGrace(pi *engine.PhaseInfo, procs []int) bool {
	memb := pi.Runner.Membership()
	if memb == nil {
		return false
	}
	grace := c.RejoinGraceSteps
	if grace <= 0 {
		grace = 2
	}
	for _, p := range procs {
		if rs := memb.ReadmitStep(p); rs >= 0 && pi.Step-rs < grace {
			return true
		}
	}
	return false
}

// checkRejoinClean asserts the rejoin protocol's core promise at every
// phase: a processor rejoining after a crash owns nothing until its
// re-admission completes (its grids were lost with it; re-population
// happens only through the catch-up redistribution or a recovery
// repartition, both of which complete the rejoin first). Presumed-dead
// rejoins keep their grids by design — quarantine semantics — and are
// not checked.
func (c *Checker) checkRejoinClean(pi *engine.PhaseInfo) {
	memb := pi.Runner.Membership()
	if memb == nil {
		return
	}
	sys, h := pi.Runner.System(), pi.Runner.Hierarchy()
	var pending map[int]bool
	for p := 0; p < sys.NumProcs(); p++ {
		if memb.State(p) == machine.StateRejoining && memb.Cause(p) == machine.CauseCrash {
			if pending == nil {
				pending = make(map[int]bool)
			}
			pending[p] = true
		}
	}
	if pending == nil {
		return
	}
	for l := 0; l <= h.MaxLevel; l++ {
		for _, g := range h.Grids(l) {
			if pending[g.Owner] {
				c.report(pi, "rejoin-clean",
					"grid %d (level %d) owned by crash-rejoining processor %d before re-admission",
					g.ID, l, g.Owner)
			}
		}
	}
}

func (c *Checker) checkSetBalance(pi *engine.PhaseInfo, procs []int, label string) {
	if len(procs) < 2 {
		return
	}
	if c.inRejoinGrace(pi, procs) {
		return
	}
	r := pi.Runner
	sys, h := r.System(), r.Hierarchy()
	level := pi.Level
	inSet := make(map[int]bool, len(procs))
	for _, p := range procs {
		inSet[p] = true
	}
	load := make(map[int]float64, len(procs))
	var maxGrid, total float64
	for _, g := range h.Grids(level) {
		if !inSet[g.Owner] {
			continue
		}
		cells := float64(g.NumCells())
		load[g.Owner] += cells
		total += cells
		if cells > maxGrid {
			maxGrid = cells
		}
	}
	if total == 0 {
		return
	}
	minPerf := math.Inf(1)
	maxN, minN := math.Inf(-1), math.Inf(1)
	for _, p := range procs {
		perf := sys.Perf(p)
		if perf < minPerf {
			minPerf = perf
		}
		n := load[p] / perf
		maxN = math.Max(maxN, n)
		minN = math.Min(minN, n)
	}
	// One quantum of tolerance: the balancer cannot split loads finer
	// than its largest movable grid (balanceOver's overshoot break
	// bounds the residual spread by exactly this).
	tol := maxGrid/minPerf + 1e-9*(1+maxN)
	if maxN-minN > tol {
		c.report(pi, "balance-tolerance",
			"%s level %d: perf-normalised spread %g exceeds one grid quantum %g (max %g, min %g)",
			label, level, maxN-minN, tol, maxN, minN)
	}
}

// checkOwnersAlive asserts that a restore left no grid on a failed
// processor (repartition must have moved everything to survivors).
func (c *Checker) checkOwnersAlive(pi *engine.PhaseInfo) {
	r := pi.Runner
	sys, h := r.System(), r.Hierarchy()
	if sys.NumAlive() == 0 {
		return // every processor failed; nothing sensible remains
	}
	for l := 0; l <= h.MaxLevel; l++ {
		for _, g := range h.Grids(l) {
			if g.Owner >= 0 && g.Owner < sys.NumProcs() && !sys.Alive(g.Owner) {
				c.report(pi, "owners-alive", "grid %d (level %d) owned by failed processor %d",
					g.ID, l, g.Owner)
			}
		}
	}
}
