// Package metrics defines the measured outcome of a SAMR run — total
// virtual execution time with its compute/communication breakdown —
// and the derived quantities the paper reports: relative improvement
// (Figure 7) and efficiency (Figure 8).
package metrics

import (
	"fmt"
	"strings"

	"samrdlb/internal/vclock"
)

// Result is the outcome of one run.
type Result struct {
	// Scheme, Dataset and SystemName identify the run.
	Scheme, Dataset, SystemName string
	// Procs is the total processor count; PerfSum the summed relative
	// performance (equal to Procs for homogeneous systems).
	Procs   int
	PerfSum float64
	// Steps is the number of level-0 steps executed.
	Steps int
	// Total is the virtual execution time (seconds).
	Total float64
	// Breakdown is the per-phase critical-path time.
	Breakdown [vclock.NumPhases]float64
	// Utilisation is mean busy / elapsed.
	Utilisation float64
	// GlobalEvals counts gain/cost evaluations; GlobalRedists counts
	// actual global redistributions; LocalMigrations counts grids
	// moved by the local phase.
	GlobalEvals, GlobalRedists, LocalMigrations int
	// MaxCells is the peak total cell count over all levels.
	MaxCells int64
	// LedgerEvents counts hierarchy mutation events absorbed by the
	// incremental load ledger; LedgerRebuilds counts full O(grids)
	// rebuilds (initial build plus one per checkpoint recovery).
	LedgerEvents   uint64
	LedgerRebuilds int
	// LastGain, LastCost and LastGamma are the inputs of the most
	// recent Gain > γ·Cost gate exactly as the balancer compared them
	// (all zero when no gate ever ran). They are snapshotted from the
	// decision, not recomputed — a resumed run reports what the
	// original run compared.
	LastGain, LastCost, LastGamma float64

	// Fault-tolerance outcome (all zero unless fault injection was
	// enabled for the run).
	//
	// FaultEvents is the number of scripted fault events. ProbeRetries
	// counts failed probe attempts that were retried; ProbeFallbacks
	// counts evaluations whose cost model ran on the NWS forecast
	// because every probe attempt failed. RetryTime is the wall time
	// lost to probe timeouts and backoff (also charged into δ).
	// QuarantinedSteps counts level-0 boundaries at which at least one
	// group was unreachable; CatchupEvals counts forced gain/cost
	// evaluations right after a quarantine lifted. Recoveries counts
	// checkpoint restores after processor failures; RecoveryTime is
	// the wall time they consumed (restore plus replayed work);
	// FailedProcs the processors lost for good.
	FaultEvents      int
	ProbeRetries     int
	ProbeFallbacks   int
	RetryTime        float64
	QuarantinedSteps int
	CatchupEvals     int
	Recoveries       int
	RecoveryTime     float64
	FailedProcs      int

	// Elastic-membership outcome (all zero unless fault injection was
	// enabled). SuspectTransitions counts alive→suspected transitions
	// driven by probe retry exhaustion; SuspectedDead counts
	// suspected→presumed-dead escalations; Rejoins counts completed
	// re-admissions of returning processors; RejoinCatchups counts the
	// forced gain/cost evaluations armed by those rejoins;
	// QuorumDegradedSteps counts level-0 boundaries at which some
	// group was below its admission quorum.
	SuspectTransitions  int
	SuspectedDead       int
	Rejoins             int
	RejoinCatchups      int
	QuorumDegradedSteps int

	// Durable checkpoint outcome (all zero unless a checkpoint
	// directory was configured).
	//
	// DiskCheckpoints counts on-disk generations written;
	// DiskCheckpointErrors counts writes that failed (injected disk
	// faults or real I/O errors). CheckpointFallbacks counts restores
	// that could not use their first candidate (a corrupt in-memory
	// blob or on-disk generation) and fell back; CorruptGenerations
	// counts on-disk generations skipped as corrupt during those
	// restores. PristineRestarts counts recoveries that exhausted
	// every checkpoint and rebuilt from initial conditions.
	// DiskPruneErrors counts pruned-generation files whose deletion
	// failed (the file is stranded on disk; the store no longer tracks
	// it).
	DiskCheckpoints      int
	DiskCheckpointErrors int
	CheckpointFallbacks  int
	CorruptGenerations   int
	PristineRestarts     int
	DiskPruneErrors      int

	// Wire-transport outcome (all zero unless the run executed over a
	// socket transport). TransportFaults counts rank sends that failed
	// on the wire (injected or real); TransportFallbacks counts
	// exchange phases that consequently re-ran over the in-memory data
	// path. TransportFrames and TransportBytes count frames and bytes
	// actually written to the wire. TransportTimeouts counts wire
	// reads/writes that exceeded the configured deadline (wall-clock
	// dependent, so advisory only — never part of the identity
	// fingerprint).
	TransportFaults    int
	TransportFallbacks int
	TransportFrames    int64
	TransportBytes     int64
	TransportTimeouts  int64
}

// Faulty reports whether the run observed any fault-layer activity.
func (r *Result) Faulty() bool {
	return r.FaultEvents > 0 || r.ProbeRetries > 0 || r.QuarantinedSteps > 0 || r.Recoveries > 0
}

// FaultSummary renders the fault-tolerance counters, one per line
// (empty string for a fault-free run).
func (r *Result) FaultSummary() string {
	if !r.Faulty() {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "fault events scripted:    %d\n", r.FaultEvents)
	fmt.Fprintf(&b, "probe retries:            %d (%.3fs charged to delta)\n", r.ProbeRetries, r.RetryTime)
	fmt.Fprintf(&b, "forecast fallbacks:       %d\n", r.ProbeFallbacks)
	fmt.Fprintf(&b, "quarantined level-0 steps:%d (catch-up evals %d)\n", r.QuarantinedSteps, r.CatchupEvals)
	fmt.Fprintf(&b, "processor failures:       %d (recoveries %d, %.3fs lost+replayed)\n",
		r.FailedProcs, r.Recoveries, r.RecoveryTime)
	fmt.Fprintf(&b, "recovery phase time:      %.3fs\n", r.Breakdown[vclock.Recovery])
	if r.SuspectTransitions > 0 || r.Rejoins > 0 || r.QuorumDegradedSteps > 0 {
		fmt.Fprintf(&b, "membership:               %d suspected, %d presumed dead, %d rejoins (catch-ups %d), %d below-quorum steps\n",
			r.SuspectTransitions, r.SuspectedDead, r.Rejoins, r.RejoinCatchups, r.QuorumDegradedSteps)
	}
	if r.CheckpointFallbacks > 0 || r.PristineRestarts > 0 {
		fmt.Fprintf(&b, "checkpoint fallbacks:     %d (corrupt generations skipped %d, pristine restarts %d)\n",
			r.CheckpointFallbacks, r.CorruptGenerations, r.PristineRestarts)
	}
	return b.String()
}

// RecoveryReport renders the retry/backoff/suspicion and rejoin
// counters, one per line — the elastic-membership view of the run
// (empty string when nothing membership-related ever happened).
func (r *Result) RecoveryReport() string {
	if r.ProbeRetries == 0 && r.SuspectTransitions == 0 && r.Rejoins == 0 &&
		r.SuspectedDead == 0 && r.QuorumDegradedSteps == 0 && r.Recoveries == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "probe retries:             %d (%.3fs charged to delta)\n", r.ProbeRetries, r.RetryTime)
	fmt.Fprintf(&b, "suspect transitions:       %d\n", r.SuspectTransitions)
	fmt.Fprintf(&b, "suspected -> presumed dead:%d\n", r.SuspectedDead)
	fmt.Fprintf(&b, "rejoins completed:         %d (catch-up evals %d)\n", r.Rejoins, r.RejoinCatchups)
	fmt.Fprintf(&b, "below-quorum steps:        %d\n", r.QuorumDegradedSteps)
	fmt.Fprintf(&b, "checkpoint recoveries:     %d (%.3fs lost+replayed)\n", r.Recoveries, r.RecoveryTime)
	return b.String()
}

// CheckpointSummary renders the durable-checkpoint counters (empty
// string when no store was configured and nothing fell back). Prune
// failures are appended only when they happened, so fault-free runs
// keep their historical output byte for byte.
func (r *Result) CheckpointSummary() string {
	if r.DiskCheckpoints == 0 && r.DiskCheckpointErrors == 0 {
		return ""
	}
	s := fmt.Sprintf("durable checkpoints: %d written, %d failed", r.DiskCheckpoints, r.DiskCheckpointErrors)
	if r.DiskPruneErrors > 0 {
		s += fmt.Sprintf(", %d prune failures", r.DiskPruneErrors)
	}
	return s
}

// TransportSummary renders the wire-transport counters (empty string
// for runs that never touched a socket transport).
func (r *Result) TransportSummary() string {
	if r.TransportFrames == 0 && r.TransportFaults == 0 {
		return ""
	}
	s := fmt.Sprintf("wire transport: %d frames, %d bytes, %d faults (%d phase fallbacks)",
		r.TransportFrames, r.TransportBytes, r.TransportFaults, r.TransportFallbacks)
	if r.TransportTimeouts > 0 {
		s += fmt.Sprintf(", %d deadline expiries", r.TransportTimeouts)
	}
	return s
}

// Compute returns the compute share of the breakdown.
func (r *Result) Compute() float64 { return r.Breakdown[vclock.Compute] }

// LocalComm returns intra-group communication time.
func (r *Result) LocalComm() float64 { return r.Breakdown[vclock.LocalComm] }

// RemoteComm returns inter-group communication time.
func (r *Result) RemoteComm() float64 { return r.Breakdown[vclock.RemoteComm] }

// Comm returns all communication time.
func (r *Result) Comm() float64 { return r.LocalComm() + r.RemoteComm() }

// Overhead returns DLB decision, redistribution and regrid time.
func (r *Result) Overhead() float64 {
	return r.Breakdown[vclock.DLBOverhead] + r.Breakdown[vclock.Redistribution] + r.Breakdown[vclock.Regrid]
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s on %s (%dp): total %.3fs = compute %.3f + comm %.3f (local %.3f, remote %.3f) + overhead %.3f [util %.2f, redists %d]",
		r.Dataset, r.Scheme, r.SystemName, r.Procs, r.Total,
		r.Compute(), r.Comm(), r.LocalComm(), r.RemoteComm(), r.Overhead(),
		r.Utilisation, r.GlobalRedists)
}

// Improvement returns the paper's relative improvement in percent:
// how much smaller `improved` is than `base`.
func Improvement(base, improved float64) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * (base - improved) / base
}

// Efficiency is the paper's Figure-8 metric: E(1) / (E · P), where
// E(1) is the sequential execution time, E the distributed execution
// time, and P the summed relative processor performance.
func Efficiency(e1, e, perfSum float64) float64 {
	if e <= 0 || perfSum <= 0 {
		return 0
	}
	return e1 / (e * perfSum)
}

// Table renders rows of (label, values...) with a header, aligned for
// terminal output — the textual equivalent of the paper's bar charts.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row (stringifying each cell with %v, floats with
// 3 decimals).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteString("\n")
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]) + "  ")
	}
	b.WriteString("\n")
	for _, r := range t.rows {
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	return b.String()
}
