package metrics

import (
	"math"
	"strings"
	"testing"

	"samrdlb/internal/vclock"
)

func sample() *Result {
	r := &Result{
		Scheme: "distributed-dlb", Dataset: "ShockPool3D", SystemName: "wan",
		Procs: 8, PerfSum: 8, Steps: 10, Total: 10, Utilisation: 0.9,
	}
	r.Breakdown[vclock.Compute] = 4
	r.Breakdown[vclock.LocalComm] = 1
	r.Breakdown[vclock.RemoteComm] = 3
	r.Breakdown[vclock.DLBOverhead] = 0.5
	r.Breakdown[vclock.Redistribution] = 1
	r.Breakdown[vclock.Regrid] = 0.5
	return r
}

func TestResultAccessors(t *testing.T) {
	r := sample()
	if r.Compute() != 4 || r.LocalComm() != 1 || r.RemoteComm() != 3 {
		t.Error("phase accessors wrong")
	}
	if r.Comm() != 4 {
		t.Errorf("Comm = %v", r.Comm())
	}
	if r.Overhead() != 2 {
		t.Errorf("Overhead = %v", r.Overhead())
	}
	s := r.String()
	for _, want := range []string{"ShockPool3D", "distributed-dlb", "remote"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(100, 75); math.Abs(got-25) > 1e-12 {
		t.Errorf("Improvement = %v", got)
	}
	if got := Improvement(100, 120); math.Abs(got+20) > 1e-12 {
		t.Errorf("negative improvement = %v", got)
	}
	if Improvement(0, 5) != 0 {
		t.Error("zero base must yield 0")
	}
}

func TestEfficiency(t *testing.T) {
	// E(1)=100, E=25 on 8 procs -> 0.5.
	if got := Efficiency(100, 25, 8); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Efficiency = %v", got)
	}
	if Efficiency(100, 0, 8) != 0 || Efficiency(100, 10, 0) != 0 {
		t.Error("degenerate efficiency must be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("My Title", "config", "time")
	tb.AddRow("4+4", 1.23456)
	tb.AddRow("8+8", 42)
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	s := tb.String()
	if !strings.Contains(s, "My Title") || !strings.Contains(s, "1.235") || !strings.Contains(s, "42") {
		t.Errorf("table render wrong:\n%s", s)
	}
	// Columns aligned: header row contains both names.
	first := strings.Split(s, "\n")[1]
	if !strings.Contains(first, "config") || !strings.Contains(first, "time") {
		t.Errorf("header row wrong: %q", first)
	}
}

func TestHistoryRecordsAndRenders(t *testing.T) {
	h := NewHistory()
	for i := 0; i < 5; i++ {
		h.Record("a", float64(i))
		h.Record("b", 2)
	}
	if len(h.Get("a")) != 5 || h.Get("a")[3] != 3 {
		t.Error("series values wrong")
	}
	if names := h.Names(); len(names) != 2 || names[0] != "a" {
		t.Errorf("Names = %v", names)
	}
	s := h.String()
	if !strings.Contains(s, "a") || !strings.Contains(s, "[0 .. 4]") {
		t.Errorf("render wrong:\n%s", s)
	}
	if h.Get("zz") != nil {
		t.Error("missing series must be nil")
	}
}

func TestHistoryNilSafe(t *testing.T) {
	var h *History
	h.Record("x", 1)
	if h.Get("x") != nil || h.Names() != nil || h.String() != "" {
		t.Error("nil history must be inert")
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Error("empty sparkline")
	}
	s := Sparkline([]float64{0, 1})
	if []rune(s)[0] != '▁' || []rune(s)[1] != '█' {
		t.Errorf("sparkline extremes wrong: %q", s)
	}
	// Constant series stays at the floor glyph.
	if c := Sparkline([]float64{5, 5, 5}); c != "▁▁▁" {
		t.Errorf("constant sparkline = %q", c)
	}
}
