package metrics

import (
	"fmt"
	"math"
	"strings"
)

// History collects named per-step time series from a run — cell
// counts, imbalance, step times — for observability beyond the final
// totals. A nil History is valid and records nothing.
type History struct {
	order  []string
	series map[string][]float64
}

// NewHistory returns an empty collector.
func NewHistory() *History {
	return &History{series: make(map[string][]float64)}
}

// Record appends a value to the named series (no-op on nil receiver).
func (h *History) Record(name string, v float64) {
	if h == nil {
		return
	}
	if _, ok := h.series[name]; !ok {
		h.order = append(h.order, name)
	}
	h.series[name] = append(h.series[name], v)
}

// Get returns the named series (nil when absent).
func (h *History) Get(name string) []float64 {
	if h == nil {
		return nil
	}
	return h.series[name]
}

// Names returns the series names in first-recorded order.
func (h *History) Names() []string {
	if h == nil {
		return nil
	}
	return append([]string(nil), h.order...)
}

// Mean returns the arithmetic mean of vals (0 for an empty slice).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// sparkRunes render a series as a compact terminal sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series scaled between its min and max.
func Sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// String renders every series with its range and a sparkline.
func (h *History) String() string {
	if h == nil || len(h.order) == 0 {
		return ""
	}
	var b strings.Builder
	width := 0
	for _, n := range h.order {
		if len(n) > width {
			width = len(n)
		}
	}
	for _, n := range h.order {
		vals := h.series[n]
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		fmt.Fprintf(&b, "%-*s  %s  [%.4g .. %.4g]\n", width, n, Sparkline(vals), lo, hi)
	}
	return b.String()
}
