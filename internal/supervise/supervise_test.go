package supervise

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"samrdlb/internal/engine"
	"samrdlb/internal/fault"
	"samrdlb/internal/machine"
	"samrdlb/internal/mpx"
	"samrdlb/internal/workload"
)

// The chaos tests re-exec this test binary as the worker processes: a
// spawned copy sees the env marker and runs workerMain instead of the
// test suite. Chaos triggers (self-SIGKILL mid-checkpoint, self-
// SIGSTOP at a step) arrive the same way and are dropped from the env
// on restarts, so a resumed worker never re-fires them.
const (
	envShard     = "SAMR_SUPERVISE_WORKER"
	envControl   = "SAMR_SUPERVISE_CONTROL"
	envCkpt      = "SAMR_SUPERVISE_CKPT"
	envDetached  = "SAMR_SUPERVISE_DETACHED"
	envResume    = "SAMR_SUPERVISE_RESUME"
	envWT        = "SAMR_SUPERVISE_WT"
	envKillCkpt  = "SAMR_SUPERVISE_KILL_AT_CKPT_SEQ"
	envStopStep  = "SAMR_SUPERVISE_STOP_AT_STEP"
	envStepDelay = "SAMR_SUPERVISE_STEP_DELAY_MS"
)

func TestMain(m *testing.M) {
	if os.Getenv(envShard) != "" {
		os.Exit(workerMain())
	}
	os.Exit(m.Run())
}

// testRunOptions is the chaos scenario every worker (and the in-process
// baseline) runs: 6 steps with a durable checkpoint generation every 2.
func testRunOptions(shard int, ep *mpx.TCPEndpoint, detached bool, ckdir string) engine.Options {
	return engine.Options{
		Steps: 6, MaxLevel: 1, WithData: true, UseMPX: true,
		Transport:          engine.TransportWorker,
		Worker:             &engine.WorkerWire{Shard: shard, Endpoint: ep, Detached: detached || ep == nil},
		CheckpointDir:      ckdir,
		CheckpointInterval: 2,
		CheckpointKeep:     3,
	}
}

func testDriver() workload.Driver { return workload.NewShockPool3D(16, 2) }

// workerMain is the re-exec'd worker process body.
func workerMain() int {
	shard, _ := strconv.Atoi(os.Getenv(envShard))
	wt, _ := time.ParseDuration(os.Getenv(envWT))
	detached := os.Getenv(envDetached) == "1"
	resume := os.Getenv(envResume) == "1"
	ckdir := filepath.Join(os.Getenv(envCkpt), fmt.Sprintf("worker-%d", shard))
	killSeq, stopStep, delayMS := -1, -1, 0
	if v := os.Getenv(envKillCkpt); v != "" {
		killSeq, _ = strconv.Atoi(v)
	}
	if v := os.Getenv(envStopStep); v != "" {
		stopStep, _ = strconv.Atoi(v)
	}
	if v := os.Getenv(envStepDelay); v != "" {
		delayMS, _ = strconv.Atoi(v)
	}

	sys := machine.WanPair(2, nil)
	err := RunWorker(WorkerConfig{
		Shard:       shard,
		NumShards:   sys.NumGroups(),
		ControlAddr: os.Getenv(envControl),
		ShardOf:     sys.GroupOf,
		WireTimeout: wt,
		Detached:    detached,
		Build: func(ep *mpx.TCPEndpoint) (func(func(int)) (string, string, error), error) {
			var report func(int)
			stopped := false
			opt := testRunOptions(shard, ep, detached, ckdir)
			opt.AfterStep = func(step int, _ *engine.Runner) {
				if report != nil {
					report(step)
				}
				if delayMS > 0 {
					// Hold each step open so a scripted kill fired on the
					// step report lands before the run can race to the end.
					time.Sleep(time.Duration(delayMS) * time.Millisecond)
				}
				if stopStep >= 0 && step >= stopStep && !stopped {
					stopped = true
					syscall.Kill(os.Getpid(), syscall.SIGSTOP)
				}
			}
			if killSeq >= 0 {
				opt.BeforeCheckpointWrite = func(step, seq int) {
					if seq >= killSeq {
						syscall.Kill(os.Getpid(), syscall.SIGKILL)
						select {} // not reached: SIGKILL is immediate
					}
				}
			}
			var r *engine.Runner
			var err error
			if resume {
				r, _, err = engine.Resume(sys, testDriver(), opt)
				if err != nil {
					// No usable generation: the worker died before its first
					// durable write. Determinism makes a fresh replay exact.
					fmt.Fprintf(os.Stderr, "worker %d: no checkpoint to resume (%v); starting fresh\n", shard, err)
					r = engine.New(sys, testDriver(), opt)
				}
			} else {
				r = engine.New(sys, testDriver(), opt)
			}
			return func(reportStep func(int)) (string, string, error) {
				report = reportStep
				res := r.Run()
				return res.String(), res.String(), nil
			}, nil
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// baselineFingerprint runs the identical scenario fault-free in this
// process (detached = the plain deterministic path) and returns the
// Result fingerprint every supervised run must reproduce.
func baselineFingerprint(t *testing.T) string {
	t.Helper()
	opt := testRunOptions(0, nil, true, filepath.Join(t.TempDir(), "worker-0"))
	r := engine.New(machine.WanPair(2, nil), testDriver(), opt)
	return r.Run().String()
}

// chaosPlan configures one supervised chaos run.
type chaosPlan struct {
	kills       []fault.KillPoint
	killCkptSeq map[int]int // shard -> self-SIGKILL at this durable write attempt
	stopStep    map[int]int // shard -> self-SIGSTOP after this step
	stepDelayMS int
	wireTimeout time.Duration
	maxRestarts int
}

// runSupervised executes one supervised run with re-exec'd workers.
func runSupervised(t *testing.T, plan chaosPlan) (Report, *machine.Membership) {
	t.Helper()
	base := t.TempDir()
	sys := machine.WanPair(2, nil)
	mem := machine.NewMembership(sys, 2, 4, 1)
	rep, err := Run(Config{
		NumShards:   sys.NumGroups(),
		WireTimeout: plan.wireTimeout,
		MaxRestarts: plan.maxRestarts,
		Kills:       plan.kills,
		Membership:  mem,
		ProcsOf:     sys.ProcsInGroup,
		Log: func(format string, args ...any) {
			t.Logf("supervisor: "+format, args...)
		},
		Spawn: func(shard int, controlAddr string, detached, resume bool) *exec.Cmd {
			// -test.run=^$ guards against ever re-running the suite if the
			// env marker were lost: the copy would run zero tests.
			cmd := exec.Command(os.Args[0], "-test.run=^$")
			env := append(os.Environ(),
				envShard+"="+strconv.Itoa(shard),
				envControl+"="+controlAddr,
				envCkpt+"="+base,
				envWT+"="+plan.wireTimeout.String(),
			)
			if detached {
				env = append(env, envDetached+"=1")
			}
			if resume {
				env = append(env, envResume+"=1")
			}
			if plan.stepDelayMS > 0 {
				env = append(env, envStepDelay+"="+strconv.Itoa(plan.stepDelayMS))
			}
			// Chaos triggers fire only on a worker's first incarnation —
			// a restart must recover, not re-injure itself.
			if !resume {
				if seq, ok := plan.killCkptSeq[shard]; ok {
					env = append(env, envKillCkpt+"="+strconv.Itoa(seq))
				}
				if st, ok := plan.stopStep[shard]; ok {
					env = append(env, envStopStep+"="+strconv.Itoa(st))
				}
			}
			cmd.Env = env
			cmd.Stderr = os.Stderr
			return cmd
		},
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v (report %+v)", err, rep)
	}
	return rep, mem
}

// TestSupervisedCleanRunMatchesBaseline pins the no-chaos contract:
// two worker OS processes over a real wire complete with exactly the
// single-process Result and nothing crashes or restarts.
func TestSupervisedCleanRunMatchesBaseline(t *testing.T) {
	want := baselineFingerprint(t)
	rep, _ := runSupervised(t, chaosPlan{wireTimeout: 2 * time.Second})
	if rep.Completed != 2 {
		t.Fatalf("completed %d/2 workers", rep.Completed)
	}
	if rep.Crashes != 0 || rep.Restarts != 0 || rep.HeartbeatMisses != 0 {
		t.Errorf("clean run reports chaos: %+v", rep)
	}
	if rep.Fingerprint != want {
		t.Errorf("supervised result diverged from baseline:\n got: %s\nwant: %s", rep.Fingerprint, want)
	}
}

// TestSupervisedScriptedKillsRestartFromCheckpoint is the tentpole
// chaos test: worker 1 is SIGKILLed at two distinct scripted steps;
// each death must be detected, the worker restarted (resuming from its
// latest durable generation when one exists), and the completed run's
// Result must be byte-identical to the fault-free baseline.
func TestSupervisedScriptedKillsRestartFromCheckpoint(t *testing.T) {
	want := baselineFingerprint(t)
	rep, mem := runSupervised(t, chaosPlan{
		kills:       []fault.KillPoint{{Group: 1, Step: 1}, {Group: 1, Step: 3}},
		stepDelayMS: 150,
		wireTimeout: 2 * time.Second,
		maxRestarts: 3,
	})
	if rep.ScriptedKills != 2 {
		t.Errorf("fired %d/2 scripted kills", rep.ScriptedKills)
	}
	if rep.Crashes != 2 || rep.Restarts != 2 {
		t.Errorf("want 2 crashes and 2 restarts, got %+v", rep)
	}
	if rep.Completed != 2 {
		t.Fatalf("completed %d/2 workers (report %+v)", rep.Completed, rep)
	}
	if rep.Fingerprint != want {
		t.Errorf("chaos result diverged from baseline:\n got: %s\nwant: %s", rep.Fingerprint, want)
	}
	if mem.Rejoins == 0 {
		t.Error("worker crashes left no rejoin evidence in membership")
	}
}

// TestSupervisedMidCheckpointKillResumes kills worker 1 from inside
// the engine's durable-write path (immediately before its second
// generation write), pinning that a death mid-checkpoint leaves the
// store on its previous intact generation and the restart resumes
// from it byte-identically.
func TestSupervisedMidCheckpointKillResumes(t *testing.T) {
	want := baselineFingerprint(t)
	rep, _ := runSupervised(t, chaosPlan{
		killCkptSeq: map[int]int{1: 2},
		wireTimeout: 2 * time.Second,
		maxRestarts: 3,
	})
	if rep.Crashes != 1 || rep.Restarts != 1 {
		t.Errorf("want 1 crash and 1 restart, got %+v", rep)
	}
	if rep.Completed != 2 {
		t.Fatalf("completed %d/2 workers (report %+v)", rep.Completed, rep)
	}
	if rep.Fingerprint != want {
		t.Errorf("mid-checkpoint kill diverged from baseline:\n got: %s\nwant: %s", rep.Fingerprint, want)
	}
}

// TestSupervisedStoppedWorkerDetectedByHeartbeatMiss pins the second
// crash-detection prong: a SIGSTOPped worker never exits, so only the
// missed control heartbeats can expose it. The supervisor must declare
// it dead within the control deadline and SIGKILL+restart it, while
// the stopped peer's silence surfaces on the survivor's wire as a
// deadline expiry (never an indefinite block) — and the completed run
// still matches the baseline.
func TestSupervisedStoppedWorkerDetectedByHeartbeatMiss(t *testing.T) {
	want := baselineFingerprint(t)
	rep, _ := runSupervised(t, chaosPlan{
		stopStep:    map[int]int{1: 2},
		wireTimeout: time.Second,
		maxRestarts: 3,
	})
	if rep.HeartbeatMisses == 0 {
		t.Error("stopped worker was never declared dead by heartbeat miss")
	}
	if rep.Restarts == 0 {
		t.Error("stopped worker was never restarted")
	}
	if rep.Completed != 2 {
		t.Fatalf("completed %d/2 workers (report %+v)", rep.Completed, rep)
	}
	if rep.Fingerprint != want {
		t.Errorf("stopped-worker run diverged from baseline:\n got: %s\nwant: %s", rep.Fingerprint, want)
	}
}
