// Package supervise implements the parent/worker runtime for
// supervised multi-process runs: a supervisor process spawns one
// worker OS process per processor group, each hosting its shard of
// the engine behind an mpx.TCPEndpoint, and restarts crashed workers
// from their latest durable checkpoint generation.
//
// The control plane is a localhost TCP rendezvous socket carrying
// newline-delimited JSON messages: workers announce themselves
// (hello), receive the peer address map (peers), report step
// completion and liveness (step, hb), and deliver their final result
// (result). Crash detection is two-pronged — the worker process
// exiting before its result, and a control-channel heartbeat miss
// (a SIGSTOPped or wedged worker never exits, but goes silent) — and
// both feed the supervisor's machine.Membership tracker through the
// same Crash/BeginRejoin/CompleteRejoin path scripted processor
// failures use inside the engine.
//
// Determinism contract: every worker replicates the engine's control
// plane, so every completed worker reports the same Result
// fingerprint, and a run with crashed-and-restarted workers completes
// byte-identical to the fault-free run. Crash timing is wall-clock,
// which is exactly why it must never influence a worker's balancing
// decisions — a failed wire phase detaches the worker onto the
// in-memory data path (identical virtual-time charging) instead of
// feeding evidence into its balancer.
package supervise

import (
	"bufio"
	"encoding/json"
	"net"
	"sync"
)

// Control message types.
const (
	// MsgHello is the worker's first message: shard id, pid, and (for
	// attached workers) its wire listen address.
	MsgHello = "hello"
	// MsgPeers is the supervisor's rendezvous broadcast: shard → wire
	// address for every attached worker.
	MsgPeers = "peers"
	// MsgStep reports one completed level-0 step.
	MsgStep = "step"
	// MsgHb is a liveness beacon on the control channel.
	MsgHb = "hb"
	// MsgResult delivers the finished run: fingerprint plus full
	// printed output.
	MsgResult = "result"
)

// Msg is one control-channel message (a JSON object per line).
type Msg struct {
	Type        string         `json:"type"`
	Shard       int            `json:"shard"`
	PID         int            `json:"pid,omitempty"`
	Addr        string         `json:"addr,omitempty"`
	Peers       map[int]string `json:"peers,omitempty"`
	Step        int            `json:"step"`
	Fingerprint string         `json:"fingerprint,omitempty"`
	Output      string         `json:"output,omitempty"`
}

// controlConn wraps one control connection with serialised JSON
// writes and line-buffered reads. drained closes once the reader has
// consumed the connection to its end — the supervisor waits on it
// before ruling a worker exit a crash, because a finished worker's
// result may still sit buffered ahead of the EOF.
type controlConn struct {
	c       net.Conn
	r       *bufio.Reader
	mu      sync.Mutex
	drained chan struct{}
}

func newControlConn(c net.Conn) *controlConn {
	return &controlConn{c: c, r: bufio.NewReader(c), drained: make(chan struct{})}
}

func (cc *controlConn) send(m Msg) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	cc.mu.Lock()
	defer cc.mu.Unlock()
	_, err = cc.c.Write(b)
	return err
}

func (cc *controlConn) recv() (Msg, error) {
	line, err := cc.r.ReadBytes('\n')
	if err != nil {
		return Msg{}, err
	}
	var m Msg
	if err := json.Unmarshal(line, &m); err != nil {
		return Msg{}, err
	}
	return m, nil
}
