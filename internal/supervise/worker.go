package supervise

import (
	"fmt"
	"net"
	"os"
	"time"

	"samrdlb/internal/mpx"
)

// WorkerConfig describes one worker process's place in a supervised
// run.
type WorkerConfig struct {
	// Shard is the processor group this worker hosts.
	Shard int
	// NumShards is the total worker count.
	NumShards int
	// ControlAddr is the supervisor's rendezvous socket.
	ControlAddr string
	// ShardOf maps a rank to its hosting shard.
	ShardOf func(rank int) int
	// WireTimeout bounds wire reads/writes and paces heartbeats
	// (0 disables deadlines; control heartbeats then default to 1s).
	WireTimeout time.Duration
	// Detached starts the worker without a wire — the restart path
	// after a crash, when the surviving peers have already detached.
	Detached bool
	// Build constructs the engine around the endpoint (nil when
	// detached) and returns the closure that runs it. It is called
	// BEFORE the worker announces itself, so the engine's sink is
	// bound before any peer learns this worker's address — a peer
	// frame can never arrive ahead of the bind. The returned run
	// closure must call reportStep after every completed level-0 step
	// (it drives the supervisor's kill schedule and membership
	// bookkeeping) and returns the Result fingerprint (Result.String())
	// plus the full printed output.
	Build func(ep *mpx.TCPEndpoint) (func(reportStep func(step int)) (fingerprint, output string, err error), error)
}

// RunWorker executes one worker process end-to-end: rendezvous with
// the supervisor, bring up the wire to the peer workers, run the
// engine, and deliver the result. It returns once the result has been
// sent (or with the first fatal setup error).
func RunWorker(cfg WorkerConfig) error {
	if cfg.Build == nil || cfg.ShardOf == nil {
		return fmt.Errorf("supervise: WorkerConfig needs Build and ShardOf")
	}
	conn, err := net.Dial("tcp", cfg.ControlAddr)
	if err != nil {
		return fmt.Errorf("supervise: worker %d: control dial: %w", cfg.Shard, err)
	}
	defer conn.Close()
	cc := newControlConn(conn)

	var ep *mpx.TCPEndpoint
	hello := Msg{Type: MsgHello, Shard: cfg.Shard, PID: os.Getpid()}
	if !cfg.Detached {
		ep, err = mpx.ListenTCP(cfg.Shard, "127.0.0.1:0", cfg.ShardOf)
		if err != nil {
			return fmt.Errorf("supervise: worker %d: %w", cfg.Shard, err)
		}
		ep.SetWireTimeout(cfg.WireTimeout)
		hello.Addr = ep.Addr()
	}
	run, err := cfg.Build(ep)
	if err != nil {
		return fmt.Errorf("supervise: worker %d: build: %w", cfg.Shard, err)
	}
	if err := cc.send(hello); err != nil {
		return fmt.Errorf("supervise: worker %d: hello: %w", cfg.Shard, err)
	}

	if !cfg.Detached {
		// Rendezvous: wait for the peer address map, then dial every
		// higher shard (the lower-dials-higher convention, with backoff —
		// a peer may still be starting). A peer that crashed before
		// rendezvous is simply absent from the map; the first wire phase
		// that needs it times out and detaches this worker.
		peers, err := waitPeers(cc, rendezvousBudget(cfg.WireTimeout))
		if err != nil {
			return fmt.Errorf("supervise: worker %d: rendezvous: %w", cfg.Shard, err)
		}
		for shard, addr := range peers {
			if shard <= cfg.Shard {
				continue
			}
			if err := ep.DialRetry(shard, addr, rendezvousBudget(cfg.WireTimeout)); err != nil {
				return fmt.Errorf("supervise: worker %d: %w", cfg.Shard, err)
			}
		}
	}

	// Control-channel liveness: heartbeats at a third of the wire
	// timeout, so a SIGSTOPped worker misses the supervisor's read
	// deadline at the same cadence its peers' wire deadlines fire.
	hbStop := make(chan struct{})
	defer close(hbStop)
	go func() {
		ival := cfg.WireTimeout / 3
		if ival <= 0 {
			ival = time.Second
		}
		t := time.NewTicker(ival)
		defer t.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-t.C:
			}
			// A failed heartbeat means the supervisor is gone; the run
			// itself keeps going, so the error is ignorable.
			cc.send(Msg{Type: MsgHb, Shard: cfg.Shard})
		}
	}()

	reportStep := func(step int) {
		cc.send(Msg{Type: MsgStep, Shard: cfg.Shard, Step: step})
	}
	fingerprint, output, err := run(reportStep)
	if err != nil {
		return fmt.Errorf("supervise: worker %d: run: %w", cfg.Shard, err)
	}
	if err := cc.send(Msg{Type: MsgResult, Shard: cfg.Shard, Fingerprint: fingerprint, Output: output}); err != nil {
		return fmt.Errorf("supervise: worker %d: result: %w", cfg.Shard, err)
	}
	return nil
}

// rendezvousBudget bounds startup waits: generous relative to the
// wire timeout, but never unbounded.
func rendezvousBudget(wireTimeout time.Duration) time.Duration {
	b := 30 * time.Second
	if 10*wireTimeout > b {
		b = 10 * wireTimeout
	}
	return b
}

// waitPeers reads control messages until the peers broadcast arrives.
func waitPeers(cc *controlConn, budget time.Duration) (map[int]string, error) {
	cc.c.SetReadDeadline(time.Now().Add(budget))
	defer cc.c.SetReadDeadline(time.Time{})
	for {
		m, err := cc.recv()
		if err != nil {
			return nil, err
		}
		if m.Type == MsgPeers {
			return m.Peers, nil
		}
	}
}
