package supervise

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"sort"
	"sync"
	"time"

	"samrdlb/internal/fault"
	"samrdlb/internal/machine"
)

// Config describes a supervised run.
type Config struct {
	// NumShards is the worker count (one per processor group).
	NumShards int
	// WireTimeout paces liveness: workers heartbeat at a third of it
	// and the supervisor declares a heartbeat miss after twice it
	// (0 falls back to a 10s control deadline).
	WireTimeout time.Duration
	// MaxRestarts bounds restarts per worker (<=0 means 3).
	MaxRestarts int
	// Kills is the scripted chaos schedule: SIGKILL the worker hosting
	// Group once it reports completing step Step.
	Kills []fault.KillPoint
	// Spawn builds the (unstarted) command for one worker process.
	// detached and resume are set for post-crash restarts: the worker
	// must come up without a wire and resume from its latest usable
	// checkpoint generation.
	Spawn func(shard int, controlAddr string, detached, resume bool) *exec.Cmd
	// Membership, when non-nil, receives crash/rejoin evidence: worker
	// death marks its group's processors crashed, a restart begins
	// their rejoin, and the restarted worker's hello completes it —
	// the same path the engine walks for scripted processor failures.
	Membership *machine.Membership
	// ProcsOf maps a shard to its processor ids (required with
	// Membership).
	ProcsOf func(shard int) []int
	// Log, when non-nil, receives progress lines.
	Log func(format string, args ...any)
}

// Report summarises what the supervisor observed.
type Report struct {
	// Restarts counts workers respawned after a crash.
	Restarts int
	// Crashes counts worker deaths before delivering a result.
	Crashes int
	// ScriptedKills counts kill-schedule entries actually fired.
	ScriptedKills int
	// HeartbeatMisses counts workers declared dead for going silent
	// without exiting (and then killed).
	HeartbeatMisses int
	// PermanentFailures counts workers that exhausted their restarts.
	PermanentFailures int
	// Fingerprint is the agreed Result fingerprint (every completed
	// worker must report the same one).
	Fingerprint string
	// Output is the full printed output of the lowest-shard completed
	// worker.
	Output string
	// Completed counts workers that delivered a result.
	Completed int
}

type supervisor struct {
	cfg Config
	ln  net.Listener

	mu         sync.Mutex
	addrs      map[int]string
	helloed    map[int]bool
	conns      map[int]*controlConn
	procs      map[int]*os.Process
	lastStep   map[int]int
	results    map[int]Msg
	failed     map[int]bool
	restarts   map[int]int
	killsFired []bool
	peersSent  bool
	report     Report
	finished   bool
	err        error
	doneCh     chan struct{}
}

// Run executes a supervised run to completion: spawn one worker per
// shard, rendezvous their wire endpoints, restart crashed workers
// from their checkpoints (with exponential backoff), and verify every
// completed worker agreed on the Result fingerprint.
func Run(cfg Config) (Report, error) {
	if cfg.NumShards <= 0 || cfg.Spawn == nil {
		return Report{}, fmt.Errorf("supervise: Config needs NumShards and Spawn")
	}
	if cfg.MaxRestarts <= 0 {
		cfg.MaxRestarts = 3
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Report{}, fmt.Errorf("supervise: control listen: %w", err)
	}
	defer ln.Close()
	s := &supervisor{
		cfg:        cfg,
		ln:         ln,
		addrs:      make(map[int]string),
		helloed:    make(map[int]bool),
		conns:      make(map[int]*controlConn),
		procs:      make(map[int]*os.Process),
		lastStep:   make(map[int]int),
		results:    make(map[int]Msg),
		failed:     make(map[int]bool),
		restarts:   make(map[int]int),
		killsFired: make([]bool, len(cfg.Kills)),
		doneCh:     make(chan struct{}),
	}
	go s.acceptLoop()
	for g := 0; g < cfg.NumShards; g++ {
		if err := s.spawn(g, false, false); err != nil {
			return s.report, err
		}
	}
	<-s.doneCh
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.report, s.err
}

func (s *supervisor) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	}
}

// spawn starts (or restarts) shard g's worker and its exit watcher.
func (s *supervisor) spawn(g int, detached, resume bool) error {
	cmd := s.cfg.Spawn(g, s.ln.Addr().String(), detached, resume)
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("supervise: spawn worker %d: %w", g, err)
	}
	s.mu.Lock()
	s.procs[g] = cmd.Process
	s.mu.Unlock()
	go s.watchExit(g, cmd)
	return nil
}

// watchExit handles one worker process lifetime: a death before the
// result is a crash — fold it into membership evidence and restart
// with exponential backoff, detached and resuming from the latest
// checkpoint generation, until the restart budget is spent.
func (s *supervisor) watchExit(g int, cmd *exec.Cmd) {
	cmd.Wait()
	// An orderly worker exits right after writing its result, and the
	// process death can be observed before the result is read. Let the
	// control handler drain the connection first — TCP delivers any
	// buffered result ahead of the EOF — so completion is never
	// misruled a crash.
	s.mu.Lock()
	cc := s.conns[g]
	s.mu.Unlock()
	if cc != nil {
		select {
		case <-cc.drained:
		case <-time.After(s.controlDeadline()):
		}
	}
	s.mu.Lock()
	if _, done := s.results[g]; done || s.finished {
		s.mu.Unlock()
		return
	}
	s.report.Crashes++
	n := s.restarts[g]
	s.logf("worker %d died before its result (restart %d/%d)", g, n+1, s.cfg.MaxRestarts)
	if s.cfg.Membership != nil {
		for _, p := range s.cfg.ProcsOf(g) {
			s.cfg.Membership.Crash(p)
		}
	}
	if !s.helloed[g] && !s.peersSent {
		// The worker died before rendezvous: release the survivors with
		// a partial address map. The missing shard's wire never forms;
		// its peers time out and detach.
		s.broadcastPeersLocked()
	}
	if n >= s.cfg.MaxRestarts {
		s.failed[g] = true
		s.report.PermanentFailures++
		s.logf("worker %d failed permanently after %d restarts", g, n)
		s.checkDoneLocked()
		s.mu.Unlock()
		return
	}
	s.restarts[g] = n + 1
	s.report.Restarts++
	if s.cfg.Membership != nil {
		for _, p := range s.cfg.ProcsOf(g) {
			s.cfg.Membership.BeginRejoin(p)
		}
	}
	s.mu.Unlock()
	// Exponential backoff: 100ms doubling per restart, capped at 2s.
	pause := 100 * time.Millisecond << uint(n)
	if pause > 2*time.Second {
		pause = 2 * time.Second
	}
	time.Sleep(pause)
	if err := s.spawn(g, true, true); err != nil {
		s.mu.Lock()
		s.failed[g] = true
		s.report.PermanentFailures++
		s.err = err
		s.checkDoneLocked()
		s.mu.Unlock()
	}
}

func (s *supervisor) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.handleConn(newControlConn(c))
	}
}

// controlDeadline bounds silence on a worker's control channel: the
// worker heartbeats at WireTimeout/3, so twice the wire timeout means
// several consecutive missed beats.
func (s *supervisor) controlDeadline() time.Duration {
	if s.cfg.WireTimeout > 0 {
		return 2 * s.cfg.WireTimeout
	}
	return 10 * time.Second
}

func (s *supervisor) handleConn(cc *controlConn) {
	defer close(cc.drained)
	defer cc.c.Close()
	cc.c.SetReadDeadline(time.Now().Add(rendezvousBudget(s.cfg.WireTimeout)))
	m, err := cc.recv()
	if err != nil || m.Type != MsgHello {
		return
	}
	g := m.Shard
	s.mu.Lock()
	s.conns[g] = cc
	restarted := s.helloed[g]
	s.helloed[g] = true
	if m.Addr != "" {
		s.addrs[g] = m.Addr
	}
	if restarted && s.cfg.Membership != nil {
		for _, p := range s.cfg.ProcsOf(g) {
			s.cfg.Membership.CompleteRejoin(p, s.lastStep[g])
		}
	}
	if !s.peersSent && len(s.addrs) == s.cfg.NumShards {
		s.broadcastPeersLocked()
	} else if s.peersSent && m.Addr == "" {
		// A detached restart needs no rendezvous, but gets an (empty)
		// peers message for symmetry if it ever waits for one.
		cc.send(Msg{Type: MsgPeers, Peers: map[int]string{}})
	}
	s.mu.Unlock()

	for {
		cc.c.SetReadDeadline(time.Now().Add(s.controlDeadline()))
		m, err := cc.recv()
		if err != nil {
			s.mu.Lock()
			_, done := s.results[g]
			stale := s.conns[g] != cc
			if done || stale || s.finished {
				s.mu.Unlock()
				return
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				// The worker went silent without exiting (stopped or
				// wedged): declare it dead and kill it — the exit
				// watcher then restarts it like any other crash.
				s.report.HeartbeatMisses++
				s.logf("worker %d missed heartbeats for %v; killing it", g, s.controlDeadline())
				if p := s.procs[g]; p != nil {
					p.Kill()
				}
			}
			s.mu.Unlock()
			return
		}
		switch m.Type {
		case MsgStep:
			s.mu.Lock()
			if s.conns[g] == cc {
				s.lastStep[g] = m.Step
				s.fireKillsLocked(g, m.Step)
			}
			s.mu.Unlock()
		case MsgResult:
			s.mu.Lock()
			if s.conns[g] == cc {
				s.results[g] = m
				s.report.Completed++
				s.logf("worker %d completed (steps through %d)", g, s.lastStep[g])
				s.checkDoneLocked()
			}
			s.mu.Unlock()
		}
	}
}

// fireKillsLocked delivers any scripted kill due for shard g at step.
func (s *supervisor) fireKillsLocked(g, step int) {
	for i, k := range s.cfg.Kills {
		if s.killsFired[i] || k.Group != g || step < k.Step {
			continue
		}
		s.killsFired[i] = true
		s.report.ScriptedKills++
		s.logf("scripted kill: worker %d after step %d", g, step)
		if p := s.procs[g]; p != nil {
			p.Kill()
		}
	}
}

// broadcastPeersLocked releases the rendezvous with the current
// address map.
func (s *supervisor) broadcastPeersLocked() {
	s.peersSent = true
	peers := make(map[int]string, len(s.addrs))
	for g, a := range s.addrs {
		peers[g] = a
	}
	for _, cc := range s.conns {
		cc.send(Msg{Type: MsgPeers, Peers: peers})
	}
}

// checkDoneLocked finishes the run once every shard has either
// delivered a result or failed permanently, verifying fingerprint
// agreement across the completed workers.
func (s *supervisor) checkDoneLocked() {
	if s.finished || len(s.results)+countTrue(s.failed) < s.cfg.NumShards {
		return
	}
	s.finished = true
	if len(s.results) == 0 {
		if s.err == nil {
			s.err = fmt.Errorf("supervise: no worker completed")
		}
		close(s.doneCh)
		return
	}
	shards := make([]int, 0, len(s.results))
	for g := range s.results {
		shards = append(shards, g)
	}
	sort.Ints(shards)
	first := s.results[shards[0]]
	s.report.Fingerprint = first.Fingerprint
	s.report.Output = first.Output
	for _, g := range shards[1:] {
		if r := s.results[g]; r.Fingerprint != first.Fingerprint {
			s.err = fmt.Errorf("supervise: result divergence: worker %d reports %q, worker %d reports %q",
				shards[0], first.Fingerprint, g, r.Fingerprint)
			break
		}
	}
	close(s.doneCh)
}

func countTrue(m map[int]bool) (n int) {
	for _, v := range m {
		if v {
			n++
		}
	}
	return
}
