// Package cluster implements the Berger–Rigoutsos point-clustering
// algorithm used by SAMR regridding: given a field of flagged cells
// (cells that need finer resolution), produce a small set of
// rectangular boxes that cover every flagged cell with at least a
// target fill efficiency.
//
// The implementation follows Berger & Rigoutsos, "An algorithm for
// point clustering and grid generation" (IEEE Trans. SMC 21(5), 1991):
// compute per-dimension signatures (flag counts per plane), cut first
// at holes (zero-signature planes), then at the strongest inflection
// point of the discrete Laplacian of the signature, and otherwise
// bisect; recurse until every box is efficient enough or at minimum
// size.
package cluster

import (
	"fmt"

	"samrdlb/internal/geom"
)

// FlagField is a boolean field over a box marking cells that need
// refinement.
type FlagField struct {
	Box   geom.Box
	flags []bool
	count int
}

// NewFlagField returns an all-clear flag field over the box.
func NewFlagField(box geom.Box) *FlagField {
	if box.Empty() {
		panic(fmt.Sprintf("cluster.NewFlagField: empty box %v", box))
	}
	return &FlagField{Box: box, flags: make([]bool, box.NumCells())}
}

// Set flags the cell i. Cells outside the field's box are ignored,
// which lets callers flag from predicates without clipping.
func (f *FlagField) Set(i geom.Index) {
	if !f.Box.Contains(i) {
		return
	}
	off := f.Box.Offset(i)
	if !f.flags[off] {
		f.flags[off] = true
		f.count++
	}
}

// Clear unflags the cell i (no-op outside the box).
func (f *FlagField) Clear(i geom.Index) {
	if !f.Box.Contains(i) {
		return
	}
	off := f.Box.Offset(i)
	if f.flags[off] {
		f.flags[off] = false
		f.count--
	}
}

// Get reports whether cell i is flagged (false outside the box).
func (f *FlagField) Get(i geom.Index) bool {
	if !f.Box.Contains(i) {
		return false
	}
	return f.flags[f.Box.Offset(i)]
}

// Count returns the number of flagged cells.
func (f *FlagField) Count() int { return f.count }

// CountIn returns the number of flagged cells inside the box b.
func (f *FlagField) CountIn(b geom.Box) int {
	b = b.Intersect(f.Box)
	if b.Empty() {
		return 0
	}
	n := 0
	f.scanRows(b, func(off, width int, _, _ int) {
		for x := 0; x < width; x++ {
			if f.flags[off+x] {
				n++
			}
		}
	})
	return n
}

// scanRows calls fn once per x-row of box b (which must lie within
// f.Box), passing the starting offset into f.flags, the row width,
// and the row's y and z coordinates. It avoids per-cell Offset
// arithmetic in the hot clustering loops.
func (f *FlagField) scanRows(b geom.Box, fn func(off, width, y, z int)) {
	s := f.Box.Shape()
	width := b.Hi[0] - b.Lo[0] + 1
	for z := b.Lo[2]; z <= b.Hi[2]; z++ {
		for y := b.Lo[1]; y <= b.Hi[1]; y++ {
			off := (b.Lo[0] - f.Box.Lo[0]) + s[0]*((y-f.Box.Lo[1])+s[1]*(z-f.Box.Lo[2]))
			fn(off, width, y, z)
		}
	}
}

// SetWhere flags every cell of the field's box for which pred returns
// true and returns the number of newly flagged cells.
func (f *FlagField) SetWhere(pred func(geom.Index) bool) int {
	added := 0
	f.scanRows(f.Box, func(off, width, y, z int) {
		for x := 0; x < width; x++ {
			if pred(geom.Index{f.Box.Lo[0] + x, y, z}) && !f.flags[off+x] {
				f.flags[off+x] = true
				f.count++
				added++
			}
		}
	})
	return added
}

// BoundingBox returns the smallest box containing every flagged cell
// inside b (empty box when there are none).
func (f *FlagField) BoundingBox(b geom.Box) geom.Box {
	b = b.Intersect(f.Box)
	if b.Empty() {
		return geom.Box{Lo: geom.Index{0, 0, 0}, Hi: geom.Index{-1, -1, -1}}
	}
	lo := geom.Index{1 << 30, 1 << 30, 1 << 30}
	hi := geom.Index{-(1 << 30), -(1 << 30), -(1 << 30)}
	found := false
	f.scanRows(b, func(off, width, y, z int) {
		for x := 0; x < width; x++ {
			if !f.flags[off+x] {
				continue
			}
			i := geom.Index{b.Lo[0] + x, y, z}
			lo = lo.Min(i)
			hi = hi.Max(i)
			found = true
		}
	})
	if !found {
		return geom.Box{Lo: geom.Index{0, 0, 0}, Hi: geom.Index{-1, -1, -1}}
	}
	return geom.Box{Lo: lo, Hi: hi}
}

// signature returns, for dimension d within box b, the number of
// flagged cells in each plane perpendicular to d. The returned slice
// has b.Shape()[d] entries, entry k counting plane b.Lo[d]+k.
func (f *FlagField) signature(b geom.Box, d int) []int {
	sig := make([]int, b.Shape()[d])
	f.scanRows(b, func(off, width, y, z int) {
		switch d {
		case 0:
			for x := 0; x < width; x++ {
				if f.flags[off+x] {
					sig[x]++
				}
			}
		case 1:
			n := 0
			for x := 0; x < width; x++ {
				if f.flags[off+x] {
					n++
				}
			}
			sig[y-b.Lo[1]] += n
		default:
			n := 0
			for x := 0; x < width; x++ {
				if f.flags[off+x] {
					n++
				}
			}
			sig[z-b.Lo[2]] += n
		}
	})
	return sig
}
