package cluster

import "samrdlb/internal/geom"

// Params controls the clustering.
type Params struct {
	// MinEfficiency is the minimum fraction of cells in an accepted box
	// that must be flagged. Typical SAMR values are 0.7–0.9.
	MinEfficiency float64
	// MaxSize is the maximum extent of an accepted box in any
	// dimension; larger boxes are always split. Zero means unlimited.
	MaxSize int
	// MinSize is the extent below which a box is never split further
	// (accepted regardless of efficiency). Zero means 2.
	MinSize int
	// MaxDepth bounds the recursion as a safety net. Zero means 64.
	MaxDepth int
}

// DefaultParams are reasonable SAMR regridding defaults.
func DefaultParams() Params {
	return Params{MinEfficiency: 0.7, MaxSize: 32, MinSize: 2, MaxDepth: 64}
}

func (p *Params) normalize() {
	if p.MinSize <= 0 {
		p.MinSize = 2
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 64
	}
	if p.MinEfficiency <= 0 {
		p.MinEfficiency = 0.7
	}
}

// Cluster covers every flagged cell of f with rectangular boxes using
// the Berger–Rigoutsos algorithm. The returned boxes are disjoint,
// lie within f.Box, and each contains at least one flagged cell.
func Cluster(f *FlagField, p Params) geom.BoxList {
	p.normalize()
	if f.Count() == 0 {
		return nil
	}
	var out geom.BoxList
	seed := f.BoundingBox(f.Box)
	clusterRecurse(f, seed, p, p.MaxDepth, &out)
	out.SortByLo()
	return out
}

func clusterRecurse(f *FlagField, b geom.Box, p Params, depth int, out *geom.BoxList) {
	b = f.BoundingBox(b) // shrink-wrap to the flags inside
	if b.Empty() {
		return
	}
	nflag := f.CountIn(b)
	eff := float64(nflag) / float64(b.NumCells())
	shape := b.Shape()
	tooBig := p.MaxSize > 0 && (shape[0] > p.MaxSize || shape[1] > p.MaxSize || shape[2] > p.MaxSize)
	small := shape[0] <= p.MinSize && shape[1] <= p.MinSize && shape[2] <= p.MinSize

	if depth <= 0 || (!tooBig && (eff >= p.MinEfficiency || small)) {
		*out = append(*out, b)
		return
	}

	d, at, ok := findCut(f, b, p)
	if !ok {
		// No admissible cut: accept as-is.
		*out = append(*out, b)
		return
	}
	lo, hi := b.SplitAt(d, at)
	clusterRecurse(f, lo, p, depth-1, out)
	clusterRecurse(f, hi, p, depth-1, out)
}

// findCut picks the Berger–Rigoutsos cut for box b: a hole (plane with
// zero flags) if one exists, else the strongest inflection point of
// the signature Laplacian, else the midpoint of the longest dimension.
// Cut positions that would produce a slab thinner than MinSize are
// rejected. It returns the dimension, the cut plane (first index of
// the upper half), and whether a cut was found.
func findCut(f *FlagField, b geom.Box, p Params) (dim, at int, ok bool) {
	shape := b.Shape()

	// Pass 1: holes, preferring the hole closest to the box centre of
	// the longest admissible dimension.
	bestDim, bestAt, bestDist := -1, 0, 1<<30
	for d := 0; d < geom.Dims; d++ {
		if shape[d] < 2*p.MinSize {
			continue
		}
		sig := f.signature(b, d)
		mid := len(sig) / 2
		for k := p.MinSize; k <= len(sig)-p.MinSize; k++ {
			if sig[k-1] == 0 || sig[k] == 0 {
				// Cutting at plane k separates [0,k) from [k,len).
				dist := abs(k - mid)
				if dist < bestDist {
					bestDim, bestAt, bestDist = d, b.Lo[d]+k, dist
				}
			}
		}
	}
	if bestDim >= 0 {
		return bestDim, bestAt, true
	}

	// Pass 2: strongest zero-crossing of the signature's second
	// difference (inflection point).
	bestDim, bestAt = -1, 0
	bestStrength := 0
	for d := 0; d < geom.Dims; d++ {
		if shape[d] < 2*p.MinSize {
			continue
		}
		sig := f.signature(b, d)
		// Second difference Δ_k = sig[k+1] - 2 sig[k] + sig[k-1].
		lap := make([]int, len(sig))
		for k := 1; k < len(sig)-1; k++ {
			lap[k] = sig[k+1] - 2*sig[k] + sig[k-1]
		}
		for k := p.MinSize; k < len(sig)-p.MinSize; k++ {
			if (lap[k] >= 0) != (lap[k+1] >= 0) { // sign change between k and k+1
				strength := abs(lap[k] - lap[k+1])
				if strength > bestStrength {
					bestDim, bestAt, bestStrength = d, b.Lo[d]+k+1, strength
				}
			}
		}
	}
	if bestDim >= 0 {
		return bestDim, bestAt, true
	}

	// Pass 3: bisect the longest dimension if possible.
	d := shape.MaxDim()
	if shape[d] >= 2*p.MinSize {
		return d, b.Lo[d] + shape[d]/2, true
	}
	// Try any other dimension.
	for d := 0; d < geom.Dims; d++ {
		if shape[d] >= 2*p.MinSize {
			return d, b.Lo[d] + shape[d]/2, true
		}
	}
	return 0, 0, false
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Efficiency returns the overall fill efficiency of the boxes against
// the flag field: flagged cells / total box cells.
func Efficiency(f *FlagField, boxes geom.BoxList) float64 {
	if boxes.NumCells() == 0 {
		return 0
	}
	flagged := 0
	for _, b := range boxes {
		flagged += f.CountIn(b)
	}
	return float64(flagged) / float64(boxes.NumCells())
}
