package cluster

import (
	"math/rand"
	"testing"

	"samrdlb/internal/geom"
)

func coverAll(t *testing.T, f *FlagField, boxes geom.BoxList) {
	t.Helper()
	f.Box.ForEach(func(i geom.Index) {
		if f.Get(i) && !boxes.Contains(i) {
			t.Fatalf("flagged cell %v not covered", i)
		}
	})
}

func TestFlagFieldBasics(t *testing.T) {
	f := NewFlagField(geom.UnitCube(4))
	if f.Count() != 0 {
		t.Fatal("fresh field should be clear")
	}
	i := geom.Index{1, 2, 3}
	f.Set(i)
	f.Set(i) // idempotent
	if !f.Get(i) || f.Count() != 1 {
		t.Error("Set/Get/Count wrong")
	}
	f.Clear(i)
	f.Clear(i)
	if f.Get(i) || f.Count() != 0 {
		t.Error("Clear wrong")
	}
	// Out-of-box accesses are safe no-ops.
	f.Set(geom.Index{100, 0, 0})
	if f.Count() != 0 || f.Get(geom.Index{100, 0, 0}) {
		t.Error("out-of-box Set must be ignored")
	}
}

func TestSetWhere(t *testing.T) {
	f := NewFlagField(geom.UnitCube(4))
	n := f.SetWhere(func(i geom.Index) bool { return i[0] == 0 })
	if n != 16 || f.Count() != 16 {
		t.Errorf("SetWhere added %d, count %d", n, f.Count())
	}
	// Second call adds nothing.
	if n := f.SetWhere(func(i geom.Index) bool { return i[0] == 0 }); n != 0 {
		t.Errorf("repeated SetWhere added %d", n)
	}
}

func TestBoundingBox(t *testing.T) {
	f := NewFlagField(geom.UnitCube(8))
	f.Set(geom.Index{2, 3, 4})
	f.Set(geom.Index{5, 3, 1})
	bb := f.BoundingBox(f.Box)
	if bb.Lo != (geom.Index{2, 3, 1}) || bb.Hi != (geom.Index{5, 3, 4}) {
		t.Errorf("BoundingBox = %v", bb)
	}
	empty := NewFlagField(geom.UnitCube(4))
	if !empty.BoundingBox(empty.Box).Empty() {
		t.Error("bounding box of no flags must be empty")
	}
}

func TestCountIn(t *testing.T) {
	f := NewFlagField(geom.UnitCube(4))
	f.SetWhere(func(i geom.Index) bool { return true })
	if got := f.CountIn(geom.UnitCube(2)); got != 8 {
		t.Errorf("CountIn = %d", got)
	}
	if got := f.CountIn(geom.UnitCube(4).Shift(geom.Index{10, 0, 0})); got != 0 {
		t.Errorf("CountIn outside = %d", got)
	}
}

func TestClusterEmpty(t *testing.T) {
	f := NewFlagField(geom.UnitCube(8))
	if boxes := Cluster(f, DefaultParams()); boxes != nil {
		t.Errorf("clustering no flags should return nil, got %v", boxes)
	}
}

func TestClusterSingleBlob(t *testing.T) {
	f := NewFlagField(geom.UnitCube(16))
	blob := geom.BoxFromShape(geom.Index{3, 4, 5}, geom.Index{4, 4, 4})
	blob.ForEach(f.Set)
	boxes := Cluster(f, DefaultParams())
	if len(boxes) != 1 {
		t.Fatalf("dense blob should be one box, got %v", boxes)
	}
	if boxes[0] != blob {
		t.Errorf("box should shrink-wrap blob: got %v want %v", boxes[0], blob)
	}
	if Efficiency(f, boxes) != 1.0 {
		t.Errorf("efficiency = %v", Efficiency(f, boxes))
	}
}

func TestClusterTwoSeparatedBlobs(t *testing.T) {
	f := NewFlagField(geom.UnitCube(24))
	b1 := geom.BoxFromShape(geom.Index{1, 1, 1}, geom.Index{4, 4, 4})
	b2 := geom.BoxFromShape(geom.Index{16, 16, 16}, geom.Index{5, 5, 5})
	b1.ForEach(f.Set)
	b2.ForEach(f.Set)
	boxes := Cluster(f, DefaultParams())
	if len(boxes) != 2 {
		t.Fatalf("two blobs should give two boxes (hole cut), got %d: %v", len(boxes), boxes)
	}
	coverAll(t, f, boxes)
	if e := Efficiency(f, boxes); e < 0.99 {
		t.Errorf("two clean blobs should cluster at efficiency ~1, got %v", e)
	}
}

func TestClusterLShape(t *testing.T) {
	// An L-shaped flag region cannot be one efficient box; the
	// inflection cut should find the corner.
	f := NewFlagField(geom.UnitCube(16))
	geom.BoxFromShape(geom.Index{0, 0, 0}, geom.Index{12, 4, 4}).ForEach(f.Set)
	geom.BoxFromShape(geom.Index{0, 4, 0}, geom.Index{4, 8, 4}).ForEach(f.Set)
	p := DefaultParams()
	boxes := Cluster(f, p)
	coverAll(t, f, boxes)
	if !boxes.Disjoint() {
		t.Error("boxes must be disjoint")
	}
	if e := Efficiency(f, boxes); e < p.MinEfficiency {
		t.Errorf("overall efficiency %v below threshold %v; boxes %v", e, p.MinEfficiency, boxes)
	}
}

func TestClusterRespectsMaxSize(t *testing.T) {
	f := NewFlagField(geom.UnitCube(64))
	geom.BoxFromShape(geom.Index{0, 0, 0}, geom.Index{64, 4, 4}).ForEach(f.Set)
	p := DefaultParams()
	p.MaxSize = 16
	boxes := Cluster(f, p)
	coverAll(t, f, boxes)
	for _, b := range boxes {
		s := b.Shape()
		if s[0] > p.MaxSize || s[1] > p.MaxSize || s[2] > p.MaxSize {
			t.Errorf("box %v exceeds MaxSize %d", b, p.MaxSize)
		}
	}
}

func TestClusterEfficiencyProperty(t *testing.T) {
	// Property: for random sparse flags, every produced box either
	// meets the efficiency threshold or is at/below MinSize; all boxes
	// disjoint, within the domain, and all flags covered.
	rng := rand.New(rand.NewSource(42))
	p := DefaultParams()
	for trial := 0; trial < 25; trial++ {
		f := NewFlagField(geom.UnitCube(20))
		nblobs := 1 + rng.Intn(5)
		for b := 0; b < nblobs; b++ {
			c := geom.Index{rng.Intn(20), rng.Intn(20), rng.Intn(20)}
			r := 1 + rng.Intn(3)
			geom.Box{Lo: c.Sub(geom.Index{r, r, r}), Hi: c.Add(geom.Index{r, r, r})}.
				Intersect(f.Box).ForEach(f.Set)
		}
		boxes := Cluster(f, p)
		coverAll(t, f, boxes)
		if !boxes.Disjoint() {
			t.Fatalf("trial %d: boxes overlap: %v", trial, boxes)
		}
		for _, b := range boxes {
			if !f.Box.ContainsBox(b) {
				t.Fatalf("trial %d: box %v escapes domain", trial, b)
			}
			if f.CountIn(b) == 0 {
				t.Fatalf("trial %d: box %v contains no flags", trial, b)
			}
			eff := float64(f.CountIn(b)) / float64(b.NumCells())
			s := b.Shape()
			small := s[0] <= p.MinSize && s[1] <= p.MinSize && s[2] <= p.MinSize
			if eff < p.MinEfficiency && !small {
				// findCut may legitimately fail to improve an awkward
				// region; accept but require it not to be egregious.
				if eff < p.MinEfficiency/2 {
					t.Fatalf("trial %d: box %v efficiency %v far below threshold", trial, b, eff)
				}
			}
		}
	}
}

func TestClusterScatteredPoints(t *testing.T) {
	// Isolated points must each end up in small boxes, not one huge
	// inefficient box.
	f := NewFlagField(geom.UnitCube(32))
	pts := []geom.Index{{2, 2, 2}, {29, 3, 4}, {5, 28, 27}, {30, 30, 30}}
	for _, p := range pts {
		f.Set(p)
	}
	boxes := Cluster(f, DefaultParams())
	coverAll(t, f, boxes)
	if len(boxes) != len(pts) {
		t.Errorf("expected %d boxes for isolated points, got %d: %v", len(pts), len(boxes), boxes)
	}
	for _, b := range boxes {
		if b.NumCells() > 8 {
			t.Errorf("isolated point box too large: %v", b)
		}
	}
}

func TestClusterDeterministic(t *testing.T) {
	build := func() geom.BoxList {
		f := NewFlagField(geom.UnitCube(16))
		rng := rand.New(rand.NewSource(9))
		for k := 0; k < 80; k++ {
			f.Set(geom.Index{rng.Intn(16), rng.Intn(16), rng.Intn(16)})
		}
		return Cluster(f, DefaultParams())
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic box count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic box %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEfficiencyNoBoxes(t *testing.T) {
	f := NewFlagField(geom.UnitCube(4))
	if Efficiency(f, nil) != 0 {
		t.Error("efficiency of no boxes must be 0")
	}
}

func TestNewFlagFieldEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty box")
		}
	}()
	NewFlagField(geom.Box{Lo: geom.Index{1, 0, 0}, Hi: geom.Index{0, 0, 0}})
}
