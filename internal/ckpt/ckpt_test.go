package ckpt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"samrdlb/internal/vclock"
)

// testMeta builds a minimal but distinctive meta.
func testMeta(step int) *Meta {
	return &Meta{
		Step:    step,
		SimTime: float64(step) * 0.25,
		Clock:   vclock.State{Now: float64(step), Busy: []float64{1, 2}},
	}
}

func mustWrite(t *testing.T, s *Store, step int, payload []byte) int {
	t.Helper()
	gen, err := s.Write(testMeta(step), payload, step, float64(step))
	if err != nil {
		t.Fatalf("Write(step=%d): %v", step, err)
	}
	return gen
}

func TestWriteRestoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hierarchy bytes for step 4")
	gen := mustWrite(t, s, 4, payload)
	if gen != 1 {
		t.Errorf("first generation = %d, want 1", gen)
	}
	meta, got, report, err := s.Restore(nil)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Step != 4 || meta.SimTime != 1.0 {
		t.Errorf("meta = %+v", meta)
	}
	if string(got) != string(payload) {
		t.Errorf("payload = %q, want %q", got, payload)
	}
	if report.Gen != 1 || len(report.Skipped) != 0 {
		t.Errorf("report = %+v", report)
	}
}

func TestRetentionPrunesOldGenerations(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 5; step++ {
		mustWrite(t, s, step, []byte{byte(step)})
	}
	gens := s.Generations()
	if len(gens) != 2 || gens[0].Gen != 4 || gens[1].Gen != 5 {
		t.Fatalf("retained generations = %+v, want gens 4 and 5", gens)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "gen-*.ckpt"))
	if len(files) != 2 {
		t.Errorf("on-disk generation files = %v, want 2", files)
	}
	// The newest still restores.
	meta, _, _, err := s.Restore(nil)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Step != 4 {
		t.Errorf("restored step %d, want 4", meta.Step)
	}
}

func TestReopenContinuesGenerationNumbering(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 3)
	mustWrite(t, s, 0, []byte("a"))
	mustWrite(t, s, 1, []byte("b"))

	s2, err := Open(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	gen := mustWrite(t, s2, 2, []byte("c"))
	if gen != 3 {
		t.Errorf("generation after reopen = %d, want 3", gen)
	}
	meta, payload, _, err := s2.Restore(nil)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Step != 2 || string(payload) != "c" {
		t.Errorf("restored step %d payload %q", meta.Step, payload)
	}
}

func TestRestoreSurvivesMissingManifest(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 3)
	mustWrite(t, s, 0, []byte("a"))
	mustWrite(t, s, 1, []byte("b"))
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	meta, payload, _, err := s2.Restore(nil)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Step != 1 || string(payload) != "b" {
		t.Errorf("restored step %d payload %q after manifest loss", meta.Step, payload)
	}
}

func TestRestoreSurvivesCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 3)
	mustWrite(t, s, 7, []byte("x"))
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	meta, _, _, err := s2.Restore(nil)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Step != 7 {
		t.Errorf("restored step %d, want 7", meta.Step)
	}
}

func TestEmptyStoreRestoreFails(t *testing.T) {
	s, _ := Open(t.TempDir(), 3)
	if _, _, _, err := s.Restore(nil); err == nil {
		t.Fatal("restore of an empty store must fail")
	}
}

func TestAcceptRejectionFallsBack(t *testing.T) {
	s, _ := Open(t.TempDir(), 3)
	mustWrite(t, s, 0, []byte("good"))
	mustWrite(t, s, 1, []byte("semantically bad"))
	meta, payload, report, err := s.Restore(func(m *Meta, p []byte) error {
		if string(p) != "good" {
			return os.ErrInvalid
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Step != 0 || string(payload) != "good" {
		t.Errorf("restored step %d payload %q, want the older good generation", meta.Step, payload)
	}
	if len(report.Skipped) != 1 || report.Skipped[0].Gen != 2 {
		t.Errorf("report = %+v, want gen 2 skipped", report)
	}
	if !strings.Contains(report.String(), "skipped generation 2") {
		t.Errorf("report string %q lacks the skip", report.String())
	}
}
