package ckpt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// manifestName is the store's index file. It is advisory: Restore
// survives a missing or corrupt manifest by scanning the directory,
// so a crash between the generation rename and the manifest rename
// loses nothing.
const manifestName = "MANIFEST.json"

// manifest is the serialised index.
type manifest struct {
	Version     int        `json:"version"`
	Generations []GenEntry `json:"generations"` // oldest first
}

// writeManifest persists the current generation list atomically.
func (s *Store) writeManifest() error {
	data, err := json.MarshalIndent(manifest{Version: MetaVersion, Generations: s.gens}, "", "  ")
	if err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	return s.atomicWrite(manifestName, append(data, '\n'))
}

// loadManifest reads and sanity-checks the manifest.
func (s *Store) loadManifest() ([]GenEntry, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	if m.Version != MetaVersion {
		return nil, fmt.Errorf("manifest version %d, want %d", m.Version, MetaVersion)
	}
	gens := m.Generations
	sort.Slice(gens, func(i, j int) bool { return gens[i].Gen < gens[j].Gen })
	for i, g := range gens {
		if g.Gen <= 0 || g.File == "" || strings.Contains(g.File, "/") {
			return nil, fmt.Errorf("manifest entry %d is malformed: %+v", i, g)
		}
		if i > 0 && gens[i-1].Gen == g.Gen {
			return nil, fmt.Errorf("manifest lists generation %d twice", g.Gen)
		}
	}
	return gens, nil
}

// scanDir rebuilds the generation view from gen-*.ckpt files when the
// manifest is unusable.
func (s *Store) scanDir() []GenEntry {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var gens []GenEntry
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "gen-") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "gen-"), ".ckpt"))
		if err != nil || n <= 0 {
			continue
		}
		info, err := e.Info()
		var size int64
		if err == nil {
			size = info.Size()
		}
		// Step/SimTime are unknown until the file is decoded; Restore
		// fills them in when it validates the generation.
		gens = append(gens, GenEntry{Gen: n, File: name, Step: -1, Size: size})
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].Gen < gens[j].Gen })
	return gens
}
