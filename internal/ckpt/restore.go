package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Skip records one generation Restore had to pass over, and why.
type Skip struct {
	Gen    int
	File   string
	Reason string
}

// RestoreReport describes the outcome of a restore: the generation
// that won, the step it covers, and every newer generation that was
// skipped as corrupt or unreadable.
type RestoreReport struct {
	Gen     int
	Step    int
	SimTime float64
	Skipped []Skip
}

// String renders the report for logs.
func (r *RestoreReport) String() string {
	var b strings.Builder
	for _, sk := range r.Skipped {
		fmt.Fprintf(&b, "skipped generation %d (%s): %s\n", sk.Gen, sk.File, sk.Reason)
	}
	fmt.Fprintf(&b, "restored generation %d (step %d, t=%.4f)", r.Gen, r.Step, r.SimTime)
	return b.String()
}

// Restore walks the tracked generations newest-first. For each it
// verifies the magic and both frame checksums, decodes the meta
// header, and hands (meta, hierarchy payload) to accept; the first
// candidate accept approves wins. accept is where the caller runs its
// own semantic validation (amr.Load, system-shape checks) — an error
// there skips the generation exactly like on-disk corruption does.
// Every skipped generation lands in the report with its reason; if no
// generation survives, the error lists them all.
func (s *Store) Restore(accept func(meta *Meta, hierarchy []byte) error) (*Meta, []byte, *RestoreReport, error) {
	report := &RestoreReport{Gen: -1, Step: -1}
	if len(s.gens) == 0 {
		return nil, nil, report, fmt.Errorf("ckpt.Restore: %s holds no generations", s.dir)
	}
	for i := len(s.gens) - 1; i >= 0; i-- {
		entry := s.gens[i]
		meta, payload, err := s.tryGeneration(entry, accept)
		if err != nil {
			report.Skipped = append(report.Skipped, Skip{Gen: entry.Gen, File: entry.File, Reason: err.Error()})
			continue
		}
		report.Gen = entry.Gen
		report.Step = meta.Step
		report.SimTime = meta.SimTime
		return meta, payload, report, nil
	}
	var reasons []string
	for _, sk := range report.Skipped {
		reasons = append(reasons, fmt.Sprintf("gen %d: %s", sk.Gen, sk.Reason))
	}
	return nil, nil, report, fmt.Errorf("ckpt.Restore: no usable generation in %s (%s)",
		s.dir, strings.Join(reasons, "; "))
}

// tryGeneration validates one generation end to end.
func (s *Store) tryGeneration(entry GenEntry, accept func(*Meta, []byte) error) (*Meta, []byte, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, entry.File))
	if err != nil {
		return nil, nil, err
	}
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("zero-length file")
	}
	meta, payload, err := decode(data)
	if err != nil {
		return nil, nil, err
	}
	if accept != nil {
		if err := accept(meta, payload); err != nil {
			return nil, nil, err
		}
	}
	return meta, payload, nil
}
