package ckpt

import (
	"os"
	"path/filepath"
	"testing"
)

// countGenFiles counts generation files physically present in dir
// (ignoring the manifest and temp files).
func countGenFiles(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".ckpt" {
			n++
		}
	}
	return n
}

// TestPruneErrorsCounted pins the prune-failure fix: a deletion that
// fails must be counted and the file visibly stranded, instead of the
// error vanishing. (Pre-fix, prune ignored os.Remove's error and
// exposed no counter at all.)
func TestPruneErrorsCounted(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFault(scriptedFault{errOn: -1, tearOn: -1, flipOn: -1, removeOn: 3})
	for step := 0; step <= 2; step++ {
		mustWrite(t, s, step, []byte("gen"))
	}
	// Writes 0..2: the prune at write 2 deletes generation 1 cleanly.
	if got := s.PruneErrors(); got != 0 {
		t.Fatalf("clean prunes counted %d errors", got)
	}
	if n := countGenFiles(t, dir); n != 2 {
		t.Fatalf("%d generation files on disk, want 2", n)
	}
	// Write 3's prune hits the injected RemoveError: the generation
	// leaves the manifest but its file stays behind.
	mustWrite(t, s, 3, []byte("gen"))
	if got := s.PruneErrors(); got != 1 {
		t.Errorf("PruneErrors = %d, want 1", got)
	}
	if n := len(s.Generations()); n != 2 {
		t.Errorf("manifest tracks %d generations, want 2", n)
	}
	if n := countGenFiles(t, dir); n != 3 {
		t.Errorf("%d generation files on disk, want 3 (one stranded)", n)
	}
	// Subsequent clean prunes neither re-count nor touch the stranded
	// file.
	mustWrite(t, s, 4, []byte("gen"))
	if got := s.PruneErrors(); got != 1 {
		t.Errorf("PruneErrors after a clean prune = %d, want still 1", got)
	}
	if n := countGenFiles(t, dir); n != 3 {
		t.Errorf("%d generation files on disk after a clean prune, want 3", n)
	}
}

// TestPredictPruneErrors: the injected decision is a pure function of
// (seq, now), so the prediction must match what the write then does.
func TestPredictPruneErrors(t *testing.T) {
	s, err := Open(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFault(scriptedFault{errOn: -1, tearOn: -1, flipOn: -1, removeOn: 3})
	mustWrite(t, s, 0, []byte("gen"))
	// Below the retention limit nothing prunes, fault or not.
	if got := s.PredictPruneErrors(3, 3); got != 0 {
		t.Errorf("prediction below keep = %d, want 0", got)
	}
	mustWrite(t, s, 1, []byte("gen"))
	if got := s.PredictPruneErrors(2, 2); got != 0 {
		t.Errorf("prediction for a clean prune = %d, want 0", got)
	}
	if got := s.PredictPruneErrors(3, 3); got != 1 {
		t.Errorf("prediction for the faulted prune = %d, want 1", got)
	}
	mustWrite(t, s, 2, []byte("gen")) // clean prune
	before := s.PruneErrors()
	predicted := s.PredictPruneErrors(3, 3)
	mustWrite(t, s, 3, []byte("gen")) // faulted prune
	if got := s.PruneErrors() - before; got != predicted {
		t.Errorf("write incurred %d prune errors, prediction said %d", got, predicted)
	}
}
