package ckpt

import (
	"os"
	"path/filepath"
	"testing"
)

// corrupt mutates the newest generation file on disk.
func corrupt(t *testing.T, s *Store, mutate func([]byte) []byte) {
	t.Helper()
	gens := s.Generations()
	if len(gens) == 0 {
		t.Fatal("no generations to corrupt")
	}
	path := filepath.Join(s.Dir(), gens[len(gens)-1].File)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptionMatrix is the ckpt half of the corruption matrix: a
// torn (truncated) stream, a flipped byte in the meta frame, a
// flipped byte in the hierarchy payload, a zero-length file, and a
// file with trailing garbage must all be skipped with an error —
// never a panic — and an intact older generation must win.
func TestCorruptionMatrix(t *testing.T) {
	headerOff := len(magic) + frameOverhead + 2 // inside the meta frame
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(d []byte) []byte { return d[:len(d)/2] }},
		{"flipped-header-byte", func(d []byte) []byte { d[headerOff] ^= 0xff; return d }},
		{"flipped-payload-byte", func(d []byte) []byte { d[len(d)-3] ^= 0x01; return d }},
		{"zero-length", func(d []byte) []byte { return nil }},
		{"bad-magic", func(d []byte) []byte { d[0] ^= 0xff; return d }},
		{"trailing-garbage", func(d []byte) []byte { return append(d, 0xde, 0xad) }},
		{"torn-in-frame-header", func(d []byte) []byte { return d[:len(magic)+3] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, _ := Open(t.TempDir(), 3)
			mustWrite(t, s, 3, []byte("older intact generation"))
			mustWrite(t, s, 6, []byte("newest generation"))
			corrupt(t, s, tc.mutate)

			meta, payload, report, err := s.Restore(nil)
			if err != nil {
				t.Fatalf("fallback to the intact generation failed: %v", err)
			}
			if meta.Step != 3 || string(payload) != "older intact generation" {
				t.Errorf("restored step %d payload %q, want the intact gen", meta.Step, payload)
			}
			if len(report.Skipped) != 1 {
				t.Errorf("skipped = %+v, want exactly the corrupt newest gen", report.Skipped)
			}
		})
	}
}

// TestAllGenerationsCorruptErrors verifies the terminal case: every
// generation unusable yields a descriptive error naming each skip.
func TestAllGenerationsCorruptErrors(t *testing.T) {
	s, _ := Open(t.TempDir(), 3)
	mustWrite(t, s, 0, []byte("a"))
	corrupt(t, s, func(d []byte) []byte { return d[:1] })
	_, _, report, err := s.Restore(nil)
	if err == nil {
		t.Fatal("restore must fail when every generation is corrupt")
	}
	if len(report.Skipped) != 1 {
		t.Errorf("report = %+v", report)
	}
}

// TestInjectedDiskFaults drives the Write-side corruption through a
// scripted DiskFault and checks Restore's behaviour end to end.
type scriptedFault struct {
	errOn, tearOn, flipOn int // write index each fault fires on (-1 = never)
	removeOn              int // write index whose prune deletions fail (0 = never)
}

func (f scriptedFault) WriteError(n int, t float64) bool { return n == f.errOn }
func (f scriptedFault) TornWrite(n int, t float64) (bool, float64) {
	return n == f.tearOn, 0.5
}
func (f scriptedFault) FlipBit(n int, t float64) (bool, float64) {
	return n == f.flipOn, 0.75
}
func (f scriptedFault) RemoveError(n int, t float64) bool {
	return f.removeOn != 0 && n == f.removeOn
}

func TestInjectedDiskFaults(t *testing.T) {
	t.Run("write-error", func(t *testing.T) {
		s, _ := Open(t.TempDir(), 3)
		s.SetFault(scriptedFault{errOn: 1, tearOn: -1, flipOn: -1})
		mustWrite(t, s, 0, []byte("ok"))
		if _, err := s.Write(testMeta(1), []byte("doomed"), 1, 1); err == nil {
			t.Fatal("injected write error must surface")
		}
		if n := len(s.Generations()); n != 1 {
			t.Errorf("failed write left %d generations, want 1", n)
		}
		meta, _, _, err := s.Restore(nil)
		if err != nil || meta.Step != 0 {
			t.Errorf("restore after failed write: meta=%+v err=%v", meta, err)
		}
	})
	t.Run("torn-then-fallback", func(t *testing.T) {
		s, _ := Open(t.TempDir(), 3)
		s.SetFault(scriptedFault{errOn: -1, tearOn: 1, flipOn: -1})
		mustWrite(t, s, 0, []byte("intact"))
		if _, err := s.Write(testMeta(1), []byte("torn payload"), 1, 1); err != nil {
			t.Fatalf("a torn write succeeds from the writer's view: %v", err)
		}
		meta, payload, report, err := s.Restore(nil)
		if err != nil {
			t.Fatal(err)
		}
		if meta.Step != 0 || string(payload) != "intact" {
			t.Errorf("restored step %d payload %q", meta.Step, payload)
		}
		if len(report.Skipped) != 1 || report.Skipped[0].Gen != 2 {
			t.Errorf("report = %+v", report)
		}
	})
	t.Run("bit-flip-then-fallback", func(t *testing.T) {
		s, _ := Open(t.TempDir(), 3)
		s.SetFault(scriptedFault{errOn: -1, tearOn: -1, flipOn: 1})
		mustWrite(t, s, 0, []byte("intact"))
		payload := []byte("payload that will take a bit flip somewhere")
		if _, err := s.Write(testMeta(1), payload, 1, 1); err != nil {
			t.Fatal(err)
		}
		meta, got, report, err := s.Restore(nil)
		if err != nil {
			t.Fatal(err)
		}
		if meta.Step != 0 || string(got) != "intact" {
			t.Errorf("restored step %d payload %q", meta.Step, got)
		}
		if len(report.Skipped) != 1 {
			t.Errorf("report = %+v", report)
		}
	})
}
