// Package ckpt implements a durable, corruption-tolerant checkpoint
// store for long SAMR campaigns. The engine writes a new generation
// every CheckpointInterval level-0 steps; each generation is a
// CRC32-framed record stream holding an engine-state header plus the
// amr.Save gob payload, written via temp file + fsync + atomic rename
// so a crash mid-write never destroys an older generation. A small
// manifest tracks the retained generations (newest last); Restore
// verifies every frame checksum and falls back generation by
// generation when the newest checkpoint is torn or bit-flipped,
// reporting what was skipped.
//
// On-disk layout of one generation (gen-%06d.ckpt):
//
//	magic "SAMRCKP1"                              (8 bytes)
//	frame 0: uint32 BE length | uint32 BE CRC32-IEEE | gob(Meta)
//	frame 1: uint32 BE length | uint32 BE CRC32-IEEE | amr.Save stream
//
// The store never interprets the hierarchy payload itself — the
// caller validates it through Restore's accept callback, so semantic
// corruption (a payload whose CRC holds but whose content amr.Load
// rejects) also triggers the generation fallback.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"samrdlb/internal/vclock"
)

const (
	magic = "SAMRCKP1"
	// MetaVersion is the current engine-state header version; Restore
	// rejects generations written by an incompatible future format.
	MetaVersion = 1
	// frameOverhead is the per-frame length + CRC prefix.
	frameOverhead = 8
	// maxFrame caps a frame's declared length: anything beyond it is a
	// corrupt length field, not a plausible checkpoint.
	maxFrame = 1 << 31
)

// ProbeSeq records one link pair's position in the deterministic
// probe-loss drop sequence, so a resumed run observes the same fates
// the uninterrupted run would have.
type ProbeSeq struct {
	A, B int
	N    uint64
}

// Meta is the engine-state header stored alongside the hierarchy in
// every generation: everything beyond the grid hierarchy that the
// engine needs to continue a run byte-identically.
type Meta struct {
	Version int
	// Step is the last completed level-0 step the generation covers.
	Step int
	// SimTime is the simulated physical time after that step.
	SimTime float64
	// Clock is the full virtual-clock state (global time, per-phase
	// breakdown, per-processor busy time).
	Clock vclock.State
	// IntervalStart is the virtual time the current measurement
	// interval began at (set before the checkpoint write was charged).
	IntervalStart float64
	// IntervalTime and Delta are the recorder's persistent T(t) and δ.
	IntervalTime float64
	Delta        float64
	// ForceEval arms a catch-up gain/cost evaluation for the next
	// global decision (set when a quarantine lifted just before the
	// checkpoint).
	ForceEval bool
	// NextGridID preserves the hierarchy's ID counter: grid IDs break
	// DLB ties, so a resumed run must hand out the same IDs.
	NextGridID int64

	// Run counters, cumulative from the start of the campaign.
	GlobalEvals     int
	GlobalRedists   int
	LocalMigrations int
	MaxCells        int64
	// LastGain, LastCost and LastGamma preserve the inputs of the most
	// recent Gain > γ·Cost gate, so a resumed run's Result reports the
	// same decision inputs the uninterrupted run would (the recorder
	// interval alone cannot reproduce them after a resume).
	LastGain, LastCost, LastGamma float64
	LedgerEvents                  uint64
	LedgerRebuilds                int
	DiskCheckpoints               int
	DiskCkptErrors                int
	// DiskPruneErrors counts pruned-generation deletions that failed,
	// cumulative — including the prune the generation's own write will
	// trigger (predicted; the injected decision is deterministic).
	// Absent (zero) on generations written before prune errors were
	// tracked; gob decodes those compatibly.
	DiskPruneErrors int
	// WriteAttempts is the durable-write sequence position (attempts,
	// including failed ones) — it keys the deterministic disk-fault
	// decisions, so a resumed run replays the same corruption.
	WriteAttempts int

	// Fault-tolerance state (meaningful only when HasFaults).
	HasFaults      bool
	FaultSeed      int64
	LastFailCheck  float64
	WasQuarantined bool
	FailedProcs    []int
	ProbeSeq       []ProbeSeq
	ProbeRetries   int
	ProbeFallbacks int
	RetryTime      float64
	QuarSteps      int
	CatchupEvals   int
	Recoveries     int
	RecoveryTime   float64
	CkptFallbacks  int
	PristineResets int
	CorruptGens    int

	// Elastic-membership state (meaningful only when HasFaults; absent
	// — nil/zero — on generations written before the membership
	// tracker existed, which restore as "everyone alive"). MembState,
	// MembCause and MembReadmit are per-processor; MembSuspicion and
	// MembEvidence are per-group.
	MembState     []int
	MembCause     []int
	MembReadmit   []int
	MembSuspicion []int
	MembEvidence  []bool
	// Membership counters, cumulative from the start of the campaign.
	MembSuspects    int
	MembSuspectDead int
	MembRejoins     int
	MembCatchups    int
	MembQuorumSteps int
}

// DiskFault injects deterministic corruption into checkpoint writes.
// It mirrors netsim's FaultModel pattern: internal/fault implements it
// without an import in either direction. n is the write's sequence
// index (attempts since campaign start), t the virtual time.
type DiskFault interface {
	// WriteError reports whether the write fails outright (the file
	// and manifest are left untouched).
	WriteError(n int, t float64) bool
	// TornWrite reports whether the write lands torn, and the fraction
	// of bytes in [0,1) that survive.
	TornWrite(n int, t float64) (bool, float64)
	// FlipBit reports whether one bit of the written image is flipped,
	// and a unit value in [0,1) selecting which bit.
	FlipBit(n int, t float64) (bool, float64)
	// RemoveError reports whether deleting a pruned generation file
	// fails (the file stays on disk; the store stops tracking it).
	RemoveError(n int, t float64) bool
}

// Store manages a directory of checkpoint generations.
type Store struct {
	dir       string
	keep      int
	fault     DiskFault
	gens      []GenEntry // in-memory manifest view, oldest first
	pruneErrs int        // pruned-file deletions that failed since Open
}

// GenEntry is one manifest row.
type GenEntry struct {
	Gen     int     `json:"gen"`
	File    string  `json:"file"`
	Step    int     `json:"step"`
	SimTime float64 `json:"simTime"`
	Size    int64   `json:"size"`
}

// Open creates (or reopens) a store rooted at dir, retaining keep
// generations (keep < 1 is treated as 1). An existing manifest is
// loaded; a missing or corrupt one falls back to scanning the
// directory, so a store survives losing its manifest.
func Open(dir string, keep int) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("ckpt.Open: empty directory")
	}
	if keep < 1 {
		keep = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt.Open: %w", err)
	}
	s := &Store{dir: dir, keep: keep}
	gens, err := s.loadManifest()
	if err != nil {
		// Manifest missing or corrupt: rebuild the view from the
		// generation files themselves.
		gens = s.scanDir()
	}
	s.gens = gens
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Keep returns the retention count.
func (s *Store) Keep() int { return s.keep }

// SetFault attaches a disk-fault injector consulted on every write.
func (s *Store) SetFault(f DiskFault) { s.fault = f }

// Generations returns the tracked generations, oldest first.
func (s *Store) Generations() []GenEntry {
	return append([]GenEntry(nil), s.gens...)
}

// latestGen returns the highest tracked generation number (0 if none).
func (s *Store) latestGen() int {
	if len(s.gens) == 0 {
		return 0
	}
	return s.gens[len(s.gens)-1].Gen
}

// genFile names a generation's file.
func genFile(gen int) string { return fmt.Sprintf("gen-%06d.ckpt", gen) }

// frame appends one length-prefixed CRC32-framed record to b.
func frame(b *bytes.Buffer, payload []byte) {
	var hdr [frameOverhead]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	b.Write(hdr[:])
	b.Write(payload)
}

// readFrame parses one frame from data, returning the payload and the
// remaining bytes.
func readFrame(data []byte) (payload, rest []byte, err error) {
	if len(data) < frameOverhead {
		return nil, nil, fmt.Errorf("truncated frame header (%d bytes)", len(data))
	}
	n := binary.BigEndian.Uint32(data[0:4])
	sum := binary.BigEndian.Uint32(data[4:8])
	if n > maxFrame {
		return nil, nil, fmt.Errorf("absurd frame length %d", n)
	}
	if uint64(len(data)-frameOverhead) < uint64(n) {
		return nil, nil, fmt.Errorf("frame declares %d bytes, only %d remain", n, len(data)-frameOverhead)
	}
	payload = data[frameOverhead : frameOverhead+int(n)]
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, nil, fmt.Errorf("frame checksum mismatch: stored %08x, computed %08x", sum, got)
	}
	return payload, data[frameOverhead+int(n):], nil
}

// encode assembles the full on-disk image of one generation.
func encode(meta *Meta, hierarchy []byte) ([]byte, error) {
	var mb bytes.Buffer
	if err := gob.NewEncoder(&mb).Encode(meta); err != nil {
		return nil, fmt.Errorf("encode meta: %w", err)
	}
	var out bytes.Buffer
	out.Grow(len(magic) + 2*frameOverhead + mb.Len() + len(hierarchy))
	out.WriteString(magic)
	frame(&out, mb.Bytes())
	frame(&out, hierarchy)
	return out.Bytes(), nil
}

// decode validates a generation image and returns its meta and
// hierarchy payload.
func decode(data []byte) (*Meta, []byte, error) {
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, nil, fmt.Errorf("bad magic (%d bytes)", len(data))
	}
	metaBytes, rest, err := readFrame(data[len(magic):])
	if err != nil {
		return nil, nil, fmt.Errorf("meta frame: %w", err)
	}
	payload, rest, err := readFrame(rest)
	if err != nil {
		return nil, nil, fmt.Errorf("hierarchy frame: %w", err)
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("%d trailing bytes after the hierarchy frame", len(rest))
	}
	var meta Meta
	if err := gob.NewDecoder(bytes.NewReader(metaBytes)).Decode(&meta); err != nil {
		return nil, nil, fmt.Errorf("decode meta: %w", err)
	}
	if meta.Version != MetaVersion {
		return nil, nil, fmt.Errorf("meta version %d, want %d", meta.Version, MetaVersion)
	}
	return &meta, payload, nil
}

// Write adds a new generation holding meta plus the serialised
// hierarchy, pruning generations beyond the retention count. seq is
// the caller's write-attempt counter and now the virtual time — both
// feed the deterministic disk-fault decisions. A simulated write
// error returns before anything touches disk; torn writes and bit
// flips corrupt the stored bytes (the writer itself sees success,
// like a lying disk), which is what exercises Restore's fallback.
func (s *Store) Write(meta *Meta, hierarchy []byte, seq int, now float64) (int, error) {
	meta.Version = MetaVersion
	img, err := encode(meta, hierarchy)
	if err != nil {
		return 0, fmt.Errorf("ckpt.Write: %w", err)
	}
	if s.fault != nil && s.fault.WriteError(seq, now) {
		return 0, fmt.Errorf("ckpt.Write: injected write error (write %d at t=%.4f)", seq, now)
	}
	if s.fault != nil {
		if torn, frac := s.fault.TornWrite(seq, now); torn {
			img = img[:int(frac*float64(len(img)))]
		}
		if flip, u := s.fault.FlipBit(seq, now); flip && len(img) > 0 {
			bit := int(u * float64(len(img)*8))
			img = append([]byte(nil), img...) // do not corrupt the caller's view
			img[bit/8] ^= 1 << (bit % 8)
		}
	}

	gen := s.latestGen() + 1
	name := genFile(gen)
	if err := s.atomicWrite(name, img); err != nil {
		return 0, fmt.Errorf("ckpt.Write: %w", err)
	}
	s.gens = append(s.gens, GenEntry{
		Gen: gen, File: name, Step: meta.Step, SimTime: meta.SimTime, Size: int64(len(img)),
	})
	s.prune(seq, now)
	if err := s.writeManifest(); err != nil {
		return 0, fmt.Errorf("ckpt.Write: %w", err)
	}
	return gen, nil
}

// atomicWrite writes data to name via temp file + fsync + rename, then
// fsyncs the directory so the rename itself is durable.
func (s *Store) atomicWrite(name string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".tmp-"+name+"-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, name)); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(s.dir)
}

// syncDir fsyncs a directory; filesystems that refuse directory syncs
// are tolerated (the rename is still atomic).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		// Some filesystems (and sandboxes) reject fsync on directories;
		// treat any sync error as non-fatal best effort.
		return nil
	}
	return nil
}

// prune drops generations beyond the retention count, deleting their
// files. A deletion that fails — injected via the disk fault's
// RemoveError, or a real filesystem error — is counted rather than
// dropped on the floor: the generation leaves the manifest either
// way, but PruneErrors surfaces the stranded files so disk-fault
// scenarios (and operators watching a filling disk) can see them.
// seq and now key the deterministic fault decision, like Write's.
func (s *Store) prune(seq int, now float64) {
	for len(s.gens) > s.keep {
		old := s.gens[0]
		s.gens = s.gens[1:]
		if s.fault != nil && s.fault.RemoveError(seq, now) {
			s.pruneErrs++
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, old.File)); err != nil {
			s.pruneErrs++
		}
	}
}

// PruneErrors returns the number of pruned-generation deletions that
// failed since the store was opened.
func (s *Store) PruneErrors() int { return s.pruneErrs }

// PredictPruneErrors returns how many prune errors the NEXT
// successful write at (seq, now) will incur: the injected RemoveError
// decision is a pure function of (seq, now), so the caller can fold
// the in-flight write's prune outcome into the metadata that very
// write persists. Real (non-injected) filesystem errors are
// inherently unpredictable and excluded — resume determinism is only
// promised under injected faults.
func (s *Store) PredictPruneErrors(seq int, now float64) int {
	if s.fault == nil || !s.fault.RemoveError(seq, now) {
		return 0
	}
	over := len(s.gens) + 1 - s.keep
	if over < 0 {
		return 0
	}
	return over
}
