package amr

import (
	"bytes"
	"testing"

	"samrdlb/internal/geom"
)

func TestCheckpointRoundTripWithData(t *testing.T) {
	h := buildDataHierarchy(t, 4)
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	h2, err := Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if h2.Domain != h.Domain || h2.RefFactor != h.RefFactor ||
		h2.MaxLevel != h.MaxLevel || h2.NGhost != h.NGhost {
		t.Error("metadata not preserved")
	}
	assertSameData(t, h, h2, "checkpoint")
	// Identity, ownership and parentage preserved.
	for l := 0; l <= h.MaxLevel; l++ {
		a, b := h.Grids(l), h2.Grids(l)
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Owner != b[i].Owner || a[i].Parent != b[i].Parent {
				t.Fatalf("grid metadata differs at level %d index %d", l, i)
			}
		}
	}
}

func TestCheckpointRoundTripPlanOnly(t *testing.T) {
	h := New(geom.UnitCube(8), 2, 1, 1, false, "q")
	g := h.AddGrid(0, geom.UnitCube(8), 3, NoGrid)
	h.AddGrid(1, geom.BoxFromShape(geom.Index{2, 2, 2}, geom.Index{4, 4, 4}), 1, g.ID)
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatalf("save: %v", err)
	}
	h2, err := Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if h2.WithData {
		t.Error("plan-only flag not preserved")
	}
	if len(h2.Grids(0)) != 1 || len(h2.Grids(1)) != 1 {
		t.Error("grids not restored")
	}
	if h2.Grids(0)[0].Owner != 3 {
		t.Error("owner not restored")
	}
}

func TestCheckpointIDsSurviveFurtherGrowth(t *testing.T) {
	h := buildDataHierarchy(t, 2)
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	h2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Adding a new grid after restore must not collide with restored IDs.
	g := h2.AddGrid(0, geom.UnitCube(16).Shift(geom.Index{0, 0, 0}), 0, NoGrid)
	_ = g
	seen := map[GridID]bool{}
	for l := 0; l <= h2.MaxLevel; l++ {
		for _, x := range h2.Grids(l) {
			if seen[x.ID] {
				t.Fatalf("duplicate grid ID %d after restore", x.ID)
			}
			seen[x.ID] = true
		}
	}
}

func TestLoadGarbageFails(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Error("garbage must not load")
	}
}
