package amr

import (
	"math/rand"
	"testing"

	"samrdlb/internal/cluster"
	"samrdlb/internal/geom"
)

// Property tests over regridding and splitting: for randomized flag
// patterns and cut positions the structural invariants must hold
// unconditionally.

func TestRegridAlwaysProperlyNestedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		h := New(geom.UnitCube(16), 2, 2, 1, false, "q")
		// Random level-0 tiling over 1..4 owners.
		owners := 1 + rng.Intn(4)
		tiles := geom.BoxList{h.Domain}.SplitEvenly(2 + rng.Intn(10))
		tiles.SortByLo()
		for i, b := range tiles {
			h.AddGrid(0, b, i%owners, NoGrid)
		}
		// Random blobby flags, different at each level.
		nblobs := 1 + rng.Intn(4)
		centers := make([]geom.Index, nblobs)
		radii := make([]int, nblobs)
		for b := range centers {
			centers[b] = geom.Index{rng.Intn(16), rng.Intn(16), rng.Intn(16)}
			radii[b] = 1 + rng.Intn(3)
		}
		flag := func(level int, f *cluster.FlagField) {
			scale := 1 << level
			for b := range centers {
				c := centers[b].Scale(scale)
				r := radii[b] * scale / 2
				if r < 1 {
					r = 1
				}
				box := geom.Box{
					Lo: c.Sub(geom.Index{r, r, r}),
					Hi: c.Add(geom.Index{r, r, r}),
				}.Intersect(f.Box)
				if !box.Empty() {
					box.ForEach(f.Set)
				}
			}
		}
		p := DefaultRegridParams()
		p.Coalesce = rng.Intn(2) == 0
		h.RegridAll(0, flag, p, nil)
		if err := h.CheckProperNesting(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Every flagged level-0 cell covered by level-0 grids must be
		// covered by level 1 (refined).
		f := h.FlagFieldFor(0)
		flag(0, f)
		lvl1 := h.Boxes(1).Coarsen(2)
		h.Domain.ForEach(func(i geom.Index) {
			if f.Get(i) && !lvl1.Contains(i) {
				t.Fatalf("trial %d: flagged cell %v not refined", trial, i)
			}
		})
	}
}

func TestSplitGridAlwaysNestedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 40; trial++ {
		h := New(geom.UnitCube(8), 2, 2, 1, false, "q")
		g := h.AddGrid(0, geom.UnitCube(8), 0, NoGrid)
		// Random children and grandchildren.
	next:
		for c := 0; c < 1+rng.Intn(3); c++ {
			lo := geom.Index{rng.Intn(12), rng.Intn(12), rng.Intn(12)}
			sh := geom.Index{2 + rng.Intn(4), 2 + rng.Intn(4), 2 + rng.Intn(4)}
			box := geom.BoxFromShape(lo, sh).Intersect(h.DomainAt(1))
			if box.Empty() {
				continue
			}
			for _, other := range h.Grids(1) {
				if other.Box.Intersects(box) {
					continue next
				}
			}
			child := h.AddGrid(1, box, 0, g.ID)
			gl := child.Box.Refine(2)
			gbox := geom.BoxFromShape(gl.Lo, geom.Index{2, 2, 2}).Intersect(gl)
			if !gbox.Empty() {
				h.AddGrid(2, gbox, 0, child.ID)
			}
		}
		d := rng.Intn(3)
		at := 1 + rng.Intn(7)
		total := h.TotalCells(0)
		h.SplitGrid(g, d, at)
		if h.TotalCells(0) != total {
			t.Fatalf("trial %d: split changed level-0 cells", trial)
		}
		if err := h.CheckProperNesting(); err != nil {
			t.Fatalf("trial %d (cut d=%d at=%d): %v", trial, d, at, err)
		}
	}
}
