package amr

import (
	"math/rand"
	"testing"

	"samrdlb/internal/geom"
	"samrdlb/internal/solver"
)

// randomBoxIn returns a random non-empty box inside dom.
func randomBoxIn(rng *rand.Rand, dom geom.Box) geom.Box {
	var lo, hi geom.Index
	for d := 0; d < geom.Dims; d++ {
		a := dom.Lo[d] + rng.Intn(dom.Shape()[d])
		b := dom.Lo[d] + rng.Intn(dom.Shape()[d])
		if a > b {
			a, b = b, a
		}
		lo[d], hi[d] = a, b
	}
	return geom.NewBox(lo, hi)
}

// checkQuery asserts the index query for b returns a pos-sorted,
// duplicate-free candidate list that contains every level grid
// intersecting b and nothing outside the level.
func checkQuery(t *testing.T, h *Hierarchy, l int, b geom.Box) {
	t.Helper()
	h.planMu.Lock()
	li := h.indexFor(l)
	got := li.query(b, nil)
	h.planMu.Unlock()
	inLevel := make(map[*Grid]bool, len(h.Grids(l)))
	for _, g := range h.Grids(l) {
		inLevel[g] = true
	}
	seen := make(map[*Grid]bool, len(got))
	for i, g := range got {
		if !inLevel[g] {
			t.Fatalf("query(%v) returned grid %d not on level %d", b, g.ID, l)
		}
		if seen[g] {
			t.Fatalf("query(%v) returned grid %d twice", b, g.ID)
		}
		seen[g] = true
		if i > 0 && got[i-1].pos >= g.pos {
			t.Fatalf("query(%v) candidates out of level-list order at %d", b, i)
		}
	}
	for _, g := range h.Grids(l) {
		if g.Box.Intersects(b) && !seen[g] {
			t.Fatalf("query(%v) missed intersecting grid %d box %v", b, g.ID, g.Box)
		}
	}
}

func TestLevelIndexQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dom := geom.UnitCube(48)
	h := New(dom, 2, 0, 1, false, "q")
	for _, b := range (geom.BoxList{dom}).SplitEvenly(60) {
		h.AddGrid(0, b, rng.Intn(4), NoGrid)
	}
	for i := 0; i < 200; i++ {
		// Include boxes that poke past the domain, as grown ghost
		// queries do: clamping to border buckets must stay a superset.
		q := randomBoxIn(rng, dom).Grow(rng.Intn(3))
		checkQuery(t, h, 0, q)
	}
}

func TestLevelIndexIncrementalMaintenance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dom := geom.UnitCube(48)
	h := New(dom, 2, 0, 1, false, "q")
	boxes := (geom.BoxList{dom}).SplitEvenly(40)
	for _, b := range boxes {
		h.AddGrid(0, b, 0, NoGrid)
	}
	// Force the index to exist before mutating, so the mutation hooks
	// (not a lazy rebuild) are what keep it current.
	checkQuery(t, h, 0, dom)
	for step := 0; step < 30; step++ {
		gs := h.Grids(0)
		if rng.Intn(2) == 0 && len(gs) > 8 {
			h.RemoveGrid(gs[rng.Intn(len(gs))].ID)
		} else {
			h.AddGrid(0, randomBoxIn(rng, dom), 0, NoGrid)
		}
		for i := 0; i < 5; i++ {
			checkQuery(t, h, 0, randomBoxIn(rng, dom))
		}
	}
}

func TestLevelIndexRebuildTracksPopulation(t *testing.T) {
	dom := geom.UnitCube(64)
	h := New(dom, 2, 0, 1, false, "q")
	boxes := (geom.BoxList{dom}).SplitEvenly(4)
	for _, b := range boxes {
		h.AddGrid(0, b, 0, NoGrid)
	}
	h.planMu.Lock()
	small := h.indexFor(0)
	h.planMu.Unlock()
	if small.sizedFor != 4 {
		t.Fatalf("sizedFor = %d, want 4", small.sizedFor)
	}
	// Grow far past the rebuild threshold: indexFor must resize.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4*indexRebuildFactor+indexRebuildSlop; i++ {
		h.AddGrid(0, randomBoxIn(rng, dom), 0, NoGrid)
	}
	h.planMu.Lock()
	big := h.indexFor(0)
	h.planMu.Unlock()
	if big == small {
		t.Fatal("index not rebuilt after population growth")
	}
	if big.sizedFor != len(h.Grids(0)) {
		t.Fatalf("sizedFor = %d, want %d", big.sizedFor, len(h.Grids(0)))
	}
	checkQuery(t, h, 0, dom)
	// Shrink far below the resolution: indexFor must rebuild again.
	var ids []GridID
	for _, g := range h.Grids(0)[2:] {
		ids = append(ids, g.ID)
	}
	for _, id := range ids {
		h.RemoveGrid(id)
	}
	h.planMu.Lock()
	shrunk := h.indexFor(0)
	h.planMu.Unlock()
	if shrunk == big {
		t.Fatal("index not rebuilt after population collapse")
	}
	checkQuery(t, h, 0, dom)
}

func TestLevelIndexParallelBuildMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	dom := geom.UnitCube(96)
	h := New(dom, 2, 0, 1, false, "q")
	boxes := (geom.BoxList{dom}).SplitEvenly(indexParallelMin + 500)
	for _, b := range boxes {
		h.AddGrid(0, b, 0, NoGrid)
	}
	grids := h.Grids(0)
	serial := newLevelIndex(dom, len(grids))
	serial.build(grids, nil)
	par := newLevelIndex(dom, len(grids))
	par.build(grids, solver.NewPool(4))
	if par.count != serial.count {
		t.Fatalf("parallel count %d, serial %d", par.count, serial.count)
	}
	for i := 0; i < 300; i++ {
		q := randomBoxIn(rng, dom)
		a := serial.query(q, nil)
		b := par.query(q, nil)
		if len(a) != len(b) {
			t.Fatalf("query(%v): serial %d candidates, parallel %d", q, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("query(%v) candidate %d: serial grid %d, parallel grid %d",
					q, j, a[j].ID, b[j].ID)
			}
		}
	}
}
