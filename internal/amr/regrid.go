package amr

import (
	"samrdlb/internal/cluster"
	"samrdlb/internal/geom"
	"samrdlb/internal/grid"
)

// RegridParams controls hierarchy reconstruction.
type RegridParams struct {
	// Cluster are the Berger–Rigoutsos parameters.
	Cluster cluster.Params
	// Buffer expands every flagged cell by this Chebyshev radius
	// before clustering, so features stay inside their fine grids for
	// a few steps between regrids.
	Buffer int
	// Coalesce merges adjacent child pieces of the same parent into
	// single grids, trading fewer (larger) grids against balancing
	// granularity.
	Coalesce bool
}

// DefaultRegridParams returns typical SAMR regrid settings.
func DefaultRegridParams() RegridParams {
	return RegridParams{Cluster: cluster.DefaultParams(), Buffer: 1}
}

// Flagger marks the level-l cells needing refinement. The flag field
// spans the bounding box of level l's grids; implementations flag via
// f.Set / f.SetWhere and may consult the hierarchy's patch data.
type Flagger func(level int, f *cluster.FlagField)

// Placer chooses the owning processor for a newly created child grid.
// The distributed DLB places children in the parent's group; the
// parallel DLB spreads them over all processors.
type Placer func(childBox geom.Box, parent *Grid) int

// RegridAll rebuilds every level deeper than base: flags are gathered
// on each level in turn, clustered into boxes, intersected with the
// existing level's grids (enforcing proper nesting), refined, and
// instantiated as new child grids. Field data on new grids is
// initialised by prolongation from the coarse level and then
// overwritten with any old same-level data that overlaps, so the
// solution survives regridding. It returns the number of grids
// created.
func (h *Hierarchy) RegridAll(base int, flag Flagger, p RegridParams, place Placer) int {
	// Capture old fine grids for data copy before destroying them.
	old := make(map[int][]*Grid)
	for l := base + 1; l <= h.MaxLevel; l++ {
		old[l] = append([]*Grid(nil), h.Grids(l)...)
	}
	h.ClearLevelsFrom(base + 1)

	created := 0
	for l := base; l < h.MaxLevel; l++ {
		if len(h.Grids(l)) == 0 {
			break
		}
		f := h.FlagFieldFor(l)
		if f == nil {
			break
		}
		flag(l, f)
		if f.Count() == 0 {
			break
		}
		buffered := bufferFlags(f, p.Buffer)
		boxes := cluster.Cluster(buffered, p.Cluster)
		madeAny := false
		// Children are created sequentially (AddGrid mutates the
		// hierarchy) but their data is initialised afterwards in one
		// parallel batch: each init writes only its own child's patch
		// and reads only coarse and old same-level patches, none of
		// which a sibling init writes.
		var pending []*Grid
		for _, parent := range h.Grids(l) {
			var pieces geom.BoxList
			for _, b := range boxes {
				if piece := b.Intersect(parent.Box); !piece.Empty() {
					pieces = append(pieces, piece)
				}
			}
			if p.Coalesce {
				pieces = pieces.Coalesce()
				pieces.SortByLo()
			}
			for _, piece := range pieces {
				childBox := piece.Refine(h.RefFactor)
				owner := parent.Owner
				if place != nil {
					owner = place(childBox, parent)
				}
				child := h.AddGrid(l+1, childBox, owner, parent.ID)
				created++
				madeAny = true
				if h.WithData {
					pending = append(pending, child)
				}
			}
		}
		if len(pending) > 0 {
			oldL := old[l+1]
			if h.pool != nil && h.pool.Workers() > 1 && len(pending) > 1 {
				h.pool.ForEach(len(pending), func(i int) {
					h.initChildData(pending[i], oldL)
				})
			} else {
				for _, child := range pending {
					h.initChildData(child, oldL)
				}
			}
		}
		if !madeAny {
			break
		}
		h.SortLevel(l + 1)
	}
	return created
}

// initChildData fills a new child grid by prolongation from every
// overlapping coarse grid, then copies old same-level data where it
// exists (the old solution is more accurate than prolonged data).
// Safe to run concurrently for distinct children: it writes only the
// child's own patch.
func (h *Hierarchy) initChildData(child *Grid, oldSameLevel []*Grid) {
	grown := child.Patch.Grown()
	for _, coarse := range h.Grids(child.Level - 1) {
		if coarse.Patch == nil {
			continue
		}
		region := grown.Intersect(coarse.Box.Refine(h.RefFactor))
		if region.Empty() {
			continue
		}
		for _, f := range h.Fields {
			grid.Prolong(child.Patch, coarse.Patch, f, h.RefFactor, region)
		}
	}
	for _, og := range oldSameLevel {
		if og.Patch == nil {
			continue
		}
		region := grown.Intersect(og.Box)
		if region.Empty() {
			continue
		}
		for _, f := range h.Fields {
			grid.CopyRegion(child.Patch, og.Patch, f, region)
		}
	}
}

// bufferFlags returns a flag field where every flag of f is expanded
// by the given Chebyshev radius (clipped to f's box).
func bufferFlags(f *cluster.FlagField, radius int) *cluster.FlagField {
	if radius <= 0 {
		return f
	}
	out := cluster.NewFlagField(f.Box)
	f.Box.ForEach(func(i geom.Index) {
		if !f.Get(i) {
			return
		}
		nb := geom.Box{
			Lo: i.Sub(geom.Index{radius, radius, radius}),
			Hi: i.Add(geom.Index{radius, radius, radius}),
		}.Intersect(f.Box)
		nb.ForEach(out.Set)
	})
	return out
}

// FlagWhereGradient flags every level-l cell whose solution gradient
// (max absolute one-sided difference of the named field over the
// three dimensions) exceeds the threshold — data-driven refinement,
// the criterion production SAMR codes use, as an alternative to the
// geometric schedules of the workload drivers. Only data-carrying
// hierarchies can use it.
func (h *Hierarchy) FlagWhereGradient(level int, field string, threshold float64, f *cluster.FlagField) {
	if !h.WithData {
		panic("amr.FlagWhereGradient: needs field data")
	}
	for _, g := range h.Grids(level) {
		q := g.Patch.Field(field)
		gb := g.Patch.Grown()
		s := gb.Shape()
		stride := [3]int{1, s[0], s[0] * s[1]}
		g.Box.ForEach(func(i geom.Index) {
			off := gb.Offset(i)
			for d := 0; d < 3; d++ {
				dv := q[off+stride[d]] - q[off]
				if dv < 0 {
					dv = -dv
				}
				if dv > threshold {
					f.Set(i)
					return
				}
				dv = q[off] - q[off-stride[d]]
				if dv < 0 {
					dv = -dv
				}
				if dv > threshold {
					f.Set(i)
					return
				}
			}
		})
	}
}
