package amr

import (
	"math"
	"slices"
	"sync/atomic"

	"samrdlb/internal/geom"
	"samrdlb/internal/solver"
)

// Spatial neighbor index. The plan builders used to answer "which
// grids overlap this grown box?" by scanning every grid of the level —
// O(n²) per plan build. Each level instead keeps a uniform bucket grid
// over its index space: a grid is registered in every bucket its box
// touches, so a query gathers the buckets the query box touches and
// unions their occupants. Bucket extents track the typical grid size
// (~cbrt(n) buckets per dimension), so a query returns O(k) candidates
// independent of the level's population.
//
// The index is built lazily on first plan query — in parallel over the
// attached solver.Pool when the level is large — and maintained
// incrementally from the hierarchy's mutation hooks (noteAdded /
// noteRemoved). Bucket-internal order is unspecified (the parallel
// build races grids into their slots), so query sorts candidates by
// their level-list position before returning: plan builders iterate
// candidates in exactly the order the O(n²) scans iterate the level,
// which is what keeps indexed plans byte-identical to the scan
// baselines.

const (
	// indexRebuildFactor triggers a full (re)build when the level's
	// population drifts this far from the size the buckets were chosen
	// for; the slop term keeps tiny levels from rebuilding constantly.
	indexRebuildFactor = 4
	indexRebuildSlop   = 8
	// indexParallelMin is the level size below which the index build
	// stays serial (goroutine fan-out costs more than the loop).
	indexParallelMin = 2048
	// maxIndexBuckets caps the bucket-array footprint per level.
	maxIndexBuckets = 1 << 21
)

// levelIndex is one level's uniform bucket grid.
type levelIndex struct {
	org     geom.Index // low corner of the bucketed region (level domain Lo)
	cell    geom.Index // bucket extent in level cells, per dimension
	dims    geom.Index // bucket count per dimension
	buckets [][]*Grid
	// count is the live population; sizedFor is the population the
	// bucket resolution was chosen for at the last full build.
	count    int
	sizedFor int
}

// newLevelIndex sizes the bucket grid for a level expected to hold n
// grids: ~cbrt(n) buckets per dimension, so buckets and grids have
// comparable extents and each grid touches O(1) buckets.
func newLevelIndex(dom geom.Box, n int) *levelIndex {
	li := &levelIndex{org: dom.Lo}
	per := int(math.Cbrt(float64(max(n, 1)))) + 1
	shape := dom.Shape()
	for d := 0; d < geom.Dims; d++ {
		e := shape[d]
		dims := min(per, e)
		li.cell[d] = (e + dims - 1) / dims
		li.dims[d] = (e + li.cell[d] - 1) / li.cell[d]
	}
	for li.dims[0]*li.dims[1]*li.dims[2] > maxIndexBuckets {
		for d := 0; d < geom.Dims; d++ {
			li.cell[d] *= 2
			li.dims[d] = (shape[d] + li.cell[d] - 1) / li.cell[d]
		}
	}
	li.buckets = make([][]*Grid, li.dims[0]*li.dims[1]*li.dims[2])
	li.sizedFor = n
	return li
}

// bucketRange returns the clamped bucket-coordinate range the box
// touches. Boxes extending past the bucketed region (grown query
// boxes) clamp to the border buckets, which only widens the candidate
// set.
func (li *levelIndex) bucketRange(b geom.Box) (lo, hi geom.Index) {
	bl := b.Lo.Sub(li.org)
	bh := b.Hi.Sub(li.org)
	for d := 0; d < geom.Dims; d++ {
		lo[d] = clampInt(floorDivInt(bl[d], li.cell[d]), 0, li.dims[d]-1)
		hi[d] = clampInt(floorDivInt(bh[d], li.cell[d]), 0, li.dims[d]-1)
	}
	return lo, hi
}

// forBuckets invokes fn with the flat bucket id of every bucket the
// box touches.
func (li *levelIndex) forBuckets(b geom.Box, fn func(int)) {
	lo, hi := li.bucketRange(b)
	for z := lo[2]; z <= hi[2]; z++ {
		for y := lo[1]; y <= hi[1]; y++ {
			base := (z*li.dims[1] + y) * li.dims[0]
			for x := lo[0]; x <= hi[0]; x++ {
				fn(base + x)
			}
		}
	}
}

// insert registers a grid in every bucket its box touches.
func (li *levelIndex) insert(g *Grid) {
	li.forBuckets(g.Box, func(b int) { li.buckets[b] = append(li.buckets[b], g) })
	li.count++
}

// remove unregisters a grid (swap-delete; bucket order is
// unspecified).
func (li *levelIndex) remove(g *Grid) {
	li.forBuckets(g.Box, func(b int) {
		bk := li.buckets[b]
		for i, x := range bk {
			if x == g {
				bk[i] = bk[len(bk)-1]
				li.buckets[b] = bk[:len(bk)-1]
				return
			}
		}
	})
	li.count--
}

// query appends every indexed grid whose buckets touch b to out and
// returns it, sorted by level-list position and deduplicated — the
// candidate superset for an overlap scan, in exactly the order the
// full-level scan would visit the survivors.
func (li *levelIndex) query(b geom.Box, out []*Grid) []*Grid {
	lo, hi := li.bucketRange(b)
	for z := lo[2]; z <= hi[2]; z++ {
		for y := lo[1]; y <= hi[1]; y++ {
			base := (z*li.dims[1] + y) * li.dims[0]
			for x := lo[0]; x <= hi[0]; x++ {
				out = append(out, li.buckets[base+x]...)
			}
		}
	}
	slices.SortFunc(out, func(a, b *Grid) int { return a.pos - b.pos })
	if lo != hi {
		out = dedupeSorted(out)
	}
	return out
}

// dedupeSorted compacts adjacent duplicates in a position-sorted
// candidate list (a grid straddling several buckets appears once per
// bucket).
func dedupeSorted(gs []*Grid) []*Grid {
	w := 0
	for i, g := range gs {
		if i > 0 && g == gs[w-1] {
			continue
		}
		gs[w] = g
		w++
	}
	return gs[:w]
}

// build populates the bucket grid from scratch. Large levels build in
// parallel over the pool: an atomic per-bucket count pass, a prefix
// sum, then an atomic-cursor fill into one shared arena (sub-sliced
// with hard caps so later appends copy out instead of clobbering a
// neighbor's slots).
func (li *levelIndex) build(grids []*Grid, pool *solver.Pool) {
	n := len(grids)
	li.count = n
	if n == 0 {
		return
	}
	nb := len(li.buckets)
	if pool != nil && pool.Workers() > 1 && n >= indexParallelMin {
		counts := make([]atomic.Int32, nb)
		pool.ForEach(n, func(i int) {
			li.forBuckets(grids[i].Box, func(b int) { counts[b].Add(1) })
		})
		offs := make([]int32, nb+1)
		for b := 0; b < nb; b++ {
			offs[b+1] = offs[b] + counts[b].Load()
			counts[b].Store(0)
		}
		arena := make([]*Grid, offs[nb])
		pool.ForEach(n, func(i int) {
			li.forBuckets(grids[i].Box, func(b int) {
				arena[offs[b]+counts[b].Add(1)-1] = grids[i]
			})
		})
		for b := 0; b < nb; b++ {
			lo, hi := offs[b], offs[b+1]
			li.buckets[b] = arena[lo:hi:hi]
		}
		return
	}
	for _, g := range grids {
		li.forBuckets(g.Box, func(b int) { li.buckets[b] = append(li.buckets[b], g) })
	}
}

// indexFor returns level l's spatial index, building it on first use
// and rebuilding when the population has outgrown (or far undershot)
// the bucket resolution. Callers must hold planMu.
func (h *Hierarchy) indexFor(l int) *levelIndex {
	if h.index == nil {
		h.index = make([]*levelIndex, h.MaxLevel+1)
	}
	li := h.index[l]
	n := len(h.levels[l])
	if li == nil || n > li.sizedFor*indexRebuildFactor+indexRebuildSlop ||
		n*indexRebuildFactor+indexRebuildSlop < li.sizedFor {
		li = newLevelIndex(h.DomainAt(l), n)
		li.build(h.levels[l], h.pool)
		h.index[l] = li
	}
	return li
}

func floorDivInt(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
