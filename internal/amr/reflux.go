package amr

import (
	"samrdlb/internal/geom"
	"samrdlb/internal/solver"
)

// Conservative flux correction ("refluxing", Berger–Colella): when a
// fine level covers part of a coarse level, the coarse cells adjacent
// to the coarse–fine interface were advanced with the coarse flux
// through that interface, while the covered region was advanced (and
// later restricted) with the more accurate fine fluxes. Conservation
// requires replacing the coarse flux with the time- and area-averaged
// fine flux:
//
//	q_C ← q_C ± ( (1/r³) Σ_{substeps × r² fine faces} F_fine − F_coarse )
//
// with the sign depending on which side of the interface the
// uncovered coarse cell lies. The λ-scaled fluxes of both levels are
// directly comparable because λ = dt/dx is the same at every level
// under factor-r subcycling.

// faceKey identifies a coarse face: the lower face of coarse cell I
// in dimension D.
type faceKey struct {
	D int
	I geom.Index
}

// faceEntry accumulates the two flux estimates for one interface face.
type faceEntry struct {
	// Cell is the uncovered coarse cell the correction applies to.
	Cell geom.Index
	// Sign is +1 when the face is Cell's lower face, −1 for upper.
	Sign float64
	// Coarse is the coarse flux captured during the coarse step.
	Coarse float64
	// FineSum accumulates (1/r³)·fine fluxes over the substeps.
	FineSum float64
	// seenCoarse marks that the coarse flux was recorded.
	seenCoarse bool
}

// FluxRegister carries the coarse–fine interface bookkeeping for one
// fine level over one coarse time step.
type FluxRegister struct {
	h         *Hierarchy
	fineLevel int
	faces     map[faceKey]*faceEntry
}

// NewFluxRegister identifies the coarse–fine interface of the given
// fine level: every coarse face with a fine-covered cell on exactly
// one side (both cells inside the domain).
func NewFluxRegister(h *Hierarchy, fineLevel int) *FluxRegister {
	if fineLevel <= 0 || fineLevel > h.MaxLevel {
		panic("amr.NewFluxRegister: bad fine level")
	}
	fr := &FluxRegister{h: h, fineLevel: fineLevel, faces: make(map[faceKey]*faceEntry)}
	covered := h.Boxes(fineLevel).Coarsen(h.RefFactor)
	dom := h.DomainAt(fineLevel - 1)
	for _, cb := range covered {
		for d := 0; d < geom.Dims; d++ {
			// Low side of the covered box: faces at plane cb.Lo[d];
			// the uncovered neighbour is at i − e_d.
			lowFaces := cb
			lowFaces.Hi[d] = cb.Lo[d]
			lowFaces.ForEach(func(i geom.Index) {
				out := i
				out[d]--
				fr.addFace(d, i, out, +0, covered, dom)
			})
			// High side: faces at plane cb.Hi[d]+1 (lower faces of the
			// cells just above); uncovered neighbour is that cell.
			highFaces := cb
			highFaces.Lo[d] = cb.Hi[d] + 1
			highFaces.Hi[d] = cb.Hi[d] + 1
			highFaces.ForEach(func(i geom.Index) {
				fr.addFace(d, i, i, +0, covered, dom)
			})
		}
	}
	return fr
}

// addFace registers face (d,i) correcting coarse cell `cell` if the
// cell is inside the domain and not itself covered by the fine level.
func (fr *FluxRegister) addFace(d int, i, cell geom.Index, _ float64, covered geom.BoxList, dom geom.Box) {
	if !dom.Contains(cell) || covered.Contains(cell) {
		return
	}
	sign := -1.0 // face is cell's upper face (fine region above... below)
	if cell == i {
		sign = +1.0 // face is cell's lower face
	}
	fr.faces[faceKey{D: d, I: i}] = &faceEntry{Cell: cell, Sign: sign}
}

// NumFaces returns the number of interface faces tracked.
func (fr *FluxRegister) NumFaces() int { return len(fr.faces) }

// AddCoarse captures the coarse fluxes of one coarse grid's step at
// the interface faces that lie within the grid.
func (fr *FluxRegister) AddCoarse(g *Grid, fl *solver.Fluxes) {
	if g.Level != fr.fineLevel-1 {
		panic("amr.FluxRegister.AddCoarse: wrong level")
	}
	for key, e := range fr.faces {
		if !fl.FaceBox(key.D).Contains(key.I) {
			continue
		}
		// A face on a coarse-grid boundary exists in two grids'
		// flux sets (as upper face of one, lower face of the next);
		// both compute the same upwind flux, so first write wins.
		if e.seenCoarse {
			continue
		}
		// The face must be adjacent to this grid's interior.
		lo := key.I
		lo[key.D]--
		if !g.Box.Contains(key.I) && !g.Box.Contains(lo) {
			continue
		}
		e.Coarse = fl.At(key.D, key.I)
		e.seenCoarse = true
	}
}

// AddFine accumulates one fine grid's substep fluxes onto the
// matching coarse faces, pre-scaled by 1/r³ (r² faces per coarse
// face × r substeps).
func (fr *FluxRegister) AddFine(g *Grid, fl *solver.Fluxes) {
	if g.Level != fr.fineLevel {
		panic("amr.FluxRegister.AddFine: wrong level")
	}
	r := fr.h.RefFactor
	inv := 1.0 / float64(r*r*r)
	for key, e := range fr.faces {
		d := key.D
		// Fine faces on this coarse face's plane.
		plane := key.I[d] * r
		fb := fl.FaceBox(d)
		if plane < fb.Lo[d] || plane > fb.Hi[d] {
			continue
		}
		var fineFace geom.Index
		base := key.I.Scale(r)
		for a := 0; a < r; a++ {
			for b := 0; b < r; b++ {
				fineFace = base
				fineFace[d] = plane
				switch d {
				case 0:
					fineFace[1] += a
					fineFace[2] += b
				case 1:
					fineFace[0] += a
					fineFace[2] += b
				default:
					fineFace[0] += a
					fineFace[1] += b
				}
				if fb.Contains(fineFace) {
					// Only faces on the fine grid's own boundary
					// planes count; interior fine faces belong to
					// fine–fine neighbours, not the interface.
					if fineFace[d] == g.Box.Lo[d] || fineFace[d] == g.Box.Hi[d]+1 {
						e.FineSum += inv * fl.At(d, fineFace)
					}
				}
			}
		}
	}
}

// Apply writes the corrections into the coarse patches.
func (fr *FluxRegister) Apply() {
	if !fr.h.WithData {
		return
	}
	coarse := fr.h.Grids(fr.fineLevel - 1)
	for _, e := range fr.faces {
		if !e.seenCoarse {
			continue
		}
		corr := e.Sign * (e.FineSum - e.Coarse)
		for _, g := range coarse {
			if g.Box.Contains(e.Cell) {
				q := g.Patch.Field(solver.FieldQ)
				q[g.Patch.Grown().Offset(e.Cell)] += corr
				break
			}
		}
	}
}
