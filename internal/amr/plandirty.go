package amr

import (
	"samrdlb/internal/geom"
)

// Incremental plan maintenance. A structural mutation used to bump a
// global generation counter that discarded every level's cached plans,
// so any regrid or migration paid a full O(n²) rebuild of every plan
// it touched. Mutations instead mark per-level dirty state:
//
//   - AddGrid/RemoveGrid of box b at level l dirties plan level l in
//     the region b.Grow(NGhost) — exactly the destinations whose grown
//     box can see b — and plan level l+1 in b.Refine(r).Grow(NGhost),
//     the fine destinations whose prolongation sources include b.
//     Plans at l−1 and below never reference level-l structure (a
//     level's plans involve grid levels l and l−1 only), so nothing
//     coarser is touched.
//   - A parent re-link dirties the child's own box at its level (only
//     the child's prolong attribution and restrict entries change).
//   - SortLevel(l) reorders the level list, which is the iteration
//     order of every plan that walks level l: plans at l (destinations,
//     siblings, restrict order) and l+1 (prolong source order) go
//     fully dirty.
//   - ClearLevelsFrom(l) removes whole levels: plans and indexes for
//     l..MaxLevel go fully dirty wholesale, skipping per-grid marking.
//   - Ownership changes dirty nothing: cached plans are built with
//     dropLocal=false and carry no owner-derived state.
//
// Serving a plan patches rather than rebuilds: destinations whose box
// touches no dirty region keep their previous entries (the entry
// content is a pure function of structure the dirty rules prove
// unchanged); only destinations in dirty regions are re-planned via
// the spatial index. Past maxDirtyRegions accumulated regions the
// level collapses to dirtyAll — a regrid rebuilds wholesale, a
// migration's split patches a handful of destinations.
const maxDirtyRegions = 32

// planEntry returns level l's stable cache entry, creating it on first
// use. Entries are patched in place and never replaced, so concurrent
// phases can never observe a half-initialised swap. Callers hold
// planMu.
func (h *Hierarchy) planEntry(l int) *planCache {
	c := h.plans[l]
	if c == nil {
		c = &planCache{dirtyAll: true}
		h.plans[l] = c
	}
	return c
}

// markDirty adds a dirty region to plan level l (no-op outside the
// level range; collapses to dirtyAll past the region cap). Callers
// hold planMu.
func (h *Hierarchy) markDirty(l int, region geom.Box) {
	if l < 0 || l > h.MaxLevel {
		return
	}
	c := h.planEntry(l)
	if c.dirtyAll {
		return
	}
	if len(c.dirty) >= maxDirtyRegions {
		c.dirtyAll = true
		c.dirty = c.dirty[:0]
		return
	}
	c.dirty = append(c.dirty, region)
}

// markMutation applies the dirty rules for a grid of box b appearing
// at or disappearing from level l. Callers hold planMu.
func (h *Hierarchy) markMutation(l int, b geom.Box) {
	h.markDirty(l, b.Grow(h.NGhost))
	if l+1 <= h.MaxLevel {
		h.markDirty(l+1, b.Refine(h.RefFactor).Grow(h.NGhost))
	}
}

// noteAdded keeps the spatial index and dirty state in sync with
// AddGrid.
func (h *Hierarchy) noteAdded(g *Grid) {
	h.planMu.Lock()
	if h.index != nil {
		if li := h.index[g.Level]; li != nil {
			li.insert(g)
		}
	}
	h.markMutation(g.Level, g.Box)
	h.planMu.Unlock()
}

// noteRemoved keeps the spatial index and dirty state in sync with
// RemoveGrid.
func (h *Hierarchy) noteRemoved(g *Grid) {
	h.planMu.Lock()
	if h.index != nil {
		if li := h.index[g.Level]; li != nil {
			li.remove(g)
		}
	}
	h.markMutation(g.Level, g.Box)
	h.planMu.Unlock()
}

// noteParentChanged dirties the re-linked child's own plan entries.
func (h *Hierarchy) noteParentChanged(g *Grid) {
	h.planMu.Lock()
	h.markDirty(g.Level, g.Box)
	h.planMu.Unlock()
}

// noteSorted records a level-list reorder at level l.
func (h *Hierarchy) noteSorted(l int) {
	h.planMu.Lock()
	h.planEntry(l).markAll()
	if l+1 <= h.MaxLevel {
		h.planEntry(l + 1).markAll()
	}
	h.planMu.Unlock()
}

// noteCleared records the wholesale removal of levels l..MaxLevel,
// dropping their indexes and fully dirtying their plans in one stroke.
func (h *Hierarchy) noteCleared(l int) {
	h.planMu.Lock()
	for lv := l; lv <= h.MaxLevel; lv++ {
		h.planEntry(lv).markAll()
		if h.index != nil {
			h.index[lv] = nil
		}
	}
	h.planMu.Unlock()
}

func (c *planCache) markAll() {
	c.dirtyAll = true
	c.dirty = c.dirty[:0]
}

// boxTouchesAny reports whether b intersects any dirty region.
func boxTouchesAny(b geom.Box, regions geom.BoxList) bool {
	for _, r := range regions {
		if b.Intersects(r) {
			return true
		}
	}
	return false
}

// refreshPlans brings level l's cache entry up to date and returns it.
// The requested kinds are (re)built; when the level is dirty, every
// already-built kind refreshes too — all under this one critical
// section, so a caller reading several plan kinds from the entry
// always sees them coherent with each other and with the current
// structure. Callers hold planMu.
func (h *Hierarchy) refreshPlans(l int, needMsg, needFill, needRestrict bool) *planCache {
	c := h.planEntry(l)
	dirty := c.dirtyAll || len(c.dirty) > 0
	if dirty {
		needMsg = needMsg || c.msgBuilt
		needFill = needFill || c.fillBuilt
		needRestrict = needRestrict || c.restrictBuilt
	}
	if needMsg && (dirty || !c.msgBuilt) {
		h.patchMsgPlan(l, c)
		c.msgBuilt = true
	}
	if needFill && (dirty || !c.fillBuilt) {
		h.patchFillPlan(l, c)
		c.fillBuilt = true
	}
	if needRestrict && (dirty || !c.restrictBuilt) {
		c.restrictData = h.buildRestrictDataPlan(l)
		c.restrictBuilt = true
	}
	c.dirtyAll = false
	c.dirty = c.dirty[:0]
	if h.planCheck {
		h.verifyPlans(l, c)
	}
	return c
}

// patchMsgPlan rebuilds or patches the level's message plans (ghost +
// restrict). Destinations outside every dirty region reuse their
// previous message segment; the rest are re-planned through the
// spatial index. The restrict plan is O(n) linear and rebuilds
// outright. Callers hold planMu.
func (h *Hierarchy) patchMsgPlan(l int, c *planCache) {
	grids := h.Grids(l)
	full := !c.msgBuilt || c.dirtyAll
	var oldIdx map[GridID]int32
	oldGhost, oldOff := c.ghost, c.ghostOff
	if !full {
		oldIdx = make(map[GridID]int32, len(c.ghostIDs))
		for i, id := range c.ghostIDs {
			oldIdx[id] = int32(i)
		}
	}
	li := h.indexFor(l)
	dom := h.DomainAt(l)
	bytesPerCell := int64(len(h.Fields)) * 8
	scr := getPlanScratch()
	ghost := make([]Message, 0, len(oldGhost))
	off := make([]int32, len(grids)+1)
	ids := make([]GridID, len(grids))
	for i, g := range grids {
		ids[i] = g.ID
		if !full {
			if j, ok := oldIdx[g.ID]; ok && !boxTouchesAny(g.Box, c.dirty) {
				ghost = append(ghost, oldGhost[oldOff[j]:oldOff[j+1]]...)
				off[i+1] = int32(len(ghost))
				continue
			}
		}
		ghost = h.appendGhostDest(ghost, g, l, li, dom, bytesPerCell, false, scr)
		off[i+1] = int32(len(ghost))
	}
	putPlanScratch(scr)
	c.ghost, c.ghostOff, c.ghostIDs = ghost, off, ids
	c.restrict = h.RestrictPlan(l, false)
}

// patchFillPlan rebuilds or patches the level's data-motion fill plan,
// reusing the per-destination work lists of untouched grids. Callers
// hold planMu.
func (h *Hierarchy) patchFillPlan(l int, c *planCache) {
	grids := h.Grids(l)
	full := !c.fillBuilt || c.dirtyAll
	var oldIdx map[GridID]int
	if !full {
		oldIdx = make(map[GridID]int, len(c.fill))
		for i := range c.fill {
			oldIdx[c.fill[i].g.ID] = i
		}
	}
	li := h.indexFor(l)
	var cli *levelIndex
	if l > 0 {
		cli = h.indexFor(l - 1)
	}
	dom := h.DomainAt(l)
	scr := getPlanScratch()
	plan := make([]fillDest, 0, len(grids))
	for _, g := range grids {
		if !full {
			if j, ok := oldIdx[g.ID]; ok && !boxTouchesAny(g.Box, c.dirty) {
				plan = append(plan, c.fill[j])
				continue
			}
		}
		plan = append(plan, h.buildFillDest(g, l, li, cli, dom, scr))
	}
	putPlanScratch(scr)
	c.fill = plan
}
