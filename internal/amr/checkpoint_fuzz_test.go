package amr

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"samrdlb/internal/geom"
)

// encodeStream builds a checkpoint stream from raw header/grid records
// so tests can craft corrupt inputs through the real encoding path.
func encodeStream(t testing.TB, hdr checkpointHeader, grids ...checkpointGrid) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(hdr); err != nil {
		t.Fatal(err)
	}
	for _, g := range grids {
		if err := enc.Encode(g); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func goodHeader(numGrids int) checkpointHeader {
	return checkpointHeader{
		Domain: geom.UnitCube(8), RefFactor: 2, MaxLevel: 1, NGhost: 1,
		Fields: []string{"q"}, WithData: false, NumGrids: numGrids,
	}
}

func TestLoadRejectsCorruptHeaders(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*checkpointHeader)
		want   string
	}{
		{"ref-too-small", func(h *checkpointHeader) { h.RefFactor = 1 }, "refinement factor"},
		{"ref-too-big", func(h *checkpointHeader) { h.RefFactor = 99 }, "refinement factor"},
		{"negative-max-level", func(h *checkpointHeader) { h.MaxLevel = -1 }, "max level"},
		{"huge-max-level", func(h *checkpointHeader) { h.MaxLevel = 99 }, "max level"},
		{"huge-nghost", func(h *checkpointHeader) { h.NGhost = 99 }, "ghost width"},
		{"negative-grids", func(h *checkpointHeader) { h.NumGrids = -1 }, "grid count"},
		{"absurd-grids", func(h *checkpointHeader) { h.NumGrids = 1 << 30 }, "grid count"},
		{"empty-domain", func(h *checkpointHeader) {
			h.Domain = geom.Box{Lo: geom.Index{2, 2, 2}, Hi: geom.Index{1, 1, 1}}
		}, "domain"},
		{"empty-field", func(h *checkpointHeader) { h.Fields = []string{""} }, "field name"},
		{"dup-field", func(h *checkpointHeader) { h.Fields = []string{"q", "q"} }, "duplicate field"},
		{"overflow-domain", func(h *checkpointHeader) {
			h.Domain = geom.Box{Lo: geom.Index{0, 0, 0}, Hi: geom.Index{1 << 29, 7, 7}}
			h.MaxLevel = 32
			h.RefFactor = 16
		}, "extent"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hdr := goodHeader(0)
			tc.mutate(&hdr)
			_, err := Load(bytes.NewReader(encodeStream(t, hdr)))
			if err == nil {
				t.Fatal("corrupt header must not load")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLoadRejectsCorruptGrids(t *testing.T) {
	root := checkpointGrid{ID: 0, Level: 0, Box: geom.UnitCube(8), Owner: 0, Parent: NoGrid}
	cases := []struct {
		name  string
		grids []checkpointGrid
		want  string
	}{
		{"level-out-of-range", []checkpointGrid{{ID: 0, Level: 5, Box: geom.UnitCube(8), Parent: 0}}, "level"},
		{"empty-box", []checkpointGrid{{ID: 0, Level: 0,
			Box: geom.Box{Lo: geom.Index{2, 2, 2}, Hi: geom.Index{1, 1, 1}}, Parent: NoGrid}}, "box"},
		{"escaping-box", []checkpointGrid{{ID: 0, Level: 0,
			Box: geom.BoxFromShape(geom.Index{4, 0, 0}, geom.Index{8, 8, 8}), Parent: NoGrid}}, "escapes"},
		{"negative-owner", []checkpointGrid{{ID: 0, Level: 0, Box: geom.UnitCube(8), Owner: -3, Parent: NoGrid}}, "owner"},
		{"level0-with-parent", []checkpointGrid{{ID: 0, Level: 0, Box: geom.UnitCube(8), Parent: 7}}, "parent"},
		{"dangling-parent", []checkpointGrid{root,
			{ID: 1, Level: 1, Box: geom.BoxFromShape(geom.Index{0, 0, 0}, geom.Index{4, 4, 4}), Parent: 99}}, "parent"},
		{"duplicate-id", []checkpointGrid{root,
			{ID: 0, Level: 0, Box: geom.UnitCube(8), Parent: NoGrid}}, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hdr := goodHeader(len(tc.grids))
			_, err := Load(bytes.NewReader(encodeStream(t, hdr, tc.grids...)))
			if err == nil {
				t.Fatal("corrupt grid must not load")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLoadRejectsMisshapenData(t *testing.T) {
	hdr := goodHeader(1)
	hdr.WithData = true
	grid := checkpointGrid{ID: 0, Level: 0, Box: geom.UnitCube(8), Parent: NoGrid,
		Data: [][]float64{make([]float64, 10)}} // needs 10^3 with ghosts
	if _, err := Load(bytes.NewReader(encodeStream(t, hdr, grid))); err == nil ||
		!strings.Contains(err.Error(), "values") {
		t.Errorf("mis-shaped field data must fail descriptively, got %v", err)
	}

	hdr2 := goodHeader(1)
	hdr2.WithData = true
	grid2 := checkpointGrid{ID: 0, Level: 0, Box: geom.UnitCube(8), Parent: NoGrid,
		Data: [][]float64{make([]float64, 1000), make([]float64, 1000)}}
	if _, err := Load(bytes.NewReader(encodeStream(t, hdr2, grid2))); err == nil ||
		!strings.Contains(err.Error(), "fields") {
		t.Errorf("field-count mismatch must fail descriptively, got %v", err)
	}

	hdr3 := goodHeader(1) // plan-only
	grid3 := checkpointGrid{ID: 0, Level: 0, Box: geom.UnitCube(8), Parent: NoGrid,
		Data: [][]float64{make([]float64, 1000)}}
	if _, err := Load(bytes.NewReader(encodeStream(t, hdr3, grid3))); err == nil ||
		!strings.Contains(err.Error(), "plan-only") {
		t.Errorf("data in a plan-only checkpoint must fail descriptively, got %v", err)
	}
}

// TestLoadZeroLength: the degenerate corruption — an empty file —
// errors cleanly.
func TestLoadZeroLength(t *testing.T) {
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("zero-length stream must error")
	}
}

// TestLoadFlippedByteMatrix sweeps single-byte flips across a real
// Save stream — hitting the gob type section, the header, the grid
// records, and the field data. Load must never panic; a flip that
// happens to survive validation (e.g. inside an unconstrained float)
// must still yield a hierarchy that re-saves cleanly.
func TestLoadFlippedByteMatrix(t *testing.T) {
	h := buildDataHierarchy(t, 4)
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	stride := len(full) / 2048
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(full); i += stride {
		data := append([]byte(nil), full...)
		data[i] ^= 0xff
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("flip at byte %d/%d panicked: %v", i, len(full), r)
				}
			}()
			h2, err := Load(bytes.NewReader(data))
			if err != nil {
				return
			}
			var rt bytes.Buffer
			if err := h2.Save(&rt); err != nil {
				t.Errorf("flip at byte %d accepted but cannot re-save: %v", i, err)
			}
		}()
	}
}

func TestLoadTruncatedStream(t *testing.T) {
	h := buildDataHierarchy(t, 4)
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, n := range []int{1, len(full) / 4, len(full) / 2, len(full) - 1} {
		if _, err := Load(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("truncation at %d/%d bytes must fail", n, len(full))
		}
	}
}

// FuzzLoad feeds arbitrary streams to Load: it must reject corrupt
// input with an error — never panic — and anything it accepts must
// save and re-load cleanly.
func FuzzLoad(f *testing.F) {
	h := New(geom.UnitCube(8), 2, 1, 1, true, "q")
	root := h.AddGrid(0, geom.UnitCube(8), 0, NoGrid)
	root.Patch.FillFunc("q", func(i geom.Index) float64 { return float64(i[0] + i[1]) })
	h.AddGrid(1, geom.BoxFromShape(geom.Index{4, 4, 4}, geom.Index{6, 6, 6}), 1, root.ID)
	var withData bytes.Buffer
	if err := h.Save(&withData); err != nil {
		f.Fatal(err)
	}
	f.Add(withData.Bytes())

	p := New(geom.UnitCube(8), 2, 1, 1, false, "q")
	g := p.AddGrid(0, geom.UnitCube(8), 0, NoGrid)
	p.AddGrid(1, geom.BoxFromShape(geom.Index{2, 2, 2}, geom.Index{4, 4, 4}), 1, g.ID)
	var planOnly bytes.Buffer
	if err := p.Save(&planOnly); err != nil {
		f.Fatal(err)
	}
	f.Add(planOnly.Bytes())
	f.Add([]byte("not a checkpoint"))
	f.Add([]byte{})

	// Corruption-matrix seeds: truncations, byte flips in the header
	// and data regions, and a duplicate-grid-ID stream — the shapes the
	// durable store's generation fallback must survive.
	wd := withData.Bytes()
	flip := func(src []byte, i int) []byte {
		d := append([]byte(nil), src...)
		d[i] ^= 0xff
		return d
	}
	f.Add(wd[:len(wd)/4])
	f.Add(wd[:len(wd)-1])
	f.Add(flip(wd, 3))
	f.Add(flip(wd, len(wd)/2))
	f.Add(flip(wd, len(wd)-4))
	dupRoot := checkpointGrid{ID: 0, Level: 0, Box: geom.UnitCube(8), Parent: NoGrid}
	f.Add(encodeStream(f, goodHeader(2), dupRoot, dupRoot))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := h.Save(&buf); err != nil {
			t.Fatalf("accepted checkpoint fails to re-save: %v", err)
		}
		if _, err := Load(&buf); err != nil {
			t.Fatalf("accepted checkpoint fails to re-load: %v", err)
		}
	})
}
