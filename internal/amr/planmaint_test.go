package amr

import (
	"math/rand"
	"sync"
	"testing"

	"samrdlb/internal/geom"
)

// randomHierarchy builds a 2–3 level hierarchy with a random level-0
// tiling and random refined children, for plan-equivalence trials.
func randomHierarchy(rng *rand.Rand) *Hierarchy {
	dom := geom.UnitCube(32)
	h := New(dom, 2, 2, 1, false, "q")
	for _, b := range (geom.BoxList{dom}).SplitEvenly(4 + rng.Intn(16)) {
		h.AddGrid(0, b, rng.Intn(4), NoGrid)
	}
	for l := 0; l < h.MaxLevel; l++ {
		for _, p := range h.Grids(l) {
			if rng.Intn(10) < 6 {
				sub := randomBoxIn(rng, p.Box)
				h.AddGrid(l+1, sub.Refine(h.RefFactor), rng.Intn(4), p.ID)
			}
		}
	}
	return h
}

// servePlans pulls every cached plan kind at every level, so the
// -plancheck oracle (when armed) verifies each against its scan
// baseline.
func servePlans(h *Hierarchy) {
	for l := 0; l <= h.MaxLevel; l++ {
		h.GhostPlanCached(l)
		h.RestrictPlanCached(l)
		h.fillPlan(l)
		h.restrictDataPlan(l)
	}
}

func msgsEqual(a, b []Message) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// childless returns the grids that can be removed outright.
func childless(h *Hierarchy) []*Grid {
	var out []*Grid
	for l := 0; l <= h.MaxLevel; l++ {
		for _, g := range h.Grids(l) {
			if len(h.Children(g)) == 0 {
				out = append(out, g)
			}
		}
	}
	return out
}

// mutate applies one random structural or ownership mutation.
func mutate(h *Hierarchy, rng *rand.Rand) {
	switch rng.Intn(7) {
	case 0: // add a level-0 grid
		h.AddGrid(0, randomBoxIn(rng, h.Domain), rng.Intn(4), NoGrid)
	case 1: // add a child under a random parent
		l := rng.Intn(h.MaxLevel)
		if gs := h.Grids(l); len(gs) > 0 {
			p := gs[rng.Intn(len(gs))]
			h.AddGrid(l+1, randomBoxIn(rng, p.Box).Refine(h.RefFactor), rng.Intn(4), p.ID)
		}
	case 2: // remove a childless grid
		if cs := childless(h); len(cs) > 0 {
			h.RemoveGrid(cs[rng.Intn(len(cs))].ID)
		}
	case 3: // split a grid (migration-style mutation)
		l := rng.Intn(h.MaxLevel + 1)
		if gs := h.Grids(l); len(gs) > 0 {
			g := gs[rng.Intn(len(gs))]
			d := rng.Intn(geom.Dims)
			if g.Box.Shape()[d] >= 2 {
				h.SplitGrid(g, d, g.Box.Lo[d]+1+rng.Intn(g.Box.Shape()[d]-1))
			}
		}
	case 4: // ownership churn (must not invalidate anything)
		l := rng.Intn(h.MaxLevel + 1)
		if gs := h.Grids(l); len(gs) > 0 {
			h.SetOwner(gs[rng.Intn(len(gs))], rng.Intn(4))
		}
	case 5: // deterministic reorder
		h.SortLevel(rng.Intn(h.MaxLevel + 1))
	case 6: // regrid-style wholesale clear and rebuild
		if gs := h.Grids(h.MaxLevel - 1); len(gs) > 0 {
			h.ClearLevelsFrom(h.MaxLevel)
			for _, p := range gs {
				if rng.Intn(2) == 0 {
					h.AddGrid(h.MaxLevel, randomBoxIn(rng, p.Box).Refine(h.RefFactor),
						rng.Intn(4), p.ID)
				}
			}
		}
	}
}

// TestPlanPatchingMatchesScan is the amr-level equivalence property:
// over randomized hierarchies and mutation histories, incrementally
// patched cached plans and indexed scratch plans must stay bitwise
// equal to the O(n²) scan baselines — the -plancheck oracle panics on
// the first divergence, and the scratch builders are compared
// directly for both dropLocal variants.
func TestPlanPatchingMatchesScan(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		h := randomHierarchy(rng)
		h.SetPlanCheck(true)
		servePlans(h) // from-scratch builds verified
		for round := 0; round < 4; round++ {
			for i, n := 0, 1+rng.Intn(6); i < n; i++ {
				mutate(h, rng)
			}
			servePlans(h) // patched rebuilds verified
			for l := 0; l <= h.MaxLevel; l++ {
				for _, dl := range []bool{false, true} {
					if got, want := h.GhostPlan(l, dl), h.GhostPlanScan(l, dl); !msgsEqual(got, want) {
						t.Fatalf("trial %d round %d: GhostPlan(%d, %v) diverged from scan:\n got %v\nwant %v",
							trial, round, l, dl, got, want)
					}
				}
			}
		}
	}
}

// TestRestrictPlanCachedMutationBetweenPhases is the regression test
// for the plan-cache race: RestrictPlanCached used to run as two
// critical sections — a GhostPlanCached call, then a re-lock to read
// the restrict plan — so a structural mutation plus a concurrent
// plan build landing in the window left it returning a nil (or
// stale) restrict plan. Both plans are now built under one critical
// section on a stable cache entry; replaying the old interleaving
// must yield a fresh, coherent restrict plan.
func TestRestrictPlanCachedMutationBetweenPhases(t *testing.T) {
	h := New(geom.UnitCube(8), 2, 1, 1, false, "q")
	p := h.AddGrid(0, geom.UnitCube(8), 0, NoGrid)
	h.AddGrid(1, geom.BoxFromShape(geom.Index{0, 0, 0}, geom.Index{8, 8, 8}), 1, p.ID)

	_ = h.GhostPlanCached(1) // phase one of the old two-phase protocol
	// A mutation lands in the window between the phases...
	h.AddGrid(1, geom.BoxFromShape(geom.Index{8, 8, 8}, geom.Index{8, 8, 8}), 0, p.ID)
	// ...and so does another phase's plan build (the old code replaced
	// the cache entry here, wiping the restrict plan).
	_ = h.fillPlan(1)

	// The old phase-two read: the raw cache entry must already hold a
	// restrict plan coherent with the post-mutation structure.
	h.planMu.Lock()
	got := h.plans[1].restrict
	h.planMu.Unlock()
	want := h.RestrictPlan(1, false)
	if got == nil {
		t.Fatal("cache entry lost its restrict plan across the mutation window")
	}
	if !msgsEqual(got, want) {
		t.Fatalf("stale restrict plan survived the mutation: got %v, want %v", got, want)
	}
	if !msgsEqual(h.RestrictPlanCached(1), want) {
		t.Fatal("RestrictPlanCached diverged from a fresh RestrictPlan")
	}
}

// TestCachedPlansConcurrentReaders hammers the cached plan getters
// from concurrent goroutines (the mpx-rank access pattern) — run
// under -race this pins the single-critical-section design.
func TestCachedPlansConcurrentReaders(t *testing.T) {
	h := randomHierarchy(rand.New(rand.NewSource(99)))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for l := 0; l <= h.MaxLevel; l++ {
					g := h.GhostPlanCached(l)
					r := h.RestrictPlanCached(l)
					_, _ = g, r
					_ = h.fillPlan(l)
					_ = h.restrictDataPlan(l)
				}
			}
		}()
	}
	wg.Wait()
}

// TestPlanCheckOracleDetectsCorruption pins that the -plancheck
// oracle actually fires: corrupt one cached message and the next
// serve must panic.
func TestPlanCheckOracleDetectsCorruption(t *testing.T) {
	h, _, _ := twoSlabHierarchy(t, false)
	if plan := h.GhostPlanCached(0); len(plan) == 0 {
		t.Fatal("expected a non-empty ghost plan")
	}
	h.planMu.Lock()
	h.plans[0].ghost[0].Bytes++
	h.planMu.Unlock()
	h.SetPlanCheck(true)
	defer func() {
		if recover() == nil {
			t.Fatal("plancheck served a corrupted plan without panicking")
		}
	}()
	h.GhostPlanCached(0)
}

// TestGhostPlanScratchAllocs pins the pooled-scratch property: a
// warmed indexed GhostPlan allocates only for the result slice, not
// per grid (the scan path allocated several box lists per grid).
func TestGhostPlanScratchAllocs(t *testing.T) {
	dom := geom.UnitCube(64)
	h := New(dom, 2, 0, 1, false, "q")
	for _, b := range (geom.BoxList{dom}).SplitEvenly(512) {
		h.AddGrid(0, b, 0, NoGrid)
	}
	h.GhostPlan(0, false) // warm the index and the scratch pool
	allocs := testing.AllocsPerRun(10, func() { h.GhostPlan(0, false) })
	if allocs > 64 {
		t.Fatalf("GhostPlan over 512 grids allocated %.0f times; want ≤ 64 (result growth only)", allocs)
	}
}
