// Package amr implements the structured AMR grid hierarchy of
// Berger–Colella SAMR as used by ENZO: a tree of rectangular grids
// over refinement levels, with per-level subcycled time steps,
// regridding driven by flagged cells, ghost-zone exchange between
// sibling grids and between parents and children, and restriction of
// fine solutions onto their parents.
//
// The hierarchy also carries the distribution state the DLB schemes
// manipulate: every grid has an owning processor, and the exchange
// plan distinguishes local (same-group) from remote (cross-group)
// messages.
package amr

import (
	"fmt"
	"sort"
	"sync"

	"samrdlb/internal/cluster"
	"samrdlb/internal/geom"
	"samrdlb/internal/grid"
	"samrdlb/internal/solver"
)

// GridID identifies a grid uniquely within a hierarchy for its whole
// lifetime.
type GridID int

// NoGrid is the parent of level-0 grids.
const NoGrid GridID = -1

// Grid is one rectangular patch of the hierarchy.
type Grid struct {
	ID    GridID
	Level int
	// Box is the grid's interior region in its level's index space.
	Box geom.Box
	// Owner is the processor that holds and advances the grid.
	Owner int
	// Parent is the grid one level coarser whose region contains this
	// grid (NoGrid at level 0).
	Parent GridID
	// Patch holds the field data (nil in plan-only hierarchies).
	Patch *grid.Patch

	// pos is the grid's current position in its level list, maintained
	// by the hierarchy. The spatial index sorts query results by it so
	// plan builders visit candidates in level-list order — grid IDs
	// cannot serve here because SortLevel reorders levels by box
	// position, not ID.
	pos int
}

// NumCells returns the grid's interior cell count.
func (g *Grid) NumCells() int64 { return g.Box.NumCells() }

// Bytes returns the migration size of the grid: interior cells times
// fields times 8 bytes (ghosts are rebuilt at the destination).
func (g *Grid) Bytes(numFields int) int64 {
	return g.Box.NumCells() * int64(numFields) * 8
}

// Listener observes the hierarchy's structural and ownership
// mutations, one call per grid per event. The load ledger subscribes
// to maintain its aggregates in O(changes) instead of re-walking the
// tree; tests subscribe to audit event completeness.
//
// Contract: GridAdded fires after the grid is fully inserted;
// GridRemoved fires just after the grid left the hierarchy, while its
// ancestor chain is still present (children are always removed before
// their parents) — the removed grid's own fields stay readable on g.
// OwnerChanged and ParentChanged fire after the field has been
// updated, passing the previous value.
type Listener interface {
	GridAdded(h *Hierarchy, g *Grid)
	GridRemoved(h *Hierarchy, g *Grid)
	OwnerChanged(h *Hierarchy, g *Grid, oldOwner int)
	ParentChanged(h *Hierarchy, g *Grid, oldParent GridID)
}

// Hierarchy is the SAMR grid tree.
type Hierarchy struct {
	// Domain is the level-0 problem domain.
	Domain geom.Box
	// RefFactor is the refinement factor between adjacent levels.
	RefFactor int
	// MaxLevel is the deepest allowed level (0 = unigrid).
	MaxLevel int
	// NGhost is the ghost width of every patch.
	NGhost int
	// Fields are the field names allocated on every patch.
	Fields []string
	// WithData controls whether grids carry real patches. Plan-only
	// hierarchies (WithData false) are used by tests and by fast
	// experiment sweeps where only box/owner geometry matters.
	WithData bool

	levels [][]*Grid
	byID   map[GridID]*Grid
	nextID GridID

	// plans holds the per-level cache entries, kept current by dirty
	// tracking: structural mutations mark the affected levels/regions
	// (see plandirty.go) and serving patches the entries in place.
	// Grid ownership changes do not affect box overlap structure and
	// mark nothing.
	plans map[int]*planCache
	// index holds the per-level spatial indexes the plan builders
	// query, built lazily and maintained by the mutation hooks.
	index []*levelIndex
	// planMu guards the plan cache, the spatial indexes and the dirty
	// state: mpx ranks build plans lazily from concurrent goroutines.
	// Execution reads the immutable plan after the lock is released.
	planMu sync.Mutex

	// pool, when set, executes the cached fill/restrict/regrid data
	// motion in parallel (safe: the plans partition writes by
	// destination patch).
	pool *solver.Pool
	// dataCheck re-runs every planned fill/restrict against the
	// scan-based baseline and panics on bitwise divergence (the
	// -datacheck oracle).
	dataCheck bool
	// planCheck re-derives every served plan with the O(n²) scan
	// planners and panics on bitwise divergence (the -plancheck
	// oracle).
	planCheck bool

	listener Listener
}

// SetPool attaches a worker pool for parallel execution of the data
// motion plans (nil reverts to sequential execution).
func (h *Hierarchy) SetPool(p *solver.Pool) { h.pool = p }

// SetDataCheck toggles the planned-vs-scan byte-identity oracle.
// Every FillGhostsData and RestrictData then does the data motion
// twice and compares — for tests and -datacheck runs only.
func (h *Hierarchy) SetDataCheck(on bool) { h.dataCheck = on }

// SetPlanCheck toggles the indexed-vs-scan plan oracle. Every served
// plan is then re-derived with the retained O(n²) scan planners and
// compared bitwise — for tests and -plancheck runs only.
func (h *Hierarchy) SetPlanCheck(on bool) { h.planCheck = on }

// SetListener subscribes l to the hierarchy's mutation events (nil
// unsubscribes). Only one listener is supported; the engine installs
// the load ledger.
func (h *Hierarchy) SetListener(l Listener) { h.listener = l }

// SetOwner reassigns a grid to a processor, notifying the listener.
// All ownership changes (migration, redistribution, repartitioning)
// must go through here so incremental load bookkeeping stays exact.
func (h *Hierarchy) SetOwner(g *Grid, owner int) {
	if g.Owner == owner {
		return
	}
	old := g.Owner
	g.Owner = owner
	if h.listener != nil {
		h.listener.OwnerChanged(h, g, old)
	}
}

// setParent re-links a grid under a new parent (NoGrid detaches),
// notifying the listener so subtree aggregates can follow the move.
func (h *Hierarchy) setParent(g *Grid, parent GridID) {
	if g.Parent == parent {
		return
	}
	old := g.Parent
	g.Parent = parent
	h.noteParentChanged(g)
	if h.listener != nil {
		h.listener.ParentChanged(h, g, old)
	}
}

// New creates an empty hierarchy.
func New(domain geom.Box, refFactor, maxLevel, nghost int, withData bool, fields ...string) *Hierarchy {
	if domain.Empty() {
		panic("amr.New: empty domain")
	}
	if refFactor < 2 {
		panic("amr.New: refinement factor must be >= 2")
	}
	if maxLevel < 0 {
		panic("amr.New: negative max level")
	}
	h := &Hierarchy{
		Domain:    domain,
		RefFactor: refFactor,
		MaxLevel:  maxLevel,
		NGhost:    nghost,
		Fields:    append([]string(nil), fields...),
		WithData:  withData,
		levels:    make([][]*Grid, maxLevel+1),
		byID:      make(map[GridID]*Grid),
		plans:     make(map[int]*planCache),
	}
	return h
}

// DomainAt returns the problem domain in level-l index space.
func (h *Hierarchy) DomainAt(l int) geom.Box {
	b := h.Domain
	for i := 0; i < l; i++ {
		b = b.Refine(h.RefFactor)
	}
	return b
}

// NumLevels returns the number of levels that currently hold grids.
func (h *Hierarchy) NumLevels() int {
	n := 0
	for l, gs := range h.levels {
		if len(gs) > 0 {
			n = l + 1
		}
	}
	return n
}

// Grids returns the grids at level l in a stable order (ascending ID).
func (h *Hierarchy) Grids(l int) []*Grid {
	if l < 0 || l >= len(h.levels) {
		return nil
	}
	return h.levels[l]
}

// Grid returns the grid with the given ID, or nil.
func (h *Hierarchy) Grid(id GridID) *Grid {
	return h.byID[id]
}

// NextID returns the ID the next AddGrid will assign. Grid IDs break
// ties in DLB decisions, so resumable checkpoints must preserve the
// counter — Load alone only advances it past the highest live ID,
// which loses the gap left by removed grids.
func (h *Hierarchy) NextID() GridID { return h.nextID }

// SetNextID raises the ID counter to n (restore only; values at or
// below the current counter are ignored so IDs can never collide).
func (h *Hierarchy) SetNextID(n GridID) {
	if n > h.nextID {
		h.nextID = n
	}
}

// AddGrid creates a grid at the given level. The box must be non-empty
// and within the level's domain. The patch is allocated (zeroed) when
// the hierarchy carries data.
func (h *Hierarchy) AddGrid(level int, box geom.Box, owner int, parent GridID) *Grid {
	if level < 0 || level > h.MaxLevel {
		panic(fmt.Sprintf("amr.AddGrid: level %d out of range", level))
	}
	if box.Empty() {
		panic("amr.AddGrid: empty box")
	}
	if !h.DomainAt(level).ContainsBox(box) {
		panic(fmt.Sprintf("amr.AddGrid: box %v escapes level-%d domain %v", box, level, h.DomainAt(level)))
	}
	if level > 0 && h.byID[parent] == nil {
		panic("amr.AddGrid: fine grid needs a parent")
	}
	g := &Grid{ID: h.nextID, Level: level, Box: box, Owner: owner, Parent: parent}
	h.nextID++
	if h.WithData {
		g.Patch = grid.NewPatch(box, level, h.NGhost, h.Fields...)
	}
	g.pos = len(h.levels[level])
	h.levels[level] = append(h.levels[level], g)
	h.byID[g.ID] = g
	h.noteAdded(g)
	if h.listener != nil {
		h.listener.GridAdded(h, g)
	}
	return g
}

// RemoveGrid deletes a grid (its children must already be gone).
func (h *Hierarchy) RemoveGrid(id GridID) {
	g := h.byID[id]
	if g == nil {
		return
	}
	for _, c := range h.Grids(g.Level + 1) {
		if c.Parent == id {
			panic(fmt.Sprintf("amr.RemoveGrid: grid %d still has child %d", id, c.ID))
		}
	}
	lv := h.levels[g.Level]
	for i, x := range lv {
		if x.ID == id {
			lv = append(lv[:i], lv[i+1:]...)
			h.levels[g.Level] = lv
			for j := i; j < len(lv); j++ {
				lv[j].pos = j
			}
			break
		}
	}
	delete(h.byID, id)
	h.noteRemoved(g)
	if h.listener != nil {
		h.listener.GridRemoved(h, g)
	}
}

// ClearLevelsFrom removes every grid at level l and deeper (used by
// regridding, which rebuilds fine levels from scratch).
func (h *Hierarchy) ClearLevelsFrom(l int) {
	// One wholesale invalidation up front instead of per-grid dirty
	// marking: every plan and index at l..MaxLevel goes away anyway.
	h.noteCleared(l)
	// Deepest level first, so every grid's removal event fires while
	// its parent chain is still intact (the Listener contract). Each
	// grid leaves the level list and ID map before its event fires, so
	// a listener always observes a self-consistent hierarchy.
	for lv := h.MaxLevel; lv >= l; lv-- {
		for len(h.levels[lv]) > 0 {
			n := len(h.levels[lv])
			g := h.levels[lv][n-1]
			h.levels[lv] = h.levels[lv][:n-1]
			delete(h.byID, g.ID)
			if h.listener != nil {
				h.listener.GridRemoved(h, g)
			}
		}
		h.levels[lv] = nil
	}
}

// TotalCells returns the cell count of level l.
func (h *Hierarchy) TotalCells(l int) int64 {
	var n int64
	for _, g := range h.Grids(l) {
		n += g.NumCells()
	}
	return n
}

// Boxes returns the boxes of level l.
func (h *Hierarchy) Boxes(l int) geom.BoxList {
	gs := h.Grids(l)
	out := make(geom.BoxList, len(gs))
	for i, g := range gs {
		out[i] = g.Box
	}
	return out
}

// Children returns the grids at g.Level+1 whose parent is g.
func (h *Hierarchy) Children(g *Grid) []*Grid {
	var out []*Grid
	for _, c := range h.Grids(g.Level + 1) {
		if c.Parent == g.ID {
			out = append(out, c)
		}
	}
	return out
}

// CheckProperNesting verifies the SAMR structural invariants: level-l
// grids are disjoint and inside the domain, and every level-(l+1) grid
// is covered by its level's parent union and references a parent that
// contains it.
func (h *Hierarchy) CheckProperNesting() error {
	for l := 0; l <= h.MaxLevel; l++ {
		boxes := h.Boxes(l)
		if !boxes.Disjoint() {
			return fmt.Errorf("level %d grids overlap", l)
		}
		dom := h.DomainAt(l)
		for _, g := range h.Grids(l) {
			if !dom.ContainsBox(g.Box) {
				return fmt.Errorf("grid %d escapes level-%d domain", g.ID, l)
			}
			if l == 0 {
				continue
			}
			p := h.Grid(g.Parent)
			if p == nil {
				return fmt.Errorf("grid %d at level %d has no parent", g.ID, l)
			}
			if p.Level != l-1 {
				return fmt.Errorf("grid %d parent at wrong level %d", g.ID, p.Level)
			}
			if !p.Box.ContainsBox(g.Box.Coarsen(h.RefFactor)) {
				return fmt.Errorf("grid %d not nested in parent %d", g.ID, p.ID)
			}
		}
		if l > 0 {
			parentUnion := h.Boxes(l - 1).Refine(h.RefFactor)
			for _, g := range h.Grids(l) {
				if !parentUnion.ContainsBox(g.Box) {
					return fmt.Errorf("grid %d at level %d escapes parent union", g.ID, l)
				}
			}
		}
	}
	return nil
}

// SplitGrid splits grid g along dimension d at plane `at` into two
// grids that tile the original. Children straddling the cut are split
// first (recursively, so grandchildren follow), then every child is
// re-parented to the half that contains it — proper nesting holds at
// every moment. Field data is copied; the new grids inherit the
// owner, callers reassign afterwards. Returns the two halves.
func (h *Hierarchy) SplitGrid(g *Grid, d, at int) (*Grid, *Grid) {
	if at <= g.Box.Lo[d] || at > g.Box.Hi[d] {
		panic(fmt.Sprintf("amr.SplitGrid: cut %d outside box %v dim %d", at, g.Box, d))
	}
	// A child whose box crosses the corresponding fine plane cannot be
	// nested in either half: split it first.
	fineAt := at * h.RefFactor
	for {
		split := false
		for _, c := range h.Children(g) {
			if c.Box.Lo[d] < fineAt && c.Box.Hi[d] >= fineAt {
				h.SplitGrid(c, d, fineAt)
				split = true
				break // the children list changed; rescan
			}
		}
		if !split {
			break
		}
	}
	loBox, hiBox := g.Box.SplitAt(d, at)
	children := h.Children(g)
	// Detach children so RemoveGrid succeeds; re-parent below.
	for _, c := range children {
		h.setParent(c, NoGrid)
	}
	h.RemoveGrid(g.ID)
	lo := h.AddGrid(g.Level, loBox, g.Owner, g.Parent)
	hi := h.AddGrid(g.Level, hiBox, g.Owner, g.Parent)
	if h.WithData && g.Patch != nil {
		for _, f := range h.Fields {
			grid.CopyRegion(lo.Patch, g.Patch, f, loBox)
			grid.CopyRegion(hi.Patch, g.Patch, f, hiBox)
		}
	}
	for _, c := range children {
		if loBox.ContainsBox(c.Box.Coarsen(h.RefFactor)) {
			h.setParent(c, lo.ID)
		} else {
			h.setParent(c, hi.ID)
		}
	}
	return lo, hi
}

// SortLevel orders the grids of level l by box position, giving runs
// a deterministic grid order regardless of creation history. The
// level list is every plan's iteration order, so the level's plans
// (and the next-finer level's, whose prolong sources iterate this
// list) are invalidated wholesale.
func (h *Hierarchy) SortLevel(l int) {
	gs := h.levels[l]
	sort.Slice(gs, func(i, j int) bool {
		a, b := gs[i].Box.Lo, gs[j].Box.Lo
		if a[2] != b[2] {
			return a[2] < b[2]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		return gs[i].ID < gs[j].ID
	})
	for i, g := range gs {
		g.pos = i
	}
	h.noteSorted(l)
}

// FlagFieldFor returns a flag field spanning level l's grids (their
// bounding box), for the regridder to fill.
func (h *Hierarchy) FlagFieldFor(l int) *cluster.FlagField {
	bb := h.Boxes(l).Bounding()
	if bb.Empty() {
		return nil
	}
	return cluster.NewFlagField(bb)
}

// Summary describes the hierarchy's shape at a glance.
type Summary struct {
	Levels     int
	Grids      []int   // per level
	Cells      []int64 // per level
	TotalCells int64
	// CoverageFraction[l] is Cells[l] / level-l domain cells.
	CoverageFraction []float64
}

// Summarize computes the hierarchy's current shape.
func (h *Hierarchy) Summarize() Summary {
	s := Summary{Levels: h.NumLevels()}
	for l := 0; l <= h.MaxLevel; l++ {
		cells := h.TotalCells(l)
		s.Grids = append(s.Grids, len(h.Grids(l)))
		s.Cells = append(s.Cells, cells)
		s.TotalCells += cells
		s.CoverageFraction = append(s.CoverageFraction,
			float64(cells)/float64(h.DomainAt(l).NumCells()))
	}
	return s
}

func (s Summary) String() string {
	out := fmt.Sprintf("hierarchy: %d levels, %d cells total\n", s.Levels, s.TotalCells)
	for l := 0; l < len(s.Grids); l++ {
		out += fmt.Sprintf("  level %d: %4d grids %9d cells (%.1f%% of domain)\n",
			l, s.Grids[l], s.Cells[l], 100*s.CoverageFraction[l])
	}
	return out
}
