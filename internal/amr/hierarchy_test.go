package amr

import (
	"testing"

	"samrdlb/internal/cluster"
	"samrdlb/internal/geom"
)

func newH(t *testing.T, n, maxLevel int, withData bool) *Hierarchy {
	t.Helper()
	return New(geom.UnitCube(n), 2, maxLevel, 1, withData, "q")
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestNewValidation(t *testing.T) {
	assertPanics(t, "empty domain", func() {
		New(geom.Box{Lo: geom.Index{1, 0, 0}, Hi: geom.Index{0, 0, 0}}, 2, 1, 1, false)
	})
	assertPanics(t, "bad factor", func() { New(geom.UnitCube(4), 1, 1, 1, false) })
	assertPanics(t, "bad level", func() { New(geom.UnitCube(4), 2, -1, 1, false) })
}

func TestDomainAt(t *testing.T) {
	h := newH(t, 8, 2, false)
	if h.DomainAt(0) != geom.UnitCube(8) {
		t.Error("level-0 domain wrong")
	}
	if h.DomainAt(2) != geom.UnitCube(32) {
		t.Errorf("level-2 domain = %v", h.DomainAt(2))
	}
}

func TestAddGridAndLookup(t *testing.T) {
	h := newH(t, 8, 1, true)
	g := h.AddGrid(0, geom.UnitCube(8), 3, NoGrid)
	if h.Grid(g.ID) != g {
		t.Error("lookup by ID failed")
	}
	if g.Owner != 3 || g.Level != 0 {
		t.Error("grid metadata wrong")
	}
	if g.Patch == nil {
		t.Error("WithData hierarchy must allocate patches")
	}
	if g.NumCells() != 512 {
		t.Errorf("NumCells = %d", g.NumCells())
	}
	if g.Bytes(1) != 512*8 {
		t.Errorf("Bytes = %d", g.Bytes(1))
	}
	c := h.AddGrid(1, geom.UnitCube(8), 3, g.ID)
	if h.Children(g)[0] != c {
		t.Error("Children lookup failed")
	}
}

func TestAddGridValidation(t *testing.T) {
	h := newH(t, 8, 1, false)
	assertPanics(t, "bad level", func() { h.AddGrid(5, geom.UnitCube(2), 0, NoGrid) })
	assertPanics(t, "empty box", func() {
		h.AddGrid(0, geom.Box{Lo: geom.Index{1, 0, 0}, Hi: geom.Index{0, 0, 0}}, 0, NoGrid)
	})
	assertPanics(t, "escapes domain", func() { h.AddGrid(0, geom.UnitCube(9), 0, NoGrid) })
	assertPanics(t, "orphan fine grid", func() { h.AddGrid(1, geom.UnitCube(2), 0, NoGrid) })
}

func TestRemoveGrid(t *testing.T) {
	h := newH(t, 8, 1, false)
	g := h.AddGrid(0, geom.UnitCube(8), 0, NoGrid)
	c := h.AddGrid(1, geom.UnitCube(4), 0, g.ID)
	assertPanics(t, "remove with child", func() { h.RemoveGrid(g.ID) })
	h.RemoveGrid(c.ID)
	h.RemoveGrid(g.ID)
	if len(h.Grids(0)) != 0 || h.Grid(g.ID) != nil {
		t.Error("RemoveGrid left residue")
	}
	h.RemoveGrid(GridID(999)) // unknown ID is a no-op
}

func TestClearLevelsFrom(t *testing.T) {
	h := newH(t, 8, 2, false)
	g := h.AddGrid(0, geom.UnitCube(8), 0, NoGrid)
	c := h.AddGrid(1, geom.UnitCube(4), 0, g.ID)
	h.AddGrid(2, geom.UnitCube(4), 0, c.ID)
	h.ClearLevelsFrom(1)
	if h.NumLevels() != 1 {
		t.Errorf("NumLevels = %d", h.NumLevels())
	}
	if len(h.Grids(1)) != 0 || len(h.Grids(2)) != 0 {
		t.Error("fine levels not cleared")
	}
	if h.Grid(g.ID) == nil {
		t.Error("level 0 must survive")
	}
}

func TestTotalCellsAndBoxes(t *testing.T) {
	h := newH(t, 8, 0, false)
	h.AddGrid(0, geom.BoxFromShape(geom.Index{0, 0, 0}, geom.Index{4, 8, 8}), 0, NoGrid)
	h.AddGrid(0, geom.BoxFromShape(geom.Index{4, 0, 0}, geom.Index{4, 8, 8}), 1, NoGrid)
	if h.TotalCells(0) != 512 {
		t.Errorf("TotalCells = %d", h.TotalCells(0))
	}
	if len(h.Boxes(0)) != 2 {
		t.Error("Boxes wrong")
	}
	if h.Grids(7) != nil || h.Grids(-1) != nil {
		t.Error("out-of-range Grids should be nil")
	}
}

func TestCheckProperNesting(t *testing.T) {
	h := newH(t, 8, 1, false)
	g := h.AddGrid(0, geom.UnitCube(8), 0, NoGrid)
	h.AddGrid(1, geom.BoxFromShape(geom.Index{2, 2, 2}, geom.Index{4, 4, 4}), 0, g.ID)
	if err := h.CheckProperNesting(); err != nil {
		t.Errorf("valid hierarchy rejected: %v", err)
	}
	// Overlapping level-0 grids violate nesting.
	h2 := newH(t, 8, 0, false)
	h2.AddGrid(0, geom.UnitCube(4), 0, NoGrid)
	h2.AddGrid(0, geom.UnitCube(4), 0, NoGrid)
	if err := h2.CheckProperNesting(); err == nil {
		t.Error("overlapping grids must fail nesting check")
	}
	// Child not inside its parent.
	h3 := newH(t, 8, 1, false)
	p3 := h3.AddGrid(0, geom.UnitCube(2), 0, NoGrid)
	h3.AddGrid(1, geom.BoxFromShape(geom.Index{8, 8, 8}, geom.Index{2, 2, 2}), 0, p3.ID)
	if err := h3.CheckProperNesting(); err == nil {
		t.Error("child outside parent must fail nesting check")
	}
}

func TestSplitGridTilesAndReparents(t *testing.T) {
	h := newH(t, 8, 1, true)
	g := h.AddGrid(0, geom.UnitCube(8), 2, NoGrid)
	g.Patch.FillConstant("q", 5)
	// Child in the low half and one in the high half (x split at 4).
	cl := h.AddGrid(1, geom.BoxFromShape(geom.Index{0, 0, 0}, geom.Index{4, 4, 4}), 2, g.ID)
	ch := h.AddGrid(1, geom.BoxFromShape(geom.Index{10, 10, 10}, geom.Index{4, 4, 4}), 2, g.ID)
	lo, hi := h.SplitGrid(g, 0, 4)
	if lo.Box.NumCells()+hi.Box.NumCells() != 512 {
		t.Error("split lost cells")
	}
	if lo.Owner != 2 || hi.Owner != 2 {
		t.Error("owner not inherited")
	}
	if cl.Parent != lo.ID {
		t.Errorf("low child parent = %d, want %d", cl.Parent, lo.ID)
	}
	if ch.Parent != hi.ID {
		t.Errorf("high child parent = %d, want %d", ch.Parent, hi.ID)
	}
	if lo.Patch.At("q", geom.Index{0, 0, 0}) != 5 || hi.Patch.At("q", geom.Index{7, 7, 7}) != 5 {
		t.Error("data not copied on split")
	}
	if err := h.CheckProperNesting(); err != nil {
		t.Errorf("split broke nesting: %v", err)
	}
	assertPanics(t, "bad cut", func() { h.SplitGrid(lo, 0, 0) })
}

func TestSortLevelDeterministic(t *testing.T) {
	h := newH(t, 8, 0, false)
	h.AddGrid(0, geom.BoxFromShape(geom.Index{4, 0, 0}, geom.Index{4, 4, 4}), 0, NoGrid)
	h.AddGrid(0, geom.BoxFromShape(geom.Index{0, 0, 0}, geom.Index{4, 4, 4}), 0, NoGrid)
	h.SortLevel(0)
	if h.Grids(0)[0].Box.Lo != (geom.Index{0, 0, 0}) {
		t.Error("SortLevel did not order by position")
	}
}

func TestRegridAllCreatesNestedChildren(t *testing.T) {
	h := newH(t, 16, 2, true)
	h.AddGrid(0, geom.UnitCube(16), 0, NoGrid)
	// Flag a blob near the centre at every level.
	flag := func(level int, f *cluster.FlagField) {
		target := geom.BoxFromShape(geom.Index{6, 6, 6}, geom.Index{4, 4, 4}).Refine(pow(2, level))
		f.SetWhere(func(i geom.Index) bool { return target.Contains(i) })
	}
	n := h.RegridAll(0, flag, DefaultRegridParams(), nil)
	if n == 0 {
		t.Fatal("regrid created nothing")
	}
	if len(h.Grids(1)) == 0 || len(h.Grids(2)) == 0 {
		t.Fatalf("expected grids at levels 1 and 2: %d %d", len(h.Grids(1)), len(h.Grids(2)))
	}
	if err := h.CheckProperNesting(); err != nil {
		t.Fatalf("regrid broke nesting: %v", err)
	}
	// The flagged region (refined) must be covered by level 1.
	want := geom.BoxFromShape(geom.Index{6, 6, 6}, geom.Index{4, 4, 4}).Refine(2)
	if !h.Boxes(1).ContainsBox(want) {
		t.Error("flagged region not covered by level 1")
	}
}

func TestRegridAllPreservesData(t *testing.T) {
	h := newH(t, 8, 1, true)
	g := h.AddGrid(0, geom.UnitCube(8), 0, NoGrid)
	g.Patch.FillConstant("q", 3)
	flag := func(level int, f *cluster.FlagField) {
		f.SetWhere(func(i geom.Index) bool { return i[0] < 4 })
	}
	h.RegridAll(0, flag, RegridParams{Cluster: cluster.DefaultParams()}, nil)
	for _, c := range h.Grids(1) {
		if got := c.Patch.At("q", c.Box.Lo); got != 3 {
			t.Errorf("child data not prolonged: %v", got)
		}
	}
}

func TestRegridAllCopiesOldFineData(t *testing.T) {
	h := newH(t, 8, 1, true)
	g := h.AddGrid(0, geom.UnitCube(8), 0, NoGrid)
	g.Patch.FillConstant("q", 1)
	flag := func(level int, f *cluster.FlagField) {
		f.SetWhere(func(i geom.Index) bool { return i[0] < 4 })
	}
	h.RegridAll(0, flag, RegridParams{Cluster: cluster.DefaultParams()}, nil)
	// Write a distinctive fine-level value, then regrid again with the
	// same flags: the new fine grids must carry the old fine value,
	// not the prolonged coarse value.
	for _, c := range h.Grids(1) {
		c.Patch.FillConstant("q", 42)
	}
	h.RegridAll(0, flag, RegridParams{Cluster: cluster.DefaultParams()}, nil)
	for _, c := range h.Grids(1) {
		if got := c.Patch.At("q", c.Box.Lo); got != 42 {
			t.Errorf("old fine data lost on regrid: %v", got)
		}
	}
}

func TestRegridPlacerControlsOwnership(t *testing.T) {
	h := newH(t, 8, 1, false)
	h.AddGrid(0, geom.UnitCube(8), 7, NoGrid)
	flag := func(level int, f *cluster.FlagField) {
		f.SetWhere(func(i geom.Index) bool { return i[0] < 2 })
	}
	h.RegridAll(0, flag, DefaultRegridParams(), func(b geom.Box, p *Grid) int { return 9 })
	for _, c := range h.Grids(1) {
		if c.Owner != 9 {
			t.Errorf("placer ignored: owner %d", c.Owner)
		}
	}
}

func TestRegridNoFlagsClearsFineLevels(t *testing.T) {
	h := newH(t, 8, 1, false)
	g := h.AddGrid(0, geom.UnitCube(8), 0, NoGrid)
	h.AddGrid(1, geom.UnitCube(4), 0, g.ID)
	h.RegridAll(0, func(int, *cluster.FlagField) {}, DefaultRegridParams(), nil)
	if len(h.Grids(1)) != 0 {
		t.Error("regrid with no flags must clear fine levels")
	}
}

func TestBufferFlagsExpands(t *testing.T) {
	f := cluster.NewFlagField(geom.UnitCube(8))
	f.Set(geom.Index{4, 4, 4})
	out := bufferFlags(f, 1)
	if out.Count() != 27 {
		t.Errorf("buffered count = %d, want 27", out.Count())
	}
	if bufferFlags(f, 0) != f {
		t.Error("zero buffer should return the input unchanged")
	}
	// Clipping at the domain edge.
	f2 := cluster.NewFlagField(geom.UnitCube(8))
	f2.Set(geom.Index{0, 0, 0})
	if got := bufferFlags(f2, 1).Count(); got != 8 {
		t.Errorf("corner buffer = %d, want 8", got)
	}
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

func TestFlagWhereGradient(t *testing.T) {
	h := newH(t, 8, 1, true)
	g := h.AddGrid(0, geom.UnitCube(8), 0, NoGrid)
	// A step at x=4: gradient spike at the interface only.
	g.Patch.FillFunc("q", func(i geom.Index) float64 {
		if i[0] < 4 {
			return 1
		}
		return 0
	})
	f := h.FlagFieldFor(0)
	h.FlagWhereGradient(0, "q", 0.5, f)
	if f.Count() != 2*8*8 {
		t.Errorf("flag count = %d, want 128 (two planes either side of the jump)", f.Count())
	}
	if !f.Get(geom.Index{3, 0, 0}) || !f.Get(geom.Index{4, 0, 0}) {
		t.Error("cells adjacent to the jump must be flagged")
	}
	if f.Get(geom.Index{0, 0, 0}) || f.Get(geom.Index{7, 7, 7}) {
		t.Error("smooth cells must not be flagged")
	}
	// Plan-only hierarchies cannot gradient-flag.
	h2 := newH(t, 8, 1, false)
	h2.AddGrid(0, geom.UnitCube(8), 0, NoGrid)
	assertPanics(t, "plan-only gradient", func() {
		h2.FlagWhereGradient(0, "q", 0.5, h2.FlagFieldFor(0))
	})
}

func TestRegridCoalesceReducesGridCount(t *testing.T) {
	build := func(coalesce bool) int {
		h := newH(t, 16, 1, false)
		h.AddGrid(0, geom.UnitCube(16), 0, NoGrid)
		// An L-shaped flag region: clustering splits it into several
		// boxes, some of which share faces and can merge.
		flag := func(level int, f *cluster.FlagField) {
			f.SetWhere(func(i geom.Index) bool {
				return (i[0] < 8 && i[1] < 4 && i[2] < 4) || (i[0] < 4 && i[1] < 8 && i[2] < 4)
			})
		}
		p := DefaultRegridParams()
		p.Buffer = 0
		p.Coalesce = coalesce
		h.RegridAll(0, flag, p, nil)
		if err := h.CheckProperNesting(); err != nil {
			t.Fatalf("coalesce=%v broke nesting: %v", coalesce, err)
		}
		if coalesce {
			return len(h.Grids(1))
		}
		return len(h.Grids(1))
	}
	plain := build(false)
	merged := build(true)
	if merged > plain {
		t.Errorf("coalescing increased grid count: %d -> %d", plain, merged)
	}
}

func TestSplitGridSplitsStraddlingChildren(t *testing.T) {
	h := newH(t, 8, 2, true)
	g := h.AddGrid(0, geom.UnitCube(8), 0, NoGrid)
	// A child straddling the x=4 plane (fine plane 8), with its own
	// grandchild straddling too.
	c := h.AddGrid(1, geom.BoxFromShape(geom.Index{4, 0, 0}, geom.Index{8, 4, 4}), 0, g.ID)
	h.AddGrid(2, geom.BoxFromShape(geom.Index{12, 0, 0}, geom.Index{8, 4, 4}), 0, c.ID)
	c.Patch.FillConstant("q", 7)
	lo, hi := h.SplitGrid(g, 0, 4)
	if err := h.CheckProperNesting(); err != nil {
		t.Fatalf("split left hierarchy unnested: %v", err)
	}
	// The straddling child was split: two level-1 grids now exist,
	// one under each half.
	if len(h.Grids(1)) != 2 {
		t.Fatalf("expected straddling child split into 2, got %d", len(h.Grids(1)))
	}
	seenLo, seenHi := false, false
	for _, x := range h.Grids(1) {
		switch x.Parent {
		case lo.ID:
			seenLo = true
		case hi.ID:
			seenHi = true
		}
		if x.Patch.At("q", x.Box.Lo) != 7 {
			t.Error("child data lost in recursive split")
		}
	}
	if !seenLo || !seenHi {
		t.Error("split children not distributed across both halves")
	}
	// The grandchild survived (possibly split) and is nested.
	if len(h.Grids(2)) < 2 {
		t.Errorf("grandchild should have been split with its parent: %d grids", len(h.Grids(2)))
	}
}

func TestSummarize(t *testing.T) {
	h := newH(t, 8, 1, false)
	g := h.AddGrid(0, geom.UnitCube(8), 0, NoGrid)
	h.AddGrid(1, geom.BoxFromShape(geom.Index{0, 0, 0}, geom.Index{8, 8, 8}), 0, g.ID)
	s := h.Summarize()
	if s.Levels != 2 || s.TotalCells != 512+512 {
		t.Errorf("summary = %+v", s)
	}
	if s.CoverageFraction[0] != 1.0 || s.CoverageFraction[1] != 0.125 {
		t.Errorf("coverage = %v", s.CoverageFraction)
	}
	str := s.String()
	if len(str) == 0 || s.Grids[0] != 1 {
		t.Error("summary render wrong")
	}
}
